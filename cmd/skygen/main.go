// Command skygen generates synthetic Palomar-Quest catalog files: either a
// single file of a given nominal size or a whole observation (28 files of
// varying size), in the tagged interleaved ASCII format the SkyLoader
// pipeline consumes.
//
// Usage:
//
//	skygen -size 200 -out catalog.cat               # one 200 MB file
//	skygen -night 1500 -outdir night01/             # one observation, 28 files
//	skygen -size 50 -error-rate 0.05 -out dirty.cat # with corrupted rows
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"skyloader/internal/catalog"
)

func main() {
	var (
		size      = flag.Float64("size", 0, "generate one file of this nominal size in MB")
		night     = flag.Float64("night", 0, "generate a full observation of this total nominal size in MB")
		files     = flag.Int("files", catalog.FilesPerObservation, "number of files for -night")
		rowsPerMB = flag.Int("rows-per-mb", 100, "generated rows per nominal MB")
		seed      = flag.Int64("seed", 1, "random seed")
		errRate   = flag.Float64("error-rate", 0, "fraction of detail rows corrupted")
		unsorted  = flag.Bool("unsorted", false, "emit child rows before parents (defeats presorting)")
		out       = flag.String("out", "", "output file for -size (default stdout)")
		outDir    = flag.String("outdir", ".", "output directory for -night")
		runID     = flag.Int64("run", 1, "observing run id recorded in the observation header")
	)
	flag.Parse()

	switch {
	case *size > 0 && *night > 0:
		fatal(fmt.Errorf("use either -size or -night, not both"))
	case *size > 0:
		f := catalog.Generate(catalog.GenSpec{
			SizeMB:    *size,
			RowsPerMB: *rowsPerMB,
			Seed:      *seed,
			ErrorRate: *errRate,
			RunID:     *runID,
			Unsorted:  *unsorted,
			IDBase:    10_000_000,
		})
		w := os.Stdout
		if *out != "" {
			file, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer file.Close()
			w = file
		}
		if _, err := f.WriteTo(w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %s: %d rows, %d injected errors, %.1f nominal MB\n",
			f.Name, f.DataRows, f.TotalInjectedErrors(), f.Spec.SizeMB)
	case *night > 0:
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		nightFiles := catalog.GenerateNight(catalog.NightSpec{
			TotalMB:   *night,
			RowsPerMB: *rowsPerMB,
			Seed:      *seed,
			ErrorRate: *errRate,
			RunID:     *runID,
			Files:     *files,
		})
		var rows int
		for _, f := range nightFiles {
			path := filepath.Join(*outDir, f.Name)
			file, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if _, err := f.WriteTo(file); err != nil {
				file.Close()
				fatal(err)
			}
			if err := file.Close(); err != nil {
				fatal(err)
			}
			rows += f.DataRows
		}
		fmt.Fprintf(os.Stderr, "generated %d files (%d rows, %.1f nominal MB) in %s\n",
			len(nightFiles), rows, *night, *outDir)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skygen:", err)
	os.Exit(1)
}
