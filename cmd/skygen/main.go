// Command skygen generates synthetic Palomar-Quest catalog files: either a
// single file of a given nominal size or a whole observation (28 files of
// varying size), in the tagged interleaved ASCII format the SkyLoader
// pipeline consumes.  With -queries it instead generates a replayable query
// workload trace (CSV) for skyserve.
//
// Usage:
//
//	skygen -size 200 -out catalog.cat               # one 200 MB file
//	skygen -night 1500 -outdir night01/             # one observation, 28 files
//	skygen -size 50 -error-rate 0.05 -out dirty.cat # with corrupted rows
//	skygen -queries 5000 -zipf 1.3 -cone-frac 0.4 -out trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"skyloader/internal/catalog"
	"skyloader/internal/serve"
)

func main() {
	var (
		size      = flag.Float64("size", 0, "generate one file of this nominal size in MB")
		night     = flag.Float64("night", 0, "generate a full observation of this total nominal size in MB")
		files     = flag.Int("files", catalog.FilesPerObservation, "number of files for -night")
		rowsPerMB = flag.Int("rows-per-mb", 100, "generated rows per nominal MB")
		seed      = flag.Int64("seed", 1, "random seed")
		errRate   = flag.Float64("error-rate", 0, "fraction of detail rows corrupted")
		unsorted  = flag.Bool("unsorted", false, "emit child rows before parents (defeats presorting)")
		out       = flag.String("out", "", "output file for -size/-queries (default stdout)")
		outDir    = flag.String("outdir", ".", "output directory for -night")
		runID     = flag.Int64("run", 1, "observing run id recorded in the observation header")

		// Query-trace generation (-queries mode).
		nQueries = flag.Int("queries", 0, "generate a query workload trace with this many requests")
		zipfS    = flag.Float64("zipf", 1.2, "Zipf skew of object/field popularity (> 1)")
		coneFrac = flag.Float64("cone-frac", 0.4, "fraction of requests that are cone searches")
		radii    = flag.String("radii", "0.05,0.2,1.0", "comma-separated cone radius mix in degrees")
		objects  = flag.Int64("objects", 10000, "object-id universe size for lookups")
		idBase   = flag.Int64("idbase", 100_000_000, "object-id base (match the loaded files' IDBase)")
		frames   = flag.Int64("frames", 100, "frame-id universe for frame queries (0 disables)")
		fields   = flag.Int("fields", 24, "number of distinct cone field centres")
		rate     = flag.Float64("rate", 200, "mean Poisson arrival rate in queries/second")
		raBase   = flag.Float64("ra-base", 0, "cone-field sky box: RA base in degrees")
		raSpan   = flag.Float64("ra-spread", 0, "cone-field sky box: RA spread (0 = whole generator range)")
		decBase  = flag.Float64("dec-base", 0, "cone-field sky box: Dec base in degrees")
		decSpan  = flag.Float64("dec-spread", 0, "cone-field sky box: Dec spread (0 = whole generator range)")
	)
	flag.Parse()

	switch {
	case *nQueries > 0 && (*size > 0 || *night > 0):
		fatal(fmt.Errorf("-queries generates a workload trace; combine it with neither -size nor -night"))
	case *nQueries > 0:
		radiusMix, err := parseRadii(*radii)
		if err != nil {
			fatal(err)
		}
		// Aim the cone fields: skyserve derives the box from the files it
		// generates; a standalone trace must be told where the catalog's sky
		// is (catalog files land at a random base per seed) or cones will
		// mostly probe empty sky.
		trace := serve.GenTrace(serve.TraceSpec{
			Queries:    *nQueries,
			Seed:       *seed,
			ZipfS:      *zipfS,
			ConeFrac:   *coneFrac,
			Radii:      radiusMix,
			Objects:    *objects,
			IDBase:     *idBase,
			Frames:     *frames,
			Fields:     *fields,
			RatePerSec: *rate,
			RABase:     *raBase, RASpread: *raSpan,
			DecBase: *decBase, DecSpread: *decSpan,
		})
		w := os.Stdout
		if *out != "" {
			file, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer file.Close()
			w = file
		}
		if err := serve.WriteTrace(w, trace); err != nil {
			fatal(err)
		}
		last := trace[len(trace)-1].Arrival
		fmt.Fprintf(os.Stderr, "generated %d queries over %s (zipf %.2f, %.0f%% cones, seed %d)\n",
			len(trace), last.Round(1e6), *zipfS, *coneFrac*100, *seed)
	case *size > 0 && *night > 0:
		fatal(fmt.Errorf("use either -size or -night, not both"))
	case *size > 0:
		f := catalog.Generate(catalog.GenSpec{
			SizeMB:    *size,
			RowsPerMB: *rowsPerMB,
			Seed:      *seed,
			ErrorRate: *errRate,
			RunID:     *runID,
			Unsorted:  *unsorted,
			IDBase:    10_000_000,
		})
		w := os.Stdout
		if *out != "" {
			file, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer file.Close()
			w = file
		}
		if _, err := f.WriteTo(w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %s: %d rows, %d injected errors, %.1f nominal MB\n",
			f.Name, f.DataRows, f.TotalInjectedErrors(), f.Spec.SizeMB)
	case *night > 0:
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		nightFiles := catalog.GenerateNight(catalog.NightSpec{
			TotalMB:   *night,
			RowsPerMB: *rowsPerMB,
			Seed:      *seed,
			ErrorRate: *errRate,
			RunID:     *runID,
			Files:     *files,
		})
		var rows int
		for _, f := range nightFiles {
			path := filepath.Join(*outDir, f.Name)
			file, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if _, err := f.WriteTo(file); err != nil {
				file.Close()
				fatal(err)
			}
			if err := file.Close(); err != nil {
				fatal(err)
			}
			rows += f.DataRows
		}
		fmt.Fprintf(os.Stderr, "generated %d files (%d rows, %.1f nominal MB) in %s\n",
			len(nightFiles), rows, *night, *outDir)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// parseRadii parses the comma-separated cone radius mix.
func parseRadii(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad cone radius %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty radius mix")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skygen:", err)
	os.Exit(1)
}
