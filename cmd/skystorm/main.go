// Command skystorm is the load driver for skyserve -http: it replays a Zipf
// query trace against a running HTTP front door from N concurrent socket
// clients and reports CLIENT-side latency percentiles next to the SERVER-side
// histograms scraped from /metrics — the two views whose difference is the
// network plus everything the server doesn't measure about itself.
//
// Usage (server and driver must agree on the catalog shape so the trace hits
// real objects — same -size/-files/-rows-per-mb/-seed):
//
//	skyserve -http :8080 -size 20 -files 8 -seed 1 &
//	skystorm -addr 127.0.0.1:8080 -clients 8 -queries 5000 -size 20 -files 8 -seed 1
//
// While the replay runs, a background goroutine scrapes /metrics once per
// -scrape-interval and validates the payload structurally (the "parseable
// under load" check); the final line fails the run if any scrape was invalid
// or any request errored at the transport layer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/httpserve"
	"skyloader/internal/metrics"
	"skyloader/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "skyserve -http address")
		clients = flag.Int("clients", 8, "concurrent socket clients")

		nQueries  = flag.Int("queries", 2000, "queries to replay (ignored with -trace)")
		zipfS     = flag.Float64("zipf", 1.2, "Zipf skew of the generated workload")
		coneFrac  = flag.Float64("cone-frac", 0.4, "cone-search fraction")
		seed      = flag.Int64("seed", 1, "workload seed (match the server's)")
		size      = flag.Float64("size", 10, "server catalog MB (match the server's)")
		nfiles    = flag.Int("files", 4, "server catalog files (match the server's)")
		rowsPerMB = flag.Int("rows-per-mb", 100, "server rows per nominal MB (match the server's)")
		tracePth  = flag.String("trace", "", "replay a CSV query trace written by skygen -queries")

		rate     = flag.Float64("rate", 0, "paced arrival rate in qps across all clients (0 = closed loop, as fast as possible)")
		scrapeIv = flag.Duration("scrape-interval", 500*time.Millisecond, "background /metrics validation interval (0 disables)")
		shard    = flag.Bool("shard", false, "target a skyshard coordinator: every scrape must carry the sky_shard_* families and /v1/stats is read in the shard envelope")
	)
	flag.Parse()

	trace, err := buildClientTrace(*tracePth, *nQueries, *seed, *zipfS, *coneFrac, *rate, *size, *rowsPerMB, *nfiles)
	if err != nil {
		fatal(err)
	}
	base := "http://" + *addr

	// Wait for readiness so a just-started server doesn't count as down.
	if err := waitHealthy(base, 10*time.Second); err != nil {
		fatal(err)
	}

	// Background scrape validator: /metrics must stay structurally valid
	// while every counter it exports is moving.
	var scrapes, badScrapes atomic.Int64
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	if *scrapeIv > 0 {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			tick := time.NewTicker(*scrapeIv)
			defer tick.Stop()
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stopScrape:
					return
				case <-tick.C:
					body, err := fetch(client, base+httpserve.PathMetrics)
					scrapes.Add(1)
					if err != nil {
						badScrapes.Add(1)
						continue
					}
					families, err := metrics.PromValid(string(body))
					if err != nil {
						badScrapes.Add(1)
						fmt.Fprintln(os.Stderr, "skystorm: invalid scrape:", err)
						continue
					}
					if *shard {
						if missing := missingShardFamilies(families); len(missing) > 0 {
							badScrapes.Add(1)
							fmt.Fprintln(os.Stderr, "skystorm: scrape missing shard families:", missing)
						}
					}
				}
			}
		}()
	}

	// Replay: the trace is dealt round-robin to clients; each client owns a
	// keep-alive connection pool entry, a latency histogram (merged at the
	// end — cheaper than one contended histogram) and its outcome counters.
	results := make([]clientResult, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = runClient(base, trace, c, *clients, *rate, start)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopScrape)
	scrapeWG.Wait()

	// Merge per-client histograms and counters.
	total := clientResult{latency: metrics.NewHistogram(), byClass: map[string]*metrics.Histogram{}}
	for i := range results {
		r := &results[i]
		total.latency.Merge(r.latency)
		for cls, h := range r.byClass {
			if total.byClass[cls] == nil {
				total.byClass[cls] = metrics.NewHistogram()
			}
			total.byClass[cls].Merge(h)
		}
		total.sent += r.sent
		total.transportErrs += r.transportErrs
		for code, n := range r.status {
			if total.status == nil {
				total.status = map[int]int64{}
			}
			total.status[code] += n
		}
	}

	fmt.Printf("skystorm: %d clients, %d requests in %s (%.0f qps)\n",
		*clients, total.sent, elapsed.Round(time.Millisecond), float64(total.sent)/elapsed.Seconds())
	var codes []int
	for code := range total.status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("  status %d: %d\n", code, total.status[code])
	}
	if total.transportErrs > 0 {
		fmt.Printf("  transport errors: %d\n", total.transportErrs)
	}

	sum := total.latency.Summary()
	fmt.Printf("client-side latency: p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		ms(sum.P50), ms(sum.P95), ms(sum.P99), ms(sum.Max))
	for _, cls := range metrics.SortedLabelNames(total.byClass) {
		s := total.byClass[cls].Summary()
		fmt.Printf("  %-8s p50 %.3fms  p95 %.3fms  p99 %.3fms  (%d)\n",
			cls, ms(s.P50), ms(s.P95), ms(s.P99), s.Count)
	}

	// The server-side view of the same window, from /v1/stats.
	if *shard {
		printShardSide(base)
	} else {
		printServerSide(base)
	}

	if *scrapeIv > 0 {
		fmt.Printf("scrapes: %d valid, %d invalid\n", scrapes.Load()-badScrapes.Load(), badScrapes.Load())
	}
	if badScrapes.Load() > 0 || total.transportErrs > 0 {
		os.Exit(1)
	}
}

// clientResult is one client's accounting, merged after the run.
type clientResult struct {
	latency       *metrics.Histogram
	byClass       map[string]*metrics.Histogram
	status        map[int]int64
	sent          int64
	transportErrs int64
}

// runClient replays trace entries c, c+n, c+2n, ... against the server.
// With rate > 0 each request honors its trace arrival offset rescaled to the
// global rate (open loop); otherwise the client runs closed-loop.
func runClient(base string, trace []serve.Request, c, n int, rate float64, start time.Time) clientResult {
	res := clientResult{
		latency: metrics.NewHistogram(),
		byClass: map[string]*metrics.Histogram{},
		status:  map[int]int64{},
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for i := c; i < len(trace); i += n {
		req := trace[i]
		if rate > 0 {
			// Trace arrivals are generated at the trace's own rate; with an
			// explicit -rate the i-th request globally is due at i/rate.
			due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		u, err := httpserve.QueryURL(req.Query)
		if err != nil {
			res.transportErrs++
			continue
		}
		began := time.Now()
		resp, err := client.Get(base + u)
		if err != nil {
			res.transportErrs++
			continue
		}
		_, copyErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		elapsed := time.Since(began)
		if copyErr != nil {
			res.transportErrs++
			continue
		}
		res.sent++
		res.status[resp.StatusCode]++
		res.latency.Observe(elapsed)
		cls := req.Query.Class()
		if res.byClass[cls] == nil {
			res.byClass[cls] = metrics.NewHistogram()
		}
		res.byClass[cls].Observe(elapsed)
	}
	return res
}

// buildClientTrace mirrors skyserve's trace construction so the same
// -size/-files/-rows-per-mb/-seed hit the same objects the server loaded.
func buildClientTrace(path string, n int, seed int64, zipfS, coneFrac, rate, sizeMB float64, rowsPerMB, nfiles int) ([]serve.Request, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return serve.ReadTrace(f)
	}
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: sizeMB, Files: nfiles, RowsPerMB: rowsPerMB, Seed: seed, RunID: 1,
	})
	objects := int64(sizeMB*float64(rowsPerMB)) / 8 / int64(len(files))
	if objects < 64 {
		objects = 64
	}
	genRate := rate
	if genRate <= 0 {
		genRate = 1000 // closed loop ignores arrivals; any positive rate works
	}
	spec := serve.TraceSpec{
		Queries:    n,
		Seed:       seed + 1000,
		ZipfS:      zipfS,
		ConeFrac:   coneFrac,
		Objects:    objects,
		IDBase:     100_000_000, // GenerateNight file 1
		Frames:     objects / 12,
		RatePerSec: genRate,
	}.WithFootprint(files)
	return serve.GenTrace(spec), nil
}

// waitHealthy polls /healthz until the server reports ready.
func waitHealthy(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + httpserve.PathHealthz)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s (last err: %v)", base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// printServerSide fetches /v1/stats and prints the server-side class
// percentiles in the same shape as the client-side block above it.
func printServerSide(base string) {
	client := &http.Client{Timeout: 10 * time.Second}
	body, err := fetch(client, base+httpserve.PathStats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skystorm: stats fetch failed:", err)
		return
	}
	var stats httpserve.StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		fmt.Fprintln(os.Stderr, "skystorm: stats decode failed:", err)
		return
	}
	rep := stats.Server
	fmt.Printf("server-side: %d requests, %d served, %d shed, %d expired, %d cache hits\n",
		rep.Requests, rep.Served, rep.Shed, rep.Expired, rep.Cache.Hits)
	for _, cls := range rep.Classes {
		fmt.Printf("  %-8s p50 %.3fms  p95 %.3fms  p99 %.3fms  (%d)\n",
			cls.Class, ms(cls.Latency.P50), ms(cls.Latency.P95), ms(cls.Latency.P99), cls.Served)
	}
}

// missingShardFamilies returns the coordinator metric families absent from a
// scrape — against a skyshard front these must all be exported mid-run.
func missingShardFamilies(families map[string]bool) []string {
	var missing []string
	for _, want := range []string{
		"sky_shard_count", "sky_shard_queries_total", "sky_shard_fanout_total",
		"sky_shard_requests_total", "sky_shard_gather_seconds",
		"sky_shard_wire_bytes_total", "sky_shard_ready",
	} {
		if !families[want] {
			missing = append(missing, want)
		}
	}
	return missing
}

// printShardSide fetches the coordinator's /v1/stats envelope: scatter-gather
// counters and each shard's self-reported state.
func printShardSide(base string) {
	client := &http.Client{Timeout: 10 * time.Second}
	body, err := fetch(client, base+httpserve.PathStats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skystorm: stats fetch failed:", err)
		return
	}
	var stats httpserve.ShardStatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		fmt.Fprintln(os.Stderr, "skystorm: shard stats decode failed:", err)
		return
	}
	fmt.Printf("coordinator-side: %d shards, %d queries, %d errors, gather p50 %.3fms p99 %.3fms, wire %d B out / %d B in\n",
		stats.Shards, stats.Queries, stats.QueryErrors,
		float64(stats.GatherP50NS)/1e6, float64(stats.GatherP99NS)/1e6,
		stats.BytesSent, stats.BytesReceived)
	for _, st := range stats.ShardStats {
		fmt.Printf("  shard %3d: ready=%v  %7d rows  %6d queries served\n",
			st.ShardID, st.Ready, st.Rows, st.QueriesServed)
	}
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skystorm:", err)
	os.Exit(1)
}
