// Command skyshard runs the distributed shard layer: a coordinator that
// partitions the HTM sky across a fleet of agents (each owning one
// contiguous trixel range in its own private store) and serves the /v1
// query API by scattering to the owning shards and merging the sorted
// partial results.
//
// Usage:
//
//	skyshard -agent -listen 127.0.0.1:7101                 # one shard agent
//	skyshard -coordinator -agents host1:7101,host2:7101 \
//	         -http :8080 -size 20                          # front the fleet
//	skyshard -sim 100 -size 16 -queries 2000               # 100-node DES sim
//	skyshard -smoke                                        # CI end-to-end check
//
// Topology:
//
//	            ┌────────────┐   /v1/cone /v1/object /v1/frame /v1/maghist
//	   HTTP ───►│ coordinator│   /healthz (fleet-wide)  /metrics (sky_shard_*)
//	            └─────┬──────┘
//	      framed TCP  │  scatter to trixel-overlapping shards only
//	        ┌─────────┼─────────┐
//	        ▼         ▼         ▼
//	   ┌────────┐ ┌────────┐ ┌────────┐
//	   │agent 0 │ │agent 1 │ │agent 2 │   each: private relstore.DB owning
//	   │[lo..a] │ │[a+1..b]│ │[b+1..hi]│  one contiguous HTM trixel range
//	   └────────┘ └────────┘ └────────┘
//
// -sim N runs the same coordinator/agent code over the in-process simulated
// transport on the DES kernel: N shards with modeled network latency and
// bandwidth, deterministic across runs — topologies far larger than the
// host can run for real.  -smoke drives a real 3-agent TCP fleet against a
// single-node oracle, kills and restores an agent mid-run, checks the
// /metrics scrape and verifies sim determinism; CI runs it as `make
// smoke-shard`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/httpserve"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/shard"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	var (
		agentMode = flag.Bool("agent", false, "run one shard agent")
		listen    = flag.String("listen", "127.0.0.1:7101", "agent: address to serve the framed protocol on")

		coordMode = flag.Bool("coordinator", false, "run the coordinator over a fleet of agents")
		agents    = flag.String("agents", "", "coordinator: comma-separated agent addresses")
		httpAddr  = flag.String("http", ":8080", "coordinator: HTTP front door address")

		simN  = flag.Int("sim", 0, "run an N-shard deterministic DES simulation")
		smoke = flag.Bool("smoke", false, "end-to-end CI check; nonzero exit on failure")

		size      = flag.Float64("size", 8, "nominal catalog MB to generate and load")
		nfiles    = flag.Int("files", 4, "number of catalog files")
		rowsPerMB = flag.Int("rows-per-mb", 150, "generated rows per nominal MB")
		seed      = flag.Int64("seed", 1, "random seed (catalog, workload, DES kernel)")
		nQueries  = flag.Int("queries", 400, "sim: number of queries to generate")
		coneFrac  = flag.Float64("cone-frac", 0.5, "sim: cone-search fraction of the workload")
		deferred  = flag.Bool("deferred", false, "wrap the fleet load in a BeginLoad/Seal window")
	)
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(); err != nil {
			fatal(err)
		}
		fmt.Println("smoke: OK")
	case *agentMode:
		if err := runAgent(*listen); err != nil {
			fatal(err)
		}
	case *coordMode:
		if err := runCoordinator(*agents, *httpAddr, *size, *nfiles, *rowsPerMB, *seed, *deferred); err != nil {
			fatal(err)
		}
	case *simN > 0:
		rep, err := shard.RunSim(shard.SimConfig{
			Shards:    *simN,
			Seed:      *seed,
			SizeMB:    *size,
			Files:     *nfiles,
			RowsPerMB: *rowsPerMB,
			Queries:   *nQueries,
			ConeFrac:  *coneFrac,
			Deferred:  *deferred,
		})
		if err != nil {
			fatal(err)
		}
		rep.Render(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runAgent serves one shard on a socket until interrupted.  The agent has no
// identity until a coordinator sends Hello.
func runAgent(listen string) error {
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
	a, err := shard.NewAgent(sched, shard.DefaultAgentConfig())
	if err != nil {
		return err
	}
	srv, err := shard.ServeAgent(a, sched, listen)
	if err != nil {
		return err
	}
	fmt.Printf("skyshard agent: serving on %s\n", srv.Addr())
	waitForSignal()
	return srv.Close()
}

// runCoordinator dials the fleet, partitions the sky from the generated
// night's footprints, loads through the agents and fronts the /v1 API.
func runCoordinator(agentList, httpAddr string, size float64, nfiles, rowsPerMB int, seed int64, deferred bool) error {
	addrs := splitNonEmpty(agentList)
	if len(addrs) == 0 {
		return fmt.Errorf("coordinator mode needs -agents host:port,host:port,...")
	}
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: seed})
	inline := sched // realtime implements exec.InlineRunner
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: size, Files: nfiles, RowsPerMB: rowsPerMB, Seed: seed, RunID: 1,
	})
	pm, err := shard.PartitionFromFiles(files, len(addrs))
	if err != nil {
		return err
	}
	clients := make([]shard.Client, len(addrs))
	for i, addr := range addrs {
		cl, err := shard.DialShard(addr)
		if err != nil {
			return err
		}
		clients[i] = cl
	}
	co, err := shard.New(sched, pm, clients, shard.Config{Deferred: deferred})
	if err != nil {
		return err
	}
	defer co.Close()

	var loadErr error
	inline.RunInline("skyshard-load", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			loadErr = err
			return
		}
		start := time.Now()
		rep, err := co.LoadFiles(w, files)
		if err != nil {
			loadErr = err
			return
		}
		fmt.Printf("fleet load: %d rows across %d files to %d shards in %s (%d tasks, %d rows filtered to peers)\n",
			rep.RowsLoaded, rep.Files, len(addrs), time.Since(start).Round(time.Millisecond), rep.Tasks, rep.RowsSkipped)
	})
	if loadErr != nil {
		return loadErr
	}

	front, err := httpserve.NewShard(co, httpserve.Config{})
	if err != nil {
		return err
	}
	addr, err := front.Start(httpAddr)
	if err != nil {
		return err
	}
	fmt.Printf("skyshard coordinator: %d shards, serving /v1 on http://%s\n", len(addrs), addr)
	waitForSignal()
	return front.Close()
}

// runSmoke is the CI end-to-end check: a real 3-agent TCP fleet verified
// byte-for-byte against a single-node oracle, an agent killed and restored
// mid-run, the /metrics scrape validated, and the DES sim run twice for
// determinism.
func runSmoke() error {
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 3, RowsPerMB: 150, Seed: 31})
	oracle, err := buildOracle(files)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	qs := smokeQueries(files)

	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 3})
	inline := exec.InlineRunner(sched)
	const n = 3
	servers := make([]*shard.AgentServer, n)
	clients := make([]shard.Client, n)
	for i := 0; i < n; i++ {
		a, err := shard.NewAgent(sched, shard.DefaultAgentConfig())
		if err != nil {
			return err
		}
		srv, err := shard.ServeAgent(a, sched, "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		servers[i] = srv
		cl, err := shard.DialShard(srv.Addr().String())
		if err != nil {
			return err
		}
		clients[i] = cl
	}
	pm, err := shard.PartitionFromFiles(files, n)
	if err != nil {
		return err
	}
	co, err := shard.New(sched, pm, clients, shard.Config{})
	if err != nil {
		return err
	}
	defer co.Close()

	var setupErr error
	var loaded int64
	inline.RunInline("smoke-setup", func(w exec.Worker) {
		if setupErr = co.Hello(w); setupErr != nil {
			return
		}
		var rep shard.LoadReport
		if rep, setupErr = co.LoadFiles(w, files); setupErr == nil {
			loaded = rep.RowsLoaded
		}
	})
	if setupErr != nil {
		return setupErr
	}
	if loaded == 0 {
		return fmt.Errorf("fleet loaded zero rows")
	}
	fmt.Printf("smoke: loaded %d rows across %d TCP shards\n", loaded, n)

	if err := verifyAgainstOracle(co, inline, oracle, qs); err != nil {
		return fmt.Errorf("initial verify: %w", err)
	}
	fmt.Printf("smoke: %d queries byte-identical to single-node oracle\n", len(qs))

	// Kill shard 1 and confirm the fleet reads unready, then restore onto a
	// fresh agent and re-verify.
	if err := servers[1].Close(); err != nil {
		return err
	}
	var ready bool
	inline.RunInline("smoke-probe", func(w exec.Worker) { ready = co.Ready(w) })
	if ready {
		return fmt.Errorf("fleet reported ready with a dead shard")
	}
	replacement, err := shard.NewAgent(sched, shard.DefaultAgentConfig())
	if err != nil {
		return err
	}
	srv, err := shard.ServeAgent(replacement, sched, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := shard.DialShard(srv.Addr().String())
	if err != nil {
		return err
	}
	var restoreErr error
	inline.RunInline("smoke-restore", func(w exec.Worker) { restoreErr = co.RestoreShard(w, 1, cl) })
	if restoreErr != nil {
		return fmt.Errorf("restore: %w", restoreErr)
	}
	if err := verifyAgainstOracle(co, inline, oracle, qs); err != nil {
		return fmt.Errorf("post-restore verify: %w", err)
	}
	fmt.Println("smoke: shard 1 killed, restored from the coordinator's replay log, re-verified")

	// The HTTP front door over the same fleet: one query per class and a
	// valid scrape carrying the sky_shard_* families.
	front, err := httpserve.NewShard(co, httpserve.Config{})
	if err != nil {
		return err
	}
	addr, err := front.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer front.Close()
	if err := checkHTTP("http://" + addr.String()); err != nil {
		return fmt.Errorf("http front: %w", err)
	}
	fmt.Println("smoke: /v1 front door served all classes; /metrics scrape valid with sky_shard_* families")

	// Sim determinism: the same config twice must render byte-identically.
	var out [2]bytes.Buffer
	for i := range out {
		rep, err := shard.RunSim(shard.SimConfig{Shards: 5, Seed: 99, SizeMB: 1, Files: 4, RowsPerMB: 120, Queries: 60})
		if err != nil {
			return fmt.Errorf("sim run %d: %w", i, err)
		}
		rep.Render(&out[i])
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		return fmt.Errorf("sim not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", out[0].String(), out[1].String())
	}
	fmt.Println("smoke: 5-shard DES sim deterministic across two runs")
	return nil
}

// buildOracle loads the files into a single-node database — the reference
// every scatter-gather answer must match byte for byte.
func buildOracle(files []*catalog.File) (*relstore.DB, error) {
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
	prof := tuning.ProductionLoading()
	db, err := relstore.Open(catalog.NewSchema(), prof.Options()...)
	if err != nil {
		return nil, err
	}
	txn, err := db.Begin()
	if err != nil {
		return nil, err
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		return nil, err
	}
	if _, err := txn.Commit(); err != nil {
		return nil, err
	}
	if err := prof.Apply(db); err != nil {
		return nil, err
	}
	srv := sqlbatch.NewServerOn(sched, db, prof.ServerConfig(), sqlbatch.DefaultCostModel())
	_, err = parallel.Run(srv, files, parallel.Config{
		Loaders:       1,
		Loader:        core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
		SealAfterLoad: prof.DeferredIndexBuild,
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// smokeQueries is a small mixed workload aimed at the generated footprint.
func smokeQueries(files []*catalog.File) []queries.Query {
	trace := serve.GenTrace(serve.TraceSpec{
		Queries:    20,
		Seed:       909,
		ConeFrac:   0.5,
		Objects:    128,
		IDBase:     100_000_000,
		Frames:     12,
		RatePerSec: 100,
	}.WithFootprint(files))
	qs := make([]queries.Query, 0, len(trace)+4)
	for _, r := range trace {
		qs = append(qs, r.Query)
	}
	// Fixed cases: a hit cone, an empty cone, a miss lookup, a histogram.
	qs = append(qs,
		queries.Cone{RA: files[0].RABase + 1.0, Dec: files[0].DecBase + 0.4, RadiusDeg: 1.5},
		queries.Cone{RA: 200, Dec: -75, RadiusDeg: 0.2},
		queries.ObjectLookup{ObjectID: 42},
		queries.MagHistogram{BinWidth: 0.5},
	)
	return qs
}

// verifyAgainstOracle requires every fleet answer to JSON-match the oracle's
// and at least one query to return rows (an all-empty pass proves nothing).
func verifyAgainstOracle(co *shard.Coordinator, inline exec.InlineRunner, oracle *relstore.DB, qs []queries.Query) error {
	nonEmpty := 0
	for i, q := range qs {
		want, err := q.Run(oracle)
		if err != nil {
			return fmt.Errorf("query %d: oracle: %w", i, err)
		}
		var got queries.Result
		var execErr error
		inline.RunInline("smoke-query", func(w exec.Worker) {
			got, execErr = co.Execute(w, q, nil)
		})
		if execErr != nil {
			return fmt.Errorf("query %d (%s): fleet: %w", i, q.Class(), execErr)
		}
		wantJS, _ := json.Marshal(struct {
			Objects []queries.Object
			Bins    []queries.MagnitudeBin
		}{want.Objects, want.Bins})
		gotJS, _ := json.Marshal(struct {
			Objects []queries.Object
			Bins    []queries.MagnitudeBin
		}{got.Objects, got.Bins})
		if !bytes.Equal(wantJS, gotJS) {
			return fmt.Errorf("query %d (%s): fleet differs from oracle\n got %s\nwant %s", i, q.Class(), gotJS, wantJS)
		}
		if len(want.Objects)+len(want.Bins) > 0 {
			nonEmpty++
		}
		if !reflect.DeepEqual(want.Stats.RowsReturned, got.Stats.RowsReturned) {
			return fmt.Errorf("query %d (%s): rows returned %d != oracle %d", i, q.Class(), got.Stats.RowsReturned, want.Stats.RowsReturned)
		}
	}
	if nonEmpty == 0 {
		return fmt.Errorf("all %d queries returned empty results", len(qs))
	}
	return nil
}

// checkHTTP drives one query per class through the front door and validates
// the /metrics scrape.
func checkHTTP(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, q := range []queries.Query{
		queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2},
		queries.ObjectLookup{ObjectID: 100_000_010},
		queries.FrameObjects{FrameID: 3},
		queries.MagHistogram{BinWidth: 0.5},
	} {
		u, err := httpserve.QueryURL(q)
		if err != nil {
			return err
		}
		resp, err := client.Get(base + u)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", u, resp.StatusCode, body)
		}
	}
	resp, err := client.Get(base + httpserve.PathHealthz)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp, err = client.Get(base + httpserve.PathMetrics)
	if err != nil {
		return err
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	families, err := metrics.PromValid(string(scrape))
	if err != nil {
		return fmt.Errorf("metrics: invalid exposition: %w", err)
	}
	for _, want := range []string{
		"sky_shard_count", "sky_shard_fanout_total", "sky_shard_requests_total",
		"sky_shard_gather_seconds", "sky_shard_wire_bytes_total", "sky_shard_ready",
	} {
		if !families[want] {
			return fmt.Errorf("metrics: scrape missing family %s", want)
		}
	}
	return nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skyshard:", err)
	os.Exit(1)
}
