package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/httpserve"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/tuning"
)

// runHTTP loads the catalog on the realtime engine and serves the query API
// over HTTP until interrupted (or, with -smoke, self-checks and exits).
func runHTTP(addr string, seed int64, prof tuning.Profile, files []*catalog.File,
	serveCfg serve.Config, loaders int, ingestOpts []relstore.Option, traceEvery int, smoke bool) {
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: seed})
	load, qs, db := buildEnv(sched, prof, serveCfg, ingestOpts)

	loadRes, err := parallel.Run(load, files, parallel.Config{
		Loaders:       loaders,
		Loader:        core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
		SealAfterLoad: prof.DeferredIndexBuild,
	})
	if err != nil {
		fatal(err)
	}
	printLoad(&loadRes, false, 0)
	if !db.Ready() {
		fatal(fmt.Errorf("indexes not ready after load"))
	}

	front, err := httpserve.New(qs, httpserve.Config{TraceEvery: traceEvery})
	if err != nil {
		fatal(err)
	}
	bound, err := front.Start(addr)
	if err != nil {
		fatal(err)
	}
	defer front.Close()
	fmt.Printf("serving HTTP on %s (%s %s %s %s; %s; %s; %s)\n", bound,
		httpserve.PathCone, httpserve.PathObject, httpserve.PathFrame, httpserve.PathMagHist,
		httpserve.PathMetrics, httpserve.PathHealthz, httpserve.PathTraces)

	if smoke {
		if err := httpSmoke("http://" + bound.String()); err != nil {
			fmt.Fprintln(os.Stderr, "skyserve: http smoke failed:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: OK")
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	rep := qs.Report(sched.Now())
	if err := rep.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// httpSmoke drives one request per query class against a running front door
// and validates the /metrics scrape — the CI check that the wire API and the
// exporter actually work end to end, not just in-process.
func httpSmoke(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) (int, []byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}

	if status, body, err := get(httpserve.PathHealthz); err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: status %d err %v body %s", status, err, body)
	}
	for _, q := range []queries.Query{
		queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2},
		queries.ObjectLookup{ObjectID: 100_000_010},
		queries.FrameObjects{FrameID: 3},
		queries.MagHistogram{BinWidth: 0.5},
	} {
		u, err := httpserve.QueryURL(q)
		if err != nil {
			return err
		}
		status, body, err := get(u)
		if err != nil {
			return fmt.Errorf("%s: %v", u, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("%s: status %d body %s", u, status, body)
		}
	}
	status, body, err := get(httpserve.PathMetrics)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("metrics: status %d err %v", status, err)
	}
	families, err := metrics.PromValid(string(body))
	if err != nil {
		return fmt.Errorf("invalid /metrics payload: %v", err)
	}
	for _, want := range []string{
		"sky_db_rows_inserted_total", "sky_wal_syncs_total", "sky_buffer_cache_hits_total",
		"sky_serve_requests_total", "sky_serve_latency_seconds", "sky_http_requests_total",
	} {
		if !families[want] {
			return fmt.Errorf("scrape missing metric family %s", want)
		}
	}
	fmt.Printf("http smoke: %d metric families valid\n", len(families))
	return nil
}
