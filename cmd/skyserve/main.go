// Command skyserve loads a synthetic catalog into the repository and serves
// a query workload against it — the other half of the paper's dual-purpose
// system: "a query engine to support scientific research" (§4.5.1) running
// over the same tables the bulk loaders fill.
//
// Usage:
//
//	skyserve -size 20 -files 8 -queries 2000            # load, then serve
//	skyserve -mixed -size 20 -queries 2000              # serve WHILE loading
//	skyserve -mixed -engine both -queries 2000          # both engines
//	skyserve -trace trace.csv -size 20                  # replay a skygen trace
//	skyserve -fig8 -queries 2000                        # index policies, live
//	skyserve -smoke                                     # tiny end-to-end check
//	skyserve -http :8080 -size 20                       # load, then serve HTTP
//	skyserve -http 127.0.0.1:0 -smoke                   # HTTP self-scrape check
//
// -http loads the catalog and then serves the query API over HTTP (see
// internal/httpserve: /v1/cone, /v1/object, /v1/frame, /v1/maghist, plus
// /metrics in Prometheus text format, /healthz, /debug/traces and
// /debug/pprof) until interrupted.  The HTTP front door requires the
// realtime engine; cmd/skystorm is the matching load driver.  With -smoke
// the server starts, answers one query per class, validates its own
// /metrics scrape and exits.
//
// Execution engines: -engine des serves in deterministic virtual time (query
// latency modeled by a cost model — reproducible capacity planning); -engine
// realtime serves with real goroutines and wall-clock latency; -engine both
// (the default for -mixed and -smoke) runs DES first and realtime after,
// printing one report per engine.
//
// The mixed scenario is the paper-relevant one: queries execute while bulk
// loading continues, so the loading-phase index policy (-profile, Figure 8)
// is visible as query latency and cache hit rate, not just loading cost.
// -fig8 sweeps the index policies over the same mixed workload — which
// indices exist crossed with the engine's immediate|deferred build policy
// (deferred wraps the load in BeginLoad/Seal and bulk-builds at the end).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	var (
		size      = flag.Float64("size", 10, "nominal catalog MB to generate and load")
		nfiles    = flag.Int("files", 4, "number of catalog files")
		rowsPerMB = flag.Int("rows-per-mb", 100, "generated rows per nominal MB")
		seed      = flag.Int64("seed", 1, "random seed (catalog, workload and DES engine)")
		profile   = flag.String("profile", "production", "tuning profile: production|untuned|query")
		loaders   = flag.Int("loaders", 4, "loader nodes (mixed mode)")

		nQueries = flag.Int("queries", 1000, "number of queries to generate (ignored with -trace)")
		zipfS    = flag.Float64("zipf", 1.2, "Zipf skew of the generated workload")
		coneFrac = flag.Float64("cone-frac", 0.4, "cone-search fraction of the generated workload")
		rate     = flag.Float64("rate", 0, "arrival rate in qps (0 = auto: spread over the load window)")
		tracePth = flag.String("trace", "", "replay a CSV query trace written by skygen -queries")

		workers  = flag.Int("workers", 4, "query worker pool size")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		deadline = flag.Duration("deadline", 2*time.Second, "per-query queue-wait deadline (0 disables)")
		cacheSz  = flag.Int("cache", 128, "result-cache entries per shard (negative disables the cache)")
		shards   = flag.Int("cache-shards", 8, "result-cache shard count")

		httpAddr   = flag.String("http", "", "serve the query API over HTTP on this address (realtime engine)")
		traceEvery = flag.Int("trace-every", 16, "HTTP mode: sample one request in N into the trace ring")

		mixed  = flag.Bool("mixed", false, "serve queries WHILE bulk loading runs (default: load first)")
		engine = flag.String("engine", "", "des|realtime|both (default: des, or both with -mixed/-smoke)")
		fig8   = flag.Bool("fig8", false, "sweep index policies over the mixed workload (DES)")
		smoke  = flag.Bool("smoke", false, "tiny end-to-end run for CI; nonzero exit on failure")

		groupCommit  = flag.Duration("group-commit", 0, "group-commit window (0 disables; e.g. 200us)")
		groupWaiters = flag.Int("group-waiters", 0, "max transactions per commit group (0 = default)")
		lockChunk    = flag.Int("lock-chunk", 0, "InsertBatch lock-chunk rows (0 = one lock hold per batch)")
	)
	flag.Parse()

	if *smoke {
		*size, *nfiles, *nQueries, *loaders, *workers = 4, 2, 400, 2, 2
		if *httpAddr == "" {
			*mixed = true
			if *engine == "" {
				*engine = "both"
			}
		}
	}
	if *engine == "" {
		if *mixed {
			*engine = "both"
		} else {
			*engine = "des"
		}
	}

	prof, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: *size, Files: *nfiles, RowsPerMB: *rowsPerMB, Seed: *seed, RunID: 1,
	})

	trace, err := buildTrace(*tracePth, *nQueries, *seed, *zipfS, *coneFrac, *rate, *size, *rowsPerMB, files)
	if err != nil {
		fatal(err)
	}

	serveCfg := serve.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		Deadline:             *deadline,
		CacheShards:          *shards,
		CacheEntriesPerShard: *cacheSz,
	}
	if *cacheSz < 0 {
		serveCfg.CacheShards = -1
	}

	// Ingest-mode options ride along with the profile's: group commit
	// coalesces WAL syncs across concurrent committers, chunked locking lets
	// readers in between batch sub-chunks (see PERFORMANCE.md, "Ingest
	// modes").
	var ingestOpts []relstore.Option
	if *groupCommit > 0 {
		ingestOpts = append(ingestOpts, relstore.WithGroupCommit(*groupCommit, *groupWaiters))
	}
	if *lockChunk > 0 {
		ingestOpts = append(ingestOpts, relstore.WithBatchLockChunk(*lockChunk))
	}

	if *httpAddr != "" {
		runHTTP(*httpAddr, *seed, prof, files, serveCfg, *loaders, ingestOpts, *traceEvery, *smoke)
		return
	}

	if *fig8 {
		runFig8(files, trace, serveCfg, *loaders, *seed)
		return
	}

	engines, err := enginesFor(*engine)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, eng := range engines {
		rep, loadRes, ingestRPS, err := runOne(eng, *seed, prof, files, trace, serveCfg, *loaders, *mixed, ingestOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== engine: %s ===\n", eng)
		printLoad(loadRes, *mixed, ingestRPS)
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		if rep.Served == 0 || rep.Errors > 0 {
			failed = true
		}
	}
	if *smoke {
		if failed {
			fmt.Fprintln(os.Stderr, "skyserve: smoke run failed (nothing served or errors reported)")
			os.Exit(1)
		}
		fmt.Println("smoke: OK")
	}
}

// buildTrace reads a CSV trace or generates one matched to the files: the
// object-id universe follows the generated rows, and with -rate 0 arrivals
// are spread so the trace roughly spans the virtual load window.
func buildTrace(path string, n int, seed int64, zipfS, coneFrac, rate, sizeMB float64, rowsPerMB int, files []*catalog.File) ([]serve.Request, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return serve.ReadTrace(f)
	}
	if rate <= 0 {
		// The DES load of S nominal MB takes very roughly S/2 virtual
		// seconds at paper throughput; aim the whole trace at ~that window.
		window := sizeMB / 2
		if window < 1 {
			window = 1
		}
		rate = float64(n) / window
	}
	// Objects per file ≈ rows/file × the generator's object share (~1/8).
	objects := int64(sizeMB*float64(rowsPerMB)) / 8 / int64(len(files))
	if objects < 64 {
		objects = 64
	}
	spec := serve.TraceSpec{
		Queries:    n,
		Seed:       seed + 1000,
		ZipfS:      zipfS,
		ConeFrac:   coneFrac,
		Objects:    objects,
		IDBase:     100_000_000, // GenerateNight file 1
		Frames:     objects / 12,
		RatePerSec: rate,
	}.WithFootprint(files) // aim cones at the sky the files actually cover
	return serve.GenTrace(spec), nil
}

func enginesFor(s string) ([]string, error) {
	switch s {
	case "des":
		return []string{"des"}, nil
	case "realtime", "rt", "wallclock":
		return []string{"realtime"}, nil
	case "both":
		return []string{"des", "realtime"}, nil
	}
	return nil, fmt.Errorf("unknown engine %q (want des|realtime|both)", s)
}

// buildEnv assembles a fresh database, load server and query server on a
// scheduler.  extra options (ingest-mode flags) are applied after the
// profile's so they win on conflict.
func buildEnv(sched exec.Scheduler, prof tuning.Profile, serveCfg serve.Config, extra []relstore.Option) (*sqlbatch.Server, *serve.Server, *relstore.DB) {
	db, err := relstore.Open(catalog.NewSchema(), append(prof.Options(), extra...)...)
	if err != nil {
		fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		fatal(err)
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		fatal(err)
	}
	if err := prof.Apply(db); err != nil {
		fatal(err)
	}
	load := sqlbatch.NewServerOn(sched, db, prof.ServerConfig(), sqlbatch.DefaultCostModel())
	return load, serve.NewServer(sched, db, serveCfg), db
}

// runOne executes one engine's run and returns the serve report and, in
// mixed mode, the load result and ingest throughput (rows/s over the load
// window).
func runOne(engine string, seed int64, prof tuning.Profile, files []*catalog.File, trace []serve.Request,
	serveCfg serve.Config, loaders int, mixed bool, ingestOpts []relstore.Option) (serve.Report, *parallel.Result, float64, error) {
	var sched exec.Scheduler
	if engine == "des" {
		sched = exec.NewDES(des.NewKernel(seed))
	} else {
		sched = exec.NewRealtime(exec.RealtimeConfig{Seed: seed})
	}
	load, qs, db := buildEnv(sched, prof, serveCfg, ingestOpts)
	loadCfg := parallel.Config{
		Loaders:       loaders,
		Loader:        core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
		SealAfterLoad: prof.DeferredIndexBuild,
	}

	if mixed {
		res, err := serve.RunMixed(load, files, loadCfg, qs, trace)
		if err != nil {
			return serve.Report{}, nil, 0, err
		}
		if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
			return serve.Report{}, nil, 0, fmt.Errorf("%d orphaned rows after mixed run", orphans)
		}
		return res.Serve, &res.Load, res.IngestRowsPerSec, nil
	}
	loadRes, err := parallel.Run(load, files, loadCfg)
	if err != nil {
		return serve.Report{}, nil, 0, err
	}
	rep := qs.Serve(trace)
	return rep, &loadRes, 0, nil
}

func printLoad(res *parallel.Result, mixed bool, ingestRPS float64) {
	if res == nil {
		return
	}
	mode := "load-then-serve"
	if mixed {
		mode = "mixed load+serve"
	}
	fmt.Printf("%s: %d rows loaded across %d files in %s (%.3f MB/s) on %d CPUs\n",
		mode, res.Total.RowsLoaded, res.Total.Files, res.WallTime.Round(time.Microsecond),
		res.ThroughputMBps, runtime.NumCPU())
	if mixed && ingestRPS > 0 {
		fmt.Printf("ingest throughput: %.0f rows/s over the load window\n", ingestRPS)
	}
}

// runFig8 sweeps the loading-phase index policies over the same mixed
// workload on the DES engine: the Figure 8 trade-off (index maintenance cost
// during loading) observed from the query side as latency and hit rate.  On
// top of the paper's three which-indices policies, the sweep exercises the
// engine's real load-policy object: each indexed configuration runs once with
// immediate per-batch maintenance and once deferred (BeginLoad → load →
// Seal), with the bulk rebuild time reported as seal_s and included in
// load_time_s.
func runFig8(files []*catalog.File, trace []serve.Request, serveCfg serve.Config, loaders int, seed int64) {
	type sweepPoint struct {
		indexes  tuning.IndexPolicy
		deferred bool
	}
	points := []sweepPoint{
		{tuning.NoIndexes, false},
		{tuning.HTMIDOnly, false},
		{tuning.HTMIDOnly, true},
		{tuning.HTMIDPlusComposite, false},
		{tuning.HTMIDPlusComposite, true},
	}
	t := &metrics.Table{
		Title:   "Figure 8, live: loading-phase index policy vs mixed-workload serving",
		Columns: []string{"index_policy", "build", "load_time_s", "seal_s", "load_MBps", "served", "cone_p50_ms", "cone_p95_ms", "cone_p99_ms", "hit_rate"},
		Notes: []string{
			"DES engine: deterministic virtual time, one seed, identical workload per row",
			"cone latency includes queue wait; without a ready htmid index cones full-scan the objects table",
			"build=deferred suspends index maintenance during the load and bulk-builds at Seal; load_time_s includes seal_s",
		},
	}
	for _, pt := range points {
		prof := tuning.ProductionLoading()
		prof.Indexes = pt.indexes
		prof.DeferredIndexBuild = pt.deferred
		rep, loadRes, _, err := runOne("des", seed, prof, files, trace, serveCfg, loaders, true, nil)
		if err != nil {
			fatal(err)
		}
		var cone serve.ClassReport
		for _, c := range rep.Classes {
			if c.Class == queries.ClassCone {
				cone = c
			}
		}
		t.AddRow(pt.indexes.String(), prof.BuildPolicy().String(),
			loadRes.WallTime.Seconds(), loadRes.SealTime.Seconds(), loadRes.ThroughputMBps, rep.Served,
			float64(cone.Latency.P50)/1e6, float64(cone.Latency.P95)/1e6, float64(cone.Latency.P99)/1e6,
			rep.Cache.HitRate())
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func profileByName(name string) (tuning.Profile, error) {
	switch name {
	case "production", "prod":
		return tuning.ProductionLoading(), nil
	case "untuned":
		return tuning.Untuned(), nil
	case "query", "query-serving":
		return tuning.QueryServing(), nil
	default:
		return tuning.Profile{}, fmt.Errorf("unknown profile %q (want production|untuned|query)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skyserve:", err)
	os.Exit(1)
}
