package main

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"

	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

// The -crash scenario is the end-to-end durability check: load a generated
// night into a WAL-backed store, kill the process (via a fault-point panic)
// at a random log append, recover from the directory, resume the remaining
// batches, and require the final state — row counts, per-index iteration
// order, stats row totals — to be byte-identical to an uninterrupted
// in-memory run of the same plan.  Everything is derived from -seed, so a
// fixed seed gives a fixed kill point and fixed output for CI.

// crashKilled is the sentinel the kill hook panics with; anything else
// escaping the load is a real bug and re-panics.
type crashKilled struct{ append int64 }

// crashBatch is one planned transaction: a contiguous run of transformed
// rows committed together.
type crashBatch []catalog.TransformedRow

// runCrash drives the scenario and exits nonzero on any divergence.
func runCrash(seed int64, sizeMB float64, batchRows int, verbose bool) {
	if sizeMB <= 0 {
		sizeMB = 2
	}
	if batchRows <= 0 {
		batchRows = 40
	}
	file := catalog.Generate(catalog.GenSpec{
		SizeMB: sizeMB, RowsPerMB: 100, Seed: seed, ErrorRate: 0,
		RunID: 1, IDBase: 10_000_000,
	})

	// Transform every record up front so both runs apply the identical plan.
	tr := catalog.NewTransformer(catalog.NewSchema())
	var rows []catalog.TransformedRow
	for _, rec := range file.Records {
		row, err := tr.Transform(rec)
		if err != nil {
			fatal(fmt.Errorf("crash scenario: clean input failed to transform: %w", err))
		}
		rows = append(rows, row)
	}
	var batches []crashBatch
	for i := 0; i < len(rows); i += batchRows {
		end := i + batchRows
		if end > len(rows) {
			end = len(rows)
		}
		batches = append(batches, crashBatch(rows[i:end]))
	}
	fmt.Printf("crash scenario:      seed=%d rows=%d batches=%d (batch=%d)\n",
		seed, len(rows), len(batches), batchRows)

	// Reference: the same plan, uninterrupted, on a plain in-memory store.
	ref := openCrashDB(nil)
	applyCrashBatches(ref, batches, 0)
	refDigest := crashDigest(ref)

	// Crash run: durable store, killed at a random append once the load is
	// past seeding.  Small segments and an aggressive auto-checkpoint make
	// the recovery exercise rotation, truncation and checkpoint-bounded
	// replay, not just a single-segment scan.
	walDir, err := os.MkdirTemp("", "skyload-crash-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(walDir)

	// Every row insert and commit marker is one append; killing within that
	// budget is guaranteed to interrupt the load.
	rng := rand.New(rand.NewSource(seed * 7919))
	killAt := 1 + rng.Int63n(int64(len(rows)+len(batches)))
	var armed bool
	var appends int64
	kill := func(p relstore.FaultPoint) error {
		if p == relstore.FPWALAppend && armed {
			if appends++; appends >= killAt {
				panic(crashKilled{append: appends})
			}
		}
		return nil
	}
	durableOpts := []relstore.Option{
		relstore.WithWALDir(walDir),
		relstore.WithWALSegmentBytes(8 << 10),
		relstore.WithCheckpointEvery(16 << 10),
		relstore.WithFaultHook(kill),
	}
	crashDB := openCrashDB(durableOpts)
	armed = true
	committed, kp := applyCrashBatchesUntilKilled(crashDB, batches)
	if kp < 0 {
		fatal(fmt.Errorf("crash scenario: kill at append %d never fired (%d appends seen)", killAt, appends))
	}
	armed = false
	fmt.Printf("killed:              at log append %d, %d/%d batches committed\n",
		kp, committed, len(batches))

	// Recover from the directory the dead process left behind, rebuild the
	// secondary indexes (they live outside the schema), and resume the load
	// from the first uncommitted batch.
	prof := tuning.ProductionLoading()
	recoverOpts := append([]relstore.Option{relstore.WithConfig(prof.DBConfig())}, durableOpts[1:]...)
	rec, rep, err := relstore.Recover(catalog.NewSchema(), walDir, recoverOpts...)
	if err != nil {
		fatal(fmt.Errorf("crash scenario: recover: %w", err))
	}
	if err := tuning.ApplyIndexPolicyWith(rec, prof.Indexes, relstore.IndexImmediate); err != nil {
		fatal(err)
	}
	fmt.Printf("recovered:           checkpoint rows=%d replayed records=%d rows=%d torn=%d discarded txns=%d\n",
		rep.CheckpointRows, rep.ReplayedRecords, rep.ReplayedRows, rep.TornTailRecords, rep.DiscardedTxns)
	applyCrashBatches(rec, batches, committed)
	fmt.Printf("resumed:             %d batches\n", len(batches)-committed)

	gotDigest := crashDigest(rec)
	if err := compareCrashDigests(refDigest, gotDigest); err != nil {
		fmt.Printf("crash/recover: MISMATCH: %v\n", err)
		os.Exit(1)
	}
	if verbose {
		for _, td := range refDigest {
			fmt.Printf("  %-22s rows=%-8d indexes=%d\n", td.table, td.rows, len(td.indexes))
		}
	}
	fmt.Printf("verified:            %d tables, per-index iteration order and stats identical\n", len(refDigest))
	fmt.Println("crash/recover: OK")
}

// openCrashDB builds the store the way the bulk loader does: production
// tuning, reference tables seeded, secondary indexes applied.
func openCrashDB(extra []relstore.Option) *relstore.DB {
	prof := tuning.ProductionLoading()
	opts := append([]relstore.Option{
		relstore.WithConfig(prof.DBConfig()),
		relstore.WithIndexPolicy(relstore.IndexImmediate),
	}, extra...)
	db, err := relstore.Open(catalog.NewSchema(), opts...)
	if err != nil {
		fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		fatal(err)
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		fatal(err)
	}
	if err := tuning.ApplyIndexPolicyWith(db, prof.Indexes, relstore.IndexImmediate); err != nil {
		fatal(err)
	}
	return db
}

// applyCrashBatches commits batches[from:] one transaction each.
func applyCrashBatches(db *relstore.DB, batches []crashBatch, from int) {
	for i := from; i < len(batches); i++ {
		txn, err := db.Begin()
		if err != nil {
			fatal(err)
		}
		for _, row := range batches[i] {
			if _, err := txn.Insert(row.Table, row.Columns, row.Values); err != nil {
				fatal(fmt.Errorf("crash scenario: batch %d insert into %s: %w", i, row.Table, err))
			}
		}
		if _, err := txn.Commit(); err != nil {
			fatal(err)
		}
	}
}

// applyCrashBatchesUntilKilled applies batches until the kill hook fires.
// It returns the number of fully committed batches and the append the kill
// fired at, or -1 if the whole load completed.
func applyCrashBatchesUntilKilled(db *relstore.DB, batches []crashBatch) (committed int, killAppend int64) {
	killAppend = -1
	func() {
		defer func() {
			if r := recover(); r != nil {
				k, ok := r.(crashKilled)
				if !ok {
					panic(r)
				}
				killAppend = k.append
			}
		}()
		applyCrashBatches(db, batches, 0)
	}()
	if killAppend < 0 {
		return len(batches), -1
	}
	return countCommittedBatches(db, batches), killAppend
}

// countCommittedBatches reports the length of the committed batch prefix by
// probing each batch's last row; the load is sequential, so commits form a
// prefix.
func countCommittedBatches(db *relstore.DB, batches []crashBatch) int {
	n := 0
	for _, b := range batches {
		last := b[len(b)-1]
		pk := []relstore.Value{last.Values[0]}
		row, err := db.LookupByPK(last.Table, pk)
		if err != nil || row == nil {
			break
		}
		n++
	}
	return n
}

// crashTableDigest is one table's comparable state.
type crashTableDigest struct {
	table   string
	rows    int64
	indexes map[string]uint64 // index name -> iteration-order hash
}

// crashDigest captures row counts, stats totals and a per-index hash of the
// full ascend order (key bytes and row-id postings).
func crashDigest(db *relstore.DB) []crashTableDigest {
	var out []crashTableDigest
	names := db.Schema().TableNames()
	sort.Strings(names)
	for _, name := range names {
		t := db.Table(name)
		td := crashTableDigest{table: name, rows: t.RowCount(), indexes: map[string]uint64{}}
		for _, ix := range t.Indexes() {
			h := fnv.New64a()
			ix.Tree().AscendRange(nil, nil, func(key []byte, rowIDs []int64) bool {
				_, _ = h.Write(key)
				for _, id := range rowIDs {
					var b [8]byte
					for i := 0; i < 8; i++ {
						b[i] = byte(id >> (8 * i))
					}
					_, _ = h.Write(b[:])
				}
				return true
			})
			td.indexes[ix.Name] = h.Sum64()
		}
		out = append(out, td)
	}
	// Stats totals ride along as a pseudo-table so one comparison covers
	// everything the scenario promises.
	snap := db.StatsSnapshot()
	out = append(out, crashTableDigest{
		table:   "(stats)",
		rows:    snap.DB.RowsInserted,
		indexes: map[string]uint64{"total_rows": uint64(snap.TotalRows)},
	})
	return out
}

// compareCrashDigests reports the first divergence between two digests.
func compareCrashDigests(want, got []crashTableDigest) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d tables vs %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.table != g.table {
			return fmt.Errorf("table order %q vs %q", w.table, g.table)
		}
		if w.rows != g.rows {
			return fmt.Errorf("table %s: %d rows vs %d", w.table, w.rows, g.rows)
		}
		if len(w.indexes) != len(g.indexes) {
			return fmt.Errorf("table %s: %d indexes vs %d", w.table, len(w.indexes), len(g.indexes))
		}
		for name, wh := range w.indexes {
			gh, ok := g.indexes[name]
			if !ok {
				return fmt.Errorf("table %s: index %s missing after recovery", w.table, name)
			}
			if wh != gh {
				return fmt.Errorf("table %s: index %s iteration order diverged", w.table, name)
			}
		}
	}
	return nil
}
