// Command skyload loads catalog files into a simulated Palomar-Quest
// repository with the SkyLoader framework and reports loading statistics:
// rows loaded per table, rows skipped and why, database calls, commits, and
// the virtual loading time the same run would have taken on the paper's
// hardware.
//
// Usage:
//
//	skyload night01/*.cat                      # parallel bulk load (defaults)
//	skyload -loaders 1 -batch 40 file.cat      # single-process bulk load
//	skyload -nonbulk file.cat                  # row-at-a-time baseline
//	skyload -profile untuned night01/*.cat     # eager indices, frequent commits
//	skyload -index-policy deferred night01/*.cat # suspend index maintenance, bulk-build at Seal
//	skyload -config campaign.json night01/*.cat # JSON campaign configuration
//	skyload -size 200                          # no files: generate 200 MB in memory
//	skyload -wallclock -loaders 4 -size 200    # real goroutines, wall-clock timing
//	skyload -crash -seed 7 -size 2             # kill/recover durability scenario
//
// When -config is given the campaign file (see internal/loadconfig) supplies
// the loader tunables, parallelism and database tuning, and the individual
// -loaders/-batch/-array/-commit-every/-profile/-static flags are ignored.
//
// Execution modes: by default the load runs on the deterministic
// discrete-event kernel and the reported load time is *virtual* — the time
// the same run would have taken on the paper's hardware.  With -wallclock
// the loaders are real goroutines against the concurrent engine, the
// reported time is real elapsed time on this host, and the deterministic
// simulation is run alongside so the report shows the real measurement next
// to the virtual-time prediction.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/loadconfig"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	var (
		loaders    = flag.Int("loaders", 5, "number of concurrent loader processes")
		batch      = flag.Int("batch", 40, "rows per database call (batch-size)")
		array      = flag.Int("array", 1000, "rows per buffer array (array-size)")
		commit     = flag.Int("commit-every", 0, "commit every N batches (0 = end of each file)")
		nonBulk    = flag.Bool("nonbulk", false, "use the row-at-a-time baseline loader")
		static     = flag.Bool("static", false, "use static file assignment instead of dynamic")
		profile    = flag.String("profile", "production", "tuning profile: production|untuned|query")
		idxBuild   = flag.String("index-policy", "immediate", "secondary-index maintenance: immediate (per batch) or deferred (bulk-build at end-of-load Seal)")
		configPath = flag.String("config", "", "JSON campaign configuration file (overrides the tuning flags)")
		size       = flag.Float64("size", 0, "generate a catalog of this nominal MB instead of reading files")
		nfiles     = flag.Int("files", 1, "number of files to split a generated -size catalog into (parallel loaders need >1)")
		rowsPerMB  = flag.Int("rows-per-mb", 100, "generated rows per nominal MB (for -size and provenance)")
		errRate    = flag.Float64("error-rate", 0.002, "error rate for generated input")
		seed       = flag.Int64("seed", 1, "random seed")
		provenance = flag.Bool("provenance", false, "record load_runs/load_errors provenance rows")
		verbose    = flag.Bool("v", false, "print per-table row counts and skipped-row details")
		wallclock  = flag.Bool("wallclock", false, "run loaders as real goroutines and report real elapsed time")
		timescale  = flag.Float64("timescale", 0, "with -wallclock: multiply simulated service costs into real sleeps (0 = skip them)")

		groupCommit  = flag.Duration("group-commit", 0, "with -wallclock: group-commit window (0 disables; e.g. 200us)")
		groupWaiters = flag.Int("group-waiters", 0, "with -wallclock: max transactions per commit group (0 = default)")
		lockChunk    = flag.Int("lock-chunk", 0, "with -wallclock: InsertBatch lock-chunk rows (0 = one lock hold per batch)")

		crash = flag.Bool("crash", false, "run the kill/recover durability scenario: WAL-backed load killed at a random append (derived from -seed), recovered, resumed, and verified byte-identical to an uninterrupted run")
	)
	flag.Parse()

	if *crash {
		runCrash(*seed, *size, *batch, *verbose)
		return
	}

	// Resolve the campaign settings: either a JSON configuration file or the
	// individual flags plus a named tuning profile.
	var (
		dbCfg       relstore.Config
		srvCfg      sqlbatch.ServerConfig
		indexPolicy tuning.IndexPolicy
		buildPolicy relstore.IndexPolicy
		loaderCfg   core.Config
		clusterCfg  parallel.Config
	)
	if *configPath != "" {
		campaign, err := loadconfig.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		dbCfg = campaign.DBConfig()
		srvCfg = campaign.ServerConfig()
		indexPolicy = campaign.IndexPolicyValue()
		buildPolicy = campaign.BuildPolicyValue()
		loaderCfg = campaign.LoaderConfig()
		loaderCfg.RecordProvenance = loaderCfg.RecordProvenance || *provenance
		clusterCfg = campaign.ClusterConfig()
		clusterCfg.Loader = loaderCfg
		if campaign.Seed != 0 {
			*seed = campaign.Seed
		}
		if campaign.RowsPerMB > 0 {
			*rowsPerMB = campaign.RowsPerMB
		}
	} else {
		prof, err := profileByName(*profile)
		if err != nil {
			fatal(err)
		}
		buildPolicy, err = relstore.ParseIndexPolicy(*idxBuild)
		if err != nil {
			fatal(err)
		}
		dbCfg = prof.DBConfig()
		srvCfg = prof.ServerConfig()
		indexPolicy = prof.Indexes
		loaderCfg = core.Config{
			BatchSize:          *batch,
			ArraySize:          *array,
			CommitEveryBatches: *commit,
			RecordProvenance:   *provenance,
			ChargeStaging:      true,
		}
		if loaderCfg.CommitEveryBatches == 0 {
			loaderCfg.CommitEveryBatches = prof.CommitEveryBatches
		}
		assignment := parallel.Dynamic
		if *static {
			assignment = parallel.Static
		}
		clusterCfg = parallel.Config{
			Loaders:       *loaders,
			Assignment:    assignment,
			Loader:        loaderCfg,
			SealAfterLoad: buildPolicy == relstore.IndexDeferred,
		}
	}
	clusterCfg.NonBulk = *nonBulk

	// Assemble the input files: either read from disk or generate in memory.
	var files []*catalog.File
	if *size > 0 {
		if *nfiles > 1 {
			files = append(files, catalog.GenerateNight(catalog.NightSpec{
				TotalMB: *size, Files: *nfiles, RowsPerMB: *rowsPerMB,
				Seed: *seed, ErrorRate: *errRate, RunID: 1,
			})...)
		} else {
			files = append(files, catalog.Generate(catalog.GenSpec{
				SizeMB: *size, RowsPerMB: *rowsPerMB, Seed: *seed, ErrorRate: *errRate,
				RunID: 1, IDBase: 10_000_000,
			}))
		}
	}
	for i, path := range flag.Args() {
		f, err := readCatalogFile(path, int64(i+1))
		if err != nil {
			fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Build a fresh environment (database + server) on the given scheduler.
	// extra options carry the wall-clock-only ingest-mode flags; the DES run
	// stays on campaign/profile settings so virtual-time figures are
	// unaffected.
	buildEnv := func(sched exec.Scheduler, extra ...relstore.Option) (*sqlbatch.Server, *relstore.DB) {
		opts := append([]relstore.Option{
			relstore.WithConfig(dbCfg), relstore.WithIndexPolicy(buildPolicy)}, extra...)
		db, err := relstore.Open(catalog.NewSchema(), opts...)
		if err != nil {
			fatal(err)
		}
		txn, err := db.Begin()
		if err != nil {
			fatal(err)
		}
		if err := catalog.SeedReference(txn, 32); err != nil {
			fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			fatal(err)
		}
		if err := tuning.ApplyIndexPolicyWith(db, indexPolicy, buildPolicy); err != nil {
			fatal(err)
		}
		return sqlbatch.NewServerOn(sched, db, srvCfg, sqlbatch.DefaultCostModel()), db
	}

	// The deterministic run: the virtual-time prediction every mode reports.
	simServer, simDB := buildEnv(exec.NewDES(des.NewKernel(*seed)))
	simRes, err := parallel.Run(simServer, files, clusterCfg)
	if err != nil {
		fatal(err)
	}

	if !*wallclock {
		report(simRes, simDB, *verbose)
		return
	}

	// The real run: loader goroutines against the concurrent engine.  The
	// ingest-mode flags apply here only.
	var ingestOpts []relstore.Option
	if *groupCommit > 0 {
		ingestOpts = append(ingestOpts, relstore.WithGroupCommit(*groupCommit, *groupWaiters))
	}
	if *lockChunk > 0 {
		ingestOpts = append(ingestOpts, relstore.WithBatchLockChunk(*lockChunk))
	}
	rtServer, rtDB := buildEnv(exec.NewRealtime(exec.RealtimeConfig{Seed: *seed, TimeScale: *timescale}), ingestOpts...)
	rtRes, err := parallel.Run(rtServer, files, clusterCfg)
	if err != nil {
		fatal(err)
	}
	reportWallclock(rtRes, simRes, rtDB, clusterCfg.Loaders, *verbose)
}

// reportWallclock prints the real measurement next to the virtual-time
// prediction of the same configuration.
func reportWallclock(rt, sim parallel.Result, db *relstore.DB, loaders int, verbose bool) {
	t := rt.Total
	fmt.Printf("execution mode:      wall-clock (%d loader goroutines on %d CPUs)\n", loaders, runtime.NumCPU())
	fmt.Printf("files loaded:        %d\n", t.Files)
	fmt.Printf("rows loaded:         %d\n", t.RowsLoaded)
	fmt.Printf("rows skipped (db):   %d\n", t.RowsSkipped)
	if rt.Seal.Sealed() {
		fmt.Printf("index seal:          %d indexes bulk-built (%d rows streamed) in %s\n",
			len(rt.Seal.Indexes), rt.Seal.RowsStreamed, rt.SealTime.Round(1e3))
	}
	fmt.Printf("real load time:      %s\n", rt.WallTime)
	fmt.Printf("real throughput:     %.3f MB/s (nominal)\n", rt.ThroughputMBps)
	if rt.WallTime > 0 {
		fmt.Printf("rows per second:     %.0f\n", float64(t.RowsLoaded)/rt.WallTime.Seconds())
	}
	fmt.Println("per-node throughput:")
	for _, n := range rt.Nodes {
		el := n.FinishedAt - n.StartedAt
		mbps := 0.0
		if el > 0 {
			mbps = float64(n.Stats.NominalBytes) / 1e6 / el.Seconds()
		}
		fmt.Printf("  node %d: files=%d rows=%d elapsed=%s (%.3f MB/s)\n",
			n.Node, len(n.FilesDone), n.Stats.RowsLoaded, el.Round(1e6), mbps)
	}
	if st := db.StatsSnapshot(); st.WAL.GroupCommits > 0 {
		fmt.Printf("group commit:        %d groups covering %d commits (largest group %d)\n",
			st.WAL.GroupCommits, st.WAL.GroupedCommits, st.WAL.MaxGroupSize)
	}
	fmt.Printf("virtual-time prediction (paper hardware): %s\n", sim.WallTime)
	if rt.WallTime > 0 {
		fmt.Printf("prediction / real:   %.1fx\n", sim.WallTime.Seconds()/rt.WallTime.Seconds())
	}

	if verbose {
		printTableCounts(t.RowsLoadedByTable)
	}
	checkIntegrity(db)
}

// printTableCounts prints the sorted per-table row counts.
func printTableCounts(byTable map[string]int) {
	fmt.Println("\nrows loaded by table:")
	tables := make([]string, 0, len(byTable))
	for name := range byTable {
		tables = append(tables, name)
	}
	sort.Strings(tables)
	for _, name := range tables {
		fmt.Printf("  %-22s %8d\n", name, byTable[name])
	}
}

// checkIntegrity verifies referential integrity and exits nonzero on orphans.
func checkIntegrity(db *relstore.DB) {
	orphans, _ := db.VerifyIntegrity()
	if orphans != 0 {
		fmt.Printf("\nWARNING: %d orphaned rows detected after load\n", orphans)
		os.Exit(1)
	}
	fmt.Println("referential integrity: OK")
}

func profileByName(name string) (tuning.Profile, error) {
	switch name {
	case "production", "prod":
		return tuning.ProductionLoading(), nil
	case "untuned":
		return tuning.Untuned(), nil
	case "query", "query-serving":
		return tuning.QueryServing(), nil
	default:
		return tuning.Profile{}, fmt.Errorf("unknown profile %q (want production|untuned|query)", name)
	}
}

func readCatalogFile(path string, idx int64) (*catalog.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, parseErrs := catalog.ReadRecords(f)
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	for _, pe := range parseErrs {
		fmt.Fprintf(os.Stderr, "skyload: %s: %v\n", path, pe)
	}
	return &catalog.File{
		Name:         path,
		Records:      recs,
		NominalBytes: info.Size(),
		ActualBytes:  info.Size(),
		DataRows:     len(recs),
		Spec:         catalog.GenSpec{Name: path, SizeMB: float64(info.Size()) / 1e6, IDBase: idx * 100_000_000},
	}, nil
}

func report(res parallel.Result, db *relstore.DB, verbose bool) {
	t := res.Total
	fmt.Printf("files loaded:        %d\n", t.Files)
	fmt.Printf("rows read:           %d\n", t.RowsRead)
	fmt.Printf("rows loaded:         %d\n", t.RowsLoaded)
	fmt.Printf("rows skipped (db):   %d\n", t.RowsSkipped)
	fmt.Printf("rows rejected (client): %d\n", t.ParseErrors)
	fmt.Printf("database calls:      %d\n", t.DBCalls)
	fmt.Printf("commits:             %d\n", t.Commits)
	fmt.Printf("lock waits / stalls: %d / %d\n", t.LockWaits, t.LongStalls)
	if res.Seal.Sealed() {
		fmt.Printf("index seal:          %d indexes bulk-built (%d rows streamed) in %s\n",
			len(res.Seal.Indexes), res.Seal.RowsStreamed, res.SealTime)
	}
	fmt.Printf("virtual load time:   %s\n", res.WallTime)
	fmt.Printf("throughput:          %.3f MB/s (nominal)\n", res.ThroughputMBps)

	if verbose {
		printTableCounts(t.RowsLoadedByTable)
		if len(t.Skipped) > 0 {
			fmt.Println("\nskipped rows:")
			max := len(t.Skipped)
			if max > 20 {
				max = 20
			}
			for _, s := range t.Skipped[:max] {
				fmt.Printf("  %s line %d (%s): %s\n", s.File, s.SourceLine, s.Table, s.Reason)
			}
			if len(t.Skipped) > max {
				fmt.Printf("  ... and %d more\n", len(t.Skipped)-max)
			}
		}
	}

	checkIntegrity(db)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skyload:", err)
	os.Exit(1)
}
