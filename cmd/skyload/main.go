// Command skyload loads catalog files into a simulated Palomar-Quest
// repository with the SkyLoader framework and reports loading statistics:
// rows loaded per table, rows skipped and why, database calls, commits, and
// the virtual loading time the same run would have taken on the paper's
// hardware.
//
// Usage:
//
//	skyload night01/*.cat                      # parallel bulk load (defaults)
//	skyload -loaders 1 -batch 40 file.cat      # single-process bulk load
//	skyload -nonbulk file.cat                  # row-at-a-time baseline
//	skyload -profile untuned night01/*.cat     # eager indices, frequent commits
//	skyload -config campaign.json night01/*.cat # JSON campaign configuration
//	skyload -size 200                          # no files: generate 200 MB in memory
//
// When -config is given the campaign file (see internal/loadconfig) supplies
// the loader tunables, parallelism and database tuning, and the individual
// -loaders/-batch/-array/-commit-every/-profile/-static flags are ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/loadconfig"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	var (
		loaders    = flag.Int("loaders", 5, "number of concurrent loader processes")
		batch      = flag.Int("batch", 40, "rows per database call (batch-size)")
		array      = flag.Int("array", 1000, "rows per buffer array (array-size)")
		commit     = flag.Int("commit-every", 0, "commit every N batches (0 = end of each file)")
		nonBulk    = flag.Bool("nonbulk", false, "use the row-at-a-time baseline loader")
		static     = flag.Bool("static", false, "use static file assignment instead of dynamic")
		profile    = flag.String("profile", "production", "tuning profile: production|untuned|query")
		configPath = flag.String("config", "", "JSON campaign configuration file (overrides the tuning flags)")
		size       = flag.Float64("size", 0, "generate one file of this nominal MB instead of reading files")
		rowsPerMB  = flag.Int("rows-per-mb", 100, "generated rows per nominal MB (for -size and provenance)")
		errRate    = flag.Float64("error-rate", 0.002, "error rate for generated input")
		seed       = flag.Int64("seed", 1, "random seed")
		provenance = flag.Bool("provenance", false, "record load_runs/load_errors provenance rows")
		verbose    = flag.Bool("v", false, "print per-table row counts and skipped-row details")
	)
	flag.Parse()

	// Resolve the campaign settings: either a JSON configuration file or the
	// individual flags plus a named tuning profile.
	var (
		dbCfg       relstore.Config
		srvCfg      sqlbatch.ServerConfig
		indexPolicy tuning.IndexPolicy
		loaderCfg   core.Config
		clusterCfg  parallel.Config
	)
	if *configPath != "" {
		campaign, err := loadconfig.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		dbCfg = campaign.DBConfig()
		srvCfg = campaign.ServerConfig()
		indexPolicy = campaign.IndexPolicyValue()
		loaderCfg = campaign.LoaderConfig()
		loaderCfg.RecordProvenance = loaderCfg.RecordProvenance || *provenance
		clusterCfg = campaign.ClusterConfig()
		clusterCfg.Loader = loaderCfg
		if campaign.Seed != 0 {
			*seed = campaign.Seed
		}
		if campaign.RowsPerMB > 0 {
			*rowsPerMB = campaign.RowsPerMB
		}
	} else {
		prof, err := profileByName(*profile)
		if err != nil {
			fatal(err)
		}
		dbCfg = prof.DBConfig()
		srvCfg = prof.ServerConfig()
		indexPolicy = prof.Indexes
		loaderCfg = core.Config{
			BatchSize:          *batch,
			ArraySize:          *array,
			CommitEveryBatches: *commit,
			RecordProvenance:   *provenance,
			ChargeStaging:      true,
		}
		if loaderCfg.CommitEveryBatches == 0 {
			loaderCfg.CommitEveryBatches = prof.CommitEveryBatches
		}
		assignment := parallel.Dynamic
		if *static {
			assignment = parallel.Static
		}
		clusterCfg = parallel.Config{
			Loaders:    *loaders,
			Assignment: assignment,
			Loader:     loaderCfg,
		}
	}
	clusterCfg.NonBulk = *nonBulk

	// Assemble the input files: either read from disk or generate in memory.
	var files []*catalog.File
	if *size > 0 {
		files = append(files, catalog.Generate(catalog.GenSpec{
			SizeMB: *size, RowsPerMB: *rowsPerMB, Seed: *seed, ErrorRate: *errRate,
			RunID: 1, IDBase: 10_000_000,
		}))
	}
	for i, path := range flag.Args() {
		f, err := readCatalogFile(path, int64(i+1))
		if err != nil {
			fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Build the simulated environment.
	kernel := des.NewKernel(*seed)
	db, err := relstore.NewDB(catalog.NewSchema(), dbCfg)
	if err != nil {
		fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		fatal(err)
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, indexPolicy); err != nil {
		fatal(err)
	}
	server := sqlbatch.NewServer(kernel, db, srvCfg, sqlbatch.DefaultCostModel())

	res, err := parallel.Run(server, files, clusterCfg)
	if err != nil {
		fatal(err)
	}

	report(res, db, *verbose)
}

func profileByName(name string) (tuning.Profile, error) {
	switch name {
	case "production", "prod":
		return tuning.ProductionLoading(), nil
	case "untuned":
		return tuning.Untuned(), nil
	case "query", "query-serving":
		return tuning.QueryServing(), nil
	default:
		return tuning.Profile{}, fmt.Errorf("unknown profile %q (want production|untuned|query)", name)
	}
}

func readCatalogFile(path string, idx int64) (*catalog.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, parseErrs := catalog.ReadRecords(f)
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	for _, pe := range parseErrs {
		fmt.Fprintf(os.Stderr, "skyload: %s: %v\n", path, pe)
	}
	return &catalog.File{
		Name:         path,
		Records:      recs,
		NominalBytes: info.Size(),
		ActualBytes:  info.Size(),
		DataRows:     len(recs),
		Spec:         catalog.GenSpec{Name: path, SizeMB: float64(info.Size()) / 1e6, IDBase: idx * 100_000_000},
	}, nil
}

func report(res parallel.Result, db *relstore.DB, verbose bool) {
	t := res.Total
	fmt.Printf("files loaded:        %d\n", t.Files)
	fmt.Printf("rows read:           %d\n", t.RowsRead)
	fmt.Printf("rows loaded:         %d\n", t.RowsLoaded)
	fmt.Printf("rows skipped (db):   %d\n", t.RowsSkipped)
	fmt.Printf("rows rejected (client): %d\n", t.ParseErrors)
	fmt.Printf("database calls:      %d\n", t.DBCalls)
	fmt.Printf("commits:             %d\n", t.Commits)
	fmt.Printf("lock waits / stalls: %d / %d\n", t.LockWaits, t.LongStalls)
	fmt.Printf("virtual load time:   %s\n", res.WallTime)
	fmt.Printf("throughput:          %.3f MB/s (nominal)\n", res.ThroughputMBps)

	if verbose {
		fmt.Println("\nrows loaded by table:")
		tables := make([]string, 0, len(t.RowsLoadedByTable))
		for name := range t.RowsLoadedByTable {
			tables = append(tables, name)
		}
		sort.Strings(tables)
		for _, name := range tables {
			fmt.Printf("  %-22s %8d\n", name, t.RowsLoadedByTable[name])
		}
		if len(t.Skipped) > 0 {
			fmt.Println("\nskipped rows:")
			max := len(t.Skipped)
			if max > 20 {
				max = 20
			}
			for _, s := range t.Skipped[:max] {
				fmt.Printf("  %s line %d (%s): %s\n", s.File, s.SourceLine, s.Table, s.Reason)
			}
			if len(t.Skipped) > max {
				fmt.Printf("  ... and %d more\n", len(t.Skipped)-max)
			}
		}
	}

	orphans, _ := db.VerifyIntegrity()
	if orphans != 0 {
		fmt.Printf("\nWARNING: %d orphaned rows detected after load\n", orphans)
		os.Exit(1)
	}
	fmt.Println("referential integrity: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skyload:", err)
	os.Exit(1)
}
