// Command skybench regenerates the SkyLoader paper's evaluation: every
// figure of §5, the headline 40 GB claim, and the ablation studies described
// in DESIGN.md.  Results are printed as text tables and optionally written as
// CSV files.
//
// Usage:
//
//	skybench -all                # every figure, headline and ablation
//	skybench -fig 4              # one figure (4..9)
//	skybench -headline           # the 40 GB headline comparison
//	skybench -ablation errors    # one ablation (assignment|commit|cache|errors|twophase)
//	skybench -verify             # end-to-end integrity check of a parallel load
//	skybench -all -csv out/      # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skyloader/internal/experiments"
	"skyloader/internal/metrics"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every figure, the headline and every ablation")
		fig       = flag.Int("fig", 0, "run one figure (4-9)")
		headline  = flag.Bool("headline", false, "run the 40 GB headline comparison")
		ablation  = flag.String("ablation", "", "run one ablation: assignment|commit|cache|errors|twophase")
		verify    = flag.Bool("verify", false, "run the end-to-end integrity verification")
		quick     = flag.Bool("quick", false, "reduced parameter sweeps")
		seed      = flag.Int64("seed", 0, "random seed (0 = default)")
		rowsPerMB = flag.Int("rows-per-mb", 0, "generated rows per nominal catalog MB (0 = default 100)")
		errRate   = flag.Float64("error-rate", 0, "fraction of corrupted rows (0 = default 0.002)")
		csvDir    = flag.String("csv", "", "directory to write one CSV file per table")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:      *seed,
		RowsPerMB: *rowsPerMB,
		ErrorRate: *errRate,
		Quick:     *quick,
	}

	if *verify {
		if err := experiments.Verify(cfg); err != nil {
			fatal(err)
		}
		fmt.Println("verification passed: parallel load is referentially consistent")
		return
	}

	var tables []*metrics.Table
	run := func(name string, fn func(experiments.Config) (*metrics.Table, error)) {
		start := time.Now()
		tbl, err := fn(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("harness wall time: %s", time.Since(start).Round(time.Millisecond)))
		tables = append(tables, tbl)
	}

	switch {
	case *all:
		start := time.Now()
		ts, err := experiments.RunAll(cfg)
		if err != nil {
			fatal(err)
		}
		tables = ts
		fmt.Fprintf(os.Stderr, "ran %d experiments in %s\n", len(ts), time.Since(start).Round(time.Millisecond))
	case *fig != 0:
		figs := map[int]func(experiments.Config) (*metrics.Table, error){
			4: experiments.Figure4, 5: experiments.Figure5, 6: experiments.Figure6,
			7: experiments.Figure7, 8: experiments.Figure8, 9: experiments.Figure9,
		}
		fn, ok := figs[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %d (want 4-9)", *fig))
		}
		run(fmt.Sprintf("figure%d", *fig), fn)
	case *headline:
		run("headline", experiments.Headline)
	case *ablation != "":
		abls := map[string]func(experiments.Config) (*metrics.Table, error){
			"assignment": experiments.AblationAssignment,
			"commit":     experiments.AblationCommitFrequency,
			"cache":      experiments.AblationCacheSize,
			"errors":     experiments.AblationErrorRate,
			"twophase":   experiments.AblationTwoPhase,
		}
		fn, ok := abls[strings.ToLower(*ablation)]
		if !ok {
			fatal(fmt.Errorf("unknown ablation %q", *ablation))
		}
		run("ablation-"+*ablation, fn)
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, tbl := range tables {
		fmt.Println()
		if err := tbl.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, tbl := range tables {
			name := sanitize(tbl.Title) + ".csv"
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fatal(err)
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
}

func sanitize(title string) string {
	title = strings.ToLower(title)
	if i := strings.Index(title, ":"); i > 0 {
		title = title[:i]
	}
	title = strings.ReplaceAll(title, " ", "_")
	return title
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
