module skyloader

go 1.22
