# Developer entry points.  CI invokes these same targets for its build, vet,
# test, race, bench and smoke steps so local runs and the pipeline cannot
# drift (the workflow keeps a few extra targeted -race steps of its own).

GO ?= go

.PHONY: all build vet test race bench smoke smoke-http smoke-crash smoke-shard

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Batch-apply + index-build benchmark smoke: exercises the per-row loop,
# Txn.InsertBatch, the sorted bulk B-tree pass, the Seal bulk leaf build, the
# encoded-key comparator, the immediate-vs-deferred load policy comparison,
# the group-commit queue and the mixed-ingest read-p99 scenario so none of
# those paths can silently regress or break.  -benchtime=100x (1x for the
# whole-run benches) keeps it a smoke test (counts, not timings); real
# measurements live in BENCH_batchapply.json, BENCH_indexbuild.json,
# BENCH_btreekeys.json and BENCH_groupcommit.json and need a quiet host.
bench:
	$(GO) test -run '^$$' -bench 'InsertBatch|InsertPrepared|BTreeInsertSorted|SealBulkBuild|BTreeEncodedCompare' -benchtime=100x ./internal/relstore/
	$(GO) test -run '^$$' -bench 'IndexLoadPolicy' -benchtime=1x ./internal/relstore/
	$(GO) test -run '^$$' -bench 'GroupCommit' -benchtime=20x ./internal/relstore/
	$(GO) test -run '^$$' -bench 'MixedIngestP99' -benchtime=1x ./internal/serve/
	$(GO) test -run '^$$' -bench 'ServeHTTPQuery|MetricsScrape' -benchtime=100x ./internal/httpserve/
	$(GO) test -run '^$$' -bench 'ScatterGather|SingleNode|WireQueryResult' -benchtime=50x ./internal/shard/

smoke:
	$(GO) run ./cmd/skyserve -smoke

# HTTP front-door smoke: loads a tiny catalog, serves the query API over a
# real socket, answers one query per class and validates its own /metrics
# scrape (shared PromValid checker).  Exercises the full skyserve -http path
# CI can't reach in-process.
smoke-http:
	$(GO) run ./cmd/skyserve -http 127.0.0.1:0 -smoke

# Crash/recover smoke: WAL-backed load killed at a seed-derived log append,
# recovered from the directory the dead process left, resumed, and verified
# byte-identical (row counts, per-index iteration order, stats totals) to an
# uninterrupted run.  The fixed seed fixes the kill point, so the scenario —
# including checkpoint-bounded replay — is fully deterministic in CI.
smoke-crash:
	$(GO) run ./cmd/skyload -crash -seed 7 -size 2
	$(GO) run ./cmd/skyload -crash -seed 42 -size 2

# Distributed shard smoke: a real 3-agent TCP fleet loaded through the
# coordinator and verified byte-for-byte against a single-node oracle, one
# agent killed and restored from the coordinator's replay log mid-run, the
# /v1 front door and its sky_shard_* scrape validated, and the DES topology
# sim run twice to prove determinism.
smoke-shard:
	$(GO) run ./cmd/skyshard -smoke
