# Developer entry points.  CI invokes these same targets for its build, vet,
# test, race, bench and smoke steps so local runs and the pipeline cannot
# drift (the workflow keeps a few extra targeted -race steps of its own).

GO ?= go

.PHONY: all build vet test race bench smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Batch-apply + index-build benchmark smoke: exercises the per-row loop,
# Txn.InsertBatch, the sorted bulk B-tree pass, the Seal bulk leaf build, the
# encoded-key comparator and the immediate-vs-deferred load policy comparison
# so none of those paths can silently regress or break.  -benchtime=100x (1x
# for the whole-load policy bench) keeps it a smoke test (counts, not
# timings); real measurements live in BENCH_batchapply.json,
# BENCH_indexbuild.json and BENCH_btreekeys.json and need a quiet host.
bench:
	$(GO) test -run '^$$' -bench 'InsertBatch|InsertPrepared|BTreeInsertSorted|SealBulkBuild|BTreeEncodedCompare' -benchtime=100x ./internal/relstore/
	$(GO) test -run '^$$' -bench 'IndexLoadPolicy' -benchtime=1x ./internal/relstore/

smoke:
	$(GO) run ./cmd/skyserve -smoke
