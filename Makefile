# Developer entry points.  CI invokes these same targets for its build, vet,
# test, race, bench and smoke steps so local runs and the pipeline cannot
# drift (the workflow keeps a few extra targeted -race steps of its own).

GO ?= go

.PHONY: all build vet test race bench smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Batch-apply benchmark smoke: exercises the per-row loop, Txn.InsertBatch
# and the sorted bulk B-tree pass so the batch path cannot silently regress
# or break.  -benchtime=100x keeps it a smoke test (counts, not timings);
# real measurements live in BENCH_batchapply.json and need a quiet host.
bench:
	$(GO) test -run '^$$' -bench 'InsertBatch|InsertPrepared|BTreeInsertSorted' -benchtime=100x ./internal/relstore/

smoke:
	$(GO) run ./cmd/skyserve -smoke
