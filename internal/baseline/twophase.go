package baseline

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// TwoPhaseConfig controls the SDSS-style loader.
type TwoPhaseConfig struct {
	// BatchSize used when publishing from the task database to the
	// repository.
	BatchSize int
	// TaskDBMaxMB caps the nominal volume loaded into one task database
	// before it is published (SDSS used 20-30 GB task DBs; scaled here).
	TaskDBMaxMB float64
	// ChargeStaging charges mass-storage staging time per file.
	ChargeStaging bool
	// ValidationRowCost is the per-row cost of the separate validation pass
	// over the task database.
	ValidationRowCost time.Duration
	// ConvertRowCost is the per-row cost of splitting the catalog file into
	// per-table CSV files before loading (the SDSS pre-conversion step).
	ConvertRowCost time.Duration
}

// DefaultTwoPhaseConfig mirrors the SDSS framework description in §6.
func DefaultTwoPhaseConfig() TwoPhaseConfig {
	return TwoPhaseConfig{
		BatchSize:         40,
		TaskDBMaxMB:       400,
		ChargeStaging:     true,
		ValidationRowCost: 500 * time.Microsecond,
		ConvertRowCost:    250 * time.Microsecond,
	}
}

// TwoPhaseLoader approximates the SDSS loading framework the paper compares
// against in §6: catalog data is first converted into per-table row sets,
// bulk-loaded into a Task database without cross-table constraints, fully
// validated there, and finally published table-by-table into the repository
// database.  The SkyLoader authors argue their single-pass approach avoids
// the intermediate database and the extra pass; this loader exists so that
// the claim can be examined quantitatively (ablation A5).
type TwoPhaseLoader struct {
	conn  *sqlbatch.Conn
	cfg   TwoPhaseConfig
	cost  sqlbatch.CostModel
	xform *catalog.Transformer

	// task is the in-memory task database (one per loader), standing in for
	// the SQL Server task DBs of the SDSS cluster.
	taskSchema *relstore.Schema
	task       *relstore.DB

	stats core.Stats
}

// NewTwoPhaseLoader creates a two-phase loader over an open connection.
func NewTwoPhaseLoader(conn *sqlbatch.Conn, cfg TwoPhaseConfig) (*TwoPhaseLoader, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 40
	}
	schema := conn.Server().DB().Schema()
	taskSchema, err := taskSchemaFrom(schema)
	if err != nil {
		return nil, err
	}
	task, err := relstore.Open(taskSchema, relstore.WithCache(512))
	if err != nil {
		return nil, err
	}
	l := &TwoPhaseLoader{
		conn:       conn,
		cfg:        cfg,
		cost:       conn.Server().Cost(),
		xform:      catalog.NewTransformer(schema),
		taskSchema: taskSchema,
		task:       task,
	}
	l.stats.RowsLoadedByTable = make(map[string]int)
	l.stats.SkippedByTable = make(map[string]int)
	return l, nil
}

// taskSchemaFrom strips foreign keys and check constraints from the
// repository schema: the SDSS task databases defer cross-table validation to
// the explicit validation phase.
func taskSchemaFrom(schema *relstore.Schema) (*relstore.Schema, error) {
	var tables []*relstore.TableSchema
	for _, t := range schema.Tables() {
		clone := &relstore.TableSchema{
			Name:       t.Name,
			Columns:    append([]relstore.Column{}, t.Columns...),
			PrimaryKey: append([]string{}, t.PrimaryKey...),
		}
		tables = append(tables, clone)
	}
	return relstore.NewSchema(tables...)
}

// Stats returns the accumulated statistics.
func (l *TwoPhaseLoader) Stats() core.Stats { return l.stats }

// LoadFiles performs the full two-phase load of the given files.
func (l *TwoPhaseLoader) LoadFiles(files []*catalog.File) (core.Stats, error) {
	start := l.conn.Worker().Now()
	var pendingMB float64
	for _, f := range files {
		if err := l.loadIntoTask(f); err != nil {
			return l.stats, err
		}
		pendingMB += f.Spec.SizeMB
		if l.cfg.TaskDBMaxMB > 0 && pendingMB >= l.cfg.TaskDBMaxMB {
			if err := l.validateAndPublish(); err != nil {
				return l.stats, err
			}
			pendingMB = 0
		}
	}
	if err := l.validateAndPublish(); err != nil {
		return l.stats, err
	}
	l.stats.Elapsed = l.conn.Worker().Now() - start
	return l.stats, nil
}

// loadIntoTask is phase one: convert the catalog file into per-table row sets
// and bulk-load them into the task database (no cross-table constraints).
//
// Records destined for the same table arrive in contiguous runs, and each run
// is applied to the task database with one InsertBatch call instead of one
// Insert per row — the task phase is a bulk load by definition (SDSS used
// bcp-style bulk insertion into the task DBs), so it rides the batch-apply
// path.  The task engine charges no virtual time (only ChargeClientCPU does,
// per record, unchanged), and the resume-after-failure loop reproduces the
// skip-and-continue semantics of the previous per-row code exactly, so the
// published repository state and all §6/A5 figures are unaffected.  The
// NON-bulk baseline (nonbulk.go) deliberately keeps per-row calls.
func (l *TwoPhaseLoader) loadIntoTask(f *catalog.File) error {
	l.stats.Files++
	l.stats.NominalBytes += f.NominalBytes
	if l.cfg.ChargeStaging {
		l.conn.ChargeClientCPU(l.cost.StagingTime(f.NominalBytes))
	}
	txn, err := l.task.Begin()
	if err != nil {
		return fmt.Errorf("baseline: task db begin: %w", err)
	}
	var (
		runTable string
		runCols  []string
		runRows  [][]relstore.Value
	)
	flushRun := func() {
		if len(runRows) == 0 {
			return
		}
		l.taskInsertRun(txn, runTable, runCols, runRows)
		runRows = runRows[:0]
	}
	for _, rec := range f.Records {
		l.stats.RowsRead++
		// Conversion to per-table CSV plus parse/transform.
		l.conn.ChargeClientCPU(l.cost.ParseRowCost + l.cost.TransformRowCost + l.cfg.ConvertRowCost)
		row, xerr := l.xform.Transform(rec)
		if xerr != nil {
			l.stats.ParseErrors++
			continue
		}
		if row.Table != runTable || !slices.Equal(runCols, row.Columns) {
			flushRun()
			runTable, runCols = row.Table, row.Columns
		}
		runRows = append(runRows, row.Values)
	}
	flushRun()
	if _, err := txn.Commit(); err != nil {
		return fmt.Errorf("baseline: task db commit: %w", err)
	}
	return nil
}

// taskInsertRun batch-applies one contiguous same-table run of rows to the
// task database, skipping rejected rows and resuming after each (the
// task-phase analogue of index tracing).  Task-phase rejects — duplicate keys
// and the like — are counted as skips; cross-table problems surface in
// validation.
func (l *TwoPhaseLoader) taskInsertRun(txn *relstore.Txn, table string, cols []string, rows [][]relstore.Value) {
	idx := 0
	for idx < len(rows) {
		br, err := txn.InsertBatch(table, cols, rows[idx:])
		l.stats.RowsBuffered += br.RowsInserted
		if err == nil {
			return
		}
		l.stats.RowsSkipped++
		l.stats.SkippedByTable[table]++
		idx += br.FailedIndex + 1
	}
}

// validateAndPublish is phase two: run the validation pass over the task
// database and publish each table to the repository with ordered bulk
// inserts, then empty the task database.
func (l *TwoPhaseLoader) validateAndPublish() error {
	totalRows := l.task.TotalRows()
	if totalRows == 0 {
		return nil
	}
	// Validation pass: every task row is checked (costed on the client/task
	// node, since SDSS validation ran on the task DB server).
	l.conn.ChargeClientCPU(time.Duration(totalRows) * l.cfg.ValidationRowCost)

	if !l.conn.InTransaction() {
		if err := l.conn.Begin(); err != nil {
			return fmt.Errorf("baseline: begin publish transaction: %w", err)
		}
	}
	order, err := l.taskSchema.TopologicalOrder()
	if err != nil {
		return err
	}
	for _, table := range order {
		if err := l.publishTable(table); err != nil {
			return err
		}
	}
	if err := l.conn.Commit(); err != nil {
		return fmt.Errorf("baseline: publish commit: %w", err)
	}
	l.stats.Commits++

	// Re-create an empty task database for the next chunk.
	task, err := relstore.Open(l.taskSchema, relstore.WithCache(512))
	if err != nil {
		return err
	}
	l.task = task
	return nil
}

// publishTable bulk-inserts one task table into the repository.
func (l *TwoPhaseLoader) publishTable(table string) error {
	ts := l.taskSchema.Table(table)
	cols := ts.ColumnNames()
	var rows []relstore.Row
	// ScanRef is safe here: the rows are read-only until the task database is
	// discarded, and AddBatch copies the values it queues.
	if err := l.task.ScanRef(table, func(r relstore.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	// Publish in primary-key order, as the SDSS CSV files were ordered.
	pkIdx := ts.ColumnIndex(ts.PrimaryKey[0])
	sort.Slice(rows, func(i, j int) bool {
		return relstore.CompareValues(rows[i][pkIdx], rows[j][pkIdx]) < 0
	})
	// Publish with the same index-tracing recovery the SkyLoader batch_row
	// procedure uses: on a rejected row, skip it and resume from the row
	// after it.
	stmt := l.conn.Prepare(table, cols)
	idx := 0
	for idx < len(rows) {
		end := idx + l.cfg.BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		for _, r := range rows[idx:end] {
			stmt.AddBatch(r)
		}
		res, err := stmt.ExecuteBatch()
		if err != nil {
			return fmt.Errorf("baseline: publish %s: %w", table, err)
		}
		l.stats.Batches++
		l.stats.DBCalls++
		l.stats.RowsLoaded += res.RowsInserted
		l.stats.RowsLoadedByTable[table] += res.RowsInserted
		if res.Err == nil {
			idx = end
			continue
		}
		l.stats.RowsSkipped++
		l.stats.SkippedByTable[table]++
		idx = idx + res.FailedIndex + 1
	}
	return nil
}

// Worker returns the loader's execution worker (for timing windows in tests).
func (l *TwoPhaseLoader) Worker() exec.Worker { return l.conn.Worker() }
