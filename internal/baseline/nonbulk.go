// Package baseline implements the comparison loaders the paper's evaluation
// is measured against: the non-bulk (singleton insert) loader of Figure 4 and
// an SDSS-style two-phase loader (§6 discussion).
package baseline

import (
	"fmt"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/sqlbatch"
)

// NonBulkConfig controls the singleton-insert loader.
type NonBulkConfig struct {
	// CommitEveryRows commits after every N rows; 0 commits at end of file.
	CommitEveryRows int
	// ChargeStaging charges mass-storage staging time per file.
	ChargeStaging bool
	// LoaderNode identifies the loader for statistics.
	LoaderNode int
}

// NonBulkLoader loads catalog files with one database call per row — the
// "series of individual SQL insert statements" baseline of §5.1.  Because the
// catalog files are presorted parent-before-child, row-at-a-time insertion in
// file order respects the foreign keys without any buffering.
//
// This loader must never be routed through the batch-apply path
// (Txn.InsertBatch or Stmt.ExecuteBatchRows): it exists to measure what
// loading costs WITHOUT batch amortization, so every row keeps paying its own
// database call, table-lock round trip, WAL append and index descent.
// Quietly batching it would make the Figure 4 bulk-vs-non-bulk comparison
// dishonest in wall-clock mode.
type NonBulkLoader struct {
	conn  *sqlbatch.Conn
	cfg   NonBulkConfig
	cost  sqlbatch.CostModel
	xform *catalog.Transformer

	stats core.Stats

	rowsSinceCommit int
	currentFile     string
}

// NewNonBulkLoader creates a non-bulk loader over an open connection.
func NewNonBulkLoader(conn *sqlbatch.Conn, cfg NonBulkConfig) *NonBulkLoader {
	l := &NonBulkLoader{
		conn:  conn,
		cfg:   cfg,
		cost:  conn.Server().Cost(),
		xform: catalog.NewTransformer(conn.Server().DB().Schema()),
	}
	l.stats.RowsLoadedByTable = make(map[string]int)
	l.stats.SkippedByTable = make(map[string]int)
	return l
}

// Stats returns the accumulated statistics.
func (l *NonBulkLoader) Stats() core.Stats { return l.stats }

// LoadFiles loads the files sequentially.
func (l *NonBulkLoader) LoadFiles(files []*catalog.File) (core.Stats, error) {
	start := l.conn.Worker().Now()
	for _, f := range files {
		if err := l.LoadFile(f); err != nil {
			return l.stats, err
		}
	}
	l.stats.Elapsed = l.conn.Worker().Now() - start
	return l.stats, nil
}

// LoadFile loads one catalog file row by row.
func (l *NonBulkLoader) LoadFile(f *catalog.File) error {
	fileStart := l.conn.Worker().Now()
	l.currentFile = f.Name
	l.stats.Files++
	l.stats.NominalBytes += f.NominalBytes
	if l.cfg.ChargeStaging {
		l.conn.ChargeClientCPU(l.cost.StagingTime(f.NominalBytes))
	}
	if !l.conn.InTransaction() {
		if err := l.conn.Begin(); err != nil {
			return fmt.Errorf("baseline: begin transaction: %w", err)
		}
	}
	for _, rec := range f.Records {
		l.stats.RowsRead++
		l.conn.ChargeClientCPU(l.cost.ParseRowCost + l.cost.TransformRowCost)
		row, err := l.xform.Transform(rec)
		if err != nil {
			l.stats.ParseErrors++
			continue
		}
		stmt := l.conn.Prepare(row.Table, row.Columns)
		res, err := stmt.ExecuteSingle(row.Values)
		if err != nil {
			return fmt.Errorf("baseline: insert into %s: %w", row.Table, err)
		}
		l.stats.DBCalls++
		l.stats.LockWaits += res.LockWaits
		l.stats.LongStalls += res.LongStalls
		if res.Err != nil {
			l.stats.RowsSkipped++
			l.stats.SkippedByTable[row.Table]++
			l.stats.Skipped = append(l.stats.Skipped, core.SkippedRow{
				Table: row.Table, SourceLine: rec.Line, File: f.Name, Reason: res.Err.Error()})
		} else {
			l.stats.RowsLoaded++
			l.stats.RowsLoadedByTable[row.Table]++
		}
		if err := l.maybeCommit(); err != nil {
			return err
		}
	}
	if err := l.commit(); err != nil {
		return err
	}
	if d := l.conn.Worker().Now() - fileStart; d > l.stats.Elapsed {
		l.stats.Elapsed = d
	}
	return nil
}

func (l *NonBulkLoader) maybeCommit() error {
	if l.cfg.CommitEveryRows <= 0 {
		return nil
	}
	l.rowsSinceCommit++
	if l.rowsSinceCommit < l.cfg.CommitEveryRows {
		return nil
	}
	if err := l.commit(); err != nil {
		return err
	}
	return l.conn.Begin()
}

func (l *NonBulkLoader) commit() error {
	if !l.conn.InTransaction() {
		return nil
	}
	if err := l.conn.Commit(); err != nil {
		return err
	}
	l.stats.Commits++
	l.rowsSinceCommit = 0
	return nil
}

// ElapsedSince is a small helper returning the virtual time since start for
// callers composing their own timing windows.
func ElapsedSince(conn *sqlbatch.Conn, start time.Duration) time.Duration {
	return conn.Worker().Now() - start
}
