package baseline

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

func testEnv(t *testing.T) *sqlbatch.Server {
	t.Helper()
	k := des.NewKernel(3)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return sqlbatch.NewServer(k, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

func TestNonBulkLoadsEverything(t *testing.T) {
	srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 4, RunID: 1, IDBase: 500})
	var stats core.Stats
	srv.Kernel().Spawn("nonbulk", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		l := NewNonBulkLoader(conn, NonBulkConfig{ChargeStaging: true})
		var err error
		stats, err = l.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srv.Kernel().Run()
	if stats.RowsLoaded != file.DataRows || stats.RowsSkipped != 0 {
		t.Fatalf("stats: %+v (want %d loaded)", stats, file.DataRows)
	}
	if stats.DBCalls != file.DataRows {
		t.Fatalf("DBCalls = %d, want one per row (%d)", stats.DBCalls, file.DataRows)
	}
	if stats.Commits != 1 || stats.Elapsed <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans: %d", orphans)
	}
}

func TestNonBulkSkipsBadRowsAndCommitsPeriodically(t *testing.T) {
	srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 6, RunID: 1, IDBase: 500, ErrorRate: 0.08})
	var stats core.Stats
	srv.Kernel().Spawn("nonbulk", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		l := NewNonBulkLoader(conn, NonBulkConfig{CommitEveryRows: 25})
		var err error
		stats, err = l.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srv.Kernel().Run()
	if stats.RowsLoaded+stats.RowsSkipped+stats.ParseErrors != stats.RowsRead {
		t.Fatalf("accounting: %+v", stats)
	}
	if stats.RowsSkipped == 0 && stats.ParseErrors == 0 {
		t.Fatal("expected some bad rows")
	}
	if stats.Commits < 5 {
		t.Fatalf("Commits = %d, want frequent commits", stats.Commits)
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans: %d", orphans)
	}
}

func TestNonBulkMatchesBulkContents(t *testing.T) {
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 8, RunID: 1, IDBase: 500, ErrorRate: 0.03})

	// Load with the bulk loader.
	srvBulk := testEnv(t)
	var bulkStats core.Stats
	srvBulk.Kernel().Spawn("bulk", func(p *des.Proc) {
		conn := srvBulk.Connect(p)
		defer conn.Close()
		l, err := core.NewLoader(conn, core.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		bulkStats, err = l.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srvBulk.Kernel().Run()

	// Load with the non-bulk loader.
	srvNB := testEnv(t)
	var nbStats core.Stats
	srvNB.Kernel().Spawn("nonbulk", func(p *des.Proc) {
		conn := srvNB.Connect(p)
		defer conn.Close()
		l := NewNonBulkLoader(conn, NonBulkConfig{})
		var err error
		nbStats, err = l.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srvNB.Kernel().Run()

	// Both must load exactly the same rows into every table.
	if bulkStats.RowsLoaded != nbStats.RowsLoaded {
		t.Fatalf("bulk loaded %d rows, non-bulk %d", bulkStats.RowsLoaded, nbStats.RowsLoaded)
	}
	for _, table := range catalog.CatalogTables() {
		a, _ := srvBulk.DB().Count(table)
		b, _ := srvNB.DB().Count(table)
		if a != b {
			t.Errorf("table %s: bulk %d rows, non-bulk %d", table, a, b)
		}
	}
	// And bulk must be much faster in virtual time (Figure 4).
	if nbStats.Elapsed < bulkStats.Elapsed*4 {
		t.Fatalf("bulk %v vs non-bulk %v: expected a large speedup", bulkStats.Elapsed, nbStats.Elapsed)
	}
}

func TestTwoPhaseLoadsEverything(t *testing.T) {
	srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 14, RunID: 1, IDBase: 500, ErrorRate: 0.03})
	var stats core.Stats
	srv.Kernel().Spawn("twophase", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		l, err := NewTwoPhaseLoader(conn, DefaultTwoPhaseConfig())
		if err != nil {
			t.Error(err)
			return
		}
		stats, err = l.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srv.Kernel().Run()
	if stats.RowsLoaded == 0 {
		t.Fatal("nothing loaded")
	}
	if stats.RowsLoaded+stats.RowsSkipped+stats.ParseErrors != stats.RowsRead {
		t.Fatalf("accounting: %+v", stats)
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans after publish: %d", orphans)
	}
	if err := srv.DB().VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
	if n, _ := srv.DB().Count(catalog.TObjects); n == 0 {
		t.Fatal("no objects published")
	}
}

func TestTwoPhaseMatchesBulkRowCounts(t *testing.T) {
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 15, RunID: 1, IDBase: 500})

	srvBulk := testEnv(t)
	srvBulk.Kernel().Spawn("bulk", func(p *des.Proc) {
		conn := srvBulk.Connect(p)
		defer conn.Close()
		l, _ := core.NewLoader(conn, core.DefaultConfig())
		if _, err := l.LoadFiles([]*catalog.File{file}); err != nil {
			t.Error(err)
		}
	})
	srvBulk.Kernel().Run()

	srvTP := testEnv(t)
	srvTP.Kernel().Spawn("twophase", func(p *des.Proc) {
		conn := srvTP.Connect(p)
		defer conn.Close()
		l, _ := NewTwoPhaseLoader(conn, DefaultTwoPhaseConfig())
		if _, err := l.LoadFiles([]*catalog.File{file}); err != nil {
			t.Error(err)
		}
	})
	srvTP.Kernel().Run()

	for _, table := range catalog.CatalogTables() {
		a, _ := srvBulk.DB().Count(table)
		b, _ := srvTP.DB().Count(table)
		if a != b {
			t.Errorf("table %s: bulk %d rows, two-phase %d", table, a, b)
		}
	}
}

func TestTwoPhaseChunking(t *testing.T) {
	srv := testEnv(t)
	files := []*catalog.File{
		catalog.Generate(catalog.GenSpec{SizeMB: 1, Seed: 20, RunID: 1, IDBase: 1_000_000}),
		catalog.Generate(catalog.GenSpec{SizeMB: 1, Seed: 21, RunID: 1, IDBase: 2_000_000}),
		catalog.Generate(catalog.GenSpec{SizeMB: 1, Seed: 22, RunID: 1, IDBase: 3_000_000}),
	}
	cfg := DefaultTwoPhaseConfig()
	cfg.TaskDBMaxMB = 1.5 // force an intermediate publish
	var stats core.Stats
	srv.Kernel().Spawn("twophase", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		l, err := NewTwoPhaseLoader(conn, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		stats, err = l.LoadFiles(files)
		if err != nil {
			t.Error(err)
		}
	})
	srv.Kernel().Run()
	want := 0
	for _, f := range files {
		want += f.DataRows
	}
	if stats.RowsLoaded != want {
		t.Fatalf("RowsLoaded = %d, want %d", stats.RowsLoaded, want)
	}
	if stats.Commits < 2 {
		t.Fatalf("Commits = %d, want at least one intermediate publish", stats.Commits)
	}
}
