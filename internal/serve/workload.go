package serve

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/queries"
)

// Request is one query arriving at the serving layer at a point in time.
type Request struct {
	// Arrival is the offset from the start of the run at which the query
	// arrives (virtual time on the DES engine, wall-clock on realtime).
	Arrival time.Duration
	// Query is the query to execute.
	Query queries.Query
}

// TraceSpec controls synthetic workload generation.  The same spec and seed
// always produce the same trace, and a trace written with WriteTrace and read
// back with ReadTrace replays identically — runs are reproducible either way.
type TraceSpec struct {
	// Queries is the number of requests to generate.
	Queries int
	// Seed makes generation deterministic.
	Seed int64
	// ZipfS is the Zipf skew parameter (> 1; larger = hotter hot set) for
	// both object-lookup targets and cone-field popularity.  The default
	// 1.2 matches the "few popular objects, long tail" shape of public
	// archive logs.
	ZipfS float64
	// ConeFrac is the fraction of requests that are cone searches; the
	// remainder are primary-key object lookups with a sprinkling of
	// frame-detail queries.
	ConeFrac float64
	// Radii is the cone-radius mix in degrees; each cone draws one
	// uniformly.  Default {0.05, 0.2, 1.0} (point source, cluster field,
	// wide survey cut).
	Radii []float64
	// Objects is the size of the object-id universe lookups draw from.
	Objects int64
	// IDBase offsets drawn object ids, matching the generator's IDBase so
	// lookups land on loaded rows.
	IDBase int64
	// Frames is the frame-id universe for frame queries (0 disables them).
	Frames int64
	// Fields is the number of distinct cone-search field centres; cone
	// popularity is Zipf over the fields, which is what makes a result
	// cache earn its keep.  Default 24.
	Fields int
	// Boxes lists the sky footprints field centres are drawn from; field k
	// uses box k modulo len(Boxes).  They must match the loaded catalog or
	// every cone probes empty sky — build them from the generated files
	// with WithFootprint.  When empty, the RABase... box below is used.
	Boxes []SkyBox
	// RABase/DecBase/RASpread/DecSpread box the cone field centres when
	// Boxes is empty; the defaults span the catalog generator's whole
	// base-point range (RA 0..332, Dec -25..26), which guarantees overlap
	// with *some* sky only for wide-area traces — prefer WithFootprint.
	RABase, DecBase, RASpread, DecSpread float64
	// RatePerSec is the mean Poisson arrival rate.  0 means 200 qps.
	RatePerSec float64
}

// SkyBox is one rectangular sky footprint cone-search field centres are
// drawn from.
type SkyBox struct {
	RABase, DecBase     float64
	RASpread, DecSpread float64
}

// WithFootprint aims the trace at the sky actually covered by the generated
// files: one box per file, spanning the file's frame/object footprint
// (~2.3 deg of RA, ~0.85 deg of Dec from its base point).  Without this,
// cone searches against a loaded catalog mostly probe empty sky, because
// each generated file sits at a random base position.
func (s TraceSpec) WithFootprint(files []*catalog.File) TraceSpec {
	boxes := make([]SkyBox, 0, len(files))
	for _, f := range files {
		boxes = append(boxes, SkyBox{
			RABase: f.RABase, DecBase: f.DecBase,
			RASpread: 2.3, DecSpread: 0.85,
		})
	}
	if len(boxes) > 0 {
		s.Boxes = boxes
	}
	return s
}

func (s TraceSpec) withDefaults() TraceSpec {
	if s.Queries <= 0 {
		s.Queries = 1000
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.ConeFrac < 0 {
		s.ConeFrac = 0
	}
	if s.ConeFrac > 1 {
		s.ConeFrac = 1
	}
	if len(s.Radii) == 0 {
		s.Radii = []float64{0.05, 0.2, 1.0}
	}
	if s.Objects <= 0 {
		s.Objects = 10000
	}
	if s.Fields <= 0 {
		s.Fields = 24
	}
	if len(s.Boxes) == 0 {
		box := SkyBox{RABase: s.RABase, DecBase: s.DecBase, RASpread: s.RASpread, DecSpread: s.DecSpread}
		if box.RASpread <= 0 {
			box.RASpread = 332
		}
		if box.DecSpread <= 0 {
			box.DecBase, box.DecSpread = -25, 51
		}
		s.Boxes = []SkyBox{box}
	}
	if s.RatePerSec <= 0 {
		s.RatePerSec = 200
	}
	return s
}

// GenTrace generates a request trace: Poisson arrivals, Zipf-hot object
// lookups, and cone searches whose centres are Zipf-popular field centres
// with small per-request jitter absent (popular fields repeat exactly, which
// is what exercises the result cache the way repeated archive queries do).
func GenTrace(spec TraceSpec) []Request {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	objZipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Objects-1))
	fieldZipf := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Fields-1))

	// Pre-draw the field centres so field k is stable for a given seed.
	// Centres cycle through the footprint boxes, so every loaded file's sky
	// gets queried and popular fields land on real rows.
	type field struct{ ra, dec float64 }
	fields := make([]field, spec.Fields)
	for i := range fields {
		box := spec.Boxes[i%len(spec.Boxes)]
		fields[i] = field{
			ra:  wrapRA(box.RABase + rng.Float64()*box.RASpread),
			dec: clampDec(box.DecBase + rng.Float64()*box.DecSpread),
		}
	}

	interArrival := float64(time.Second) / spec.RatePerSec
	var now float64
	out := make([]Request, 0, spec.Queries)
	for i := 0; i < spec.Queries; i++ {
		now += rng.ExpFloat64() * interArrival
		var q queries.Query
		switch {
		case rng.Float64() < spec.ConeFrac:
			f := fields[fieldZipf.Uint64()]
			radius := spec.Radii[rng.Intn(len(spec.Radii))]
			q = queries.Cone{RA: f.ra, Dec: f.dec, RadiusDeg: radius}
		case spec.Frames > 0 && rng.Float64() < 0.1:
			// Frame ids carry the same per-file IDBase offset as object ids
			// (the generator allocates every tag's ids from IDBase).
			q = queries.FrameObjects{FrameID: spec.IDBase + 1 + int64(objZipf.Uint64())%spec.Frames}
		default:
			q = queries.ObjectLookup{ObjectID: spec.IDBase + 1 + int64(objZipf.Uint64())}
		}
		out = append(out, Request{Arrival: time.Duration(now), Query: q})
	}
	return out
}

func wrapRA(ra float64) float64 {
	for ra < 0 {
		ra += 360
	}
	for ra >= 360 {
		ra -= 360
	}
	return ra
}

func clampDec(dec float64) float64 {
	if dec > 89.5 {
		return 89.5
	}
	if dec < -89.5 {
		return -89.5
	}
	return dec
}

// Trace CSV columns.  object_id serves double duty as the frame id for frame
// queries and the bin width (millimags) for histogram queries.  Arrivals are
// stored in integer nanoseconds so a replayed trace schedules at exactly the
// original virtual times — the DES engine's determinism extends to archived
// traces.
var traceHeader = []string{"arrival_ns", "class", "object_id", "ra", "dec", "radius_deg"}

// WriteTrace writes the trace as CSV, one row per request, so a generated
// workload can be archived and replayed byte-for-byte.
func WriteTrace(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, r := range reqs {
		rec := []string{strconv.FormatInt(int64(r.Arrival), 10), r.Query.Class(), "", "", "", ""}
		switch q := r.Query.(type) {
		case queries.Cone:
			rec[3], rec[4], rec[5] = f(q.RA), f(q.Dec), f(q.RadiusDeg)
		case queries.ObjectLookup:
			rec[2] = strconv.FormatInt(q.ObjectID, 10)
		case queries.FrameObjects:
			rec[2] = strconv.FormatInt(q.FrameID, 10)
		case queries.MagHistogram:
			rec[2] = strconv.FormatInt(int64(math.Round(q.BinWidth*1000)), 10)
		default:
			return fmt.Errorf("serve: request %d has unsupported query class %q", i, r.Query.Class())
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace written by WriteTrace.  Requests are returned
// sorted by arrival time.
func ReadTrace(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	start := 0
	if rows[0][0] == traceHeader[0] {
		start = 1
	}
	out := make([]Request, 0, len(rows)-start)
	for i, row := range rows[start:] {
		if len(row) != len(traceHeader) {
			return nil, fmt.Errorf("serve: trace row %d has %d fields, want %d", i+1, len(row), len(traceHeader))
		}
		ns, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: trace row %d: bad arrival %q", i+1, row[0])
		}
		req := Request{Arrival: time.Duration(ns)}
		switch row[1] {
		case queries.ClassCone:
			ra, err1 := strconv.ParseFloat(row[3], 64)
			dec, err2 := strconv.ParseFloat(row[4], 64)
			rad, err3 := strconv.ParseFloat(row[5], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("serve: trace row %d: bad cone parameters", i+1)
			}
			req.Query = queries.Cone{RA: ra, Dec: dec, RadiusDeg: rad}
		case queries.ClassLookup:
			id, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: trace row %d: bad object id %q", i+1, row[2])
			}
			req.Query = queries.ObjectLookup{ObjectID: id}
		case queries.ClassFrame:
			id, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: trace row %d: bad frame id %q", i+1, row[2])
			}
			req.Query = queries.FrameObjects{FrameID: id}
		case queries.ClassHistogram:
			mm, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: trace row %d: bad bin width %q", i+1, row[2])
			}
			req.Query = queries.MagHistogram{BinWidth: float64(mm) / 1000}
		default:
			return nil, fmt.Errorf("serve: trace row %d: unknown class %q", i+1, row[1])
		}
		out = append(out, req)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}
