package serve

import (
	"fmt"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

// benchTrace is a cone-heavy workload against the benchmark catalog.
func benchTrace(n int, coneFrac float64) []Request {
	return GenTrace(TraceSpec{
		Queries:  n,
		Seed:     41,
		ConeFrac: coneFrac,
		Objects:  4000,
		IDBase:   100_000_000,
		Frames:   200,
		Fields:   16,
		RABase:   0, DecBase: -20, RASpread: 350, DecSpread: 40,
		RatePerSec: 1e9, // all requests effectively arrive immediately
	})
}

// BenchmarkConeSearchServe serves a cone-heavy trace on the realtime engine
// with 1/2/4/8 query workers over a pre-loaded repository.  On a 1-CPU host
// the worker counts timeshare one core and measure handoff/locking overhead,
// not parallel speedup (see BENCH_serve.json).
func BenchmarkConeSearchServe(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			env := newServeEnv(b, exec.NewRealtime(exec.RealtimeConfig{Seed: 1}), tuning.HTMIDOnly, Config{
				Workers:    workers,
				QueueDepth: 1 << 20,
			})
			env.loadFiles(b, testFiles(4, 12, 41), 2)
			trace := benchTrace(400, 1.0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh server per iteration isolates cache state; the
				// database (and its htmid index) is shared and read-only.
				qs := NewServer(exec.NewRealtime(exec.RealtimeConfig{Seed: 1}), env.db, Config{
					Workers:    workers,
					QueueDepth: 1 << 20,
				})
				rep := qs.Serve(trace)
				if rep.Served != rep.Requests {
					b.Fatalf("served %d of %d", rep.Served, rep.Requests)
				}
			}
		})
	}
}

// BenchmarkMixedLoadServe runs the full mixed scenario per iteration: a
// parallel bulk load racing a mixed query trace on the realtime engine.
func BenchmarkMixedLoadServe(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			files := testFiles(4, 8, 43)
			trace := benchTrace(300, 0.4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
				env := newServeEnv(b, sched, tuning.HTMIDOnly, Config{
					Workers:    workers,
					QueueDepth: 1 << 20,
				})
				res, err := RunMixed(env.load, files, parallel.Config{
					Loaders: 2,
					Loader:  core.Config{BatchSize: 40, ArraySize: 1000},
				}, env.server, trace)
				if err != nil {
					b.Fatal(err)
				}
				if res.Serve.Served == 0 {
					b.Fatal("nothing served")
				}
			}
		})
	}
}

// BenchmarkCacheGetHit prices one cache hit including the epoch check.
func BenchmarkCacheGetHit(b *testing.B) {
	db := catalogDBForBench(b)
	c := NewCache(8, 128)
	epoch, _ := db.ReadStamp(catalog.TObjects)
	c.Put(db, "bench-key", catalog.TObjects, epoch, lookupResult(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(db, "bench-key"); !ok {
			b.Fatal("miss")
		}
	}
}

func catalogDBForBench(b *testing.B) *relstore.DB {
	env := newServeEnv(b, exec.NewRealtime(exec.RealtimeConfig{Seed: 1}), tuning.HTMIDOnly, DefaultConfig())
	return env.db
}
