package serve

import (
	"sync"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

// TestRaceCacheNeverServesUncommittedRows is the mixed-scenario stress test:
// concurrent loader transactions (half of which roll back) race query
// workers that share one epoch-invalidated cache.  The invariant under
// go test -race: a cache hit never returns a row of a rolled-back
// transaction, and never a row of a transaction that had not committed when
// the entry was stored.
//
// Rolled-back rows are the detector for both halves: every writer transaction
// is equally likely to roll back, so if results computed over in-flight rows
// ever entered the cache, roughly half of those leaked rows would belong to
// transactions that subsequently rolled back — and any such id in a hit is
// flagged.  (A plain uncached read MAY see uncommitted rows; that is the
// engine's documented dirty-read behaviour and exactly why only
// SnapshotRead-stable results are cacheable.)
func TestRaceCacheNeverServesUncommittedRows(t *testing.T) {
	db := relstore.MustOpen(catalog.NewSchema(), relstore.WithMaxConcurrentTxns(32))
	setup, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(setup, 4); err != nil {
		t.Fatal(err)
	}
	ins := func(table string, cols []string, vals []relstore.Value) {
		if _, err := setup.Insert(table, cols, vals); err != nil {
			t.Fatalf("insert into %s: %v", table, err)
		}
	}
	ins(catalog.TObservations,
		[]string{"obs_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Float(53600), relstore.Float(120),
			relstore.Float(-30), relstore.Float(1.2), relstore.Str("r")})
	ins(catalog.TCCDColumns,
		[]string{"ccd_col_id", "obs_id", "ccd_id", "ccd_number", "filter", "ra_center", "dec_center"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Int(1),
			relstore.Str("r"), relstore.Float(120), relstore.Float(-30)})
	ins(catalog.TCCDFrames,
		[]string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Float(53600.1), relstore.Float(140)})
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		txnsEach = 60
		perTxn   = 8
	)

	// rolledBack records ids whose transaction rolled back; committed records
	// ids whose transaction committed.  Both only ever grow, and entries are
	// added AFTER the outcome settles, so membership in rolledBack proves the
	// row must never appear in a cached (committed-snapshot) result.
	var mu sync.Mutex
	rolledBack := make(map[int64]bool)
	committed := make(map[int64]bool)

	cache := NewCache(4, 64)
	cone := queries.Cone{RA: 120.01, Dec: -30.01, RadiusDeg: 5} // covers every inserted object
	var wg sync.WaitGroup

	for wr := 0; wr < writers; wr++ {
		wr := wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txnsEach; i++ {
				txn, err := db.BeginBlocking()
				if err != nil {
					t.Error(err)
					return
				}
				base := int64(1_000_000*(wr+1) + i*perTxn)
				for j := int64(0); j < perTxn; j++ {
					insertObject(t, txn, base+j)
				}
				if i%2 == 1 {
					if err := txn.Rollback(); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					for j := int64(0); j < perTxn; j++ {
						rolledBack[base+j] = true
					}
					mu.Unlock()
				} else {
					if _, err := txn.Commit(); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					for j := int64(0); j < perTxn; j++ {
						committed[base+j] = true
					}
					mu.Unlock()
				}
			}
		}()
	}

	const readers = 4
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sig := cone.Signature()
			for i := 0; i < 400; i++ {
				if res, ok := cache.Get(db, sig); ok {
					mu.Lock()
					for _, obj := range res.Objects {
						if rolledBack[obj.ObjectID] {
							t.Errorf("cache hit served object %d from a rolled-back transaction", obj.ObjectID)
						}
					}
					mu.Unlock()
					continue
				}
				var res queries.Result
				epoch, stable, err := db.SnapshotRead(cone.Table(), func() error {
					r, err := cone.Run(db)
					res = r
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
				if stable {
					// Every row of a stable snapshot must already be settled
					// as committed — never rolled back, never still pending.
					mu.Lock()
					for _, obj := range res.Objects {
						if rolledBack[obj.ObjectID] {
							t.Errorf("stable snapshot contains rolled-back object %d", obj.ObjectID)
						}
					}
					mu.Unlock()
					cache.Put(db, sig, cone.Table(), epoch, res)
				}
			}
		}()
	}

	wg.Wait()

	// Quiesced: a fresh stable read must now see exactly the committed ids.
	var final queries.Result
	_, stable, err := db.SnapshotRead(cone.Table(), func() error {
		r, err := cone.Run(db)
		final = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("quiesced database not stable")
	}
	got := make(map[int64]bool, len(final.Objects))
	for _, obj := range final.Objects {
		got[obj.ObjectID] = true
		if rolledBack[obj.ObjectID] {
			t.Fatalf("rolled-back object %d visible after quiesce", obj.ObjectID)
		}
	}
	for id := range committed {
		if !got[id] {
			t.Fatalf("committed object %d missing from final snapshot", id)
		}
	}
	// And the cache, if it still holds the entry, must agree with the final
	// state or refuse to serve.
	if res, ok := cache.Get(db, cone.Signature()); ok {
		if len(res.Objects) != len(final.Objects) {
			t.Fatalf("surviving cache entry has %d objects, current committed state has %d",
				len(res.Objects), len(final.Objects))
		}
	}
}

// TestRaceMixedRunRealtime runs the full mixed scenario (parallel bulk load +
// query serving through one Server) on the realtime engine; under -race this
// exercises every lock edge between the loader path, the epoch counters, the
// cache shards and the histograms.
func TestRaceMixedRunRealtime(t *testing.T) {
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 17})
	env := newServeEnv(t, sched, tuning.HTMIDOnly, Config{Workers: 4, QueueDepth: 100_000})
	files := testFiles(6, 10, 17)
	trace := testTrace(500, 19)
	res, err := RunMixed(env.load, files, parallel.Config{
		Loaders: 4,
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000},
	}, env.server, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.Total.RowsLoaded == 0 || res.Serve.Served == 0 {
		t.Fatalf("mixed realtime run degenerate: loaded %d, served %d",
			res.Load.Total.RowsLoaded, res.Serve.Served)
	}
	if orphans, _ := env.db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("%d orphaned rows after mixed run", orphans)
	}
}
