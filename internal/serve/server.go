// Package serve is the query-serving subsystem: it turns the one-shot
// science queries of internal/queries into a concurrent server with admission
// control, per-query deadlines, a sharded epoch-invalidated result cache and
// per-class latency histograms.
//
// The paper's repository is explicitly dual-purpose — a warehouse for
// incrementally loaded data *and* "a query engine to support scientific
// research" (§4.5.1); keeping the htmid index alive during intensive loading
// (the Figure 8 trade-off) only makes sense because queries arrive while
// loading runs.  This package models that serving half, on both execution
// engines:
//
//   - On the DES scheduler, requests are simulation processes: queue waits
//     and service times are charged in virtual time through a calibrated
//     cost model, and a seed fully determines the latency distribution —
//     reproducible capacity planning.
//   - On the realtime scheduler, every request is a goroutine against the
//     concurrent engine and the histograms record real wall-clock latency.
//
// The mixed scenario (RunMixed) co-schedules loader nodes and a query trace
// on one scheduler, which is how the Figure 8 index trade-off becomes
// observable as serving latency rather than only as loading cost.
package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/trace"
)

// Config controls the serving layer.
type Config struct {
	// Workers is the number of concurrent query executors (the worker-pool
	// size; capacity of the admission resource).
	Workers int
	// QueueDepth bounds the admission queue: a request arriving while
	// QueueDepth requests are already waiting is shed immediately
	// (backpressure instead of unbounded queueing).  Values <= 0 mean
	// 4×Workers.
	QueueDepth int
	// Deadline is the per-query queue-wait budget: a request that waited
	// longer is abandoned without executing (its client has given up).
	// 0 disables deadlines.
	Deadline time.Duration
	// CacheShards and CacheEntriesPerShard size the result cache.
	// CacheShards 0 means 8; CacheEntriesPerShard 0 means 128.
	// CacheShards < 0 disables the cache entirely.
	CacheShards          int
	CacheEntriesPerShard int
	// Cost converts query work reports into DES service time.
	Cost CostModel
}

// DefaultConfig returns a moderate serving configuration.
func DefaultConfig() Config {
	return Config{
		Workers:              4,
		QueueDepth:           16,
		Deadline:             2 * time.Second,
		CacheShards:          8,
		CacheEntriesPerShard: 128,
		Cost:                 DefaultCostModel(),
	}
}

// CostModel converts a query's physical-work report into simulated service
// time, the same way sqlbatch's cost model prices inserts.  It only shapes
// virtual time on the DES engine; on the realtime engine Sleep is a no-op at
// the default time scale and measured latency is real execution time.
type CostModel struct {
	// PerQuery is the fixed per-request overhead (parse, plan, round trip).
	PerQuery time.Duration
	// PerRowExamined prices inspecting one candidate row.
	PerRowExamined time.Duration
	// PerTrixelProbe prices one B-tree range probe of the htmid index.
	PerTrixelProbe time.Duration
	// PerRowReturned prices materializing one result row.
	PerRowReturned time.Duration
	// FullScanPerRow prices one row of an unindexed full scan (cheaper per
	// row than an index probe's random access, but over every row).
	FullScanPerRow time.Duration
	// CacheHit is the cost of serving a result from the cache.
	CacheHit time.Duration
}

// DefaultCostModel prices query work in the same order of magnitude as the
// loading cost model: microseconds per row touched, a fixed half-millisecond
// floor per query.
func DefaultCostModel() CostModel {
	return CostModel{
		PerQuery:       500 * time.Microsecond,
		PerRowExamined: 12 * time.Microsecond,
		PerTrixelProbe: 80 * time.Microsecond,
		PerRowReturned: 4 * time.Microsecond,
		FullScanPerRow: 2 * time.Microsecond,
		CacheHit:       60 * time.Microsecond,
	}
}

// QueryCost prices an executed query.
func (m CostModel) QueryCost(st queries.Stats) time.Duration {
	d := m.PerQuery + time.Duration(st.RowsReturned)*m.PerRowReturned
	if st.UsedIndex {
		d += time.Duration(st.RowsExamined)*m.PerRowExamined +
			time.Duration(st.TrixelsScanned)*m.PerTrixelProbe
	} else {
		d += time.Duration(st.RowsExamined) * m.FullScanPerRow
	}
	return d
}

// classState is the per-query-class accounting.
type classState struct {
	requests atomic.Int64
	served   atomic.Int64
	hits     atomic.Int64
	latency  *metrics.Histogram
}

// Server is the query-serving layer on one execution scheduler.
type Server struct {
	sched exec.Scheduler
	db    *relstore.DB
	cfg   Config
	cache *Cache

	workers exec.Resource

	classes map[string]*classState
	wait    *metrics.Histogram

	// ingestProbe, when installed via ObserveIngest, classifies each served
	// request by load phase: latencies observed while the probe reports
	// ingest active are additionally recorded in the during-ingest histogram
	// — the mixed report's headline ("read p99 DURING ingest", not diluted by
	// the quiet tail after loaders finish).
	ingestProbe  func() bool
	ingest       *metrics.Histogram
	ingestServed atomic.Int64
	// ingestShed/ingestExpired classify the non-served outcomes by load
	// phase the same way ingestServed classifies latencies, so the
	// during-ingest window reports sheds and deadline expiries alongside its
	// p99 instead of only the overall window doing so.
	ingestShed    atomic.Int64
	ingestExpired atomic.Int64

	requests atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64
	expired  atomic.Int64
	errors   atomic.Int64
	unstable atomic.Int64
}

// NewServer creates a serving layer for db on sched.  The scheduler must be
// the one every co-scheduled workload (e.g. a concurrent bulk load) uses.
func NewServer(sched exec.Scheduler, db *relstore.DB, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = DefaultConfig().CacheShards
	}
	if cfg.CacheEntriesPerShard <= 0 {
		cfg.CacheEntriesPerShard = DefaultConfig().CacheEntriesPerShard
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	s := &Server{
		sched:   sched,
		db:      db,
		cfg:     cfg,
		workers: sched.NewResource("query-workers", cfg.Workers),
		classes: make(map[string]*classState, 4),
		wait:    metrics.NewHistogram(),
		ingest:  metrics.NewHistogram(),
	}
	if cfg.CacheShards > 0 {
		s.cache = NewCache(cfg.CacheShards, cfg.CacheEntriesPerShard)
	}
	for _, cls := range []string{queries.ClassCone, queries.ClassLookup, queries.ClassFrame, queries.ClassHistogram} {
		s.classes[cls] = &classState{latency: metrics.NewHistogram()}
	}
	return s
}

// DB returns the served database.
func (s *Server) DB() *relstore.DB { return s.db }

// Cache returns the result cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// ObserveIngest installs the ingest-phase probe: while probe() reports true,
// every served request's latency is additionally recorded in the
// during-ingest histogram (Report.DuringIngest).  RunMixed installs the load
// cluster's Busy gauge here; install before the trace runs.
func (s *Server) ObserveIngest(probe func() bool) { s.ingestProbe = probe }

// observeLatency records one served request's latency, classifying it into
// the during-ingest histogram when the ingest probe reports loaders active.
func (s *Server) observeLatency(cls *classState, d time.Duration) {
	cls.latency.Observe(d)
	if s.ingestProbe != nil && s.ingestProbe() {
		s.ingest.Observe(d)
		s.ingestServed.Add(1)
	}
}

// SpawnTrace registers one worker per request on the scheduler, starting at
// each request's arrival offset.  The workers do not run until the scheduler
// is driven; co-schedule other workloads first, then call the scheduler's
// Run (or use Serve for a serve-only run).
//
// On the DES engine arrivals are scheduled directly in virtual time.  On the
// realtime engine the worker goroutine sleeps until its wall-clock arrival
// itself: the runtime's SpawnAt delay is scaled by TimeScale (0 by default —
// start staggers belong to simulated dispatch), but a workload trace's
// arrival process IS the experiment, so it is paced in real time regardless
// of how simulated service costs are scaled.
func (s *Server) SpawnTrace(reqs []Request) {
	deterministic := s.sched.Deterministic()
	for i, r := range reqs {
		r := r
		name := fmt.Sprintf("query-%05d", i+1)
		if deterministic {
			s.sched.SpawnAt(r.Arrival, name, func(w exec.Worker) {
				s.handle(w, r.Query)
			})
			continue
		}
		s.sched.Spawn(name, func(w exec.Worker) {
			if d := r.Arrival - w.Now(); d > 0 {
				time.Sleep(d)
			}
			s.handle(w, r.Query)
		})
	}
}

// Serve runs a serve-only workload to completion and returns the report.
func (s *Server) Serve(reqs []Request) Report {
	s.SpawnTrace(reqs)
	elapsed := s.sched.Run()
	return s.Report(elapsed)
}

// Outcome is the terminal disposition of one request through the serving
// path.
type Outcome int

const (
	// OutcomeServed: executed against the engine and answered.
	OutcomeServed Outcome = iota
	// OutcomeCacheHit: answered from the result cache.
	OutcomeCacheHit
	// OutcomeShed: rejected at admission, queue full.
	OutcomeShed
	// OutcomeExpired: abandoned after overrunning the queue-wait deadline.
	OutcomeExpired
	// OutcomeError: the query failed (unknown class or execution error).
	OutcomeError
)

// String labels the outcome for traces and HTTP error bodies.
func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeCacheHit:
		return "cache_hit"
	case OutcomeShed:
		return "shed"
	case OutcomeExpired:
		return "expired"
	}
	return "error"
}

// handle is the per-request worker body for trace replay; it discards the
// result.
func (s *Server) handle(w exec.Worker, q queries.Query) {
	s.Execute(w, q, nil)
}

// Execute runs one query through the full serving path — admission control,
// queue-wait deadline, result cache, engine execution, accounting — and
// returns the result and outcome.  It is the entry point shared by trace
// replay (handle, which discards the result) and the HTTP front door (which
// returns it to a socket client).  w must be a worker of the server's
// scheduler; transports on the realtime engine obtain one per request via
// exec.InlineRunner.
//
// tr, when non-nil, receives stage boundary marks (admission, cache probe,
// execute); the caller owns Begin/Finish/Publish, so the transport can add
// its own encode span after Execute returns.  A nil tr costs one pointer
// test per boundary — the in-process replay path stays allocation- and
// clock-call-free.
func (s *Server) Execute(w exec.Worker, q queries.Query, tr *trace.Req) (queries.Result, Outcome, error) {
	cls := s.classes[q.Class()]
	if cls == nil {
		// Unknown class: accounting it under a lazily shared bucket is not
		// worth a lock; treat as an error.
		s.errors.Add(1)
		return queries.Result{}, OutcomeError, fmt.Errorf("serve: unknown query class %q", q.Class())
	}
	s.requests.Add(1)
	cls.requests.Add(1)

	// Admission control: shed immediately when the queue is full.  QueueLen
	// is exact on the DES engine (single runner) and a good-faith estimate
	// under real concurrency — the paper's production system sheds on a
	// listener backlog the same way.
	if s.workers.QueueLen() >= s.cfg.QueueDepth {
		s.shed.Add(1)
		if s.ingestProbe != nil && s.ingestProbe() {
			s.ingestShed.Add(1)
		}
		return queries.Result{}, OutcomeShed, nil
	}
	arrived := w.Now()
	s.workers.Acquire(w, 1)
	defer s.workers.Release(w, 1)
	waited := w.Now() - arrived
	s.wait.Observe(waited)
	if tr != nil {
		tr.Mark(trace.StageAdmission, w.Now())
	}
	if s.cfg.Deadline > 0 && waited > s.cfg.Deadline {
		// The client gave up while we queued; executing now would be wasted
		// work (and on the DES engine would distort the latency histogram
		// with answers nobody received).
		s.expired.Add(1)
		if s.ingestProbe != nil && s.ingestProbe() {
			s.ingestExpired.Add(1)
		}
		return queries.Result{}, OutcomeExpired, nil
	}

	var sig string
	if s.cache != nil {
		sig = q.Signature()
		if res, ok := s.cache.Get(s.db, sig); ok {
			w.Sleep(s.cfg.Cost.CacheHit)
			cls.hits.Add(1)
			cls.served.Add(1)
			s.served.Add(1)
			s.observeLatency(cls, w.Now()-arrived)
			if tr != nil {
				tr.Mark(trace.StageCache, w.Now())
			}
			return res, OutcomeCacheHit, nil
		}
	}
	if tr != nil {
		tr.Mark(trace.StageCache, w.Now())
	}

	var res queries.Result
	epoch, stable, err := s.db.SnapshotRead(q.Table(), func() error {
		r, err := q.Run(s.db)
		res = r
		return err
	})
	if err != nil {
		s.errors.Add(1)
		if tr != nil {
			tr.Mark(trace.StageExecute, w.Now())
		}
		return queries.Result{}, OutcomeError, err
	}
	w.Sleep(s.cfg.Cost.QueryCost(res.Stats))
	if s.cache != nil {
		if stable {
			s.cache.Put(s.db, sig, q.Table(), epoch, res)
		} else {
			// The read overlapped in-flight loader transactions: the answer
			// is returned to this client but never memoized.
			s.unstable.Add(1)
		}
	}
	cls.served.Add(1)
	s.served.Add(1)
	s.observeLatency(cls, w.Now()-arrived)
	if tr != nil {
		tr.Mark(trace.StageExecute, w.Now())
	}
	return res, OutcomeServed, nil
}

// ClassReport is the per-query-class slice of a Report.
type ClassReport struct {
	Class     string
	Requests  int64
	Served    int64
	CacheHits int64
	Latency   metrics.HistogramSummary
}

// Report is the outcome of a serving run.
type Report struct {
	// Engine names the execution engine ("des" or "realtime").
	Engine string
	// Elapsed is the makespan of the scheduler run that served the trace.
	Elapsed time.Duration
	// Workers and QueueDepth echo the configuration.
	Workers, QueueDepth int

	Requests int64
	Served   int64
	Shed     int64
	Expired  int64
	Errors   int64
	// Unstable counts answers computed over in-flight loader writes: served
	// to their client, never cached.
	Unstable int64

	Cache     CacheStats
	QueueWait metrics.HistogramSummary
	Classes   []ClassReport

	// DuringIngest summarizes the latency of requests served while the ingest
	// probe reported loaders active (see ObserveIngest), all classes pooled;
	// DuringIngestServed counts them.  DuringIngestShed and
	// DuringIngestExpired carry the non-served outcomes of the same window —
	// a flat during-ingest p99 achieved by shedding every read is not flat,
	// and reporting the counts next to the quantiles keeps the headline
	// honest (the overall window has always reported all three; the ingest
	// window now matches).  All are zero when no probe was installed or no
	// request overlapped the load window.
	DuringIngest        metrics.HistogramSummary
	DuringIngestServed  int64
	DuringIngestShed    int64
	DuringIngestExpired int64
}

// Report snapshots the serving counters after a run of the scheduler.
func (s *Server) Report(elapsed time.Duration) Report {
	engine := "realtime"
	if s.sched.Deterministic() {
		engine = "des"
	}
	rep := Report{
		Engine:     engine,
		Elapsed:    elapsed,
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Requests:   s.requests.Load(),
		Served:     s.served.Load(),
		Shed:       s.shed.Load(),
		Expired:    s.expired.Load(),
		Errors:     s.errors.Load(),
		Unstable:   s.unstable.Load(),
		QueueWait:  s.wait.Summary(),
	}
	rep.DuringIngestShed = s.ingestShed.Load()
	rep.DuringIngestExpired = s.ingestExpired.Load()
	if n := s.ingestServed.Load(); n > 0 {
		rep.DuringIngestServed = n
		rep.DuringIngest = s.ingest.Summary()
	}
	if s.cache != nil {
		rep.Cache = s.cache.Stats()
	}
	for _, cls := range []string{queries.ClassCone, queries.ClassLookup, queries.ClassFrame, queries.ClassHistogram} {
		st := s.classes[cls]
		if st.requests.Load() == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, ClassReport{
			Class:     cls,
			Requests:  st.requests.Load(),
			Served:    st.served.Load(),
			CacheHits: st.hits.Load(),
			Latency:   st.latency.Summary(),
		})
	}
	return rep
}

// Counters is the exporter-facing snapshot of the admission counters; unlike
// Report it carries no histograms (the exporter reads those live, bucket by
// bucket, via the accessors below).
type Counters struct {
	Requests, Served, Shed, Expired, Errors, Unstable         int64
	DuringIngestServed, DuringIngestShed, DuringIngestExpired int64
}

// Counters snapshots the admission counters.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:            s.requests.Load(),
		Served:              s.served.Load(),
		Shed:                s.shed.Load(),
		Expired:             s.expired.Load(),
		Errors:              s.errors.Load(),
		Unstable:            s.unstable.Load(),
		DuringIngestServed:  s.ingestServed.Load(),
		DuringIngestShed:    s.ingestShed.Load(),
		DuringIngestExpired: s.ingestExpired.Load(),
	}
}

// ClassSnapshot is one query class's exporter view: counters by value, the
// latency histogram by reference (live; reads are atomic bucket loads).
type ClassSnapshot struct {
	Class                       string
	Requests, Served, CacheHits int64
	Latency                     *metrics.Histogram
}

// Classes lists the per-class accounting in stable class order, including
// classes with no traffic yet (the exporter must expose every series from
// the first scrape so rate() never sees a counter appear mid-flight).
func (s *Server) Classes() []ClassSnapshot {
	out := make([]ClassSnapshot, 0, len(s.classes))
	for _, cls := range []string{queries.ClassCone, queries.ClassLookup, queries.ClassFrame, queries.ClassHistogram} {
		st := s.classes[cls]
		out = append(out, ClassSnapshot{
			Class:     cls,
			Requests:  st.requests.Load(),
			Served:    st.served.Load(),
			CacheHits: st.hits.Load(),
			Latency:   st.latency,
		})
	}
	return out
}

// ServeConfig returns the resolved serving configuration.
func (s *Server) ServeConfig() Config { return s.cfg }

// QueueWait returns the live queue-wait histogram.
func (s *Server) QueueWait() *metrics.Histogram { return s.wait }

// DuringIngestLatency returns the live during-ingest latency histogram.
func (s *Server) DuringIngestLatency() *metrics.Histogram { return s.ingest }

// Workers returns the worker-pool resource (capacity, in-use, queue depth —
// the exporter's saturation gauges).
func (s *Server) Workers() exec.Resource { return s.workers }

// Scheduler returns the execution scheduler the server runs on.
func (s *Server) Scheduler() exec.Scheduler { return s.sched }

// QPS returns served queries per second of elapsed time.
func (r Report) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Served) / r.Elapsed.Seconds()
}

// Render writes the report as text tables.
func (r Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "engine: %s  workers: %d  queue: %d  elapsed: %s\n",
		r.Engine, r.Workers, r.QueueDepth, r.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "requests: %d  served: %d (%.0f qps)  shed: %d  expired: %d  errors: %d  uncacheable: %d\n",
		r.Requests, r.Served, r.QPS(), r.Shed, r.Expired, r.Errors, r.Unstable)
	fmt.Fprintf(w, "cache: %.1f%% hit rate (%d hits, %d misses, %d stale, %d entries)\n",
		r.Cache.HitRate()*100, r.Cache.Hits, r.Cache.Misses, r.Cache.StaleHits, r.Cache.Entries)
	fmt.Fprintf(w, "queue wait: %s\n", r.QueueWait)
	if r.DuringIngestServed > 0 {
		fmt.Fprintf(w, "read p99 during ingest: %.3f ms (p50 %.3f ms, %d reads served while loaders active)\n",
			float64(r.DuringIngest.P99)/1e6, float64(r.DuringIngest.P50)/1e6, r.DuringIngestServed)
		if r.DuringIngestShed > 0 || r.DuringIngestExpired > 0 {
			fmt.Fprintf(w, "during ingest: shed %d, expired %d\n", r.DuringIngestShed, r.DuringIngestExpired)
		}
	}

	t := &metrics.Table{
		Title:   "per-class latency",
		Columns: []string{"class", "requests", "served", "cache_hits", "p50_ms", "p95_ms", "p99_ms", "max_ms"},
	}
	for _, c := range r.Classes {
		t.AddRow(c.Class, c.Requests, c.Served, c.CacheHits,
			float64(c.Latency.P50)/1e6, float64(c.Latency.P95)/1e6,
			float64(c.Latency.P99)/1e6, float64(c.Latency.Max)/1e6)
	}
	return t.Render(w)
}
