package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// serveEnv is one database + sqlbatch server + query server on a scheduler.
type serveEnv struct {
	sched  exec.Scheduler
	db     *relstore.DB
	load   *sqlbatch.Server
	server *Server
}

// newServeEnv builds a fresh environment on the given scheduler with the
// reference data seeded and the htmid index policy applied.
func newServeEnv(t testing.TB, sched exec.Scheduler, policy tuning.IndexPolicy, cfg Config) *serveEnv {
	t.Helper()
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, policy); err != nil {
		t.Fatal(err)
	}
	load := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
	return &serveEnv{sched: sched, db: db, load: load, server: NewServer(sched, db, cfg)}
}

// loadFiles bulk-loads files to completion on the environment's scheduler.
func (e *serveEnv) loadFiles(t testing.TB, files []*catalog.File, loaders int) {
	t.Helper()
	_, err := parallel.Run(e.load, files, parallel.Config{
		Loaders: loaders,
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func testFiles(n int, totalMB float64, seed int64) []*catalog.File {
	return catalog.GenerateNight(catalog.NightSpec{
		TotalMB: totalMB, Files: n, RowsPerMB: 100, Seed: seed, RunID: 1,
	})
}

func testTrace(n int, seed int64) []Request {
	return GenTrace(TraceSpec{
		Queries:  n,
		Seed:     seed,
		ConeFrac: 0.4,
		Objects:  2000,
		IDBase:   100_000_000, // matches GenerateNight's first file
		Frames:   50,
		Fields:   8,
		RABase:   0, DecBase: -20, RASpread: 350, DecSpread: 40,
		RatePerSec: 2000,
	})
}

func TestServeOnDESIsDeterministic(t *testing.T) {
	run := func() Report {
		env := newServeEnv(t, exec.NewDES(des.NewKernel(5)), tuning.HTMIDOnly, DefaultConfig())
		env.loadFiles(t, testFiles(4, 8, 5), 2)
		return env.server.Serve(testTrace(300, 7))
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("two DES runs with one seed diverged:\n%+v\n%+v", r1, r2)
	}
	if r1.Served == 0 {
		t.Fatal("nothing served")
	}
	if r1.Cache.Hits == 0 {
		t.Fatal("zipf-hot trace produced no cache hits")
	}
	if len(r1.Classes) == 0 {
		t.Fatal("no per-class reports")
	}
	for _, c := range r1.Classes {
		if c.Served > 0 && c.Latency.P50 <= 0 {
			t.Fatalf("class %s served %d queries with zero p50", c.Class, c.Served)
		}
		if c.Latency.P99 < c.Latency.P50 {
			t.Fatalf("class %s: p99 %s < p50 %s", c.Class, c.Latency.P99, c.Latency.P50)
		}
	}
}

func TestServeRealtime(t *testing.T) {
	env := newServeEnv(t, exec.NewRealtime(exec.RealtimeConfig{Seed: 5}), tuning.HTMIDOnly, Config{
		Workers:    4,
		QueueDepth: 10_000, // never shed in this test
	})
	env.loadFiles(t, testFiles(4, 8, 5), 2)
	rep := env.server.Serve(testTrace(300, 7))
	if rep.Engine != "realtime" {
		t.Fatalf("engine = %q", rep.Engine)
	}
	if rep.Served != rep.Requests {
		t.Fatalf("served %d of %d requests with an unbounded queue (shed=%d expired=%d errors=%d)",
			rep.Served, rep.Requests, rep.Shed, rep.Expired, rep.Errors)
	}
	if rep.Cache.Hits == 0 {
		t.Fatal("no cache hits on realtime engine")
	}
}

func TestBackpressureSheds(t *testing.T) {
	env := newServeEnv(t, exec.NewDES(des.NewKernel(3)), tuning.HTMIDOnly, Config{
		Workers:    1,
		QueueDepth: 2,
		Cost: CostModel{
			PerQuery: 50 * time.Millisecond, // slow queries, fast arrivals
		},
	})
	env.loadFiles(t, testFiles(2, 4, 3), 1)
	// 100 requests all arriving within 10ms against a 50ms/query single
	// worker with a queue of 2: nearly everything sheds.
	trace := GenTrace(TraceSpec{Queries: 100, Seed: 9, ConeFrac: 0, Objects: 100,
		IDBase: 100_000_000, RatePerSec: 10_000})
	rep := env.server.Serve(trace)
	if rep.Shed == 0 {
		t.Fatalf("bounded queue never shed: %+v", rep)
	}
	if rep.Served+rep.Shed+rep.Expired+rep.Errors != rep.Requests {
		t.Fatalf("request accounting leaks: %+v", rep)
	}
}

func TestDeadlineExpiresQueuedQueries(t *testing.T) {
	env := newServeEnv(t, exec.NewDES(des.NewKernel(3)), tuning.HTMIDOnly, Config{
		Workers:    1,
		QueueDepth: 1000, // do not shed: force queueing instead
		Deadline:   20 * time.Millisecond,
		Cost: CostModel{
			PerQuery: 10 * time.Millisecond,
		},
	})
	env.loadFiles(t, testFiles(2, 4, 3), 1)
	trace := GenTrace(TraceSpec{Queries: 100, Seed: 9, ConeFrac: 0, Objects: 100,
		IDBase: 100_000_000, RatePerSec: 10_000})
	rep := env.server.Serve(trace)
	if rep.Expired == 0 {
		t.Fatalf("no query expired despite a 2-service-time deadline: %+v", rep)
	}
}

func TestMixedLoadServeDES(t *testing.T) {
	env := newServeEnv(t, exec.NewDES(des.NewKernel(11)), tuning.HTMIDOnly, DefaultConfig())
	files := testFiles(4, 10, 11)
	// Spread arrivals across the whole (virtual) load window.
	trace := testTrace(400, 13)
	res, err := RunMixed(env.load, files, parallel.Config{
		Loaders: 2,
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000},
	}, env.server, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.Total.RowsLoaded == 0 {
		t.Fatal("mixed run loaded nothing")
	}
	if res.Serve.Served == 0 {
		t.Fatal("mixed run served nothing")
	}
	// During loading, some reads must have overlapped uncommitted state and
	// stayed out of the cache.
	if res.Serve.Unstable == 0 {
		t.Log("note: no unstable reads observed (load finished before queries)")
	}
	var buf bytes.Buffer
	if err := res.Serve.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-class latency", "p50_ms", "p95_ms", "p99_ms", "cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMixedSchedulerMismatch(t *testing.T) {
	envA := newServeEnv(t, exec.NewDES(des.NewKernel(1)), tuning.HTMIDOnly, DefaultConfig())
	envB := newServeEnv(t, exec.NewDES(des.NewKernel(1)), tuning.HTMIDOnly, DefaultConfig())
	_, err := RunMixed(envA.load, testFiles(1, 2, 1), parallel.Config{Loaders: 1}, envB.server, nil)
	if err == nil {
		t.Fatal("mismatched schedulers accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	trace := testTrace(200, 21)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back), len(trace))
	}
	if !reflect.DeepEqual(trace, back) {
		t.Fatal("trace did not survive the CSV round trip exactly")
	}
}

// TestWithFootprintConesHitLoadedSky pins the workload-realism property: a
// footprint-aimed trace's cone searches land on the catalog that was loaded,
// rather than probing empty sky (each generated file sits at a random base
// position, so an unaimed box almost never overlaps it).
func TestWithFootprintConesHitLoadedSky(t *testing.T) {
	env := newServeEnv(t, exec.NewDES(des.NewKernel(23)), tuning.HTMIDOnly, DefaultConfig())
	files := testFiles(4, 10, 23)
	env.loadFiles(t, files, 2)
	trace := GenTrace(TraceSpec{
		Queries: 100, Seed: 3, ConeFrac: 1, Radii: []float64{0.8},
		Fields: 8,
	}.WithFootprint(files))
	nonEmpty := 0
	for _, r := range trace {
		res, err := r.Query.Run(env.db)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(trace)/4 {
		t.Fatalf("only %d of %d footprint-aimed cones found any objects", nonEmpty, len(trace))
	}

	// Frame queries must target loaded frame ids (IDBase-offset).
	frameTrace := GenTrace(TraceSpec{
		Queries: 200, Seed: 3, ConeFrac: 0, Objects: 500, Frames: 20,
		IDBase: 100_000_000,
	})
	frameHits := 0
	for _, r := range frameTrace {
		if fq, ok := r.Query.(queries.FrameObjects); ok {
			res, err := fq.Run(env.db)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Objects) > 0 {
				frameHits++
			}
		}
	}
	if frameHits == 0 {
		t.Fatal("no frame query found a loaded frame")
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	a := GenTrace(TraceSpec{Queries: 100, Seed: 4, ConeFrac: 0.5})
	b := GenTrace(TraceSpec{Queries: 100, Seed: 4, ConeFrac: 0.5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := GenTrace(TraceSpec{Queries: 100, Seed: 5, ConeFrac: 0.5})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	var cones int
	for _, r := range a {
		if _, ok := r.Query.(queries.Cone); ok {
			cones++
		}
	}
	if cones == 0 || cones == len(a) {
		t.Fatalf("cone mix degenerate: %d of %d", cones, len(a))
	}
}
