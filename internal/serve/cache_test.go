package serve

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
)

// testDB returns a catalog database with one committed object and the parent
// chain satisfied.
func testDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 4); err != nil {
		t.Fatal(err)
	}
	ins := func(table string, cols []string, vals []relstore.Value) {
		t.Helper()
		if _, err := txn.Insert(table, cols, vals); err != nil {
			t.Fatalf("insert into %s: %v", table, err)
		}
	}
	ins(catalog.TObservations,
		[]string{"obs_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Float(53600), relstore.Float(120),
			relstore.Float(-30), relstore.Float(1.2), relstore.Str("r")})
	ins(catalog.TCCDColumns,
		[]string{"ccd_col_id", "obs_id", "ccd_id", "ccd_number", "filter", "ra_center", "dec_center"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Int(1),
			relstore.Str("r"), relstore.Float(120), relstore.Float(-30)})
	ins(catalog.TCCDFrames,
		[]string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Float(53600.1), relstore.Float(140)})
	insertObject(t, txn, 1)
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// insertObject inserts one object at a fixed position under the given id,
// with its real htmid so the indexed cone-search path finds it.
func insertObject(t testing.TB, txn *relstore.Txn, id int64) {
	t.Helper()
	const ra, dec = 120.01, -30.01
	v := htm.FromRaDec(ra, dec)
	if _, err := txn.Insert(catalog.TObjects,
		[]string{"object_id", "frame_id", "ra", "dec", "htmid", "cx", "cy", "cz", "mag"},
		[]relstore.Value{relstore.Int(id), relstore.Int(1), relstore.Float(ra), relstore.Float(dec),
			relstore.Int(htm.MustLookup(ra, dec, htm.DefaultDepth)),
			relstore.Float(v.X), relstore.Float(v.Y), relstore.Float(v.Z),
			relstore.Float(18)}); err != nil {
		t.Fatalf("insert object %d: %v", id, err)
	}
}

func lookupResult(n int64) queries.Result {
	return queries.Result{Objects: []queries.Object{{ObjectID: n}}}
}

func TestCacheHitAndEpochInvalidation(t *testing.T) {
	db := testDB(t)
	c := NewCache(2, 8)
	table := catalog.TObjects

	epoch, clean := db.ReadStamp(table)
	if !clean {
		t.Fatal("settled database reported dirty")
	}
	if !c.Put(db, "k1", table, epoch, lookupResult(1)) {
		t.Fatal("Put refused a current epoch")
	}
	if res, ok := c.Get(db, "k1"); !ok || res.Objects[0].ObjectID != 1 {
		t.Fatalf("Get after Put = (%+v, %v)", res, ok)
	}

	// A commit to the table supersedes the entry.
	txn, _ := db.Begin()
	insertObject(t, txn, 2)
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(db, "k1"); ok {
		t.Fatal("cache served a result from a superseded epoch")
	}
	st := c.Stats()
	if st.StaleHits != 1 {
		t.Fatalf("stale hits = %d, want 1", st.StaleHits)
	}
	if st.Entries != 0 {
		t.Fatalf("stale entry not evicted: %d entries", st.Entries)
	}

	// Put with the outdated epoch must refuse.
	if c.Put(db, "k1", table, epoch, lookupResult(1)) {
		t.Fatal("Put accepted an outdated epoch")
	}

	// A rollback also supersedes: rows were transiently visible.
	epoch2, _ := db.ReadStamp(table)
	if !c.Put(db, "k2", table, epoch2, lookupResult(2)) {
		t.Fatal("Put refused the fresh epoch")
	}
	txn2, _ := db.Begin()
	insertObject(t, txn2, 3)
	if err := txn2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(db, "k2"); ok {
		t.Fatal("cache served a result across a rollback")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	db := testDB(t)
	c := NewCache(1, 2)
	table := catalog.TObjects
	epoch, _ := db.ReadStamp(table)

	c.Put(db, "a", table, epoch, lookupResult(1))
	c.Put(db, "b", table, epoch, lookupResult(2))
	c.Get(db, "a") // refresh a: b is now the LRU victim
	c.Put(db, "c", table, epoch, lookupResult(3))

	if _, ok := c.Get(db, "a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(db, "b"); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := c.Get(db, "c"); !ok {
		t.Fatal("new entry missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheHitRate(t *testing.T) {
	var st CacheStats
	if st.HitRate() != 0 {
		t.Fatal("empty stats hit rate not 0")
	}
	st = CacheStats{Hits: 3, Misses: 1, StaleHits: 1}
	if got := st.HitRate(); got != 0.6 {
		t.Fatalf("hit rate = %v, want 0.6", got)
	}
}
