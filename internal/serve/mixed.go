package serve

import (
	"fmt"

	"skyloader/internal/catalog"
	"skyloader/internal/parallel"
	"skyloader/internal/sqlbatch"
)

// MixedResult is the outcome of a combined load+serve run.
type MixedResult struct {
	// Load is the bulk-loading half (per-node stats, makespan, throughput).
	Load parallel.Result
	// Serve is the query-serving half (latency histograms, cache hit rate).
	// Serve.DuringIngest holds the headline metric: read latency sampled only
	// while loader nodes were active.
	Serve Report
	// IngestRowsPerSec is the loader throughput over the load window (rows
	// loaded / load makespan) — the other side of the "read p99 during
	// ingest" trade-off: reader-friendly ingest modes must keep this number
	// while flattening Serve.DuringIngest.P99.
	IngestRowsPerSec float64
}

// RunMixed executes the paper-relevant mixed scenario: loader nodes bulk-load
// catalog files while query workers serve a request trace, all on one
// scheduler and one database.  On the DES engine the interleaving is
// deterministic and the report shows how loading-phase choices (index policy,
// commit frequency, parallelism) move query latency — Figure 8's trade-off
// observed live from the query side.  On the realtime engine loaders and
// query workers are real goroutines contending on the concurrent engine.
//
// The load server and the query server must share a scheduler and a
// database: the whole point is contention on one repository.
func RunMixed(loadServer *sqlbatch.Server, files []*catalog.File, loadCfg parallel.Config, qs *Server, reqs []Request) (MixedResult, error) {
	if loadServer.Scheduler() != qs.sched {
		return MixedResult{}, fmt.Errorf("serve: load server and query server run on different schedulers")
	}
	if loadServer.DB() != qs.db {
		return MixedResult{}, fmt.Errorf("serve: load server and query server host different databases")
	}
	cluster, err := parallel.Spawn(loadServer, files, loadCfg)
	if err != nil {
		return MixedResult{}, err
	}
	// Classify every served read by load phase: the report's headline is read
	// p99 over the window where loader nodes are actually running.
	qs.ObserveIngest(cluster.Busy)
	qs.SpawnTrace(reqs)
	elapsed := qs.sched.Run()
	loadRes, err := cluster.Collect()
	if err != nil {
		return MixedResult{}, err
	}
	if loadCfg.SealAfterLoad {
		// Deferred index policy: close the load phase once loaders and the
		// trace have drained.  Queries issued during the load saw Ready() ==
		// false on suspended indexes and fell back to scans — that is the
		// policy's serving-side cost, which the mixed report makes visible.
		if err := parallel.SealPhase(loadServer, &loadRes); err != nil {
			return MixedResult{}, err
		}
	}
	out := MixedResult{Load: loadRes, Serve: qs.Report(elapsed)}
	if loadRes.WallTime > 0 {
		out.IngestRowsPerSec = float64(loadRes.Total.RowsLoaded) / loadRes.WallTime.Seconds()
	}
	return out, nil
}
