package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"skyloader/internal/queries"
	"skyloader/internal/relstore"
)

// Cache is a sharded LRU result cache keyed by query signature and
// invalidated by table commit epochs.
//
// Ownership rules (see PERFORMANCE.md, "Result-cache ownership"):
//
//   - An entry may only be stored with an epoch obtained from
//     relstore.DB.SnapshotRead reporting stable — a result computed while a
//     loader transaction was in flight, or across a commit, must never be
//     memoized, because the engine makes rows visible at insert time.
//   - Get re-validates the entry's epoch against the table's current commit
//     epoch on every hit and evicts on mismatch, so a commit (or rollback)
//     anywhere in the loading pipeline invalidates every affected result at
//     the moment it settles, with no invalidation fan-out on the write path.
//   - Cached results are shared snapshots: callers must treat
//     queries.Result slices as immutable.
//
// Sharding keeps the lock a query worker takes for a lookup independent of
// most other workers; each shard has its own mutex, map and LRU list.
type Cache struct {
	shards []cacheShard

	hits       atomic.Int64
	misses     atomic.Int64
	staleHits  atomic.Int64
	evictions  atomic.Int64
	stores     atomic.Int64
	overwrites atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	cap     int
}

type cacheEntry struct {
	key   string
	table string
	epoch int64
	res   queries.Result
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	StaleHits int64 // lookups that found an entry invalidated by a newer epoch
	Evictions int64 // capacity evictions (stale evictions count under StaleHits)
	Stores    int64
	Entries   int
}

// HitRate returns hits / lookups (0 when no lookups happened).  Stale hits
// count as misses: the entry existed but could not be served.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.StaleHits
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache creates a cache with the given shard count (rounded up to a power
// of two, minimum 1) and per-shard entry capacity.
func NewCache(shards, entriesPerShard int) *Cache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if entriesPerShard < 1 {
		entriesPerShard = 1
	}
	c := &Cache{shards: make([]cacheShard, n)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			entries: make(map[string]*list.Element, entriesPerShard),
			lru:     list.New(),
			cap:     entriesPerShard,
		}
	}
	return c
}

// shardFor hashes a key to its shard (FNV-1a).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// Get returns the cached result for the key if present and still valid for
// the current commit epoch of its table.  A stale entry is evicted and
// reported as a miss.
func (c *Cache) Get(db *relstore.DB, key string) (queries.Result, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return queries.Result{}, false
	}
	ent := el.Value.(*cacheEntry)
	if db.TableEpoch(ent.table) != ent.epoch {
		// Superseded by a commit or rollback: evict so a later Put can
		// install the fresh epoch's result.
		delete(s.entries, key)
		s.lru.Remove(el)
		s.mu.Unlock()
		c.staleHits.Add(1)
		return queries.Result{}, false
	}
	s.lru.MoveToFront(el)
	res := ent.res
	s.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// Put stores a result computed at the given stable epoch of the table.  The
// caller must have obtained (epoch, stable=true) from DB.SnapshotRead; Put
// double-checks that the epoch is still current and refuses the store
// otherwise, so a result that went stale between computation and store never
// enters the cache.
func (c *Cache) Put(db *relstore.DB, key, table string, epoch int64, res queries.Result) bool {
	if db.TableEpoch(table) != epoch {
		return false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch = epoch
		ent.res = res
		s.lru.MoveToFront(el)
		c.overwrites.Add(1)
		return true
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		s.lru.Remove(oldest)
		c.evictions.Add(1)
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, table: table, epoch: epoch, res: res})
	c.stores.Add(1)
	return true
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		StaleHits: c.staleHits.Load(),
		Evictions: c.evictions.Load(),
		Stores:    c.stores.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
