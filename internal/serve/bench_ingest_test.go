package serve

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// BenchmarkMixedIngestP99 measures the PR's headline number: read latency
// p99 sampled over the window where loader goroutines are active, with the
// batch apply path holding the table write lock monolithically versus in
// reader-friendly sub-chunks (WithBatchLockChunk).  Each op is one full mixed
// run on the realtime engine; the during-ingest p99 (ms) and ingest rows/s
// are reported so the read-latency/ingest-throughput trade-off is visible in
// one row.  Feeds BENCH_groupcommit.json.
func BenchmarkMixedIngestP99(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []relstore.Option
	}{
		{name: "monolithic"},
		{name: "chunked_64", opts: []relstore.Option{relstore.WithBatchLockChunk(64)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// The load must span several Go scheduler preemption quanta on a
			// 1-CPU host, or a monolithic run can serve the whole trace after
			// the loaders finish and the ingest window is empty — hence the
			// row-dense files (40k rows, a few hundred ms of wall-clock load).
			files := catalog.GenerateNight(catalog.NightSpec{
				TotalMB: 40, Files: 4, RowsPerMB: 1000, Seed: 47, RunID: 1,
			})
			trace := benchTrace(2000, 0.4)
			var p99Sum, rpsSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
				db := relstore.MustOpen(catalog.NewSchema(), mode.opts...)
				txn, err := db.Begin()
				if err != nil {
					b.Fatal(err)
				}
				if err := catalog.SeedReference(txn, 8); err != nil {
					b.Fatal(err)
				}
				if _, err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
				if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
					b.Fatal(err)
				}
				load := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
				qs := NewServer(sched, db, Config{Workers: 2, QueueDepth: 1 << 20})
				res, err := RunMixed(load, files, parallel.Config{
					// Large batches stretch each table-lock hold, which is the
					// contention the chunked mode exists to bound.
					Loaders: 2,
					Loader:  core.Config{BatchSize: 1000, ArraySize: 1000},
				}, qs, trace)
				if err != nil {
					b.Fatal(err)
				}
				if res.Serve.DuringIngestServed == 0 {
					b.Fatal("no reads landed in the ingest window; shrink the trace rate or grow the files")
				}
				p99Sum += float64(res.Serve.DuringIngest.P99) / 1e6
				rpsSum += res.IngestRowsPerSec
			}
			b.StopTimer()
			b.ReportMetric(p99Sum/float64(b.N), "p99-ms")
			b.ReportMetric(rpsSum/float64(b.N), "ingest-rows/s")
		})
	}
}
