package experiments

import (
	"fmt"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/tuning"
)

// defaultLoader returns the loader configuration used by the single-process
// figures: batch 40, array 1000, commit at end of file.
func defaultLoader() core.Config {
	cfg := core.DefaultConfig()
	return cfg
}

// figureSizesMB are the data sizes of Figures 4 and 8.
func figureSizesMB(quick bool) []float64 {
	if quick {
		return []float64{200, 400}
	}
	return []float64{200, 400, 600, 800, 1000, 1200}
}

// Figure4 regenerates "Runtime of Bulk and Non-Bulk Loading": a single
// loading process, data sizes 200-1200 MB, batch-size 40 for the bulk case
// versus individual SQL inserts.  The paper reports a 7-9x speedup.
func Figure4(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Figure 4: Bulk vs. Non-Bulk Loading (single process)",
		Columns: []string{"size_mb", "bulk_runtime_s", "nonbulk_runtime_s", "speedup"},
		Notes: []string{
			"paper: bulk loading is 7-9x faster than singleton inserts at batch-size 40",
			fmt.Sprintf("scaling: %d generated rows per nominal MB; runtimes are virtual seconds", cfg.RowsPerMB),
		},
	}
	for i, size := range figureSizesMB(cfg.Quick) {
		seed := cfg.Seed + int64(i)

		envB, err := NewEnv(EnvOptions{Seed: seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		bulk, err := envB.RunSingleLoad(SingleLoadSpec{
			SizeMB: size, RowsPerMB: cfg.RowsPerMB, Seed: seed, ErrorRate: cfg.ErrorRate,
			Loader: defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("figure4 bulk %v MB: %w", size, err)
		}

		envN, err := NewEnv(EnvOptions{Seed: seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		nonbulk, err := envN.RunSingleLoad(SingleLoadSpec{
			SizeMB: size, RowsPerMB: cfg.RowsPerMB, Seed: seed, ErrorRate: cfg.ErrorRate,
			Loader: defaultLoader(), NonBulk: true,
		})
		if err != nil {
			return nil, fmt.Errorf("figure4 non-bulk %v MB: %w", size, err)
		}

		bs := bulk.Elapsed.Seconds()
		ns := nonbulk.Elapsed.Seconds()
		t.AddRow(size, bs, ns, metrics.Ratio(ns, bs))
	}
	return t, nil
}

// batchSizes are the Figure 5 sweep values.
func batchSizes(quick bool) []int {
	if quick {
		return []int{10, 40, 60}
	}
	return []int{10, 20, 30, 40, 50, 60}
}

// Figure5 regenerates "Effect of Batch Size on Runtime" for a 200 MB data
// set; the paper finds the optimum between 40 and 50.
func Figure5(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Figure 5: Effect of Batch Size (200 MB data set)",
		Columns: []string{"batch_size", "runtime_s"},
		Notes:   []string{"paper: runtime falls steeply up to ~40 and flattens; optimum in the 40-50 range"},
	}
	for _, b := range batchSizes(cfg.Quick) {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		loader := defaultLoader()
		loader.BatchSize = b
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: cfg.ErrorRate, Loader: loader,
		})
		if err != nil {
			return nil, fmt.Errorf("figure5 batch %d: %w", b, err)
		}
		t.AddRow(b, stats.Elapsed.Seconds())
	}
	return t, nil
}

// arraySizes are the Figure 6 sweep values.
func arraySizes(quick bool) []int {
	if quick {
		return []int{250, 1000, 1500}
	}
	return []int{250, 500, 750, 1000, 1250, 1500}
}

// Figure6 regenerates "Effect of Array Size on Runtime" for a 200 MB data
// set; the paper finds the benefit of larger arrays is lost beyond ~1000 rows
// because of client paging.
func Figure6(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Figure 6: Effect of Array Size (200 MB data set)",
		Columns: []string{"array_size", "runtime_s", "flush_cycles"},
		Notes:   []string{"paper: runtime decreases up to array-size ~1000, then rises as client paging sets in"},
	}
	for _, a := range arraySizes(cfg.Quick) {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		loader := defaultLoader()
		loader.ArraySize = a
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: cfg.ErrorRate, Loader: loader,
		})
		if err != nil {
			return nil, fmt.Errorf("figure6 array %d: %w", a, err)
		}
		t.AddRow(a, stats.Elapsed.Seconds(), stats.FlushCycles)
	}
	return t, nil
}

// parallelDegrees are the Figure 7 sweep values.
func parallelDegrees(quick bool) []int {
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

// Figure7 regenerates "Effect of Parallelism": loading one observation's
// catalog files (28 files of varying size) with 1-8 concurrent loader
// processes and dynamic file assignment.  The paper sees near-linear scaling
// to 6, a peak at 6-7 and degradation (with occasional stalls) beyond.
func Figure7(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	nightMB := 1400.0
	if cfg.Quick {
		nightMB = 400
	}
	t := &metrics.Table{
		Title:   "Figure 7: Effect of Parallelism (one observation, dynamic file assignment)",
		Columns: []string{"loaders", "throughput_mb_s", "wall_time_s", "lock_waits", "long_stalls"},
		Notes: []string{
			"paper: throughput climbs almost linearly to 6 loaders, peaks at 6-7, and degrades at 8",
			fmt.Sprintf("workload: %0.f nominal MB split over %d files of varying size", nightMB, catalog.FilesPerObservation),
		},
	}
	for _, p := range parallelDegrees(cfg.Quick) {
		// The same observation (same seed) is loaded at every degree of
		// parallelism, as in the paper's tests on identical catalog data.
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		files := catalog.GenerateNight(catalog.NightSpec{
			TotalMB:   nightMB,
			RowsPerMB: cfg.RowsPerMB,
			Seed:      cfg.Seed,
			ErrorRate: cfg.ErrorRate,
			RunID:     1,
		})
		res, err := parallel.Run(env.Server, files, parallel.Config{
			Loaders:    p,
			Assignment: parallel.Dynamic,
			Loader:     defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("figure7 parallelism %d: %w", p, err)
		}
		t.AddRow(p, res.ThroughputMBps, res.WallTime.Seconds(), res.Server.LockWaits, res.Server.LongStalls)
	}
	return t, nil
}

// Figure8 regenerates "Effect of Indices on Runtime": bulk loading 200-1200
// MB with (a) no indices, (b) one single-integer index (htmid), (c) one
// composite index on three float attributes.  The paper reports average
// slowdowns of ~1.5% and ~8.5% respectively, growing with data size.
func Figure8(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Figure 8: Effect of Indices (single loader, batch 40)",
		Columns: []string{"size_mb", "no_index_s", "int_index_s", "composite_index_s", "int_overhead_pct", "composite_overhead_pct"},
		Notes:   []string{"paper: single-integer index ~1.5% average overhead, composite 3-float index ~8.5%, growing with size"},
	}
	policies := []tuning.IndexPolicy{tuning.NoIndexes, tuning.HTMIDOnly, tuning.HTMIDPlusComposite}
	for i, size := range figureSizesMB(cfg.Quick) {
		seed := cfg.Seed + int64(i)
		runtimes := make([]float64, len(policies))
		for j, pol := range policies {
			env, err := NewEnv(EnvOptions{Seed: seed, Cost: cfg.Cost, IndexPolicy: pol})
			if err != nil {
				return nil, err
			}
			stats, err := env.RunSingleLoad(SingleLoadSpec{
				SizeMB: size, RowsPerMB: cfg.RowsPerMB, Seed: seed, ErrorRate: cfg.ErrorRate, Loader: defaultLoader(),
			})
			if err != nil {
				return nil, fmt.Errorf("figure8 %v MB %s: %w", size, pol, err)
			}
			runtimes[j] = stats.Elapsed.Seconds()
		}
		t.AddRow(size, runtimes[0], runtimes[1], runtimes[2],
			metrics.PercentChange(runtimes[1], runtimes[0]),
			metrics.PercentChange(runtimes[2], runtimes[0]))
	}
	return t, nil
}

// databaseSizesGB are the Figure 9 sweep values.
func databaseSizesGB(quick bool) []float64 {
	if quick {
		return []float64{50, 300}
	}
	return []float64{50, 100, 150, 200, 250, 300}
}

// Figure9 regenerates "Effect of Database Size": loading a 200 MB data set
// into repositories already holding 50-300 GB, with secondary indices
// disabled.  The paper finds no significant effect.
func Figure9(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Figure 9: Effect of Database Size (200 MB load, no secondary indices)",
		Columns: []string{"database_gb", "runtime_s"},
		Notes:   []string{"paper: loading time stays constant as the database grows from 50 to 300 GB"},
	}
	for _, gb := range databaseSizesGB(cfg.Quick) {
		env, err := NewEnv(EnvOptions{
			Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes, PrePopulateGB: gb,
		})
		if err != nil {
			return nil, err
		}
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: cfg.ErrorRate, Loader: defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("figure9 %v GB: %w", gb, err)
		}
		t.AddRow(gb, stats.Elapsed.Seconds())
	}
	return t, nil
}
