// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the headline claim and a set of ablations, using the
// simulated Palomar-Quest loading environment: synthetic catalog files, the
// relstore repository engine, the sqlbatch client/server layer and the
// discrete-event simulation kernel.
//
// Runtimes are virtual (simulated) seconds.  Data volumes are nominal
// catalog megabytes scaled down to RowsPerMB generated rows per megabyte;
// EXPERIMENTS.md documents the calibration and the scaling.
package experiments

import (
	"fmt"

	"skyloader/internal/baseline"
	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// Config holds the experiment-wide knobs.
type Config struct {
	// Seed drives every random choice (generation, contention draws).
	Seed int64
	// RowsPerMB scales nominal catalog megabytes to generated rows
	// (default 100; the paper's 200 MB file becomes 20,000 rows).
	RowsPerMB int
	// ErrorRate is the fraction of corrupted detail rows in generated
	// files (default 0.2%, matching "errors are detected during bulk loads
	// fairly often" without dominating the workload).
	ErrorRate float64
	// Cost is the calibrated cost model; zero value means DefaultCostModel.
	Cost sqlbatch.CostModel
	// Quick shrinks the parameter sweeps (used by unit tests).
	Quick bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20051112 // SC'05 conference dates
	}
	if c.RowsPerMB <= 0 {
		c.RowsPerMB = 100
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.002
	}
	if c.Cost == (sqlbatch.CostModel{}) {
		c.Cost = sqlbatch.DefaultCostModel()
	}
	return c
}

// Env is one simulated loading environment: a fresh repository database with
// reference data seeded, hosted by a simulated server on a dedicated DES
// kernel.  Each experimental point gets its own Env so measurements are
// independent, as the paper's "tests were performed on an empty database
// unless otherwise noted".
type Env struct {
	Kernel *des.Kernel
	// Sched is the DES kernel behind the execution abstraction; every
	// experiment runs deterministically on it (wall-clock mode exists for
	// real loads, not for figure regeneration).
	Sched  exec.Scheduler
	DB     *relstore.DB
	Server *sqlbatch.Server
}

// EnvOptions configures environment construction.
type EnvOptions struct {
	Seed          int64
	Cost          sqlbatch.CostModel
	ServerConfig  sqlbatch.ServerConfig
	DBConfig      relstore.Config
	IndexPolicy   tuning.IndexPolicy
	PrePopulateGB float64
}

// NewEnv builds a fresh environment.
func NewEnv(opt EnvOptions) (*Env, error) {
	if opt.Cost == (sqlbatch.CostModel{}) {
		opt.Cost = sqlbatch.DefaultCostModel()
	}
	if opt.ServerConfig == (sqlbatch.ServerConfig{}) {
		opt.ServerConfig = sqlbatch.DefaultServerConfig()
	}
	if opt.DBConfig == (relstore.Config{}) {
		opt.DBConfig = relstore.DefaultConfig()
	}
	kernel := des.NewKernel(opt.Seed)
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(opt.DBConfig))
	if err != nil {
		return nil, err
	}
	txn, err := db.Begin()
	if err != nil {
		return nil, err
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		return nil, fmt.Errorf("experiments: seed reference data: %w", err)
	}
	if _, err := txn.Commit(); err != nil {
		return nil, err
	}
	if err := tuning.ApplyIndexPolicy(db, opt.IndexPolicy); err != nil {
		return nil, err
	}
	if opt.PrePopulateGB > 0 {
		db.PrePopulateEvenly(int64(opt.PrePopulateGB * 1e9))
	}
	sched := exec.NewDES(kernel)
	server := sqlbatch.NewServerOn(sched, db, opt.ServerConfig, opt.Cost)
	return &Env{Kernel: kernel, Sched: sched, DB: db, Server: server}, nil
}

// SingleLoadSpec describes one single-process load measurement.
type SingleLoadSpec struct {
	SizeMB    float64
	RowsPerMB int
	Seed      int64
	ErrorRate float64
	Loader    core.Config
	// NonBulk uses the singleton-insert baseline loader instead of the
	// SkyLoader bulk loader.
	NonBulk bool
	// CommitEveryRows applies to the non-bulk loader only.
	CommitEveryRows int
}

// RunSingleLoad generates one catalog file and loads it with a single loader
// process, returning the loader statistics (Elapsed is virtual time).
func (e *Env) RunSingleLoad(spec SingleLoadSpec) (core.Stats, error) {
	file := catalog.Generate(catalog.GenSpec{
		SizeMB:    spec.SizeMB,
		RowsPerMB: spec.RowsPerMB,
		Seed:      spec.Seed,
		ErrorRate: spec.ErrorRate,
		RunID:     1,
		IDBase:    10_000_000,
	})
	var stats core.Stats
	var runErr error
	e.Sched.Spawn("single-loader", func(w exec.Worker) {
		conn := e.Server.ConnectWorker(w)
		defer conn.Close()
		if spec.NonBulk {
			nb := baseline.NewNonBulkLoader(conn, baseline.NonBulkConfig{
				CommitEveryRows: spec.CommitEveryRows,
				ChargeStaging:   spec.Loader.ChargeStaging,
			})
			stats, runErr = nb.LoadFiles([]*catalog.File{file})
			return
		}
		loader, err := core.NewLoader(conn, spec.Loader)
		if err != nil {
			runErr = err
			return
		}
		stats, runErr = loader.LoadFiles([]*catalog.File{file})
	})
	e.Sched.Run()
	return stats, runErr
}
