package experiments

import (
	"fmt"

	"skyloader/internal/baseline"
	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// AblationAssignment (A1) compares dynamic ("on the fly") file assignment
// against even static partitioning on a deliberately skewed night, the design
// choice argued for in §4.4.
func AblationAssignment(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	nightMB := 900.0
	if cfg.Quick {
		nightMB = 300
	}
	t := &metrics.Table{
		Title:   "Ablation A1: dynamic vs. static file assignment (5 loaders, skewed night)",
		Columns: []string{"assignment", "wall_time_s", "throughput_mb_s", "max_node_idle_pct"},
		Notes:   []string{"paper §4.4: files vary in size, so unloaded files are assigned on the fly rather than divided evenly"},
	}
	for _, policy := range []parallel.Assignment{parallel.Dynamic, parallel.Static} {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		files := catalog.GenerateNight(catalog.NightSpec{
			TotalMB:   nightMB,
			RowsPerMB: cfg.RowsPerMB,
			Seed:      cfg.Seed,
			ErrorRate: cfg.ErrorRate,
			RunID:     1,
			Skew:      2.5,
		})
		res, err := parallel.Run(env.Server, files, parallel.Config{
			Loaders:    5,
			Assignment: policy,
			Loader:     defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("ablation assignment %s: %w", policy, err)
		}
		// Idle fraction of the node that finished earliest relative to the
		// makespan: large values mean poor balance.
		maxIdle := 0.0
		for _, n := range res.Nodes {
			idle := res.WallTime.Seconds() - (n.FinishedAt - n.StartedAt).Seconds()
			if res.WallTime > 0 {
				pct := idle / res.WallTime.Seconds() * 100
				if pct > maxIdle {
					maxIdle = pct
				}
			}
		}
		t.AddRow(policy.String(), res.WallTime.Seconds(), res.ThroughputMBps, maxIdle)
	}
	return t, nil
}

// AblationCommitFrequency (A2) measures the §4.5.2 tuning: committing after
// every batch, every 100 batches, and only at the end of the file.
func AblationCommitFrequency(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Ablation A2: commit frequency (200 MB, single bulk loader)",
		Columns: []string{"commit_every_batches", "runtime_s", "commits"},
		Notes:   []string{"paper §4.5.2: very infrequent commits gave a significant performance increase"},
	}
	sweeps := []int{1, 10, 100, 0}
	if cfg.Quick {
		sweeps = []int{1, 0}
	}
	for _, every := range sweeps {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		loader := defaultLoader()
		loader.CommitEveryBatches = every
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: cfg.ErrorRate, Loader: loader,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation commit every %d: %w", every, err)
		}
		label := fmt.Sprintf("%d", every)
		if every == 0 {
			label = "end-of-file"
		}
		t.AddRow(label, stats.Elapsed.Seconds(), stats.Commits)
	}
	return t, nil
}

// AblationCacheSize (A3) measures the §4.5.5 tuning: a smaller data cache
// loads faster because the database writer scans the whole cache per flush.
func AblationCacheSize(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Ablation A3: server data-cache size (200 MB, single bulk loader, commit every 50 batches)",
		Columns: []string{"cache_pages", "runtime_s"},
		Notes:   []string{"paper §4.5.5: allocating a smaller database data cache improves loading performance"},
	}
	sweeps := []int{512, 2048, 8192, 32768}
	if cfg.Quick {
		sweeps = []int{512, 32768}
	}
	for _, pages := range sweeps {
		dbCfg := relstore.DefaultConfig()
		dbCfg.CachePages = pages
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes, DBConfig: dbCfg})
		if err != nil {
			return nil, err
		}
		loader := defaultLoader()
		loader.CommitEveryBatches = 50
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: cfg.ErrorRate, Loader: loader,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation cache %d pages: %w", pages, err)
		}
		t.AddRow(pages, stats.Elapsed.Seconds())
	}
	return t, nil
}

// AblationErrorRate (A4) exercises the worst-case analysis of §4.2: as the
// fraction of bad rows grows, bulk loading degrades toward singleton-insert
// behaviour because every error breaks up a batch.
func AblationErrorRate(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := &metrics.Table{
		Title:   "Ablation A4: error rate (200 MB, single bulk loader, batch 40)",
		Columns: []string{"error_rate", "runtime_s", "db_calls", "rows_skipped"},
		Notes:   []string{"paper §4.2: with errors on every row bulk loading deteriorates to one call per row"},
	}
	rates := []float64{0, 0.01, 0.05, 0.20}
	if cfg.Quick {
		rates = []float64{0, 0.05}
	}
	for _, rate := range rates {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		stats, err := env.RunSingleLoad(SingleLoadSpec{
			SizeMB: 200, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: rate, Loader: defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("ablation error rate %v: %w", rate, err)
		}
		t.AddRow(rate, stats.Elapsed.Seconds(), stats.DBCalls, stats.RowsSkipped)
	}
	return t, nil
}

// AblationTwoPhase (A5) compares the single-pass SkyLoader against the
// SDSS-style two-phase (task database, validate, publish) loader discussed in
// §6.
func AblationTwoPhase(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	sizes := []float64{200, 400, 800}
	if cfg.Quick {
		sizes = []float64{200}
	}
	t := &metrics.Table{
		Title:   "Ablation A5: single-pass SkyLoader vs. SDSS-style two-phase loading",
		Columns: []string{"size_mb", "skyloader_s", "two_phase_s", "two_phase_penalty_pct"},
		Notes:   []string{"paper §6: the single-pass approach avoids the intermediate task database and the separate validation pass"},
	}
	for i, size := range sizes {
		seed := cfg.Seed + int64(i)

		envA, err := NewEnv(EnvOptions{Seed: seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		sky, err := envA.RunSingleLoad(SingleLoadSpec{
			SizeMB: size, RowsPerMB: cfg.RowsPerMB, Seed: seed, ErrorRate: cfg.ErrorRate, Loader: defaultLoader(),
		})
		if err != nil {
			return nil, fmt.Errorf("ablation two-phase skyloader %v: %w", size, err)
		}

		envB, err := NewEnv(EnvOptions{Seed: seed, Cost: cfg.Cost, IndexPolicy: tuning.NoIndexes})
		if err != nil {
			return nil, err
		}
		two, err := runTwoPhase(envB, size, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("ablation two-phase %v: %w", size, err)
		}
		t.AddRow(size, sky.Elapsed.Seconds(), two.Elapsed.Seconds(),
			metrics.PercentChange(two.Elapsed.Seconds(), sky.Elapsed.Seconds()))
	}
	return t, nil
}

// runTwoPhase loads one generated file with the SDSS-style loader.
func runTwoPhase(env *Env, sizeMB float64, cfg Config, seed int64) (core.Stats, error) {
	file := catalog.Generate(catalog.GenSpec{
		SizeMB:    sizeMB,
		RowsPerMB: cfg.RowsPerMB,
		Seed:      seed,
		ErrorRate: cfg.ErrorRate,
		RunID:     1,
		IDBase:    10_000_000,
	})
	var stats core.Stats
	var runErr error
	env.Kernel.Spawn("two-phase-loader", func(p *des.Proc) {
		conn := env.Server.Connect(p)
		defer conn.Close()
		tp, err := baseline.NewTwoPhaseLoader(conn, baseline.DefaultTwoPhaseConfig())
		if err != nil {
			runErr = err
			return
		}
		stats, runErr = tp.LoadFiles([]*catalog.File{file})
	})
	env.Kernel.Run()
	return stats, runErr
}

// RunAll runs every figure, the headline and every ablation, returning the
// tables in presentation order.  It is what cmd/skybench and the benchmark
// harness drive.
func RunAll(cfg Config) ([]*metrics.Table, error) {
	type step struct {
		name string
		fn   func(Config) (*metrics.Table, error)
	}
	steps := []step{
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure6", Figure6},
		{"figure7", Figure7},
		{"figure8", Figure8},
		{"figure9", Figure9},
		{"headline", Headline},
		{"ablation-assignment", AblationAssignment},
		{"ablation-commit", AblationCommitFrequency},
		{"ablation-cache", AblationCacheSize},
		{"ablation-errors", AblationErrorRate},
		{"ablation-two-phase", AblationTwoPhase},
	}
	var out []*metrics.Table
	for _, s := range steps {
		tbl, err := s.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Verify loads a small night and checks referential integrity end-to-end; it
// is used by `skybench -verify` and the integration tests.
func Verify(cfg Config) error {
	cfg = cfg.withDefaults()
	env, err := NewEnv(EnvOptions{Seed: cfg.Seed, Cost: cfg.Cost, IndexPolicy: tuning.HTMIDOnly})
	if err != nil {
		return err
	}
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: 60, RowsPerMB: cfg.RowsPerMB, Seed: cfg.Seed, ErrorRate: 0.01, RunID: 1, Files: 6,
	})
	res, err := parallel.Run(env.Server, files, parallel.Config{
		Loaders: 3, Assignment: parallel.Dynamic, Loader: defaultLoader(),
	})
	if err != nil {
		return err
	}
	orphans, err := env.DB.VerifyIntegrity()
	if err != nil {
		return err
	}
	if orphans != 0 {
		return fmt.Errorf("experiments: verification found %d orphaned rows", orphans)
	}
	if err := env.DB.VerifyPrimaryKeys(); err != nil {
		return err
	}
	if res.Total.RowsLoaded == 0 {
		return fmt.Errorf("experiments: verification loaded no rows")
	}
	var _ sqlbatch.ServerStats = res.Server
	return nil
}
