package experiments

import (
	"fmt"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/tuning"
)

// Headline regenerates the paper's headline claim: loading a 40-gigabyte
// data set took more than 20 hours with the original loading pipeline and
// less than 3 hours with the SkyLoader framework on the same hardware.
//
// The "original pipeline" configuration is the pre-SkyLoader state: the same
// Condor nodes issuing row-at-a-time inserts with frequent commits while all
// secondary indices are maintained eagerly.  The "SkyLoader production"
// configuration is parallel bulk loading with 5 concurrent loaders (the
// paper's production choice), batch 40, array 1000, delayed secondary indices
// (htmid only) and commits only at file boundaries.
//
// To keep the simulation tractable the measured night is a few nominal
// gigabytes; both configurations scale linearly with volume (Figures 4 and
// 9), so the 40 GB figures are reported by linear extrapolation and the
// scaling is recorded in the table notes.
func Headline(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	measuredGB := 4.0
	if cfg.Quick {
		measuredGB = 0.4
	}
	const targetGB = 40.0
	scale := targetGB / measuredGB

	type config struct {
		name       string
		loaders    int
		nonBulk    bool
		indexes    tuning.IndexPolicy
		commitEach int
	}
	configs := []config{
		{"original pipeline (5 loaders, row-at-a-time, eager indices)",
			5, true, tuning.HTMIDPlusComposite, 0},
		{"SkyLoader production (5 parallel bulk loaders, batch 40, array 1000, htmid index only, commit per file)",
			5, false, tuning.HTMIDOnly, 0},
	}

	t := &metrics.Table{
		Title:   "Headline: 40 GB night, original pipeline vs. SkyLoader framework",
		Columns: []string{"configuration", "measured_gb", "runtime_h_measured", "runtime_h_40gb", "throughput_mb_s"},
		Notes: []string{
			"paper: loading a 40 GB data set went from more than 20 hours to less than 3 hours",
			fmt.Sprintf("measured on a %.1f GB night and extrapolated linearly (x%.0f); loading scales linearly with size (Figures 4, 9)", measuredGB, scale),
		},
	}

	var runtimes []float64
	for i, c := range configs {
		env, err := NewEnv(EnvOptions{Seed: cfg.Seed + int64(i), Cost: cfg.Cost, IndexPolicy: c.indexes})
		if err != nil {
			return nil, err
		}
		files := catalog.GenerateNight(catalog.NightSpec{
			TotalMB:   measuredGB * 1000,
			RowsPerMB: cfg.RowsPerMB,
			Seed:      cfg.Seed,
			ErrorRate: cfg.ErrorRate,
			RunID:     1,
		})
		loaderCfg := core.DefaultConfig()
		loaderCfg.CommitEveryBatches = c.commitEach
		res, err := parallel.Run(env.Server, files, parallel.Config{
			Loaders:    c.loaders,
			Assignment: parallel.Dynamic,
			Loader:     loaderCfg,
			NonBulk:    c.nonBulk,
		})
		if err != nil {
			return nil, fmt.Errorf("headline %q: %w", c.name, err)
		}
		hours := res.WallTime.Hours()
		runtimes = append(runtimes, hours*scale)
		t.AddRow(c.name, measuredGB, hours, hours*scale, res.ThroughputMBps)
	}
	if len(runtimes) == 2 && runtimes[1] > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("reduction factor: %.1fx (paper: >20 h vs <3 h, i.e. >6.7x)", runtimes[0]/runtimes[1]))
	}
	return t, nil
}
