package experiments

import (
	"testing"

	"skyloader/internal/core"
	"skyloader/internal/metrics"
	"skyloader/internal/tuning"
)

// quickCfg keeps the experiment sweeps small and the row scaling low so the
// whole package tests in a few seconds.
func quickCfg() Config {
	return Config{Quick: true, RowsPerMB: 40, Seed: 123}
}

func colAt(t *testing.T, tbl *metrics.Table, name string) []float64 {
	t.Helper()
	col := tbl.Column(name)
	if len(col) == 0 {
		t.Fatalf("table %q has no numeric column %q:\n%s", tbl.Title, name, tbl)
	}
	return col
}

func TestNewEnvSeedsReferenceData(t *testing.T) {
	env, err := NewEnv(EnvOptions{Seed: 1, IndexPolicy: tuning.HTMIDOnly})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := env.DB.Count("ccds"); n == 0 {
		t.Fatal("reference data not seeded")
	}
	if len(env.DB.AllIndexes()) != 1 {
		t.Fatal("index policy not applied")
	}
	if env.Server == nil || env.Kernel == nil {
		t.Fatal("environment incomplete")
	}
}

func TestRunSingleLoad(t *testing.T) {
	env, err := NewEnv(EnvOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := env.RunSingleLoad(SingleLoadSpec{
		SizeMB: 3, RowsPerMB: 40, Seed: 2, Loader: core.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsLoaded == 0 || stats.Elapsed <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestFigure4BulkWins(t *testing.T) {
	tbl, err := Figure4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	bulk := colAt(t, tbl, "bulk_runtime_s")
	nonbulk := colAt(t, tbl, "nonbulk_runtime_s")
	speedup := colAt(t, tbl, "speedup")
	for i := range bulk {
		if nonbulk[i] <= bulk[i] {
			t.Fatalf("row %d: non-bulk (%v) should be slower than bulk (%v)", i, nonbulk[i], bulk[i])
		}
		if speedup[i] < 4 || speedup[i] > 15 {
			t.Fatalf("row %d: speedup %v outside the plausible band (paper: 7-9x)", i, speedup[i])
		}
	}
	// Runtime grows with data size.
	if bulk[len(bulk)-1] <= bulk[0] {
		t.Fatal("bulk runtime should grow with data size")
	}
}

func TestFigure5BatchSweep(t *testing.T) {
	tbl, err := Figure5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	runtimes := colAt(t, tbl, "runtime_s")
	batches := colAt(t, tbl, "batch_size")
	// The smallest batch size must be the slowest point of the sweep.
	if metrics.ArgMax(runtimes) != 0 {
		t.Fatalf("batch %v should be the slowest, got runtimes %v", batches[0], runtimes)
	}
}

func TestFigure6ArraySweep(t *testing.T) {
	tbl, err := Figure6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	runtimes := colAt(t, tbl, "runtime_s")
	arrays := colAt(t, tbl, "array_size")
	// The optimum must be an interior value (neither the smallest nor the
	// largest array size), which is the paper's core finding.
	best := metrics.ArgMin(runtimes)
	if best == 0 || best == len(runtimes)-1 {
		t.Fatalf("optimum at array size %v (runtimes %v); expected an interior optimum", arrays[best], runtimes)
	}
}

func TestFigure7ParallelismShape(t *testing.T) {
	cfg := quickCfg()
	tbl, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	thr := colAt(t, tbl, "throughput_mb_s")
	loaders := colAt(t, tbl, "loaders")
	if len(thr) < 3 {
		t.Fatalf("expected at least 3 parallelism points, got %d", len(thr))
	}
	if thr[1] < thr[0]*1.5 {
		t.Fatalf("throughput at %v loaders (%v) should clearly exceed 1 loader (%v)", loaders[1], thr[1], thr[0])
	}
	// The last point (8 loaders) must not continue scaling linearly.
	perLoaderFirst := thr[0] / loaders[0]
	perLoaderLast := thr[len(thr)-1] / loaders[len(loaders)-1]
	if perLoaderLast > perLoaderFirst*0.95 {
		t.Fatalf("no saturation visible: per-loader throughput %v -> %v", perLoaderFirst, perLoaderLast)
	}
}

func TestFigure8IndexOverheads(t *testing.T) {
	tbl, err := Figure8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	intOv := colAt(t, tbl, "int_overhead_pct")
	compOv := colAt(t, tbl, "composite_overhead_pct")
	for i := range intOv {
		if intOv[i] < 0 {
			t.Fatalf("integer index overhead negative: %v", intOv[i])
		}
		if compOv[i] <= intOv[i] {
			t.Fatalf("composite overhead (%v) should exceed integer overhead (%v)", compOv[i], intOv[i])
		}
	}
}

func TestFigure9FlatRuntime(t *testing.T) {
	tbl, err := Figure9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	runtimes := colAt(t, tbl, "runtime_s")
	s := metrics.Summarize(runtimes)
	if s.Max-s.Min > s.Mean*0.05 {
		t.Fatalf("runtime varies by more than 5%% across database sizes: %v", runtimes)
	}
}

func TestHeadlineReduction(t *testing.T) {
	tbl, err := Headline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	hours := colAt(t, tbl, "runtime_h_40gb")
	if len(hours) != 2 {
		t.Fatalf("expected 2 configurations, got %d", len(hours))
	}
	original, sky := hours[0], hours[1]
	if original/sky < 4 {
		t.Fatalf("reduction factor %.1f, expected the SkyLoader configuration to win by a wide margin", original/sky)
	}
	// The absolute >20 h / <3 h comparison only holds at the full row
	// scaling (RowsPerMB=100); the quick configuration used here scales the
	// absolute hours down proportionally, so only the ordering is asserted.
	if original <= sky {
		t.Fatalf("original pipeline (%.1f h) should be slower than SkyLoader (%.1f h)", original, sky)
	}
}

func TestAblations(t *testing.T) {
	cfg := quickCfg()

	t.Run("assignment", func(t *testing.T) {
		tbl, err := AblationAssignment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wall := colAt(t, tbl, "wall_time_s")
		if len(wall) != 2 || wall[0] >= wall[1] {
			t.Fatalf("dynamic (%v) should beat static (%v)", wall[0], wall[1])
		}
	})
	t.Run("commit", func(t *testing.T) {
		tbl, err := AblationCommitFrequency(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := colAt(t, tbl, "runtime_s")
		if rt[0] <= rt[len(rt)-1] {
			t.Fatalf("committing every batch (%v) should be slower than end-of-file (%v)", rt[0], rt[len(rt)-1])
		}
	})
	t.Run("cache", func(t *testing.T) {
		tbl, err := AblationCacheSize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := colAt(t, tbl, "runtime_s")
		if rt[0] >= rt[len(rt)-1] {
			t.Fatalf("small cache (%v) should load faster than large cache (%v)", rt[0], rt[len(rt)-1])
		}
	})
	t.Run("errors", func(t *testing.T) {
		tbl, err := AblationErrorRate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := colAt(t, tbl, "runtime_s")
		calls := colAt(t, tbl, "db_calls")
		if rt[len(rt)-1] <= rt[0] || calls[len(calls)-1] <= calls[0] {
			t.Fatalf("higher error rates should cost more time and calls: %v / %v", rt, calls)
		}
	})
	t.Run("twophase", func(t *testing.T) {
		tbl, err := AblationTwoPhase(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sky := colAt(t, tbl, "skyloader_s")
		two := colAt(t, tbl, "two_phase_s")
		for i := range sky {
			if two[i] <= sky[i] {
				t.Fatalf("two-phase (%v) should be slower than single-pass (%v)", two[i], sky[i])
			}
		}
	})
}

func TestVerify(t *testing.T) {
	if err := Verify(quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Seed == 0 || cfg.RowsPerMB != 100 || cfg.ErrorRate == 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
