package parallel

import (
	"fmt"
	"strings"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// testServerWithIndexes builds a DES server whose objects table carries the
// Figure 8 indices under the given build policy.
func testServerWithIndexes(t *testing.T, seed int64, build relstore.IndexPolicy) *sqlbatch.Server {
	t.Helper()
	k := des.NewKernel(seed)
	db := relstore.MustOpen(catalog.NewSchema(), relstore.WithIndexPolicy(build))
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicyWith(db, tuning.HTMIDPlusComposite, build); err != nil {
		t.Fatal(err)
	}
	return sqlbatch.NewServer(k, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

// dumpIndex renders one index's full contents (key order and row-id order).
func dumpIndex(db *relstore.DB, table, index string) string {
	var b strings.Builder
	ix := db.Table(table).Index(index)
	if ix == nil {
		return "<missing>"
	}
	ix.Tree().AscendRange(nil, nil, func(key []byte, ids []int64) bool {
		vals, err := relstore.DecodeOrderedKey(key)
		if err != nil {
			fmt.Fprintf(&b, "<bad key %x: %v>", key, err)
			return false
		}
		b.WriteString(relstore.EncodeKey(vals))
		for _, id := range ids {
			fmt.Fprintf(&b, " %d", id)
		}
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// TestClusterSealAfterLoad drives the same DES cluster load twice — immediate
// maintenance versus deferred-with-Seal — and requires identical final index
// contents, a seal phase that actually ran (and is charged virtual time), and
// a deferred virtual load time no worse than the immediate one.
func TestClusterSealAfterLoad(t *testing.T) {
	files := testNight(20, 6)
	loaderCfg := core.Config{BatchSize: 40, ArraySize: 500, ChargeStaging: true}

	immSrv := testServerWithIndexes(t, 5, relstore.IndexImmediate)
	immRes, err := Run(immSrv, files, Config{Loaders: 3, Loader: loaderCfg})
	if err != nil {
		t.Fatal(err)
	}

	defSrv := testServerWithIndexes(t, 5, relstore.IndexDeferred)
	defRes, err := Run(defSrv, files, Config{Loaders: 3, Loader: loaderCfg, SealAfterLoad: true})
	if err != nil {
		t.Fatal(err)
	}

	if immRes.Total.RowsLoaded != defRes.Total.RowsLoaded {
		t.Fatalf("rows loaded diverge: %d vs %d", immRes.Total.RowsLoaded, defRes.Total.RowsLoaded)
	}
	if !defRes.Seal.Sealed() || len(defRes.Seal.Indexes) != 2 {
		t.Fatalf("deferred run sealed %d indexes, want 2", len(defRes.Seal.Indexes))
	}
	if defRes.SealTime <= 0 {
		t.Fatal("seal phase charged no virtual time")
	}
	if immRes.SealTime != 0 || immRes.Seal.Sealed() {
		t.Fatalf("immediate run reports a seal phase: %+v", immRes.SealTime)
	}
	if got := defSrv.Stats().Seals; got != 1 {
		t.Fatalf("server seals = %d, want 1", got)
	}
	if defSrv.Stats().SealTime <= 0 {
		t.Fatal("server seal time not charged")
	}

	for _, name := range []string{tuning.HTMIDIndexName, tuning.CompositeIndexName} {
		imm := dumpIndex(immSrv.DB(), catalog.TObjects, name)
		def := dumpIndex(defSrv.DB(), catalog.TObjects, name)
		if imm != def {
			t.Fatalf("index %s diverges between immediate and sealed deferred runs", name)
		}
		if !defSrv.DB().Table(catalog.TObjects).Index(name).Ready() {
			t.Fatalf("index %s not ready after SealPhase", name)
		}
	}

	// The whole point of the policy: deferring index maintenance must not
	// cost virtual load time overall (Figure 8's drop-and-rebuild win).
	if defRes.WallTime > immRes.WallTime {
		t.Fatalf("deferred load (%s incl. %s seal) slower than immediate (%s)",
			defRes.WallTime, defRes.SealTime, immRes.WallTime)
	}

	// Determinism: the deferred DES run replays byte-identically.
	defSrv2 := testServerWithIndexes(t, 5, relstore.IndexDeferred)
	defRes2, err := Run(defSrv2, files, Config{Loaders: 3, Loader: loaderCfg, SealAfterLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if defRes2.WallTime != defRes.WallTime || defRes2.SealTime != defRes.SealTime {
		t.Fatalf("deferred DES run not deterministic: %s/%s vs %s/%s",
			defRes2.WallTime, defRes2.SealTime, defRes.WallTime, defRes.SealTime)
	}
}
