package parallel

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

func testServer(t *testing.T) *sqlbatch.Server {
	t.Helper()
	k := des.NewKernel(5)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return sqlbatch.NewServer(k, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

func testNight(totalMB float64, files int) []*catalog.File {
	return catalog.GenerateNight(catalog.NightSpec{
		TotalMB: totalMB, Seed: 77, RowsPerMB: 60, ErrorRate: 0.01, RunID: 1, Files: files,
	})
}

func totalRows(files []*catalog.File) int {
	n := 0
	for _, f := range files {
		n += f.DataRows
	}
	return n
}

func TestParallelLoadsWholeNight(t *testing.T) {
	srv := testServer(t)
	files := testNight(30, 8)
	res, err := Run(srv, files, Config{Loaders: 4, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Files != len(files) {
		t.Fatalf("loaded %d files, want %d", res.Total.Files, len(files))
	}
	if res.Total.RowsLoaded+res.Total.RowsSkipped+res.Total.ParseErrors != totalRows(files) {
		t.Fatalf("row accounting: %+v vs %d generated", res.Total, totalRows(files))
	}
	if res.WallTime <= 0 || res.ThroughputMBps <= 0 {
		t.Fatalf("timing: %+v", res)
	}
	// Every node got at least one file under dynamic assignment of 8 files
	// to 4 nodes.
	for _, n := range res.Nodes {
		if len(n.FilesDone) == 0 {
			t.Errorf("node %d loaded no files", n.Node)
		}
		if n.Err != nil {
			t.Errorf("node %d error: %v", n.Node, n.Err)
		}
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans after parallel load: %d", orphans)
	}
	if err := srv.DB().VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
	if res.Server.RowsInserted == 0 {
		t.Fatal("server stats not captured")
	}
}

func TestParallelMatchesSequentialContents(t *testing.T) {
	files := testNight(20, 6)

	seq := testServer(t)
	seqRes, err := Run(seq, files, Config{Loaders: 1, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	par := testServer(t)
	parRes, err := Run(par, files, Config{Loaders: 5, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}

	if seqRes.Total.RowsLoaded != parRes.Total.RowsLoaded {
		t.Fatalf("sequential loaded %d rows, parallel %d", seqRes.Total.RowsLoaded, parRes.Total.RowsLoaded)
	}
	for _, table := range catalog.CatalogTables() {
		a, _ := seq.DB().Count(table)
		b, _ := par.DB().Count(table)
		if a != b {
			t.Errorf("table %s: sequential %d, parallel %d", table, a, b)
		}
	}
	// Parallelism must reduce the makespan substantially.
	if parRes.WallTime*2 > seqRes.WallTime {
		t.Fatalf("parallel wall time %v not much better than sequential %v", parRes.WallTime, seqRes.WallTime)
	}
}

func TestStaticAssignmentCoversAllFiles(t *testing.T) {
	srv := testServer(t)
	files := testNight(20, 7)
	res, err := Run(srv, files, Config{Loaders: 3, Assignment: Static, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Files != len(files) {
		t.Fatalf("loaded %d files, want %d", res.Total.Files, len(files))
	}
	loaded := map[string]bool{}
	for _, n := range res.Nodes {
		for _, f := range n.FilesDone {
			if loaded[f] {
				t.Errorf("file %s loaded twice", f)
			}
			loaded[f] = true
		}
	}
	if len(loaded) != len(files) {
		t.Fatalf("distinct files loaded = %d, want %d", len(loaded), len(files))
	}
}

func TestDynamicBeatsStaticOnSkewedNight(t *testing.T) {
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: 40, Seed: 99, RowsPerMB: 60, RunID: 1, Files: 10, Skew: 3,
	})
	dyn := testServer(t)
	dynRes, err := Run(dyn, files, Config{Loaders: 4, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	st := testServer(t)
	stRes, err := Run(st, files, Config{Loaders: 4, Assignment: Static, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if dynRes.WallTime >= stRes.WallTime {
		t.Fatalf("dynamic (%v) should beat static (%v) on a skewed night", dynRes.WallTime, stRes.WallTime)
	}
}

func TestNonBulkClusterMode(t *testing.T) {
	srv := testServer(t)
	files := testNight(6, 3)
	res, err := Run(srv, files, Config{Loaders: 2, Assignment: Dynamic, Loader: core.DefaultConfig(), NonBulk: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.RowsLoaded == 0 {
		t.Fatal("non-bulk cluster loaded nothing")
	}
	if res.Total.Batches != 0 {
		t.Fatalf("non-bulk mode should not report batches, got %d", res.Total.Batches)
	}
	if res.Total.DBCalls < res.Total.RowsLoaded {
		t.Fatalf("non-bulk mode should use one call per row: calls=%d rows=%d", res.Total.DBCalls, res.Total.RowsLoaded)
	}
}

func TestRunValidation(t *testing.T) {
	srv := testServer(t)
	if _, err := Run(srv, nil, Config{Loaders: 2}); err == nil {
		t.Fatal("empty file list should error")
	}
	// Zero loaders defaults to one.
	files := testNight(3, 2)
	res, err := Run(srv, files, Config{Loaders: 0, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(res.Nodes))
	}
}

func TestStartStagger(t *testing.T) {
	srv := testServer(t)
	files := testNight(6, 4)
	res, err := Run(srv, files, Config{
		Loaders: 2, Assignment: Dynamic, Loader: core.DefaultConfig(),
		StartStagger: 30 * 1e9, // 30 virtual seconds
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].StartedAt-res.Nodes[0].StartedAt < 30*1e9 {
		t.Fatalf("stagger not applied: %v vs %v", res.Nodes[0].StartedAt, res.Nodes[1].StartedAt)
	}
}

func TestAssignmentString(t *testing.T) {
	if Dynamic.String() != "dynamic" || Static.String() != "static" {
		t.Fatal("Assignment.String broken")
	}
}
