// Package parallel implements the cluster loading coordinator of §4.4: a set
// of loader processes on separate cluster nodes feeding one database server,
// with catalog files handed out either dynamically ("on the fly", as soon as
// a node finishes a file it takes the next unloaded one) or statically
// (pre-partitioned).  Dynamic assignment is the paper's choice because the 28
// files of an observation vary in size and error density.
//
// The coordinator is execution-agnostic: it spawns loader workers on
// whichever exec.Scheduler the server was built with.  On the DES scheduler
// the loaders are simulation processes sharing one virtual clock (the mode
// every §5 figure uses); on the realtime scheduler each loader is a real
// goroutine and the dynamic queue becomes a channel, so the load genuinely
// runs in parallel and WallTime is real elapsed time.
package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyloader/internal/baseline"
	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// Assignment selects how catalog files are distributed to loader nodes.
type Assignment int

const (
	// Dynamic hands each node the next unloaded file as soon as it becomes
	// idle (the paper's load-balancing strategy).
	Dynamic Assignment = iota
	// Static divides the files evenly among the nodes up front.
	Static
)

// String names the assignment policy.
func (a Assignment) String() string {
	if a == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Config controls a cluster load.
type Config struct {
	// Loaders is the number of concurrent loader processes (degree of
	// parallelism).
	Loaders int
	// Assignment is the file-distribution policy.
	Assignment Assignment
	// Loader is the per-node SkyLoader configuration.
	Loader core.Config
	// NonBulk switches every node to the singleton-insert baseline loader
	// (used by the headline experiment's "original pipeline" configuration).
	NonBulk bool
	// StartStagger spaces out node start times (Condor dispatch latency).
	StartStagger time.Duration
	// SealAfterLoad runs an end-of-load Seal phase once every node has
	// finished: deferred-policy indexes are bulk-rebuilt by a single
	// coordinator worker and the build time is folded into Result.WallTime
	// (and reported separately as Result.SealTime).  Exactly one seal happens
	// per cluster load, regardless of the loader count.
	SealAfterLoad bool
}

// NodeResult reports one loader node's outcome.
type NodeResult struct {
	Node       int
	FilesDone  []string
	Stats      core.Stats
	StartedAt  time.Duration
	FinishedAt time.Duration
	Err        error
}

// Result reports a whole cluster load.
type Result struct {
	Nodes []NodeResult
	// Total aggregates all node statistics.
	Total core.Stats
	// WallTime is the makespan: from the first node starting to the last
	// node finishing.  It is virtual time under the DES scheduler and real
	// elapsed time under the realtime scheduler.
	WallTime time.Duration
	// ThroughputMBps is nominal megabytes loaded per second of makespan.
	ThroughputMBps float64
	// SealTime is the duration of the end-of-load Seal phase (zero unless
	// Config.SealAfterLoad ran one); it is included in WallTime.  Seal is
	// the engine's report of what the phase rebuilt.
	SealTime time.Duration
	Seal     relstore.SealReport
	// Server is the database server's counter snapshot after the run.
	Server sqlbatch.ServerStats
}

// fileQueue is the dynamic-assignment work queue.  Under the deterministic
// scheduler it is a plain cursor (only one process runs at a time, and the
// take order must replay identically for byte-identical figures); under the
// realtime scheduler it is a pre-filled closed channel, the idiomatic dynamic
// handoff between real loader goroutines.
type fileQueue struct {
	deterministic bool

	mu   sync.Mutex
	list []*catalog.File
	next int

	ch chan *catalog.File
}

func newFileQueue(files []*catalog.File, deterministic bool) *fileQueue {
	q := &fileQueue{deterministic: deterministic}
	if deterministic {
		q.list = files
		return q
	}
	q.ch = make(chan *catalog.File, len(files))
	for _, f := range files {
		q.ch <- f
	}
	close(q.ch)
	return q
}

// take returns the next unloaded file, or nil when the queue is drained.
func (q *fileQueue) take() *catalog.File {
	if q.deterministic {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.next >= len(q.list) {
			return nil
		}
		f := q.list[q.next]
		q.next++
		return f
	}
	f, ok := <-q.ch
	if !ok {
		return nil
	}
	return f
}

// Cluster is a set of spawned loader nodes.  Spawn registers the workers on
// the server's scheduler without running it, so callers can co-schedule other
// workloads (e.g. a query-serving trace in internal/serve's mixed scenario)
// on the same clock before driving everything with a single scheduler Run.
type Cluster struct {
	server  *sqlbatch.Server
	results []NodeResult

	// active is the number of loader workers currently between start and
	// finish — the cluster's "ingest in progress" gauge.  Co-scheduled
	// workloads read it through Busy to classify their own measurements by
	// load phase (serve.RunMixed samples read latency against it for the
	// during-ingest p99 headline).
	active atomic.Int64
}

// ActiveLoaders returns the number of loader workers currently running.
func (c *Cluster) ActiveLoaders() int { return int(c.active.Load()) }

// Busy reports whether any loader node is still running.  It is exact on the
// DES engine (single runner) and a momentary gauge under real concurrency —
// either way, the window between the first node starting and the last node
// finishing is the ingest window.
func (c *Cluster) Busy() bool { return c.active.Load() > 0 }

// Run performs a cluster load of files against server using cfg.Loaders
// concurrent loader workers, driving the server's scheduler until every node
// finishes.  It must be called before the scheduler has been run for other
// purposes in the same time window.  With cfg.SealAfterLoad the load is
// followed by a single coordinator-driven Seal phase.
func Run(server *sqlbatch.Server, files []*catalog.File, cfg Config) (Result, error) {
	cl, err := Spawn(server, files, cfg)
	if err != nil {
		return Result{}, err
	}
	server.Scheduler().Run()
	res, err := cl.Collect()
	if err != nil {
		return res, err
	}
	if cfg.SealAfterLoad {
		if err := SealPhase(server, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// SealPhase closes the engine's load phase after a cluster load: one
// coordinator worker calls Server.Seal, so the bulk index rebuild happens
// exactly once and after every loader has finished.  The phase's duration is
// added to res.WallTime (the load is not done until its indexes are) and the
// throughput and server snapshot are refreshed.  It runs the scheduler for a
// second phase, so it must only be called once the first Run has returned —
// parallel.Run and serve.RunMixed do this; direct Spawn/Collect callers may
// call it themselves.
func SealPhase(server *sqlbatch.Server, res *Result) error {
	sched := server.Scheduler()
	var (
		rep     relstore.SealReport
		sealErr error
		dur     time.Duration
	)
	sched.Spawn("sealer", func(w exec.Worker) {
		start := w.Now()
		rep, sealErr = server.Seal(w)
		dur = w.Now() - start
	})
	sched.Run()
	if sealErr != nil {
		return fmt.Errorf("parallel: seal: %w", sealErr)
	}
	res.Seal = rep
	res.SealTime = dur
	res.WallTime += dur
	if res.WallTime > 0 {
		res.ThroughputMBps = float64(res.Total.NominalBytes) / 1e6 / res.WallTime.Seconds()
	}
	res.Server = server.Stats()
	return nil
}

// Spawn registers cfg.Loaders loader workers for the files on the server's
// scheduler and returns the pending cluster.  The workers do not run until
// the scheduler is driven; call Collect after the scheduler's Run returns.
// With cfg.SealAfterLoad the engine's load phase is opened here, before any
// loader starts (an already-open phase is tolerated, so callers may
// BeginLoad themselves); the matching SealPhase runs after Collect.
func Spawn(server *sqlbatch.Server, files []*catalog.File, cfg Config) (*Cluster, error) {
	if cfg.Loaders <= 0 {
		cfg.Loaders = 1
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("parallel: no files to load")
	}
	if cfg.SealAfterLoad {
		if err := server.BeginLoad(); err != nil && !errors.Is(err, relstore.ErrLoadPhaseActive) {
			return nil, fmt.Errorf("parallel: begin load: %w", err)
		}
	}
	sched := server.Scheduler()

	queue := newFileQueue(append([]*catalog.File{}, files...), sched.Deterministic())

	// Static pre-partition: files are dealt round-robin, which is how an
	// even split is usually done when sizes are unknown.
	static := make([][]*catalog.File, cfg.Loaders)
	if cfg.Assignment == Static {
		for i, f := range files {
			static[i%cfg.Loaders] = append(static[i%cfg.Loaders], f)
		}
	}

	cl := &Cluster{server: server, results: make([]NodeResult, cfg.Loaders)}
	results := cl.results
	for n := 0; n < cfg.Loaders; n++ {
		n := n
		start := time.Duration(n) * cfg.StartStagger
		sched.SpawnAt(start, fmt.Sprintf("loader-%02d", n+1), func(w exec.Worker) {
			res := &results[n]
			res.Node = n + 1
			res.StartedAt = w.Now()
			cl.active.Add(1)
			conn := server.ConnectWorker(w)
			defer func() {
				_ = conn.Close()
				res.FinishedAt = w.Now()
				cl.active.Add(-1)
			}()

			loaderCfg := cfg.Loader
			loaderCfg.LoaderNode = n + 1

			loadOne := func(f *catalog.File) error {
				if cfg.NonBulk {
					nb := baseline.NewNonBulkLoader(conn, baseline.NonBulkConfig{
						// Map the bulk commit policy onto a per-row policy so
						// the "original pipeline" commits frequently when the
						// bulk config would have committed per batch.
						CommitEveryRows: cfg.Loader.CommitEveryBatches * maxInt(cfg.Loader.BatchSize, 1),
						ChargeStaging:   cfg.Loader.ChargeStaging,
						LoaderNode:      loaderCfg.LoaderNode,
					})
					if err := nb.LoadFile(f); err != nil {
						return err
					}
					res.Stats.Merge(nb.Stats())
					return nil
				}
				ld, err := core.NewLoader(conn, loaderCfg)
				if err != nil {
					return err
				}
				if err := ld.LoadFile(f); err != nil {
					return err
				}
				res.Stats.Merge(ld.Stats())
				return nil
			}

			if cfg.Assignment == Static {
				for _, f := range static[n] {
					if err := loadOne(f); err != nil {
						res.Err = err
						return
					}
					res.FilesDone = append(res.FilesDone, f.Name)
				}
				return
			}
			for {
				f := queue.take()
				if f == nil {
					return
				}
				if err := loadOne(f); err != nil {
					res.Err = err
					return
				}
				res.FilesDone = append(res.FilesDone, f.Name)
			}
		})
	}

	return cl, nil
}

// Collect aggregates the node results.  It must only be called after the
// scheduler's Run has returned (every node finished); calling it earlier
// reads partial results.
func (c *Cluster) Collect() (Result, error) {
	out := Result{Nodes: c.results, Server: c.server.Stats()}
	out.Total.RowsLoadedByTable = make(map[string]int)
	out.Total.SkippedByTable = make(map[string]int)
	var firstStart, lastFinish time.Duration
	for i, r := range c.results {
		if r.Err != nil {
			return out, fmt.Errorf("parallel: node %d failed: %w", r.Node, r.Err)
		}
		out.Total.Merge(r.Stats)
		if i == 0 || r.StartedAt < firstStart {
			firstStart = r.StartedAt
		}
		if r.FinishedAt > lastFinish {
			lastFinish = r.FinishedAt
		}
	}
	out.WallTime = lastFinish - firstStart
	if out.WallTime > 0 {
		out.ThroughputMBps = float64(out.Total.NominalBytes) / 1e6 / out.WallTime.Seconds()
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
