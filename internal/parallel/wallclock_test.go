package parallel

import (
	"fmt"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// wallclockServer builds a server on the realtime scheduler: loaders will be
// real goroutines sharing one relstore engine.
func wallclockServer(tb testing.TB) *sqlbatch.Server {
	tb.Helper()
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		tb.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		tb.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		tb.Fatal(err)
	}
	rt := exec.NewRealtime(exec.RealtimeConfig{Seed: 5})
	return sqlbatch.NewServerOn(rt, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

// TestWallclockClusterLoad runs a whole night through the realtime scheduler
// with several concurrent loader goroutines and checks the same invariants
// the DES cluster tests check: complete row accounting, no duplicated files,
// referential integrity.  Under -race this is the end-to-end concurrency
// test of the whole stack (parallel → sqlbatch → relstore).
func TestWallclockClusterLoad(t *testing.T) {
	srv := wallclockServer(t)
	files := testNight(20, 8)
	res, err := Run(srv, files, Config{Loaders: 4, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Files != len(files) {
		t.Fatalf("loaded %d files, want %d", res.Total.Files, len(files))
	}
	if res.Total.RowsLoaded+res.Total.RowsSkipped+res.Total.ParseErrors != totalRows(files) {
		t.Fatalf("row accounting: %+v vs %d generated", res.Total, totalRows(files))
	}
	loaded := map[string]bool{}
	for _, n := range res.Nodes {
		if n.Err != nil {
			t.Errorf("node %d error: %v", n.Node, n.Err)
		}
		for _, f := range n.FilesDone {
			if loaded[f] {
				t.Errorf("file %s loaded twice", f)
			}
			loaded[f] = true
		}
	}
	if len(loaded) != len(files) {
		t.Fatalf("distinct files loaded = %d, want %d", len(loaded), len(files))
	}
	if res.WallTime <= 0 {
		t.Fatalf("wall time not measured: %v", res.WallTime)
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans after wallclock load: %d", orphans)
	}
	if err := srv.DB().VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
}

// TestWallclockMatchesDESContents loads the same night in both execution
// modes and compares the final repository contents table by table: the
// engine must converge to the same state no matter which scheduler ran the
// cluster.
func TestWallclockMatchesDESContents(t *testing.T) {
	files := testNight(12, 6)

	sim := testServer(t)
	simRes, err := Run(sim, files, Config{Loaders: 3, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rt := wallclockServer(t)
	rtRes, err := Run(rt, files, Config{Loaders: 3, Assignment: Dynamic, Loader: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}

	if simRes.Total.RowsLoaded != rtRes.Total.RowsLoaded {
		t.Fatalf("DES loaded %d rows, wallclock %d", simRes.Total.RowsLoaded, rtRes.Total.RowsLoaded)
	}
	for _, table := range catalog.CatalogTables() {
		a, _ := sim.DB().Count(table)
		b, _ := rt.DB().Count(table)
		if a != b {
			t.Errorf("table %s: DES %d rows, wallclock %d", table, a, b)
		}
	}
}

// TestWallclockNonBulk exercises the singleton-insert baseline under real
// concurrency (one database call per row stresses the per-call locking far
// harder than batched mode).
func TestWallclockNonBulk(t *testing.T) {
	srv := wallclockServer(t)
	files := testNight(4, 3)
	res, err := Run(srv, files, Config{Loaders: 3, Assignment: Dynamic, Loader: core.DefaultConfig(), NonBulk: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.RowsLoaded == 0 {
		t.Fatal("wallclock non-bulk cluster loaded nothing")
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans: %d", orphans)
	}
}

// BenchmarkParallelLoadWallclock measures real elapsed time for the same
// night at 1/2/4/8 loader goroutines.  On a multi-core host the 4-loader
// point should come in well under half the single-loader time (the §5.3
// scaling claim, now measured on real hardware rather than predicted); on a
// single-core host it degenerates to ~1× and measures locking overhead.
// Numbers are recorded in BENCH_concurrency.json.
func BenchmarkParallelLoadWallclock(b *testing.B) {
	for _, loaders := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("loaders=%d", loaders), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := wallclockServer(b)
				files := catalog.GenerateNight(catalog.NightSpec{
					TotalMB: 60, Seed: 11, RowsPerMB: 60, ErrorRate: 0.002, RunID: 1, Files: 16,
				})
				cfg := Config{Loaders: loaders, Assignment: Dynamic, Loader: core.DefaultConfig()}
				b.StartTimer()
				res, err := Run(srv, files, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total.RowsLoaded == 0 {
					b.Fatal("nothing loaded")
				}
			}
		})
	}
}
