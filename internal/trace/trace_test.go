package trace

import (
	"sync"
	"testing"
	"time"
)

func TestReqAttributionIsComplete(t *testing.T) {
	var r Req
	r.Begin(7, "cone", 100*time.Microsecond)
	r.Mark(StageAdmission, 180*time.Microsecond)
	r.Mark(StageCache, 200*time.Microsecond)
	r.Mark(StageExecute, 900*time.Microsecond)
	r.Finish("served", StageEncode, 950*time.Microsecond)
	if r.Total() != 850*time.Microsecond {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.Attributed() != r.Total() {
		t.Fatalf("Attributed %v != Total %v", r.Attributed(), r.Total())
	}
	want := [NumStages]time.Duration{
		StageAdmission: 80 * time.Microsecond,
		StageCache:     20 * time.Microsecond,
		StageExecute:   700 * time.Microsecond,
		StageEncode:    50 * time.Microsecond,
	}
	if r.Stages != want {
		t.Fatalf("Stages = %v, want %v", r.Stages, want)
	}
	if r.Outcome != "served" || r.ID != 7 || r.Class != "cone" {
		t.Fatalf("metadata lost: %+v", r)
	}
}

func TestNilReqAndTracerAreNoops(t *testing.T) {
	var r *Req
	r.Begin(1, "x", 0)
	r.Mark(StageCache, time.Second)
	r.Finish("served", StageEncode, time.Second)
	if r.Total() != 0 || r.Attributed() != 0 {
		t.Fatal("nil Req reported time")
	}
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	tr.Publish(&Req{})
	if tr.Snapshot() != nil || tr.Published() != 0 {
		t.Fatal("nil tracer retained state")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16, 4)
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("sampled %d of 400 with every=4", hits)
	}
}

func TestRingOverwriteAndSlowest(t *testing.T) {
	tr := NewTracer(8, 1)
	for i := 1; i <= 20; i++ {
		var r Req
		r.Begin(uint64(i), "lookup", 0)
		r.Finish("served", StageExecute, time.Duration(i)*time.Millisecond)
		tr.Publish(&r)
	}
	snap := tr.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d, want 8", len(snap))
	}
	if snap[0].ID != 13 || snap[7].ID != 20 {
		t.Fatalf("ring order wrong: first=%d last=%d", snap[0].ID, snap[7].ID)
	}
	if got := tr.Published(); got != 20 {
		t.Fatalf("Published = %d", got)
	}
	slow := tr.Slowest(3)
	if len(slow) != 3 || slow[0].ID != 20 || slow[1].ID != 19 || slow[2].ID != 18 {
		t.Fatalf("Slowest = %v", slow)
	}
}

func TestTracerConcurrentPublish(t *testing.T) {
	tr := NewTracer(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var r Req
				r.Begin(uint64(g*1000+i), "cone", 0)
				r.Finish("served", StageExecute, time.Millisecond)
				tr.Publish(&r)
				_ = tr.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if tr.Published() != 4000 {
		t.Fatalf("Published = %d, want 4000", tr.Published())
	}
}
