// Package trace is the structured per-request tracing layer of the serving
// stack: each traced request carries a stack-allocated Req through the
// serving path, the path marks stage boundaries (admission wait, cache
// probe, execute, encode), and the finished trace is published into a fixed
// ring buffer that /debug/traces dumps and reports sample from.
//
// The design goals, in order:
//
//  1. Zero cost when off: a nil *Req no-ops every method, so untraced
//     requests (the common case under sampling) pay one nil check per stage.
//  2. Zero allocation when on: Req is a fixed-size value the transport keeps
//     on the request goroutine's stack; publishing copies it into a
//     pre-allocated ring slot.
//  3. Attribution, not sampling theater: stages are measured as contiguous
//     boundary-to-boundary spans on one clock, so the sum of the stage
//     durations accounts for the request's full wall time by construction —
//     a tail-latency outlier names the stage that caused it.
//
// Ownership (see PERFORMANCE.md, "Trace ring ownership"): the request
// goroutine owns its Req until Publish; the ring owns slots, guarded by one
// mutex taken only by (sampled) publishers and dumpers, never by untraced
// requests.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one contiguous span of a request's life.  Stages are ordered:
// a request passes through them once, in order, skipping those that do not
// apply (a cache hit has no execute span; a shed request only an admission
// span).
type Stage uint8

const (
	// StageAdmission is the wait for a worker-pool slot (queue wait).
	StageAdmission Stage = iota
	// StageCache is the result-cache probe, including the hit's simulated
	// service cost.
	StageCache
	// StageExecute is query execution against the engine, including the
	// cost-model sleep on paced runs.
	StageExecute
	// StageEncode is response encoding and the socket write.
	StageEncode
	// StageScatter is the cross-node fan-out of a sharded query: from
	// dispatch until the last shard's partial result arrives.
	StageScatter
	// StageGather is the coordinator-side merge of per-shard partial
	// results into the final answer.
	StageGather
	// NumStages is the number of stages (array size, not a stage).
	NumStages = 6
)

// String names the stage for dumps and reports.
func (s Stage) String() string {
	switch s {
	case StageAdmission:
		return "admission"
	case StageCache:
		return "cache"
	case StageExecute:
		return "execute"
	case StageEncode:
		return "encode"
	case StageScatter:
		return "scatter"
	case StageGather:
		return "gather"
	}
	return "unknown"
}

// StageNames lists the stage labels in order, for table headers.
func StageNames() [NumStages]string {
	return [NumStages]string{"admission", "cache", "execute", "encode", "scatter", "gather"}
}

// Req is one request's in-flight trace.  The transport allocates it on the
// request's stack, Begin stamps the start, the serving path calls Mark at
// each stage boundary, Finish stamps the outcome, and Publish copies it into
// the ring.  All methods are nil-receiver safe.
type Req struct {
	// ID is the request id (the transport's monotonically increasing
	// counter; also echoed to the client for cross-correlation).
	ID uint64
	// Class is the query class label.
	Class string
	// Outcome is the terminal outcome label ("served", "cache_hit", "shed",
	// "expired", "error").
	Outcome string
	// Start is the scheduler-clock time at which handling began; End the
	// time Finish was called.  Stages[s] holds the wall time attributed to
	// stage s; the sum of Stages equals End-Start up to the (unattributed)
	// instants between Finish and the last Mark.
	Start, End time.Duration
	Stages     [NumStages]time.Duration

	// mark is the running boundary: Mark(stage, now) attributes now-mark to
	// stage and advances it.
	mark time.Duration
}

// Begin stamps the request start.
func (r *Req) Begin(id uint64, class string, now time.Duration) {
	if r == nil {
		return
	}
	r.ID = id
	r.Class = class
	r.Start = now
	r.mark = now
}

// Mark attributes the wall time since the previous boundary to stage.
// Stages may be marked repeatedly (the re-probe after admission, say);
// durations accumulate.
func (r *Req) Mark(stage Stage, now time.Duration) {
	if r == nil {
		return
	}
	if d := now - r.mark; d > 0 {
		r.Stages[stage] += d
	}
	r.mark = now
}

// Finish stamps the outcome.  Any wall time since the last boundary is
// attributed to the given stage, so Finish never leaves a gap between the
// last Mark and End.
func (r *Req) Finish(outcome string, last Stage, now time.Duration) {
	if r == nil {
		return
	}
	r.Mark(last, now)
	r.Outcome = outcome
	r.End = now
}

// Total returns the request's measured wall time.
func (r *Req) Total() time.Duration {
	if r == nil {
		return 0
	}
	return r.End - r.Start
}

// Attributed returns the wall time accounted to stages.  By construction
// Attributed == Total for any Begin/Mark*/Finish sequence on one clock; the
// acceptance check "spans attribute >= 99% of wall time" guards the
// construction against future edits that break contiguity.
func (r *Req) Attributed() time.Duration {
	if r == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range r.Stages {
		sum += d
	}
	return sum
}

// Tracer owns the ring buffer and the sampling decision.
type Tracer struct {
	every uint64
	seq   atomic.Uint64

	mu        sync.Mutex
	ring      []Req
	next      int
	published uint64
}

// NewTracer creates a tracer keeping the last ringSize published traces and
// sampling one request in every `every` (1 traces everything; 0 is treated
// as 1).
func NewTracer(ringSize, every int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	if every <= 0 {
		every = 1
	}
	return &Tracer{every: uint64(every), ring: make([]Req, 0, ringSize)}
}

// Sample decides whether the next request should be traced.  It is one
// atomic increment; untraced requests touch nothing else in the tracer.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.seq.Add(1)%t.every == 0
}

// Publish copies a finished trace into the ring, overwriting the oldest
// entry once full.
func (t *Tracer) Publish(r *Req) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *r)
	} else {
		t.ring[t.next] = *r
		t.next = (t.next + 1) % len(t.ring)
	}
	t.published++
	t.mu.Unlock()
}

// Published returns the number of traces published since creation.
func (t *Tracer) Published() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.published
}

// Snapshot returns the ring contents in publish order, oldest first.
func (t *Tracer) Snapshot() []Req {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Req, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Slowest returns the n largest-total traces in the ring, slowest first —
// the tail-latency sample reports print.
func (t *Tracer) Slowest(n int) []Req {
	snap := t.Snapshot()
	// Partial selection sort: rings are small (hundreds), n smaller.
	if n > len(snap) {
		n = len(snap)
	}
	for i := 0; i < n; i++ {
		maxAt := i
		for j := i + 1; j < len(snap); j++ {
			if snap[j].Total() > snap[maxAt].Total() {
				maxAt = j
			}
		}
		snap[i], snap[maxAt] = snap[maxAt], snap[i]
	}
	return snap[:n]
}
