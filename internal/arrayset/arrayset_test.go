package arrayset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
)

func newSet(t *testing.T, cfg Config) *ArraySet {
	t.Helper()
	s, err := New(catalog.NewSchema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func objRow(id int64) ([]string, []relstore.Value) {
	return []string{"object_id", "frame_id", "ra", "dec", "mag"},
		[]relstore.Value{relstore.Int(id), relstore.Int(1), relstore.Float(10.0), relstore.Float(10.0), relstore.Float(18.0)}
}

func TestAddCreatesArraysOnDemand(t *testing.T) {
	s := newSet(t, Config{ArraySize: 10})
	cols, vals := objRow(1)
	full, created, err := s.Add(catalog.TObjects, cols, vals, 1)
	if err != nil || full || !created {
		t.Fatalf("first add: full=%v created=%v err=%v", full, created, err)
	}
	_, created, _ = s.Add(catalog.TObjects, cols, vals, 2)
	if created {
		t.Fatal("second add should reuse the array")
	}
	if s.NumArrays() != 1 || s.Len() != 2 || s.ArraysCreated() != 1 {
		t.Fatalf("NumArrays=%d Len=%d Created=%d", s.NumArrays(), s.Len(), s.ArraysCreated())
	}
	arr := s.Array(catalog.TObjects)
	if arr == nil || arr.Len() != 2 || arr.Bytes() == 0 {
		t.Fatalf("array state: %+v", arr)
	}
	if arr.SourceLines[1] != 2 {
		t.Fatalf("source lines not tracked: %v", arr.SourceLines)
	}
}

func TestAddUnknownTable(t *testing.T) {
	s := newSet(t, Config{ArraySize: 10})
	if _, _, err := s.Add("not_a_table", []string{"x"}, []relstore.Value{relstore.Int(1)}, 1); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestFullThreshold(t *testing.T) {
	s := newSet(t, Config{ArraySize: 3})
	cols, vals := objRow(1)
	for i := 0; i < 2; i++ {
		full, _, _ := s.Add(catalog.TObjects, cols, vals, i)
		if full {
			t.Fatalf("full reported at %d rows", i+1)
		}
	}
	full, _, _ := s.Add(catalog.TObjects, cols, vals, 3)
	if !full {
		t.Fatal("full not reported at threshold")
	}
}

func TestPerTableSizeOverride(t *testing.T) {
	s := newSet(t, Config{ArraySize: 100, PerTableSize: map[string]int{catalog.TObjects: 2}})
	cols, vals := objRow(1)
	s.Add(catalog.TObjects, cols, vals, 1)
	full, _, _ := s.Add(catalog.TObjects, cols, vals, 2)
	if !full {
		t.Fatal("per-table override not applied")
	}
	// Other tables still use the default.
	fcols := []string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s"}
	fvals := []relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(0), relstore.Float(53000.0), relstore.Float(145.0)}
	full, _, _ = s.Add(catalog.TCCDFrames, fcols, fvals, 3)
	if full {
		t.Fatal("default-size table reported full too early")
	}
}

func TestMemoryHighWaterMark(t *testing.T) {
	s := newSet(t, Config{ArraySize: 1_000_000, MemoryHighWaterBytes: 400, RowOverheadBytes: 100})
	cols, vals := objRow(1)
	var full bool
	n := 0
	for !full && n < 100 {
		full, _, _ = s.Add(catalog.TObjects, cols, vals, n)
		n++
	}
	if !full {
		t.Fatal("memory high-water mark never triggered")
	}
	if n > 5 {
		t.Fatalf("triggered after %d rows, expected a handful", n)
	}
	if s.MemoryBytes() < 400 {
		t.Fatalf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestFlushOrderParentsFirst(t *testing.T) {
	s := newSet(t, Config{ArraySize: 100})
	// Add children before parents to prove the order comes from the schema,
	// not from insertion order.
	fngCols := []string{"finger_id", "object_id", "finger_number", "flux"}
	fngVals := []relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Float(10.0)}
	s.Add(catalog.TObjectFingers, fngCols, fngVals, 1)
	cols, vals := objRow(1)
	s.Add(catalog.TObjects, cols, vals, 2)
	frmCols := []string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s"}
	frmVals := []relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(0), relstore.Float(53000.0), relstore.Float(145.0)}
	s.Add(catalog.TCCDFrames, frmCols, frmVals, 3)

	order := s.FlushOrder()
	pos := map[string]int{}
	for i, t := range order {
		pos[t] = i
	}
	if !(pos[catalog.TCCDFrames] < pos[catalog.TObjects] && pos[catalog.TObjects] < pos[catalog.TObjectFingers]) {
		t.Fatalf("flush order %v violates parent-before-child", order)
	}
}

func TestDrainResetsAndCounts(t *testing.T) {
	s := newSet(t, Config{ArraySize: 10})
	cols, vals := objRow(1)
	s.Add(catalog.TObjects, cols, vals, 1)
	s.Add(catalog.TObjects, cols, vals, 2)
	arrays := s.Drain()
	if len(arrays) != 1 || arrays[0].Len() != 2 {
		t.Fatalf("drained %d arrays", len(arrays))
	}
	if s.Len() != 0 || s.NumArrays() != 0 || s.MemoryBytes() != 0 {
		t.Fatal("set not reset after drain")
	}
	if s.CyclesFlushed() != 1 {
		t.Fatalf("CyclesFlushed = %d", s.CyclesFlushed())
	}
	// Empty arrays are not returned.
	if got := s.Drain(); len(got) != 0 {
		t.Fatalf("drain of empty set returned %d arrays", len(got))
	}
	if s.ArraysCreated() != 1 {
		t.Fatalf("ArraysCreated = %d (should persist across cycles)", s.ArraysCreated())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(catalog.NewSchema(), Config{ArraySize: 0}); err == nil {
		t.Fatal("zero array size should be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad config")
		}
	}()
	MustNew(catalog.NewSchema(), Config{ArraySize: -1})
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ArraySize != 1000 {
		t.Fatalf("default array size = %d, want the paper's 1000", cfg.ArraySize)
	}
}

// TestFlushOrderIsTopologicalProperty adds rows for random subsets of tables
// and checks the flush order always respects every foreign-key edge.
func TestFlushOrderIsTopologicalProperty(t *testing.T) {
	schema := catalog.NewSchema()
	tables := schema.TableNames()
	f := func(seed int64, picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 60 {
			picks = picks[:60]
		}
		rng := rand.New(rand.NewSource(seed))
		s := MustNew(schema, Config{ArraySize: 1_000_000})
		for _, p := range picks {
			table := tables[int(p)%len(tables)]
			ts := schema.Table(table)
			cols := ts.ColumnNames()
			vals := make([]relstore.Value, len(cols))
			for i := range vals {
				vals[i] = relstore.Int(rng.Int63())
			}
			if _, _, err := s.Add(table, cols, vals, 0); err != nil {
				return false
			}
		}
		order := s.FlushOrder()
		pos := map[string]int{}
		for i, name := range order {
			pos[name] = i
		}
		for _, name := range order {
			for _, parent := range schema.Parents(name) {
				if pp, ok := pos[parent]; ok && pp >= pos[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
