// Package arrayset implements the array-set buffering data structure of the
// SkyLoader framework (paper §4.3).
//
// An ArraySet is a dynamically maintained collection of two-dimensional
// arrays, one per destination database table.  As the interleaved catalog
// data is read, each row is buffered into the array designated for its
// destination table; a new array is created the first time a table is seen.
// When any array reaches the configured array-size, the whole set is flushed
// with bulk inserts issued in parent-before-child (foreign-key) order, after
// which the arrays are destroyed and buffering starts over.  Buffering rows
// in arrays gives the loader random access to every pending row, which is
// what allows it to skip an offending row and repack the batch when a bulk
// insert fails part-way through.
package arrayset

import (
	"fmt"
	"sort"

	"skyloader/internal/relstore"
)

// Array buffers pending rows for one destination table.
//
// Rows is handed to the batch-apply path by reference (sub-slices go straight
// into Stmt.ExecuteBatchRows): the buffer is stable from the moment a row is
// added until the flush cycle that drains it completes, and nothing mutates
// buffered rows in between, so the flush path performs no per-row copies.
type Array struct {
	Table   string
	Columns []string
	Rows    [][]relstore.Value

	// SourceLines records the catalog file line of each buffered row, so
	// load errors can be reported against the input file.
	SourceLines []int

	bytes int64
}

// Len returns the number of buffered rows.
func (a *Array) Len() int { return len(a.Rows) }

// Bytes returns the estimated raw data size of the buffered rows.
func (a *Array) Bytes() int64 { return a.bytes }

// Config controls an ArraySet.
type Config struct {
	// ArraySize is the row threshold at which a flush of the whole set is
	// triggered (the paper's array-size tunable).
	ArraySize int
	// PerTableSize optionally overrides ArraySize for specific tables (the
	// configuration-file extension the paper lists as future work in §4.3).
	PerTableSize map[string]int
	// MemoryHighWaterBytes, when > 0, triggers a flush whenever the
	// aggregate buffered memory (including per-row overhead) exceeds it —
	// the "memory high water mark" extension discussed in §4.3.
	MemoryHighWaterBytes int64
	// RowOverheadBytes is the per-row bookkeeping overhead added to the raw
	// row size when accounting memory.
	RowOverheadBytes int
}

// DefaultConfig returns the production configuration used by the paper's
// performance studies (array-size 1000).
func DefaultConfig() Config {
	return Config{ArraySize: 1000, RowOverheadBytes: 64}
}

// ArraySet is the set of per-table buffer arrays.
type ArraySet struct {
	cfg    Config
	order  map[string]int // table -> topological position (parents first)
	arrays map[string]*Array
	active []string // creation order, for deterministic iteration

	totalRows  int
	totalBytes int64

	cyclesFlushed int
	arraysCreated int
}

// New creates an ArraySet for the given schema.  The schema provides the
// foreign-key graph from which the parent-before-child flush order is
// derived.
func New(schema *relstore.Schema, cfg Config) (*ArraySet, error) {
	if cfg.ArraySize <= 0 {
		return nil, fmt.Errorf("arrayset: ArraySize must be positive, got %d", cfg.ArraySize)
	}
	topo, err := schema.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	order := make(map[string]int, len(topo))
	for i, name := range topo {
		order[name] = i
	}
	return &ArraySet{
		cfg:    cfg,
		order:  order,
		arrays: make(map[string]*Array),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(schema *relstore.Schema, cfg Config) *ArraySet {
	s, err := New(schema, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the configuration of the set.
func (s *ArraySet) Config() Config { return s.cfg }

// sizeFor returns the flush threshold for the given table.
func (s *ArraySet) sizeFor(table string) int {
	if n, ok := s.cfg.PerTableSize[table]; ok && n > 0 {
		return n
	}
	return s.cfg.ArraySize
}

// Add buffers one row destined for table, creating the table's array on
// first use.  It reports whether the addition filled any array (or crossed
// the memory high-water mark), i.e. whether the caller should flush now.
// created reports whether a new array had to be allocated for this row.
func (s *ArraySet) Add(table string, columns []string, values []relstore.Value, sourceLine int) (full, created bool, err error) {
	arr, ok := s.arrays[table]
	if !ok {
		// Schema membership only needs checking when no array exists yet: a
		// hit in s.arrays implies the table was validated when the array was
		// created, so the steady-state add path pays one map lookup, not two.
		if _, known := s.order[table]; !known {
			return false, false, fmt.Errorf("arrayset: table %q is not part of the schema", table)
		}
		// Pre-size the buffers to the flush threshold: an array almost always
		// fills to exactly that size before the set is drained, so reserving
		// it up front removes the append regrowth copies from the add path.
		size := s.sizeFor(table)
		arr = &Array{
			Table:       table,
			Columns:     columns,
			Rows:        make([][]relstore.Value, 0, size),
			SourceLines: make([]int, 0, size),
		}
		s.arrays[table] = arr
		s.active = append(s.active, table)
		s.arraysCreated++
		created = true
	}
	arr.Rows = append(arr.Rows, values)
	arr.SourceLines = append(arr.SourceLines, sourceLine)
	rb := int64(relstore.RowSize(values) + s.cfg.RowOverheadBytes)
	arr.bytes += rb
	s.totalRows++
	s.totalBytes += rb

	if len(arr.Rows) >= s.sizeFor(table) {
		full = true
	}
	if s.cfg.MemoryHighWaterBytes > 0 && s.totalBytes >= s.cfg.MemoryHighWaterBytes {
		full = true
	}
	return full, created, nil
}

// Len returns the total number of buffered rows across all arrays.
func (s *ArraySet) Len() int { return s.totalRows }

// MemoryBytes returns the estimated memory held by the buffered rows
// (raw data plus per-row overhead).
func (s *ArraySet) MemoryBytes() int64 { return s.totalBytes }

// NumArrays returns the number of arrays currently maintained.
func (s *ArraySet) NumArrays() int { return len(s.arrays) }

// ArraysCreated returns the cumulative number of arrays allocated over the
// lifetime of the set (across flush cycles).
func (s *ArraySet) ArraysCreated() int { return s.arraysCreated }

// CyclesFlushed returns how many flush cycles have completed.
func (s *ArraySet) CyclesFlushed() int { return s.cyclesFlushed }

// Array returns the buffer for the given table, or nil if none exists in the
// current cycle.
func (s *ArraySet) Array(table string) *Array { return s.arrays[table] }

// FlushOrder returns the tables that currently have buffered rows, ordered
// parents before children (Figure 2 of the paper).  Ties (tables unrelated by
// foreign keys) are broken by table name for determinism.
func (s *ArraySet) FlushOrder() []string {
	tables := make([]string, 0, len(s.arrays))
	for t, arr := range s.arrays {
		if arr.Len() > 0 {
			tables = append(tables, t)
		}
	}
	sort.Slice(tables, func(i, j int) bool {
		oi, oj := s.order[tables[i]], s.order[tables[j]]
		if oi != oj {
			return oi < oj
		}
		return tables[i] < tables[j]
	})
	return tables
}

// Drain returns the arrays in flush order and resets the set: the arrays are
// handed to the caller and the set is left empty, matching the paper's
// "at the end of the bulk-loading cycle, the arrays in array-set are
// destroyed and their memory released".
func (s *ArraySet) Drain() []*Array {
	order := s.FlushOrder()
	out := make([]*Array, 0, len(order))
	for _, t := range order {
		out = append(out, s.arrays[t])
	}
	s.Reset()
	s.cyclesFlushed++
	return out
}

// Reset discards all buffered rows and arrays without returning them.
func (s *ArraySet) Reset() {
	s.arrays = make(map[string]*Array)
	s.active = nil
	s.totalRows = 0
	s.totalBytes = 0
}
