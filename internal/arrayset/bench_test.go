package arrayset

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
)

// BenchmarkArraySetAddFlush measures the steady-state client-side buffering
// cost per row, including the periodic Drain that destroys and recreates the
// arrays at the end of each flush cycle (paper §4.3).
func BenchmarkArraySetAddFlush(b *testing.B) {
	schema := catalog.NewSchema()
	set := MustNew(schema, Config{ArraySize: 1000})
	cols := []string{"object_id", "frame_id", "ra", "dec", "mag"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := []relstore.Value{relstore.Int(int64(i)), relstore.Int(1), relstore.Float(10.0), relstore.Float(10.0), relstore.Float(18.0)}
		full, _, err := set.Add(catalog.TObjects, cols, vals, i)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			set.Drain()
		}
	}
}
