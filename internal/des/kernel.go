// Package des implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel advances a virtual clock by executing events drawn from a
// time-ordered heap.  Simulation processes are ordinary Go functions running
// in their own goroutines, but the kernel enforces strict alternation: at any
// instant at most one process (or the kernel itself) is running, so processes
// may freely share data structures without additional synchronization as long
// as they only touch them from inside their process body.
//
// The package provides the building blocks used throughout this repository to
// model the Palomar-Quest loading environment: loader processes on cluster
// nodes, the database server's CPUs, its disks, its transaction-slot limit and
// its lock manager are all expressed as processes and resources on a single
// kernel, which makes every timed experiment deterministic and repeatable.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

// eventHeap orders events by time, breaking ties by insertion sequence so the
// simulation is deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Kernel is a discrete-event simulation engine with a virtual clock.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now     time.Duration
	seq     int64
	events  eventHeap
	procSeq int
	procs   []*Proc
	rng     *rand.Rand
	running bool

	// parked receives a signal whenever the currently running process
	// yields control back to the kernel (by blocking or finishing).
	parked chan struct{}
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed always produces the same simulation trace.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source.  It must only be
// used from process bodies or event callbacks (i.e. under the kernel's
// single-runner discipline).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Schedule registers fn to run after delay d of virtual time.  A negative
// delay is treated as zero.
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + d, seq: k.seq, fn: fn})
}

// Spawn creates a new process named name whose body is fn and schedules it to
// start at the current virtual time.  The returned Proc may be used by other
// processes to inspect its state after the run.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.SpawnAt(0, name, fn)
}

// SpawnAt creates a new process that starts after delay d of virtual time.
func (k *Kernel) SpawnAt(d time.Duration, name string, fn func(*Proc)) *Proc {
	k.procSeq++
	p := &Proc{
		k:      k,
		id:     k.procSeq,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.Schedule(d, func() { k.startProc(p, fn) })
	return p
}

// startProc launches the process goroutine and waits for it to yield.
func (k *Kernel) startProc(p *Proc, fn func(*Proc)) {
	p.started = true
	p.startedAt = k.now
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("process %q panicked: %v", p.name, r)
			}
			p.finished = true
			p.finishedAt = k.now
			k.parked <- struct{}{}
		}()
		fn(p)
	}()
	<-k.parked
}

// resumeProc hands control to a parked process and waits for it to yield.
func (k *Kernel) resumeProc(p *Proc) {
	if p.finished {
		return
	}
	p.resume <- struct{}{}
	<-k.parked
}

// Run executes events until the event heap is empty.  It returns the final
// virtual time.  Processes still blocked on resources when the heap drains are
// left parked; they can be inspected with Stuck.
func (k *Kernel) Run() time.Duration {
	return k.RunUntil(-1)
}

// RunUntil executes events until the heap is empty or the next event would be
// scheduled after limit (limit < 0 means no limit).  It returns the final
// virtual time.
func (k *Kernel) RunUntil(limit time.Duration) time.Duration {
	if k.running {
		panic("des: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.events.Len() > 0 {
		next := k.events.peek()
		if limit >= 0 && next.at > limit {
			break
		}
		e := heap.Pop(&k.events).(*event)
		if e.at > k.now {
			k.now = e.at
		}
		e.fn()
	}
	return k.now
}

// Stuck returns the processes that have started but neither finished nor have
// a pending wake-up event — typically processes blocked forever on a resource.
func (k *Kernel) Stuck() []*Proc {
	var out []*Proc
	for _, p := range k.procs {
		if p.started && !p.finished && p.waiting {
			out = append(out, p)
		}
	}
	return out
}

// Procs returns all processes ever spawned on this kernel, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }
