package des

import (
	"fmt"
	"time"
)

// Resource is a counted, FIFO-queued resource such as a pool of CPUs, a disk
// channel, or a limited set of database transaction slots.  Processes acquire
// some number of units, hold them while they perform work (usually by calling
// Proc.Hold), and release them.  Requests that cannot be satisfied immediately
// wait in FIFO order.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int

	waiters []*resWaiter

	// statistics
	totalWait     time.Duration
	waitCount     int
	grantCount    int
	busyIntegral  time.Duration // integral of inUse over time, in unit·ns
	lastChange    time.Duration
	maxInUse      int
	maxQueueDepth int
}

type resWaiter struct {
	p       *Proc
	n       int
	since   time.Duration
	granted bool
}

// NewResource creates a resource with the given capacity on kernel k.
// Capacity must be positive.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource %q must have positive capacity", name))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity in units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes currently waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// accumulate updates the busy-time integral before a change in inUse.
func (r *Resource) accumulate() {
	dt := r.k.now - r.lastChange
	if dt > 0 {
		r.busyIntegral += time.Duration(int64(dt) * int64(r.inUse))
	}
	r.lastChange = r.k.now
}

// Acquire obtains n units of the resource for process p, blocking p until the
// units are available.  Acquiring more units than the capacity panics.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic(fmt.Sprintf("des: acquire %d units of %q exceeds capacity %d", n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		if r.inUse > r.maxInUse {
			r.maxInUse = r.inUse
		}
		r.grantCount++
		return
	}
	w := &resWaiter{p: p, n: n, since: r.k.now}
	r.waiters = append(r.waiters, w)
	if len(r.waiters) > r.maxQueueDepth {
		r.maxQueueDepth = len(r.waiters)
	}
	r.waitCount++
	p.park()
	// When the process resumes, the grant has already been applied by Release.
	wait := r.k.now - w.since
	r.totalWait += wait
	p.waitTotal += wait
}

// Release returns n units of the resource and grants as many queued requests
// as now fit, in FIFO order.
func (r *Resource) Release(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.inUse {
		panic(fmt.Sprintf("des: release %d units of %q but only %d in use", n, r.name, r.inUse))
	}
	r.accumulate()
	r.inUse -= n
	r.grantWaiters()
}

// grantWaiters admits queued requests in FIFO order while they fit.
func (r *Resource) grantWaiters() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.accumulate()
		r.inUse += w.n
		if r.inUse > r.maxInUse {
			r.maxInUse = r.inUse
		}
		r.grantCount++
		w.granted = true
		proc := w.p
		r.k.Schedule(0, func() { r.k.resumeProc(proc) })
	}
}

// Use acquires n units, runs fn, and releases the units, charging the process
// d of virtual service time while the units are held.
func (r *Resource) Use(p *Proc, n int, d time.Duration) {
	r.Acquire(p, n)
	p.Hold(d)
	r.Release(p, n)
}

// Stats reports usage statistics for the resource.
type ResourceStats struct {
	Name          string
	Capacity      int
	Grants        int
	Waits         int
	TotalWait     time.Duration
	MaxInUse      int
	MaxQueueDepth int
	// Utilization is mean in-use units divided by capacity over the elapsed
	// virtual time (0 if no time has elapsed).
	Utilization float64
}

// Stats returns a snapshot of the resource's usage statistics as of the
// current virtual time.
func (r *Resource) Stats() ResourceStats {
	r.accumulate()
	elapsed := r.k.now
	util := 0.0
	if elapsed > 0 {
		util = float64(r.busyIntegral) / float64(int64(elapsed)*int64(r.capacity))
	}
	return ResourceStats{
		Name:          r.name,
		Capacity:      r.capacity,
		Grants:        r.grantCount,
		Waits:         r.waitCount,
		TotalWait:     r.totalWait,
		MaxInUse:      r.maxInUse,
		MaxQueueDepth: r.maxQueueDepth,
		Utilization:   util,
	}
}

// String implements fmt.Stringer for convenient logging.
func (s ResourceStats) String() string {
	return fmt.Sprintf("%s: cap=%d grants=%d waits=%d totalWait=%s util=%.1f%%",
		s.Name, s.Capacity, s.Grants, s.Waits, s.TotalWait, s.Utilization*100)
}
