package des

import (
	"time"
)

// Proc is a simulation process.  A Proc is created by Kernel.Spawn and its
// body runs in its own goroutine, but the kernel guarantees that only one
// process runs at a time, so process bodies may manipulate shared simulation
// state without locks.
//
// All Proc methods must be called from within the process body itself.
type Proc struct {
	k    *Kernel
	id   int
	name string

	resume chan struct{}

	started    bool
	finished   bool
	waiting    bool
	startedAt  time.Duration
	finishedAt time.Duration

	// waitTotal accumulates virtual time spent waiting on resources.
	waitTotal time.Duration
	// holdTotal accumulates virtual time spent in explicit Hold calls.
	holdTotal time.Duration

	err error
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Err returns the panic error, if any, captured when the process body
// terminated abnormally.
func (p *Proc) Err() error { return p.err }

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }

// StartedAt returns the virtual time at which the process body began running.
func (p *Proc) StartedAt() time.Duration { return p.startedAt }

// FinishedAt returns the virtual time at which the process body returned.
// It is meaningful only once Finished reports true.
func (p *Proc) FinishedAt() time.Duration { return p.finishedAt }

// WaitTime returns the total virtual time this process spent blocked on
// resources.
func (p *Proc) WaitTime() time.Duration { return p.waitTotal }

// HoldTime returns the total virtual time this process spent in Hold calls.
func (p *Proc) HoldTime() time.Duration { return p.holdTotal }

// park yields control to the kernel and blocks until the kernel resumes this
// process.
func (p *Proc) park() {
	p.waiting = true
	p.k.parked <- struct{}{}
	<-p.resume
	p.waiting = false
}

// Hold advances this process's virtual time by d: the process sleeps for d
// while other processes and events run.  Negative durations are treated as
// zero; a zero duration still yields to events scheduled at the same instant.
func (p *Proc) Hold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.holdTotal += d
	p.k.Schedule(d, func() { p.k.resumeProc(p) })
	p.park()
}

// Yield gives other runnable processes and events scheduled at the current
// instant a chance to run, without advancing virtual time.
func (p *Proc) Yield() { p.Hold(0) }

// Signal is a simple one-shot wait/notify primitive between processes on the
// same kernel.
type Signal struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
	firedAt time.Duration
	payload any
}

// NewSignal creates a signal bound to kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait blocks the calling process until the signal fires.  If the signal has
// already fired, Wait returns immediately.  It returns the payload passed to
// Fire.
func (s *Signal) Wait(p *Proc) any {
	if s.fired {
		return s.payload
	}
	s.waiters = append(s.waiters, p)
	start := p.k.now
	p.park()
	p.waitTotal += p.k.now - start
	return s.payload
}

// Fire marks the signal as fired with the given payload and wakes all waiting
// processes at the current virtual time.  Firing an already-fired signal is a
// no-op.
func (s *Signal) Fire(payload any) {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.k.now
	s.payload = payload
	for _, w := range s.waiters {
		w := w
		s.k.Schedule(0, func() { s.k.resumeProc(w) })
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time at which the signal fired.
func (s *Signal) FiredAt() time.Duration { return s.firedAt }
