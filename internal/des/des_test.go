package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	k.Schedule(10*time.Millisecond, func() { order = append(order, 11) }) // same time, later seq
	end := k.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", end)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeDelayTreatedAsZero(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(-time.Second, func() { ran = true })
	if k.Run() != 0 {
		t.Fatalf("negative delay should not advance the clock")
	}
	if !ran {
		t.Fatal("callback did not run")
	}
}

func TestProcHoldAdvancesTime(t *testing.T) {
	k := NewKernel(1)
	var observed []time.Duration
	p := k.Spawn("worker", func(p *Proc) {
		observed = append(observed, p.Now())
		p.Hold(5 * time.Second)
		observed = append(observed, p.Now())
		p.Hold(2 * time.Second)
		observed = append(observed, p.Now())
	})
	k.Run()
	if !p.Finished() {
		t.Fatal("process did not finish")
	}
	want := []time.Duration{0, 5 * time.Second, 7 * time.Second}
	for i, w := range want {
		if observed[i] != w {
			t.Fatalf("observed[%d] = %v, want %v", i, observed[i], w)
		}
	}
	if p.HoldTime() != 7*time.Second {
		t.Fatalf("HoldTime = %v, want 7s", p.HoldTime())
	}
	if p.FinishedAt() != 7*time.Second {
		t.Fatalf("FinishedAt = %v, want 7s", p.FinishedAt())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var trace []string
		for _, spec := range []struct {
			name string
			hold time.Duration
		}{{"a", 3 * time.Second}, {"b", 1 * time.Second}, {"c", 2 * time.Second}} {
			spec := spec
			k.Spawn(spec.name, func(p *Proc) {
				p.Hold(spec.hold)
				trace = append(trace, spec.name)
				p.Hold(spec.hold)
				trace = append(trace, spec.name)
			})
		}
		k.Run()
		return trace
	}
	first := run()
	second := run()
	want := []string{"b", "c", "b", "a", "c", "a"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
		if second[i] != first[i] {
			t.Fatalf("runs differ: %v vs %v", first, second)
		}
	}
}

func TestResourceCapacityAndFIFO(t *testing.T) {
	k := NewKernel(1)
	res := NewResource(k, "cpu", 2)
	var doneAt = map[string]time.Duration{}
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			res.Acquire(p, 1)
			p.Hold(10 * time.Second)
			res.Release(p, 1)
			doneAt[name] = p.Now()
		})
	}
	k.Run()
	// Two at a time: p1,p2 finish at 10s; p3,p4 at 20s.
	if doneAt["p1"] != 10*time.Second || doneAt["p2"] != 10*time.Second {
		t.Fatalf("first pair finished at %v/%v, want 10s", doneAt["p1"], doneAt["p2"])
	}
	if doneAt["p3"] != 20*time.Second || doneAt["p4"] != 20*time.Second {
		t.Fatalf("second pair finished at %v/%v, want 20s", doneAt["p3"], doneAt["p4"])
	}
	st := res.Stats()
	if st.Grants != 4 {
		t.Fatalf("grants = %d, want 4", st.Grants)
	}
	if st.Waits != 2 {
		t.Fatalf("waits = %d, want 2", st.Waits)
	}
	if st.TotalWait != 20*time.Second {
		t.Fatalf("total wait = %v, want 20s", st.TotalWait)
	}
	if st.Utilization < 0.99 || st.Utilization > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", st.Utilization)
	}
}

func TestResourceMultiUnitAcquire(t *testing.T) {
	k := NewKernel(1)
	res := NewResource(k, "slots", 3)
	var bigStarted time.Duration
	k.Spawn("small", func(p *Proc) {
		res.Acquire(p, 2)
		p.Hold(5 * time.Second)
		res.Release(p, 2)
	})
	k.Spawn("big", func(p *Proc) {
		res.Acquire(p, 3)
		bigStarted = p.Now()
		p.Hold(time.Second)
		res.Release(p, 3)
	})
	k.Run()
	if bigStarted != 5*time.Second {
		t.Fatalf("big acquired at %v, want 5s (after small released)", bigStarted)
	}
}

func TestResourceUse(t *testing.T) {
	k := NewKernel(1)
	res := NewResource(k, "disk", 1)
	var done time.Duration
	k.Spawn("a", func(p *Proc) { res.Use(p, 1, 3*time.Second) })
	k.Spawn("b", func(p *Proc) {
		res.Use(p, 1, 3*time.Second)
		done = p.Now()
	})
	k.Run()
	if done != 6*time.Second {
		t.Fatalf("serialized use finished at %v, want 6s", done)
	}
}

func TestAcquireMoreThanCapacityPanics(t *testing.T) {
	k := NewKernel(1)
	res := NewResource(k, "r", 1)
	p := k.Spawn("p", func(p *Proc) { res.Acquire(p, 2) })
	k.Run()
	if p.Err() == nil {
		t.Fatal("expected the process to record a panic error")
	}
}

func TestStuckDetection(t *testing.T) {
	k := NewKernel(1)
	res := NewResource(k, "r", 1)
	k.Spawn("holder", func(p *Proc) {
		res.Acquire(p, 1)
		// Never releases.
	})
	k.Spawn("waiter", func(p *Proc) {
		res.Acquire(p, 1)
	})
	k.Run()
	stuck := k.Stuck()
	if len(stuck) != 1 || stuck[0].Name() != "waiter" {
		t.Fatalf("stuck = %v, want [waiter]", names(stuck))
	}
}

func names(ps []*Proc) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Name())
	}
	return out
}

func TestSignalWaitAndFire(t *testing.T) {
	k := NewKernel(1)
	sig := NewSignal(k)
	var got any
	var when time.Duration
	k.Spawn("waiter", func(p *Proc) {
		got = sig.Wait(p)
		when = p.Now()
	})
	k.Spawn("firer", func(p *Proc) {
		p.Hold(4 * time.Second)
		sig.Fire("done")
	})
	k.Run()
	if got != "done" || when != 4*time.Second {
		t.Fatalf("got %v at %v, want done at 4s", got, when)
	}
	// Waiting after the signal fired returns immediately.
	k2 := NewKernel(1)
	sig2 := NewSignal(k2)
	sig2.Fire(7)
	var v any
	k2.Spawn("late", func(p *Proc) { v = sig2.Wait(p) })
	k2.Run()
	if v != 7 {
		t.Fatalf("late waiter got %v, want 7", v)
	}
}

func TestRunUntilLimit(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.Schedule(time.Second, func() { fired = append(fired, 1) })
	k.Schedule(10*time.Second, func() { fired = append(fired, 2) })
	k.RunUntil(5 * time.Second)
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only the first event", fired)
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events after Run", fired)
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel(1)
	var started time.Duration
	k.SpawnAt(3*time.Second, "late", func(p *Proc) { started = p.Now() })
	k.Run()
	if started != 3*time.Second {
		t.Fatalf("started at %v, want 3s", started)
	}
}

func TestProcPanicIsCaptured(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("bad", func(p *Proc) {
		p.Hold(time.Second)
		panic("boom")
	})
	k.Run()
	if p.Err() == nil {
		t.Fatal("panic was not captured")
	}
	if !p.Finished() {
		t.Fatal("panicked process should be marked finished")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewKernel(99).Rand().Int63()
	b := NewKernel(99).Rand().Int63()
	if a != b {
		t.Fatalf("same seed produced different values: %d vs %d", a, b)
	}
}

// TestHoldSumsProperty checks that for arbitrary non-negative hold sequences a
// process finishes at exactly the sum of its holds.
func TestHoldSumsProperty(t *testing.T) {
	f := func(holdsMS []uint16) bool {
		if len(holdsMS) > 50 {
			holdsMS = holdsMS[:50]
		}
		k := NewKernel(7)
		var want time.Duration
		p := k.Spawn("p", func(p *Proc) {
			for _, h := range holdsMS {
				d := time.Duration(h) * time.Millisecond
				p.Hold(d)
			}
		})
		for _, h := range holdsMS {
			want += time.Duration(h) * time.Millisecond
		}
		k.Run()
		return p.FinishedAt() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceNeverExceedsCapacityProperty drives random workloads through a
// resource and checks the max-in-use statistic never exceeds capacity.
func TestResourceNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		n := int(workers%10) + 2
		k := NewKernel(seed)
		res := NewResource(k, "r", 3)
		for i := 0; i < n; i++ {
			k.Spawn("w", func(p *Proc) {
				units := 1 + int(k.Rand().Intn(3))
				res.Acquire(p, units)
				p.Hold(time.Duration(1+k.Rand().Intn(5)) * time.Second)
				res.Release(p, units)
			})
		}
		k.Run()
		return res.Stats().MaxInUse <= 3 && res.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
