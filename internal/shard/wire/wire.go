// Package wire is the framed, typed message protocol between the shard
// coordinator and its agents.
//
// Framing follows the WAL-record discipline from internal/relstore: every
// message travels as
//
//	[u32 LE payload length][u32 LE CRC32-IEEE of payload][payload]
//
// and the payload starts with a one-byte message type followed by
// fixed-width little-endian fields and length-prefixed strings.  The decoder
// is total: arbitrary bytes produce an error, never a panic, and a frame
// whose bytes were flipped in transit fails the CRC before any field is
// interpreted.  ErrShort (incomplete frame — wait for more bytes) is
// distinguished from ErrCorrupt (framing or payload damage) so stream
// readers can reassemble partial reads without masking real corruption.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"skyloader/internal/queries"
)

// FrameHeader is the fixed byte size of the length+CRC frame prefix.
const FrameHeader = 8

// MaxMessageBytes bounds a single framed payload, mirroring the WAL's
// record cap.  A length prefix beyond it is treated as corruption rather
// than an allocation request.
const MaxMessageBytes = 64 << 20

// Message type bytes (first payload byte).
const (
	TypeHello      byte = 0x01
	TypeReady      byte = 0x02
	TypeLoadTask   byte = 0x03
	TypeLoadResult byte = 0x04
	TypeQuery      byte = 0x05
	TypeQueryResult byte = 0x06
	TypeStats      byte = 0x07
)

// Query kind bytes inside a Query message.
const (
	KindCone    byte = 1
	KindLookup  byte = 2
	KindFrame   byte = 3
	KindMagHist byte = 4
)

var (
	// ErrShort reports an incomplete frame: the buffer ends before the
	// frame does.  Stream readers should read more bytes and retry.
	ErrShort = errors.New("wire: short frame")
	// ErrCorrupt reports a damaged frame or payload: bad CRC, unknown
	// message type, truncated fields, or trailing garbage.
	ErrCorrupt = errors.New("wire: corrupt frame")
)

// Msg is one typed protocol message.
type Msg interface {
	// Type returns the message's type byte.
	Type() byte
	appendPayload(dst []byte) []byte
}

// Hello assigns an agent its identity: shard index, fleet size, and the
// contiguous depth-20 trixel range it owns.  Sent by the coordinator as the
// first message on a connection; the agent replies with Ready.
type Hello struct {
	ShardID  uint32
	Shards   uint32
	RangeLo  int64
	RangeHi  int64
	// Deferred tells the agent the coordinator will drive an explicit
	// BeginLoad/Seal window around the load tasks (deferred index build).
	Deferred bool
}

// Ready is the agent's readiness report: its shard id, whether its DB can
// serve indexed queries (false while loading, replaying a WAL, or
// mid-Seal), and its current row count.
type Ready struct {
	ShardID uint32
	Ready   bool
	Rows    int64
}

// LoadTask carries one catalog file to an agent, or — when Seal is set —
// asks the agent to close its load window and rebuild deferred indexes.
// The full file travels as raw catalog lines; the agent parses and keeps
// only the rows in its trixel range (plus, on the file's home shard, rows
// whose position cannot be resolved, so error-path rows land exactly once).
type LoadTask struct {
	TaskID       uint64
	Seal         bool
	Home         bool
	Name         string
	RABase       float64
	DecBase      float64
	NominalBytes int64
	Lines        []string
}

// LoadResult acknowledges one LoadTask.
type LoadResult struct {
	TaskID      uint64
	ShardID     uint32
	RowsLoaded  int64
	RowsSkipped int64
	Err         string
}

// Query is one science query scattered to a shard.  Kind selects which
// parameter fields are meaningful.
type Query struct {
	QueryID uint64
	Kind    byte
	RA      float64 // cone
	Dec     float64 // cone
	Radius  float64 // cone
	ID      int64   // lookup: object id; frame: frame id
	Bin     float64 // maghist bin width
}

// QueryResult is a shard's answer to a Query.
type QueryResult struct {
	QueryID uint64
	Err     string
	Stats   queries.Stats
	Objects []queries.Object
	Bins    []queries.MagnitudeBin
}

// Stats is both the coordinator's stats probe (fields zero) and the agent's
// reply.  Ready mirrors the Ready message so one probe answers both "are
// you alive" and "can you serve".
type Stats struct {
	ShardID       uint32
	Ready         bool
	Rows          int64
	RowsLoaded    int64
	QueriesServed int64
}

// Type implements Msg.
func (Hello) Type() byte       { return TypeHello }
func (Ready) Type() byte       { return TypeReady }
func (LoadTask) Type() byte    { return TypeLoadTask }
func (LoadResult) Type() byte  { return TypeLoadResult }
func (Query) Type() byte       { return TypeQuery }
func (QueryResult) Type() byte { return TypeQueryResult }
func (Stats) Type() byte       { return TypeStats }

// ---- encoding helpers -------------------------------------------------

func appendU8(dst []byte, v byte) []byte  { return append(dst, v) }
func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte  { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}
func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// reader is a bounds-checked cursor over one payload.  The first failed
// read latches err; subsequent reads return zero values, so decode methods
// can read every field unconditionally and check err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = fmt.Errorf("%w: truncated payload at offset %d", ErrCorrupt, r.off)
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: bad bool byte", ErrCorrupt)
		}
		return false
	}
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || !r.need(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a u32 element count and validates it against the bytes left,
// given a minimum encoded size per element, so a corrupt count can never
// drive a huge allocation.
func (r *reader) count(minElem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*minElem > len(r.b)-r.off {
		r.err = fmt.Errorf("%w: element count %d exceeds payload", ErrCorrupt, n)
		return 0
	}
	return n
}

// ---- per-message payloads ---------------------------------------------

func (m Hello) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeHello)
	dst = appendU32(dst, m.ShardID)
	dst = appendU32(dst, m.Shards)
	dst = appendI64(dst, m.RangeLo)
	dst = appendI64(dst, m.RangeHi)
	return appendBool(dst, m.Deferred)
}

func (m Ready) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeReady)
	dst = appendU32(dst, m.ShardID)
	dst = appendBool(dst, m.Ready)
	return appendI64(dst, m.Rows)
}

func (m LoadTask) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeLoadTask)
	dst = appendU64(dst, m.TaskID)
	dst = appendBool(dst, m.Seal)
	dst = appendBool(dst, m.Home)
	dst = appendString(dst, m.Name)
	dst = appendF64(dst, m.RABase)
	dst = appendF64(dst, m.DecBase)
	dst = appendI64(dst, m.NominalBytes)
	dst = appendU32(dst, uint32(len(m.Lines)))
	for _, ln := range m.Lines {
		dst = appendString(dst, ln)
	}
	return dst
}

func (m LoadResult) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeLoadResult)
	dst = appendU64(dst, m.TaskID)
	dst = appendU32(dst, m.ShardID)
	dst = appendI64(dst, m.RowsLoaded)
	dst = appendI64(dst, m.RowsSkipped)
	return appendString(dst, m.Err)
}

func (m Query) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeQuery)
	dst = appendU64(dst, m.QueryID)
	dst = appendU8(dst, m.Kind)
	dst = appendF64(dst, m.RA)
	dst = appendF64(dst, m.Dec)
	dst = appendF64(dst, m.Radius)
	dst = appendI64(dst, m.ID)
	return appendF64(dst, m.Bin)
}

const (
	objectWireBytes = 48 // 2 ids + 2 coords + htmid + mag, 8 bytes each
	binWireBytes    = 24 // low, high, count
)

func (m QueryResult) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeQueryResult)
	dst = appendU64(dst, m.QueryID)
	dst = appendString(dst, m.Err)
	dst = appendI64(dst, int64(m.Stats.RowsExamined))
	dst = appendI64(dst, int64(m.Stats.RowsReturned))
	dst = appendBool(dst, m.Stats.UsedIndex)
	dst = appendI64(dst, int64(m.Stats.TrixelsScanned))
	dst = appendU32(dst, uint32(len(m.Objects)))
	for _, o := range m.Objects {
		dst = appendI64(dst, o.ObjectID)
		dst = appendI64(dst, o.FrameID)
		dst = appendF64(dst, o.RA)
		dst = appendF64(dst, o.Dec)
		dst = appendI64(dst, o.HTMID)
		dst = appendF64(dst, o.Mag)
	}
	dst = appendU32(dst, uint32(len(m.Bins)))
	for _, b := range m.Bins {
		dst = appendF64(dst, b.Low)
		dst = appendF64(dst, b.High)
		dst = appendI64(dst, b.Count)
	}
	return dst
}

func (m Stats) appendPayload(dst []byte) []byte {
	dst = appendU8(dst, TypeStats)
	dst = appendU32(dst, m.ShardID)
	dst = appendBool(dst, m.Ready)
	dst = appendI64(dst, m.Rows)
	dst = appendI64(dst, m.RowsLoaded)
	return appendI64(dst, m.QueriesServed)
}

// ---- framing ----------------------------------------------------------

// Append appends the framed encoding of m to dst and returns the extended
// slice.
func Append(dst []byte, m Msg) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = m.appendPayload(dst)
	payload := dst[start+FrameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// Decode decodes one framed message from the head of buf.  It returns the
// message and the number of bytes consumed.  ErrShort means buf ends before
// the frame does (read more and retry); ErrCorrupt means the frame or its
// payload is damaged.
func Decode(buf []byte) (Msg, int, error) {
	if len(buf) < FrameHeader {
		return nil, 0, ErrShort
	}
	n := binary.LittleEndian.Uint32(buf)
	if n == 0 || n > MaxMessageBytes {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if len(buf) < FrameHeader+int(n) {
		return nil, 0, ErrShort
	}
	want := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[FrameHeader : FrameHeader+int(n)]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	m, err := DecodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return m, FrameHeader + int(n), nil
}

// DecodePayload decodes one CRC-verified payload (type byte + fields).
// Trailing bytes after the last field are corruption: the encoding is
// canonical, so a valid payload is consumed exactly.
func DecodePayload(payload []byte) (Msg, error) {
	r := &reader{b: payload}
	typ := r.u8()
	var m Msg
	switch typ {
	case TypeHello:
		m = Hello{
			ShardID:  r.u32(),
			Shards:   r.u32(),
			RangeLo:  r.i64(),
			RangeHi:  r.i64(),
			Deferred: r.boolean(),
		}
	case TypeReady:
		m = Ready{ShardID: r.u32(), Ready: r.boolean(), Rows: r.i64()}
	case TypeLoadTask:
		t := LoadTask{
			TaskID:       r.u64(),
			Seal:         r.boolean(),
			Home:         r.boolean(),
			Name:         r.str(),
			RABase:       r.f64(),
			DecBase:      r.f64(),
			NominalBytes: r.i64(),
		}
		n := r.count(4) // each line carries at least its length prefix
		if r.err == nil && n > 0 {
			t.Lines = make([]string, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				t.Lines = append(t.Lines, r.str())
			}
		}
		m = t
	case TypeLoadResult:
		m = LoadResult{
			TaskID:      r.u64(),
			ShardID:     r.u32(),
			RowsLoaded:  r.i64(),
			RowsSkipped: r.i64(),
			Err:         r.str(),
		}
	case TypeQuery:
		q := Query{
			QueryID: r.u64(),
			Kind:    r.u8(),
			RA:      r.f64(),
			Dec:     r.f64(),
			Radius:  r.f64(),
			ID:      r.i64(),
			Bin:     r.f64(),
		}
		if r.err == nil && (q.Kind < KindCone || q.Kind > KindMagHist) {
			return nil, fmt.Errorf("%w: unknown query kind %d", ErrCorrupt, q.Kind)
		}
		m = q
	case TypeQueryResult:
		res := QueryResult{QueryID: r.u64(), Err: r.str()}
		res.Stats.RowsExamined = int(r.i64())
		res.Stats.RowsReturned = int(r.i64())
		res.Stats.UsedIndex = r.boolean()
		res.Stats.TrixelsScanned = int(r.i64())
		n := r.count(objectWireBytes)
		if r.err == nil && n > 0 {
			res.Objects = make([]queries.Object, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				res.Objects = append(res.Objects, queries.Object{
					ObjectID: r.i64(),
					FrameID:  r.i64(),
					RA:       r.f64(),
					Dec:      r.f64(),
					HTMID:    r.i64(),
					Mag:      r.f64(),
				})
			}
		}
		n = r.count(binWireBytes)
		if r.err == nil && n > 0 {
			res.Bins = make([]queries.MagnitudeBin, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				res.Bins = append(res.Bins, queries.MagnitudeBin{
					Low:   r.f64(),
					High:  r.f64(),
					Count: r.i64(),
				})
			}
		}
		m = res
	case TypeStats:
		m = Stats{
			ShardID:       r.u32(),
			Ready:         r.boolean(),
			Rows:          r.i64(),
			RowsLoaded:    r.i64(),
			QueriesServed: r.i64(),
		}
	default:
		return nil, fmt.Errorf("%w: unknown message type 0x%02x", ErrCorrupt, typ)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-r.off)
	}
	return m, nil
}

// WriteMsg frames and writes one message to w, returning the bytes written.
func WriteMsg(w io.Writer, m Msg) (int, error) {
	buf := Append(nil, m)
	n, err := w.Write(buf)
	return n, err
}

// ReadMsg reads one framed message from r, returning the bytes consumed.
// An EOF cleanly between frames surfaces as io.EOF; mid-frame it becomes
// io.ErrUnexpectedEOF.
func ReadMsg(r io.Reader) (Msg, int, error) {
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxMessageBytes {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	want := binary.LittleEndian.Uint32(hdr[4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	m, err := DecodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return m, FrameHeader + int(n), nil
}

// FromQuery converts a queries.Query into its wire form.
func FromQuery(id uint64, q queries.Query) (Query, error) {
	switch t := q.(type) {
	case queries.Cone:
		return Query{QueryID: id, Kind: KindCone, RA: t.RA, Dec: t.Dec, Radius: t.RadiusDeg}, nil
	case queries.ObjectLookup:
		return Query{QueryID: id, Kind: KindLookup, ID: t.ObjectID}, nil
	case queries.FrameObjects:
		return Query{QueryID: id, Kind: KindFrame, ID: t.FrameID}, nil
	case queries.MagHistogram:
		return Query{QueryID: id, Kind: KindMagHist, Bin: t.BinWidth}, nil
	default:
		return Query{}, fmt.Errorf("wire: unsupported query type %T", q)
	}
}

// ToQuery converts a wire Query back into the executable queries.Query.
func (m Query) ToQuery() (queries.Query, error) {
	switch m.Kind {
	case KindCone:
		return queries.Cone{RA: m.RA, Dec: m.Dec, RadiusDeg: m.Radius}, nil
	case KindLookup:
		return queries.ObjectLookup{ObjectID: m.ID}, nil
	case KindFrame:
		return queries.FrameObjects{FrameID: m.ID}, nil
	case KindMagHist:
		return queries.MagHistogram{BinWidth: m.Bin}, nil
	default:
		return nil, fmt.Errorf("wire: unknown query kind %d", m.Kind)
	}
}
