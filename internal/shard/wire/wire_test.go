package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"skyloader/internal/queries"
)

// sampleMessages returns one representative of every message type,
// including empty and boundary field values.
func sampleMessages() []Msg {
	return []Msg{
		Hello{ShardID: 0, Shards: 1, RangeLo: 8 << 40, RangeHi: (16 << 40) - 1},
		Hello{ShardID: 3, Shards: 100, RangeLo: -1, RangeHi: math.MaxInt64, Deferred: true},
		Ready{ShardID: 7, Ready: true, Rows: 123456},
		Ready{},
		LoadTask{TaskID: 42, Name: "mega_0001.cat", RABase: 187.25, DecBase: -12.5,
			NominalBytes: 1 << 20, Home: true,
			Lines: []string{"OBJ|1|2|3.5|4.5|18.2|0.01|1.1|0.2|0", "", "# comment"}},
		LoadTask{TaskID: 43, Seal: true},
		LoadResult{TaskID: 42, ShardID: 2, RowsLoaded: 99, RowsSkipped: 7, Err: "boom"},
		Query{QueryID: 1, Kind: KindCone, RA: 123.456, Dec: -45.5, Radius: 0.25},
		Query{QueryID: 2, Kind: KindLookup, ID: 100000001},
		Query{QueryID: 3, Kind: KindFrame, ID: 17},
		Query{QueryID: 4, Kind: KindMagHist, Bin: 0.5},
		QueryResult{QueryID: 1, Stats: queries.Stats{RowsExamined: 10, RowsReturned: 2, UsedIndex: true, TrixelsScanned: 3},
			Objects: []queries.Object{
				{ObjectID: 1, FrameID: 2, RA: 3.25, Dec: -4.5, HTMID: 1 << 42, Mag: 18.5},
				{ObjectID: 9, FrameID: 8, RA: 359.999999, Dec: 89.5, HTMID: 15 << 40, Mag: 22.1},
			}},
		QueryResult{QueryID: 5, Err: "shard down"},
		QueryResult{QueryID: 6, Bins: []queries.MagnitudeBin{{Low: 18, High: 18.5, Count: 12}, {Low: 18.5, High: 19, Count: 0}}},
		Stats{ShardID: 1, Ready: true, Rows: 5000, RowsLoaded: 5100, QueriesServed: 77},
	}
}

func TestRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		buf := Append(nil, m)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("msg %d (%T): decode: %v", i, m, err)
		}
		if n != len(buf) {
			t.Fatalf("msg %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("msg %d round-trip mismatch:\n got %#v\nwant %#v", i, got, m)
		}
	}
}

func TestRoundTripConcatenated(t *testing.T) {
	msgs := sampleMessages()
	var buf []byte
	for _, m := range msgs {
		buf = Append(buf, m)
	}
	for i := 0; len(buf) > 0; i++ {
		m, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("frame %d mismatch: %#v", i, m)
		}
		buf = buf[n:]
	}
}

// TestBitFlipNeverPasses flips every bit of every sample frame in turn;
// no flipped frame may decode back to the original message, and payload
// flips must be caught by the CRC.
func TestBitFlipNeverPasses(t *testing.T) {
	for mi, m := range sampleMessages() {
		buf := Append(nil, m)
		for byteIdx := 0; byteIdx < len(buf); byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), buf...)
				mut[byteIdx] ^= 1 << bit
				got, _, err := Decode(mut)
				if err == nil && reflect.DeepEqual(got, m) {
					t.Fatalf("msg %d: flip byte %d bit %d decoded back to the original", mi, byteIdx, bit)
				}
				if byteIdx >= FrameHeader && err == nil {
					t.Fatalf("msg %d: payload flip at byte %d bit %d passed the CRC", mi, byteIdx, bit)
				}
			}
		}
	}
}

func TestShortFrames(t *testing.T) {
	buf := Append(nil, Stats{ShardID: 1, Rows: 10})
	for cut := 0; cut < len(buf); cut++ {
		_, _, err := Decode(buf[:cut])
		if !errors.Is(err, ErrShort) {
			t.Fatalf("cut %d: got %v, want ErrShort", cut, err)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	buf := Append(nil, Ready{ShardID: 1, Ready: true, Rows: 1})
	// Extend the payload (and fix length+CRC) so fields decode but bytes
	// remain: a non-canonical frame must be corrupt, not silently accepted.
	payload := append(append([]byte(nil), buf[FrameHeader:]...), 0xAB)
	reframed := make([]byte, FrameHeader, FrameHeader+len(payload))
	reframed = append(reframed, payload...)
	binary.LittleEndian.PutUint32(reframed, uint32(len(payload)))
	binary.LittleEndian.PutUint32(reframed[4:], crc32.ChecksumIEEE(payload))
	if _, _, err := Decode(reframed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestStreamReadWrite(t *testing.T) {
	msgs := sampleMessages()
	var buf bytes.Buffer
	for _, m := range msgs {
		if _, err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		m, _, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, err := ReadMsg(&buf); err != io.EOF {
		t.Fatalf("got %v, want io.EOF at stream end", err)
	}
}

func TestQueryConversionRoundTrip(t *testing.T) {
	qs := []queries.Query{
		queries.Cone{RA: 10, Dec: 20, RadiusDeg: 0.5},
		queries.ObjectLookup{ObjectID: 100000123},
		queries.FrameObjects{FrameID: 44},
		queries.MagHistogram{BinWidth: 0.25},
	}
	for i, q := range qs {
		wq, err := FromQuery(uint64(i), q)
		if err != nil {
			t.Fatal(err)
		}
		back, err := wq.ToQuery()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Fatalf("query %d: %#v != %#v", i, back, q)
		}
	}
}

// FuzzWireDecode exercises the total decoder on arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to an identical
// frame (canonical encoding).
func FuzzWireDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Append(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	rng := rand.New(rand.NewSource(11))
	junk := make([]byte, 256)
	rng.Read(junk)
	f.Add(junk)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Append(nil, m)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted frame is not canonical:\n in  %x\n out %x", data[:n], re)
		}
	})
}
