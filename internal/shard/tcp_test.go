package shard

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/exec"
	"skyloader/internal/tuning"
)

// TestTCPFleetKillRestart drives the full TCP path: three agents on real
// sockets, a coordinator loading through them, byte-identity against the
// oracle, then a hard kill of one agent followed by RestoreShard onto a
// fresh agent and re-verification.
func TestTCPFleetKillRestart(t *testing.T) {
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 3, RowsPerMB: 150, Seed: 31})
	oracle := buildOracle(t, files, tuning.ProductionLoading())

	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 3})
	inline := exec.InlineRunner(sched)
	const n = 3
	servers := make([]*AgentServer, n)
	clients := make([]Client, n)
	for i := 0; i < n; i++ {
		a, err := NewAgent(sched, DefaultAgentConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeAgent(a, sched, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		cl, err := DialShard(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	pm, err := PartitionFromFiles(files, n)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(sched, pm, clients, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	inline.RunInline("tcp-setup", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			t.Error(err)
			return
		}
		if _, err := co.LoadFiles(w, files); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	qs := testQueries(files, 15)
	assertOracleIdentical(t, co, inline, oracle, qs)

	// Kill shard 1 — server down, its rows gone with the process.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	var readyDown bool
	inline.RunInline("probe-down", func(w exec.Worker) { readyDown = co.Ready(w) })
	if readyDown {
		t.Fatal("fleet reported ready with a dead shard")
	}

	// Bring up a replacement on a new port and replay its share.
	replacement, err := NewAgent(sched, DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeAgent(replacement, sched, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialShard(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	inline.RunInline("restore", func(w exec.Worker) {
		if err := co.RestoreShard(w, 1, cl); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	assertOracleIdentical(t, co, inline, oracle, qs)

	snap := co.Snapshot()
	if snap.BytesSent == 0 || snap.BytesReceived == 0 {
		t.Fatalf("no bytes accounted on the wire: %+v", snap)
	}
}
