// Package shard is the distributed layer: a coordinator that partitions the
// sky across agents by HTM trixel range, hands catalog files to the owning
// agents, and serves queries by scattering to only the trixel-overlapping
// shards and merge-gathering sorted results.
//
// Ownership rules (see PERFORMANCE.md "Distributed mode"): the partition map
// is immutable after construction; each agent is the single owner of its
// relstore.DB (the coordinator never reads rows directly, only wire
// messages); gather buffers live per-request on the coordinator worker.
package shard

import (
	"fmt"
	"sort"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
)

// PartitionMap divides the full depth-20 trixel id space into contiguous,
// non-overlapping shard ranges that exactly tile the sky.  bounds has one
// entry per shard plus a sentinel: shard i owns [bounds[i], bounds[i+1]-1].
type PartitionMap struct {
	bounds []int64
}

// FullRange returns the depth-DefaultDepth id range of the whole sphere
// (descendants of the eight root faces 8..15).
func FullRange() htm.Range {
	return htm.Range{Lo: 8, Hi: 15}.DescendantRange(htm.DefaultDepth)
}

// NewUniformPartition splits the sky into n equal-width id ranges.
func NewUniformPartition(n int) (*PartitionMap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition needs at least one shard, got %d", n)
	}
	full := FullRange()
	width := full.Trixels()
	bounds := make([]int64, n+1)
	for i := 0; i < n; i++ {
		bounds[i] = full.Lo + int64(i)*(width/int64(n)) + min64(int64(i), width%int64(n))
	}
	bounds[n] = full.Hi + 1
	return &PartitionMap{bounds: bounds}, nil
}

// PartitionFromFiles builds a partition whose boundaries follow the HTM
// footprints of the catalog files: the footprint-centre trixel of each file
// is a split candidate, and boundaries are placed so each shard receives a
// comparable share of file centres.  The result still exactly tiles the full
// id space — footprints only move boundaries, they never punch holes — so
// routing stays total for queries outside any footprint.
func PartitionFromFiles(files []*catalog.File, n int) (*PartitionMap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition needs at least one shard, got %d", n)
	}
	centers := make([]int64, 0, len(files))
	for _, f := range files {
		centers = append(centers, fileCenterTrixel(f))
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	centers = dedupeInt64(centers)
	if len(centers) < n {
		// Too few distinct footprints to guide every boundary; fall back
		// to the uniform tiling.
		return NewUniformPartition(n)
	}
	full := FullRange()
	bounds := make([]int64, n+1)
	bounds[0] = full.Lo
	bounds[n] = full.Hi + 1
	prev := full.Lo
	for i := 1; i < n; i++ {
		cut := centers[i*len(centers)/n]
		if cut <= prev {
			cut = prev + 1
		}
		if cut > full.Hi {
			cut = full.Hi
		}
		bounds[i] = cut
		prev = cut
	}
	// Degenerate clustering can still collapse cuts; repair monotonicity.
	for i := 1; i < n; i++ {
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] + 1
		}
	}
	if bounds[n] <= bounds[n-1] {
		return NewUniformPartition(n)
	}
	return &PartitionMap{bounds: bounds}, nil
}

// Shards returns the number of shards.
func (pm *PartitionMap) Shards() int { return len(pm.bounds) - 1 }

// Range returns the depth-20 id range owned by shard i.
func (pm *PartitionMap) Range(i int) htm.Range {
	return htm.Range{Lo: pm.bounds[i], Hi: pm.bounds[i+1] - 1}
}

// Owner returns the shard owning a depth-20 trixel id.  Ids outside the
// sphere's id space clamp to the nearest shard so every row has a home.
func (pm *PartitionMap) Owner(id int64) int {
	n := pm.Shards()
	if id < pm.bounds[0] {
		return 0
	}
	if id >= pm.bounds[n] {
		return n - 1
	}
	// The owner is the first shard whose upper boundary lies above id.
	return sort.Search(n, func(i int) bool { return pm.bounds[i+1] > id })
}

// RouteCover intersects a cone cover (expressed at coverDepth) with each
// shard's range and returns, per shard, the depth-DefaultDepth ranges that
// shard must probe.  The union across shards of the returned ranges is
// exactly the cover expanded to DefaultDepth — the routing-oracle property
// the tests assert — because shard ranges tile the id space.
func (pm *PartitionMap) RouteCover(cover []htm.Range, coverDepth int) [][]htm.Range {
	out := make([][]htm.Range, pm.Shards())
	levels := htm.DefaultDepth - coverDepth
	for _, cr := range cover {
		expanded := cr.DescendantRange(levels)
		lo := pm.Owner(expanded.Lo)
		hi := pm.Owner(expanded.Hi)
		for s := lo; s <= hi; s++ {
			if isect, ok := expanded.Intersect(pm.Range(s)); ok {
				out[s] = append(out[s], isect)
			}
		}
	}
	return out
}

// ConeTargets returns the shard indices whose ranges overlap the cone's
// cover — the scatter set for a cone query.
func (pm *PartitionMap) ConeTargets(raDeg, decDeg, radiusDeg float64) ([]int, error) {
	depth := htm.CoverDepth(radiusDeg)
	cover, err := htm.ConeCover(raDeg, decDeg, radiusDeg, depth)
	if err != nil {
		return nil, err
	}
	routed := pm.RouteCover(cover, depth)
	targets := make([]int, 0, len(routed))
	for s, rs := range routed {
		if len(rs) > 0 {
			targets = append(targets, s)
		}
	}
	return targets, nil
}

// fileCenterTrixel returns the depth-20 trixel at the centre of a file's
// nominal footprint (the generator spreads rows ~2.3 deg in RA and ~0.85 deg
// in Dec from the base corner).  Used for partition balancing and as the
// file's home shard for rows whose position cannot be resolved.
func fileCenterTrixel(f *catalog.File) int64 {
	ra := wrapRA(f.RABase + 1.15)
	dec := clampDec(f.DecBase + 0.425)
	return htm.MustLookup(ra, dec, htm.DefaultDepth)
}

func wrapRA(ra float64) float64 {
	for ra >= 360 {
		ra -= 360
	}
	for ra < 0 {
		ra += 360
	}
	return ra
}

func clampDec(dec float64) float64 {
	if dec > 90 {
		return 90
	}
	if dec < -90 {
		return -90
	}
	return dec
}

func dedupeInt64(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
