package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/shard/wire"
)

// Client is one coordinator-side connection to a shard agent.  Call sends
// one message and blocks the worker until the reply arrives; a client
// carries one outstanding request at a time (the coordinator scatters by
// running one worker per shard).  Bytes reports the framed traffic so the
// coordinator can export bytes-on-the-wire without transports sharing
// counters.
type Client interface {
	Call(w exec.Worker, m wire.Msg) (wire.Msg, error)
	Bytes() (sent, received int64)
	Close() error
}

// NetModel prices the in-process transport: a fixed per-message latency
// plus serialization time at BytesPerSec.  Zero fields cost nothing, so the
// zero NetModel degrades to an instantaneous network.
type NetModel struct {
	Latency     time.Duration
	BytesPerSec float64
}

// Cost returns the one-way transfer time of n framed bytes.
func (m NetModel) Cost(n int) time.Duration {
	d := m.Latency
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(n) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// memClient is the in-process transport: messages are encoded through the
// real wire codec (so the DES simulation and the TCP path exercise the same
// bytes, and no memory is shared between coordinator and agent), the
// network is charged via worker sleeps, and a capacity-1 resource
// serializes the agent like a single-core remote node.
type memClient struct {
	agent  *Agent
	net    NetModel
	cpu    exec.Resource
	sent   atomic.Int64
	recv   atomic.Int64
	mu     sync.Mutex
	closed bool
}

// NewMemClient connects a coordinator to an in-process agent on the shared
// scheduler.  Under DES the net model's sleeps advance virtual time, making
// 100-node topologies simulable; under realtime with TimeScale 0 they are
// no-ops and the transport is just a serialized function call.
func NewMemClient(sched exec.Scheduler, agent *Agent, net NetModel) Client {
	return &memClient{
		agent: agent,
		net:   net,
		cpu:   sched.NewResource(fmt.Sprintf("shard-agent-%p", agent), 1),
	}
}

// Call implements Client.
func (c *memClient) Call(w exec.Worker, m wire.Msg) (wire.Msg, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("shard: client closed")
	}
	c.mu.Unlock()
	req := wire.Append(nil, m)
	c.sent.Add(int64(len(req)))
	w.Sleep(c.net.Cost(len(req)))
	decoded, _, err := wire.Decode(req)
	if err != nil {
		return nil, err
	}
	c.cpu.Acquire(w, 1)
	reply := c.agent.Handle(w, decoded)
	c.cpu.Release(w, 1)
	resp := wire.Append(nil, reply)
	c.recv.Add(int64(len(resp)))
	w.Sleep(c.net.Cost(len(resp)))
	out, _, err := wire.Decode(resp)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Bytes implements Client.
func (c *memClient) Bytes() (int64, int64) { return c.sent.Load(), c.recv.Load() }

// Close implements Client.
func (c *memClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}
