package shard

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/htm"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func TestPartitionTiling(t *testing.T) {
	full := FullRange()
	for _, n := range []int{1, 2, 3, 7, 64, 100} {
		pm, err := NewUniformPartition(n)
		if err != nil {
			t.Fatal(err)
		}
		if pm.Shards() != n {
			t.Fatalf("n=%d: Shards()=%d", n, pm.Shards())
		}
		if pm.Range(0).Lo != full.Lo || pm.Range(n-1).Hi != full.Hi {
			t.Fatalf("n=%d: partition does not span the full range", n)
		}
		for i := 0; i < n; i++ {
			r := pm.Range(i)
			if r.Lo > r.Hi {
				t.Fatalf("n=%d shard %d: empty range %+v", n, i, r)
			}
			if i > 0 && r.Lo != pm.Range(i-1).Hi+1 {
				t.Fatalf("n=%d shard %d: gap or overlap at boundary", n, i)
			}
			if pm.Owner(r.Lo) != i || pm.Owner(r.Hi) != i {
				t.Fatalf("n=%d shard %d: Owner disagrees with Range", n, i)
			}
		}
	}
}

func TestPartitionFromFilesTiling(t *testing.T) {
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 8, RowsPerMB: 100, Seed: 5})
	full := FullRange()
	for _, n := range []int{2, 3, 5} {
		pm, err := PartitionFromFiles(files, n)
		if err != nil {
			t.Fatal(err)
		}
		if pm.Range(0).Lo != full.Lo || pm.Range(n-1).Hi != full.Hi {
			t.Fatalf("n=%d: footprint partition does not tile the sky", n)
		}
		for i := 1; i < n; i++ {
			if pm.Range(i).Lo != pm.Range(i-1).Hi+1 {
				t.Fatalf("n=%d: boundary %d not contiguous", n, i)
			}
		}
	}
}

// normalize sorts and coalesces ranges so two covers can be compared as sets.
func normalize(rs []htm.Range) []htm.Range {
	if len(rs) == 0 {
		return nil
	}
	out := append([]htm.Range(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// TestRoutingOracleProperty: for random cones, the union of per-shard routed
// ranges equals the single-node cover expanded to DefaultDepth — no trixel
// lost, none invented, regardless of shard count.
func TestRoutingOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		pm, err := NewUniformPartition(n)
		if err != nil {
			t.Fatal(err)
		}
		ra := rng.Float64() * 360
		dec := rng.Float64()*180 - 90
		radius := 0.01 + rng.Float64()*rng.Float64()*30
		depth := htm.CoverDepth(radius)
		cover, err := htm.ConeCover(ra, dec, radius, depth)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]htm.Range, 0, len(cover))
		for _, cr := range cover {
			want = append(want, cr.DescendantRange(htm.DefaultDepth-depth))
		}
		routed := pm.RouteCover(cover, depth)
		var got []htm.Range
		for s, rs := range routed {
			shardRange := pm.Range(s)
			for _, r := range rs {
				if r.Lo < shardRange.Lo || r.Hi > shardRange.Hi {
					t.Fatalf("trial %d: shard %d routed range %+v outside its ownership %+v", trial, s, r, shardRange)
				}
				got = append(got, r)
			}
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("trial %d (n=%d cone %.3f,%.3f r%.3f): routed union != cover\n got %v\nwant %v",
				trial, n, ra, dec, radius, normalize(got), normalize(want))
		}
	}
}

// buildOracle loads the files into a fresh single-node database — the
// byte-identity reference for every scatter-gather result.
func buildOracle(t testing.TB, files []*catalog.File, prof tuning.Profile) *relstore.DB {
	t.Helper()
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
	db, err := relstore.Open(catalog.NewSchema(), prof.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := prof.Apply(db); err != nil {
		t.Fatal(err)
	}
	srv := sqlbatch.NewServerOn(sched, db, prof.ServerConfig(), sqlbatch.DefaultCostModel())
	_, err = parallel.Run(srv, files, parallel.Config{
		Loaders:       1,
		Loader:        core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
		SealAfterLoad: prof.DeferredIndexBuild,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// buildFleet assembles n in-process agents behind mem clients on a realtime
// scheduler and loads the files through the coordinator.
func buildFleet(t testing.TB, files []*catalog.File, n int, deferred bool) (*Coordinator, []*Agent, exec.InlineRunner) {
	t.Helper()
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 2})
	inline := exec.InlineRunner(sched)
	agents := make([]*Agent, n)
	clients := make([]Client, n)
	cfg := DefaultAgentConfig()
	cfg.Profile.DeferredIndexBuild = deferred
	for i := range agents {
		a, err := NewAgent(sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		clients[i] = NewMemClient(sched, a, NetModel{})
	}
	pm, err := PartitionFromFiles(files, n)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(sched, pm, clients, Config{Deferred: deferred})
	if err != nil {
		t.Fatal(err)
	}
	inline.RunInline("fleet-setup", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			t.Error(err)
			return
		}
		if _, err := co.LoadFiles(w, files); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	return co, agents, inline
}

// testQueries builds a representative mixed workload aimed at the files'
// sky footprint: generated Zipf traffic plus explicit queries of every
// class (including misses).
func testQueries(files []*catalog.File, n int) []queries.Query {
	trace := serve.GenTrace(serve.TraceSpec{
		Queries:  n,
		Seed:     909,
		ConeFrac: 0.6,
		Objects:  256,
		IDBase:   100_000_000,
		Frames:   24,
	}.WithFootprint(files))
	out := make([]queries.Query, 0, len(trace)+6)
	for _, r := range trace {
		out = append(out, r.Query)
	}
	out = append(out,
		queries.Cone{RA: files[0].RABase + 1, Dec: files[0].DecBase + 0.4, RadiusDeg: 2.5},
		queries.Cone{RA: 10, Dec: -80, RadiusDeg: 0.3}, // likely empty sky
		queries.ObjectLookup{ObjectID: 100_000_001},
		queries.ObjectLookup{ObjectID: 42},   // miss
		queries.FrameObjects{FrameID: 1_000}, // likely miss
		queries.MagHistogram{BinWidth: 0.5},
	)
	return out
}

// assertOracleIdentical runs every query against both the fleet and the
// single-node oracle and requires byte-identical Objects/Bins.
func assertOracleIdentical(t testing.TB, co *Coordinator, inline exec.InlineRunner, oracle *relstore.DB, qs []queries.Query) {
	t.Helper()
	nonEmpty := 0
	for i, q := range qs {
		want, err := q.Run(oracle)
		if err != nil {
			t.Fatalf("query %d (%s): oracle: %v", i, q.Signature(), err)
		}
		var got queries.Result
		var execErr error
		inline.RunInline("verify", func(w exec.Worker) {
			got, execErr = co.Execute(w, q, nil)
		})
		if execErr != nil {
			t.Fatalf("query %d (%s): fleet: %v", i, q.Signature(), execErr)
		}
		wantJSON, _ := json.Marshal(struct {
			O []queries.Object
			B []queries.MagnitudeBin
		}{want.Objects, want.Bins})
		gotJSON, _ := json.Marshal(struct {
			O []queries.Object
			B []queries.MagnitudeBin
		}{got.Objects, got.Bins})
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("query %d (%s): fleet result differs from oracle\n got %s\nwant %s",
				i, q.Signature(), gotJSON, wantJSON)
		}
		if len(want.Objects) > 0 || len(want.Bins) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every oracle result was empty; the identity check proved nothing")
	}
}

// TestThreeShardByteIdentity is the acceptance property: cone, object,
// frame and histogram results from a 3-shard scatter-gather are
// byte-identical to the single-node oracle.
func TestThreeShardByteIdentity(t *testing.T) {
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 3, Files: 3, RowsPerMB: 200, Seed: 7})
	oracle := buildOracle(t, files, tuning.ProductionLoading())
	co, agents, inline := buildFleet(t, files, 3, false)
	defer co.Close()

	var shardRows int64
	for _, a := range agents {
		shardRows += a.DB().TotalRows()
	}
	// Reference rows are replicated per shard; object-graph rows must not
	// be lost. Compare object counts, which are partition-exclusive.
	var oracleObjects, fleetObjects int64
	oracleObjects, _ = oracle.Count(catalog.TObjects)
	for _, a := range agents {
		n, _ := a.DB().Count(catalog.TObjects)
		fleetObjects += n
	}
	if oracleObjects == 0 {
		t.Fatal("oracle loaded zero objects; the identity test would be vacuous")
	}
	if fleetObjects != oracleObjects {
		t.Fatalf("fleet holds %d objects, oracle %d", fleetObjects, oracleObjects)
	}
	if shardRows == 0 {
		t.Fatal("fleet loaded zero rows")
	}
	assertOracleIdentical(t, co, inline, oracle, testQueries(files, 40))
}

// TestByteIdentityDeferredSeal covers the fleet-wide BeginLoad/Seal window:
// results after Seal must match an oracle loaded the same way.
func TestByteIdentityDeferredSeal(t *testing.T) {
	prof := tuning.ProductionLoading()
	prof.DeferredIndexBuild = true
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 3, RowsPerMB: 150, Seed: 21})
	oracle := buildOracle(t, files, prof)
	co, _, inline := buildFleet(t, files, 3, true)
	defer co.Close()
	var ready bool
	inline.RunInline("ready", func(w exec.Worker) { ready = co.Ready(w) })
	if !ready {
		t.Fatal("fleet not ready after deferred load + seal")
	}
	assertOracleIdentical(t, co, inline, oracle, testQueries(files, 25))
}

// TestRestoreShard kills one shard's agent and client, brings up a fresh
// agent, replays its file queue through RestoreShard, and requires the
// fleet to be byte-identical to the oracle again.
func TestRestoreShard(t *testing.T) {
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 3, RowsPerMB: 150, Seed: 11})
	oracle := buildOracle(t, files, tuning.ProductionLoading())
	co, _, inline := buildFleet(t, files, 3, false)
	defer co.Close()

	sched := co.Scheduler()
	replacementAgent, err := NewAgent(sched, DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	inline.RunInline("restore", func(w exec.Worker) {
		if err := co.RestoreShard(w, 1, NewMemClient(sched, replacementAgent, NetModel{})); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	assertOracleIdentical(t, co, inline, oracle, testQueries(files, 20))
}

// TestConeTargetsNarrow: a small cone must not fan out to every shard of a
// wide fleet (the scatter-only-to-overlapping-shards property).
func TestConeTargetsNarrow(t *testing.T) {
	pm, err := NewUniformPartition(64)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := pm.ConeTargets(187.2, -5.4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no targets for a valid cone")
	}
	if len(targets) == 64 {
		t.Fatal("tiny cone scattered to every shard")
	}
}

// TestSimDeterministic: the same DES topology config renders byte-identical
// reports across two runs.
func TestSimDeterministic(t *testing.T) {
	cfg := SimConfig{Shards: 5, Seed: 99, SizeMB: 1, Files: 4, RowsPerMB: 120, Queries: 60}
	var a, b bytes.Buffer
	r1, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Render(&a)
	r2, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sim not deterministic:\n--- run 1\n%s\n--- run 2\n%s", a.String(), b.String())
	}
	if r1.RowsLoaded == 0 || r1.Queries == 0 {
		t.Fatalf("degenerate sim report: %+v", r1)
	}
	if r1.Errors != 0 {
		t.Fatalf("sim reported %d query errors", r1.Errors)
	}
}
