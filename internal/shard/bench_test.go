package shard

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/exec"
	"skyloader/internal/queries"
	"skyloader/internal/shard/wire"
	"skyloader/internal/tuning"
)

// benchQueries are the fixed per-class probes both sides answer: a cone that
// hits the generated footprint, a hot object lookup and the full-table
// histogram (the worst gather case — every shard contributes bins).
func benchQueries(files []*catalog.File) []struct {
	name string
	q    queries.Query
} {
	return []struct {
		name string
		q    queries.Query
	}{
		{"cone", queries.Cone{RA: files[0].RABase + 1.0, Dec: files[0].DecBase + 0.4, RadiusDeg: 2}},
		{"lookup", queries.ObjectLookup{ObjectID: 100_000_001}},
		{"maghist", queries.MagHistogram{BinWidth: 0.5}},
	}
}

func benchFiles() []*catalog.File {
	return catalog.GenerateNight(catalog.NightSpec{TotalMB: 4, Files: 4, RowsPerMB: 200, Seed: 21})
}

// BenchmarkScatterGather measures one query through the whole distributed
// path — routing, per-shard wire encode/decode, agent execution, k-way merge
// — on a 3-shard in-process fleet with a zero-cost network model, so the
// delta vs BenchmarkSingleNode is pure sharding overhead.
func BenchmarkScatterGather(b *testing.B) {
	files := benchFiles()
	co, _, inline := buildFleet(b, files, 3, false)
	defer co.Close()
	for _, bq := range benchQueries(files) {
		q := bq.q
		b.Run(bq.name, func(b *testing.B) {
			var sink int
			inline.RunInline("bench", func(w exec.Worker) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := co.Execute(w, q, nil)
					if err != nil {
						b.Fatal(err)
					}
					sink += res.Stats.RowsReturned
				}
			})
			if b.N > 0 && sink == 0 && q.Class() != "frame" {
				b.Fatalf("benchmark returned no rows; measuring an empty path")
			}
		})
	}
}

// BenchmarkSingleNode is the same probes against one database holding the
// whole catalog — the baseline the fleet is compared to.
func BenchmarkSingleNode(b *testing.B) {
	files := benchFiles()
	oracle := buildOracle(b, files, tuning.ProductionLoading())
	for _, bq := range benchQueries(files) {
		q := bq.q
		b.Run(bq.name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				res, err := q.Run(oracle)
				if err != nil {
					b.Fatal(err)
				}
				sink += res.Stats.RowsReturned
			}
			if b.N > 0 && sink == 0 {
				b.Fatalf("benchmark returned no rows; measuring an empty path")
			}
		})
	}
}

// BenchmarkWireQueryResult measures codec cost alone: framing and decoding
// a QueryResult of the size a real cone answer produces.
func BenchmarkWireQueryResult(b *testing.B) {
	files := benchFiles()
	oracle := buildOracle(b, files, tuning.ProductionLoading())
	res, err := benchQueries(files)[0].q.Run(oracle)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Objects) == 0 {
		b.Fatal("cone probe returned no objects; frame would be trivial")
	}
	msg := wire.QueryResult{QueryID: 1, Stats: res.Stats, Objects: res.Objects, Bins: res.Bins}
	buf := wire.Append(nil, msg)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame := wire.Append(buf[:0], msg)
		if _, _, err := wire.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
