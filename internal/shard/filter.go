package shard

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
	"skyloader/internal/relstore"
)

// objField holds the OBJ-layout geometry needed to place a record on a
// shard: the ra/dec field positions and the schema precision those fields
// are rounded to before the transformer computes the htmid.  Rounding first
// is load-bearing: an object a hair's breadth past a shard boundary can be
// rounded across it, and the shard decision must match the htmid the
// transformer will store.
type objField struct {
	raIdx, decIdx   int
	raPrec, decPrec int
	idIdx           int // object_id position in OBJ records
	childIdx        int // object_id position in child records (FNG/OAP/SHP/FLG)
}

var objFieldOnce sync.Once
var objFields objField

func objLayout() objField {
	objFieldOnce.Do(func() {
		layout, _ := catalog.LayoutFor(catalog.TagOBJ)
		f := objField{raIdx: -1, decIdx: -1, idIdx: -1, childIdx: 1}
		for i, name := range layout.Fields {
			switch name {
			case "ra":
				f.raIdx = i
			case "dec":
				f.decIdx = i
			case "object_id":
				f.idIdx = i
			}
		}
		ts := catalog.NewSchema().Table(catalog.TObjects)
		f.raPrec = ts.Columns[ts.ColumnIndex("ra")].Precision
		f.decPrec = ts.Columns[ts.ColumnIndex("dec")].Precision
		objFields = f
	})
	return objFields
}

// objectTrixel resolves an OBJ record to its depth-DefaultDepth trixel id,
// replicating the transformer's pipeline exactly: trim, parse, round to the
// schema precision, bounds-check, then htm.Lookup.  ok is false when the
// position cannot be resolved (malformed or out-of-sphere) — such rows are
// routed to the file's home shard, where loading them reproduces the
// single-node error path (skipped row or check-constraint rejection) exactly
// once across the fleet.
func objectTrixel(rec catalog.Record) (int64, bool) {
	f := objLayout()
	ra, ok1 := parseRounded(rec.Fields[f.raIdx], f.raPrec)
	dec, ok2 := parseRounded(rec.Fields[f.decIdx], f.decPrec)
	if !ok1 || !ok2 {
		return 0, false
	}
	if !(ra >= 0 && ra <= 360 && dec >= -90 && dec <= 90) {
		return 0, false
	}
	id, err := htm.Lookup(ra, dec, htm.DefaultDepth)
	if err != nil {
		return 0, false
	}
	return id, true
}

func parseRounded(raw string, prec int) (float64, bool) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	if prec > 0 {
		v = relstore.RoundTo(v, prec)
	}
	return v, true
}

// childTag reports whether records with this tag hang off an object row and
// must follow it to its shard.
func childTag(tag catalog.Tag) bool {
	switch tag {
	case catalog.TagFNG, catalog.TagOAP, catalog.TagSHP, catalog.TagFLG:
		return true
	}
	return false
}

// filterRecords returns the subset of a file's records one shard should
// load: OBJ rows whose trixel falls in rng (plus unresolvable rows on the
// home shard), their children, and every non-object record (frames,
// observations, calibration — duplicated to each overlapping shard so
// foreign keys resolve locally).  Original record order is preserved.
func filterRecords(records []catalog.Record, rng htm.Range, home bool) []catalog.Record {
	f := objLayout()
	kept := make(map[string]bool)
	for _, rec := range records {
		if rec.Tag != catalog.TagOBJ {
			continue
		}
		keep := home
		if id, ok := objectTrixel(rec); ok {
			keep = id >= rng.Lo && id <= rng.Hi
		}
		if keep {
			kept[strings.TrimSpace(rec.Fields[f.idIdx])] = true
		}
	}
	out := make([]catalog.Record, 0, len(records))
	for _, rec := range records {
		switch {
		case rec.Tag == catalog.TagOBJ:
			if !kept[strings.TrimSpace(rec.Fields[f.idIdx])] {
				continue
			}
		case childTag(rec.Tag):
			if len(rec.Fields) <= f.childIdx || !kept[strings.TrimSpace(rec.Fields[f.childIdx])] {
				continue
			}
		}
		out = append(out, rec)
	}
	return out
}

// fileOwners returns the shard indices that must receive a file: every
// shard owning at least one of its object trixels, plus the home shard
// (owner of the footprint centre), which also absorbs rows whose position
// cannot be resolved.
func fileOwners(pm *PartitionMap, f *catalog.File) (targets []int, home int) {
	home = pm.Owner(fileCenterTrixel(f))
	seen := make(map[int]bool)
	seen[home] = true
	for _, rec := range f.Records {
		if rec.Tag != catalog.TagOBJ {
			continue
		}
		if id, ok := objectTrixel(rec); ok {
			seen[pm.Owner(id)] = true
		}
	}
	targets = make([]int, 0, len(seen))
	for s := range seen {
		targets = append(targets, s)
	}
	sort.Ints(targets)
	return targets, home
}
