package shard

import (
	"fmt"
	"io"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/serve"
)

// SimConfig describes one deterministic DES shard topology: N in-process
// agents behind the priced in-memory transport, a generated observation
// night, and a Zipf query trace.  The same config always produces the same
// SimReport, so 100-node topologies the test host cannot run for real are
// still comparable run to run.
type SimConfig struct {
	Shards    int
	Seed      int64
	SizeMB    float64
	Files     int
	RowsPerMB int
	Queries   int
	ConeFrac  float64
	// RatePerSec is the Poisson arrival rate of the query phase (0 picks a
	// rate that spans the trace over roughly the load window).
	RatePerSec float64
	Net        NetModel
	// Deferred drives a fleet-wide BeginLoad/Seal window around the load.
	Deferred bool
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.SizeMB <= 0 {
		c.SizeMB = 4
	}
	if c.Files <= 0 {
		c.Files = c.Shards
		if c.Files < 4 {
			c.Files = 4
		}
	}
	if c.RowsPerMB <= 0 {
		c.RowsPerMB = 200
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.ConeFrac == 0 {
		c.ConeFrac = 0.5
	}
	if c.Net == (NetModel{}) {
		c.Net = NetModel{Latency: 200 * time.Microsecond, BytesPerSec: 1 << 30}
	}
	return c
}

// ShardSimStats is one shard's slice of a SimReport.
type ShardSimStats struct {
	Rows     int64
	Requests int64
}

// SimReport is the deterministic outcome of one DES topology run.
type SimReport struct {
	Config       SimConfig
	RowsLoaded   int64
	LoadElapsed  time.Duration
	TotalElapsed time.Duration
	Queries      int
	Errors       int
	FanoutTotal  int64
	GatherP50    time.Duration
	GatherP99    time.Duration
	GatherMax    time.Duration
	BytesSent    int64
	BytesRecv    int64
	PerShard     []ShardSimStats
}

// RunSim executes one deterministic shard topology on the DES kernel.
func RunSim(cfg SimConfig) (SimReport, error) {
	cfg = cfg.withDefaults()
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB:   cfg.SizeMB,
		Files:     cfg.Files,
		RowsPerMB: cfg.RowsPerMB,
		Seed:      cfg.Seed,
	})
	kernel := des.NewKernel(cfg.Seed)
	sched := exec.NewDES(kernel)

	agents := make([]*Agent, cfg.Shards)
	clients := make([]Client, cfg.Shards)
	agentCfg := DefaultAgentConfig()
	if cfg.Deferred {
		agentCfg.Profile.DeferredIndexBuild = true
	}
	for i := range agents {
		a, err := NewAgent(sched, agentCfg)
		if err != nil {
			return SimReport{}, err
		}
		agents[i] = a
		clients[i] = NewMemClient(sched, a, cfg.Net)
	}
	pm, err := PartitionFromFiles(files, cfg.Shards)
	if err != nil {
		return SimReport{}, err
	}
	co, err := New(sched, pm, clients, Config{Deferred: cfg.Deferred})
	if err != nil {
		return SimReport{}, err
	}

	objects := int64(cfg.SizeMB*float64(cfg.RowsPerMB)) / 8 / int64(len(files))
	if objects < 64 {
		objects = 64
	}
	rate := cfg.RatePerSec
	if rate <= 0 {
		window := cfg.SizeMB / 2
		if window < 1 {
			window = 1
		}
		rate = float64(cfg.Queries) / window
	}
	trace := serve.GenTrace(serve.TraceSpec{
		Queries:    cfg.Queries,
		Seed:       cfg.Seed + 1000,
		ConeFrac:   cfg.ConeFrac,
		Objects:    objects,
		IDBase:     100_000_000,
		Frames:     objects / 12,
		RatePerSec: rate,
	}.WithFootprint(files))

	rep := SimReport{Config: cfg, Queries: len(trace), PerShard: make([]ShardSimStats, cfg.Shards)}
	var driverErr error
	sched.Spawn("sim-driver", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			driverErr = err
			return
		}
		load, err := co.LoadFiles(w, files)
		if err != nil {
			driverErr = err
			return
		}
		rep.RowsLoaded = load.RowsLoaded
		rep.LoadElapsed = load.Elapsed
		for i, r := range trace {
			r := r
			sched.SpawnAt(r.Arrival, fmt.Sprintf("query-%d", i), func(qw exec.Worker) {
				if _, err := co.Execute(qw, r.Query, nil); err != nil {
					rep.Errors++ // DES single-runner: plain increment is safe
				}
			})
		}
	})
	rep.TotalElapsed = sched.Run()
	if driverErr != nil {
		return SimReport{}, driverErr
	}

	snap := co.Snapshot()
	for _, n := range snap.FanoutByClass {
		rep.FanoutTotal += n
	}
	rep.GatherP50 = snap.Gather.P50
	rep.GatherP99 = snap.Gather.P99
	rep.GatherMax = snap.Gather.Max
	rep.BytesSent = snap.BytesSent
	rep.BytesRecv = snap.BytesReceived
	for s := range agents {
		rep.PerShard[s] = ShardSimStats{
			Rows:     agents[s].DB().TotalRows(),
			Requests: snap.ShardRequests[s],
		}
	}
	return rep, nil
}

// Render writes the report as a fixed-order text table.  Two runs of the
// same config must render byte-identically — the determinism contract
// `skyshard -sim` verifies.
func (r SimReport) Render(w io.Writer) {
	fmt.Fprintf(w, "shard sim: %d shards, %d files, %.1f MB, seed %d\n",
		r.Config.Shards, r.Config.Files, r.Config.SizeMB, r.Config.Seed)
	fmt.Fprintf(w, "  load:  %d rows in %v (virtual)\n", r.RowsLoaded, r.LoadElapsed)
	fmt.Fprintf(w, "  serve: %d queries, %d errors, fan-out %d calls, makespan %v\n",
		r.Queries, r.Errors, r.FanoutTotal, r.TotalElapsed)
	fmt.Fprintf(w, "  gather: p50 %v  p99 %v  max %v\n", r.GatherP50, r.GatherP99, r.GatherMax)
	fmt.Fprintf(w, "  wire: %d B sent, %d B received\n", r.BytesSent, r.BytesRecv)
	for s, st := range r.PerShard {
		fmt.Fprintf(w, "  shard %3d: %7d rows  %6d requests\n", s, st.Rows, st.Requests)
	}
}
