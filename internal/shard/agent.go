package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/exec"
	"skyloader/internal/htm"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/shard/wire"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// AgentConfig controls one shard agent.
type AgentConfig struct {
	// Profile is the tuning profile of the agent's database.
	Profile tuning.Profile
	// Loader is the bulk-load configuration used for LoadTasks.
	Loader core.Config
	// Cost models the per-query CPU charged against the agent's worker
	// (virtual time under DES; a no-op under plain realtime).
	Cost serve.CostModel
	// DBOptions are extra relstore options applied after the profile's.
	DBOptions []relstore.Option
}

// DefaultAgentConfig mirrors the single-node loading setup: the paper's
// production-loading profile and the standard batch parameters.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		Profile: tuning.ProductionLoading(),
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
		Cost:    serve.DefaultCostModel(),
	}
}

// Agent owns one shard: a private relstore.DB holding the rows of one
// contiguous trixel range, fed through the same sqlbatch/core bulk-load path
// the single-node system uses.  The agent is the DB's single owner — every
// access arrives as a wire message through Handle; nothing else touches the
// database.
type Agent struct {
	sched exec.Scheduler
	cfg   AgentConfig
	db    *relstore.DB
	srv   *sqlbatch.Server

	// loadMu serializes load tasks (queries run concurrently against the
	// DB's own synchronization).
	loadMu   sync.Mutex
	loadOpen bool

	// identity, assigned by Hello.
	idMu     sync.Mutex
	shardID  uint32
	rng      htm.Range
	deferred bool
	hello    bool

	rowsLoaded    atomic.Int64
	queriesServed atomic.Int64
}

// NewAgent opens a fresh shard database (schema + reference rows + profile)
// on the scheduler.  The agent has no identity until it receives Hello.
func NewAgent(sched exec.Scheduler, cfg AgentConfig) (*Agent, error) {
	db, err := relstore.Open(catalog.NewSchema(), append(cfg.Profile.Options(), cfg.DBOptions...)...)
	if err != nil {
		return nil, fmt.Errorf("shard: open agent db: %w", err)
	}
	txn, err := db.Begin()
	if err != nil {
		return nil, err
	}
	if err := catalog.SeedReference(txn, 32); err != nil {
		return nil, err
	}
	if _, err := txn.Commit(); err != nil {
		return nil, err
	}
	if err := cfg.Profile.Apply(db); err != nil {
		return nil, err
	}
	return &Agent{
		sched: sched,
		cfg:   cfg,
		db:    db,
		srv:   sqlbatch.NewServerOn(sched, db, cfg.Profile.ServerConfig(), sqlbatch.DefaultCostModel()),
	}, nil
}

// DB exposes the agent's database for verification in tests; production
// code must never reach it (the agent is the single owner).
func (a *Agent) DB() *relstore.DB { return a.db }

// ShardID returns the identity assigned by Hello.
func (a *Agent) ShardID() uint32 {
	a.idMu.Lock()
	defer a.idMu.Unlock()
	return a.shardID
}

// Ready reports whether this shard can serve: identity assigned, no load
// window open, and the DB's indexes ready (false while loading under the
// deferred policy, replaying a WAL, or mid-Seal).
func (a *Agent) Ready() bool {
	a.idMu.Lock()
	hello := a.hello
	a.idMu.Unlock()
	a.loadMu.Lock()
	open := a.loadOpen
	a.loadMu.Unlock()
	return hello && !open && a.db.Ready()
}

// Handle processes one coordinator message on the given worker and returns
// the reply.  It is the agent's entire surface: transports differ only in
// how bytes reach it.
func (a *Agent) Handle(w exec.Worker, m wire.Msg) wire.Msg {
	switch t := m.(type) {
	case wire.Hello:
		return a.handleHello(t)
	case wire.LoadTask:
		return a.handleLoad(w, t)
	case wire.Query:
		return a.handleQuery(w, t)
	case wire.Stats:
		return a.statsReply()
	default:
		return wire.QueryResult{Err: fmt.Sprintf("shard: unexpected message type 0x%02x", m.Type())}
	}
}

func (a *Agent) handleHello(h wire.Hello) wire.Msg {
	a.idMu.Lock()
	a.shardID = h.ShardID
	a.rng = htm.Range{Lo: h.RangeLo, Hi: h.RangeHi}
	a.deferred = h.Deferred
	a.hello = true
	a.idMu.Unlock()
	if h.Deferred {
		a.loadMu.Lock()
		if !a.loadOpen {
			if err := a.srv.BeginLoad(); err != nil && !errors.Is(err, relstore.ErrLoadPhaseActive) {
				a.loadMu.Unlock()
				return wire.Ready{ShardID: h.ShardID, Ready: false, Rows: a.db.TotalRows()}
			}
			a.loadOpen = true
		}
		a.loadMu.Unlock()
	}
	return wire.Ready{ShardID: h.ShardID, Ready: a.Ready(), Rows: a.db.TotalRows()}
}

func (a *Agent) handleLoad(w exec.Worker, t wire.LoadTask) wire.Msg {
	a.loadMu.Lock()
	defer a.loadMu.Unlock()
	res := wire.LoadResult{TaskID: t.TaskID, ShardID: a.ShardID()}
	if t.Seal {
		if a.loadOpen {
			if _, err := a.srv.Seal(w); err != nil {
				res.Err = err.Error()
				return res
			}
			a.loadOpen = false
		}
		return res
	}
	f, skipped, err := a.fileFromTask(t)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	before := a.db.TotalRows()
	conn := a.srv.ConnectWorker(w)
	loader, err := core.NewLoader(conn, a.cfg.Loader)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := loader.LoadFile(f); err != nil {
		res.Err = err.Error()
		return res
	}
	loaded := a.db.TotalRows() - before
	a.rowsLoaded.Add(loaded)
	res.RowsLoaded = loaded
	res.RowsSkipped = int64(skipped)
	return res
}

// fileFromTask parses the wire lines back into records and keeps only this
// shard's slice of the file.  skipped counts records filtered to other
// shards (not parse errors — those reproduce the single-node error path on
// the home shard).
func (a *Agent) fileFromTask(t wire.LoadTask) (*catalog.File, int, error) {
	a.idMu.Lock()
	rng := a.rng
	hello := a.hello
	a.idMu.Unlock()
	if !hello {
		return nil, 0, fmt.Errorf("shard: load task before Hello")
	}
	records := make([]catalog.Record, 0, len(t.Lines))
	for i, line := range t.Lines {
		rec, err := catalog.ParseLine(line, i+1)
		if err != nil {
			if errors.Is(err, catalog.ErrSkipLine) {
				continue
			}
			// Unparseable lines cannot be routed; the home shard keeps the
			// single-node behaviour of skipping them during load.
			continue
		}
		records = append(records, rec)
	}
	filtered := filterRecords(records, rng, t.Home)
	return &catalog.File{
		Name:         t.Name,
		Records:      filtered,
		RABase:       t.RABase,
		DecBase:      t.DecBase,
		NominalBytes: t.NominalBytes,
	}, len(records) - len(filtered), nil
}

func (a *Agent) handleQuery(w exec.Worker, q wire.Query) wire.Msg {
	res := wire.QueryResult{QueryID: q.QueryID}
	query, err := q.ToQuery()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	var qres queries.Result
	var runErr error
	_, _, snapErr := a.db.SnapshotRead(query.Table(), func() error {
		qres, runErr = query.Run(a.db)
		return runErr
	})
	if snapErr != nil {
		res.Err = snapErr.Error()
		return res
	}
	a.queriesServed.Add(1)
	w.Sleep(a.cfg.Cost.QueryCost(qres.Stats))
	res.Stats = qres.Stats
	res.Objects = qres.Objects
	res.Bins = qres.Bins
	return res
}

func (a *Agent) statsReply() wire.Msg {
	return wire.Stats{
		ShardID:       a.ShardID(),
		Ready:         a.Ready(),
		Rows:          a.db.TotalRows(),
		RowsLoaded:    a.rowsLoaded.Load(),
		QueriesServed: a.queriesServed.Load(),
	}
}
