package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/queries"
	"skyloader/internal/shard/wire"
	"skyloader/internal/trace"
)

// Config controls a coordinator.
type Config struct {
	// Deferred drives an explicit BeginLoad/Seal window on every agent
	// around LoadFiles (the Figure 8 drop-indexes-while-loading lever,
	// fleet-wide).
	Deferred bool
}

// dispatch records one file handed to one shard, so a restarted shard can
// be replayed from the coordinator's copy of the catalog.
type dispatch struct {
	file *catalog.File
	home bool
}

// Coordinator fronts a fleet of shard agents: it owns the partition map,
// hands catalog files to the shards whose trixel ranges they overlap, and
// serves queries by scattering to the owning shards and merging the sorted
// partial results.  It never reads a shard's rows directly — all state
// flows through wire messages.
type Coordinator struct {
	sched exec.Scheduler
	pm    *PartitionMap
	cfg   Config

	mu      sync.Mutex
	clients []Client
	plans   [][]dispatch // per-shard replay log

	queryID atomic.Uint64
	taskID  atomic.Uint64

	// metrics
	queriesTotal  atomic.Int64
	queryErrors   atomic.Int64
	fanoutByClass sync.Map // class string -> *atomic.Int64
	shardRequests []atomic.Int64
	shardLoads    []atomic.Int64
	gather        *metrics.Histogram
}

// New creates a coordinator over one client per shard.  len(clients) must
// equal pm.Shards().
func New(sched exec.Scheduler, pm *PartitionMap, clients []Client, cfg Config) (*Coordinator, error) {
	if len(clients) != pm.Shards() {
		return nil, fmt.Errorf("shard: %d clients for %d shards", len(clients), pm.Shards())
	}
	return &Coordinator{
		sched:         sched,
		pm:            pm,
		cfg:           cfg,
		clients:       clients,
		plans:         make([][]dispatch, pm.Shards()),
		shardRequests: make([]atomic.Int64, pm.Shards()),
		shardLoads:    make([]atomic.Int64, pm.Shards()),
		gather:        metrics.NewHistogram(),
	}, nil
}

// Partition returns the coordinator's partition map.
func (c *Coordinator) Partition() *PartitionMap { return c.pm }

// Scheduler returns the scheduler the coordinator fans out on.
func (c *Coordinator) Scheduler() exec.Scheduler { return c.sched }

// client returns the current client for shard s (swappable by RestoreShard).
func (c *Coordinator) client(s int) Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[s]
}

// Hello introduces the coordinator to every shard, assigning identities and
// trixel ranges.  It must run before LoadFiles or Execute.
func (c *Coordinator) Hello(w exec.Worker) error {
	errs := c.fanout(w, allShards(c.pm.Shards()), func(fw exec.Worker, s int) error {
		return c.hello(fw, s)
	})
	return firstError(errs)
}

func (c *Coordinator) hello(w exec.Worker, s int) error {
	rng := c.pm.Range(s)
	reply, err := c.client(s).Call(w, wire.Hello{
		ShardID:  uint32(s),
		Shards:   uint32(c.pm.Shards()),
		RangeLo:  rng.Lo,
		RangeHi:  rng.Hi,
		Deferred: c.cfg.Deferred,
	})
	if err != nil {
		return fmt.Errorf("shard %d: hello: %w", s, err)
	}
	if _, ok := reply.(wire.Ready); !ok {
		return fmt.Errorf("shard %d: hello reply type 0x%02x", s, reply.Type())
	}
	return nil
}

// LoadReport summarizes a fleet load.
type LoadReport struct {
	Files       int
	Tasks       int
	RowsLoaded  int64
	RowsSkipped int64
	Elapsed     time.Duration
}

// LoadFiles distributes catalog files across the fleet: each file goes to
// every shard owning at least one of its object trixels (plus its home
// shard), agents filter to their range, and — under Deferred — a final Seal
// task closes every shard's load window.  Shards load their queues in
// parallel; files within one shard's queue load in order.
func (c *Coordinator) LoadFiles(w exec.Worker, files []*catalog.File) (LoadReport, error) {
	start := w.Now()
	queues := make([][]dispatch, c.pm.Shards())
	for _, f := range files {
		targets, home := fileOwners(c.pm, f)
		for _, s := range targets {
			queues[s] = append(queues[s], dispatch{file: f, home: s == home})
		}
	}
	c.mu.Lock()
	for s := range queues {
		c.plans[s] = append(c.plans[s], queues[s]...)
	}
	c.mu.Unlock()

	rep := LoadReport{Files: len(files)}
	var repMu sync.Mutex
	errs := c.fanout(w, allShards(c.pm.Shards()), func(fw exec.Worker, s int) error {
		loaded, skipped, tasks, err := c.loadQueue(fw, s, queues[s], c.cfg.Deferred)
		repMu.Lock()
		rep.RowsLoaded += loaded
		rep.RowsSkipped += skipped
		rep.Tasks += tasks
		repMu.Unlock()
		return err
	})
	rep.Elapsed = w.Now() - start
	return rep, firstError(errs)
}

// loadQueue sends one shard its file queue (and closing Seal) in order.
func (c *Coordinator) loadQueue(w exec.Worker, s int, queue []dispatch, seal bool) (loaded, skipped int64, tasks int, err error) {
	for _, d := range queue {
		res, err := c.sendLoad(w, s, d)
		if err != nil {
			return loaded, skipped, tasks, err
		}
		tasks++
		loaded += res.RowsLoaded
		skipped += res.RowsSkipped
	}
	if seal {
		if _, err := c.client(s).Call(w, wire.LoadTask{TaskID: c.taskID.Add(1), Seal: true}); err != nil {
			return loaded, skipped, tasks, fmt.Errorf("shard %d: seal: %w", s, err)
		}
		tasks++
	}
	return loaded, skipped, tasks, nil
}

func (c *Coordinator) sendLoad(w exec.Worker, s int, d dispatch) (wire.LoadResult, error) {
	f := d.file
	lines := make([]string, len(f.Records))
	for i, rec := range f.Records {
		lines[i] = rec.Format()
	}
	task := wire.LoadTask{
		TaskID:       c.taskID.Add(1),
		Home:         d.home,
		Name:         f.Name,
		RABase:       f.RABase,
		DecBase:      f.DecBase,
		NominalBytes: f.NominalBytes,
		Lines:        lines,
	}
	reply, err := c.client(s).Call(w, task)
	if err != nil {
		return wire.LoadResult{}, fmt.Errorf("shard %d: load %s: %w", s, f.Name, err)
	}
	res, ok := reply.(wire.LoadResult)
	if !ok {
		return wire.LoadResult{}, fmt.Errorf("shard %d: load reply type 0x%02x", s, reply.Type())
	}
	if res.Err != "" {
		return wire.LoadResult{}, fmt.Errorf("shard %d: load %s: %s", s, f.Name, res.Err)
	}
	c.shardLoads[s].Add(1)
	return res, nil
}

// Targets returns the scatter set for a query: cone searches go only to
// shards whose ranges overlap the cone cover; everything else (point
// lookups could be routed narrower only with an object-id→trixel map the
// coordinator deliberately does not keep) fans out to all shards.
func (c *Coordinator) Targets(q queries.Query) ([]int, error) {
	if cone, ok := q.(queries.Cone); ok {
		return c.pm.ConeTargets(cone.RA, cone.Dec, cone.RadiusDeg)
	}
	return allShards(c.pm.Shards()), nil
}

// Execute scatters one query to its owning shards, gathers and merges the
// sorted partial results, and returns an answer byte-identical to the
// single-node oracle.  tr (nil-safe) gets cross-node StageScatter and
// StageGather spans.
func (c *Coordinator) Execute(w exec.Worker, q queries.Query, tr *trace.Req) (queries.Result, error) {
	targets, err := c.Targets(q)
	if err != nil {
		return queries.Result{}, err
	}
	c.queriesTotal.Add(1)
	c.classFanout(q.Class()).Add(int64(len(targets)))

	id := c.queryID.Add(1)
	wq, err := wire.FromQuery(id, q)
	if err != nil {
		return queries.Result{}, err
	}

	replies := make([]wire.QueryResult, len(targets))
	scatterStart := w.Now()
	errs := c.fanout(w, targets, func(fw exec.Worker, s int) error {
		c.shardRequests[s].Add(1)
		reply, err := c.client(s).Call(fw, wq)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		res, ok := reply.(wire.QueryResult)
		if !ok {
			return fmt.Errorf("shard %d: query reply type 0x%02x", s, reply.Type())
		}
		if res.Err != "" {
			return fmt.Errorf("shard %d: %s", s, res.Err)
		}
		for i, t := range targets {
			if t == s {
				replies[i] = res
			}
		}
		return nil
	})
	tr.Mark(trace.StageScatter, w.Now())
	if err := firstError(errs); err != nil {
		c.queryErrors.Add(1)
		return queries.Result{}, err
	}

	merged := c.merge(q, replies)
	now := w.Now()
	tr.Mark(trace.StageGather, now)
	c.gather.Observe(now - scatterStart)
	return merged, nil
}

// merge combines per-shard partial results into the single-node answer.
func (c *Coordinator) merge(q queries.Query, replies []wire.QueryResult) queries.Result {
	var out queries.Result
	for _, r := range replies {
		out.Stats.RowsExamined += r.Stats.RowsExamined
		out.Stats.TrixelsScanned += r.Stats.TrixelsScanned
		out.Stats.UsedIndex = out.Stats.UsedIndex || r.Stats.UsedIndex
	}
	switch t := q.(type) {
	case queries.MagHistogram:
		out.Bins = mergeBins(t.BinWidth, replies)
		// Histogram semantics: RowsReturned counts bins, as on the
		// single node.
		out.Stats.RowsReturned = len(out.Bins)
	default:
		out.Objects = mergeObjects(replies)
		out.Stats.RowsReturned = len(out.Objects)
	}
	return out
}

// mergeObjects k-way merges per-shard object lists (each sorted by object
// id) into one sorted list.  Shards are row-disjoint by construction, but
// duplicates are still dropped defensively so a misrouted row can never
// fabricate output the oracle would not produce.
func mergeObjects(replies []wire.QueryResult) []queries.Object {
	total := 0
	for _, r := range replies {
		total += len(r.Objects)
	}
	if total == 0 {
		return nil
	}
	out := make([]queries.Object, 0, total)
	idx := make([]int, len(replies))
	for {
		best := -1
		for i, r := range replies {
			if idx[i] >= len(r.Objects) {
				continue
			}
			if best < 0 || r.Objects[idx[i]].ObjectID < replies[best].Objects[idx[best]].ObjectID {
				best = i
			}
		}
		if best < 0 {
			break
		}
		o := replies[best].Objects[idx[best]]
		idx[best]++
		if len(out) > 0 && out[len(out)-1].ObjectID == o.ObjectID {
			continue
		}
		out = append(out, o)
	}
	return out
}

// mergeBins sums per-shard histogram bins keyed by bin index and rebuilds
// the contiguous low/high edges exactly as the single-node query does.
func mergeBins(binWidth float64, replies []wire.QueryResult) []queries.MagnitudeBin {
	counts := make(map[int64]int64)
	for _, r := range replies {
		for _, b := range r.Bins {
			k := int64(math.Round(b.Low / binWidth))
			counts[k] += b.Count
		}
	}
	if len(counts) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]queries.MagnitudeBin, 0, len(keys))
	for _, k := range keys {
		out = append(out, queries.MagnitudeBin{
			Low:   float64(k) * binWidth,
			High:  float64(k+1) * binWidth,
			Count: counts[k],
		})
	}
	return out
}

// Ready probes every shard and reports whether the whole fleet can serve.
// One lagging agent (replaying a WAL, mid-Seal, still loading) keeps the
// fleet unready — the /healthz aggregation contract.
func (c *Coordinator) Ready(w exec.Worker) bool {
	stats, err := c.ShardStats(w)
	if err != nil {
		return false
	}
	for _, st := range stats {
		if !st.Ready {
			return false
		}
	}
	return true
}

// ShardStats probes every shard for its current stats.
func (c *Coordinator) ShardStats(w exec.Worker) ([]wire.Stats, error) {
	out := make([]wire.Stats, c.pm.Shards())
	errs := c.fanout(w, allShards(c.pm.Shards()), func(fw exec.Worker, s int) error {
		reply, err := c.client(s).Call(fw, wire.Stats{})
		if err != nil {
			return fmt.Errorf("shard %d: stats: %w", s, err)
		}
		st, ok := reply.(wire.Stats)
		if !ok {
			return fmt.Errorf("shard %d: stats reply type 0x%02x", s, reply.Type())
		}
		out[s] = st
		return nil
	})
	return out, firstError(errs)
}

// RestoreShard swaps in a replacement client for shard s (a restarted or
// re-dialed agent), re-introduces it with Hello, and replays every file the
// shard was originally dealt.  The old client is closed.
func (c *Coordinator) RestoreShard(w exec.Worker, s int, replacement Client) error {
	c.mu.Lock()
	old := c.clients[s]
	c.clients[s] = replacement
	queue := append([]dispatch(nil), c.plans[s]...)
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if err := c.hello(w, s); err != nil {
		return err
	}
	_, _, _, err := c.loadQueue(w, s, queue, c.cfg.Deferred)
	return err
}

// Close closes every client connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanout runs fn once per target shard, in parallel, and returns per-target
// errors.  Under DES it spawns kernel processes and joins them with
// signals; under realtime it requires the scheduler's InlineRunner and uses
// plain goroutines.  Both paths block the calling worker until every branch
// finishes.
func (c *Coordinator) fanout(w exec.Worker, targets []int, fn func(exec.Worker, int) error) []error {
	errs := make([]error, len(targets))
	if len(targets) == 0 {
		return errs
	}
	if len(targets) == 1 {
		errs[0] = fn(w, targets[0])
		return errs
	}
	if k := exec.KernelOf(c.sched); k != nil {
		self := exec.ProcOf(w)
		sigs := make([]*des.Signal, len(targets))
		for i, s := range targets {
			i, s := i, s
			sigs[i] = des.NewSignal(k)
			c.sched.Spawn(fmt.Sprintf("scatter-%d", s), func(fw exec.Worker) {
				errs[i] = fn(fw, s)
				sigs[i].Fire(nil)
			})
		}
		for _, sig := range sigs {
			sig.Wait(self)
		}
		return errs
	}
	inline, ok := c.sched.(exec.InlineRunner)
	if !ok {
		// No parallel capability: degrade to sequential calls.
		for i, s := range targets {
			errs[i] = fn(w, s)
		}
		return errs
	}
	var wg sync.WaitGroup
	for i, s := range targets {
		i, s := i, s
		wg.Add(1)
		go inline.RunInline(fmt.Sprintf("scatter-%d", s), func(fw exec.Worker) {
			defer wg.Done()
			errs[i] = fn(fw, s)
		})
	}
	wg.Wait()
	return errs
}

// Snapshot is the coordinator's metrics snapshot for /metrics exposition.
type Snapshot struct {
	Shards        int
	Queries       int64
	QueryErrors   int64
	FanoutByClass map[string]int64
	ShardRequests []int64
	ShardLoads    []int64
	Gather        metrics.HistogramSummary
	GatherHist    *metrics.Histogram
	BytesSent     int64
	BytesReceived int64
}

// Snapshot captures the coordinator-side metrics.
func (c *Coordinator) Snapshot() Snapshot {
	snap := Snapshot{
		Shards:        c.pm.Shards(),
		Queries:       c.queriesTotal.Load(),
		QueryErrors:   c.queryErrors.Load(),
		FanoutByClass: make(map[string]int64),
		ShardRequests: make([]int64, c.pm.Shards()),
		ShardLoads:    make([]int64, c.pm.Shards()),
	}
	c.fanoutByClass.Range(func(k, v any) bool {
		snap.FanoutByClass[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	for s := 0; s < c.pm.Shards(); s++ {
		snap.ShardRequests[s] = c.shardRequests[s].Load()
		snap.ShardLoads[s] = c.shardLoads[s].Load()
	}
	snap.Gather = c.gather.Summary()
	snap.GatherHist = c.gather
	c.mu.Lock()
	for _, cl := range c.clients {
		s, r := cl.Bytes()
		snap.BytesSent += s
		snap.BytesReceived += r
	}
	c.mu.Unlock()
	return snap
}

func (c *Coordinator) classFanout(class string) *atomic.Int64 {
	if v, ok := c.fanoutByClass.Load(class); ok {
		return v.(*atomic.Int64)
	}
	v, _ := c.fanoutByClass.LoadOrStore(class, &atomic.Int64{})
	return v.(*atomic.Int64)
}

func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
