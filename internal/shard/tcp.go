package shard

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"skyloader/internal/exec"
	"skyloader/internal/shard/wire"
)

// AgentServer exposes one agent over TCP: each accepted connection carries
// a sequence of framed requests answered in order.  Handlers run through the
// scheduler's InlineRunner so agent work enters the same resource
// discipline as everything else (which also means AgentServer requires the
// realtime engine — DES topologies use the in-process transport instead).
type AgentServer struct {
	agent  *Agent
	inline exec.InlineRunner
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeAgent starts serving the agent on addr (host:port; port 0 picks a
// free one).  The scheduler must implement exec.InlineRunner.
func ServeAgent(agent *Agent, sched exec.Scheduler, addr string) (*AgentServer, error) {
	inline, ok := sched.(exec.InlineRunner)
	if !ok {
		return nil, fmt.Errorf("shard: scheduler %T cannot run inline workers; TCP agents need the realtime engine", sched)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	s := &AgentServer{agent: agent, inline: inline, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *AgentServer) Addr() net.Addr { return s.ln.Addr() }

// Agent returns the served agent.
func (s *AgentServer) Agent() *Agent { return s.agent }

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *AgentServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		msg, _, err := wire.ReadMsg(br)
		if err != nil {
			return
		}
		var reply wire.Msg
		s.inline.RunInline("shard-agent-conn", func(w exec.Worker) {
			reply = s.agent.Handle(w, msg)
		})
		if _, err := wire.WriteMsg(bw, reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting, severs every open connection, and waits for the
// handler goroutines to drain.
func (s *AgentServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// tcpClient is the coordinator side of one agent connection.  One request
// is outstanding at a time (the scatter path runs one worker per shard);
// a failed call closes the connection and the next call re-dials, so a
// restarted agent is picked up transparently.
type tcpClient struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	sent atomic.Int64
	recv atomic.Int64
	shut atomic.Bool
}

// DialShard connects to an agent server.  The initial dial is eager so
// configuration errors surface immediately; later reconnects are lazy.
func DialShard(addr string) (Client, error) {
	c := &tcpClient{addr: addr}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *tcpClient) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("shard: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

func (c *tcpClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// Call implements Client.  The worker is unused for pacing — TCP transport
// runs under the realtime engine where network time is real time.
func (c *tcpClient) Call(_ exec.Worker, m wire.Msg) (wire.Msg, error) {
	if c.shut.Load() {
		return nil, errors.New("shard: client closed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	n, err := wire.WriteMsg(c.conn, m)
	c.sent.Add(int64(n))
	if err != nil {
		c.dropConn()
		return nil, fmt.Errorf("shard: write to %s: %w", c.addr, err)
	}
	reply, rn, err := wire.ReadMsg(c.br)
	c.recv.Add(int64(rn))
	if err != nil {
		c.dropConn()
		return nil, fmt.Errorf("shard: read from %s: %w", c.addr, err)
	}
	return reply, nil
}

// Bytes implements Client.
func (c *tcpClient) Bytes() (int64, int64) { return c.sent.Load(), c.recv.Load() }

// Close implements Client.
func (c *tcpClient) Close() error {
	c.shut.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
	return nil
}
