package sqlbatch

import (
	"errors"
	"fmt"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/relstore"
)

// ErrNoTransaction is returned when a statement executes without an active
// transaction on its connection.
var ErrNoTransaction = errors.New("sqlbatch: no active transaction")

// ErrBatchEmpty is returned when ExecuteBatch is called with an empty batch.
var ErrBatchEmpty = errors.New("sqlbatch: batch is empty")

// BatchResult describes the outcome of one ExecuteBatch call.
//
// Its semantics mirror the JDBC core API the paper used: rows are applied in
// order; at the first constraint violation the batch stops, the remaining
// rows are discarded, and the batch cannot be re-applied.  The caller learns
// the index of the failing row and is responsible for repacking and resending
// the remainder (which is exactly what the paper's batch_row procedure does).
type BatchResult struct {
	// RowsInserted is the number of rows applied before the failure (all of
	// them when Err is nil).
	RowsInserted int
	// FailedIndex is the zero-based index of the failing row, or -1.
	FailedIndex int
	// Err is the constraint violation that stopped the batch, or nil.
	Err error
	// LockWaits and LongStalls count contention events charged to the call.
	LockWaits  int
	LongStalls int
	// Report is the engine's physical-work report for the call.
	Report relstore.OpReport
}

// Conn is a loader connection bound to one execution worker: a simulation
// process in DES mode, a goroutine in wall-clock mode.  A Conn must only be
// used from its worker's goroutine; separate connections are independent and
// may run concurrently against the same server.
type Conn struct {
	server *Server
	worker exec.Worker
	txn    *relstore.Txn
	closed bool

	stats ConnStats
}

// ConnStats aggregates per-connection counters.
type ConnStats struct {
	Calls        int64
	RowsInserted int64
	RowsFailed   int64
	Batches      int64
	Commits      int64
	LockWaits    int64
	LongStalls   int64
}

// Worker returns the execution worker this connection belongs to.
func (c *Conn) Worker() exec.Worker { return c.worker }

// Server returns the server this connection talks to.
func (c *Conn) Server() *Server { return c.server }

// Stats returns the per-connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// InTransaction reports whether the connection has an active transaction.
func (c *Conn) InTransaction() bool { return c.txn != nil && c.txn.Active() }

// Begin starts a transaction, waiting for a server transaction slot if the
// concurrent-transaction limit has been reached.
func (c *Conn) Begin() error {
	if c.closed {
		return fmt.Errorf("sqlbatch: connection closed")
	}
	if c.InTransaction() {
		return fmt.Errorf("sqlbatch: transaction already active")
	}
	txn, err := c.server.begin(c.worker)
	if err != nil {
		return err
	}
	c.txn = txn
	return nil
}

// Commit makes the current transaction durable.
func (c *Conn) Commit() error {
	if !c.InTransaction() {
		return ErrNoTransaction
	}
	_, err := c.server.finish(c.worker, c.txn, true)
	c.txn = nil
	if err == nil {
		c.stats.Commits++
	}
	return err
}

// Rollback abandons the current transaction.
func (c *Conn) Rollback() error {
	if !c.InTransaction() {
		return ErrNoTransaction
	}
	_, err := c.server.finish(c.worker, c.txn, false)
	c.txn = nil
	return err
}

// Close releases the connection; an active transaction is rolled back.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	if c.InTransaction() {
		if err := c.Rollback(); err != nil {
			return err
		}
	}
	c.closed = true
	return nil
}

// BeginLoad opens the engine's load phase through this connection (see
// Server.BeginLoad).  The load policy travels with the server and its
// connections — callers configure it once via relstore options or a tuning
// profile instead of passing per-call knobs.
func (c *Conn) BeginLoad() error {
	if c.closed {
		return fmt.Errorf("sqlbatch: connection closed")
	}
	return c.server.BeginLoad()
}

// Seal closes the load phase: deferred indexes are bulk-rebuilt and their
// build cost is charged to this connection's worker in virtual (or scaled
// real) time.  The connection must not hold an open transaction — Seal runs
// after every loader transaction has finished.
func (c *Conn) Seal() (relstore.SealReport, error) {
	if c.closed {
		return relstore.SealReport{}, fmt.Errorf("sqlbatch: connection closed")
	}
	if c.InTransaction() {
		return relstore.SealReport{}, fmt.Errorf("sqlbatch: seal with a transaction still active")
	}
	return c.server.Seal(c.worker)
}

// Prepare creates an insert statement for the given table and column list.
func (c *Conn) Prepare(table string, columns []string) *Stmt {
	cols := make([]string, len(columns))
	copy(cols, columns)
	return &Stmt{conn: c, table: table, columns: cols}
}

// Stmt is a prepared insert statement with an accumulating batch.
type Stmt struct {
	conn    *Conn
	table   string
	columns []string
	batch   [][]relstore.Value
}

// Table returns the destination table name.
func (s *Stmt) Table() string { return s.table }

// Columns returns the statement's column list.
func (s *Stmt) Columns() []string { return s.columns }

// BatchLen returns the number of rows currently queued in the batch.
func (s *Stmt) BatchLen() int { return len(s.batch) }

// AddBatch queues one row of values (matching the statement's column list)
// for the next ExecuteBatch call.
func (s *Stmt) AddBatch(values []relstore.Value) {
	row := make([]relstore.Value, len(values))
	copy(row, values)
	s.batch = append(s.batch, row)
}

// ClearBatch discards any queued rows.
func (s *Stmt) ClearBatch() { s.batch = nil }

// ExecuteBatch sends the queued rows to the server in one database call and
// clears the batch.  See BatchResult for the error semantics.
func (s *Stmt) ExecuteBatch() (BatchResult, error) {
	if len(s.batch) == 0 {
		return BatchResult{FailedIndex: -1}, ErrBatchEmpty
	}
	if !s.conn.InTransaction() {
		return BatchResult{FailedIndex: -1}, ErrNoTransaction
	}
	rows := s.batch
	s.batch = nil
	return s.ExecuteBatchRows(rows)
}

// ExecuteBatchRows sends rows to the server in one database call without
// staging them through AddBatch, sparing the loader's flush path one row copy
// per row: array-set buffers are stable for the life of the flush cycle, so
// they can be handed to the server by reference.  The caller must not mutate
// rows until the call returns; the engine coerces values into its own storage
// and never retains the argument.  Error semantics match ExecuteBatch.
func (s *Stmt) ExecuteBatchRows(rows [][]relstore.Value) (BatchResult, error) {
	if len(rows) == 0 {
		return BatchResult{FailedIndex: -1}, ErrBatchEmpty
	}
	if !s.conn.InTransaction() {
		return BatchResult{FailedIndex: -1}, ErrNoTransaction
	}
	res := s.conn.server.execBatch(s.conn.worker, s.conn.txn, s.table, s.columns, rows)
	s.conn.stats.Calls++
	s.conn.stats.Batches++
	s.conn.stats.RowsInserted += int64(res.RowsInserted)
	s.conn.stats.LockWaits += int64(res.LockWaits)
	s.conn.stats.LongStalls += int64(res.LongStalls)
	if res.Err != nil {
		s.conn.stats.RowsFailed++
	}
	return res, nil
}

// ExecuteSingle inserts one row in its own database call (the non-bulk
// baseline path).
func (s *Stmt) ExecuteSingle(values []relstore.Value) (BatchResult, error) {
	if !s.conn.InTransaction() {
		return BatchResult{FailedIndex: -1}, ErrNoTransaction
	}
	row := make([]relstore.Value, len(values))
	copy(row, values)
	res := s.conn.server.execBatch(s.conn.worker, s.conn.txn, s.table, s.columns, [][]relstore.Value{row})
	s.conn.stats.Calls++
	s.conn.stats.RowsInserted += int64(res.RowsInserted)
	s.conn.stats.LockWaits += int64(res.LockWaits)
	s.conn.stats.LongStalls += int64(res.LongStalls)
	if res.Err != nil {
		s.conn.stats.RowsFailed++
	}
	return res, nil
}

// ChargeClientCPU charges d of client-side (cluster node) processing time to
// the connection's worker.  The loader uses it for parse/transform/buffer
// work so that client costs and server costs share one clock; in wall-clock
// mode the charge is a no-op (real parse work takes real time instead).
func (c *Conn) ChargeClientCPU(d time.Duration) {
	c.worker.Sleep(d)
}
