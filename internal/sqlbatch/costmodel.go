// Package sqlbatch provides a JDBC-like batch loading API on top of the
// relstore engine and the discrete-event simulation kernel.
//
// The SkyLoader clients were Java programs speaking JDBC to an Oracle 10g
// server over Gigabit Ethernet.  This package reproduces the interface that
// matters to the loading algorithm — prepared statements, AddBatch,
// ExecuteBatch with stop-at-first-error semantics, explicit commit — and
// charges virtual time for the network round trips, server CPU, disk and log
// I/O, and lock waits that each call would have cost on the paper's hardware.
package sqlbatch

import (
	"time"
)

// CostModel holds the virtual-time prices of the physical work reported by
// the engine plus the client-side costs of the loading pipeline.  The default
// values are calibrated (see internal/experiments) so that the shapes of the
// paper's Figures 4-9 are reproduced; EXPERIMENTS.md documents the calibration.
type CostModel struct {
	// --- client <-> server call costs -----------------------------------

	// CallOverhead is the fixed cost of one database call: network round
	// trip, statement dispatch and server-side call setup.  Its ratio to
	// RowServerCost determines the bulk-loading speedup (paper: 7-9x at
	// batch-size 40).
	CallOverhead time.Duration
	// NetworkBytesPerSecond is the usable bandwidth between the cluster
	// nodes and the database server (Gigabit Ethernet in the paper).
	NetworkBytesPerSecond float64

	// --- server-side per-row costs ---------------------------------------

	// RowServerCost is the CPU cost of processing one inserted row
	// (parsing the bound values, constraint checks, heap insert).
	RowServerCost time.Duration
	// ConstraintCheckCost is charged per individual constraint evaluation.
	ConstraintCheckCost time.Duration
	// FKLookupCost is charged per parent-key probe.
	FKLookupCost time.Duration
	// BatchRowScalingCost is an additional per-row cost proportional to the
	// batch size (lock-hold growth, large statement parsing, undo pressure).
	// It is what makes very large batches slower and produces the optimum
	// near batch-size 40-50 in Figure 5.
	BatchRowScalingCost time.Duration
	// ErrorHandlingCost is the server-side cost of raising and reporting a
	// constraint violation for one row.
	ErrorHandlingCost time.Duration

	// --- I/O costs --------------------------------------------------------

	// PageWriteCost is charged per dirtied heap page (data RAID device).
	PageWriteCost time.Duration
	// IndexNodeCost is charged per B-tree node visited during index
	// maintenance (index RAID device).
	IndexNodeCost time.Duration
	// IndexIntColCost is charged per integer key column per B-tree node
	// visited; with IndexFloatColCost it reproduces the paper's Figure 8
	// finding that a single-integer index costs ~1.5% while a composite
	// three-float index costs ~8.5% during loading.
	IndexIntColCost time.Duration
	// IndexFloatColCost is charged per float key column per B-tree node
	// visited.
	IndexFloatColCost time.Duration
	// IndexSplitCost is charged per B-tree node split.
	IndexSplitCost time.Duration
	// IndexBuildRowCost is charged per (row, index) pair streamed into an
	// end-of-load bulk index build (DB.Seal with the deferred policy): the
	// key extraction, sort share and sequential leaf append for one row.  It
	// prices the rebuild-after-load half of Figure 8's drop-and-rebuild
	// lever; the per-node charges below reuse the same int/float column cost
	// classes as immediate maintenance, so the DES prediction and the
	// wall-clock engine answer the same question.  Bulk building touches
	// each node once total instead of O(height) nodes per row, which is why
	// deferred loading wins.
	IndexBuildRowCost time.Duration
	// LogBytesPerSecond is the sequential redo-log write bandwidth.
	LogBytesPerSecond float64
	// CacheScanCostPerPage is the database-writer cost of examining one
	// cached page during a flush (drives the §4.5.5 small-cache effect).
	CacheScanCostPerPage time.Duration

	// --- transaction costs ------------------------------------------------

	// CommitCost is the fixed cost of a commit (log force, cleanout).
	CommitCost time.Duration

	// --- lock contention (drives Figure 7) --------------------------------

	// LockConflictProbPerWriter is the probability that a batch insert hits
	// a lock conflict for each *other* transaction concurrently writing.
	LockConflictProbPerWriter float64
	// LockWaitCost is the wait incurred by a lock conflict per other active
	// writer (the conflicting batch queues behind the transactions already
	// holding locks, so waits lengthen as parallelism grows).
	LockWaitCost time.Duration
	// StallThreshold is the number of concurrently active load transactions
	// above which rare long stalls become possible (the paper saw these at
	// 6+ loaders and ran 5 in production).
	StallThreshold int
	// StallProb is the per-batch probability of a long stall for each
	// active loader beyond StallThreshold.
	StallProb float64
	// StallCost is the duration of a long stall.
	StallCost time.Duration

	// --- client-side costs (loader process on a cluster node) -------------

	// ParseRowCost is the client CPU cost of parsing one catalog row.
	ParseRowCost time.Duration
	// TransformRowCost is the client CPU cost of validation, type
	// conversion, precision adjustment, and htmid/sky-coordinate
	// computation for one row.
	TransformRowCost time.Duration
	// BufferRowCost is the client cost of appending one row to an array of
	// the array-set.
	BufferRowCost time.Duration
	// ArrayInitCost is the client cost of allocating/initializing one array
	// in the array-set at the start of a buffering cycle.
	ArrayInitCost time.Duration
	// BufferedRowOverheadBytes is the client-side memory overhead per
	// buffered row beyond its raw data size (JVM object headers, boxing,
	// array slack in the original implementation).
	BufferedRowOverheadBytes int
	// ClientMemoryBytes is the memory available to the loader process for
	// the array-set before paging sets in (the cluster nodes had 1 GB RAM;
	// the memory available to the array-set was far smaller).
	ClientMemoryBytes int64
	// PagingPenaltyPerRow is the extra client time charged per buffered row
	// multiplied by the fractional overshoot of the array-set memory over
	// ClientMemoryBytes (models the paging-rate increase that erases the
	// benefit of arrays larger than ~1000 rows in Figure 6).
	PagingPenaltyPerRow time.Duration

	// --- input staging -----------------------------------------------------

	// MassStorageBytesPerSecond is the rate at which catalog files can be
	// staged from the mass storage system to a loader node.
	MassStorageBytesPerSecond float64
}

// DefaultCostModel returns the calibrated cost model used by the experiment
// harness.  See EXPERIMENTS.md for how each constant maps onto the paper's
// figures.
func DefaultCostModel() CostModel {
	return CostModel{
		CallOverhead:          110 * time.Millisecond,
		NetworkBytesPerSecond: 90e6,

		RowServerCost:       7 * time.Millisecond,
		ConstraintCheckCost: 120 * time.Microsecond,
		FKLookupCost:        250 * time.Microsecond,
		BatchRowScalingCost: 42 * time.Microsecond,
		ErrorHandlingCost:   25 * time.Millisecond,

		PageWriteCost:        900 * time.Microsecond,
		IndexNodeCost:        25 * time.Microsecond,
		IndexIntColCost:      560 * time.Microsecond,
		IndexFloatColCost:    1100 * time.Microsecond,
		IndexSplitCost:       1200 * time.Microsecond,
		IndexBuildRowCost:    45 * time.Microsecond,
		LogBytesPerSecond:    45e6,
		CacheScanCostPerPage: 30 * time.Microsecond,

		CommitCost: 35 * time.Millisecond,

		LockConflictProbPerWriter: 0.022,
		LockWaitCost:              150 * time.Millisecond,
		StallThreshold:            6,
		StallProb:                 0.0015,
		StallCost:                 30 * time.Second,

		ParseRowCost:             350 * time.Microsecond,
		TransformRowCost:         650 * time.Microsecond,
		BufferRowCost:            90 * time.Microsecond,
		ArrayInitCost:            2 * time.Millisecond,
		BufferedRowOverheadBytes: 1900,
		ClientMemoryBytes:        4 << 20,
		PagingPenaltyPerRow:      25 * time.Millisecond,

		MassStorageBytesPerSecond: 60e6,
	}
}

// NetworkTime returns the transfer time for n bytes at the configured
// bandwidth.
func (m CostModel) NetworkTime(n int) time.Duration {
	if m.NetworkBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.NetworkBytesPerSecond * float64(time.Second))
}

// LogTime returns the time to write n redo-log bytes.
func (m CostModel) LogTime(n int) time.Duration {
	if m.LogBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.LogBytesPerSecond * float64(time.Second))
}

// StagingTime returns the time to stage n bytes from mass storage.
func (m CostModel) StagingTime(n int64) time.Duration {
	if m.MassStorageBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.MassStorageBytesPerSecond * float64(time.Second))
}
