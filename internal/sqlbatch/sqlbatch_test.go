package sqlbatch

import (
	"errors"
	"testing"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
)

// newTestServer builds a server over a freshly seeded catalog database.
func newTestServer(t *testing.T, cfg ServerConfig) (*des.Kernel, *Server) {
	t.Helper()
	k := des.NewKernel(1)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return k, NewServer(k, db, cfg, DefaultCostModel())
}

func obsValues(id int64) []relstore.Value {
	return []relstore.Value{relstore.Int(id), relstore.Int(1), relstore.Int(1), relstore.Float(53600.5), relstore.Float(120.0), relstore.Float(10.0), relstore.Float(1.2), relstore.Str("R"), relstore.Float(140.0)}
}

var obsColumns = []string{"obs_id", "run_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set", "exposure_s"}

func TestBatchInsertHappyPath(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	var res BatchResult
	var elapsed time.Duration
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		if err := conn.Begin(); err != nil {
			t.Error(err)
			return
		}
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		for i := int64(1); i <= 5; i++ {
			stmt.AddBatch(obsValues(i))
		}
		var err error
		res, err = stmt.ExecuteBatch()
		if err != nil {
			t.Error(err)
		}
		if err := conn.Commit(); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	k.Run()
	if res.Err != nil || res.RowsInserted != 5 || res.FailedIndex != -1 {
		t.Fatalf("batch result: %+v", res)
	}
	if n, _ := srv.DB().Count(catalog.TObservations); n != 5 {
		t.Fatalf("observations = %d", n)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time charged")
	}
	st := srv.Stats()
	if st.Calls != 1 || st.RowsInserted != 5 || st.Commits != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

func TestBatchStopsAtFirstError(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	var res BatchResult
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		stmt.AddBatch(obsValues(1))
		stmt.AddBatch(obsValues(2))
		stmt.AddBatch(obsValues(1)) // duplicate primary key
		stmt.AddBatch(obsValues(3)) // must NOT be applied
		res, _ = stmt.ExecuteBatch()
		_ = conn.Commit()
	})
	k.Run()
	if res.Err == nil || res.FailedIndex != 2 || res.RowsInserted != 2 {
		t.Fatalf("batch result: %+v", res)
	}
	if kind, _ := relstore.ViolationKind(res.Err); kind != relstore.KindPrimaryKey {
		t.Fatalf("violation kind: %v", res.Err)
	}
	// JDBC semantics: rows before the failure applied, the failing row and
	// everything after it discarded.
	n, _ := srv.DB().Count(catalog.TObservations)
	if n != 2 {
		t.Fatalf("observations = %d, want 2", n)
	}
}

func TestBatchRequiresTransactionAndRows(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		if _, err := stmt.ExecuteBatch(); !errors.Is(err, ErrBatchEmpty) {
			t.Errorf("empty batch: %v", err)
		}
		stmt.AddBatch(obsValues(1))
		if _, err := stmt.ExecuteBatch(); !errors.Is(err, ErrNoTransaction) {
			t.Errorf("no transaction: %v", err)
		}
		if err := conn.Commit(); !errors.Is(err, ErrNoTransaction) {
			t.Errorf("commit without txn: %v", err)
		}
		if err := conn.Begin(); err != nil {
			t.Error(err)
		}
		if err := conn.Begin(); err == nil {
			t.Error("double begin should fail")
		}
		_ = conn.Rollback()
	})
	k.Run()
}

func TestRollbackDiscardsRows(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		stmt.AddBatch(obsValues(1))
		if _, err := stmt.ExecuteBatch(); err != nil {
			t.Error(err)
		}
		if err := conn.Rollback(); err != nil {
			t.Error(err)
		}
		// Close after rollback is a no-op.
		if err := conn.Close(); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if n, _ := srv.DB().Count(catalog.TObservations); n != 0 {
		t.Fatalf("rollback left %d rows", n)
	}
	if srv.Stats().Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", srv.Stats().Rollbacks)
	}
}

func TestCloseRollsBackActiveTransaction(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		if _, err := stmt.ExecuteSingle(obsValues(9)); err != nil {
			t.Error(err)
		}
		if err := conn.Close(); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if n, _ := srv.DB().Count(catalog.TObservations); n != 0 {
		t.Fatalf("close did not roll back: %d rows", n)
	}
}

func TestExecuteSingle(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	var singleTime, batchTime time.Duration
	k.Spawn("single", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		start := p.Now()
		for i := int64(1); i <= 40; i++ {
			if _, err := stmt.ExecuteSingle(obsValues(i)); err != nil {
				t.Error(err)
			}
		}
		singleTime = p.Now() - start
		_ = conn.Commit()
	})
	k.Run()

	k2, srv2 := newTestServer(t, ServerConfig{})
	k2.Spawn("batch", func(p *des.Proc) {
		conn := srv2.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		start := p.Now()
		for i := int64(1); i <= 40; i++ {
			stmt.AddBatch(obsValues(i))
		}
		if _, err := stmt.ExecuteBatch(); err != nil {
			t.Error(err)
		}
		batchTime = p.Now() - start
		_ = conn.Commit()
	})
	k2.Run()

	if singleTime <= batchTime*4 {
		t.Fatalf("singleton inserts (%v) should be much slower than one batch (%v)", singleTime, batchTime)
	}
}

func TestTxnSlotQueueing(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{CPUs: 8, TxnSlots: 1})
	var secondBegan time.Duration
	k.Spawn("first", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		p.Hold(10 * time.Second)
		_ = conn.Commit()
	})
	k.Spawn("second", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		secondBegan = p.Now()
		_ = conn.Commit()
	})
	k.Run()
	if secondBegan < 10*time.Second {
		t.Fatalf("second transaction admitted at %v, want after the first commits", secondBegan)
	}
}

func TestIndexCostsChargedToIndexDisk(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	if _, err := srv.DB().CreateIndex(catalog.TObservations, "ix_obs_ra", []string{"ra_center"}, false); err != nil {
		t.Fatal(err)
	}
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		for i := int64(1); i <= 50; i++ {
			stmt.AddBatch(obsValues(i))
		}
		if _, err := stmt.ExecuteBatch(); err != nil {
			t.Error(err)
		}
		_ = conn.Commit()
	})
	k.Run()
	if srv.Stats().IndexIOTime <= 0 {
		t.Fatal("index maintenance charged no index I/O time")
	}
}

func TestConnStats(t *testing.T) {
	k, srv := newTestServer(t, ServerConfig{})
	var cs ConnStats
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		stmt.AddBatch(obsValues(1))
		stmt.AddBatch(obsValues(1)) // duplicate -> failure
		_, _ = stmt.ExecuteBatch()
		_ = conn.Commit()
		cs = conn.Stats()
	})
	k.Run()
	if cs.Calls != 1 || cs.Batches != 1 || cs.RowsInserted != 1 || cs.RowsFailed != 1 || cs.Commits != 1 {
		t.Fatalf("conn stats: %+v", cs)
	}
}

func TestCostModelHelpers(t *testing.T) {
	m := DefaultCostModel()
	if m.NetworkTime(90_000_000) < 900*time.Millisecond {
		t.Fatalf("NetworkTime(90MB) = %v", m.NetworkTime(90_000_000))
	}
	if m.LogTime(0) != 0 || m.StagingTime(0) != 0 {
		t.Fatal("zero bytes should cost zero time")
	}
	var zero CostModel
	if zero.NetworkTime(1000) != 0 || zero.LogTime(1000) != 0 || zero.StagingTime(1000) != 0 {
		t.Fatal("zero-valued model should not divide by zero")
	}
	if m.StallThreshold < 1 || m.LockConflictProbPerWriter <= 0 {
		t.Fatal("contention defaults missing")
	}
}

func TestSharedRAIDConfiguration(t *testing.T) {
	k := des.NewKernel(1)
	db := relstore.MustOpen(catalog.NewSchema())
	srv := NewServer(k, db, ServerConfig{SeparateRAID: false}, DefaultCostModel())
	if srv.Config().SeparateRAID {
		t.Fatal("config not preserved")
	}
	// With a shared device, index and log I/O contend with data I/O; the
	// server must still work end to end.
	txn, _ := db.Begin()
	_ = catalog.SeedReference(txn, 4)
	_, _ = txn.Commit()
	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		_ = conn.Begin()
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		stmt.AddBatch(obsValues(1))
		if _, err := stmt.ExecuteBatch(); err != nil {
			t.Error(err)
		}
		_ = conn.Commit()
	})
	k.Run()
	if n, _ := db.Count(catalog.TObservations); n != 1 {
		t.Fatalf("rows = %d", n)
	}
}

func TestServerStatsString(t *testing.T) {
	s := ServerStats{Calls: 3, RowsInserted: 10}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

// TestConnSealLifecycle exercises the connection-level load lifecycle: the
// policy travels with the server (relstore options), BeginLoad suspends the
// deferred index, Seal refuses to run inside a transaction, and a clean Seal
// rebuilds the index and charges virtual time to the worker.
func TestConnSealLifecycle(t *testing.T) {
	k := des.NewKernel(3)
	db := relstore.MustOpen(catalog.NewSchema(), relstore.WithIndexPolicy(relstore.IndexDeferred))
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(catalog.TObservations, "ix_obs_run", []string{"run_id"}, false); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(k, db, ServerConfig{}, DefaultCostModel())

	k.Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		if err := conn.BeginLoad(); err != nil {
			t.Error(err)
			return
		}
		ix := db.Table(catalog.TObservations).Index("ix_obs_run")
		if ix.Ready() {
			t.Error("deferred index still ready after Conn.BeginLoad")
		}
		if err := conn.Begin(); err != nil {
			t.Error(err)
			return
		}
		stmt := conn.Prepare(catalog.TObservations, obsColumns)
		for i := int64(1); i <= 10; i++ {
			stmt.AddBatch(obsValues(i))
		}
		if _, err := stmt.ExecuteBatch(); err != nil {
			t.Error(err)
		}
		if _, err := conn.Seal(); err == nil {
			t.Error("Seal inside an open transaction must fail")
		}
		if err := conn.Commit(); err != nil {
			t.Error(err)
		}
		before := p.Now()
		rep, err := conn.Seal()
		if err != nil {
			t.Error(err)
			return
		}
		if len(rep.Indexes) != 1 || rep.RowsStreamed != 10 {
			t.Errorf("SealReport = %+v, want 1 index over 10 rows", rep)
		}
		if p.Now() <= before {
			t.Error("Seal charged no virtual time")
		}
		if !ix.Ready() || ix.Tree().Len() == 0 {
			t.Error("index not rebuilt by Conn.Seal")
		}
	})
	k.Run()
	st := srv.Stats()
	if st.Seals != 1 || st.SealTime <= 0 {
		t.Fatalf("server stats Seals=%d SealTime=%s, want one charged seal", st.Seals, st.SealTime)
	}
}
