package sqlbatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
)

// ServerConfig describes the simulated database host: the paper's server was
// an 8-processor SGI Altix with the database files, indexes and redo logs
// spread over three RAID devices reached through two FibreChannel channels.
type ServerConfig struct {
	// CPUs is the number of database server processors.
	CPUs int
	// TxnSlots is the number of loader transactions the server admits
	// concurrently; requests beyond it queue (the RDBMS concurrent
	// transaction limit the paper ran into, §5.4).
	TxnSlots int
	// SeparateRAID controls whether data, index and log I/O go to three
	// separate devices (the §4.5.3 tuning) or contend on a single device.
	SeparateRAID bool
	// DiskChannelsPerDevice is the number of concurrent I/O streams each
	// RAID device sustains.
	DiskChannelsPerDevice int
}

// DefaultServerConfig mirrors the production environment of §5.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		CPUs:                  8,
		TxnSlots:              7,
		SeparateRAID:          true,
		DiskChannelsPerDevice: 2,
	}
}

// Server is the database server: it owns the relstore engine, the execution
// resources representing its hardware, and the cost model that converts
// engine work reports into service time.
//
// The server runs on whichever exec.Scheduler it was built with.  On the DES
// scheduler every cost below is charged in virtual time and runs are
// deterministic; on the realtime scheduler N client connections execute on N
// goroutines against the same shared engine, the resources block for real,
// and the counters (which are atomics) absorb concurrent updates.
type Server struct {
	db    *relstore.DB
	sched exec.Scheduler
	cost  CostModel
	cfg   ServerConfig

	cpus     exec.Resource
	txnSlots exec.Resource
	dataDisk exec.Resource
	idxDisk  exec.Resource
	logDisk  exec.Resource

	stats serverCounters

	// gc is the DES-mode group-commit analogue: when the hosted database has
	// group commit enabled and the scheduler is deterministic, commits append
	// their marker without syncing and this virtual group charges one
	// coalesced WAL.SyncGroup when the group fills or its window passes in
	// virtual time.  The goroutine engine never uses it — there the real
	// commit queue in relstore blocks committers and the leader's
	// CommitReport carries the forced bytes.
	gc struct {
		mu      sync.Mutex
		pending int           // commits waiting for the group's sync
		start   time.Duration // virtual time the open group's first commit arrived
	}
}

// ServerStats aggregates server-side counters for reporting.
type ServerStats struct {
	Calls         int64
	RowsReceived  int64
	RowsInserted  int64
	RowsRejected  int64
	Commits       int64
	Rollbacks     int64
	LockWaits     int64
	LongStalls    int64
	LockWaitTime  time.Duration
	NetworkBytes  int64
	ServerCPUTime time.Duration
	DataIOTime    time.Duration
	IndexIOTime   time.Duration
	LogIOTime     time.Duration
	// Seals counts Seal calls that rebuilt at least one index; SealTime is
	// the total service time charged for those rebuilds (also included in
	// ServerCPUTime/IndexIOTime).
	Seals    int64
	SealTime time.Duration
}

// serverCounters is the lock-free internal representation of ServerStats;
// durations are nanosecond atomics so concurrent connections never contend
// on a stats mutex.
type serverCounters struct {
	calls        atomic.Int64
	rowsReceived atomic.Int64
	rowsInserted atomic.Int64
	rowsRejected atomic.Int64
	commits      atomic.Int64
	rollbacks    atomic.Int64
	lockWaits    atomic.Int64
	longStalls   atomic.Int64
	lockWaitNs   atomic.Int64
	networkBytes atomic.Int64
	serverCPUNs  atomic.Int64
	dataIONs     atomic.Int64
	indexIONs    atomic.Int64
	logIONs      atomic.Int64
	seals        atomic.Int64
	sealNs       atomic.Int64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Calls:         c.calls.Load(),
		RowsReceived:  c.rowsReceived.Load(),
		RowsInserted:  c.rowsInserted.Load(),
		RowsRejected:  c.rowsRejected.Load(),
		Commits:       c.commits.Load(),
		Rollbacks:     c.rollbacks.Load(),
		LockWaits:     c.lockWaits.Load(),
		LongStalls:    c.longStalls.Load(),
		LockWaitTime:  time.Duration(c.lockWaitNs.Load()),
		NetworkBytes:  c.networkBytes.Load(),
		ServerCPUTime: time.Duration(c.serverCPUNs.Load()),
		DataIOTime:    time.Duration(c.dataIONs.Load()),
		IndexIOTime:   time.Duration(c.indexIONs.Load()),
		LogIOTime:     time.Duration(c.logIONs.Load()),
		Seals:         c.seals.Load(),
		SealTime:      time.Duration(c.sealNs.Load()),
	}
}

// NewServer creates a simulated database server on the DES kernel k, hosting
// db and charging costs according to cost.  It is shorthand for NewServerOn
// with the deterministic scheduler and exists because every §5 experiment and
// most tests run in that mode.
func NewServer(k *des.Kernel, db *relstore.DB, cfg ServerConfig, cost CostModel) *Server {
	return NewServerOn(exec.NewDES(k), db, cfg, cost)
}

// NewServerOn creates a database server on an arbitrary execution scheduler:
// pass exec.NewDES for deterministic virtual-time simulation or
// exec.NewRealtime for a genuinely concurrent wall-clock run.
func NewServerOn(sched exec.Scheduler, db *relstore.DB, cfg ServerConfig, cost CostModel) *Server {
	if cfg.CPUs <= 0 {
		cfg.CPUs = DefaultServerConfig().CPUs
	}
	if cfg.TxnSlots <= 0 {
		cfg.TxnSlots = DefaultServerConfig().TxnSlots
	}
	if cfg.DiskChannelsPerDevice <= 0 {
		cfg.DiskChannelsPerDevice = DefaultServerConfig().DiskChannelsPerDevice
	}
	s := &Server{db: db, sched: sched, cost: cost, cfg: cfg}
	s.cpus = sched.NewResource("server-cpus", cfg.CPUs)
	s.txnSlots = sched.NewResource("txn-slots", cfg.TxnSlots)
	s.dataDisk = sched.NewResource("data-raid", cfg.DiskChannelsPerDevice)
	if cfg.SeparateRAID {
		s.idxDisk = sched.NewResource("index-raid", cfg.DiskChannelsPerDevice)
		s.logDisk = sched.NewResource("log-raid", cfg.DiskChannelsPerDevice)
	} else {
		s.idxDisk = s.dataDisk
		s.logDisk = s.dataDisk
	}
	return s
}

// DB returns the hosted database.
func (s *Server) DB() *relstore.DB { return s.db }

// Scheduler returns the execution scheduler the server runs on.
func (s *Server) Scheduler() exec.Scheduler { return s.sched }

// Kernel returns the simulation kernel when the server runs on the DES
// scheduler, or nil in wall-clock mode.
func (s *Server) Kernel() *des.Kernel { return exec.KernelOf(s.sched) }

// Cost returns the cost model in use.
func (s *Server) Cost() CostModel { return s.cost }

// Config returns the server configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.stats.snapshot() }

// CPUUtilization returns the mean utilization of the server CPUs so far.
func (s *Server) CPUUtilization() float64 { return s.cpus.Stats().Utilization }

// ActiveLoadTxns returns the number of transactions currently admitted.
func (s *Server) ActiveLoadTxns() int { return s.txnSlots.InUse() }

// Connect opens a connection for the simulation process p.  It exists for
// DES-mode callers that spawn kernel processes directly; scheduler-spawned
// workers use ConnectWorker.
func (s *Server) Connect(p *des.Proc) *Conn {
	return s.ConnectWorker(exec.WorkerForProc(p))
}

// ConnectWorker opens a connection for the worker w.  Connection setup costs
// one round trip.
func (s *Server) ConnectWorker(w exec.Worker) *Conn {
	w.Sleep(s.cost.CallOverhead)
	return &Conn{server: s, worker: w}
}

// begin admits a new transaction, queueing on the transaction-slot resource
// when the server is at its concurrency limit.  In wall-clock mode a further
// engine-level admission limit (MaxConcurrentTxns below TxnSlots) blocks the
// goroutine for real instead of failing.
func (s *Server) begin(w exec.Worker) (*relstore.Txn, error) {
	s.txnSlots.Acquire(w, 1)
	var txn *relstore.Txn
	var err error
	if s.sched.Deterministic() {
		txn, err = s.db.Begin()
	} else {
		txn, err = s.db.BeginBlocking()
	}
	if err != nil {
		s.txnSlots.Release(w, 1)
		return nil, err
	}
	return txn, nil
}

// finish ends a transaction (commit or rollback) and frees its slot.
//
// Committing under group commit takes one of two engine-specific shapes with
// the same accounting: on the goroutine engine txn.Commit blocks in the real
// commit queue and only a group leader's report carries forced log bytes (so
// waiters charge ~no log time here); on the DES engine the commit is appended
// unsynced and commitGroupedDES charges one coalesced SyncGroup per virtual
// window — deterministic, because the single-runner discipline makes the
// group counter race-free in virtual time.
func (s *Server) finish(w exec.Worker, txn *relstore.Txn, commit bool) (relstore.CommitReport, error) {
	defer s.txnSlots.Release(w, 1)
	if commit {
		grouped := s.sched.Deterministic() && s.db.GroupCommitEnabled()
		var rep relstore.CommitReport
		var err error
		if grouped {
			rep, err = txn.CommitUnsynced()
		} else {
			rep, err = txn.Commit()
		}
		if err != nil {
			return rep, err
		}
		if grouped {
			rep = s.commitGroupedDES(w, rep)
		}
		s.stats.commits.Add(1)
		// Commit processing: fixed CPU cost plus the database-writer cache
		// scan, then a forced log write.
		cpu := s.cost.CommitCost + time.Duration(rep.CacheScanPages)*s.cost.CacheScanCostPerPage
		s.useCPU(w, cpu)
		logT := s.cost.LogTime(int(rep.LogBytesForced)) + time.Duration(rep.DirtyPagesWritten)*s.cost.PageWriteCost
		s.useDisk(w, s.logDisk, logT, &s.stats.logIONs)
		return rep, nil
	}
	s.stats.rollbacks.Add(1)
	err := txn.Rollback()
	s.useCPU(w, s.cost.CommitCost)
	return relstore.CommitReport{}, err
}

// BeginLoad opens the engine's load phase: deferred-policy indexes stop
// being maintained until Seal.  It is free — suspension is bookkeeping, not
// physical work — so no worker is needed; call it before spawning loaders.
func (s *Server) BeginLoad() error { return s.db.BeginLoad() }

// Seal closes the load phase on behalf of worker w: every deferred index is
// bulk-rebuilt from a presorted key stream (relstore.DB.Seal) and the rebuild
// is charged to the server's CPU and index device using the same index cost
// classes as immediate maintenance — IndexBuildRowCost per streamed row plus
// the per-node int/float column charges — so a virtual-time Figure 8 sweep of
// the two policies is an apples-to-apples comparison.
func (s *Server) Seal(w exec.Worker) (relstore.SealReport, error) {
	rep, err := s.db.Seal()
	if err != nil {
		return rep, err
	}
	if !rep.Sealed() {
		return rep, nil
	}
	var charged time.Duration
	for _, ix := range rep.Indexes {
		// Sort + stream CPU, proportional to rows.
		cpu := time.Duration(ix.Rows) * s.cost.IndexBuildRowCost
		s.useCPU(w, cpu)
		// Sequential node writes on the index device: each node is written
		// once, priced with the same column cost classes immediate
		// maintenance pays per node *visit*.
		idxT := time.Duration(ix.NodesBuilt)*s.cost.IndexNodeCost +
			time.Duration(ix.NodesBuilt*ix.IntCols)*s.cost.IndexIntColCost +
			time.Duration(ix.NodesBuilt*ix.FloatCols)*s.cost.IndexFloatColCost
		s.useDisk(w, s.idxDisk, idxT, &s.stats.indexIONs)
		charged += cpu + idxT
	}
	s.stats.seals.Add(1)
	s.stats.sealNs.Add(int64(charged))
	return rep, nil
}

// commitGroupedDES folds an unsynced DES-mode commit into the virtual commit
// group.  The commit whose arrival fills the group to the configured waiter
// cap — or lands a full window after the group opened — becomes the leader:
// it performs the group's one WAL.SyncGroup and its report carries the forced
// bytes (charged as log time by finish), exactly mirroring the goroutine
// engine's queue where waiters report 0 forced bytes.  A run's final partial
// group stays unsynced, like a real group-commit system stopped mid-window.
func (s *Server) commitGroupedDES(w exec.Worker, rep relstore.CommitReport) relstore.CommitReport {
	cfg := s.db.Config()
	maxWaiters := cfg.GroupCommitMaxWaiters
	if maxWaiters <= 0 {
		maxWaiters = relstore.DefaultGroupCommitWaiters
	}
	now := w.Now()
	size := 0
	s.gc.mu.Lock()
	s.gc.pending++
	if s.gc.pending == 1 {
		s.gc.start = now
	}
	if s.gc.pending >= maxWaiters || now-s.gc.start >= cfg.GroupCommitWindow {
		size = s.gc.pending
		s.gc.pending = 0
	}
	s.gc.mu.Unlock()
	if size > 0 {
		rep.LogBytesForced = s.db.WAL().SyncGroup(size)
		rep.GroupSize = size
		rep.GroupLeader = true
	}
	return rep
}

func (s *Server) useCPU(w exec.Worker, d time.Duration) {
	if d <= 0 {
		return
	}
	s.cpus.Acquire(w, 1)
	w.Sleep(d)
	s.cpus.Release(w, 1)
	s.stats.serverCPUNs.Add(int64(d))
}

func (s *Server) useDisk(w exec.Worker, r exec.Resource, d time.Duration, acc *atomic.Int64) {
	if d <= 0 {
		return
	}
	r.Acquire(w, 1)
	w.Sleep(d)
	r.Release(w, 1)
	acc.Add(int64(d))
}

// execBatch runs a batch of inserts against table within txn on behalf of
// worker w, charging network, CPU, disk and lock-contention time.  It
// implements JDBC batch-update semantics: rows are applied in order until the
// first failure; the failing row and all rows after it are not applied.
func (s *Server) execBatch(w exec.Worker, txn *relstore.Txn, table string, columns []string, rows [][]relstore.Value) BatchResult {
	res := BatchResult{FailedIndex: -1}
	if len(rows) == 0 {
		return res
	}
	s.stats.calls.Add(1)
	s.stats.rowsReceived.Add(int64(len(rows)))

	// 1. Network: one round trip plus payload transfer.
	payload := 0
	for _, r := range rows {
		payload += relstore.RowSize(r)
	}
	s.stats.networkBytes.Add(int64(payload))
	w.Sleep(s.cost.CallOverhead + s.cost.NetworkTime(payload))

	// 2. Server-side execution under one CPU.
	//
	// The two schedulers take different engine paths with identical
	// semantics: the DES scheduler keeps the row-at-a-time loop because the
	// §5 virtual-time figures are calibrated against per-row physical work
	// (per-row WAL records, per-row lock round trips, per-row index
	// descents), while wall-clock mode routes through the batch-apply path,
	// which amortizes that synchronization across the batch and is where the
	// real hardware speedup comes from.  Both stop at the first failing row
	// and leave the rows before it applied.
	var rep relstore.OpReport
	inserted := 0
	var failErr error
	if s.sched.Deterministic() || len(rows) == 1 {
		// Single-row calls take the per-row path in every mode: there is
		// nothing to amortize, and the non-bulk baseline (ExecuteSingle)
		// must never ride the batch-apply machinery it exists to measure
		// loading without.
		for i, r := range rows {
			one, err := txn.Insert(table, columns, r)
			rep.Add(one)
			if err != nil {
				res.FailedIndex = i
				failErr = err
				break
			}
			inserted++
		}
	} else {
		br, err := txn.InsertBatch(table, columns, rows)
		rep = br.Report
		inserted = br.RowsInserted
		res.FailedIndex = br.FailedIndex
		failErr = err
	}
	res.RowsInserted = inserted
	res.Err = failErr
	s.stats.rowsInserted.Add(int64(inserted))
	if failErr != nil {
		s.stats.rowsRejected.Add(1)
	}

	cpu := time.Duration(inserted) * s.cost.RowServerCost
	cpu += time.Duration(inserted) * time.Duration(len(rows)) * s.cost.BatchRowScalingCost
	cpu += time.Duration(rep.ConstraintChecks) * s.cost.ConstraintCheckCost
	cpu += time.Duration(rep.FKLookups) * s.cost.FKLookupCost
	cpu += time.Duration(rep.CacheScanPages) * s.cost.CacheScanCostPerPage
	if failErr != nil {
		cpu += s.cost.ErrorHandlingCost
	}
	s.useCPU(w, cpu)

	// 3. Disk I/O on the data, index and log devices.
	dataT := time.Duration(rep.PagesDirtied)*s.cost.PageWriteCost + time.Duration(rep.CacheMisses)*s.cost.PageWriteCost/2
	s.useDisk(w, s.dataDisk, dataT, &s.stats.dataIONs)
	idxT := time.Duration(rep.IndexNodesVisited)*s.cost.IndexNodeCost +
		time.Duration(rep.IndexIntColNodeVisits)*s.cost.IndexIntColCost +
		time.Duration(rep.IndexFloatColNodeVisits)*s.cost.IndexFloatColCost +
		time.Duration(rep.IndexSplits)*s.cost.IndexSplitCost
	s.useDisk(w, s.idxDisk, idxT, &s.stats.indexIONs)
	logT := s.cost.LogTime(rep.LogBytes)
	s.useDisk(w, s.logDisk, logT, &s.stats.logIONs)

	// 4. Lock contention: each other transaction concurrently loading makes
	// a conflict more likely; beyond the stall threshold rare long stalls
	// appear (the paper's "very infrequent ... stalls and dramatic
	// degradation", §5.4).
	// Contention pressure counts both admitted transactions and those queued
	// for a slot: sessions waiting to be admitted still hold locks manager
	// state and make conflicts more likely, which is why the paper saw
	// degradation (not just flattening) beyond the optimal degree.
	active := s.txnSlots.InUse() + s.txnSlots.QueueLen()
	if active > 1 {
		conflictProb := s.cost.LockConflictProbPerWriter * float64(active-1)
		if s.sched.RandFloat64() < conflictProb {
			// The wait grows with the number of concurrent writers: the
			// conflicting batch queues behind the other transactions holding
			// locks on the same table.
			wait := time.Duration(active-1) * s.cost.LockWaitCost
			s.stats.lockWaits.Add(1)
			s.stats.lockWaitNs.Add(int64(wait))
			w.Sleep(wait)
			res.LockWaits++
		}
		if active > s.cost.StallThreshold {
			stallProb := s.cost.StallProb * float64(active-s.cost.StallThreshold)
			if s.sched.RandFloat64() < stallProb {
				s.stats.longStalls.Add(1)
				s.stats.lockWaitNs.Add(int64(s.cost.StallCost))
				w.Sleep(s.cost.StallCost)
				res.LongStalls++
			}
		}
	}

	res.Report = rep
	return res
}

// String summarizes the server statistics.
func (st ServerStats) String() string {
	return fmt.Sprintf("calls=%d rows=%d inserted=%d rejected=%d commits=%d lockWaits=%d stalls=%d cpu=%s",
		st.Calls, st.RowsReceived, st.RowsInserted, st.RowsRejected, st.Commits, st.LockWaits, st.LongStalls, st.ServerCPUTime)
}
