package sqlbatch

import (
	"fmt"
	"time"

	"skyloader/internal/des"
	"skyloader/internal/relstore"
)

// ServerConfig describes the simulated database host: the paper's server was
// an 8-processor SGI Altix with the database files, indexes and redo logs
// spread over three RAID devices reached through two FibreChannel channels.
type ServerConfig struct {
	// CPUs is the number of database server processors.
	CPUs int
	// TxnSlots is the number of loader transactions the server admits
	// concurrently; requests beyond it queue (the RDBMS concurrent
	// transaction limit the paper ran into, §5.4).
	TxnSlots int
	// SeparateRAID controls whether data, index and log I/O go to three
	// separate devices (the §4.5.3 tuning) or contend on a single device.
	SeparateRAID bool
	// DiskChannelsPerDevice is the number of concurrent I/O streams each
	// RAID device sustains.
	DiskChannelsPerDevice int
}

// DefaultServerConfig mirrors the production environment of §5.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		CPUs:                  8,
		TxnSlots:              7,
		SeparateRAID:          true,
		DiskChannelsPerDevice: 2,
	}
}

// Server is the simulated database server: it owns the relstore engine, the
// DES resources representing its hardware, and the cost model that converts
// engine work reports into virtual time.
type Server struct {
	db   *relstore.DB
	k    *des.Kernel
	cost CostModel
	cfg  ServerConfig

	cpus     *des.Resource
	txnSlots *des.Resource
	dataDisk *des.Resource
	idxDisk  *des.Resource
	logDisk  *des.Resource

	stats ServerStats
}

// ServerStats aggregates server-side counters for reporting.
type ServerStats struct {
	Calls         int64
	RowsReceived  int64
	RowsInserted  int64
	RowsRejected  int64
	Commits       int64
	Rollbacks     int64
	LockWaits     int64
	LongStalls    int64
	LockWaitTime  time.Duration
	NetworkBytes  int64
	ServerCPUTime time.Duration
	DataIOTime    time.Duration
	IndexIOTime   time.Duration
	LogIOTime     time.Duration
}

// NewServer creates a simulated database server on kernel k, hosting db and
// charging costs according to cost.
func NewServer(k *des.Kernel, db *relstore.DB, cfg ServerConfig, cost CostModel) *Server {
	if cfg.CPUs <= 0 {
		cfg.CPUs = DefaultServerConfig().CPUs
	}
	if cfg.TxnSlots <= 0 {
		cfg.TxnSlots = DefaultServerConfig().TxnSlots
	}
	if cfg.DiskChannelsPerDevice <= 0 {
		cfg.DiskChannelsPerDevice = DefaultServerConfig().DiskChannelsPerDevice
	}
	s := &Server{db: db, k: k, cost: cost, cfg: cfg}
	s.cpus = des.NewResource(k, "server-cpus", cfg.CPUs)
	s.txnSlots = des.NewResource(k, "txn-slots", cfg.TxnSlots)
	s.dataDisk = des.NewResource(k, "data-raid", cfg.DiskChannelsPerDevice)
	if cfg.SeparateRAID {
		s.idxDisk = des.NewResource(k, "index-raid", cfg.DiskChannelsPerDevice)
		s.logDisk = des.NewResource(k, "log-raid", cfg.DiskChannelsPerDevice)
	} else {
		s.idxDisk = s.dataDisk
		s.logDisk = s.dataDisk
	}
	return s
}

// DB returns the hosted database.
func (s *Server) DB() *relstore.DB { return s.db }

// Kernel returns the simulation kernel.
func (s *Server) Kernel() *des.Kernel { return s.k }

// Cost returns the cost model in use.
func (s *Server) Cost() CostModel { return s.cost }

// Config returns the server configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// CPUUtilization returns the mean utilization of the server CPUs so far.
func (s *Server) CPUUtilization() float64 { return s.cpus.Stats().Utilization }

// ActiveLoadTxns returns the number of transactions currently admitted.
func (s *Server) ActiveLoadTxns() int { return s.txnSlots.InUse() }

// Connect opens a connection for the loader process p.
func (s *Server) Connect(p *des.Proc) *Conn {
	// Connection setup costs one round trip.
	p.Hold(s.cost.CallOverhead)
	return &Conn{server: s, proc: p}
}

// begin admits a new transaction, queueing on the transaction-slot resource
// when the server is at its concurrency limit.
func (s *Server) begin(p *des.Proc) (*relstore.Txn, error) {
	s.txnSlots.Acquire(p, 1)
	txn, err := s.db.Begin()
	if err != nil {
		s.txnSlots.Release(p, 1)
		return nil, err
	}
	return txn, nil
}

// finish ends a transaction (commit or rollback) and frees its slot.
func (s *Server) finish(p *des.Proc, txn *relstore.Txn, commit bool) (relstore.CommitReport, error) {
	defer s.txnSlots.Release(p, 1)
	if commit {
		rep, err := txn.Commit()
		if err != nil {
			return rep, err
		}
		s.stats.Commits++
		// Commit processing: fixed CPU cost plus the database-writer cache
		// scan, then a forced log write.
		cpu := s.cost.CommitCost + time.Duration(rep.CacheScanPages)*s.cost.CacheScanCostPerPage
		s.useCPU(p, cpu)
		logT := s.cost.LogTime(int(rep.LogBytesForced)) + time.Duration(rep.DirtyPagesWritten)*s.cost.PageWriteCost
		s.useDisk(p, s.logDisk, logT, &s.stats.LogIOTime)
		return rep, nil
	}
	s.stats.Rollbacks++
	err := txn.Rollback()
	s.useCPU(p, s.cost.CommitCost)
	return relstore.CommitReport{}, err
}

func (s *Server) useCPU(p *des.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	s.cpus.Acquire(p, 1)
	p.Hold(d)
	s.cpus.Release(p, 1)
	s.stats.ServerCPUTime += d
}

func (s *Server) useDisk(p *des.Proc, r *des.Resource, d time.Duration, acc *time.Duration) {
	if d <= 0 {
		return
	}
	r.Acquire(p, 1)
	p.Hold(d)
	r.Release(p, 1)
	*acc += d
}

// execBatch runs a batch of inserts against table within txn on behalf of
// process p, charging network, CPU, disk and lock-contention time.  It
// implements JDBC batch-update semantics: rows are applied in order until the
// first failure; the failing row and all rows after it are not applied.
func (s *Server) execBatch(p *des.Proc, txn *relstore.Txn, table string, columns []string, rows [][]relstore.Value) BatchResult {
	res := BatchResult{FailedIndex: -1}
	if len(rows) == 0 {
		return res
	}
	s.stats.Calls++
	s.stats.RowsReceived += int64(len(rows))

	// 1. Network: one round trip plus payload transfer.
	payload := 0
	for _, r := range rows {
		payload += relstore.RowSize(r)
	}
	s.stats.NetworkBytes += int64(payload)
	p.Hold(s.cost.CallOverhead + s.cost.NetworkTime(payload))

	// 2. Server-side execution under one CPU.
	var rep relstore.OpReport
	inserted := 0
	var failErr error
	for i, r := range rows {
		one, err := txn.Insert(table, columns, r)
		rep.Add(one)
		if err != nil {
			res.FailedIndex = i
			failErr = err
			break
		}
		inserted++
	}
	res.RowsInserted = inserted
	res.Err = failErr
	s.stats.RowsInserted += int64(inserted)
	if failErr != nil {
		s.stats.RowsRejected++
	}

	cpu := time.Duration(inserted) * s.cost.RowServerCost
	cpu += time.Duration(inserted) * time.Duration(len(rows)) * s.cost.BatchRowScalingCost
	cpu += time.Duration(rep.ConstraintChecks) * s.cost.ConstraintCheckCost
	cpu += time.Duration(rep.FKLookups) * s.cost.FKLookupCost
	cpu += time.Duration(rep.CacheScanPages) * s.cost.CacheScanCostPerPage
	if failErr != nil {
		cpu += s.cost.ErrorHandlingCost
	}
	s.useCPU(p, cpu)

	// 3. Disk I/O on the data, index and log devices.
	dataT := time.Duration(rep.PagesDirtied)*s.cost.PageWriteCost + time.Duration(rep.CacheMisses)*s.cost.PageWriteCost/2
	s.useDisk(p, s.dataDisk, dataT, &s.stats.DataIOTime)
	idxT := time.Duration(rep.IndexNodesVisited)*s.cost.IndexNodeCost +
		time.Duration(rep.IndexIntColNodeVisits)*s.cost.IndexIntColCost +
		time.Duration(rep.IndexFloatColNodeVisits)*s.cost.IndexFloatColCost +
		time.Duration(rep.IndexSplits)*s.cost.IndexSplitCost
	s.useDisk(p, s.idxDisk, idxT, &s.stats.IndexIOTime)
	logT := s.cost.LogTime(rep.LogBytes)
	s.useDisk(p, s.logDisk, logT, &s.stats.LogIOTime)

	// 4. Lock contention: each other transaction concurrently loading makes
	// a conflict more likely; beyond the stall threshold rare long stalls
	// appear (the paper's "very infrequent ... stalls and dramatic
	// degradation", §5.4).
	// Contention pressure counts both admitted transactions and those queued
	// for a slot: sessions waiting to be admitted still hold locks manager
	// state and make conflicts more likely, which is why the paper saw
	// degradation (not just flattening) beyond the optimal degree.
	active := s.txnSlots.InUse() + s.txnSlots.QueueLen()
	if active > 1 {
		rng := s.k.Rand()
		conflictProb := s.cost.LockConflictProbPerWriter * float64(active-1)
		if rng.Float64() < conflictProb {
			// The wait grows with the number of concurrent writers: the
			// conflicting batch queues behind the other transactions holding
			// locks on the same table.
			wait := time.Duration(active-1) * s.cost.LockWaitCost
			s.stats.LockWaits++
			s.stats.LockWaitTime += wait
			p.Hold(wait)
			res.LockWaits++
		}
		if active > s.cost.StallThreshold {
			stallProb := s.cost.StallProb * float64(active-s.cost.StallThreshold)
			if rng.Float64() < stallProb {
				s.stats.LongStalls++
				s.stats.LockWaitTime += s.cost.StallCost
				p.Hold(s.cost.StallCost)
				res.LongStalls++
			}
		}
	}

	res.Report = rep
	return res
}

// String summarizes the server statistics.
func (st ServerStats) String() string {
	return fmt.Sprintf("calls=%d rows=%d inserted=%d rejected=%d commits=%d lockWaits=%d stalls=%d cpu=%s",
		st.Calls, st.RowsReceived, st.RowsInserted, st.RowsRejected, st.Commits, st.LockWaits, st.LongStalls, st.ServerCPUTime)
}
