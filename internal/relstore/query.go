package relstore

import (
	"fmt"
	"math"
)

// The query layer is intentionally small: the repository exists primarily to
// be loaded, but the paper's repository also "act[s] as a query engine to
// support scientific research" (§4.5.1).  These helpers support the examples,
// post-load validation and the integration tests.

// TableEpoch returns the commit epoch of the named table (0 for an unknown
// table).  See Table.CommitEpoch.
func (db *DB) TableEpoch(table string) int64 {
	t, ok := db.tables[table]
	if !ok {
		return 0
	}
	return t.CommitEpoch()
}

// ReadStamp returns the named table's commit epoch together with whether the
// table is clean: no rows from in-flight transactions are currently visible.
// A result computed between two identical clean stamps is a consistent view
// of the committed state at that epoch.
func (db *DB) ReadStamp(table string) (epoch int64, clean bool) {
	t, ok := db.tables[table]
	if !ok {
		return 0, false
	}
	// Order matters: load pendingRows before the epoch.  Commit bumps the
	// epoch before draining pendingRows, so reading pending first can only
	// misreport a table as dirty (pending observed just before a commit
	// settles), never as clean at a stale epoch.
	pending := t.UncommittedRows()
	return t.CommitEpoch(), pending == 0
}

// SnapshotRead runs fn (a read-only operation over the named table) and
// reports whether it observed a stable committed snapshot: the commit epoch
// did not advance while fn ran and no uncommitted rows were visible at either
// end.  The returned epoch identifies the snapshot; a result cache stores it
// with the result and invalidates the entry once the table's epoch moves on.
//
// The engine stores rows at insert time, so a plain read concurrent with a
// writer can see uncommitted data — that is fine for a one-shot answer but
// must never be memoized.  SnapshotRead is the read entry point that makes
// the distinction checkable.
func (db *DB) SnapshotRead(table string, fn func() error) (epoch int64, stable bool, err error) {
	e1, clean1 := db.ReadStamp(table)
	if err := fn(); err != nil {
		return e1, false, err
	}
	e2, clean2 := db.ReadStamp(table)
	return e2, clean1 && clean2 && e1 == e2, nil
}

// Count returns the number of live rows in the named table.
func (db *DB) Count(table string) (int64, error) {
	t, ok := db.tables[table]
	if !ok {
		return 0, ErrNoSuchTable
	}
	return t.RowCount(), nil
}

// Scan visits every live row of the table in heap order, passing a copy of
// each row to visit; visit returns false to stop.  The table's read lock is
// held for the duration of the scan, so the visitor must not call write
// operations on the same table.
func (db *DB) Scan(table string, visit func(Row) bool) error {
	t, ok := db.tables[table]
	if !ok {
		return ErrNoSuchTable
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.heap.scan(func(_ int64, r Row) bool {
		return visit(r.Clone())
	})
	return nil
}

// ScanRef is Scan without the per-row copy: visit receives the stored row
// itself.  It exists for read-only consumers on hot paths (query decoding,
// bulk publishing); the visitor must not mutate the row or retain it across
// writes to the table.  Like Scan, it holds the table's read lock while the
// visitor runs.
func (db *DB) ScanRef(table string, visit func(Row) bool) error {
	t, ok := db.tables[table]
	if !ok {
		return ErrNoSuchTable
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.heap.scan(func(_ int64, r Row) bool {
		return visit(r)
	})
	return nil
}

// SelectWhere returns the rows of table for which pred returns true, up to
// limit rows (limit <= 0 means no limit).
func (db *DB) SelectWhere(table string, pred func(Row) bool, limit int) ([]Row, error) {
	var out []Row
	err := db.Scan(table, func(r Row) bool {
		if pred == nil || pred(r) {
			out = append(out, r)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out, err
}

// LookupByPK returns the row whose primary key equals key, or nil.
func (db *DB) LookupByPK(table string, key []Value) (Row, error) {
	t, ok := db.tables[table]
	if !ok {
		return nil, ErrNoSuchTable
	}
	sc := db.scratchPool.Get().(*scratch)
	id, ok := t.pkRowID(sc, key)
	db.scratchPool.Put(sc)
	if !ok {
		return nil, nil
	}
	return t.getRow(id), nil
}

// SelectEqualIndexed returns rows whose indexed columns equal key, using the
// named secondary index; it also reports how many B-tree nodes were visited.
func (db *DB) SelectEqualIndexed(table, index string, key []Value) ([]Row, int, error) {
	t, ok := db.tables[table]
	if !ok {
		return nil, 0, ErrNoSuchTable
	}
	ix := t.Index(index)
	if ix == nil {
		return nil, 0, ErrNoSuchIndex
	}
	if !ix.Ready() {
		return nil, 0, ErrIndexNotReady
	}
	sc := db.scratchPool.Get().(*scratch)
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids, visited := ix.tree.Search(sc.ordKey(key))
	db.scratchPool.Put(sc)
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		if r := t.getRowLocked(id); r != nil {
			out = append(out, r.Clone())
		}
	}
	return out, visited, nil
}

// RangeIndexed returns rows whose indexed key lies in [from, to] using the
// named secondary index.
func (db *DB) RangeIndexed(table, index string, from, to []Value, limit int) ([]Row, error) {
	t, ok := db.tables[table]
	if !ok {
		return nil, ErrNoSuchTable
	}
	ix := t.Index(index)
	if ix == nil {
		return nil, ErrNoSuchIndex
	}
	if !ix.Ready() {
		return nil, ErrIndexNotReady
	}
	// Encode both bounds into one pooled buffer and slice it afterwards, so
	// growth between the two appends cannot invalidate the first bound.  A
	// nil []Value bound stays a nil byte bound (unbounded).
	sc := db.scratchPool.Get().(*scratch)
	defer db.scratchPool.Put(sc)
	sc.ord = sc.ord[:0]
	if from != nil {
		sc.ord = AppendOrderedKey(sc.ord, from)
	}
	fl := len(sc.ord)
	if to != nil {
		sc.ord = AppendOrderedKey(sc.ord, to)
	}
	var fromB, toB []byte
	if from != nil {
		fromB = sc.ord[:fl]
	}
	if to != nil {
		toB = sc.ord[fl:]
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Row
	ix.tree.AscendRange(fromB, toB, func(_ []byte, ids []int64) bool {
		for _, id := range ids {
			if r := t.getRowLocked(id); r != nil {
				out = append(out, r.Clone())
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
		}
		return true
	})
	return out, nil
}

// AggregateResult summarizes a numeric column.
type AggregateResult struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Mean  float64
}

// Aggregate computes count/sum/min/max/mean of a numeric column, skipping
// NULLs.
func (db *DB) Aggregate(table, column string) (AggregateResult, error) {
	t, ok := db.tables[table]
	if !ok {
		return AggregateResult{}, ErrNoSuchTable
	}
	idx := t.schema.ColumnIndex(column)
	if idx < 0 {
		return AggregateResult{}, fmt.Errorf("relstore: table %q has no column %q", table, column)
	}
	res := AggregateResult{Min: math.Inf(1), Max: math.Inf(-1)}
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.heap.scan(func(_ int64, r Row) bool {
		v := r[idx]
		var f float64
		switch v.Kind {
		case KindInt:
			f = float64(v.I)
		case KindFloat:
			f = v.F
		default:
			return true
		}
		res.Count++
		res.Sum += f
		if f < res.Min {
			res.Min = f
		}
		if f > res.Max {
			res.Max = f
		}
		return true
	})
	if res.Count > 0 {
		res.Mean = res.Sum / float64(res.Count)
	} else {
		res.Min, res.Max = 0, 0
	}
	return res, nil
}

// VerifyIntegrity checks every foreign key of every live row and returns the
// number of orphaned rows found (0 means the repository is referentially
// consistent).  The integration tests run this after every load.
//
// It is a post-load verification: run it after writers have finished.  It
// holds each scanned table's read lock while probing parents, which is safe
// for the acyclic (parent-before-child) catalog schema but could deadlock
// against concurrent verifiers and writers if a schema contained a
// foreign-key cycle across tables.
func (db *DB) VerifyIntegrity() (orphans int64, err error) {
	var sc scratch
	for _, name := range db.schema.TableNames() {
		t := db.tables[name]
		ts := t.schema
		if len(ts.ForeignKeys) == 0 {
			continue
		}
		t.mu.RLock()
		t.heap.scan(func(_ int64, r Row) bool {
			var rep OpReport
			if e := db.checkForeignKeys(&sc, t, r, &rep, t, false); e != nil {
				orphans++
			}
			return true
		})
		t.mu.RUnlock()
	}
	return orphans, nil
}

// VerifyPrimaryKeys re-derives every table's primary-key index from the heap
// and reports any mismatch; used by tests to validate rollback correctness.
func (db *DB) VerifyPrimaryKeys() error {
	var sc scratch
	for _, name := range db.schema.TableNames() {
		t := db.tables[name]
		seen := make(map[string]bool)
		var dup error
		t.mu.RLock()
		t.heap.scan(func(_ int64, r Row) bool {
			enc := EncodeKey(sc.keyOf(r, t.pkCols))
			if seen[enc] {
				dup = fmt.Errorf("relstore: duplicate primary key %s in table %q", enc, name)
				return false
			}
			seen[enc] = true
			if _, ok := t.pkIndex[enc]; !ok {
				dup = fmt.Errorf("relstore: primary key %s of table %q missing from index", enc, name)
				return false
			}
			return true
		})
		rows := t.heap.rowCount
		t.mu.RUnlock()
		if dup != nil {
			return dup
		}
		if int64(len(seen)) != rows {
			return fmt.Errorf("relstore: table %q has %d rows but %d distinct keys", name, rows, len(seen))
		}
	}
	return nil
}
