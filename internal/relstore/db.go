package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls engine-level knobs that the paper tunes in §4.5.
type Config struct {
	// CachePages is the size of the block buffer cache in pages.  The paper
	// found that a smaller cache loads faster because the database writer
	// scans the whole cache on each flush (§4.5.5).
	CachePages int
	// MaxConcurrentTxns is the concurrent-transaction limit (the Oracle
	// interested-transaction-list analogue); 0 means unlimited.  Exceeding it
	// is what produces lock waits at high parallelism (§5.4).
	MaxConcurrentTxns int
	// BTreeDegree is the minimum degree of secondary-index B-trees.
	BTreeDegree int
	// DirtyFlushPages is the number of newly dirtied pages after which the
	// database writer runs, searching the whole allocated cache (the §4.5.5
	// effect); 0 uses the default of 32.
	DirtyFlushPages int
	// WALSyncBytes is the redo-log auto-sync threshold: once the unsynced
	// tail exceeds it the log syncs without waiting for a commit.  0 (the
	// default) syncs only at commit.  See WithWALSync.
	WALSyncBytes int64
	// GroupCommitWindow enables group commit when > 0: committing
	// transactions enqueue and one leader syncs the log for the whole group,
	// gathering waiters for up to this long (§4.5.2).  See WithGroupCommit.
	GroupCommitWindow time.Duration
	// GroupCommitMaxWaiters caps the commit-group size; a group that fills
	// syncs before its window expires.  <= 0 means DefaultGroupCommitWaiters.
	GroupCommitMaxWaiters int
	// BatchLockChunk, when > 0, makes InsertBatch apply its rows in
	// sub-chunks of this many rows, releasing the table write lock between
	// chunks so concurrent readers are never blocked behind a whole batch.
	// 0 (the default) holds the lock once for the whole batch.  See
	// WithBatchLockChunk.
	BatchLockChunk int
	// WALSyncDelay models the redo-device fsync latency in wall-clock mode:
	// every commit-driven sync holds the (single) log device for this long.
	// 0 (the default) keeps syncs free — the only setting the virtual-time
	// figures use.  See WithWALSyncDelay.
	WALSyncDelay time.Duration
	// WALDir, when non-empty, makes the WAL durable: records are persisted to
	// segmented log files under this directory and syncs are real fsyncs.
	// Empty (the default) keeps the WAL counters-only.  See WithWALDir.
	WALDir string
	// CheckpointEveryBytes triggers an automatic checkpoint after roughly this
	// many durable log bytes; 0 disables.  See WithCheckpointEvery.
	CheckpointEveryBytes int64
	// WALSegmentBytes is the durable log segment size; 0 uses 4 MiB.  See
	// WithWALSegmentBytes.
	WALSegmentBytes int64
}

// DefaultConfig mirrors the production repository's loading configuration.
func DefaultConfig() Config {
	return Config{
		CachePages:        2048,
		MaxConcurrentTxns: 24,
		BTreeDegree:       32,
		DirtyFlushPages:   32,
	}
}

// DB is an embedded relational database instance.
//
// Concurrency: the engine is safe for concurrent transactions on separate
// goroutines.  The table set is immutable after NewDB; each Table carries its
// own lock, the lock manager, WAL and buffer cache carry theirs, and the
// engine-wide counters are atomics, so writers to different tables proceed in
// parallel and writers to the same table serialize only for the in-memory
// critical section of the row store.
type DB struct {
	schema *Schema
	cfg    Config
	// indexPolicy is the default maintenance policy applied by CreateIndex
	// (see WithIndexPolicy); individual indexes may override it.
	indexPolicy IndexPolicy

	tables map[string]*Table
	locks  *LockManager
	wal    *WAL
	cache  *BufferCache
	// group is the commit queue backing WithGroupCommit, or nil when every
	// commit syncs for itself (the default).
	group *groupCommitter

	// loading marks the window between BeginLoad and Seal, during which
	// deferred-policy indexes are suspended.  Tables read it when an index is
	// created mid-load (see Table.createIndex).
	loading atomic.Bool

	// recovering marks a database still replaying its durable log (between
	// StartRecover and the replay's completion).  Ready() is false and Begin
	// refuses transactions while it is set.
	recovering atomic.Bool

	// tablesByID indexes tables by their stable numeric id (schema declaration
	// order) — the table id the durable WAL records carry.
	tablesByID []*Table

	// ckptMu serializes checkpoints; ckptSeq (guarded by it) is the sequence
	// number of the latest completed checkpoint.
	ckptMu  sync.Mutex
	ckptSeq int64

	// faultHook is the test-only fault-injection hook (WithFaultHook), shared
	// with the durable device and invoked on the replay path.
	faultHook FaultHook

	nextTxn  atomic.Int64
	counters dbCounters

	// scratchPool recycles the per-transaction key/encoding scratch buffers
	// (see scratch.go) so the insert path stays allocation-lean across
	// transactions.
	scratchPool sync.Pool
}

// dbCounters is the engine-wide statistics, kept as atomics (plus one small
// mutex-guarded map) so concurrent writers never contend on a stats lock.
type dbCounters struct {
	rowsInserted  atomic.Int64
	rowsRejected  atomic.Int64
	transactions  atomic.Int64
	commits       atomic.Int64
	rollbacks     atomic.Int64
	indexSplits   atomic.Int64
	lockConflicts atomic.Int64

	indexesCreated atomic.Int64
	indexesDropped atomic.Int64
	indexDDLFailed atomic.Int64

	violMu     sync.Mutex
	violations map[ConstraintKind]int64
}

// open builds the database from a resolved option set; Open and NewDB both
// land here.
func open(schema *Schema, oc openConfig) (*DB, error) {
	if schema == nil {
		return nil, fmt.Errorf("relstore: nil schema")
	}
	cfg := oc.cfg
	if cfg.CachePages <= 0 {
		cfg.CachePages = DefaultConfig().CachePages
	}
	if cfg.BTreeDegree <= 0 {
		cfg.BTreeDegree = DefaultConfig().BTreeDegree
	}
	if cfg.DirtyFlushPages <= 0 {
		cfg.DirtyFlushPages = DefaultConfig().DirtyFlushPages
	}
	db := &DB{
		schema:      schema,
		cfg:         cfg,
		indexPolicy: oc.indexPolicy,
		tables:      make(map[string]*Table, schema.NumTables()),
		locks:       NewLockManager(cfg.MaxConcurrentTxns),
		wal:         NewWAL(cfg.WALSyncBytes),
		cache:       NewBufferCache(cfg.CachePages),
	}
	db.wal.syncDelay = cfg.WALSyncDelay
	if cfg.GroupCommitWindow > 0 {
		db.group = newGroupCommitter(db.wal, cfg.GroupCommitWindow, cfg.GroupCommitMaxWaiters)
	}
	db.counters.violations = make(map[ConstraintKind]int64)
	db.scratchPool.New = func() any { return new(scratch) }
	db.faultHook = oc.faultHook
	for i, ts := range schema.Tables() {
		t, err := newTable(ts, cfg.BTreeDegree, &db.loading)
		if err != nil {
			return nil, err
		}
		// Table ids follow schema declaration order, which is stable for a
		// given schema — the identity durable WAL records persist.
		t.tid = uint32(i)
		db.tables[ts.Name] = t
		db.tablesByID = append(db.tablesByID, t)
	}
	if cfg.WALDir != "" && !oc.recovering {
		dev, err := openWALDevice(cfg.WALDir, cfg.WALSegmentBytes, cfg.WALSyncBytes, oc.faultHook)
		if err != nil {
			return nil, err
		}
		db.wal.dev.Store(dev)
	}
	return db, nil
}

// Close flushes and closes the durable log device, if any.  It does not wait
// for open transactions; in-memory state remains usable but no further
// durable appends may happen.  A nil error is returned for a counters-only
// database.
func (db *DB) Close() error {
	dev := db.wal.dev.Load()
	if dev == nil {
		return nil
	}
	return dev.close()
}

// NewDB creates a database for the given schema.
//
// Deprecated: use Open with functional options; NewDB(schema, cfg) is
// equivalent to Open(schema, WithConfig(cfg)).  NewDB predates load policies
// and cannot express them.
func NewDB(schema *Schema, cfg Config) (*DB, error) {
	return open(schema, openConfig{cfg: cfg, indexPolicy: IndexImmediate})
}

// MustNewDB is NewDB that panics on error.
//
// Deprecated: use MustOpen.
func MustNewDB(schema *Schema, cfg Config) *DB {
	db, err := NewDB(schema, cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *Schema { return db.schema }

// Config returns the engine configuration.
func (db *DB) Config() Config { return db.cfg }

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Locks returns the lock manager.
func (db *DB) Locks() *LockManager { return db.locks }

// WAL returns the redo log.
func (db *DB) WAL() *WAL { return db.wal }

// Cache returns the buffer cache.
func (db *DB) Cache() *BufferCache { return db.cache }

// GroupCommitEnabled reports whether the database commits through the group
// commit queue (WithGroupCommit).
func (db *DB) GroupCommitEnabled() bool { return db.group != nil }

// Stats returns a snapshot of the engine-wide counters.  Derived quantities
// (pages allocated, log bytes) are computed at snapshot time from their
// owning components rather than being re-derived on every insert.
func (db *DB) Stats() DBStats {
	ws := db.wal.Stats()
	out := DBStats{
		RowsInserted:     db.counters.rowsInserted.Load(),
		RowsRejected:     db.counters.rowsRejected.Load(),
		Transactions:     db.counters.transactions.Load(),
		Commits:          db.counters.commits.Load(),
		Rollbacks:        db.counters.rollbacks.Load(),
		IndexSplits:      db.counters.indexSplits.Load(),
		LockConflicts:    db.counters.lockConflicts.Load(),
		IndexesCreated:   db.counters.indexesCreated.Load(),
		IndexesDropped:   db.counters.indexesDropped.Load(),
		IndexDDLFailures: db.counters.indexDDLFailed.Load(),
		PagesAllocated:   db.pagesAllocated(),
		LogBytes:         ws.Bytes,
		WALSyncs:         ws.Syncs,
		GroupCommits:     ws.GroupCommits,
		GroupedCommits:   ws.GroupedCommits,
		MaxGroupSize:     ws.MaxGroupSize,
	}
	db.counters.violMu.Lock()
	out.ConstraintViolations = make(map[ConstraintKind]int64, len(db.counters.violations))
	for k, v := range db.counters.violations {
		out.ConstraintViolations[k] = v
	}
	db.counters.violMu.Unlock()
	for _, t := range db.tables {
		t.mu.RLock()
		for _, ix := range t.indexList {
			out.IndexKeyBytes += int64(ix.tree.KeyBytes())
			out.IndexArenaBytes += int64(ix.tree.ArenaBytes())
		}
		t.mu.RUnlock()
	}
	return out
}

// TotalRows returns the number of live rows summed over all tables.
func (db *DB) TotalRows() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.RowCount()
	}
	return n
}

// TotalBytes returns the number of live bytes summed over all tables,
// including pre-populated (simulated pre-existing) bytes.
func (db *DB) TotalBytes() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.LogicalByteSize()
	}
	return n
}

// RowCounts returns a map of table name to live row count.
func (db *DB) RowCounts() map[string]int64 {
	out := make(map[string]int64, len(db.tables))
	for name, t := range db.tables {
		out[name] = t.RowCount()
	}
	return out
}

// checkForeignKeys verifies every foreign key of the row; NULL components are
// treated as satisfied (SQL MATCH SIMPLE semantics).  Each parent probe takes
// the parent table's read lock for just the hash lookup, with two exceptions:
// a parent equal to heldLock, whose mutex the caller already holds
// (VerifyIntegrity scanning a self-referential table; re-acquiring it could
// deadlock behind a queued writer), and allLocked callers (the batch-apply
// path, which read-locked every distinct parent once via lockParentsForBatch
// and holds the child's own write lock), whose probes are pure hash lookups.
// Like the production system's deferred constraint checking, a parent row
// rolled back between the probe and the child's commit is caught by
// VerifyIntegrity, not here.
func (db *DB) checkForeignKeys(sc *scratch, t *Table, row Row, rep *OpReport, heldLock *Table, allLocked bool) error {
	ts := t.schema
	for fi := range ts.ForeignKeys {
		fk := &ts.ForeignKeys[fi]
		rep.ConstraintChecks++
		key := sc.fkKey(len(fk.Columns))
		null := false
		for i, c := range t.fkColIdxs[fi] {
			v := row[c]
			if v.IsNull() {
				null = true
				break
			}
			key[i] = v
		}
		if null {
			continue
		}
		parent := db.tables[fk.RefTable]
		rep.FKLookups++
		found := false
		if parent != nil {
			lock := !allLocked && parent != heldLock
			if lock {
				parent.mu.RLock()
			}
			found = parent.lookupPK(sc, key)
			if lock {
				parent.mu.RUnlock()
			}
		}
		if !found {
			return &ConstraintError{Kind: KindForeignKey, Table: ts.Name, Constraint: fk.Name,
				Detail: fmt.Sprintf("no parent row in %q for key %s", fk.RefTable, EncodeKey(key))}
		}
	}
	return nil
}

// insert validates and stores one row on behalf of txn.  It returns the
// physical-work report; on constraint violation nothing is stored.
func (db *DB) insert(txn *Txn, tableName string, columns []string, values []Value) (OpReport, error) {
	var rep OpReport
	t, ok := db.tables[tableName]
	if !ok {
		db.counters.rowsRejected.Add(1)
		db.recordViolationKind(KindUnknownTable)
		return rep, &ConstraintError{Kind: KindUnknownTable, Table: tableName}
	}
	sc := txn.sc
	row, err := t.buildRow(columns, values)
	if err != nil {
		db.recordViolation(err)
		return rep, err
	}
	if err := db.checkForeignKeys(sc, t, row, &rep, nil, false); err != nil {
		db.recordViolation(err)
		return rep, err
	}
	// The pending count rises before the row becomes visible and falls after
	// a failed store, so ReadStamp's pendingRows == 0 always implies "no
	// uncommitted rows visible" (over-approximating the visibility window is
	// safe; under-approximating it would let snapshot readers cache dirty
	// reads).
	t.pendingRows.Add(1)
	id, loc, insRep, err := t.insertPrepared(sc, row)
	rep.Add(insRep)
	if err != nil {
		t.pendingRows.Add(-1)
		db.recordViolation(err)
		return rep, err
	}

	// Lock, log and cache accounting.
	other, lockErr := db.locks.LockRows(txn.id, tableName, 1)
	if lockErr != nil {
		// The row is stored; a lock accounting failure indicates misuse of
		// the transaction, which we surface loudly.
		panic(lockErr)
	}
	if other > 0 {
		db.counters.lockConflicts.Add(1)
	}
	rep.LogBytes += db.wal.AppendInsert(rep.RowBytes + rep.IndexEntryBytes)
	if dev := db.wal.dev.Load(); dev != nil {
		dev.logInsert(t.tid, txn.id, id, []Row{row})
	}
	miss, _ := db.cache.Touch(tableName, loc.pageIdx, true)
	if miss {
		rep.CacheMisses++
	}
	// Database-writer activation: once enough dirty buffers accumulate, the
	// writer searches the whole allocated cache for them.  The inserting
	// session pays for that search, which is why a smaller data cache loads
	// faster (§4.5.5).
	if _, scanned, flushed := db.cache.MaybeFlushDirty(db.cfg.DirtyFlushPages); flushed {
		rep.CacheScanPages += scanned
	}

	txn.recordInsert(tableName, id)
	rep.UndoRecords++
	db.counters.rowsInserted.Add(1)
	db.counters.indexSplits.Add(int64(insRep.IndexSplits))
	return rep, nil
}

func (db *DB) recordViolation(err error) {
	db.counters.rowsRejected.Add(1)
	if kind, ok := ViolationKind(err); ok {
		db.recordViolationKind(kind)
	}
}

func (db *DB) recordViolationKind(kind ConstraintKind) {
	db.counters.violMu.Lock()
	db.counters.violations[kind]++
	db.counters.violMu.Unlock()
}

func (db *DB) pagesAllocated() int64 {
	var n int64
	for _, t := range db.tables {
		n += int64(t.PageCount())
	}
	return n
}

// CreateIndex builds a secondary index on the named table under the
// database's default maintenance policy (see WithIndexPolicy).
func (db *DB) CreateIndex(table, name string, columns []string, unique bool) (*Index, error) {
	return db.CreateIndexWith(table, name, columns, unique, db.indexPolicy)
}

// CreateIndexWith builds a secondary index with an explicit maintenance
// policy, overriding the database default.  A deferred-policy index created
// during a load phase (between BeginLoad and Seal) starts suspended and is
// populated by Seal; otherwise it is backfilled immediately.
//
// Both CreateIndexWith and DropIndex update DBStats symmetrically: successes
// bump IndexesCreated/IndexesDropped, every error path bumps
// IndexDDLFailures, and both return typed errors (ErrNoSuchTable,
// ErrIndexExists, ErrNoSuchIndex, ErrNoSuchColumn).
func (db *DB) CreateIndexWith(table, name string, columns []string, unique bool, policy IndexPolicy) (*Index, error) {
	t, ok := db.tables[table]
	if !ok {
		db.counters.indexDDLFailed.Add(1)
		db.recordViolationKind(KindUnknownTable)
		return nil, ErrNoSuchTable
	}
	ix, err := t.createIndex(name, columns, unique, policy)
	if err != nil {
		db.counters.indexDDLFailed.Add(1)
		return nil, err
	}
	db.counters.indexesCreated.Add(1)
	return ix, nil
}

// DropIndex removes a secondary index from the named table.  Its error paths
// record the same statistics as CreateIndexWith's (see there).
func (db *DB) DropIndex(table, name string) error {
	t, ok := db.tables[table]
	if !ok {
		db.counters.indexDDLFailed.Add(1)
		db.recordViolationKind(KindUnknownTable)
		return ErrNoSuchTable
	}
	if err := t.dropIndex(name); err != nil {
		db.counters.indexDDLFailed.Add(1)
		return err
	}
	db.counters.indexesDropped.Add(1)
	return nil
}

// IndexPolicyDefault returns the database's default index maintenance policy.
func (db *DB) IndexPolicyDefault() IndexPolicy { return db.indexPolicy }

// AllIndexes lists every secondary index in the database, sorted by table
// then index name.
func (db *DB) AllIndexes() []*Index {
	var out []*Index
	for _, name := range db.schema.TableNames() {
		out = append(out, db.tables[name].Indexes()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PrePopulate marks the named table as already holding rows/bytes from
// earlier loading sessions.  It is used by the Figure 9 experiment (effect of
// database size) to set up 50-300 GB databases without materializing them;
// the insert path with secondary indices disabled does not depend on resident
// volume, which is exactly the behaviour the paper reports.
func (db *DB) PrePopulate(table string, rows, bytes int64) error {
	t, ok := db.tables[table]
	if !ok {
		return ErrNoSuchTable
	}
	t.prePopulate(rows, bytes)
	return nil
}

// PrePopulateEvenly spreads the given volume across all tables proportionally
// to a fixed catalog-like distribution (objects dominate).
func (db *DB) PrePopulateEvenly(totalBytes int64) {
	names := db.schema.TableNames()
	if len(names) == 0 {
		return
	}
	per := totalBytes / int64(len(names))
	for _, n := range names {
		// Assume ~200 bytes per historical row.
		_ = db.PrePopulate(n, per/200, per)
	}
}
