package relstore

import (
	"bytes"
	"slices"
)

// This file implements the load lifecycle around deferred index maintenance,
// the engine-level form of the paper's Figure 8 tuning: drop secondary
// indexes while loading, rebuild them in bulk afterwards.
//
//	db.BeginLoad()          // suspend every deferred-policy index
//	... bulk ingest ...     // inserts skip suspended indexes entirely
//	rep, err := db.Seal()   // rebuild each suspended index from the heap
//
// Ownership rules (enforced by documentation, checked where cheap):
//
//   - BeginLoad must be called with no transaction in flight that has already
//     inserted rows: rows indexed before suspension and rolled back after it
//     would leave stale index entries behind, because rollback skips
//     suspended indexes.
//   - Seal is called once, by the load coordinator, after every loader
//     transaction has committed or rolled back.  It takes each table's write
//     lock for the duration of that table's rebuilds, so concurrent readers
//     block per table and writers queue; it never observes a torn index.
//   - Between BeginLoad and Seal a suspended index reports Ready() == false
//     and is missing every row loaded since the phase opened; query planners
//     must fall back to a scan (internal/queries does).
//
// Seal rebuilds from the live heap only, so a batch rolled back mid-load
// leaves the sealed index identical to one maintained immediately over the
// surviving rows (see TestSealAfterRollback).

// IndexBuildReport describes the bulk rebuild of one index by Seal.
type IndexBuildReport struct {
	Table string
	Index string
	// Rows is the number of (key, row) pairs streamed into the build.
	Rows int
	// DistinctKeys is the number of distinct keys stored.
	DistinctKeys int
	// NodesBuilt is the number of B-tree nodes constructed.
	NodesBuilt int
	// Height is the height of the finished tree.
	Height int
	// EntryBytes is the index-entry volume written (same accounting as
	// OpReport.IndexEntryBytes).
	EntryBytes int
	// IntCols and FloatCols are the index's integer-kinded and float key
	// column counts, the cost classes the DES model charges per node (the
	// same classes that price immediate maintenance, so virtual-time
	// comparisons of the two policies answer the same question).
	IntCols   int
	FloatCols int
}

// SealReport aggregates the work performed by one Seal call.
type SealReport struct {
	// Indexes reports each rebuilt index, ordered by table then index name.
	Indexes []IndexBuildReport
	// RowsStreamed, NodesBuilt and EntryBytes are totals over Indexes.
	RowsStreamed int
	NodesBuilt   int
	EntryBytes   int
}

// Sealed reports whether the call rebuilt anything.
func (r SealReport) Sealed() bool { return len(r.Indexes) > 0 }

// BeginLoad opens a load phase: every index whose policy is IndexDeferred is
// suspended, so subsequent inserts skip it, until Seal rebuilds it.  Indexes
// with the immediate policy are unaffected.  It returns ErrLoadPhaseActive
// if a load phase is already open.
func (db *DB) BeginLoad() error {
	if !db.loading.CompareAndSwap(false, true) {
		return ErrLoadPhaseActive
	}
	for _, name := range db.schema.TableNames() {
		t := db.tables[name]
		t.mu.Lock()
		changed := false
		for _, ix := range t.indexList {
			if ix.policy == IndexDeferred && !ix.suspended.Load() {
				ix.suspended.Store(true)
				changed = true
			}
		}
		if changed {
			t.rebuildIndexList()
		}
		t.mu.Unlock()
	}
	return nil
}

// InLoadPhase reports whether a load phase is open (BeginLoad called, Seal
// not yet).
func (db *DB) InLoadPhase() bool { return db.loading.Load() }

// Seal closes the load phase: every suspended index is rebuilt from the live
// heap rows in one presorted bulk pass (BTree.BuildFromSorted) and normal
// maintenance resumes.  Tables are processed in schema name order, each under
// its write lock.  Seal is idempotent — with no load phase open and nothing
// suspended it returns an empty report.
func (db *DB) Seal() (SealReport, error) {
	// The load-phase flag drops before any table lock is taken.  Order
	// matters for a concurrent CreateIndexWith(..., IndexDeferred): its
	// mid-load check runs under the table lock, so once this store is
	// visible a new deferred index backfills immediately instead of
	// starting suspended — were the flag cleared after the per-table
	// sweeps, an index created on an already-swept table would stay
	// suspended forever with no later Seal to rebuild it.  An index that
	// instead wins its table's lock before the sweep starts suspended and
	// the sweep rebuilds it; either way nothing is left un-ready.
	db.loading.Store(false)
	var rep SealReport
	for _, name := range db.schema.TableNames() {
		db.tables[name].sealIndexes(&rep)
	}
	for i := range rep.Indexes {
		rep.RowsStreamed += rep.Indexes[i].Rows
		rep.NodesBuilt += rep.Indexes[i].NodesBuilt
		rep.EntryBytes += rep.Indexes[i].EntryBytes
	}
	return rep, nil
}

// sealIndexes rebuilds every suspended index of the table under one
// write-lock hold.
func (t *Table) sealIndexes(rep *SealReport) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var suspended []*Index
	for _, ix := range t.indexList {
		if ix.suspended.Load() {
			suspended = append(suspended, ix)
		}
	}
	if len(suspended) == 0 {
		return
	}
	for _, ix := range suspended {
		rep.Indexes = append(rep.Indexes, t.rebuildIndexLocked(ix))
		ix.suspended.Store(false)
	}
	t.rebuildIndexList()
}

// scanRowsByID visits every live row in row-id order; t.mu must be held.
// Unlike a heap scan plus a location→id inversion map, the row directory is
// indexed by id already, so the seal path reads (id, row) pairs with two
// array lookups per row and no per-table map.
func (t *Table) scanRowsByID(visit func(id int64, r Row)) {
	for id, loc := range t.rows.locs {
		if loc.pageIdx < 0 {
			continue
		}
		if r := t.heap.get(loc); r != nil {
			visit(int64(id), r)
		}
	}
}

// rebuildIndexLocked collects the table's live (key, row id) pairs for the
// index, encodes the keys into one flat arena, sorts the pairs by (encoded
// key, id) — a memcmp-driven sort, which is why the float-surrogate sort the
// []Value layout needed is gone — and replaces the index's tree with a fresh
// bulk-built one that retains the arena; t.mu must be write-held.
// Single-column integer-kinded indexes (the htmid shape) take a raw-int64
// fast path mirroring the batch path's bulkIndexInsertInt64: extract
// payloads, pair-sort without a comparator, build directly.
func (t *Table) rebuildIndexLocked(ix *Index) IndexBuildReport {
	rep := IndexBuildReport{
		Table: t.schema.Name, Index: ix.Name,
		IntCols: ix.otherCols, FloatCols: ix.floatCols,
	}
	if ix.int64Keyed && t.rebuildIndexInt64Locked(ix, &rep) {
		return rep
	}
	k := len(ix.colIdxs)
	n := int(t.heap.rowCount)
	karena := make([]byte, 0, n*k*9) // exact for numeric kinds; strings grow it
	kvs := make([]idxKV, 0, n)
	sorted := true
	t.scanRowsByID(func(id int64, r Row) {
		start := len(karena)
		for _, c := range ix.colIdxs {
			karena = appendOrderedValue(karena, r[c])
			rep.EntryBytes += ValueSize(r[c])
		}
		rep.EntryBytes += 8 // row id pointer
		key := karena[start:len(karena):len(karena)]
		if sorted && len(kvs) > 0 && bytes.Compare(kvs[len(kvs)-1].key, key) > 0 {
			sorted = false
		}
		kvs = append(kvs, idxKV{key: key, id: id})
	})
	if !sorted {
		// Heap order is insertion order, so ids ascend within equal keys and
		// the id tie-break reproduces per-row insertion order.
		slices.SortFunc(kvs, cmpKV)
	}
	tree := NewBTree(t.btreeDegree)
	st := tree.buildFromKVs(kvs, cap(karena))
	ix.tree = tree
	rep.Rows = st.Rows
	rep.DistinctKeys = st.Entries
	rep.NodesBuilt = st.NodesBuilt
	rep.Height = st.Height
	return rep
}

// rebuildIndexInt64Locked is rebuildIndexLocked for single-column
// integer-kinded indexes with no NULL keys: raw int64 extraction, the
// specialized pair sort, and a direct bulk build of one-element keys carved
// from a flat arena.  It reports false — having done nothing — when a NULL
// key means the generic path must handle the rebuild.
func (t *Table) rebuildIndexInt64Locked(ix *Index, rep *IndexBuildReport) bool {
	c := ix.colIdxs[0]
	n := int(t.heap.rowCount)
	ks := make([]int64, 0, n)
	vs := make([]int64, 0, n)
	sorted := true
	null := false
	t.scanRowsByID(func(id int64, r Row) {
		if null {
			return
		}
		v := r[c]
		if v.Kind == KindNull {
			null = true
			return
		}
		if sorted && len(ks) > 0 && ks[len(ks)-1] > v.I {
			sorted = false
		}
		ks = append(ks, v.I)
		vs = append(vs, id)
	})
	if null {
		return false
	}
	if !sorted {
		// Row-id order is insertion order, so ids ascend within equal keys.
		sortInt64Pairs(ks, vs)
	}
	rep.EntryBytes += len(ks) * (ValueSize(Value{Kind: ix.keyKind}) + 8)

	// Build entries straight from the raw keys: adjacent duplicates merge on
	// an int64 compare, encoded keys are carved from one flat byte arena, and
	// the initial one-id slices are full-cap sub-slices of a second arena.
	karena := make([]byte, 0, len(ks)*9)
	idArena := make([]int64, 0, len(ks))
	entries := make([]btreeEntry, 0, len(ks))
	var prev int64
	for i := range ks {
		if n := len(entries); n > 0 && prev == ks[i] {
			entries[n-1].rowIDs = append(entries[n-1].rowIDs, vs[i])
			continue
		}
		prev = ks[i]
		start := len(karena)
		karena = appendOrderedValue(karena, Value{Kind: ix.keyKind, I: ks[i]})
		idArena = append(idArena, vs[i])
		entries = append(entries, btreeEntry{
			key:    karena[start:len(karena):len(karena)],
			rowIDs: idArena[len(idArena)-1 : len(idArena) : len(idArena)],
		})
	}
	tree := NewBTree(t.btreeDegree)
	st := tree.buildFromEntries(entries, len(ks))
	tree.keyArena = karena
	tree.idArena = idArena
	tree.keyBytes = len(karena)
	tree.arenaBytes = cap(karena)
	ix.tree = tree
	rep.Rows = st.Rows
	rep.DistinctKeys = st.Entries
	rep.NodesBuilt = st.NodesBuilt
	rep.Height = st.Height
	return true
}

// buildFromKVs is BuildFromSorted over idxKV pairs (the seal path's layout).
// Unlike the exported entry point it does not clone keys: rebuildIndexLocked
// encodes into a fresh key arena per rebuild and never reuses it, so the tree
// may retain the kv key slices directly; arenaCap is that arena's capacity,
// recorded for the ArenaBytes accounting.  Initial row-id slices are carved
// full (len == cap) from one arena, so later appends reallocate instead of
// overwriting a neighbour.
func (t *BTree) buildFromKVs(kvs []idxKV, arenaCap int) BuildStats {
	idArena := make([]int64, 0, len(kvs))
	entries := make([]btreeEntry, 0, len(kvs))
	keyBytes := 0
	for i := range kvs {
		if n := len(entries); n > 0 && bytes.Equal(entries[n-1].key, kvs[i].key) {
			entries[n-1].rowIDs = append(entries[n-1].rowIDs, kvs[i].id)
			continue
		}
		keyBytes += len(kvs[i].key)
		idArena = append(idArena, kvs[i].id)
		entries = append(entries, btreeEntry{key: kvs[i].key,
			rowIDs: idArena[len(idArena)-1 : len(idArena) : len(idArena)]})
	}
	t.keyArena = nil
	t.idArena = idArena
	t.keyBytes = keyBytes
	t.arenaBytes = arenaCap
	return t.buildFromEntries(entries, len(kvs))
}
