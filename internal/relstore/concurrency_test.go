package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentInsertSharedTables is the race-stress test of the concurrent
// write path: many goroutines run their own transactions against the same
// tables (including parent/child foreign-key probes), with interleaved
// commits and rollbacks.  Run under -race this exercises the per-table locks,
// the pooled per-goroutine scratch buffers, the lock manager, the WAL and the
// buffer cache; the assertions pin row counts, primary-key consistency and
// referential integrity afterwards.
func TestConcurrentInsertSharedTables(t *testing.T) {
	const (
		writers      = 8
		txnsPerGor   = 6
		rowsPerTxn   = 50
		rollbackEach = 3 // every 3rd transaction rolls back
	)
	db, err := Open(testSchema(t), WithMaxConcurrentTxns(writers), WithDirtyFlushPages(8), WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	// Shared parent rows for the foreign-key probes.
	setup, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(1); f <= 4; f++ {
		if _, err := setup.Insert("frames", []string{"frame_id", "exposure"}, []Value{Int(f), Float(1.5)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var committedObjects int64
	var mu sync.Mutex
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := 0; tx < txnsPerGor; tx++ {
				txn, err := db.BeginBlocking()
				if err != nil {
					t.Errorf("writer %d: begin: %v", g, err)
					return
				}
				base := int64(g)*1_000_000 + int64(tx)*10_000
				inserted := int64(0)
				for r := int64(0); r < rowsPerTxn; r++ {
					id := base + r
					if _, err := txn.Insert("objects",
						[]string{"object_id", "frame_id", "mag"},
						[]Value{Int(id), Int(id%4 + 1), Float(float64(id%40) + 0.25)}); err != nil {
						t.Errorf("writer %d: insert object %d: %v", g, id, err)
						_ = txn.Rollback()
						return
					}
					inserted++
					// A child row referencing the object inserted in the same
					// transaction (dirty-read FK probe across tables).
					if r%5 == 0 {
						if _, err := txn.Insert("fingers",
							[]string{"finger_id", "object_id", "flux"},
							[]Value{Int(id), Int(id), Float(float64(r))}); err != nil {
							t.Errorf("writer %d: insert finger %d: %v", g, id, err)
						}
					}
					// Duplicate-PK attempts must fail cleanly, never corrupt.
					if r == 10 {
						if _, err := txn.Insert("objects",
							[]string{"object_id", "frame_id", "mag"},
							[]Value{Int(base), Int(1), Float(1)}); err == nil {
							t.Errorf("writer %d: duplicate PK accepted", g)
						}
					}
				}
				if tx%rollbackEach == rollbackEach-1 {
					if err := txn.Rollback(); err != nil {
						t.Errorf("writer %d: rollback: %v", g, err)
					}
				} else {
					if _, err := txn.Commit(); err != nil {
						t.Errorf("writer %d: commit: %v", g, err)
					}
					mu.Lock()
					committedObjects += inserted
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	objs := db.Table("objects").RowCount()
	if objs != committedObjects {
		t.Errorf("objects rows = %d, want %d committed", objs, committedObjects)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Errorf("primary keys inconsistent after concurrent load: %v", err)
	}
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Errorf("%d orphaned rows after concurrent load", orphans)
	}
	st := db.Stats()
	if st.RowsInserted != db.TotalRows() {
		t.Errorf("stats RowsInserted = %d, want %d live rows", st.RowsInserted, db.TotalRows())
	}
	if st.Transactions == 0 || st.Commits == 0 || st.Rollbacks == 0 {
		t.Errorf("expected nonzero txn/commit/rollback counters, got %+v", st)
	}
}

// TestConcurrentReadersAndWriters mixes scans, indexed lookups and aggregate
// queries with a writer on the same table; run under -race it guards the
// reader/writer lock discipline of the query layer.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); err != nil {
		t.Fatal(err)
	}
	seed, _ := db.Begin()
	if _, err := seed.Insert("frames", []string{"frame_id"}, []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		txn, err := db.Begin()
		if err != nil {
			t.Errorf("begin: %v", err)
			return
		}
		for i := int64(0); i < 5000; i++ {
			if _, err := txn.Insert("objects",
				[]string{"object_id", "frame_id", "mag"},
				[]Value{Int(i), Int(1), Float(float64(i % 40))}); err != nil {
				t.Errorf("insert: %v", err)
				break
			}
		}
		if _, err := txn.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := int64(0)
				_ = db.ScanRef("objects", func(Row) bool { n++; return true })
				if _, err := db.Aggregate("objects", "mag"); err != nil {
					t.Errorf("aggregate: %v", err)
					return
				}
				if _, _, err := db.SelectEqualIndexed("objects", "ix_mag", []Value{Float(7)}); err != nil {
					t.Errorf("indexed select: %v", err)
					return
				}
				if _, err := db.LookupByPK("objects", []Value{Int(n / 2)}); err != nil {
					t.Errorf("pk lookup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := db.Table("objects").RowCount(); got != 5000 {
		t.Fatalf("objects rows = %d, want 5000", got)
	}
}

// TestScratchPoolReuse sanity-checks that scratches cycle through the pool
// without cross-transaction contamination of encoded keys.
func TestScratchPoolReuse(t *testing.T) {
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := txn.Insert("frames", []string{"frame_id"}, []Value{Int(i)}); err != nil {
			t.Fatalf("insert frame %d: %v", i, err)
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	row, err := db.LookupByPK("frames", []Value{Int(25)})
	if err != nil || row == nil {
		t.Fatalf("LookupByPK(25) = %v, %v", row, err)
	}
	if got := db.Table("frames").RowCount(); got != 50 {
		t.Fatalf("frames rows = %d, want 50", got)
	}
}

// BenchmarkConcurrentInsert measures the concurrent insert path at several
// writer counts; with GOMAXPROCS > 1 it shows how far the per-table lock
// sharding lets disjoint-table writers scale.
func BenchmarkConcurrentInsert(b *testing.B) {
	for _, writers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			db, err := Open(testSchema(b), WithMaxConcurrentTxns(writers))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/writers + 1
			for g := 0; g < writers; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					txn, err := db.BeginBlocking()
					if err != nil {
						b.Error(err)
						return
					}
					base := int64(g) * 1_000_000_000
					for i := 0; i < per; i++ {
						if _, err := txn.Insert("frames", []string{"frame_id"},
							[]Value{Int(base + int64(i))}); err != nil {
							b.Error(err)
							break
						}
					}
					if _, err := txn.Commit(); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}
