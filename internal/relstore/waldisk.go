package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// walDevice is the durable half of the WAL: an append-only sequence of
// segmented log files under one directory, attached to a DB by WithWALDir.
// The counter WAL (wal.go) stays the engine's cost model; the device is the
// real byte stream that Recover replays.
//
// Ownership rules (also documented in PERFORMANCE.md):
//
//   - The device owns every "wal-*.seg" and "checkpoint-*.ckpt" file in its
//     directory.  Exactly one DB may have the directory open at a time;
//     nothing else may write there.
//   - Appends buffer in memory; only sync() — reached from commit syncs,
//     group-commit SyncGroup, the auto-sync threshold and segment rotation —
//     writes buffered bytes to the OS and fsyncs.  A process kill therefore
//     loses at most the records appended since the last sync, which is
//     exactly the durability contract commit acknowledgement makes.
//   - Segments are immutable once rotated away from.  Only Recover may
//     truncate (a torn tail off the newest segment) and only a completed
//     checkpoint may delete (whole segments older than the checkpoint LSN).
type walDevice struct {
	dir          string
	segmentBytes int64
	// syncThreshold auto-syncs the device once this many bytes are buffered
	// unsynced (the durable analogue of Config.WALSyncBytes); 0 disables.
	syncThreshold int64
	fault         FaultHook

	mu       sync.Mutex
	f        *os.File
	segStart int64 // LSN of the current segment's first record
	written  int64 // bytes written to the OS in the current segment
	buf      []byte
	scratch  []byte
	nextLSN  int64

	unsynced int64 // bytes appended since the last sync

	// Counters surfaced through WALStats.  Guarded by mu; replay counters are
	// written once by Recover before the DB is shared.
	appendedBytes   int64
	syncs           int64
	segmentsCreated int64
	segmentsDeleted int64
	checkpoints     int64
	bytesSinceCkpt  int64
	replayRecords   int64
	replayRows      int64
	replayBytes     int64
	replayTornTail  int64
}

const (
	walSegPrefix  = "wal-"
	walSegSuffix  = ".seg"
	ckptPrefix    = "checkpoint-"
	ckptSuffix    = ".ckpt"
	defaultWALSeg = 4 << 20
)

func walSegName(firstLSN int64) string {
	return fmt.Sprintf("%s%016x%s", walSegPrefix, firstLSN, walSegSuffix)
}

// parseSegName returns the first LSN encoded in a segment file name.
func parseSegName(name string) (int64, bool) {
	if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix)
	n, err := strconv.ParseInt(hex, 16, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func ckptName(seq int64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
}

func parseCkptName(name string) (int64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	n, err := strconv.ParseInt(hex, 16, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listWALSegments returns the segment file names under dir sorted by first
// LSN (the hex zero-padded names sort identically either way).
func listWALSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// listCheckpoints returns checkpoint sequence numbers under dir, ascending.
func listCheckpoints(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// openWALDevice creates the durable log in dir for a FRESH database.  A
// directory already holding segments or checkpoints is refused: existing state
// must go through Recover, which resumes the device itself.
func openWALDevice(dir string, segmentBytes, syncThreshold int64, hook FaultHook) (*walDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: wal dir: %w", err)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("relstore: wal dir: %w", err)
	}
	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, fmt.Errorf("relstore: wal dir: %w", err)
	}
	if len(segs) > 0 || len(ckpts) > 0 {
		return nil, fmt.Errorf("relstore: wal dir %q already holds log state (%d segments, %d checkpoints); use Recover", dir, len(segs), len(ckpts))
	}
	return startWALDevice(dir, segmentBytes, syncThreshold, hook, 0)
}

// startWALDevice opens a device whose next record will carry firstLSN, in a
// fresh segment.  Shared by openWALDevice (LSN 0) and Recover (last replayed
// LSN + 1).
func startWALDevice(dir string, segmentBytes, syncThreshold int64, hook FaultHook, firstLSN int64) (*walDevice, error) {
	if segmentBytes <= 0 {
		segmentBytes = defaultWALSeg
	}
	d := &walDevice{
		dir:           dir,
		segmentBytes:  segmentBytes,
		syncThreshold: syncThreshold,
		fault:         hook,
		nextLSN:       firstLSN,
	}
	if err := d.openSegmentLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// openSegmentLocked opens a fresh segment named by the next LSN; d.mu must be
// held (or the device not yet shared).  The directory is fsynced before the
// segment is used: without it a power loss could drop the directory entry of
// a fully-fsynced segment, silently losing acknowledged commits.
func (d *walDevice) openSegmentLocked() error {
	path := filepath.Join(d.dir, walSegName(d.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("relstore: wal segment: %w", err)
	}
	if err := syncWALDir(d.dir); err != nil {
		f.Close()
		return fmt.Errorf("relstore: wal segment: %w", err)
	}
	d.f = f
	d.segStart = d.nextLSN
	d.written = 0
	d.segmentsCreated++
	return nil
}

// syncWALDir fsyncs a log directory so newly created or renamed entries are
// durable.
func syncWALDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// callFault invokes the fault hook, if any, at point p.
func (d *walDevice) callFault(p FaultPoint) error {
	if d.fault == nil {
		return nil
	}
	return d.fault(p)
}

// appendLocked frames payload onto the buffer under d.mu, rotating first when
// the segment is full.  It is the single funnel every durable record goes
// through; LSNs are assigned here, so record order in the files matches LSN
// order by construction.
func (d *walDevice) appendLocked(payload []byte) {
	frameLen := int64(walFrameHeader + len(payload))
	if d.written+int64(len(d.buf))+frameLen > d.segmentBytes && d.written+int64(len(d.buf)) > 0 {
		d.rotateLocked()
	}
	d.buf = appendWALFrame(d.buf, payload)
	d.appendedBytes += frameLen
	d.bytesSinceCkpt += frameLen
	d.unsynced += frameLen
	d.nextLSN++
	if d.syncThreshold > 0 && d.unsynced >= d.syncThreshold {
		d.syncLocked()
	}
}

// rotateLocked makes the current segment durable and immutable and opens the
// next one.  The flush+fsync before close means every record in a rotated-away
// segment is on disk — the invariant checkpoint truncation relies on.
func (d *walDevice) rotateLocked() {
	d.syncLocked()
	if err := d.f.Close(); err != nil {
		panic(fmt.Sprintf("relstore: wal close: %v", err))
	}
	if err := d.openSegmentLocked(); err != nil {
		panic(err.Error())
	}
}

// flushLocked writes buffered bytes to the OS without fsync.
func (d *walDevice) flushLocked() {
	if len(d.buf) == 0 {
		return
	}
	n, err := d.f.Write(d.buf)
	if err != nil {
		panic(fmt.Sprintf("relstore: wal write: %v", err))
	}
	d.written += int64(n)
	d.buf = d.buf[:0]
}

// syncLocked flushes and fsyncs; d.mu must be held.
func (d *walDevice) syncLocked() {
	if err := d.callFault(FPWALSync); err != nil {
		panic(fmt.Sprintf("relstore: wal sync: %v", err))
	}
	d.flushLocked()
	if err := d.f.Sync(); err != nil {
		panic(fmt.Sprintf("relstore: wal fsync: %v", err))
	}
	d.syncs++
	d.unsynced = 0
}

// sync makes every appended record durable (the real fsync that syncDevice
// and SyncGroup map to when a WAL directory is configured).
func (d *walDevice) sync() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncLocked()
}

// logInsert appends insert records covering rows stored with contiguous ids
// starting at firstID.  Batches whose encoding would exceed the
// walInsertRecordLimit payload budget split into multiple records (still one
// lock hold, so records for the same table stay in id order) — recovery
// rejects larger frames as corrupt, so an unchunked oversized record would
// make the log unrecoverable.
func (d *walDevice) logInsert(tableID uint32, txnID, firstID int64, rows []Row) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.callFault(FPWALAppend); err != nil {
		panic(fmt.Sprintf("relstore: wal append: %v", err))
	}
	for start := 0; start < len(rows); {
		var n int
		d.scratch, n = appendWALInsertBounded(d.scratch[:0], d.nextLSN, tableID, txnID, firstID+int64(start), rows[start:])
		d.appendLocked(d.scratch)
		start += n
	}
}

// logMarker appends a commit or rollback marker for txnID.
func (d *walDevice) logMarker(typ byte, txnID int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.callFault(FPWALAppend); err != nil {
		panic(fmt.Sprintf("relstore: wal append: %v", err))
	}
	d.scratch = appendWALMarker(d.scratch[:0], typ, d.nextLSN, txnID)
	d.appendLocked(d.scratch)
}

// rotateForCheckpoint seals the current segment (flush, fsync, close) and
// opens a fresh one, returning the last LSN the sealed history covers and the
// byte count the seal supersedes.  Every record with LSN <= the returned
// boundary is durable in a rotated-away segment; records appended from here
// on land in the new segment with higher LSNs.  bytesSinceCkpt is NOT reset
// here — the caller credits the covered bytes via noteCheckpointDurable only
// once the checkpoint file is durably in place, so a failed checkpoint write
// leaves the auto-checkpoint trigger armed instead of deferring it by a full
// interval.
func (d *walDevice) rotateForCheckpoint() (boundary, covered int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	boundary = d.nextLSN - 1
	covered = d.bytesSinceCkpt
	d.rotateLocked()
	return boundary, covered
}

// noteCheckpointDurable records a durably completed checkpoint: the bytes its
// rotation sealed stop counting toward the next auto-checkpoint threshold.
func (d *walDevice) noteCheckpointDurable(covered int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkpoints++
	d.bytesSinceCkpt -= covered
	if d.bytesSinceCkpt < 0 {
		d.bytesSinceCkpt = 0
	}
}

// deleteSegmentsBelow removes every segment whose records all have LSN <=
// boundary — those whose successor segment starts at or below boundary+1.
// The current segment is never deleted.  Returns the number removed.
func (d *walDevice) deleteSegmentsBelow(boundary int64) (int, error) {
	d.mu.Lock()
	cur := d.segStart
	d.mu.Unlock()
	segs, err := listWALSegments(d.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, name := range segs {
		first, _ := parseSegName(name)
		// Skip the segment that was active when cur was read AND anything
		// newer: a concurrent append can rotate between the cur read and the
		// directory listing, and the rotated-in segment (first > cur) is live.
		// Only segments strictly below cur are known sealed and immutable.
		if first >= cur {
			continue
		}
		// A sealed segment's records end where its successor begins.  The
		// successor is always in the listing — the segment named cur existed
		// before the listing and sorts after every sealed one — but never
		// delete without that bound in hand.
		if i+1 >= len(segs) {
			continue
		}
		next, _ := parseSegName(segs[i+1])
		if next-1 <= boundary {
			if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
				return removed, err
			}
			removed++
		}
	}
	d.mu.Lock()
	d.segmentsDeleted += int64(removed)
	d.mu.Unlock()
	return removed, nil
}

// shouldCheckpoint reports whether the auto-checkpoint byte threshold has been
// crossed since the last checkpoint.
func (d *walDevice) shouldCheckpoint(every int64) bool {
	if every <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesSinceCkpt >= every
}

// close flushes, fsyncs and closes the device (DB.Close).
func (d *walDevice) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushLocked()
	if err := d.f.Sync(); err != nil {
		return err
	}
	return d.f.Close()
}

// durableStats merges the device counters into a WALStats snapshot.
func (d *walDevice) durableStats(ws *WALStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ws.Durable = true
	ws.DurableBytes = d.appendedBytes
	ws.DurableSyncs = d.syncs
	ws.SegmentsCreated = d.segmentsCreated
	ws.SegmentsDeleted = d.segmentsDeleted
	ws.Checkpoints = d.checkpoints
	ws.ReplayRecords = d.replayRecords
	ws.ReplayRows = d.replayRows
	ws.ReplayBytes = d.replayBytes
	ws.ReplayTornTail = d.replayTornTail
}
