package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Index is a secondary index over one or more columns of a table.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool

	tree    *BTree
	colIdxs []int
	// floatCols and otherCols count the float-typed and non-float-typed
	// indexed columns.  They are classified once at creation so the per-row
	// cost attribution in insertPrepared does not re-inspect the schema for
	// every inserted row.
	floatCols int
	otherCols int
	// int64Keyed marks a single-column index whose non-NULL comparisons
	// reduce to the Value.I payload (integer, timestamp or boolean column) —
	// the htmid index shape — so the bulk paths can sort raw int64 pairs
	// instead of calling a comparator; keyKind is the column's value kind for
	// re-encoding the keys after that sort.  Float-leading indexes need no
	// special comparator anymore: encoded keys compare with one bytes.Compare
	// regardless of column kinds.
	int64Keyed bool
	keyKind    ValueKind

	// policy is the index's maintenance policy (see IndexPolicy).  suspended
	// marks a deferred-policy index whose maintenance is currently paused by
	// an open load phase: insert and rollback paths skip it and Seal rebuilds
	// it from the heap.  It is an atomic because query-side readers check
	// Ready without taking the table lock.
	policy    IndexPolicy
	suspended atomic.Bool
}

// Tree exposes the underlying B-tree (read-only use by tests and queries).
func (ix *Index) Tree() *BTree { return ix.tree }

// Policy returns the index's maintenance policy.
func (ix *Index) Policy() IndexPolicy { return ix.policy }

// Ready reports whether the index is complete and safe to answer queries
// from.  It is false for a deferred-policy index between BeginLoad and Seal,
// when the index is missing the rows loaded so far; query planners should
// fall back to a scan while it is false.
func (ix *Index) Ready() bool { return !ix.suspended.Load() }

// rowDir maps row ids to heap locations.  Ids are allocated densely
// (t.nextRow++, one append per insert), so a slice indexed by id replaces the
// hash map the directory used to be: the insert paths append instead of
// hashing, and only rollback punches holes (pageIdx -1 tombstones).
type rowDir struct {
	locs []rowLoc
	live int
}

// append records the location of the next row id in sequence.
func (d *rowDir) append(loc rowLoc) {
	d.locs = append(d.locs, loc)
	d.live++
}

// get returns the location of a live row id.
func (d *rowDir) get(id int64) (rowLoc, bool) {
	if id < 0 || id >= int64(len(d.locs)) || d.locs[id].pageIdx < 0 {
		return rowLoc{}, false
	}
	return d.locs[id], true
}

// remove tombstones a row id (transaction rollback only).
func (d *rowDir) remove(id int64) {
	if id >= 0 && id < int64(len(d.locs)) && d.locs[id].pageIdx >= 0 {
		d.locs[id] = rowLoc{pageIdx: -1}
		d.live--
	}
}

// Table is the runtime state of one table: schema, heap storage, primary-key
// hash index, unique-constraint hash indexes and secondary B-tree indexes.
//
// Concurrency: mu guards all mutable state (heap, row map, hash indexes,
// B-trees, index list, pre-population counters).  Writers (insertPrepared,
// deleteRow, createIndex, dropIndex, prePopulate) take the write lock; the
// exported read accessors take the read lock.  Key/encoding scratch buffers
// are NOT table state — they travel with the transaction (see scratch.go) so
// concurrent writers on different goroutines never share them.
type Table struct {
	schema *TableSchema

	// tid is the table's stable numeric id (schema declaration order),
	// assigned by DB.open; durable WAL records identify tables by it.
	tid uint32

	mu sync.RWMutex

	heap    *heapStore
	rows    rowDir
	nextRow int64

	pkCols  []int
	pkIndex map[string]int64

	// fkColIdxs[i] holds the resolved column positions of schema.ForeignKeys[i],
	// so per-row FK probes index the row directly instead of re-resolving
	// column names through the schema map.
	fkColIdxs [][]int

	uniqueCols  [][]int
	uniqueMaps  []map[string]int64
	uniqueNames []string

	indexes map[string]*Index
	// indexList is the name-sorted snapshot of indexes, rebuilt eagerly on
	// create/drop so readers and the insert path never mutate it in place.
	// liveList is the subset currently maintained on insert/rollback: it
	// excludes suspended (deferred, mid-load) indexes and is rebuilt together
	// with indexList on create/drop/suspend/seal.
	indexList []*Index
	liveList  []*Index

	btreeDegree int
	// loading points at the owning DB's load-phase flag, read when an index
	// is created mid-load (a deferred index created then starts suspended).
	loading *atomic.Bool

	// prePopulatedBytes models rows that "already exist" in the table from
	// earlier loading sessions without materializing them (Figure 9 sweeps
	// the database size from 50 to 300 GB).
	prePopulatedBytes int64
	prePopulatedRows  int64

	// epoch counts committed (and rolled-back) transactions that touched this
	// table.  Result caches key their entries to the epoch observed while
	// computing a result: a bump invalidates every cached result for the
	// table.  Rollbacks bump too, because the engine stores rows at insert
	// time — rows of a rolled-back transaction were transiently visible to
	// readers, so any result computed meanwhile must not be served again.
	epoch atomic.Int64

	// pendingRows counts rows inserted by transactions that have not yet
	// committed or rolled back.  A reader that observes pendingRows == 0
	// before and after a scan, with an unchanged epoch, has seen a pure
	// committed snapshot (see DB.SnapshotRead).
	pendingRows atomic.Int64
}

func newTable(schema *TableSchema, btreeDegree int, loading *atomic.Bool) (*Table, error) {
	t := &Table{
		schema:      schema,
		heap:        newHeapStore(),
		pkIndex:     make(map[string]int64),
		indexes:     make(map[string]*Index),
		indexList:   []*Index{},
		btreeDegree: btreeDegree,
		loading:     loading,
	}
	for _, c := range schema.PrimaryKey {
		idx := schema.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("relstore: table %q: primary key column %q missing", schema.Name, c)
		}
		t.pkCols = append(t.pkCols, idx)
	}
	for _, fk := range schema.ForeignKeys {
		cols := make([]int, len(fk.Columns))
		for i, c := range fk.Columns {
			idx := schema.ColumnIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("relstore: table %q: foreign key column %q missing", schema.Name, c)
			}
			cols[i] = idx
		}
		t.fkColIdxs = append(t.fkColIdxs, cols)
	}
	for _, u := range schema.Uniques {
		var cols []int
		for _, c := range u.Columns {
			idx := schema.ColumnIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("relstore: table %q: unique column %q missing", schema.Name, c)
			}
			cols = append(cols, idx)
		}
		t.uniqueCols = append(t.uniqueCols, cols)
		t.uniqueMaps = append(t.uniqueMaps, make(map[string]int64))
		t.uniqueNames = append(t.uniqueNames, u.Name)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *TableSchema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// RowCount returns the number of live rows physically stored.
func (t *Table) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.rowCount
}

// LogicalRowCount returns stored plus pre-populated rows.
func (t *Table) LogicalRowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.rowCount + t.prePopulatedRows
}

// ByteSize returns the number of bytes physically stored.
func (t *Table) ByteSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.bytes
}

// LogicalByteSize returns stored plus pre-populated bytes.
func (t *Table) LogicalByteSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.bytes + t.prePopulatedBytes
}

// PageCount returns the number of heap pages allocated.
func (t *Table) PageCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.pageCount()
}

// Indexes returns the table's secondary indexes sorted by name.  The slice is
// an immutable snapshot rebuilt on create/drop; callers must not mutate it.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexList
}

// rebuildIndexList refreshes the sorted snapshots (all indexes and the
// currently maintained subset); t.mu must be write-held.
func (t *Table) rebuildIndexList() {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	t.indexList = out
	live := make([]*Index, 0, len(out))
	for _, ix := range out {
		if !ix.suspended.Load() {
			live = append(live, ix)
		}
	}
	t.liveList = live
}

// CommitEpoch returns the table's commit epoch: the number of transactions
// that touched the table and have since committed or rolled back.  Any change
// to the epoch means previously computed query results over the table may be
// stale.
func (t *Table) CommitEpoch() int64 { return t.epoch.Load() }

// UncommittedRows returns the number of rows currently visible in the table
// that belong to transactions still in flight.  When it is zero the stored
// rows are exactly the committed state of the current epoch.
func (t *Table) UncommittedRows() int64 { return t.pendingRows.Load() }

// Index returns the named index or nil.
func (t *Table) Index(name string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[name]
}

// buildRow maps (columns, values) onto a full row in schema order, coercing
// values to their declared types.  Missing columns become NULL.  It touches
// only the immutable schema, so it runs without the table lock.
func (t *Table) buildRow(columns []string, values []Value) (Row, error) {
	if len(columns) != len(values) {
		return nil, &ConstraintError{Kind: KindArity, Table: t.schema.Name,
			Detail: fmt.Sprintf("%d columns but %d values", len(columns), len(values))}
	}
	row := make(Row, len(t.schema.Columns))
	for i, col := range columns {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 {
			return nil, &ConstraintError{Kind: KindArity, Table: t.schema.Name, Column: col,
				Detail: "unknown column"}
		}
		v, err := Coerce(values[i], t.schema.Columns[idx].Type)
		if err != nil {
			return nil, &ConstraintError{Kind: KindType, Table: t.schema.Name, Column: col, Detail: err.Error()}
		}
		row[idx] = v
	}
	return row, nil
}

// checkRow validates NOT NULL and CHECK constraints, returning the number of
// constraint evaluations performed.
func (t *Table) checkRow(row Row) (int, error) {
	checks := 0
	for i, c := range t.schema.Columns {
		if !c.Nullable {
			checks++
			if row[i].IsNull() {
				return checks, &ConstraintError{Kind: KindNotNull, Table: t.schema.Name, Column: c.Name}
			}
		}
	}
	for _, ck := range t.schema.Checks {
		checks++
		if ck.Column != "" {
			idx := t.schema.ColumnIndex(ck.Column)
			v := row[idx]
			if !v.IsNull() && (ck.Min != nil || ck.Max != nil) {
				var f float64
				switch v.Kind {
				case KindInt:
					f = float64(v.I)
				case KindFloat:
					f = v.F
				default:
					return checks, &ConstraintError{Kind: KindCheck, Table: t.schema.Name,
						Constraint: ck.Name, Column: ck.Column, Detail: "non-numeric value for range check"}
				}
				if ck.Min != nil && f < *ck.Min {
					return checks, &ConstraintError{Kind: KindCheck, Table: t.schema.Name,
						Constraint: ck.Name, Column: ck.Column,
						Detail: fmt.Sprintf("value %v below minimum %v", f, *ck.Min)}
				}
				if ck.Max != nil && f > *ck.Max {
					return checks, &ConstraintError{Kind: KindCheck, Table: t.schema.Name,
						Constraint: ck.Name, Column: ck.Column,
						Detail: fmt.Sprintf("value %v above maximum %v", f, *ck.Max)}
				}
			}
		}
		if ck.Fn != nil && !ck.Fn(row) {
			return checks, &ConstraintError{Kind: KindCheck, Table: t.schema.Name, Constraint: ck.Name}
		}
	}
	return checks, nil
}

// insertPrepared validates uniqueness constraints and stores the row under
// the table's write lock.  The caller (DB.insert) has already coerced values
// and checked foreign keys.  It returns the new row id, the heap location of
// the stored row and the physical-work report.  sc is the caller's
// per-goroutine scratch.
func (t *Table) insertPrepared(sc *scratch, row Row) (int64, rowLoc, OpReport, error) {
	var rep OpReport

	checks, err := t.checkRow(row)
	rep.ConstraintChecks += checks
	if err != nil {
		return 0, rowLoc{}, rep, err
	}

	pkKey := sc.keyOf(row, t.pkCols)
	rep.ConstraintChecks++
	for _, v := range pkKey {
		if v.IsNull() {
			return 0, rowLoc{}, rep, &ConstraintError{Kind: KindNotNull, Table: t.schema.Name,
				Column: t.schema.PrimaryKey[0], Detail: "NULL in primary key"}
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	pkBuf := sc.encodeKey(pkKey)
	if _, dup := t.pkIndex[string(pkBuf)]; dup {
		return 0, rowLoc{}, rep, &ConstraintError{Kind: KindPrimaryKey, Table: t.schema.Name,
			Constraint: "pk_" + t.schema.Name, Detail: "duplicate key " + string(pkBuf)}
	}
	pkEnc := string(pkBuf)

	uniqueEncs := sc.uniqueEncs(len(t.uniqueCols))
	for i, cols := range t.uniqueCols {
		rep.ConstraintChecks++
		buf := sc.encodeKey(sc.keyOf(row, cols))
		if _, dup := t.uniqueMaps[i][string(buf)]; dup {
			return 0, rowLoc{}, rep, &ConstraintError{Kind: KindUnique, Table: t.schema.Name,
				Constraint: t.uniqueNames[i], Detail: "duplicate key " + string(buf)}
		}
		uniqueEncs[i] = string(buf)
	}

	// All constraints satisfied: store the row.
	id := t.nextRow
	t.nextRow++
	loc, newPage, rb := t.heap.append(row)
	t.rows.append(loc)
	t.pkIndex[pkEnc] = id
	for i, enc := range uniqueEncs {
		t.uniqueMaps[i][enc] = id
	}

	rep.RowsInserted = 1
	rep.RowBytes = rb
	rep.PagesDirtied = 1
	if newPage {
		rep.CacheMisses++ // a fresh block is always a cache miss
	}

	for _, ix := range t.liveList {
		// Encode once into the transaction scratch; the tree copies stored
		// keys into its arena, so the shared buffer is safe to reuse.  Entry
		// volume stays priced from the column values (the cost model charges
		// logical entry bytes, not the encoding's framing).
		key := sc.keyOf(row, ix.colIdxs)
		st := ix.tree.Insert(sc.ordKey(key), id)
		rep.IndexNodesVisited += st.NodesVisited
		rep.IndexSplits += st.Splits
		rep.IndexFloatColNodeVisits += st.NodesVisited * ix.floatCols
		rep.IndexIntColNodeVisits += st.NodesVisited * ix.otherCols
		for _, v := range key {
			rep.IndexEntryBytes += ValueSize(v)
		}
		rep.IndexEntryBytes += 8 // row id pointer
	}
	return id, loc, rep, nil
}

// deleteRow removes a previously inserted row (transaction rollback only).
func (t *Table) deleteRow(sc *scratch, id int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	loc, ok := t.rows.get(id)
	if !ok {
		return
	}
	row := t.heap.get(loc)
	if row == nil {
		return
	}
	delete(t.pkIndex, string(sc.encodeKey(sc.keyOf(row, t.pkCols))))
	for i, cols := range t.uniqueCols {
		delete(t.uniqueMaps[i], string(sc.encodeKey(sc.keyOf(row, cols))))
	}
	// Suspended indexes hold no entries for rows inserted during the load
	// phase, so rollback skips them; Seal later rebuilds from the surviving
	// heap rows only.  The encode reuses the scratch buffer and Delete only
	// tombstones the entry — the key's arena bytes stay owned by the tree —
	// so a rollback neither allocates per index nor re-copies arena chunks.
	for _, ix := range t.liveList {
		ix.tree.Delete(sc.ordKey(sc.keyOf(row, ix.colIdxs)), id)
	}
	t.heap.markDeleted(loc)
	t.rows.remove(id)
}

// lookupPK returns whether a row with the given primary-key values exists.
// The caller must hold t.mu (read or write).
func (t *Table) lookupPK(sc *scratch, key []Value) bool {
	_, ok := t.pkIndex[string(sc.encodeKey(key))]
	return ok
}

// pkRowID returns the row id stored under the given primary key.
func (t *Table) pkRowID(sc *scratch, key []Value) (int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.pkIndex[string(sc.encodeKey(key))]
	return id, ok
}

// getRow returns a copy of the row with the given id, or nil.
func (t *Table) getRow(id int64) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r := t.getRowLocked(id)
	if r == nil {
		return nil
	}
	return r.Clone()
}

// getRowLocked returns the stored row with the given id without copying, or
// nil.  The caller must hold t.mu and must not mutate the result or retain it
// past the lock.
func (t *Table) getRowLocked(id int64) Row {
	loc, ok := t.rows.get(id)
	if !ok {
		return nil
	}
	return t.heap.get(loc)
}

// createIndex builds a secondary index over the named columns, populating it
// from existing rows.  It returns the populated index.  A deferred-policy
// index created while a load phase is open starts suspended with an empty
// tree: Seal populates it, so the backfill pass is skipped.
func (t *Table) createIndex(name string, columns []string, unique bool, policy IndexPolicy) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[name]; exists {
		return nil, ErrIndexExists
	}
	ix := &Index{Name: name, Table: t.schema.Name, Columns: columns, Unique: unique,
		policy: policy, tree: NewBTree(t.btreeDegree)}
	for _, c := range columns {
		idx := t.schema.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("relstore: index %q references column %q: %w", name, c, ErrNoSuchColumn)
		}
		ix.colIdxs = append(ix.colIdxs, idx)
		if t.schema.Columns[idx].Type == TypeFloat {
			ix.floatCols++
		} else {
			ix.otherCols++
		}
	}
	switch t.schema.Columns[ix.colIdxs[0]].Type {
	case TypeInt:
		ix.int64Keyed, ix.keyKind = len(ix.colIdxs) == 1, KindInt
	case TypeTime:
		ix.int64Keyed, ix.keyKind = len(ix.colIdxs) == 1, KindTime
	case TypeBool:
		ix.int64Keyed, ix.keyKind = len(ix.colIdxs) == 1, KindBool
	}
	if policy == IndexDeferred && t.loading != nil && t.loading.Load() {
		// Mid-load creation of a deferred index: no backfill, Seal builds it.
		ix.suspended.Store(true)
	} else if t.heap.rowCount > 0 {
		// Backfill in one heap pass.  Heap scan positions do not match table
		// row ids when rollbacks occurred, so invert the row directory once
		// instead of re-deriving each id through a primary-key encoding.
		var sc scratch
		idByLoc := t.idByLocLocked()
		t.heap.scanLoc(func(loc rowLoc, r Row) bool {
			ix.tree.Insert(sc.ordKey(sc.keyOf(r, ix.colIdxs)), idByLoc[loc])
			return true
		})
	}
	t.indexes[name] = ix
	t.rebuildIndexList()
	return ix, nil
}

// idByLocLocked inverts the row directory (heap location -> row id) for
// index backfills and bulk rebuilds; t.mu must be held.
func (t *Table) idByLocLocked() map[rowLoc]int64 {
	idByLoc := make(map[rowLoc]int64, t.rows.live)
	for id, loc := range t.rows.locs {
		if loc.pageIdx >= 0 {
			idByLoc[loc] = int64(id)
		}
	}
	return idByLoc
}

// dropIndex removes the named index.
func (t *Table) dropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[name]; !ok {
		return ErrNoSuchIndex
	}
	delete(t.indexes, name)
	t.rebuildIndexList()
	return nil
}

// prePopulate marks the table as already containing rows/bytes loaded in
// earlier sessions without materializing them.
func (t *Table) prePopulate(rows, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prePopulatedRows += rows
	t.prePopulatedBytes += bytes
}
