package relstore

import (
	"fmt"
	"sort"
)

// Column describes one attribute of a table.
type Column struct {
	Name     string
	Type     ColType
	Nullable bool
	// Precision, when >= 0 and the type is TypeFloat, is the number of
	// decimal places the value is rounded to by the catalog transformer.
	// It is informational to the engine itself.
	Precision int
}

// CheckConstraint is a simple domain constraint on a single column, optionally
// augmented with an arbitrary row predicate.  The Palomar-Quest loading
// pipeline uses range checks to filter out errors and outliers (§3), and the
// database performs "stringent data checking ... to guard against hidden
// corruption" (§4.3).
type CheckConstraint struct {
	Name   string
	Column string
	// Min/Max bound numeric columns when non-nil.
	Min *float64
	Max *float64
	// Fn, when non-nil, must return true for the row to be accepted.
	Fn func(Row) bool `json:"-"`
}

// ForeignKey declares that Columns in the child table reference RefColumns
// (the primary key) of RefTable.
type ForeignKey struct {
	Name       string
	Columns    []string
	RefTable   string
	RefColumns []string
}

// UniqueConstraint declares a non-primary-key uniqueness constraint.
type UniqueConstraint struct {
	Name    string
	Columns []string
}

// TableSchema describes one table: its columns, primary key and constraints.
type TableSchema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	Uniques     []UniqueConstraint
	Checks      []CheckConstraint

	colIndex map[string]int
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (t *TableSchema) ColumnIndex(name string) int {
	if t.colIndex == nil {
		t.buildColIndex()
	}
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	return -1
}

func (t *TableSchema) buildColIndex() {
	t.colIndex = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.colIndex[c.Name] = i
	}
}

// ColumnNames returns the column names in declaration order.
func (t *TableSchema) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// HasColumn reports whether the table declares the named column.
func (t *TableSchema) HasColumn(name string) bool { return t.ColumnIndex(name) >= 0 }

// Schema is an ordered collection of table schemas plus the foreign-key graph
// between them.
type Schema struct {
	tables []*TableSchema
	byName map[string]*TableSchema
}

// NewSchema builds a schema from table definitions and validates it: column
// references in keys and constraints must exist, foreign keys must reference
// existing tables' primary keys, and the foreign-key graph must be acyclic
// (so that a parent-before-child load order exists, which the SkyLoader
// bulk-loading algorithm depends on).
func NewSchema(tables ...*TableSchema) (*Schema, error) {
	s := &Schema{byName: make(map[string]*TableSchema, len(tables))}
	for _, t := range tables {
		if t.Name == "" {
			return nil, fmt.Errorf("relstore: table with empty name")
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("relstore: duplicate table %q", t.Name)
		}
		if len(t.Columns) == 0 {
			return nil, fmt.Errorf("relstore: table %q has no columns", t.Name)
		}
		t.buildColIndex()
		if len(t.colIndex) != len(t.Columns) {
			return nil, fmt.Errorf("relstore: table %q has duplicate column names", t.Name)
		}
		s.tables = append(s.tables, t)
		s.byName[t.Name] = t
	}
	for _, t := range s.tables {
		if len(t.PrimaryKey) == 0 {
			return nil, fmt.Errorf("relstore: table %q has no primary key", t.Name)
		}
		for _, c := range t.PrimaryKey {
			if !t.HasColumn(c) {
				return nil, fmt.Errorf("relstore: table %q primary key references unknown column %q", t.Name, c)
			}
		}
		for _, u := range t.Uniques {
			for _, c := range u.Columns {
				if !t.HasColumn(c) {
					return nil, fmt.Errorf("relstore: table %q unique %q references unknown column %q", t.Name, u.Name, c)
				}
			}
		}
		for _, ck := range t.Checks {
			if ck.Column != "" && !t.HasColumn(ck.Column) {
				return nil, fmt.Errorf("relstore: table %q check %q references unknown column %q", t.Name, ck.Name, ck.Column)
			}
		}
		for _, fk := range t.ForeignKeys {
			parent, ok := s.byName[fk.RefTable]
			if !ok {
				return nil, fmt.Errorf("relstore: table %q foreign key %q references unknown table %q", t.Name, fk.Name, fk.RefTable)
			}
			if len(fk.Columns) == 0 || len(fk.Columns) != len(fk.RefColumns) {
				return nil, fmt.Errorf("relstore: table %q foreign key %q has mismatched column lists", t.Name, fk.Name)
			}
			for _, c := range fk.Columns {
				if !t.HasColumn(c) {
					return nil, fmt.Errorf("relstore: table %q foreign key %q references unknown local column %q", t.Name, fk.Name, c)
				}
			}
			for _, c := range fk.RefColumns {
				if !parent.HasColumn(c) {
					return nil, fmt.Errorf("relstore: table %q foreign key %q references unknown column %q of %q", t.Name, fk.Name, c, fk.RefTable)
				}
			}
		}
	}
	if _, err := s.TopologicalOrder(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// defined schemas such as the Palomar-Quest catalog model.
func MustSchema(tables ...*TableSchema) *Schema {
	s, err := NewSchema(tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Tables returns the table schemas in declaration order.
func (s *Schema) Tables() []*TableSchema { return s.tables }

// TableNames returns the table names in declaration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.tables))
	for i, t := range s.tables {
		out[i] = t.Name
	}
	return out
}

// Table returns the named table schema, or nil if absent.
func (s *Schema) Table(name string) *TableSchema { return s.byName[name] }

// NumTables returns the number of tables in the schema.
func (s *Schema) NumTables() int { return len(s.tables) }

// Parents returns the names of tables that name directly references through
// foreign keys (deduplicated, sorted).
func (s *Schema) Parents(name string) []string {
	t := s.byName[name]
	if t == nil {
		return nil
	}
	set := map[string]bool{}
	for _, fk := range t.ForeignKeys {
		if fk.RefTable != name {
			set[fk.RefTable] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Children returns the names of tables that directly reference name through
// foreign keys (deduplicated, sorted).
func (s *Schema) Children(name string) []string {
	set := map[string]bool{}
	for _, t := range s.tables {
		for _, fk := range t.ForeignKeys {
			if fk.RefTable == name && t.Name != name {
				set[t.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TopologicalOrder returns the table names ordered so that every table appears
// after all tables it references (parents before children).  This is the bulk
// loading order of Figure 2 in the paper.  Ties are broken by declaration
// order so the result is deterministic.
func (s *Schema) TopologicalOrder() ([]string, error) {
	indeg := make(map[string]int, len(s.tables))
	for _, t := range s.tables {
		indeg[t.Name] = 0
	}
	for _, t := range s.tables {
		seen := map[string]bool{}
		for _, fk := range t.ForeignKeys {
			if fk.RefTable == t.Name || seen[fk.RefTable] {
				continue
			}
			seen[fk.RefTable] = true
			indeg[t.Name]++
		}
	}
	// Kahn's algorithm with declaration-order tie break.
	var order []string
	done := map[string]bool{}
	for len(order) < len(s.tables) {
		progressed := false
		for _, t := range s.tables {
			if done[t.Name] || indeg[t.Name] != 0 {
				continue
			}
			done[t.Name] = true
			order = append(order, t.Name)
			progressed = true
			for _, child := range s.Children(t.Name) {
				indeg[child]--
			}
		}
		if !progressed {
			return nil, fmt.Errorf("relstore: foreign-key graph contains a cycle")
		}
	}
	return order, nil
}

// Depth returns the parent-chain depth of each table: tables with no foreign
// keys have depth 0, their children depth 1, and so on.  Used by reports.
func (s *Schema) Depth() map[string]int {
	order, err := s.TopologicalOrder()
	if err != nil {
		return nil
	}
	depth := make(map[string]int, len(order))
	for _, name := range order {
		d := 0
		for _, p := range s.Parents(name) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[name] = d
	}
	return depth
}
