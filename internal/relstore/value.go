// Package relstore implements an embedded relational storage engine used as
// the repository database substrate in this reproduction of the SkyLoader
// paper (Cai, Aydt, Brunner, SC 2005).
//
// The original system loaded the Palomar-Quest catalog into an Oracle 10g
// server.  relstore stands in for that server: it provides typed tables with
// primary-key, foreign-key, unique, not-null and check constraints, page-based
// heap storage, B-tree secondary indexes, a lock manager with a concurrent
// transaction limit, undo/redo logging, and an LRU buffer cache.  Every
// operation reports the physical work it performed (pages dirtied, index nodes
// visited, log bytes written, ...) so that the sqlbatch layer can charge
// realistic virtual time for it in the discrete-event simulation.
package relstore

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ColType enumerates the column types supported by the engine.  They mirror
// the types used by the Palomar-Quest catalog schema: integers (ids, flags,
// htmid), floating point photometric/astrometric quantities, strings
// (names, filters), timestamps and booleans.
type ColType int

const (
	// TypeInt is a 64-bit signed integer column.
	TypeInt ColType = iota
	// TypeFloat is a 64-bit IEEE floating point column.
	TypeFloat
	// TypeString is a variable-length string column.
	TypeString
	// TypeTime is a timestamp column.
	TypeTime
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeTime:
		return "TIMESTAMP"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Value is a single column value.  A nil Value represents SQL NULL.  The
// dynamic type must be one of int64, float64, string, time.Time or bool.
type Value any

// Row is a tuple of column values in table column order.
type Row []Value

// Clone returns a copy of the row (values themselves are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Coerce converts v to the canonical Go representation for column type t.
// It accepts the common Go numeric types and numeric strings, mirroring the
// light type conversion a database driver performs.  NULL (nil) passes
// through unchanged.
func Coerce(v Value, t ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case float64:
			if x != math.Trunc(x) {
				return nil, fmt.Errorf("relstore: value %v is not an integer", x)
			}
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: cannot parse %q as integer", x)
			}
			return n, nil
		}
	case TypeFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: cannot parse %q as float", x)
			}
			return f, nil
		}
	case TypeString:
		switch x := v.(type) {
		case string:
			return x, nil
		case fmt.Stringer:
			return x.String(), nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		}
	case TypeTime:
		switch x := v.(type) {
		case time.Time:
			return x, nil
		case string:
			ts, err := time.Parse(time.RFC3339, strings.TrimSpace(x))
			if err != nil {
				return nil, fmt.Errorf("relstore: cannot parse %q as timestamp", x)
			}
			return ts, nil
		case int64:
			return time.Unix(x, 0).UTC(), nil
		}
	case TypeBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		case string:
			b, err := strconv.ParseBool(strings.TrimSpace(x))
			if err != nil {
				return nil, fmt.Errorf("relstore: cannot parse %q as boolean", x)
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("relstore: cannot coerce %T value %v to %s", v, v, t)
}

// CompareValues orders two non-nil values of the same column type.  NULLs sort
// before every non-NULL value and equal to each other, matching index order
// semantics.  Values of mismatched dynamic types panic, because they indicate
// a bug upstream of the index layer (Coerce is applied before storage).
func CompareValues(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	case time.Time:
		y := b.(time.Time)
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("relstore: cannot compare values of type %T", a))
}

// CompareKeys orders two composite keys element-wise.
func CompareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareValues(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// EncodeKey renders a composite key as a unique string suitable for use as a
// hash-map key (primary-key lookups).  The encoding is not order preserving;
// ordered access goes through the B-tree, which compares typed values.
func EncodeKey(vals []Value) string {
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 {
			sb.WriteByte(0x1f)
		}
		switch x := v.(type) {
		case nil:
			sb.WriteString("\x00N")
		case int64:
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(x, 10))
		case float64:
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		case string:
			sb.WriteByte('s')
			sb.WriteString(x)
		case bool:
			sb.WriteByte('b')
			if x {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		case time.Time:
			sb.WriteByte('t')
			sb.WriteString(strconv.FormatInt(x.UnixNano(), 10))
		default:
			panic(fmt.Sprintf("relstore: cannot encode key value of type %T", v))
		}
	}
	return sb.String()
}

// ValueSize estimates the storage footprint of a value in bytes, used for
// page-fill and log-volume accounting.
func ValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 1
	case int64:
		return 8
	case float64:
		return 8
	case bool:
		return 1
	case time.Time:
		return 12
	case string:
		return 2 + len(x)
	default:
		return 16
	}
}

// RowSize estimates the storage footprint of a row in bytes.
func RowSize(r Row) int {
	n := 4 // row header
	for _, v := range r {
		n += ValueSize(v)
	}
	return n
}

// FormatValue renders a value the way the skyload CLI and error messages
// display it.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case time.Time:
		return x.Format(time.RFC3339)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// RoundTo rounds a float to the given number of decimal places; it is used by
// the catalog transformer to apply column precision during loading, one of the
// per-row transformations the paper performs while loading (§3).
func RoundTo(x float64, places int) float64 {
	if places < 0 {
		return x
	}
	p := math.Pow(10, float64(places))
	return math.Round(x*p) / p
}
