// Package relstore implements an embedded relational storage engine used as
// the repository database substrate in this reproduction of the SkyLoader
// paper (Cai, Aydt, Brunner, SC 2005).
//
// The original system loaded the Palomar-Quest catalog into an Oracle 10g
// server.  relstore stands in for that server: it provides typed tables with
// primary-key, foreign-key, unique, not-null and check constraints, page-based
// heap storage, B-tree secondary indexes, a lock manager with a concurrent
// transaction limit, undo/redo logging, and an LRU buffer cache.  Every
// operation reports the physical work it performed (pages dirtied, index nodes
// visited, log bytes written, ...) so that the sqlbatch layer can charge
// realistic virtual time for it in the discrete-event simulation.
package relstore

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ColType enumerates the column types supported by the engine.  They mirror
// the types used by the Palomar-Quest catalog schema: integers (ids, flags,
// htmid), floating point photometric/astrometric quantities, strings
// (names, filters), timestamps and booleans.
type ColType int

const (
	// TypeInt is a 64-bit signed integer column.
	TypeInt ColType = iota
	// TypeFloat is a 64-bit IEEE floating point column.
	TypeFloat
	// TypeString is a variable-length string column.
	TypeString
	// TypeTime is a timestamp column.
	TypeTime
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeTime:
		return "TIMESTAMP"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ValueKind tags the dynamic type carried by a Value.
type ValueKind uint8

const (
	// KindNull is SQL NULL; it is the zero Value.
	KindNull ValueKind = iota
	// KindInt carries a 64-bit signed integer in Value.I.
	KindInt
	// KindFloat carries a 64-bit float in Value.F.
	KindFloat
	// KindString carries a string in Value.S.
	KindString
	// KindTime carries a timestamp as Unix nanoseconds in Value.I.
	KindTime
	// KindBool carries a boolean as 0/1 in Value.I.
	KindBool
)

// String names the kind for error messages.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "TIMESTAMP"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is a single column value, represented as a compact tagged union
// instead of a boxed interface so that rows move through the insert hot path
// without per-value heap allocations.  The zero Value is SQL NULL.
//
// Integers and booleans live in I (booleans as 0/1), floats in F, strings in
// S, and timestamps as Unix nanoseconds in I.  Consumers on hot paths read
// the fields directly after checking Kind; everything else goes through the
// constructors and accessors below.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
}

// Null is the SQL NULL value.
var Null Value

// Int returns an integer value.
func Int(x int64) Value { return Value{Kind: KindInt, I: x} }

// Float returns a float value.
func Float(x float64) Value { return Value{Kind: KindFloat, F: x} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// Time returns a timestamp value (stored as Unix nanoseconds).
func Time(t time.Time) Value { return Value{Kind: KindTime, I: t.UnixNano()} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Int returns the integer payload (valid for KindInt).
func (v Value) Int() int64 { return v.I }

// Float returns the float payload (valid for KindFloat).
func (v Value) Float() float64 { return v.F }

// Str returns the string payload (valid for KindString).
func (v Value) Str() string { return v.S }

// Bool returns the boolean payload (valid for KindBool).
func (v Value) Bool() bool { return v.I != 0 }

// Time returns the timestamp payload (valid for KindTime).  The location is
// normalized to UTC; the engine stores instants, not civil times.
func (v Value) Time() time.Time { return time.Unix(0, v.I).UTC() }

// Row is a tuple of column values in table column order.
type Row []Value

// Clone returns a copy of the row (values themselves are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Coerce converts v to the canonical representation for column type t,
// mirroring the light type conversion a database driver performs: numeric
// widening, numeric/boolean/timestamp parsing of strings, and int/float
// interconversion when lossless.  NULL passes through unchanged.  When v
// already has the canonical kind for t — the common case on the loading hot
// path, where the transformer emits exact types — Coerce is a branch and no
// allocation.
func Coerce(v Value, t ColType) (Value, error) {
	if v.Kind == KindNull {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			if v.F != math.Trunc(v.F) {
				return Null, fmt.Errorf("relstore: value %v is not an integer", v.F)
			}
			return Int(int64(v.F)), nil
		case KindString:
			n, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("relstore: cannot parse %q as integer", v.S)
			}
			return Int(n), nil
		}
	case TypeFloat:
		switch v.Kind {
		case KindFloat:
			return v, nil
		case KindInt:
			return Float(float64(v.I)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("relstore: cannot parse %q as float", v.S)
			}
			return Float(f), nil
		}
	case TypeString:
		switch v.Kind {
		case KindString:
			return v, nil
		case KindInt:
			return Str(strconv.FormatInt(v.I, 10)), nil
		case KindFloat:
			return Str(strconv.FormatFloat(v.F, 'g', -1, 64)), nil
		}
	case TypeTime:
		switch v.Kind {
		case KindTime:
			return v, nil
		case KindString:
			ts, err := time.Parse(time.RFC3339, strings.TrimSpace(v.S))
			if err != nil {
				return Null, fmt.Errorf("relstore: cannot parse %q as timestamp", v.S)
			}
			return Time(ts), nil
		case KindInt:
			return Time(time.Unix(v.I, 0).UTC()), nil
		}
	case TypeBool:
		switch v.Kind {
		case KindBool:
			return v, nil
		case KindInt:
			return Bool(v.I != 0), nil
		case KindString:
			b, err := strconv.ParseBool(strings.TrimSpace(v.S))
			if err != nil {
				return Null, fmt.Errorf("relstore: cannot parse %q as boolean", v.S)
			}
			return Bool(b), nil
		}
	}
	return Null, fmt.Errorf("relstore: cannot coerce %s value %s to %s", v.Kind, FormatValue(v), t)
}

// CompareValues orders two non-NULL values of the same kind.  NULLs sort
// before every non-NULL value and equal to each other, matching index order
// semantics.  Values of mismatched kinds panic, because they indicate a bug
// upstream of the index layer (Coerce is applied before storage).
func CompareValues(a, b Value) int {
	if a.Kind == KindNull && b.Kind == KindNull {
		return 0
	}
	if a.Kind == KindNull {
		return -1
	}
	if b.Kind == KindNull {
		return 1
	}
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("relstore: cannot compare %s with %s", a.Kind, b.Kind))
	}
	switch a.Kind {
	case KindInt, KindTime, KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.S, b.S)
	}
	panic(fmt.Sprintf("relstore: cannot compare values of kind %s", a.Kind))
}

// CompareKeys orders two composite keys element-wise.
func CompareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareValues(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// AppendKey appends the unique string encoding of a composite key to dst and
// returns the extended buffer, following the append convention of the
// standard library (strconv.AppendInt and friends).  Callers on the insert
// hot path keep a reusable scratch buffer and look keys up in their hash maps
// via m[string(buf)], which the compiler compiles without copying the bytes;
// the one final string allocation happens only when a key is actually stored.
//
// The encoding is not order preserving; ordered access goes through the
// B-tree, which compares typed values.
func AppendKey(dst []byte, vals []Value) []byte {
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, 0x1f)
		}
		switch v.Kind {
		case KindNull:
			dst = append(dst, 0x00, 'N')
		case KindInt:
			dst = append(dst, 'i')
			dst = strconv.AppendInt(dst, v.I, 10)
		case KindFloat:
			dst = append(dst, 'f')
			dst = strconv.AppendFloat(dst, v.F, 'g', -1, 64)
		case KindString:
			dst = append(dst, 's')
			dst = append(dst, v.S...)
		case KindBool:
			if v.I != 0 {
				dst = append(dst, 'b', '1')
			} else {
				dst = append(dst, 'b', '0')
			}
		case KindTime:
			dst = append(dst, 't')
			dst = strconv.AppendInt(dst, v.I, 10)
		default:
			panic(fmt.Sprintf("relstore: cannot encode key value of kind %s", v.Kind))
		}
	}
	return dst
}

// EncodeKey renders a composite key as a unique string suitable for use as a
// hash-map key (primary-key lookups).  It is the allocating convenience form
// of AppendKey.
func EncodeKey(vals []Value) string {
	return string(AppendKey(nil, vals))
}

// ValueSize estimates the storage footprint of a value in bytes, used for
// page-fill and log-volume accounting.
func ValueSize(v Value) int { return valueSizeRef(&v) }

// valueSizeRef is ValueSize through a pointer, for hot paths that must not
// copy the 40-byte Value per call; both size accountings share this one
// table so heap/network and index/log volumes cannot drift apart.
func valueSizeRef(v *Value) int {
	switch v.Kind {
	case KindNull:
		return 1
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindBool:
		return 1
	case KindTime:
		return 12
	case KindString:
		return 2 + len(v.S)
	default:
		return 16
	}
}

// RowSize estimates the storage footprint of a row in bytes.
//
// The loop indexes into the row instead of ranging over it: a range copies
// each 40-byte Value out of the slice per element, and RowSize sits on the
// client buffering path (arrayset.Add) as well as the heap append path, where
// that copy was measurable (BenchmarkArraySetAddFlush).
func RowSize(r Row) int {
	n := 4 // row header
	for i := range r {
		n += valueSizeRef(&r[i])
	}
	return n
}

// FormatValue renders a value the way the skyload CLI and error messages
// display it.
func FormatValue(v Value) string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.I != 0)
	case KindTime:
		return v.Time().Format(time.RFC3339)
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}

// RoundTo rounds a float to the given number of decimal places; it is used by
// the catalog transformer to apply column precision during loading, one of the
// per-row transformations the paper performs while loading (§3).
func RoundTo(x float64, places int) float64 {
	if places < 0 {
		return x
	}
	p := math.Pow(10, float64(places))
	return math.Round(x*p) / p
}
