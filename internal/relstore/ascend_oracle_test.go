package relstore

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestAscendRangeMatchesOracle is the range-scan property behind the
// encoded-key refactor: AscendRange over encoded bounds must visit exactly
// the rows a brute-force CompareKeys oracle selects, in the same key order,
// with row ids in the same within-key order.  Keys are drawn with the usual
// boundary bias (NULL columns, -0.0/+0.0 floats, strings containing 0x00)
// and bounds are sometimes strict key prefixes, exercising the prefix rule
// both comparators share.
func TestAscendRangeMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(20050713))
	type oracleEntry struct {
		key []Value
		ids []int64
	}
	for trial := 0; trial < 150; trial++ {
		shape := ordKeyShapes[r.Intn(len(ordKeyShapes))]
		tree := NewBTree(2 + r.Intn(3)) // small degrees force real depth
		var oracle []oracleEntry
		n := 30 + r.Intn(170)
		for id := int64(0); id < int64(n); id++ {
			key := make([]Value, len(shape))
			for i, kind := range shape {
				key[i] = randOrderedValue(r, kind)
			}
			if r.Intn(16) == 0 { // hand-placed -0.0/+0.0 collisions
				for i, kind := range shape {
					if kind == KindFloat {
						key[i] = Float(math.Copysign(0, float64(1-2*r.Intn(2))))
					}
				}
			}
			tree.Insert(EncodeOrderedKey(key), id)
			found := false
			for i := range oracle {
				if CompareKeys(oracle[i].key, key) == 0 {
					oracle[i].ids = append(oracle[i].ids, id)
					found = true
					break
				}
			}
			if !found {
				oracle = append(oracle, oracleEntry{key: key, ids: []int64{id}})
			}
		}
		sort.SliceStable(oracle, func(i, j int) bool {
			return CompareKeys(oracle[i].key, oracle[j].key) < 0
		})

		// A bound is nil (unbounded), a full random key, or a strict prefix
		// of one of the stored keys (never empty: an empty key encodes to
		// zero bytes, which the tree cannot tell apart from unbounded).
		randBound := func() []Value {
			switch r.Intn(4) {
			case 0:
				return nil
			case 1:
				src := oracle[r.Intn(len(oracle))].key
				return src[:1+r.Intn(len(src))]
			default:
				b := make([]Value, len(shape))
				for i, kind := range shape {
					b[i] = randOrderedValue(r, kind)
				}
				return b
			}
		}
		from, to := randBound(), randBound()

		var wantKeys [][]Value
		var wantIDs [][]int64
		for _, e := range oracle {
			if from != nil && CompareKeys(from, e.key) > 0 {
				continue
			}
			if to != nil && CompareKeys(e.key, to) > 0 {
				continue
			}
			wantKeys = append(wantKeys, e.key)
			wantIDs = append(wantIDs, e.ids)
		}

		var encFrom, encTo []byte
		if from != nil {
			encFrom = EncodeOrderedKey(from)
		}
		if to != nil {
			encTo = EncodeOrderedKey(to)
		}
		pos := 0
		tree.AscendRange(encFrom, encTo, func(key []byte, ids []int64) bool {
			if pos >= len(wantKeys) {
				t.Fatalf("trial %d: tree visited more keys than the oracle (%d)", trial, len(wantKeys))
			}
			vals, err := DecodeOrderedKey(key)
			if err != nil {
				t.Fatalf("trial %d: stored key %x does not decode: %v", trial, key, err)
			}
			if CompareKeys(vals, wantKeys[pos]) != 0 {
				t.Fatalf("trial %d pos %d: tree key %v, oracle key %v (from=%v to=%v)",
					trial, pos, vals, wantKeys[pos], from, to)
			}
			if len(ids) != len(wantIDs[pos]) {
				t.Fatalf("trial %d pos %d: tree ids %v, oracle ids %v", trial, pos, ids, wantIDs[pos])
			}
			for j := range ids {
				if ids[j] != wantIDs[pos][j] {
					t.Fatalf("trial %d pos %d: tree ids %v, oracle ids %v", trial, pos, ids, wantIDs[pos])
				}
			}
			pos++
			return true
		})
		if pos != len(wantKeys) {
			t.Fatalf("trial %d: tree visited %d keys, oracle selected %d (from=%v to=%v)",
				trial, pos, len(wantKeys), from, to)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
