package relstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Crash recovery.  Recover rebuilds a database from a WAL directory written
// by a previous (possibly killed) process: the newest checkpoint snapshot is
// loaded first, then every log segment above the checkpoint LSN is replayed —
// committed transactions' inserts applied in log order, uncommitted tails
// discarded, and a torn or corrupt tail on the newest segment tolerated,
// counted and truncated away.  The recovered database resumes the durable
// device at the next LSN, so load clients can continue appending where the
// dead process stopped.
//
// Replay runs in two passes over the post-checkpoint segments so memory stays
// bounded by one record, not the log: pass one decodes only record headers to
// collect transaction outcomes (and the torn-tail boundary), pass two decodes
// and applies the row payloads of committed transactions.

// ErrRecovering reports an operation attempted while the database is still
// replaying its log (between StartRecover and completion).
var ErrRecovering = errors.New("relstore: database is recovering")

// RecoveryReport describes what Recover found and applied.
type RecoveryReport struct {
	// CheckpointSeq/CheckpointLSN identify the checkpoint the recovery started
	// from (0 and -1 when the directory held none); CheckpointRows is the
	// number of rows loaded from its snapshot.
	CheckpointSeq  int64
	CheckpointLSN  int64
	CheckpointRows int64
	// SegmentsScanned/SegmentsSkipped count log segments replayed versus
	// skipped entirely because the checkpoint already covered them.
	SegmentsScanned int
	SegmentsSkipped int
	// ReplayedRecords/ReplayedBytes count post-checkpoint log records scanned
	// (including markers); ReplayedRows is the number of rows applied from
	// committed transactions.
	ReplayedRecords int64
	ReplayedRows    int64
	ReplayedBytes   int64
	// TornTailRecords is 1 when the newest segment ended in a torn or corrupt
	// frame (the crash signature), 0 otherwise; TornTailBytes is the length of
	// the discarded tail.  The tail is truncated off the file.
	TornTailRecords int64
	TornTailBytes   int64
	// CommittedTxns counts transactions whose commit marker was found;
	// DiscardedTxns counts transactions that wrote inserts but never reached a
	// durable commit (their rows are not applied).
	CommittedTxns int64
	DiscardedTxns int64
	// LastLSN is the last LSN the recovered log covers; the resumed device
	// appends from LastLSN+1.
	LastLSN int64
}

// Recover rebuilds a database for schema from the WAL directory dir, applying
// the same options Open accepts.  WithWALDir(dir) is implied.  On success the
// returned database is open for transactions with the durable device resumed.
func Recover(schema *Schema, dir string, opts ...Option) (*DB, RecoveryReport, error) {
	h, err := StartRecover(schema, dir, opts...)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	rep, err := h.Wait()
	if err != nil {
		return nil, rep, err
	}
	return h.DB(), rep, nil
}

// RecoverHandle is an in-flight recovery started by StartRecover.
type RecoverHandle struct {
	db   *DB
	done chan struct{}
	rep  RecoveryReport
	err  error
}

// DB returns the recovering database immediately.  Until Wait returns, the
// database reports Ready() == false and Begin fails with ErrRecovering — the
// state the HTTP front door's /healthz surfaces as 503 during replay.
func (h *RecoverHandle) DB() *DB { return h.db }

// Wait blocks until replay completes and returns its report.  On error the
// database is unusable (still marked recovering).
func (h *RecoverHandle) Wait() (RecoveryReport, error) {
	<-h.done
	return h.rep, h.err
}

// StartRecover begins recovery asynchronously: the database is constructed
// and returned at once, marked recovering, while replay proceeds on a
// background goroutine.  Use Recover unless the caller needs to expose the
// not-yet-ready database (health probes) during replay.
func StartRecover(schema *Schema, dir string, opts ...Option) (*RecoverHandle, error) {
	oc := openConfig{indexPolicy: IndexImmediate}
	for _, opt := range opts {
		opt(&oc)
	}
	oc.cfg.WALDir = dir
	oc.recovering = true
	db, err := open(schema, oc)
	if err != nil {
		return nil, err
	}
	db.recovering.Store(true)
	h := &RecoverHandle{db: db, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.rep, h.err = db.recoverReplay(dir)
		if h.err == nil {
			db.recovering.Store(false)
		}
	}()
	return h, nil
}

// recoverReplay loads the newest checkpoint, replays the post-checkpoint
// segments, truncates any torn tail and resumes the durable device.
func (db *DB) recoverReplay(dir string) (RecoveryReport, error) {
	rep := RecoveryReport{CheckpointLSN: -1}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return rep, fmt.Errorf("relstore: recover: %w", err)
	}
	widthOf := func(tid uint32) (int, bool) {
		if int(tid) >= len(db.tablesByID) {
			return 0, false
		}
		return len(db.tablesByID[tid].schema.Columns), true
	}

	// Phase 0: newest checkpoint snapshot, if any.  A temp file orphaned by a
	// crash mid-checkpoint is dead weight — reclaim it before reading.
	removeStaleCkptTemps(dir)
	ckptLSN := int64(-1)
	var maxTxn int64
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return rep, fmt.Errorf("relstore: recover: %w", err)
	}
	if len(seqs) > 0 {
		seq := seqs[len(seqs)-1]
		st, err := readCheckpointFile(filepath.Join(dir, ckptName(seq)), widthOf)
		if err != nil {
			return rep, fmt.Errorf("relstore: recover checkpoint %d: %w", seq, err)
		}
		if len(st.nextRow) != len(db.tablesByID) {
			return rep, fmt.Errorf("%w: checkpoint covers %d tables, schema has %d",
				ErrWALCorrupt, len(st.nextRow), len(db.tablesByID))
		}
		var sc scratch
		for tid := range st.ids {
			t := db.tablesByID[tid]
			if err := t.replayRowsAt(&sc, st.ids[tid], st.data[tid]); err != nil {
				return rep, err
			}
			t.setNextRowFloor(st.nextRow[tid])
			rep.CheckpointRows += int64(len(st.ids[tid]))
		}
		db.counters.rowsInserted.Add(rep.CheckpointRows)
		ckptLSN = st.lsn
		maxTxn = st.maxTxn
		rep.CheckpointSeq = seq
		rep.CheckpointLSN = st.lsn
		db.ckptSeq = seq
	}

	// Which segments need scanning: a segment whose records all sit at or
	// below the checkpoint LSN (its successor starts at or below ckptLSN+1)
	// is fully superseded and is never opened — the property the bounded-
	// replay test asserts.  The newest segment is always scanned.
	segNames, err := listWALSegments(dir)
	if err != nil {
		return rep, fmt.Errorf("relstore: recover: %w", err)
	}
	firsts := make([]int64, len(segNames))
	for i, name := range segNames {
		first, ok := parseSegName(name)
		if !ok {
			return rep, fmt.Errorf("%w: segment name %q", ErrWALCorrupt, name)
		}
		firsts[i] = first
	}
	var scan []int
	for i := range segNames {
		if i+1 < len(segNames) && firsts[i+1]-1 <= ckptLSN {
			rep.SegmentsSkipped++
			continue
		}
		scan = append(scan, i)
	}

	// Pass 1: headers only — transaction outcomes, LSN continuity, torn-tail
	// boundary.
	committed := make(map[int64]bool)
	rolledBack := make(map[int64]bool)
	insertTxns := make(map[int64]bool)
	wantLSN := int64(-1)
	tornSeg, tornOffset := -1, 0
	for si, i := range scan {
		path := filepath.Join(dir, segNames[i])
		buf, err := os.ReadFile(path)
		if err != nil {
			return rep, fmt.Errorf("relstore: recover: %w", err)
		}
		rep.SegmentsScanned++
		if si == 0 {
			start := int64(0)
			if ckptLSN >= 0 {
				if firsts[i] > ckptLSN+1 {
					return rep, fmt.Errorf("%w: log gap: checkpoint covers LSN %d, first segment starts at %d",
						ErrWALCorrupt, ckptLSN, firsts[i])
				}
				start = firsts[i]
			} else if firsts[i] != 0 {
				return rep, fmt.Errorf("%w: log starts at LSN %d with no checkpoint", ErrWALCorrupt, firsts[i])
			}
			wantLSN = max(start, 0)
		} else if firsts[i] != wantLSN {
			return rep, fmt.Errorf("%w: log gap: segment %q starts at LSN %d, expected %d",
				ErrWALCorrupt, segNames[i], firsts[i], wantLSN)
		}
		off := 0
		for len(buf) > 0 {
			payload, rest, ok := nextWALFrame(buf)
			if !ok {
				if i != scan[len(scan)-1] {
					// Only the newest segment may be torn: rotation seals every
					// earlier one with a flush+fsync before opening the next.
					return rep, fmt.Errorf("%w: torn frame mid-log in %q at offset %d",
						ErrWALCorrupt, segNames[i], off)
				}
				tornSeg, tornOffset = i, off
				rep.TornTailRecords = 1
				rep.TornTailBytes = int64(len(buf))
				break
			}
			rec, err := decodeWALRecord(payload, false, widthOf)
			if err != nil {
				// CRC-valid but semantically undecodable is corruption, not a
				// torn tail: the bytes were written whole and are wrong.
				return rep, fmt.Errorf("relstore: recover %q offset %d: %w", segNames[i], off, err)
			}
			if rec.lsn != wantLSN {
				return rep, fmt.Errorf("%w: LSN %d at position expecting %d in %q",
					ErrWALCorrupt, rec.lsn, wantLSN, segNames[i])
			}
			wantLSN++
			off += walFrameHeader + len(payload)
			if rec.txnID > maxTxn {
				maxTxn = rec.txnID
			}
			switch rec.typ {
			case walRecInsert:
				insertTxns[rec.txnID] = true
			case walRecCommit:
				if rolledBack[rec.txnID] {
					return rep, fmt.Errorf("%w: txn %d has both commit and rollback markers", ErrWALCorrupt, rec.txnID)
				}
				committed[rec.txnID] = true
			case walRecRollback:
				if committed[rec.txnID] {
					return rep, fmt.Errorf("%w: txn %d has both commit and rollback markers", ErrWALCorrupt, rec.txnID)
				}
				rolledBack[rec.txnID] = true
			}
			buf = rest
		}
		if tornSeg >= 0 {
			break
		}
	}
	rep.CommittedTxns = int64(len(committed))
	for id := range insertTxns {
		if !committed[id] {
			rep.DiscardedTxns++
		}
	}

	// Pass 2: apply committed inserts in log order.
	var sc scratch
	for _, i := range scan {
		if tornSeg >= 0 && i > tornSeg {
			break
		}
		buf, err := os.ReadFile(filepath.Join(dir, segNames[i]))
		if err != nil {
			return rep, fmt.Errorf("relstore: recover: %w", err)
		}
		if i == tornSeg {
			buf = buf[:tornOffset]
		}
		for len(buf) > 0 {
			payload, rest, ok := nextWALFrame(buf)
			if !ok {
				return rep, fmt.Errorf("%w: frame changed under replay in %q", ErrWALCorrupt, segNames[i])
			}
			rec, err := decodeWALRecord(payload, false, widthOf)
			if err != nil {
				return rep, err
			}
			buf = rest
			if rec.lsn <= ckptLSN {
				continue
			}
			rep.ReplayedRecords++
			rep.ReplayedBytes += int64(walFrameHeader + len(payload))
			if rec.typ != walRecInsert || !committed[rec.txnID] || rec.rowCount == 0 {
				continue
			}
			if db.faultHook != nil {
				if err := db.faultHook(FPReplay); err != nil {
					return rep, fmt.Errorf("relstore: recover replay fault: %w", err)
				}
			}
			rec, err = decodeWALRecord(payload, true, widthOf)
			if err != nil {
				return rep, err
			}
			t := db.tablesByID[rec.tableID]
			if err := t.replayContiguous(&sc, rec.firstID, rec.rows); err != nil {
				return rep, err
			}
			rep.ReplayedRows += int64(len(rec.rows))
			db.counters.rowsInserted.Add(int64(len(rec.rows)))
		}
	}

	// Truncate the torn tail so the next recovery (and segment arithmetic)
	// sees only whole records.
	if tornSeg >= 0 {
		path := filepath.Join(dir, segNames[tornSeg])
		if tornOffset == 0 {
			if err := os.Remove(path); err != nil {
				return rep, fmt.Errorf("relstore: recover truncate: %w", err)
			}
		} else {
			if err := os.Truncate(path, int64(tornOffset)); err != nil {
				return rep, fmt.Errorf("relstore: recover truncate: %w", err)
			}
			if f, err := os.OpenFile(path, os.O_WRONLY, 0); err == nil {
				_ = f.Sync()
				_ = f.Close()
			}
		}
		_ = syncWALDir(dir)
	}

	nextLSN := ckptLSN + 1
	if wantLSN >= 0 {
		nextLSN = wantLSN
	}
	rep.LastLSN = nextLSN - 1

	// Resumed transactions must never reuse the id of any transaction in the
	// log — including dead uncommitted ones, whose lingering insert records
	// would otherwise be resurrected by a recycled id's commit marker.
	db.nextTxn.Store(maxTxn)

	dev, err := startWALDevice(dir, db.cfg.WALSegmentBytes, db.cfg.WALSyncBytes, db.faultHook, nextLSN)
	if err != nil {
		return rep, err
	}
	dev.replayRecords = rep.ReplayedRecords
	dev.replayRows = rep.ReplayedRows
	dev.replayBytes = rep.ReplayedBytes
	dev.replayTornTail = rep.TornTailRecords
	// Replayed-but-not-checkpointed history counts toward the next automatic
	// checkpoint threshold.
	dev.bytesSinceCkpt = rep.ReplayedBytes
	// Atomic publish: the DB is already visible to health probes and /metrics
	// while this background replay runs (StartRecover), so Stats readers may
	// load dev concurrently with this store.
	db.wal.dev.Store(dev)
	return rep, nil
}

// replayRowsAt stores rows at explicit (possibly non-contiguous) ids — the
// checkpoint-snapshot load path.
func (t *Table) replayRowsAt(sc *scratch, ids []int64, rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range rows {
		if err := t.replayOneLocked(sc, ids[i], rows[i]); err != nil {
			return err
		}
	}
	return nil
}

// replayContiguous stores rows at contiguous ids starting at firstID — the
// WAL insert-record path.
func (t *Table) replayContiguous(sc *scratch, firstID int64, rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range rows {
		if err := t.replayOneLocked(sc, firstID+int64(i), rows[i]); err != nil {
			return err
		}
	}
	return nil
}

// replayOneLocked stores one recovered row at its original id, maintaining
// the heap, row directory, primary-key and unique hash indexes and any live
// secondary indexes.  Gaps below id are tombstoned (rollbacks punched holes
// in the original id sequence); an id may also land in an existing tombstone,
// because concurrent writers can append their records to the log out of id
// order.  t.mu must be write-held.
func (t *Table) replayOneLocked(sc *scratch, id int64, row Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("%w: row width %d for table %q", ErrWALCorrupt, len(row), t.schema.Name)
	}
	if id < int64(len(t.rows.locs)) {
		if t.rows.locs[id].pageIdx >= 0 {
			return fmt.Errorf("%w: duplicate row id %d in table %q", ErrWALCorrupt, id, t.schema.Name)
		}
		loc, _, _ := t.heap.append(row)
		t.rows.locs[id] = loc
		t.rows.live++
	} else {
		for int64(len(t.rows.locs)) < id {
			t.rows.locs = append(t.rows.locs, rowLoc{pageIdx: -1})
		}
		loc, _, _ := t.heap.append(row)
		t.rows.append(loc)
	}
	if id >= t.nextRow {
		t.nextRow = id + 1
	}
	pkEnc := string(sc.encodeKey(sc.keyOf(row, t.pkCols)))
	if _, dup := t.pkIndex[pkEnc]; dup {
		return fmt.Errorf("%w: duplicate primary key in table %q during replay", ErrWALCorrupt, t.schema.Name)
	}
	t.pkIndex[pkEnc] = id
	for i, cols := range t.uniqueCols {
		enc := string(sc.encodeKey(sc.keyOf(row, cols)))
		if _, dup := t.uniqueMaps[i][enc]; dup {
			return fmt.Errorf("%w: duplicate unique key %q in table %q during replay",
				ErrWALCorrupt, t.uniqueNames[i], t.schema.Name)
		}
		t.uniqueMaps[i][enc] = id
	}
	for _, ix := range t.liveList {
		ix.tree.Insert(sc.ordKey(sc.keyOf(row, ix.colIdxs)), id)
	}
	return nil
}

// setNextRowFloor raises the table's next row id to at least n, tombstoning
// the directory up to it — recovering id gaps punched by pre-checkpoint
// rollbacks, so resumed inserts allocate the same ids the dead process would
// have.
func (t *Table) setNextRowFloor(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.nextRow {
		t.nextRow = n
	}
	for int64(len(t.rows.locs)) < t.nextRow {
		t.rows.locs = append(t.rows.locs, rowLoc{pageIdx: -1})
	}
}
