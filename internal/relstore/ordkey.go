package relstore

import (
	"fmt"
	"math"
)

// Order-preserving key encoding: AppendOrderedKey renders a composite key as
// a byte string whose bytes.Compare order equals CompareKeys order.  It is
// groundwork for storing secondary-index keys as byte strings compared with
// bytes.Compare instead of the per-element kind switch of CompareKeys (the
// ROADMAP encoded-key item); nothing in the B-tree is wired to it yet.
//
// The existing AppendKey encoding is hash-only — "i-5" sorts after "i-40"
// bytewise — so ordered access needs this second encoding:
//
//   - every value is prefixed with a tag byte; NULL's tag (0x00) is below
//     every non-NULL tag, so NULLs sort first, matching CompareValues;
//   - integers, timestamps and booleans encode as big-endian uint64 with the
//     sign bit flipped, mapping int64 order onto lexicographic byte order;
//   - floats encode their IEEE bits with a sign-magnitude fixup: positive
//     values flip only the sign bit, negative values flip all bits, so
//     -Inf < ... < 0 < ... < +Inf is ordered bytewise; -0.0 is canonicalized
//     to +0.0 first, matching CompareValues, which orders them equal;
//   - strings escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00, so a
//     prefix sorts before its extensions and embedded NULs cannot collide
//     with the terminator.
//
// Like CompareValues, the encoding is only defined for comparable keys: the
// values at each position of the two keys must have the same kind (or be
// NULL), which the table layer guarantees by coercing to the column type
// before storage.

// Tag bytes.  NULL must be the smallest; the non-NULL tags only need to be
// consistent per kind, since comparable keys agree on kinds positionally.
const (
	ordTagNull   = 0x00
	ordTagInt    = 0x01
	ordTagFloat  = 0x02
	ordTagString = 0x03
	ordTagTime   = 0x04
	ordTagBool   = 0x05
)

// AppendOrderedKey appends the order-preserving encoding of a composite key
// to dst and returns the extended buffer.  For any two keys a, b that
// CompareKeys accepts (same kinds positionally, up to NULLs),
//
//	sign(bytes.Compare(AppendOrderedKey(nil, a), AppendOrderedKey(nil, b)))
//	    == sign(CompareKeys(a, b))
//
// NaN values are rejected with a panic: CompareKeys orders a NaN equal to
// everything (the < operator is false both ways), which no total byte order
// can reproduce, and NaN never reaches an index anyway (the catalog
// transformer filters non-finite photometry during validation).
func AppendOrderedKey(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = appendOrderedValue(dst, v)
	}
	return dst
}

// EncodeOrderedKey is the allocating convenience form of AppendOrderedKey.
func EncodeOrderedKey(vals []Value) []byte {
	return AppendOrderedKey(nil, vals)
}

func appendOrderedValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, ordTagNull)
	case KindInt:
		dst = append(dst, ordTagInt)
		return appendOrderedInt64(dst, v.I)
	case KindTime:
		dst = append(dst, ordTagTime)
		return appendOrderedInt64(dst, v.I)
	case KindBool:
		dst = append(dst, ordTagBool)
		if v.I != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindFloat:
		if math.IsNaN(v.F) {
			panic("relstore: cannot order-encode NaN")
		}
		dst = append(dst, ordTagFloat)
		f := v.F
		if f == 0 {
			f = 0 // canonicalize -0.0 to +0.0: CompareValues orders them equal
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything, reversing magnitude order
		} else {
			bits |= 1 << 63 // positive: flip the sign bit above all negatives
		}
		return appendOrderedUint64(dst, bits)
	case KindString:
		dst = append(dst, ordTagString)
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, v.S[i])
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("relstore: cannot order-encode value of kind %s", v.Kind))
	}
}

// appendOrderedInt64 encodes x big-endian with the sign bit flipped, so the
// int64 order maps onto unsigned lexicographic byte order.
func appendOrderedInt64(dst []byte, x int64) []byte {
	return appendOrderedUint64(dst, uint64(x)^(1<<63))
}

func appendOrderedUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
