package relstore

import (
	"errors"
	"fmt"
	"math"
)

// Order-preserving key encoding: AppendOrderedKey renders a composite key as
// a byte string whose bytes.Compare order equals CompareKeys order.  This is
// the storage format of secondary-index B-tree keys: the tree compares stored
// keys with a single bytes.Compare instead of the per-element kind switch of
// CompareKeys, and DecodeOrderedKey recovers the column values for the few
// consumers (test dumps, invariant checks) that genuinely need them.
//
// The existing AppendKey encoding is hash-only — "i-5" sorts after "i-40"
// bytewise — so ordered access needs this second encoding:
//
//   - every value is prefixed with a tag byte; NULL's tag (0x00) is below
//     every non-NULL tag, so NULLs sort first, matching CompareValues;
//   - integers, timestamps and booleans encode as big-endian uint64 with the
//     sign bit flipped, mapping int64 order onto lexicographic byte order;
//   - floats encode their IEEE bits with a sign-magnitude fixup: positive
//     values flip only the sign bit, negative values flip all bits, so
//     -Inf < ... < 0 < ... < +Inf is ordered bytewise; -0.0 is canonicalized
//     to +0.0 first, matching CompareValues, which orders them equal;
//   - strings escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00, so a
//     prefix sorts before its extensions and embedded NULs cannot collide
//     with the terminator.
//
// Like CompareValues, the encoding is only defined for comparable keys: the
// values at each position of the two keys must have the same kind (or be
// NULL), which the table layer guarantees by coercing to the column type
// before storage.

// Tag bytes.  NULL must be the smallest; the non-NULL tags only need to be
// consistent per kind, since comparable keys agree on kinds positionally.
const (
	ordTagNull   = 0x00
	ordTagInt    = 0x01
	ordTagFloat  = 0x02
	ordTagString = 0x03
	ordTagTime   = 0x04
	ordTagBool   = 0x05
)

// AppendOrderedKey appends the order-preserving encoding of a composite key
// to dst and returns the extended buffer.  For any two keys a, b that
// CompareKeys accepts (same kinds positionally, up to NULLs),
//
//	sign(bytes.Compare(AppendOrderedKey(nil, a), AppendOrderedKey(nil, b)))
//	    == sign(CompareKeys(a, b))
//
// NaN values are rejected with a panic: CompareKeys orders a NaN equal to
// everything (the < operator is false both ways), which no total byte order
// can reproduce, and NaN never reaches an index anyway (the catalog
// transformer filters non-finite photometry during validation).
func AppendOrderedKey(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = appendOrderedValue(dst, v)
	}
	return dst
}

// EncodeOrderedKey is the allocating convenience form of AppendOrderedKey.
func EncodeOrderedKey(vals []Value) []byte {
	return AppendOrderedKey(nil, vals)
}

func appendOrderedValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, ordTagNull)
	case KindInt:
		dst = append(dst, ordTagInt)
		return appendOrderedInt64(dst, v.I)
	case KindTime:
		dst = append(dst, ordTagTime)
		return appendOrderedInt64(dst, v.I)
	case KindBool:
		dst = append(dst, ordTagBool)
		if v.I != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindFloat:
		if math.IsNaN(v.F) {
			panic("relstore: cannot order-encode NaN")
		}
		dst = append(dst, ordTagFloat)
		f := v.F
		if f == 0 {
			f = 0 // canonicalize -0.0 to +0.0: CompareValues orders them equal
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything, reversing magnitude order
		} else {
			bits |= 1 << 63 // positive: flip the sign bit above all negatives
		}
		return appendOrderedUint64(dst, bits)
	case KindString:
		dst = append(dst, ordTagString)
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, v.S[i])
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("relstore: cannot order-encode value of kind %s", v.Kind))
	}
}

// appendOrderedInt64 encodes x big-endian with the sign bit flipped, so the
// int64 order maps onto unsigned lexicographic byte order.
func appendOrderedInt64(dst []byte, x int64) []byte {
	return appendOrderedUint64(dst, uint64(x)^(1<<63))
}

func appendOrderedUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// ErrBadOrderedKey reports a byte string that is not a canonical
// AppendOrderedKey encoding.
var ErrBadOrderedKey = errors.New("relstore: malformed ordered key")

// DecodeOrderedKey is the strict inverse of EncodeOrderedKey: it parses enc
// as a sequence of order-encoded values and returns them.  The decoder is
// canonical — it accepts exactly the byte strings AppendOrderedKey can
// produce, so a successful decode re-encodes to the identical bytes.
// Truncated values, unknown tags, non-canonical string escapes, NaN float bit
// patterns and a -0.0 encoding (the encoder canonicalizes -0.0 to +0.0) are
// all rejected with an error wrapping ErrBadOrderedKey.
//
// Decoding is off the hot path by design: the B-tree compares and stores
// encoded keys without ever decoding, and only consumers that need column
// values back (test dumps, invariant checks, debugging) pay for a decode.
func DecodeOrderedKey(enc []byte) ([]Value, error) {
	var out []Value
	for len(enc) > 0 {
		v, rest, err := decodeOrderedValue(enc)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		enc = rest
	}
	return out, nil
}

// decodeOrderedValue decodes one value off the front of enc, which must be
// non-empty, and returns it with the remaining bytes.
func decodeOrderedValue(enc []byte) (Value, []byte, error) {
	switch tag := enc[0]; tag {
	case ordTagNull:
		return Null, enc[1:], nil
	case ordTagInt, ordTagTime:
		if len(enc) < 9 {
			return Value{}, nil, fmt.Errorf("%w: truncated %d-byte integer payload", ErrBadOrderedKey, len(enc)-1)
		}
		x := int64(decodeOrderedUint64(enc[1:9]) ^ (1 << 63))
		if tag == ordTagTime {
			return Value{Kind: KindTime, I: x}, enc[9:], nil
		}
		return Int(x), enc[9:], nil
	case ordTagBool:
		if len(enc) < 2 {
			return Value{}, nil, fmt.Errorf("%w: truncated boolean payload", ErrBadOrderedKey)
		}
		switch enc[1] {
		case 0:
			return Bool(false), enc[2:], nil
		case 1:
			return Bool(true), enc[2:], nil
		}
		return Value{}, nil, fmt.Errorf("%w: boolean payload 0x%02x", ErrBadOrderedKey, enc[1])
	case ordTagFloat:
		if len(enc) < 9 {
			return Value{}, nil, fmt.Errorf("%w: truncated %d-byte float payload", ErrBadOrderedKey, len(enc)-1)
		}
		bits := decodeOrderedUint64(enc[1:9])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63 // positive: undo the sign-bit flip
		} else {
			bits = ^bits // negative: undo the full complement
		}
		f := math.Float64frombits(bits)
		if math.IsNaN(f) {
			return Value{}, nil, fmt.Errorf("%w: NaN float bits", ErrBadOrderedKey)
		}
		if f == 0 && math.Signbit(f) {
			return Value{}, nil, fmt.Errorf("%w: non-canonical -0.0 encoding", ErrBadOrderedKey)
		}
		return Float(f), enc[9:], nil
	case ordTagString:
		var s []byte
		i := 1
		for {
			if i >= len(enc) {
				return Value{}, nil, fmt.Errorf("%w: unterminated string", ErrBadOrderedKey)
			}
			b := enc[i]
			if b != 0x00 {
				s = append(s, b)
				i++
				continue
			}
			if i+1 >= len(enc) {
				return Value{}, nil, fmt.Errorf("%w: truncated string escape", ErrBadOrderedKey)
			}
			switch enc[i+1] {
			case 0x00: // terminator
				return Str(string(s)), enc[i+2:], nil
			case 0xFF: // escaped NUL
				s = append(s, 0x00)
				i += 2
			default:
				return Value{}, nil, fmt.Errorf("%w: string escape 0x00 0x%02x", ErrBadOrderedKey, enc[i+1])
			}
		}
	default:
		return Value{}, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadOrderedKey, tag)
	}
}

func decodeOrderedUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
