package relstore

import (
	"fmt"
)

// BTree is an in-memory B-tree mapping composite keys to row ids.  It backs
// secondary indexes; the engine counts node visits and splits per insert so
// that the cost model can charge index-maintenance time, which is what makes
// the paper's Figure 8 (effect of attribute indices) reproducible: the
// single-integer index stays shallow and cheap while the composite
// three-float index is wider, splits more often and grows with data size.
type BTree struct {
	degree int
	root   *btreeNode
	size   int
	nodes  int
	splits int
	height int
}

type btreeEntry struct {
	key    []Value
	rowIDs []int64
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// NewBTree creates a B-tree with the given minimum degree (every node except
// the root holds between degree-1 and 2*degree-1 entries).  Degrees below 2
// are raised to 2.
func NewBTree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{
		degree: degree,
		root:   &btreeNode{},
		nodes:  1,
		height: 1,
	}
}

// Len returns the number of distinct keys stored.
func (t *BTree) Len() int { return t.size }

// NodeCount returns the number of allocated nodes.
func (t *BTree) NodeCount() int { return t.nodes }

// Splits returns the cumulative number of node splits performed.
func (t *BTree) Splits() int { return t.splits }

// Height returns the current tree height (1 for a lone root leaf).
func (t *BTree) Height() int { return t.height }

// InsertStats reports the physical work performed by one Insert call.
type InsertStats struct {
	NodesVisited int
	Splits       int
	NewKey       bool
}

// Insert adds rowID under key.  Duplicate keys accumulate row ids (non-unique
// index semantics); unique enforcement is done by the table layer before the
// index is touched.
//
// The tree copies the key when it stores a new entry, so callers may pass a
// reusable scratch slice: only genuinely new keys pay an allocation, and
// inserts under an existing key are allocation-free.
func (t *BTree) Insert(key []Value, rowID int64) InsertStats {
	var st InsertStats
	if len(t.root.entries) == 2*t.degree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.nodes++
		t.height++
		t.splitChild(t.root, 0)
		st.Splits++
	}
	t.insertNonFull(t.root, key, rowID, &st)
	if st.NewKey {
		t.size++
	}
	return st
}

func (t *BTree) splitChild(parent *btreeNode, i int) {
	t.splits++
	child := parent.children[i]
	mid := t.degree - 1
	right := &btreeNode{}
	t.nodes++
	right.entries = append(right.entries, child.entries[mid+1:]...)
	median := child.entries[mid]
	child.entries = child.entries[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	parent.entries = append(parent.entries, btreeEntry{})
	copy(parent.entries[i+1:], parent.entries[i:])
	parent.entries[i] = median
}

func (t *BTree) insertNonFull(n *btreeNode, key []Value, rowID int64, st *InsertStats) {
	st.NodesVisited++
	i, found := n.find(key)
	if found {
		n.entries[i].rowIDs = append(n.entries[i].rowIDs, rowID)
		return
	}
	if n.leaf() {
		stored := make([]Value, len(key))
		copy(stored, key)
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btreeEntry{key: stored, rowIDs: []int64{rowID}}
		st.NewKey = true
		return
	}
	if len(n.children[i].entries) == 2*t.degree-1 {
		t.splitChild(n, i)
		st.Splits++
		if c := CompareKeys(key, n.entries[i].key); c == 0 {
			n.entries[i].rowIDs = append(n.entries[i].rowIDs, rowID)
			return
		} else if c > 0 {
			i++
		}
	}
	t.insertNonFull(n.children[i], key, rowID, st)
}

// find returns the index of the first entry >= key and whether it equals key.
func (n *btreeNode) find(key []Value) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareKeys(n.entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && CompareKeys(n.entries[lo].key, key) == 0 {
		return lo, true
	}
	return lo, false
}

// Search returns the row ids stored under key (nil if absent) and the number
// of nodes visited.
func (t *BTree) Search(key []Value) ([]int64, int) {
	n := t.root
	visited := 0
	for {
		visited++
		i, found := n.find(key)
		if found {
			return n.entries[i].rowIDs, visited
		}
		if n.leaf() {
			return nil, visited
		}
		n = n.children[i]
	}
}

// Delete removes rowID from the ids stored under key.  When the last id for a
// key is removed the key remains as a tombstone (empty id list); the loading
// workload is insert-only, so full B-tree deletion/rebalancing is not needed —
// tombstones only arise from transaction rollback undo.
func (t *BTree) Delete(key []Value, rowID int64) bool {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			ids := n.entries[i].rowIDs
			for j, id := range ids {
				if id == rowID {
					n.entries[i].rowIDs = append(ids[:j], ids[j+1:]...)
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// AscendRange visits every (key, rowIDs) pair with from <= key <= to in key
// order; a nil bound is unbounded.  The visitor returns false to stop early.
func (t *BTree) AscendRange(from, to []Value, visit func(key []Value, rowIDs []int64) bool) {
	t.ascend(t.root, from, to, visit)
}

func (t *BTree) ascend(n *btreeNode, from, to []Value, visit func([]Value, []int64) bool) bool {
	start := 0
	if from != nil {
		start, _ = n.find(from)
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], from, to, visit) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if to != nil && CompareKeys(e.key, to) > 0 {
			return false
		}
		if len(e.rowIDs) > 0 {
			if !visit(e.key, e.rowIDs) {
				return false
			}
		}
		// After the first subtree the lower bound no longer prunes.
		from = nil
	}
	return true
}

// Keys returns all keys in order; intended for tests and small indexes.
func (t *BTree) Keys() [][]Value {
	var out [][]Value
	t.AscendRange(nil, nil, func(key []Value, _ []int64) bool {
		out = append(out, key)
		return true
	})
	return out
}

// CheckInvariants verifies B-tree structural invariants: key ordering within
// and across nodes, node fill bounds, and uniform leaf depth.  It returns a
// descriptive error when an invariant is violated.  Used by property tests.
func (t *BTree) CheckInvariants() error {
	depths := map[int]bool{}
	var walk func(n *btreeNode, depth int, min, max []Value) error
	walk = func(n *btreeNode, depth int, min, max []Value) error {
		if n != t.root {
			if len(n.entries) < t.degree-1 || len(n.entries) > 2*t.degree-1 {
				return fmt.Errorf("node at depth %d has %d entries, want [%d,%d]", depth, len(n.entries), t.degree-1, 2*t.degree-1)
			}
		}
		for i := 0; i < len(n.entries); i++ {
			k := n.entries[i].key
			if i > 0 && CompareKeys(n.entries[i-1].key, k) >= 0 {
				return fmt.Errorf("entries out of order at depth %d", depth)
			}
			if min != nil && CompareKeys(k, min) <= 0 {
				return fmt.Errorf("entry below subtree lower bound at depth %d", depth)
			}
			if max != nil && CompareKeys(k, max) >= 0 {
				return fmt.Errorf("entry above subtree upper bound at depth %d", depth)
			}
		}
		if n.leaf() {
			depths[depth] = true
			return nil
		}
		if len(n.children) != len(n.entries)+1 {
			return fmt.Errorf("internal node at depth %d has %d children for %d entries", depth, len(n.children), len(n.entries))
		}
		for i, c := range n.children {
			var lo, hi []Value
			if i > 0 {
				lo = n.entries[i-1].key
			} else {
				lo = min
			}
			if i < len(n.entries) {
				hi = n.entries[i].key
			} else {
				hi = max
			}
			if err := walk(c, depth+1, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if len(depths) > 1 {
		return fmt.Errorf("leaves at multiple depths: %v", depths)
	}
	return nil
}
