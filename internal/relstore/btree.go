package relstore

import (
	"bytes"
	"fmt"
)

// BTree is an in-memory B-tree mapping order-preserving encoded keys to row
// ids.  It backs secondary indexes; the engine counts node visits and splits
// per insert so that the cost model can charge index-maintenance time, which
// is what makes the paper's Figure 8 (effect of attribute indices) reproducible:
// the single-integer index stays shallow and cheap while the composite
// three-float index is wider, splits more often and grows with data size.
//
// Keys are the AppendOrderedKey encoding of the indexed column values, so
// every comparison on the descent path is a single bytes.Compare instead of
// the per-element kind switch of CompareKeys.  The tree owns the bytes it
// stores: new entries' keys are copied into per-tree arena chunks (one
// allocation per chunk, not per key), so callers may pass reusable encode
// buffers.  Callers that need column values back decode with DecodeOrderedKey;
// the hot paths never do.
type BTree struct {
	degree int
	root   *btreeNode
	size   int
	nodes  int
	splits int
	height int

	// keyArena is the current key-copy chunk; stored keys are full-cap
	// sub-slices of retired and current chunks.  idArena backs the initial
	// one-element row-id slice of each new entry.  keyBytes sums the lengths
	// of stored keys and arenaBytes the capacities of all key chunks ever
	// allocated (retired chunks stay reachable through the keys carved from
	// them), so the two together report footprint and arena overhead.
	keyArena   []byte
	idArena    []int64
	keyBytes   int
	arenaBytes int
}

type btreeEntry struct {
	key    []byte
	rowIDs []int64
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// Key-arena chunk sizing: chunks double from 256 B up to 64 KiB, so small
// trees stay small while bulk-loaded trees amortize one allocation across
// thousands of keys.
const (
	btreeKeyChunkMin = 1 << 8
	btreeKeyChunkMax = 1 << 16
)

// NewBTree creates a B-tree with the given minimum degree (every node except
// the root holds between degree-1 and 2*degree-1 entries).  Degrees below 2
// are raised to 2.
func NewBTree(degree int) *BTree {
	if degree < 2 {
		degree = 2
	}
	return &BTree{
		degree: degree,
		root:   &btreeNode{},
		nodes:  1,
		height: 1,
	}
}

// Len returns the number of distinct keys stored.
func (t *BTree) Len() int { return t.size }

// NodeCount returns the number of allocated nodes.
func (t *BTree) NodeCount() int { return t.nodes }

// Splits returns the cumulative number of node splits performed.
func (t *BTree) Splits() int { return t.splits }

// Height returns the current tree height (1 for a lone root leaf).
func (t *BTree) Height() int { return t.height }

// KeyBytes returns the total length of the stored encoded keys, including
// tombstoned entries (rollback leaves keys in place).
func (t *BTree) KeyBytes() int { return t.keyBytes }

// ArenaBytes returns the total capacity reserved by the tree's key arena
// chunks.  ArenaBytes - KeyBytes is the arena overhead: chunk headroom plus
// bytes occupied by duplicate-key copies the bulk-build paths skip over.
func (t *BTree) ArenaBytes() int { return t.arenaBytes }

// copyKey copies key into the tree's arena and returns the stored sub-slice.
// Sub-slices are full (len == cap), so appending to one reallocates instead of
// overwriting a neighbour.
func (t *BTree) copyKey(key []byte) []byte {
	if cap(t.keyArena)-len(t.keyArena) < len(key) {
		n := cap(t.keyArena) * 2
		if n < btreeKeyChunkMin {
			n = btreeKeyChunkMin
		}
		if n > btreeKeyChunkMax {
			n = btreeKeyChunkMax
		}
		if n < len(key) {
			n = len(key)
		}
		t.keyArena = make([]byte, 0, n)
		t.arenaBytes += n
	}
	start := len(t.keyArena)
	t.keyArena = append(t.keyArena, key...)
	t.keyBytes += len(key)
	return t.keyArena[start:len(t.keyArena):len(t.keyArena)]
}

// idSlice returns a one-element row-id slice carved from the id arena.
func (t *BTree) idSlice(id int64) []int64 {
	if len(t.idArena) == cap(t.idArena) {
		n := cap(t.idArena) * 2
		if n < 64 {
			n = 64
		}
		if n > 8192 {
			n = 8192
		}
		t.idArena = make([]int64, 0, n)
	}
	t.idArena = append(t.idArena, id)
	return t.idArena[len(t.idArena)-1 : len(t.idArena) : len(t.idArena)]
}

// InsertStats reports the physical work performed by one Insert call.
type InsertStats struct {
	NodesVisited int
	Splits       int
	NewKey       bool
}

// Insert adds rowID under key (an AppendOrderedKey encoding).  Duplicate keys
// accumulate row ids (non-unique index semantics); unique enforcement is done
// by the table layer before the index is touched.
//
// The tree copies the key into its arena when it stores a new entry, so
// callers may pass a reusable scratch buffer: inserts under an existing key
// never copy, and new keys cost an amortized fraction of one chunk allocation.
func (t *BTree) Insert(key []byte, rowID int64) InsertStats {
	var st InsertStats
	if len(t.root.entries) == 2*t.degree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.nodes++
		t.height++
		t.splitChild(t.root, 0)
		st.Splits++
	}
	t.insertNonFull(t.root, key, rowID, &st)
	if st.NewKey {
		t.size++
	}
	return st
}

func (t *BTree) splitChild(parent *btreeNode, i int) {
	t.splits++
	child := parent.children[i]
	mid := t.degree - 1
	right := &btreeNode{}
	t.nodes++
	right.entries = append(right.entries, child.entries[mid+1:]...)
	median := child.entries[mid]
	child.entries = child.entries[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	parent.entries = append(parent.entries, btreeEntry{})
	copy(parent.entries[i+1:], parent.entries[i:])
	parent.entries[i] = median
}

func (t *BTree) insertNonFull(n *btreeNode, key []byte, rowID int64, st *InsertStats) {
	st.NodesVisited++
	i, found := n.find(key)
	if found {
		n.entries[i].rowIDs = append(n.entries[i].rowIDs, rowID)
		return
	}
	if n.leaf() {
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btreeEntry{key: t.copyKey(key), rowIDs: t.idSlice(rowID)}
		st.NewKey = true
		return
	}
	if len(n.children[i].entries) == 2*t.degree-1 {
		t.splitChild(n, i)
		st.Splits++
		if c := bytes.Compare(key, n.entries[i].key); c == 0 {
			n.entries[i].rowIDs = append(n.entries[i].rowIDs, rowID)
			return
		} else if c > 0 {
			i++
		}
	}
	t.insertNonFull(n.children[i], key, rowID, st)
}

// find returns the index of the first entry >= key and whether it equals key.
func (n *btreeNode) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && bytes.Equal(n.entries[lo].key, key) {
		return lo, true
	}
	return lo, false
}

// InsertSorted adds the (keys[i], rowIDs[i]) pairs, which the caller
// guarantees to be sorted ascending by (key, rowID), and returns the
// aggregated insert statistics (NewKey is meaningless for a group insert and
// left false).
//
// The pass is leaf-aware: each root-to-leaf descent remembers the leaf it
// landed in and the tightest ancestor separator bounding that leaf from
// above.  While subsequent keys stay below that separator and the leaf has
// room, they are placed with a single node visit instead of a fresh descent —
// for in-order key runs (the common case during a bulk load, where batch keys
// are collected and sorted first) index maintenance degrades from
// O(height) comparisons per row to amortized O(1) node visits per row.
// Runs of equal keys short-circuit even earlier: the row id is appended to
// the entry stored by the previous iteration without touching the leaf
// search.  Keys that fall outside the cached window fall back to the normal
// proactive-split descent, so the result is identical to calling Insert once
// per pair (up to B-tree shape, which depends on insertion order).
func (t *BTree) InsertSorted(keys [][]byte, rowIDs []int64) InsertStats {
	si := sortedInserter{t: t}
	for pos := range keys {
		si.insert(keys[pos], rowIDs[pos])
	}
	return si.st
}

// insertSortedKVs is InsertSorted over the batch path's pooled kv pairs.
func (t *BTree) insertSortedKVs(kvs []idxKV) InsertStats {
	si := sortedInserter{t: t}
	for i := range kvs {
		si.insert(kvs[i].key, kvs[i].id)
	}
	return si.st
}

// sortedInserter carries the state of one InsertSorted pass: the cached leaf
// window and the previously inserted entry for equal-key runs.  New entries'
// stored keys and row-id slices come from the tree's arenas.
type sortedInserter struct {
	t  *BTree
	st InsertStats

	leaf  *btreeNode // cached leaf of the previous descent (nil = no cache)
	upper []byte     // exclusive ancestor bound on keys the leaf may accept (nil = +inf)
	last  *btreeNode // node holding the previously inserted entry
	lasti int
}

// insert places one (key, id) pair, which must not sort below the previous
// pair of this pass.
func (si *sortedInserter) insert(key []byte, id int64) {
	// Equal-key run: append to the entry the previous iteration stored.
	if si.last != nil && bytes.Equal(key, si.last.entries[si.lasti].key) {
		si.last.entries[si.lasti].rowIDs = append(si.last.entries[si.lasti].rowIDs, id)
		si.st.NodesVisited++
		return
	}
	// In-window key: place it in the cached leaf without a descent.  The
	// strict < keeps keys equal to the ancestor separator on the descent
	// path, where they find the separator entry itself.
	if si.leaf != nil && len(si.leaf.entries) < 2*si.t.degree-1 && (si.upper == nil || bytes.Compare(key, si.upper) < 0) {
		leaf := si.leaf
		var i int
		var found bool
		if si.last == leaf && si.lasti+1 < len(leaf.entries) {
			// Sequential hint: a sorted stream's next key usually lands
			// right after the previous position (key > entries[lasti] is
			// guaranteed — an equal key took the run branch above).
			if c := bytes.Compare(key, leaf.entries[si.lasti+1].key); c < 0 {
				i, found = si.lasti+1, false
			} else if c == 0 {
				i, found = si.lasti+1, true
			} else {
				i, found = leaf.find(key)
			}
		} else if si.last == leaf {
			// Previous entry is the leaf's last: the new, larger key appends.
			i, found = len(leaf.entries), false
		} else {
			i, found = leaf.find(key)
		}
		si.st.NodesVisited++
		if found {
			leaf.entries[i].rowIDs = append(leaf.entries[i].rowIDs, id)
		} else {
			leaf.entries = append(leaf.entries, btreeEntry{})
			copy(leaf.entries[i+1:], leaf.entries[i:])
			leaf.entries[i] = btreeEntry{key: si.t.copyKey(key), rowIDs: si.t.idSlice(id)}
			si.t.size++
		}
		si.last, si.lasti = leaf, i
		return
	}
	si.descendInsert(key, id)
}

// descendInsert performs one proactive-split root-to-leaf insert of (key, id)
// and refreshes the cached window: the leaf the entry landed in and its
// tightest ancestor upper bound (no leaf window when the key matched an
// internal-node entry), plus the entry itself for equal-key runs.
func (si *sortedInserter) descendInsert(key []byte, id int64) {
	t := si.t
	if len(t.root.entries) == 2*t.degree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.nodes++
		t.height++
		t.splitChild(t.root, 0)
		si.st.Splits++
	}
	n := t.root
	var ub []byte
	for {
		si.st.NodesVisited++
		i, found := n.find(key)
		if found {
			n.entries[i].rowIDs = append(n.entries[i].rowIDs, id)
			if n.leaf() {
				si.leaf, si.upper = n, ub
			} else {
				si.leaf, si.upper = nil, nil
			}
			si.last, si.lasti = n, i
			return
		}
		if n.leaf() {
			n.entries = append(n.entries, btreeEntry{})
			copy(n.entries[i+1:], n.entries[i:])
			n.entries[i] = btreeEntry{key: t.copyKey(key), rowIDs: t.idSlice(id)}
			t.size++
			si.leaf, si.upper = n, ub
			si.last, si.lasti = n, i
			return
		}
		if len(n.children[i].entries) == 2*t.degree-1 {
			t.splitChild(n, i)
			si.st.Splits++
			if c := bytes.Compare(key, n.entries[i].key); c == 0 {
				n.entries[i].rowIDs = append(n.entries[i].rowIDs, id)
				si.leaf, si.upper = nil, nil
				si.last, si.lasti = n, i
				return
			} else if c > 0 {
				i++
			}
		}
		if i < len(n.entries) {
			ub = n.entries[i].key
		}
		n = n.children[i]
	}
}

// BuildStats reports the work performed by one BuildFromSorted call.
type BuildStats struct {
	// Rows is the number of (key, rowID) pairs consumed.
	Rows int
	// Entries is the number of distinct keys stored.
	Entries int
	// NodesBuilt is the number of B-tree nodes constructed.
	NodesBuilt int
	// Height is the height of the finished tree.
	Height int
}

// BuildFromSorted replaces the tree's contents with the (keys[i], rowIDs[i])
// pairs, which the caller guarantees to be sorted ascending by (key, rowID).
// Duplicate keys must be adjacent; their row ids accumulate into one entry in
// input order, exactly as repeated Insert calls would leave them.
//
// The construction is the cheapest possible for a B-tree: leaves are packed
// left to right from the sorted stream, separators are promoted to build each
// internal level the same way, and no key comparison happens beyond the
// adjacent-duplicate check — there is no per-row root-to-leaf descent at all,
// which is what makes an end-of-load bulk rebuild (DB.Seal) cheaper than even
// the leaf-aware InsertSorted path.  Nodes are packed full (2*degree-1
// entries) except the rightmost node of each level, which keeps at least
// degree-1 entries by borrowing from its left neighbour's share; the result
// always satisfies CheckInvariants.
func (t *BTree) BuildFromSorted(keys [][]byte, rowIDs []int64) BuildStats {
	// Stored keys and initial row-id slices are carved from two fresh arenas
	// (one allocation each) instead of two allocations per entry; id
	// sub-slices are full (len == cap), so a later append to an entry's
	// rowIDs reallocates instead of overwriting a neighbour.
	total := 0
	for i := range keys {
		total += len(keys[i])
	}
	arena := make([]byte, 0, total)
	idArena := make([]int64, 0, len(rowIDs))
	entries := make([]btreeEntry, 0, len(keys))
	for i := range keys {
		if n := len(entries); n > 0 && bytes.Equal(entries[n-1].key, keys[i]) {
			entries[n-1].rowIDs = append(entries[n-1].rowIDs, rowIDs[i])
			continue
		}
		start := len(arena)
		arena = append(arena, keys[i]...)
		idArena = append(idArena, rowIDs[i])
		entries = append(entries, btreeEntry{
			key:    arena[start:len(arena):len(arena)],
			rowIDs: idArena[len(idArena)-1 : len(idArena) : len(idArena)],
		})
	}
	t.keyArena = arena
	t.idArena = idArena
	t.keyBytes = len(arena)
	t.arenaBytes = cap(arena)
	return t.buildFromEntries(entries, len(keys))
}

// buildFromEntries assembles the tree bottom-up from merged, sorted entries.
// Callers own key storage and must set keyBytes/arenaBytes accordingly.
func (t *BTree) buildFromEntries(entries []btreeEntry, rows int) BuildStats {
	t.root = &btreeNode{}
	t.nodes = 1
	t.height = 1
	t.splits = 0
	t.size = len(entries)
	st := BuildStats{Rows: rows, Entries: len(entries)}
	if len(entries) == 0 {
		st.NodesBuilt, st.Height = 1, 1
		return st
	}
	level := entries
	var children []*btreeNode // nil while building the leaf level
	nodesBuilt := 0
	height := 0
	for {
		height++
		nodes, seps := t.chunkLevel(level, children)
		nodesBuilt += len(nodes)
		if len(seps) == 0 {
			t.root = nodes[0]
			break
		}
		level, children = seps, nodes
	}
	t.nodes = nodesBuilt
	t.height = height
	st.NodesBuilt, st.Height = nodesBuilt, height
	return st
}

// chunkLevel packs one level's entries into nodes of at most 2*degree-1
// entries, promoting one separator entry between consecutive nodes.  children
// (nil for the leaf level) are distributed in order, one more per node than
// its entry count.  The greedy fill shrinks the second-to-last node's take so
// the final node never drops below degree-1 entries.
func (t *BTree) chunkLevel(entries []btreeEntry, children []*btreeNode) (nodes []*btreeNode, seps []btreeEntry) {
	maxE := 2*t.degree - 1
	minE := t.degree - 1
	n := len(entries)
	nodeOf := func(es []btreeEntry, ch []*btreeNode) *btreeNode {
		node := &btreeNode{entries: make([]btreeEntry, len(es))}
		copy(node.entries, es)
		if ch != nil {
			node.children = make([]*btreeNode, len(ch))
			copy(node.children, ch)
		}
		return node
	}
	if n <= maxE {
		return []*btreeNode{nodeOf(entries, children)}, nil
	}
	i, ci := 0, 0
	for {
		remaining := n - i
		if remaining <= maxE {
			var ch []*btreeNode
			if children != nil {
				ch = children[ci:]
			}
			nodes = append(nodes, nodeOf(entries[i:], ch))
			return nodes, seps
		}
		take := maxE
		if remaining-take-1 < minE {
			take = remaining - 1 - minE
		}
		var ch []*btreeNode
		if children != nil {
			ch = children[ci : ci+take+1]
		}
		nodes = append(nodes, nodeOf(entries[i:i+take], ch))
		seps = append(seps, entries[i+take])
		i += take + 1
		ci += take + 1
	}
}

// Search returns the row ids stored under key (nil if absent) and the number
// of nodes visited.
func (t *BTree) Search(key []byte) ([]int64, int) {
	n := t.root
	visited := 0
	for {
		visited++
		i, found := n.find(key)
		if found {
			return n.entries[i].rowIDs, visited
		}
		if n.leaf() {
			return nil, visited
		}
		n = n.children[i]
	}
}

// Delete removes rowID from the ids stored under key.  When the last id for a
// key is removed the key remains as a tombstone (empty id list); the loading
// workload is insert-only, so full B-tree deletion/rebalancing is not needed —
// tombstones only arise from transaction rollback undo.  The tombstoned key
// stays in the tree's arena: a later re-insert of the same key appends to the
// existing entry without re-copying it, so an insert/rollback/insert cycle
// neither leaks nor duplicates arena bytes.
func (t *BTree) Delete(key []byte, rowID int64) bool {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			ids := n.entries[i].rowIDs
			for j, id := range ids {
				if id == rowID {
					n.entries[i].rowIDs = append(ids[:j], ids[j+1:]...)
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// AscendRange visits every (key, rowIDs) pair with from <= key <= to in key
// order; a nil bound is unbounded.  Bounds are AppendOrderedKey encodings;
// because the encoding is order-preserving and orders a prefix before its
// extensions exactly as CompareKeys does, range semantics match the former
// []Value bounds.  The visitor receives the stored encoded key (valid for the
// life of the tree; decode with DecodeOrderedKey if values are needed) and
// returns false to stop early.
func (t *BTree) AscendRange(from, to []byte, visit func(key []byte, rowIDs []int64) bool) {
	t.ascend(t.root, from, to, visit)
}

func (t *BTree) ascend(n *btreeNode, from, to []byte, visit func([]byte, []int64) bool) bool {
	start := 0
	if from != nil {
		start, _ = n.find(from)
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], from, to, visit) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if to != nil && bytes.Compare(e.key, to) > 0 {
			return false
		}
		if len(e.rowIDs) > 0 {
			if !visit(e.key, e.rowIDs) {
				return false
			}
		}
		// After the first subtree the lower bound no longer prunes.
		from = nil
	}
	return true
}

// Keys returns all encoded keys in order; intended for tests and small
// indexes.
func (t *BTree) Keys() [][]byte {
	var out [][]byte
	t.AscendRange(nil, nil, func(key []byte, _ []int64) bool {
		out = append(out, key)
		return true
	})
	return out
}

// CheckInvariants verifies B-tree structural invariants: key ordering within
// and across nodes, node fill bounds, uniform leaf depth, well-formed stored
// keys (every key must be a valid AppendOrderedKey encoding) and arena
// accounting (KeyBytes equals the summed stored key lengths and never exceeds
// ArenaBytes plus externally owned build arenas).  It returns a descriptive
// error when an invariant is violated.  Used by property tests.
func (t *BTree) CheckInvariants() error {
	depths := map[int]bool{}
	keyBytes := 0
	var walk func(n *btreeNode, depth int, min, max []byte) error
	walk = func(n *btreeNode, depth int, min, max []byte) error {
		if n != t.root {
			if len(n.entries) < t.degree-1 || len(n.entries) > 2*t.degree-1 {
				return fmt.Errorf("node at depth %d has %d entries, want [%d,%d]", depth, len(n.entries), t.degree-1, 2*t.degree-1)
			}
		}
		for i := 0; i < len(n.entries); i++ {
			k := n.entries[i].key
			if _, err := DecodeOrderedKey(k); err != nil {
				return fmt.Errorf("malformed stored key %x at depth %d: %v", k, depth, err)
			}
			keyBytes += len(k)
			if i > 0 && bytes.Compare(n.entries[i-1].key, k) >= 0 {
				return fmt.Errorf("entries out of order at depth %d", depth)
			}
			if min != nil && bytes.Compare(k, min) <= 0 {
				return fmt.Errorf("entry below subtree lower bound at depth %d", depth)
			}
			if max != nil && bytes.Compare(k, max) >= 0 {
				return fmt.Errorf("entry above subtree upper bound at depth %d", depth)
			}
		}
		if n.leaf() {
			depths[depth] = true
			return nil
		}
		if len(n.children) != len(n.entries)+1 {
			return fmt.Errorf("internal node at depth %d has %d children for %d entries", depth, len(n.children), len(n.entries))
		}
		for i, c := range n.children {
			var lo, hi []byte
			if i > 0 {
				lo = n.entries[i-1].key
			} else {
				lo = min
			}
			if i < len(n.entries) {
				hi = n.entries[i].key
			} else {
				hi = max
			}
			if err := walk(c, depth+1, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if len(depths) > 1 {
		return fmt.Errorf("leaves at multiple depths: %v", depths)
	}
	if keyBytes != t.keyBytes {
		return fmt.Errorf("KeyBytes accounting drift: stored %d bytes, counter says %d", keyBytes, t.keyBytes)
	}
	if t.keyBytes > t.arenaBytes {
		return fmt.Errorf("KeyBytes %d exceeds ArenaBytes %d", t.keyBytes, t.arenaBytes)
	}
	return nil
}
