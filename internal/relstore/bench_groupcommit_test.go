package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchSyncDelay models one fsync on the log device.  100µs is a cheap
// battery-backed controller; the absolute value only scales the numbers, the
// grouped/ungrouped ratio is what the benchmark exists to show.
const benchSyncDelay = 100 * time.Microsecond

// BenchmarkGroupCommit prices commit throughput at 1/4/16 concurrent
// wall-clock writers with and without group commit, under a modeled WAL sync
// latency (WithWALSyncDelay).  Ungrouped, W concurrent committers serialize W
// sync delays on the single log device; grouped, one leader syncs for the
// whole group.  Each benchmark op is one round of W concurrent
// single-insert transactions; the headline commits/s metric feeds
// BENCH_groupcommit.json.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		for _, grouped := range []bool{false, true} {
			mode := "ungrouped"
			opts := []Option{WithWALSyncDelay(benchSyncDelay)}
			if grouped {
				mode = "grouped"
				opts = append(opts, WithGroupCommit(200*time.Microsecond, 16))
			}
			b.Run(fmt.Sprintf("writers_%d/%s", writers, mode), func(b *testing.B) {
				db := MustOpen(testSchema(b), opts...)
				seed, err := db.Begin()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := seed.Insert("frames", []string{"frame_id", "exposure"},
					[]Value{Int(1), Float(30)}); err != nil {
					b.Fatal(err)
				}
				if _, err := seed.Commit(); err != nil {
					b.Fatal(err)
				}
				var next atomic.Int64
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					var wg sync.WaitGroup
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							id := next.Add(1)
							txn, err := db.Begin()
							if err != nil {
								b.Error(err)
								return
							}
							if _, err := txn.Insert("objects",
								[]string{"object_id", "frame_id", "mag"},
								[]Value{Int(id), Int(1), Float(float64(id % 30))}); err != nil {
								b.Error(err)
								return
							}
							if _, err := txn.Commit(); err != nil {
								b.Error(err)
							}
						}()
					}
					wg.Wait()
				}
				b.StopTimer()
				commits := float64(b.N) * float64(writers)
				if s := b.Elapsed().Seconds(); s > 0 {
					b.ReportMetric(commits/s, "commits/s")
				}
				if grouped {
					st := db.WAL().Stats()
					if st.GroupCommits > 0 {
						b.ReportMetric(float64(st.GroupedCommits)/float64(st.GroupCommits), "txns/group")
					}
				}
			})
		}
	}
}
