package relstore

import (
	"bytes"
	"math/rand"
	"testing"
)

// BenchmarkBTreeEncodedCompare is the microbenchmark behind the encoded-key
// refactor: one key comparison the way the tree used to do it (CompareKeys
// over []Value columns, a kind switch per element) versus the way it does now
// (a single bytes.Compare over order-preserving encodings).  Shapes mirror
// the two Figure 8 indexes (one int64 htmid column; three float columns) plus
// a mixed string shape.  ns/cmp lands in BENCH_btreekeys.json.
func BenchmarkBTreeEncodedCompare(b *testing.B) {
	shapes := []struct {
		name  string
		shape []ValueKind
	}{
		{"Int", []ValueKind{KindInt}},
		{"Float3", []ValueKind{KindFloat, KindFloat, KindFloat}},
		{"StrIntFloat", []ValueKind{KindString, KindInt, KindFloat}},
	}
	const pairs = 1024
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(20050714))
		av := make([][]Value, pairs)
		bv := make([][]Value, pairs)
		ae := make([][]byte, pairs)
		be := make([][]byte, pairs)
		for i := 0; i < pairs; i++ {
			av[i] = make([]Value, len(s.shape))
			bv[i] = make([]Value, len(s.shape))
			for j, kind := range s.shape {
				av[i][j] = randOrderedValue(rng, kind)
				bv[i][j] = randOrderedValue(rng, kind)
			}
			if i%4 == 0 {
				copy(bv[i], av[i]) // equal keys walk the full length either way
			}
			ae[i] = EncodeOrderedKey(av[i])
			be[i] = EncodeOrderedKey(bv[i])
		}
		b.Run(s.name+"/CompareKeys", func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				p := i % pairs
				sink += CompareKeys(av[p], bv[p])
			}
			benchSink = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cmp")
		})
		b.Run(s.name+"/BytesCompare", func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				p := i % pairs
				sink += bytes.Compare(ae[p], be[p])
			}
			benchSink = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cmp")
		})
	}
}

// benchSink defeats dead-code elimination of the comparison results.
var benchSink int
