package relstore

import (
	"math/rand"
	"testing"
)

// BenchmarkSealBulkBuild isolates the end-of-load bulk index build: given the
// same presorted key stream, construct the tree by packing leaves left to
// right (BuildFromSorted, what Seal does), by the leaf-aware sequential
// insert pass (InsertSorted, what per-batch maintenance does at best), and by
// one descent per key (Insert, the per-row path).  ns/key is the headline
// metric for BENCH_indexbuild.json.
func BenchmarkSealBulkBuild(b *testing.B) {
	const n = 100_000
	keys := make([][]byte, n)
	ids := make([]int64, n)
	rng := rand.New(rand.NewSource(9))
	k := int64(0)
	for i := range keys {
		k += rng.Int63n(3) // ascending with duplicate runs, htmid-like
		keys[i] = EncodeOrderedKey([]Value{Int(k)})
		ids[i] = int64(i)
	}

	b.Run("BuildFromSorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := NewBTree(32)
			tr.BuildFromSorted(keys, ids)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/key")
	})

	b.Run("InsertSorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := NewBTree(32)
			tr.InsertSorted(keys, ids)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/key")
	})

	b.Run("Insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := NewBTree(32)
			for j := range keys {
				tr.Insert(keys[j], ids[j])
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/key")
	})
}

// BenchmarkIndexLoadPolicy is the end-to-end policy comparison on the
// Figure-8-shaped workload (objs table with the htmid index and the
// composite three-float index, catalog-file-like batches of 1000): Immediate
// maintains both indexes on every batch; Deferred loads inside
// BeginLoad/Seal, skipping per-batch maintenance, and pays the bulk rebuild
// at the end.  Each iteration loads a fresh database; the deferred time
// includes Seal, so ns/row is a true end-to-end comparison and the ratio is
// what BENCH_indexbuild.json records.
func BenchmarkIndexLoadPolicy(b *testing.B) {
	const (
		batchSize = 40 // the paper's batch-size optimum (Figure 5)
		batches   = 2500
		rows      = batchSize * batches
	)
	cols := []string{"object_id", "frame_id", "htmid", "ra", "dec", "mag"}
	newBuf := func() [][]Value {
		buf := make([][]Value, batchSize)
		for i := range buf {
			buf[i] = make([]Value, len(cols))
		}
		return buf
	}
	// fig8Rows is objRows with one difference: successive catalog files image
	// *random* sky footprints instead of a monotonically drifting stripe, so
	// per-batch index maintenance lands all over the growing tree — the
	// Figure 8 situation — while keys within one batch stay clustered.
	fig8Rows := func(buf [][]Value, rng *rand.Rand, start, fileBase int64) {
		for i := range buf {
			id := start + int64(i)
			buf[i][0] = Int(id)
			buf[i][1] = Int(rng.Int63n(64))
			buf[i][2] = Int(fileBase + rng.Int63n(1000))
			buf[i][3] = Float(float64(fileBase)/100 + rng.Float64())
			buf[i][4] = Float(-20 + rng.Float64())
			buf[i][5] = Float(14 + 8*rng.Float64())
		}
	}
	const (
		policyNone = iota // no secondary indexes at all (the Figure 8 floor)
		policyImmediate
		policyDeferred
	)
	loadOne := func(b *testing.B, mode int) {
		b.Helper()
		b.StopTimer()
		db := MustOpen(batchBenchSchema(b))
		if mode != policyNone {
			policy := IndexImmediate
			if mode == policyDeferred {
				policy = IndexDeferred
			}
			if _, err := db.CreateIndexWith("objs", "ix_htmid", []string{"htmid"}, false, policy); err != nil {
				b.Fatal(err)
			}
			if _, err := db.CreateIndexWith("objs", "ix_radecmag", []string{"ra", "dec", "mag"}, false, policy); err != nil {
				b.Fatal(err)
			}
		}
		setup, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		for f := int64(0); f < 64; f++ {
			if _, err := setup.Insert("frames", []string{"frame_id"}, []Value{Int(f)}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := setup.Commit(); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		buf := newBuf()
		b.StartTimer()

		if mode == policyDeferred {
			if err := db.BeginLoad(); err != nil {
				b.Fatal(err)
			}
		}
		txn, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		for n := 0; n < batches; n++ {
			fig8Rows(buf, rng, int64(n)*batchSize, rng.Int63n(1<<24))
			br, err := txn.InsertBatch("objs", cols, buf)
			if err != nil || br.RowsInserted != batchSize {
				b.Fatalf("batch: %+v err=%v", br, err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
		if mode == policyDeferred {
			if _, err := db.Seal(); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, m := range []struct {
		name string
		mode int
	}{{"NoIndexes", policyNone}, {"Immediate", policyImmediate}, {"Deferred", policyDeferred}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loadOne(b, m.mode)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/rows, "ns/row")
		})
	}
}
