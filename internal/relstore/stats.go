package relstore

// IndexStat is the per-index slice of a StatsSnapshot: the key/arena memory
// accounting DBStats aggregates, broken out by index, plus the readiness the
// health probe gates on.
type IndexStat struct {
	Table, Name string
	Unique      bool
	// Ready mirrors Index.Ready: false for a deferred-policy index between
	// BeginLoad and Seal.
	Ready bool
	// KeyBytes is the summed length of the encoded keys the index stores;
	// ArenaBytes the capacity its key arenas reserve (see DBStats).
	KeyBytes, ArenaBytes int64
}

// StatsSnapshot is the one-call statistics surface of a database: engine
// counters, redo-log counters, buffer-cache counters and per-index memory in
// a single struct, taken as close together as the component locks allow.
// Exporters and reports consume this instead of reaching into
// DB.Stats() + WAL().Stats() + Cache().Stats() separately — one accessor,
// one point in time, no partially-updated triples when the caller formats
// them side by side.  (Cross-component consistency is still best-effort:
// each component snapshots under its own lock, the same contract the
// individual accessors offered.)
type StatsSnapshot struct {
	DB      DBStats
	WAL     WALStats
	Cache   CacheStats
	Indexes []IndexStat
	// TotalRows is the live row count summed over all tables.
	TotalRows int64
	// Loading reports whether the database is inside a BeginLoad/Seal window
	// (deferred indexes suspended).
	Loading bool
}

// StatsSnapshot captures the unified statistics snapshot.  Indexes are
// ordered by table name then index name, so successive scrapes expose
// series in a stable order.
func (db *DB) StatsSnapshot() StatsSnapshot {
	out := StatsSnapshot{
		DB:        db.Stats(),
		WAL:       db.wal.Stats(),
		Cache:     db.cache.Stats(),
		TotalRows: db.TotalRows(),
		Loading:   db.loading.Load(),
	}
	// Sync accounting invariant: every sync is a per-commit sync, a threshold
	// auto-sync or a group sync, so the total can never undercut the latter
	// two.  Checked only under the skydebug build tag — counter drift here
	// would silently skew every §4.5.2 figure, so tests fail loudly instead.
	if debugChecks && out.WAL.Syncs < out.WAL.AutoSyncs+out.WAL.GroupCommits {
		panic("relstore: WALStats invariant violated: Syncs < AutoSyncs + GroupCommits")
	}
	for _, ix := range db.AllIndexes() {
		out.Indexes = append(out.Indexes, IndexStat{
			Table:      ix.Table,
			Name:       ix.Name,
			Unique:     ix.Unique,
			Ready:      ix.Ready(),
			KeyBytes:   int64(ix.Tree().KeyBytes()),
			ArenaBytes: int64(ix.Tree().ArenaBytes()),
		})
	}
	return out
}

// Ready reports whether every index in the database is ready to answer
// queries (no deferred index suspended by an open load phase), no load
// phase is open, and recovery replay (StartRecover) has finished — the
// condition the HTTP front door's readiness probe checks before admitting
// traffic that expects indexed latency.
func (db *DB) Ready() bool {
	if db.recovering.Load() {
		return false
	}
	if db.loading.Load() {
		return false
	}
	for _, t := range db.tables {
		t.mu.RLock()
		for _, ix := range t.indexList {
			if !ix.Ready() {
				t.mu.RUnlock()
				return false
			}
		}
		t.mu.RUnlock()
	}
	return true
}
