//go:build !skydebug

package relstore

// debugChecks is false in normal builds; see debugcheck_on.go.
const debugChecks = false
