package relstore

import (
	"testing"
)

// TestAppendKeyZeroAlloc pins the zero-allocation property of the
// scratch-buffer key encoding: once the buffer has capacity, encoding a
// composite key must not touch the heap.
func TestAppendKeyZeroAlloc(t *testing.T) {
	key := []Value{Int(123456789), Float(53600.5), Str("R"), Bool(true), Null}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendKey(buf[:0], key)
		if len(buf) == 0 {
			t.Fatal("empty encoding")
		}
	})
	if allocs != 0 {
		t.Errorf("AppendKey allocates %.1f times per key, want 0", allocs)
	}
}

// TestInsertPreparedAllocBudget pins the allocation budget of the insert hot
// path so the zero-allocation work cannot silently rot.  A stored row
// legitimately pays for: the row slice itself (it lives in the heap page),
// one encoded-key string per hash index that stores it (primary key plus each
// unique constraint), and amortized container growth.  The boxed-interface
// representation this replaced needed ~14 allocations per insert on the same
// table; the budget below leaves room for amortized map/slice growth only.
func TestInsertPreparedAllocBudget(t *testing.T) {
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("fingers", "ix_flux", []string{"flux"}, false); err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("fingers")
	var sc scratch
	var id int64
	// Warm the table (and the per-goroutine scratch) so steady-state growth
	// is amortized.
	for ; id < 4096; id++ {
		row := Row{Int(id), Int(id), Float(float64(id % 64))}
		if _, _, _, err := tbl.insertPrepared(&sc, row); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(4096, func() {
		id++
		row := Row{Int(id), Int(id), Float(float64(id % 64))}
		if _, _, _, err := tbl.insertPrepared(&sc, row); err != nil {
			t.Fatal(err)
		}
	})
	// 1 row + 1 pk string + 1 unique string = 3, plus amortized growth slack.
	const budget = 6.0
	if allocs > budget {
		t.Errorf("insertPrepared allocates %.2f times per row, budget %v", allocs, budget)
	}
}
