package relstore

import (
	"testing"
)

// TestAppendKeyZeroAlloc pins the zero-allocation property of the
// scratch-buffer key encoding: once the buffer has capacity, encoding a
// composite key must not touch the heap.
func TestAppendKeyZeroAlloc(t *testing.T) {
	key := []Value{Int(123456789), Float(53600.5), Str("R"), Bool(true), Null}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendKey(buf[:0], key)
		if len(buf) == 0 {
			t.Fatal("empty encoding")
		}
	})
	if allocs != 0 {
		t.Errorf("AppendKey allocates %.1f times per key, want 0", allocs)
	}
}

// TestInsertPreparedAllocBudget pins the allocation budget of the insert hot
// path so the zero-allocation work cannot silently rot.  A stored row
// legitimately pays for: the row slice itself (it lives in the heap page),
// one encoded-key string per hash index that stores it (primary key plus each
// unique constraint), and amortized container growth.  The boxed-interface
// representation this replaced needed ~14 allocations per insert on the same
// table; the budget below leaves room for amortized map/slice growth only.
func TestInsertPreparedAllocBudget(t *testing.T) {
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("fingers", "ix_flux", []string{"flux"}, false); err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("fingers")
	var sc scratch
	var id int64
	// Warm the table (and the per-goroutine scratch) so steady-state growth
	// is amortized.
	for ; id < 4096; id++ {
		row := Row{Int(id), Int(id), Float(float64(id % 64))}
		if _, _, _, err := tbl.insertPrepared(&sc, row); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(4096, func() {
		id++
		row := Row{Int(id), Int(id), Float(float64(id % 64))}
		if _, _, _, err := tbl.insertPrepared(&sc, row); err != nil {
			t.Fatal(err)
		}
	})
	// 1 row + 1 pk string + 1 unique string = 3, plus amortized growth slack.
	const budget = 6.0
	if allocs > budget {
		t.Errorf("insertPrepared allocates %.2f times per row, budget %v", allocs, budget)
	}
}

// TestInsertRollbackArenaStable pins the rollback cost of encoded-key
// indexes.  Rolling back a transaction tombstones its index entries in
// place; re-inserting the same keys afterwards must re-use the tombstoned
// entries — appending row ids into retained capacity — rather than copying
// fresh keys into the arena.  The test drives insert+rollback cycles over a
// fixed key set and requires (a) the tree's arena footprint to stop growing
// after the first cycle (no leak) and (b) a steady-state allocation budget
// per cycle that leaves no room for per-key arena or entry churn.
func TestInsertRollbackArenaStable(t *testing.T) {
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("frames", "ix_exposure", []string{"exposure"}, false); err != nil {
		t.Fatal(err)
	}
	const rows = 64
	cycle := func() {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := txn.Insert("frames", []string{"frame_id", "exposure"},
				[]Value{Int(int64(i)), Float(float64(i % 8))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // first cycle pays for the 8 distinct keys and id slices
	tree := db.Table("frames").Index("ix_exposure").Tree()
	keyBytes, arenaBytes := tree.KeyBytes(), tree.ArenaBytes()
	allocs := testing.AllocsPerRun(50, cycle)
	if kb, ab := tree.KeyBytes(), tree.ArenaBytes(); kb != keyBytes || ab != arenaBytes {
		t.Errorf("arena grew across rollback cycles: KeyBytes %d -> %d, ArenaBytes %d -> %d",
			keyBytes, kb, arenaBytes, ab)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Row storage, undo bookkeeping and txn setup legitimately allocate; the
	// index side must not.  ~3/row covers the row slice + pk string + growth
	// slack; anything near 5/row would mean keys are being re-copied.
	budget := 4.0 * rows
	if allocs > budget {
		t.Errorf("insert+rollback cycle allocates %.1f (%.2f/row), budget %.0f", allocs, allocs/rows, budget)
	}
}
