package relstore

import (
	"math/rand"
	"testing"
)

// batchBenchSchema mirrors the shape of the catalog's objects table as the
// Figure 8 experiment loads it: integer primary key, foreign key to a parent
// table, a single-integer htmid index and the composite three-float
// (ra, dec, mag) index whose maintenance dominates index overhead in the
// paper.
func batchBenchSchema(b *testing.B) *Schema {
	b.Helper()
	s, err := NewSchema(
		&TableSchema{
			Name:       "frames",
			Columns:    []Column{{Name: "frame_id", Type: TypeInt}},
			PrimaryKey: []string{"frame_id"},
		},
		&TableSchema{
			Name: "objs",
			Columns: []Column{
				{Name: "object_id", Type: TypeInt},
				{Name: "frame_id", Type: TypeInt},
				{Name: "htmid", Type: TypeInt},
				{Name: "ra", Type: TypeFloat},
				{Name: "dec", Type: TypeFloat},
				{Name: "mag", Type: TypeFloat},
			},
			PrimaryKey: []string{"object_id"},
			ForeignKeys: []ForeignKey{
				{Name: "fk_obj_frame", Columns: []string{"frame_id"}, RefTable: "frames", RefColumns: []string{"frame_id"}},
			},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// batchBenchDB builds the Figure 8-shaped database: the objs table with its
// htmid and composite (ra, dec, mag) indexes, and enough frames for the
// foreign-key probes to hit.
func batchBenchDB(b *testing.B) *DB {
	b.Helper()
	db := MustOpen(batchBenchSchema(b))
	if _, err := db.CreateIndex("objs", "ix_htmid", []string{"htmid"}, false); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex("objs", "ix_radecmag", []string{"ra", "dec", "mag"}, false); err != nil {
		b.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		b.Fatal(err)
	}
	for f := int64(0); f < 64; f++ {
		if _, err := txn.Insert("frames", []string{"frame_id"}, []Value{Int(f)}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		b.Fatal(err)
	}
	return db
}

// objRows fills buf with one batch of catalog-file-like rows starting at row
// id start: ids ascend with arrival order, and each batch covers one small
// sky footprint (a catalog file images one region), so htmid and ra/dec fall
// in clustered runs — the workload structure the sorted bulk index pass is
// designed around.
func objRows(buf [][]Value, rng *rand.Rand, start int64) {
	batch := int64(len(buf))
	fileBase := start / batch * 1000 // one footprint per batch, drifting across the sky
	for i := range buf {
		id := start + int64(i)
		buf[i][0] = Int(id)
		buf[i][1] = Int(rng.Int63n(64))
		buf[i][2] = Int(fileBase + rng.Int63n(1000)) // htmid within the footprint
		buf[i][3] = Float(float64(fileBase)/100 + rng.Float64())
		buf[i][4] = Float(-20 + rng.Float64())
		buf[i][5] = Float(14 + 8*rng.Float64())
	}
}

// BenchmarkInsertBatch compares the wall-clock cost per row of the per-row
// transaction loop (one table-lock round trip, WAL append, lock-manager call
// and index descent per row — what the DES cost model charges for) against
// Txn.InsertBatch at batch size 1000 (each of those paid once per batch).
// The reported ns/row metric is the headline number for BENCH_batchapply.json.
func BenchmarkInsertBatch(b *testing.B) {
	const batchSize = 1000
	cols := []string{"object_id", "frame_id", "htmid", "ra", "dec", "mag"}
	newBuf := func() [][]Value {
		buf := make([][]Value, batchSize)
		for i := range buf {
			buf[i] = make([]Value, len(cols))
		}
		return buf
	}

	b.Run("PerRow", func(b *testing.B) {
		db := batchBenchDB(b)
		txn, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		buf := newBuf()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			objRows(buf, rng, int64(n)*batchSize)
			for _, r := range buf {
				if _, err := txn.Insert("objs", cols, r); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/row")
	})

	b.Run("Batch", func(b *testing.B) {
		db := batchBenchDB(b)
		txn, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		buf := newBuf()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			objRows(buf, rng, int64(n)*batchSize)
			br, err := txn.InsertBatch("objs", cols, buf)
			if err != nil || br.RowsInserted != batchSize {
				b.Fatalf("batch: %+v err=%v", br, err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/row")
	})
}

// BenchmarkBTreeInsertSorted isolates secondary-index maintenance: inserting
// 1000-key batches drawn from a random key domain one descent at a time
// versus sorting each batch and feeding it to the leaf-aware sequential pass.
// Both sub-benchmarks grow a tree from the same key stream, so later
// iterations work against the same tree sizes.
func BenchmarkBTreeInsertSorted(b *testing.B) {
	const batchSize = 1000
	makeBatch := func(rng *rand.Rand, keys [][]byte, ids []int64, start int64) {
		for i := range keys {
			keys[i] = AppendOrderedKey(keys[i][:0], []Value{Int(rng.Int63n(1 << 30))})
			ids[i] = start + int64(i)
		}
	}
	newBufs := func() ([][]byte, []int64) {
		keys := make([][]byte, batchSize)
		for i := range keys {
			keys[i] = make([]byte, 0, 16)
		}
		return keys, make([]int64, batchSize)
	}

	b.Run("RandomOrder", func(b *testing.B) {
		tr := NewBTree(32)
		rng := rand.New(rand.NewSource(1))
		keys, ids := newBufs()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			makeBatch(rng, keys, ids, int64(n)*batchSize)
			for i := range keys {
				tr.Insert(keys[i], ids[i])
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/key")
	})

	b.Run("SortedBatch", func(b *testing.B) {
		tr := NewBTree(32)
		rng := rand.New(rand.NewSource(1))
		keys, ids := newBufs()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			makeBatch(rng, keys, ids, int64(n)*batchSize)
			sortKVs(keys, ids)
			tr.InsertSorted(keys, ids)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/key")
	})

	// The loading workload's natural order: keys arrive already clustered
	// (htmid runs), which is where the cached-leaf window pays off hardest.
	b.Run("SortedBatchClustered", func(b *testing.B) {
		tr := NewBTree(32)
		rng := rand.New(rand.NewSource(1))
		keys, ids := newBufs()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			base := int64(n) * batchSize
			for i := range keys {
				keys[i] = AppendOrderedKey(keys[i][:0], []Value{Int(base + rng.Int63n(batchSize))})
				ids[i] = base + int64(i)
			}
			sortKVs(keys, ids)
			tr.InsertSorted(keys, ids)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/key")
	})
}
