package relstore

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitSingle pins the degenerate protocol: with no concurrency a
// committing transaction is its own leader, the group has size 1, and the
// sync accounting attributes the commit to exactly one group sync.
func TestGroupCommitSingle(t *testing.T) {
	db := MustOpen(testSchema(t), WithGroupCommit(50*time.Microsecond, 8))
	if !db.GroupCommitEnabled() {
		t.Fatal("GroupCommitEnabled() = false with WithGroupCommit set")
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, txn, 1)
	rep, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GroupLeader || rep.GroupSize != 1 {
		t.Fatalf("solo commit: leader=%v size=%d, want leader of a group of 1", rep.GroupLeader, rep.GroupSize)
	}
	if rep.LogBytesForced == 0 {
		t.Fatal("solo leader forced no log bytes; the group sync should carry the commit's tail")
	}
	st := db.WAL().Stats()
	if st.GroupCommits != 1 || st.GroupedCommits != 1 || st.MaxGroupSize != 1 {
		t.Fatalf("group stats = %d/%d/%d, want 1/1/1", st.GroupCommits, st.GroupedCommits, st.MaxGroupSize)
	}
	if st.Syncs < st.AutoSyncs+st.GroupCommits {
		t.Fatalf("sync accounting broken: Syncs %d < AutoSyncs %d + GroupCommits %d",
			st.Syncs, st.AutoSyncs, st.GroupCommits)
	}
}

// TestGroupCommitConcurrentWriters drives many committing transactions
// through a group-commit database from concurrent goroutines — the -race
// exercise for the commit-queue protocol.  Every commit must be covered by
// exactly one group (GroupedCommits == Commits), no group may exceed the
// waiter cap, and the sync-total invariant must hold with grouped syncs in
// the mix.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	const (
		writers    = 8
		commitsPer = 25
		maxWaiters = 4
	)
	db := MustOpen(testSchema(t), WithGroupCommit(200*time.Microsecond, maxWaiters))
	seed, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, seed, 1)
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	base := db.WAL().Stats()

	var wg sync.WaitGroup
	var leaders, followers atomic.Int64
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commitsPer; i++ {
				id := int64(g*10_000 + i + 1)
				txn, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := insertObject(t, txn, id, 1, float64(id%30)); err != nil {
					t.Error(err)
					return
				}
				rep, err := txn.Commit()
				if err != nil {
					t.Error(err)
					return
				}
				if rep.GroupSize < 1 || rep.GroupSize > maxWaiters {
					t.Errorf("group size %d outside [1,%d]", rep.GroupSize, maxWaiters)
					return
				}
				if rep.GroupLeader {
					leaders.Add(1)
				} else {
					followers.Add(1)
					// Followers never force bytes; the leader's sync covers them.
					if rep.LogBytesForced != 0 {
						t.Errorf("follower forced %d log bytes, want 0", rep.LogBytesForced)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	const total = writers * commitsPer
	if got := leaders.Load() + followers.Load(); got != total {
		t.Fatalf("commits observed = %d, want %d", got, total)
	}
	st := db.WAL().Stats()
	if st.Commits-base.Commits != total {
		t.Fatalf("WAL commits = %d, want %d", st.Commits-base.Commits, total)
	}
	// Every commit was woken by a group sync, and leaders match group syncs.
	if st.GroupedCommits-base.GroupedCommits != total {
		t.Fatalf("GroupedCommits = %d, want %d (every commit covered by a group)",
			st.GroupedCommits-base.GroupedCommits, total)
	}
	if groups := st.GroupCommits - base.GroupCommits; groups != leaders.Load() {
		t.Fatalf("GroupCommits = %d, want one per leader (%d)", groups, leaders.Load())
	}
	if st.MaxGroupSize > maxWaiters {
		t.Fatalf("MaxGroupSize = %d exceeds the waiter cap %d", st.MaxGroupSize, maxWaiters)
	}
	if st.Syncs < st.AutoSyncs+st.GroupCommits {
		t.Fatalf("sync accounting broken: Syncs %d < AutoSyncs %d + GroupCommits %d",
			st.Syncs, st.AutoSyncs, st.GroupCommits)
	}
	if n, _ := db.Count("objects"); n != total {
		t.Fatalf("objects = %d, want %d", n, total)
	}
	if st2 := db.Stats(); st2.GroupCommits != st.GroupCommits || st2.GroupedCommits != st.GroupedCommits ||
		st2.MaxGroupSize != st.MaxGroupSize || st2.WALSyncs != st.Syncs {
		t.Fatalf("DBStats does not mirror WALStats: %+v vs %+v", st2, st)
	}
}

// TestGroupCommitWindowCoalesces checks that the window actually coalesces:
// with a generous window and commits arriving from enough goroutines, at
// least one group must contain more than one transaction, and the WAL must
// record fewer group syncs than commits.
func TestGroupCommitWindowCoalesces(t *testing.T) {
	const writers = 8
	db := MustOpen(testSchema(t), WithGroupCommit(2*time.Millisecond, writers))
	seed, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, seed, 1)
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// A barrier start maximizes the chance all writers land in one window;
	// retry a few rounds to keep the test robust on a loaded host.
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				txn, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				id := int64(round*1000 + g + 1)
				if err := insertObject(t, txn, id, 1, float64(id%30)); err != nil {
					t.Error(err)
					return
				}
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
				}
			}(g)
		}
		close(start)
		wg.Wait()
		if t.Failed() {
			return
		}
		if db.WAL().Stats().MaxGroupSize > 1 {
			return // coalescing observed
		}
	}
	t.Fatalf("no commit group ever exceeded size 1: %+v", db.WAL().Stats())
}
