package relstore

// Fault injection for the durable WAL.  A FaultHook installed with
// WithFaultHook is invoked at each FaultPoint on the durable write, sync,
// checkpoint and replay paths.  It exists for tests and crash harnesses only:
// a hook that panics simulates a process kill at exactly that point (the
// skyload -crash scenario), and a hook that returns an error makes the
// operation fail as a real device error would.  Production opens never install
// a hook, and with no hook every fault point is a nil-check.
//
// Placement discipline (also documented in PERFORMANCE.md): append-path hooks
// fire BEFORE the record enters the device buffer, the sync hook fires BEFORE
// buffered bytes reach the OS, and the checkpoint hooks fire before the
// snapshot file is written and before dead segments are deleted respectively.
// "Before" placement means a panic at the point proves the preceding records
// are recoverable and the current one is not — the property the kill/recover
// tests assert.

// FaultPoint identifies one instrumented point on the durability paths.
type FaultPoint int

const (
	// FPWALAppend fires at the top of every durable record append (insert,
	// insert-group, commit and rollback markers), before the record is
	// buffered.
	FPWALAppend FaultPoint = iota
	// FPWALSync fires at the top of every durable sync, before buffered
	// records are written to the OS and fsynced.
	FPWALSync
	// FPCheckpointSave fires before the checkpoint snapshot file is written.
	FPCheckpointSave
	// FPCheckpointTruncate fires after the checkpoint file is durable but
	// before dead segments are deleted.
	FPCheckpointTruncate
	// FPReplay fires once per record applied during Recover's replay pass.
	FPReplay
)

// String names the fault point.
func (p FaultPoint) String() string {
	switch p {
	case FPWALAppend:
		return "wal-append"
	case FPWALSync:
		return "wal-sync"
	case FPCheckpointSave:
		return "checkpoint-save"
	case FPCheckpointTruncate:
		return "checkpoint-truncate"
	case FPReplay:
		return "replay"
	default:
		return "fault-point-unknown"
	}
}

// FaultHook is invoked at each fault point.  Returning a non-nil error makes
// the operation fail as a device error would; panicking simulates a process
// kill at that point.
type FaultHook func(p FaultPoint) error

// WithFaultHook installs a fault-injection hook on the durable WAL paths.
// Test-only: it has no effect unless WithWALDir is also set.
func WithFaultHook(hook FaultHook) Option {
	return func(o *openConfig) { o.faultHook = hook }
}
