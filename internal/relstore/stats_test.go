package relstore

import (
	"testing"
)

// statsSchema builds a small single-table schema for snapshot tests.
func statsSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(&TableSchema{
		Name: "objects",
		Columns: []Column{
			{Name: "object_id", Type: TypeInt},
			{Name: "htmid", Type: TypeInt},
			{Name: "mag", Type: TypeFloat},
		},
		PrimaryKey: []string{"object_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStatsSnapshotUnifiesAccessors(t *testing.T) {
	db, err := Open(statsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_htmid", []string{"htmid"}, false); err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		if _, err := txn.Insert("objects", []string{"object_id", "htmid", "mag"},
			[]Value{Int(i), Int(1000 + i), Float(14.5)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := db.StatsSnapshot()
	if direct := db.Stats(); snap.DB.RowsInserted != direct.RowsInserted ||
		snap.DB.Commits != direct.Commits ||
		snap.DB.IndexKeyBytes != direct.IndexKeyBytes {
		t.Fatalf("snapshot DB stats diverge from DB.Stats(): %+v vs %+v", snap.DB, direct)
	}
	if snap.WAL != db.WAL().Stats() {
		t.Errorf("snapshot WAL stats %+v != WAL().Stats() %+v", snap.WAL, db.WAL().Stats())
	}
	if snap.Cache != db.Cache().Stats() {
		t.Errorf("snapshot cache stats diverge")
	}
	if snap.TotalRows != 50 {
		t.Errorf("TotalRows = %d, want 50", snap.TotalRows)
	}
	if len(snap.Indexes) != 1 {
		t.Fatalf("got %d index stats, want 1", len(snap.Indexes))
	}
	ix := snap.Indexes[0]
	if ix.Table != "objects" || ix.Name != "ix_htmid" || !ix.Ready || ix.Unique {
		t.Errorf("index stat = %+v", ix)
	}
	if ix.KeyBytes <= 0 || ix.ArenaBytes < ix.KeyBytes {
		t.Errorf("index memory accounting: key=%d arena=%d", ix.KeyBytes, ix.ArenaBytes)
	}
	if snap.DB.IndexKeyBytes != ix.KeyBytes || snap.DB.IndexArenaBytes != ix.ArenaBytes {
		t.Errorf("per-index bytes (%d/%d) disagree with DBStats aggregate (%d/%d)",
			ix.KeyBytes, ix.ArenaBytes, snap.DB.IndexKeyBytes, snap.DB.IndexArenaBytes)
	}
	if snap.Loading {
		t.Error("Loading true outside a load phase")
	}
}

func TestReadyGatedOnDeferredIndexes(t *testing.T) {
	db, err := Open(statsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndexWith("objects", "ix_htmid", []string{"htmid"}, false, IndexDeferred); err != nil {
		t.Fatal(err)
	}
	if !db.Ready() {
		t.Fatal("Ready() false before any load phase")
	}
	if err := db.BeginLoad(); err != nil {
		t.Fatal(err)
	}
	if db.Ready() {
		t.Error("Ready() true during a load phase with a suspended deferred index")
	}
	snap := db.StatsSnapshot()
	if !snap.Loading {
		t.Error("snapshot Loading false during load phase")
	}
	if len(snap.Indexes) != 1 || snap.Indexes[0].Ready {
		t.Errorf("suspended index reported ready: %+v", snap.Indexes)
	}
	if _, err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if !db.Ready() {
		t.Error("Ready() false after Seal")
	}
}
