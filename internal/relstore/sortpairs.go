package relstore

import "math/bits"

// sortInt64Pairs sorts the parallel slices (k, id) ascending by key,
// tie-broken by id.  It is the sort kernel of the batch path's single-column
// integer indexes (the htmid index every production load maintains): raw
// int64 comparisons beat a generic comparator by enough that the per-batch
// sort stops showing up next to the B-tree work it feeds.  Introsort shape:
// quicksort with median-of-three pivots, insertion sort below 12 elements,
// heapsort beyond the depth limit so adversarial inputs stay O(n log n).
func sortInt64Pairs(k, id []int64) {
	if len(k) < 2 {
		return
	}
	quickPairs(k, id, 0, len(k)-1, 2*bits.Len(uint(len(k))))
}

func pairLess(k, id []int64, i, j int) bool {
	return k[i] < k[j] || (k[i] == k[j] && id[i] < id[j])
}

func pairSwap(k, id []int64, i, j int) {
	k[i], k[j] = k[j], k[i]
	id[i], id[j] = id[j], id[i]
}

func quickPairs(k, id []int64, lo, hi, depth int) {
	for hi-lo > 11 {
		if depth == 0 {
			heapPairs(k, id, lo, hi)
			return
		}
		depth--
		p := partitionPairs(k, id, lo, hi)
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if p-lo < hi-p {
			quickPairs(k, id, lo, p-1, depth)
			lo = p + 1
		} else {
			quickPairs(k, id, p+1, hi, depth)
			hi = p - 1
		}
	}
	insertionPairs(k, id, lo, hi)
}

// partitionPairs Hoare-style partitions [lo, hi] around a median-of-three
// pivot moved to lo, returning the pivot's final position.
func partitionPairs(k, id []int64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if pairLess(k, id, mid, lo) {
		pairSwap(k, id, mid, lo)
	}
	if pairLess(k, id, hi, mid) {
		pairSwap(k, id, hi, mid)
		if pairLess(k, id, mid, lo) {
			pairSwap(k, id, mid, lo)
		}
	}
	pairSwap(k, id, lo, mid)
	pk, pid := k[lo], id[lo]
	i, j := lo, hi+1
	for {
		for {
			i++
			if i > hi || !(k[i] < pk || (k[i] == pk && id[i] < pid)) {
				break
			}
		}
		for {
			j--
			if !(pk < k[j] || (pk == k[j] && pid < id[j])) {
				break
			}
		}
		if i >= j {
			break
		}
		pairSwap(k, id, i, j)
	}
	pairSwap(k, id, lo, j)
	return j
}

func insertionPairs(k, id []int64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		kk, ii := k[i], id[i]
		j := i - 1
		for j >= lo && (kk < k[j] || (kk == k[j] && ii < id[j])) {
			k[j+1], id[j+1] = k[j], id[j]
			j--
		}
		k[j+1], id[j+1] = kk, ii
	}
}

func heapPairs(k, id []int64, lo, hi int) {
	n := hi - lo + 1
	for root := n/2 - 1; root >= 0; root-- {
		siftPairs(k, id, lo, root, n)
	}
	for end := n - 1; end > 0; end-- {
		pairSwap(k, id, lo, lo+end)
		siftPairs(k, id, lo, 0, end)
	}
}

func siftPairs(k, id []int64, lo, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && pairLess(k, id, lo+child, lo+child+1) {
			child++
		}
		if !pairLess(k, id, lo+root, lo+child) {
			return
		}
		pairSwap(k, id, lo+root, lo+child)
		root = child
	}
}
