package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// dumpTree renders a B-tree's full contents — key order and per-key row-id
// order — as one string, so "identical iteration order and lookups" reduces
// to string equality.
func dumpTree(tr *BTree) string {
	var b strings.Builder
	tr.AscendRange(nil, nil, func(key []byte, ids []int64) bool {
		vals, err := DecodeOrderedKey(key)
		if err != nil {
			fmt.Fprintf(&b, "<bad key %x: %v>", key, err)
			return false
		}
		b.WriteString(EncodeKey(vals))
		for _, id := range ids {
			fmt.Fprintf(&b, " %d", id)
		}
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// dumpIndexes renders every index of a table, by index name.
func dumpIndexes(t *Table) map[string]string {
	out := make(map[string]string)
	for _, ix := range t.Indexes() {
		out[ix.Name] = dumpTree(ix.tree)
	}
	return out
}

// TestBuildFromSortedInvariants bulk-builds trees of many sizes and degrees
// and checks structural invariants plus exact agreement with an Insert-built
// reference tree.
func TestBuildFromSortedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, degree := range []int{2, 3, 4, 8, 32} {
		for _, n := range []int{0, 1, 2, 3, 5, 7, 15, 63, 64, 100, 1000} {
			keys := make([][]byte, 0, n)
			ids := make([]int64, 0, n)
			// Ascending keys with duplicate runs; ids ascend with position.
			k := int64(0)
			for i := 0; i < n; i++ {
				if i > 0 && r.Intn(3) > 0 {
					k += int64(r.Intn(3)) // 0 = duplicate of previous key
				} else if i > 0 {
					k += 1 + int64(r.Intn(5))
				}
				keys = append(keys, intKey(k))
				ids = append(ids, int64(i))
			}
			built := NewBTree(degree)
			st := built.BuildFromSorted(keys, ids)
			if err := built.CheckInvariants(); err != nil {
				t.Fatalf("degree %d n %d: invariants: %v", degree, n, err)
			}
			ref := NewBTree(degree)
			for i := range keys {
				ref.Insert(keys[i], ids[i])
			}
			if got, want := dumpTree(built), dumpTree(ref); got != want {
				t.Fatalf("degree %d n %d: contents diverge from Insert reference", degree, n)
			}
			if built.Len() != ref.Len() {
				t.Fatalf("degree %d n %d: Len = %d, want %d", degree, n, built.Len(), ref.Len())
			}
			if st.Rows != n || st.Entries != built.Len() || st.Height != built.Height() || st.NodesBuilt != built.NodeCount() {
				t.Fatalf("degree %d n %d: stats %+v inconsistent with tree (len=%d h=%d nodes=%d)",
					degree, n, st, built.Len(), built.Height(), built.NodeCount())
			}
			// Lookups agree for present and absent keys.
			for probe := int64(-1); probe <= k+1; probe++ {
				gotIDs, _ := built.Search(intKey(probe))
				wantIDs, _ := ref.Search(intKey(probe))
				if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
					t.Fatalf("degree %d n %d: Search(%d) = %v, want %v", degree, n, probe, gotIDs, wantIDs)
				}
			}
		}
	}
}

// sealTestIndexes creates the Figure-8-shaped index pair on the objects
// table: a single-integer index and a float-leading composite.
func sealTestIndexes(t *testing.T, db *DB, policy IndexPolicy) {
	t.Helper()
	if _, err := db.CreateIndexWith("objects", "ix_frame", []string{"frame_id"}, false, policy); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndexWith("objects", "ix_magframe", []string{"mag", "frame_id"}, false, policy); err != nil {
		t.Fatal(err)
	}
}

// runSealWorkload drives one scripted load against db: batches of objects
// rows (some via InsertBatch, some row-at-a-time), with the transaction of
// every third step rolled back.  Returns nothing; the workload is fully
// deterministic for a given seed.
func runSealWorkload(t *testing.T, db *DB, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(1); f <= 4; f++ {
		insertFrame(t, txn, f)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	nextID := int64(1)
	for step := 0; step < 12; step++ {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if step%2 == 0 {
			rows := make([][]Value, 0, 40)
			for i := 0; i < 40; i++ {
				rows = append(rows, []Value{Int(nextID), Int(1 + r.Int63n(4)), Float(float64(r.Intn(120)) / 4)})
				nextID++
			}
			if _, err := txn.InsertBatch("objects", []string{"object_id", "frame_id", "mag"}, rows); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			for i := 0; i < 15; i++ {
				if err := insertObject(t, txn, nextID, 1+r.Int63n(4), float64(r.Intn(120))/4); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				nextID++
			}
		}
		if step%3 == 2 {
			if err := txn.Rollback(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSealMatchesImmediate is the tentpole property: a deferred-policy load
// (BeginLoad → ingest → Seal) leaves every index identical — iteration order
// and lookups — to an immediate-policy run of the same workload, including
// workloads with mid-load rollbacks.
func TestSealMatchesImmediate(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		imm := MustOpen(testSchema(t), WithBTreeDegree(3))
		sealTestIndexes(t, imm, IndexImmediate)
		runSealWorkload(t, imm, seed)

		def := MustOpen(testSchema(t), WithBTreeDegree(3), WithIndexPolicy(IndexDeferred))
		sealTestIndexes(t, def, IndexDeferred)
		if err := def.BeginLoad(); err != nil {
			t.Fatal(err)
		}
		for _, ix := range def.Table("objects").Indexes() {
			if ix.Ready() {
				t.Fatalf("index %s ready during load phase", ix.Name)
			}
		}
		runSealWorkload(t, def, seed)
		rep, err := def.Seal()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Indexes) != 2 || !rep.Sealed() {
			t.Fatalf("SealReport covers %d indexes, want 2", len(rep.Indexes))
		}

		immDump := dumpIndexes(imm.Table("objects"))
		defDump := dumpIndexes(def.Table("objects"))
		for name, want := range immDump {
			if got := defDump[name]; got != want {
				t.Fatalf("seed %d: sealed index %s diverges from immediate policy", seed, name)
			}
		}
		for _, ix := range def.Table("objects").Indexes() {
			if !ix.Ready() {
				t.Fatalf("index %s not ready after Seal", ix.Name)
			}
			if err := ix.Tree().CheckInvariants(); err != nil {
				t.Fatalf("seed %d: sealed index %s: %v", seed, ix.Name, err)
			}
		}

		// Normal maintenance must resume after Seal: load more rows into both
		// and require the indexes to stay identical.
		runPostSealInserts(t, imm)
		runPostSealInserts(t, def)
		immDump = dumpIndexes(imm.Table("objects"))
		defDump = dumpIndexes(def.Table("objects"))
		for name, want := range immDump {
			if got := defDump[name]; got != want {
				t.Fatalf("seed %d: index %s diverges after post-seal inserts", seed, name)
			}
		}
	}
}

func runPostSealInserts(t *testing.T, db *DB) {
	t.Helper()
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(90001); i <= 90040; i++ {
		if err := insertObject(t, txn, i, 1+(i%4), float64(i%100)/4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSealAfterRollback is the satellite case in isolation: one batch rolled
// back in the middle of a deferred-policy load must leave Seal's indexes
// byte-identical to an immediate-policy run that applied only the surviving
// rows.
func TestSealAfterRollback(t *testing.T) {
	surviving := [][]Value{}
	rolledBack := [][]Value{}
	for i := int64(1); i <= 100; i++ {
		row := []Value{Int(i), Int(1), Float(float64(i%17) / 2)}
		if i > 40 && i <= 60 {
			rolledBack = append(rolledBack, row)
		} else {
			surviving = append(surviving, row)
		}
	}
	cols := []string{"object_id", "frame_id", "mag"}

	// Both databases run the identical workload — surviving prefix committed,
	// middle batch rolled back, surviving suffix committed — so row ids (which
	// are allocation order, including ids burned by the rollback) line up; the
	// deferred run wraps it in BeginLoad/Seal.
	runWorkload := func(db *DB) {
		txn, _ := db.Begin()
		insertFrame(t, txn, 1)
		if _, err := txn.InsertBatch("objects", cols, surviving[:40]); err != nil {
			t.Fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		bad, _ := db.Begin()
		if _, err := bad.InsertBatch("objects", cols, rolledBack); err != nil {
			t.Fatal(err)
		}
		if err := bad.Rollback(); err != nil {
			t.Fatal(err)
		}
		txn, _ = db.Begin()
		if _, err := txn.InsertBatch("objects", cols, surviving[40:]); err != nil {
			t.Fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	imm := MustOpen(testSchema(t), WithBTreeDegree(2))
	sealTestIndexes(t, imm, IndexImmediate)
	runWorkload(imm)

	def := MustOpen(testSchema(t), WithBTreeDegree(2))
	sealTestIndexes(t, def, IndexDeferred)
	if err := def.BeginLoad(); err != nil {
		t.Fatal(err)
	}
	runWorkload(def)
	if _, err := def.Seal(); err != nil {
		t.Fatal(err)
	}

	immDump := dumpIndexes(imm.Table("objects"))
	defDump := dumpIndexes(def.Table("objects"))
	for name, want := range immDump {
		if got := defDump[name]; got != want {
			t.Fatalf("sealed index %s differs from immediate over surviving rows:\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
	if err := def.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLifecycle covers the state machine: double BeginLoad fails, Seal is
// idempotent, InLoadPhase tracks the window, and a deferred index created
// mid-load starts suspended and is populated by Seal.
func TestLoadLifecycle(t *testing.T) {
	db := MustOpen(testSchema(t))
	if db.InLoadPhase() {
		t.Fatal("load phase open at creation")
	}
	if err := db.BeginLoad(); err != nil {
		t.Fatal(err)
	}
	if err := db.BeginLoad(); !errors.Is(err, ErrLoadPhaseActive) {
		t.Fatalf("second BeginLoad = %v, want ErrLoadPhaseActive", err)
	}
	if !db.InLoadPhase() {
		t.Fatal("InLoadPhase false after BeginLoad")
	}

	// A deferred index created mid-load starts suspended even though rows
	// already exist; Seal backfills it.
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	for i := int64(1); i <= 10; i++ {
		if err := insertObject(t, txn, i, 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndexWith("objects", "ix_mag", []string{"mag"}, false, IndexDeferred)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Ready() {
		t.Fatal("deferred index created mid-load is ready")
	}
	if ix.Tree().Len() != 0 {
		t.Fatal("deferred index created mid-load was backfilled")
	}
	rep, err := db.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsStreamed != 10 || len(rep.Indexes) != 1 {
		t.Fatalf("SealReport = %+v, want 10 rows over 1 index", rep)
	}
	if db.InLoadPhase() {
		t.Fatal("load phase still open after Seal")
	}
	if !ix.Ready() || ix.Tree().Len() != 10 {
		t.Fatalf("sealed index not populated: ready=%v len=%d", ix.Ready(), ix.Tree().Len())
	}

	// Idempotent: sealing again rebuilds nothing.
	rep, err = db.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sealed() {
		t.Fatalf("second Seal rebuilt %d indexes, want 0", len(rep.Indexes))
	}

	// Outside a load phase a deferred-policy index behaves immediately.
	txn, _ = db.Begin()
	if err := insertObject(t, txn, 11, 1, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if ix.Tree().Len() != 11 {
		t.Fatalf("post-seal insert not maintained: len=%d, want 11", ix.Tree().Len())
	}
}

// TestIndexDDLStatsSymmetry pins the satellite fix: CreateIndex and DropIndex
// update DBStats symmetrically on success and on every error path, and both
// return typed errors.
func TestIndexDDLStatsSymmetry(t *testing.T) {
	db := MustOpen(testSchema(t))
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("duplicate create = %v, want ErrIndexExists", err)
	}
	if _, err := db.CreateIndex("nope", "ix", []string{"mag"}, false); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("unknown table create = %v, want ErrNoSuchTable", err)
	}
	if _, err := db.CreateIndex("objects", "ix_bad", []string{"missing"}, false); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("unknown column create = %v, want ErrNoSuchColumn", err)
	}
	if err := db.DropIndex("nope", "ix_mag"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("unknown table drop = %v, want ErrNoSuchTable", err)
	}
	if err := db.DropIndex("objects", "ix_gone"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("unknown index drop = %v, want ErrNoSuchIndex", err)
	}
	if err := db.DropIndex("objects", "ix_mag"); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.IndexesCreated != 1 || st.IndexesDropped != 1 {
		t.Fatalf("IndexesCreated/Dropped = %d/%d, want 1/1", st.IndexesCreated, st.IndexesDropped)
	}
	if st.IndexDDLFailures != 5 {
		t.Fatalf("IndexDDLFailures = %d, want 5", st.IndexDDLFailures)
	}
	// Unknown-table violations are recorded for create AND drop (the old code
	// recorded neither on drop).
	if got := st.ConstraintViolations[KindUnknownTable]; got != 2 {
		t.Fatalf("unknown-table violations = %d, want 2", got)
	}
}
