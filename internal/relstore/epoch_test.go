package relstore

import (
	"sync"
	"testing"
)

// epochSchema is a minimal two-table schema for epoch tests.
func epochSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		&TableSchema{
			Name:       "parents",
			Columns:    []Column{{Name: "id", Type: TypeInt}},
			PrimaryKey: []string{"id"},
		},
		&TableSchema{
			Name:       "children",
			Columns:    []Column{{Name: "id", Type: TypeInt}, {Name: "parent_id", Type: TypeInt}},
			PrimaryKey: []string{"id"},
			ForeignKeys: []ForeignKey{
				{Name: "fk_child_parent", Columns: []string{"parent_id"}, RefTable: "parents", RefColumns: []string{"id"}},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCommitEpochAdvancesPerTouchedTable(t *testing.T) {
	db := MustOpen(epochSchema(t))

	if e := db.TableEpoch("parents"); e != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", e)
	}

	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("parents", []string{"id"}, []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("parents", []string{"id"}, []Value{Int(2)}); err != nil {
		t.Fatal(err)
	}

	// Mid-transaction: rows are visible but uncommitted.
	if _, clean := db.ReadStamp("parents"); clean {
		t.Fatal("table with in-flight rows reported clean")
	}
	if e := db.TableEpoch("parents"); e != 0 {
		t.Fatalf("epoch advanced before commit: %d", e)
	}
	if n := db.Table("parents").UncommittedRows(); n != 2 {
		t.Fatalf("UncommittedRows = %d, want 2", n)
	}

	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if e := db.TableEpoch("parents"); e != 1 {
		t.Fatalf("epoch after commit = %d, want 1", e)
	}
	if e := db.TableEpoch("children"); e != 0 {
		t.Fatalf("untouched table epoch = %d, want 0", e)
	}
	epoch, clean := db.ReadStamp("parents")
	if !clean || epoch != 1 {
		t.Fatalf("ReadStamp after commit = (%d, %v), want (1, true)", epoch, clean)
	}
}

func TestRollbackBumpsEpoch(t *testing.T) {
	db := MustOpen(epochSchema(t))
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("parents", []string{"id"}, []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The row was transiently visible, so any result computed meanwhile must
	// be invalidated: the epoch moves even though the table is back to its
	// original contents.
	if e := db.TableEpoch("parents"); e != 1 {
		t.Fatalf("epoch after rollback = %d, want 1", e)
	}
	if _, clean := db.ReadStamp("parents"); !clean {
		t.Fatal("table dirty after rollback settled")
	}
}

func TestFailedInsertLeavesTableClean(t *testing.T) {
	db := MustOpen(epochSchema(t))
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Orphan child: the foreign-key check fails before storage.
	if _, err := txn.Insert("children", []string{"id", "parent_id"}, []Value{Int(1), Int(99)}); err == nil {
		t.Fatal("orphan insert succeeded")
	}
	if _, clean := db.ReadStamp("children"); !clean {
		t.Fatal("failed insert left the pending count raised")
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if e := db.TableEpoch("children"); e != 0 {
		t.Fatalf("epoch moved for a table that never stored a row: %d", e)
	}
}

func TestSnapshotReadStability(t *testing.T) {
	db := MustOpen(epochSchema(t))
	txn, _ := db.Begin()
	if _, err := txn.Insert("parents", []string{"id"}, []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Quiescent table: stable.
	epoch, stable, err := db.SnapshotRead("parents", func() error { return nil })
	if err != nil || !stable || epoch != 1 {
		t.Fatalf("quiescent SnapshotRead = (%d, %v, %v), want (1, true, nil)", epoch, stable, err)
	}

	// A commit landing inside the read window must mark it unstable.
	_, stable, err = db.SnapshotRead("parents", func() error {
		inner, err := db.Begin()
		if err != nil {
			return err
		}
		if _, err := inner.Insert("parents", []string{"id"}, []Value{Int(2)}); err != nil {
			return err
		}
		_, err = inner.Commit()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("SnapshotRead reported stable across a concurrent commit")
	}

	// An in-flight writer spanning the read window must mark it unstable.
	writer, _ := db.Begin()
	if _, err := writer.Insert("parents", []string{"id"}, []Value{Int(3)}); err != nil {
		t.Fatal(err)
	}
	_, stable, _ = db.SnapshotRead("parents", func() error { return nil })
	if stable {
		t.Fatal("SnapshotRead reported stable while uncommitted rows were visible")
	}
	if _, err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadConcurrent hammers SnapshotRead against concurrent writers:
// whenever a read reports stable, the row count it saw must equal a committed
// transaction boundary (a multiple of the per-transaction batch).
func TestSnapshotReadConcurrent(t *testing.T) {
	db := MustOpen(epochSchema(t), WithMaxConcurrentTxns(16))
	const (
		writers  = 4
		txnsEach = 50
		batch    = 5
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for wr := 0; wr < writers; wr++ {
		wr := wr
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < txnsEach; i++ {
				txn, err := db.BeginBlocking()
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < batch; j++ {
					id := int64(wr*1_000_000 + i*batch + j)
					if _, err := txn.Insert("parents", []string{"id"}, []Value{Int(id)}); err != nil {
						t.Error(err)
						_ = txn.Rollback()
						return
					}
				}
				if i%3 == 2 {
					_ = txn.Rollback()
				} else if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var n int64
			_, stable, err := db.SnapshotRead("parents", func() error {
				c, err := db.Count("parents")
				n = c
				return err
			})
			if err != nil {
				t.Error(err)
				return
			}
			if stable && n%batch != 0 {
				t.Errorf("stable snapshot saw %d rows, not a committed transaction boundary", n)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}
