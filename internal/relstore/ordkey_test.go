package relstore

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sign normalizes a comparison result to -1/0/1.
func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// ordKeyShapes are the column-kind layouts the property test draws keys
// from: the htmid shape, the composite float shape, and mixed layouts with
// every encodable kind.
var ordKeyShapes = [][]ValueKind{
	{KindInt},
	{KindFloat, KindFloat, KindFloat},
	{KindString, KindInt},
	{KindInt, KindString, KindFloat},
	{KindTime, KindBool},
	{KindString},
}

// randOrderedValue draws a value of the given kind (or NULL), biased toward
// boundary cases that stress the sign-flip and escaping rules.
func randOrderedValue(r *rand.Rand, kind ValueKind) Value {
	if r.Intn(8) == 0 {
		return Null
	}
	switch kind {
	case KindInt:
		switch r.Intn(4) {
		case 0:
			return Int(r.Int63() - r.Int63())
		case 1:
			return Int([]int64{math.MinInt64, math.MaxInt64, -1, 0, 1}[r.Intn(5)])
		default:
			return Int(int64(r.Intn(64)) - 32)
		}
	case KindFloat:
		switch r.Intn(4) {
		case 0:
			return Float(r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20)))
		case 1:
			return Float([]float64{math.Inf(-1), math.Inf(1), 0, math.Copysign(0, -1),
				-math.MaxFloat64, math.MaxFloat64, math.SmallestNonzeroFloat64}[r.Intn(7)])
		default:
			return Float(float64(r.Intn(16)-8) / 4)
		}
	case KindString:
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			// Bias toward 0x00/0x01/0xFF, the escaping edge cases.
			b[i] = []byte{0x00, 0x00, 0x01, 0xFF, 'a', 'b', 'z'}[r.Intn(7)]
		}
		return Str(string(b))
	case KindTime:
		return Value{Kind: KindTime, I: r.Int63() - r.Int63()}
	case KindBool:
		return Bool(r.Intn(2) == 1)
	}
	return Null
}

// TestOrderedKeyMatchesCompareKeys is the satellite property: for random
// same-shape keys, bytes.Compare over AppendOrderedKey encodings orders
// exactly like CompareKeys.
func TestOrderedKeyMatchesCompareKeys(t *testing.T) {
	r := rand.New(rand.NewSource(20050711))
	prop := func() bool {
		shape := ordKeyShapes[r.Intn(len(ordKeyShapes))]
		a := make([]Value, len(shape))
		b := make([]Value, len(shape))
		for i, k := range shape {
			a[i] = randOrderedValue(r, k)
			b[i] = randOrderedValue(r, k)
		}
		if r.Intn(8) == 0 {
			copy(b, a) // force equal keys often enough to test the 0 case
		}
		ea := AppendOrderedKey(nil, a)
		eb := AppendOrderedKey(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(CompareKeys(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedKeyPrefix checks the composite-key prefix rule: a key that is a
// strict prefix of another sorts first under both comparators.
func TestOrderedKeyPrefix(t *testing.T) {
	long := []Value{Str("abc"), Int(7), Float(1.5)}
	for cut := 0; cut < len(long); cut++ {
		short := long[:cut]
		if got := sign(bytes.Compare(EncodeOrderedKey(short), EncodeOrderedKey(long))); got != -1 {
			t.Fatalf("prefix of length %d: bytes.Compare sign = %d, want -1", cut, got)
		}
		if got := sign(CompareKeys(short, long)); got != -1 {
			t.Fatalf("prefix of length %d: CompareKeys sign = %d, want -1", cut, got)
		}
	}
}

// TestOrderedKeySortedSequences encodes hand-picked ascending sequences per
// kind and checks both that the encodings ascend and that sorting encodings
// recovers CompareKeys order.
func TestOrderedKeySortedSequences(t *testing.T) {
	sequences := [][]Value{
		{Null, Int(math.MinInt64), Int(-1000), Int(-1), Int(0), Int(1), Int(42), Int(math.MaxInt64)},
		{Null, Float(math.Inf(-1)), Float(-1e300), Float(-1.5), Float(-math.SmallestNonzeroFloat64),
			Float(0), Float(math.SmallestNonzeroFloat64), Float(2.5), Float(1e300), Float(math.Inf(1))},
		{Null, Str(""), Str("\x00"), Str("\x00\x00"), Str("\x01"), Str("a"), Str("a\x00"), Str("a\x00b"), Str("ab"), Str("b")},
		{Null, Value{Kind: KindTime, I: -5}, Value{Kind: KindTime, I: 0}, Value{Kind: KindTime, I: 5}},
		{Null, Bool(false), Bool(true)},
	}
	for si, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			a, b := []Value{seq[i-1]}, []Value{seq[i]}
			if c := CompareKeys(a, b); c >= 0 {
				t.Fatalf("sequence %d not ascending under CompareKeys at %d", si, i)
			}
			if c := bytes.Compare(EncodeOrderedKey(a), EncodeOrderedKey(b)); c >= 0 {
				t.Fatalf("sequence %d not ascending under encoded compare at %d: %v vs %v",
					si, i, seq[i-1], seq[i])
			}
		}
	}
}

// TestOrderedKeySortAgreement shuffles a key set, sorts it once with
// CompareKeys and once bytewise, and requires identical order.
func TestOrderedKeySortAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	keys := make([][]Value, 300)
	shape := []ValueKind{KindFloat, KindInt, KindString}
	for i := range keys {
		k := make([]Value, len(shape))
		for j, kind := range shape {
			k[j] = randOrderedValue(r, kind)
		}
		keys[i] = k
	}
	byCompare := append([][]Value{}, keys...)
	sort.SliceStable(byCompare, func(i, j int) bool { return CompareKeys(byCompare[i], byCompare[j]) < 0 })
	byBytes := append([][]Value{}, keys...)
	sort.SliceStable(byBytes, func(i, j int) bool {
		return bytes.Compare(EncodeOrderedKey(byBytes[i]), EncodeOrderedKey(byBytes[j])) < 0
	})
	for i := range byCompare {
		if CompareKeys(byCompare[i], byBytes[i]) != 0 {
			t.Fatalf("order diverges at position %d: %v vs %v", i, byCompare[i], byBytes[i])
		}
	}
}

// TestOrderedKeyNaNPanics pins the NaN stance: encoding must refuse rather
// than silently break the total order.
func TestOrderedKeyNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic encoding NaN")
		}
	}()
	AppendOrderedKey(nil, []Value{Float(math.NaN())})
}

// TestOrderedKeyRoundTrip is the decode property: for 20k random keys drawn
// from every shape, DecodeOrderedKey(AppendOrderedKey(k)) recovers k — same
// kinds positionally, CompareKeys-equal values, and a byte-identical
// re-encode.  (-0.0 inputs round-trip to +0.0, which CompareKeys orders
// equal; that is the only value the trip canonicalizes.)
func TestOrderedKeyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20050712))
	prop := func() bool {
		shape := ordKeyShapes[r.Intn(len(ordKeyShapes))]
		k := make([]Value, len(shape))
		for i, kind := range shape {
			k[i] = randOrderedValue(r, kind)
		}
		enc := AppendOrderedKey(nil, k)
		dec, err := DecodeOrderedKey(enc)
		if err != nil || len(dec) != len(k) {
			return false
		}
		for i := range dec {
			if dec[i].Kind != k[i].Kind {
				return false
			}
		}
		if CompareKeys(dec, k) != 0 {
			return false
		}
		return bytes.Equal(AppendOrderedKey(nil, dec), enc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeOrderedKeyRejects pins the canonical-decode stance: truncations,
// unknown tags, bad escapes, NaN bits and the -0.0 pattern the encoder never
// emits must all fail rather than decode to something that re-encodes
// differently.
func TestDecodeOrderedKeyRejects(t *testing.T) {
	valid := EncodeOrderedKey([]Value{Int(7), Str("a\x00b"), Float(-1.5), Bool(true)})
	for cut := 1; cut < len(valid); cut++ {
		if vals, err := DecodeOrderedKey(valid[:cut]); err == nil {
			if re := AppendOrderedKey(nil, vals); bytes.Equal(re, valid[:cut]) {
				continue // the prefix happened to end on a value boundary
			}
			t.Fatalf("truncation at %d decoded non-canonically", cut)
		}
	}
	negZero := appendOrderedUint64([]byte{ordTagFloat}, ^math.Float64bits(math.Copysign(0, -1)))
	nan := appendOrderedUint64([]byte{ordTagFloat}, math.Float64bits(math.NaN())|1<<63)
	bad := [][]byte{
		{0x06},                  // unknown tag
		{ordTagBool, 2},         // bool payload out of range
		{ordTagString, 'a'},     // unterminated string
		{ordTagString, 0x00, 7}, // bad escape
		{ordTagInt, 1, 2, 3},    // short integer
		negZero,                 // -0.0: encoder canonicalizes, decoder rejects
		nan,                     // NaN bits survive the positive fixup
	}
	for i, enc := range bad {
		if _, err := DecodeOrderedKey(enc); err == nil {
			t.Errorf("case %d (%x): decode accepted malformed key", i, enc)
		}
	}
}
