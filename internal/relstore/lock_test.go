package relstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLockManagerEdgeCases drives the admission and release edge cases
// table-style: double admission, release of unknown transactions, counter
// accounting when the limit fills, and unlimited managers.
func TestLockManagerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"double admit", func(t *testing.T) {
			m := NewLockManager(4)
			if err := m.Admit(1); err != nil {
				t.Fatalf("first Admit: %v", err)
			}
			if err := m.Admit(1); err == nil {
				t.Fatal("second Admit of same id should fail")
			}
			if got := m.ActiveTxns(); got != 1 {
				t.Fatalf("ActiveTxns = %d, want 1", got)
			}
		}},
		{"double admit via AdmitWait", func(t *testing.T) {
			m := NewLockManager(4)
			if err := m.AdmitWait(1); err != nil {
				t.Fatalf("first AdmitWait: %v", err)
			}
			if err := m.AdmitWait(1); err == nil {
				t.Fatal("AdmitWait of already-admitted id should fail, not block")
			}
		}},
		{"release without admit", func(t *testing.T) {
			m := NewLockManager(2)
			m.ReleaseAll(99) // must be a harmless no-op
			if got := m.ActiveTxns(); got != 0 {
				t.Fatalf("ActiveTxns = %d, want 0", got)
			}
			if err := m.Admit(1); err != nil {
				t.Fatalf("Admit after stray release: %v", err)
			}
		}},
		{"lock rows without admit", func(t *testing.T) {
			m := NewLockManager(0)
			if _, err := m.LockRows(7, "objects", 1); err == nil {
				t.Fatal("LockRows for unadmitted txn should fail")
			}
		}},
		{"admission-full counter", func(t *testing.T) {
			m := NewLockManager(2)
			_ = m.Admit(1)
			_ = m.Admit(2)
			for i := int64(3); i <= 5; i++ {
				if err := m.Admit(i); !errors.Is(err, ErrTooManyTransactions) {
					t.Fatalf("Admit(%d) = %v, want ErrTooManyTransactions", i, err)
				}
			}
			if got := m.Stats().AdmissionFull; got != 3 {
				t.Fatalf("AdmissionFull = %d, want 3", got)
			}
			m.ReleaseAll(1)
			if err := m.Admit(3); err != nil {
				t.Fatalf("Admit after release: %v", err)
			}
			if got := m.Stats().AdmissionFull; got != 3 {
				t.Fatalf("AdmissionFull after successful admit = %d, want 3", got)
			}
		}},
		{"conflict counter", func(t *testing.T) {
			m := NewLockManager(0)
			_ = m.Admit(1)
			_ = m.Admit(2)
			if other, _ := m.LockRows(1, "objects", 5); other != 0 {
				t.Fatalf("first writer sees %d others, want 0", other)
			}
			if other, _ := m.LockRows(2, "objects", 1); other != 1 {
				t.Fatalf("second writer sees %d others, want 1", other)
			}
			// More locks by an existing writer do not re-count the writer.
			if other, _ := m.LockRows(2, "objects", 1); other != 1 {
				t.Fatalf("repeat lock sees %d others, want 1", other)
			}
			if got := m.Stats().Conflicts; got != 2 {
				t.Fatalf("Conflicts = %d, want 2", got)
			}
			m.ReleaseAll(1)
			if got := m.TableWriters("objects"); got != 1 {
				t.Fatalf("TableWriters after release = %d, want 1", got)
			}
		}},
		{"unlimited manager never fills", func(t *testing.T) {
			m := NewLockManager(0)
			for i := int64(1); i <= 100; i++ {
				if err := m.Admit(i); err != nil {
					t.Fatalf("Admit(%d): %v", i, err)
				}
			}
			if got := m.Stats().AdmissionFull; got != 0 {
				t.Fatalf("AdmissionFull = %d, want 0", got)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestLockManagerAdmitWaitBlocks verifies the blocking-admit semantics under
// concurrent callers: the active set never exceeds the limit, every caller
// is eventually admitted, and blocked admissions are counted.
func TestLockManagerAdmitWaitBlocks(t *testing.T) {
	const limit = 3
	const callers = 24
	m := NewLockManager(limit)
	var cur, max, over atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= callers; i++ {
		id := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.AdmitWait(id); err != nil {
				t.Errorf("AdmitWait(%d): %v", id, err)
				return
			}
			n := cur.Add(1)
			if n > limit {
				over.Add(1)
			}
			for {
				v := max.Load()
				if n <= v || max.CompareAndSwap(v, n) {
					break
				}
			}
			if _, err := m.LockRows(id, "objects", 1); err != nil {
				t.Errorf("LockRows(%d): %v", id, err)
			}
			cur.Add(-1)
			m.ReleaseAll(id)
		}()
	}
	wg.Wait()
	if over.Load() > 0 {
		t.Fatalf("admission limit exceeded %d times", over.Load())
	}
	st := m.Stats()
	if st.ActiveTxns != 0 {
		t.Fatalf("ActiveTxns after drain = %d, want 0", st.ActiveTxns)
	}
	if st.AdmissionFull < callers-limit {
		// At least callers-limit goroutines must have found the manager full
		// (scheduling may make it more, never fewer is not guaranteed either,
		// but with 24 callers racing for 3 slots some blocking is certain).
		t.Logf("AdmissionFull = %d (informational)", st.AdmissionFull)
	}
}

// TestTxnIDsNeverReused pins the satellite fix for transaction-id reuse: an
// id consumed by a failed admission must never be handed out again.
func TestTxnIDsNeverReused(t *testing.T) {
	db, err := Open(testSchema(t), WithMaxConcurrentTxns(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// This admission fails; its id must be burned, not recycled.
	if _, err := db.Begin(); !errors.Is(err, ErrTooManyTransactions) {
		t.Fatalf("second Begin = %v, want ErrTooManyTransactions", err)
	}
	if _, err := first.Commit(); err != nil {
		t.Fatal(err)
	}
	second, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if second.ID() <= first.ID()+1 {
		t.Fatalf("txn id %d reuses or precedes the failed admission's id (first was %d)",
			second.ID(), first.ID())
	}
}

// TestTxnIDsUniqueConcurrent allocates transactions from many goroutines and
// checks ids are globally unique even with admission failures interleaved.
func TestTxnIDsUniqueConcurrent(t *testing.T) {
	db, err := Open(testSchema(t), WithMaxConcurrentTxns(4))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int64]string)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				txn, err := db.Begin()
				if err != nil {
					continue // admission full: id burned, never visible
				}
				mu.Lock()
				who := fmt.Sprintf("g%d/%d", g, i)
				if prev, dup := seen[txn.ID()]; dup {
					t.Errorf("txn id %d handed to both %s and %s", txn.ID(), prev, who)
				}
				seen[txn.ID()] = who
				mu.Unlock()
				if err := txn.Rollback(); err != nil {
					t.Errorf("rollback: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}
