package relstore

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInsertBatchChunkedMatchesMonolithic is the chunked-lock property test:
// for a sweep of chunk sizes (including 1, sizes that do and do not divide
// the batch, and sizes larger than any batch) the chunked apply path must
// leave table state, epochs, pending counters and index iteration
// byte-identical to the monolithic single-hold path — through successful
// batches, mid-batch failures, commits and mid-batch rollbacks.
func TestInsertBatchChunkedMatchesMonolithic(t *testing.T) {
	cols := []string{"object_id", "frame_id", "mag"}
	for _, chunk := range []int{1, 2, 3, 7, 16, 1000} {
		rng := rand.New(rand.NewSource(int64(4000 + chunk)))
		for trial := 0; trial < 12; trial++ {
			mono := batchPropertyDB(t)
			chk := batchPropertyDB(t, WithBatchLockChunk(chunk))
			base := int64(trial * 1000)
			nextMono, nextChk := base, base

			monoTxn, err := mono.Begin()
			if err != nil {
				t.Fatal(err)
			}
			chkTxn, err := chk.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for bi, batches := 0, 1+rng.Intn(4); bi < batches; bi++ {
				size := 1 + rng.Intn(50)
				seed := rng.Int63()
				rowsM := randomObjectBatch(rand.New(rand.NewSource(seed)), base, &nextMono, size)
				rowsC := randomObjectBatch(rand.New(rand.NewSource(seed)), base, &nextChk, size)

				mr, mErr := monoTxn.InsertBatch("objects", cols, rowsM)
				cr, cErr := chkTxn.InsertBatch("objects", cols, rowsC)
				if mr.RowsInserted != cr.RowsInserted || mr.FailedIndex != cr.FailedIndex || (mErr == nil) != (cErr == nil) {
					t.Fatalf("chunk %d trial %d batch %d: monolithic (ins=%d idx=%d err=%v) vs chunked (ins=%d idx=%d err=%v)",
						chunk, trial, bi, mr.RowsInserted, mr.FailedIndex, mErr, cr.RowsInserted, cr.FailedIndex, cErr)
				}
				if ms, cs := engineState(t, mono), engineState(t, chk); ms != cs {
					t.Fatalf("chunk %d trial %d batch %d: mid-txn state diverges:\n--- monolithic ---\n%s--- chunked ---\n%s",
						chunk, trial, bi, ms, cs)
				}
			}

			// Mid-batch rollback is the interesting finish: chunked mode
			// recorded one undo range per chunk and must unwind them all.
			if trial%2 == 0 {
				if err := monoTxn.Rollback(); err != nil {
					t.Fatal(err)
				}
				if err := chkTxn.Rollback(); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := monoTxn.Commit(); err != nil {
					t.Fatal(err)
				}
				if _, err := chkTxn.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if ms, cs := engineState(t, mono), engineState(t, chk); ms != cs {
				t.Fatalf("chunk %d trial %d: settled state diverges:\n--- monolithic ---\n%s--- chunked ---\n%s",
					chunk, trial, ms, cs)
			}
			if ms, cs := statsFingerprint(mono), statsFingerprint(chk); ms != cs {
				t.Fatalf("chunk %d trial %d: stats diverge:\n--- monolithic ---\n%s--- chunked ---\n%s",
					chunk, trial, ms, cs)
			}
			if err := chk.VerifyPrimaryKeys(); err != nil {
				t.Fatalf("chunk %d trial %d: %v", chunk, trial, err)
			}
		}
	}
}

// TestInsertBatchChunkBoundaryVisibility race-stresses the reader-facing
// contract of chunked locking: the table write lock covers each chunk, so a
// concurrent reader may observe the table between chunks but never inside
// one — every observed row count is a whole multiple of the chunk size.  And
// SnapshotRead keeps its stability contract: a read it reports stable saw no
// uncommitted rows, i.e. only whole committed batches.
func TestInsertBatchChunkBoundaryVisibility(t *testing.T) {
	const (
		chunk     = 20
		batchSize = 60 // chunk divides batchSize: three holds per batch
		batches   = 30
		readers   = 4
	)
	db := batchPropertyDB(t, WithBatchLockChunk(chunk))
	cols := []string{"object_id", "frame_id", "mag"}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var n int64
				epochBefore := db.TableEpoch("objects")
				_, stable, err := db.SnapshotRead("objects", func() error {
					n = 0
					return db.ScanRef("objects", func(Row) bool {
						n++
						return true
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
				if n%chunk != 0 {
					t.Errorf("reader saw %d rows: not a whole-chunk multiple of %d", n, chunk)
					return
				}
				if stable {
					// A stable snapshot saw no uncommitted rows; with one
					// writer committing whole batches, the count at the
					// observed epoch is a whole number of batches.  Guard with
					// the pre-read epoch: if a commit landed between the scan
					// and the epoch re-check, stability would have been false.
					if n%batchSize != 0 && db.TableEpoch("objects") == epochBefore {
						t.Errorf("stable snapshot saw %d rows: not a whole-batch multiple of %d", n, batchSize)
						return
					}
				}
			}
		}()
	}

	for b := 0; b < batches; b++ {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, batchSize)
		for i := range rows {
			id := int64(b*batchSize + i + 1)
			rows[i] = []Value{Int(id), Int(id % 8), Float(float64(id % 30))}
		}
		br, err := txn.InsertBatch("objects", cols, rows)
		if err != nil || br.RowsInserted != batchSize {
			t.Fatalf("batch %d: %+v err=%v", b, br, err)
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	if n, _ := db.Count("objects"); n != batches*batchSize {
		t.Fatalf("final count = %d, want %d", n, batches*batchSize)
	}
}
