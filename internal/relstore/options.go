package relstore

import (
	"fmt"
	"time"
)

// IndexPolicy selects when a secondary index is maintained relative to a bulk
// load.  It is the engine-level expression of the paper's biggest loading
// lever (§4.5.1, Figure 8): dropping secondary indexes during loading and
// rebuilding them afterwards beats maintaining them row by row, because a
// bulk rebuild streams presorted keys into freshly packed B-tree leaves
// instead of paying a root-to-leaf descent per row.
type IndexPolicy int

const (
	// IndexImmediate maintains the index on every insert (the default, and
	// the only behaviour the engine had before load policies existed).
	IndexImmediate IndexPolicy = iota
	// IndexDeferred suspends maintenance of the index between DB.BeginLoad
	// and DB.Seal: inserts during the load phase skip it entirely, and Seal
	// rebuilds it from the surviving heap rows in one presorted bulk pass
	// (BTree.BuildFromSorted).  Outside a load phase a deferred-policy index
	// behaves exactly like an immediate one.
	IndexDeferred
)

// String names the policy.
func (p IndexPolicy) String() string {
	switch p {
	case IndexImmediate:
		return "immediate"
	case IndexDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("IndexPolicy(%d)", int(p))
	}
}

// ParseIndexPolicy parses the CLI/JSON spelling of an index policy.
func ParseIndexPolicy(s string) (IndexPolicy, error) {
	switch s {
	case "", "immediate", "eager":
		return IndexImmediate, nil
	case "deferred", "bulk", "rebuild":
		return IndexDeferred, nil
	default:
		return IndexImmediate, fmt.Errorf("relstore: unknown index policy %q (want immediate|deferred)", s)
	}
}

// Option configures a database opened with Open.  Options subsume the fields
// of the positional Config struct and add the load-lifecycle policies that
// have no Config equivalent; new engine knobs are added here, not to Config.
type Option func(*openConfig)

// openConfig is the resolved option set.
type openConfig struct {
	cfg         Config
	indexPolicy IndexPolicy
	// faultHook is the test-only fault-injection hook (see WithFaultHook).
	faultHook FaultHook
	// recovering marks an open performed by Recover: the durable device is not
	// created up front — Recover replays existing state first and resumes the
	// device itself.
	recovering bool
}

// WithConfig adopts a legacy Config wholesale.  It exists so NewDB callers
// can migrate mechanically; new code should prefer the individual options.
func WithConfig(cfg Config) Option {
	return func(o *openConfig) { o.cfg = cfg }
}

// WithCache sets the block buffer cache size in pages (§4.5.5: a smaller
// cache loads faster because the database writer scans the whole cache on
// each flush).
func WithCache(pages int) Option {
	return func(o *openConfig) { o.cfg.CachePages = pages }
}

// WithMaxConcurrentTxns sets the concurrent-transaction limit; 0 means
// unlimited.  Exceeding it produces lock waits at high parallelism (§5.4).
func WithMaxConcurrentTxns(n int) Option {
	return func(o *openConfig) { o.cfg.MaxConcurrentTxns = n }
}

// WithBTreeDegree sets the minimum degree of secondary-index B-trees.
func WithBTreeDegree(degree int) Option {
	return func(o *openConfig) { o.cfg.BTreeDegree = degree }
}

// WithDirtyFlushPages sets the number of newly dirtied pages after which the
// database writer runs (§4.5.5); 0 uses the default of 32.
func WithDirtyFlushPages(n int) Option {
	return func(o *openConfig) { o.cfg.DirtyFlushPages = n }
}

// WithWALSync sets the redo-log auto-sync threshold in bytes: once the
// unsynced tail of the log exceeds it, the log syncs without waiting for a
// commit, bounding the redo volume a crash could lose and the volume a
// commit must force (the §4.5.2 commit-frequency trade-off, decoupled from
// transaction boundaries).  0 (the default) syncs only at commit, the
// engine's historical behaviour.
func WithWALSync(bytes int64) Option {
	return func(o *openConfig) { o.cfg.WALSyncBytes = bytes }
}

// WithGroupCommit enables group commit (§4.5.2): committing transactions
// enqueue on a commit queue, one leader performs a single WAL sync for the
// whole group, and the waiters ride that sync instead of forcing the log
// themselves.  window is how long a leader gathers waiters before syncing;
// maxWaiters caps the group size (a full group syncs early; <= 0 means
// DefaultGroupCommitWaiters).  window <= 0 leaves group commit off.
//
// The queue blocks committers on real timers and channels, so it is a
// wall-clock-engine feature; DES-mode cost accounting charges the same
// coalesced sync cost through Txn.CommitUnsynced + WAL.SyncGroup instead
// (sqlbatch.Server does this automatically when it sees group commit on a
// deterministic scheduler).
func WithGroupCommit(window time.Duration, maxWaiters int) Option {
	return func(o *openConfig) {
		o.cfg.GroupCommitWindow = window
		o.cfg.GroupCommitMaxWaiters = maxWaiters
	}
}

// WithBatchLockChunk makes InsertBatch reader-friendly: the batch is applied
// in sub-chunks of n rows, releasing and re-acquiring the table write lock
// between chunks with a scheduling yield, so concurrent readers wait for at
// most one chunk instead of a whole ~1000-row batch.  Batch-level semantics
// (first-failure FailedIndex, epoch movement, WAL group record, rollback) are
// unchanged; readers observe only whole-chunk boundaries.  n <= 0 (the
// default) applies the batch under one lock hold.
func WithBatchLockChunk(n int) Option {
	return func(o *openConfig) { o.cfg.BatchLockChunk = n }
}

// WithWALSyncDelay models the redo-device fsync latency in wall-clock mode:
// every commit-driven log sync holds the single log device for d.  It exists
// so the §4.5.2 commit-frequency trade-off is measurable in real time on an
// engine whose log is otherwise free in-memory bookkeeping — with a real
// per-sync latency, group commit's one-force-per-window shows up as commit
// throughput.  0 (the default) keeps syncs free; DES runs should leave it 0
// (virtual sync cost comes from the cost model, not real sleeps).
func WithWALSyncDelay(d time.Duration) Option {
	return func(o *openConfig) { o.cfg.WALSyncDelay = d }
}

// WithIndexPolicy sets the default maintenance policy for indexes created by
// CreateIndex.  Individual indexes can override it via CreateIndexWith.
func WithIndexPolicy(p IndexPolicy) Option {
	return func(o *openConfig) { o.indexPolicy = p }
}

// WithWALDir makes the WAL durable: append paths write self-describing,
// CRC-checksummed records into segmented log files under path, commit syncs
// map to real fsyncs, and relstore.Recover can replay the directory into a
// fresh database after a crash.  Unset (the default), the WAL remains
// in-memory cost accounting only and nothing touches the filesystem — every
// DES figure and benchmark is byte-identical with and without this feature
// compiled in.
//
// Open refuses a directory that already holds log state; reopen existing
// state with Recover.
func WithWALDir(path string) Option {
	return func(o *openConfig) { o.cfg.WALDir = path }
}

// WithCheckpointEvery enables automatic checkpoints: after roughly every
// `bytes` of durable log appended, a commit triggers DB.Checkpoint, bounding
// replay time by the checkpoint interval rather than the full history.  0
// (the default) disables automatic checkpoints; explicit DB.Checkpoint calls
// still work.  Requires WithWALDir.
func WithCheckpointEvery(bytes int64) Option {
	return func(o *openConfig) { o.cfg.CheckpointEveryBytes = bytes }
}

// WithWALSegmentBytes sets the durable log's segment size; a segment that
// would exceed it rotates (flush, fsync, close) and appends continue in a
// fresh file.  0 (the default) uses 4 MiB.  Requires WithWALDir.
func WithWALSegmentBytes(n int64) Option {
	return func(o *openConfig) { o.cfg.WALSegmentBytes = n }
}

// Open creates a database for the given schema, configured by functional
// options.  Zero-valued knobs fall back to DefaultConfig values.  Open is the
// engine's constructor; NewDB remains as a deprecated positional wrapper.
func Open(schema *Schema, opts ...Option) (*DB, error) {
	oc := openConfig{indexPolicy: IndexImmediate}
	for _, opt := range opts {
		opt(&oc)
	}
	return open(schema, oc)
}

// MustOpen is Open that panics on error.
func MustOpen(schema *Schema, opts ...Option) *DB {
	db, err := Open(schema, opts...)
	if err != nil {
		panic(err)
	}
	return db
}
