package relstore

import (
	"bytes"
	"math"
	"testing"
)

// FuzzOrderedKeyOrder fuzzes the two properties the encoded-key B-tree rests
// on: order preservation (bytes.Compare over encodings agrees with
// CompareKeys for every comparable key pair) and decode-safety (the decoder
// never panics on arbitrary bytes, and anything it accepts re-encodes
// byte-identically — including a valid encoding followed by an arbitrary
// suffix, which must either extend canonically or be rejected).
func FuzzOrderedKeyOrder(f *testing.F) {
	f.Add(int64(0), int64(1), false, []byte{})
	f.Add(int64(-1), int64(math.MaxInt64), true, []byte{ordTagNull})
	f.Add(int64(math.MinInt64), int64(0), false, []byte{ordTagString, 'a', 0x00, 0x00})
	f.Add(int64(42), int64(42), true, []byte{ordTagFloat, 0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Add(int64(7), int64(-7), false, []byte{0x00, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, x, y int64, null bool, raw []byte) {
		// Order preservation on same-shape keys derived from the fuzz inputs.
		// float64(x)/float64(y) cannot be NaN, so the encoder accepts them;
		// raw doubles as a string column exercising the escape rules.
		s := string(raw)
		a := []Value{Int(x), Str(s), Float(float64(y) / 3)}
		b := []Value{Int(y), Str(s), Float(float64(x) / 3)}
		if null {
			a[0], b[1] = Null, Null
		}
		ea := AppendOrderedKey(nil, a)
		eb := AppendOrderedKey(nil, b)
		got, want := bytes.Compare(ea, eb), CompareKeys(a, b)
		if sign(got) != sign(want) {
			t.Fatalf("order diverges: bytes.Compare=%d CompareKeys=%d for %v vs %v", got, want, a, b)
		}

		// Decode-safety on arbitrary bytes: no panic, and success implies the
		// input was a canonical encoding.
		if vals, err := DecodeOrderedKey(raw); err == nil {
			if re := AppendOrderedKey(nil, vals); !bytes.Equal(re, raw) {
				t.Fatalf("non-canonical decode: %x -> %v -> %x", raw, vals, re)
			}
		}

		// Decode-safety on a valid encoding with an arbitrary byte suffix:
		// the prefix must decode back out, and the suffix either continues
		// canonically or fails the whole key.
		cat := append(append([]byte{}, ea...), raw...)
		if vals, err := DecodeOrderedKey(cat); err == nil {
			if re := AppendOrderedKey(nil, vals); !bytes.Equal(re, cat) {
				t.Fatalf("non-canonical decode of suffixed key: %x -> %v -> %x", cat, vals, re)
			}
			if len(vals) < len(a) || CompareKeys(vals[:len(a)], a) != 0 {
				t.Fatalf("suffixed decode lost the valid prefix: %x -> %v, want prefix %v", cat, vals, a)
			}
		}
	})
}
