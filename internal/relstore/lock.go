package relstore

import (
	"fmt"
	"sync"
)

// LockManager tracks transaction admission and per-table insert interest.
// Its job is to enforce the concurrent-transaction limit and to expose the
// information (how many other transactions are inserting into the same
// tables) that the sqlbatch contention model uses to reproduce the lock waits
// and stalls the paper observed at 6-8 parallel loaders (§5.4).
//
// The manager is safe for concurrent callers: all state is guarded by one
// mutex, and AdmitWait provides real blocking admission for the wall-clock
// execution mode (under the DES kernel's single-runner discipline the mutex
// is uncontended and Admit never needs to block — the sqlbatch server queues
// on the transaction-slot resource instead).
type LockManager struct {
	mu       sync.Mutex
	slotFree *sync.Cond

	maxConcurrentTxns int
	active            map[int64]*txnLocks
	tableWriters      map[string]int

	conflicts     int64
	admissionFull int64
}

type txnLocks struct {
	tables map[string]int // table -> row locks held
}

// NewLockManager creates a lock manager that admits at most maxConcurrentTxns
// simultaneously active transactions (0 or negative means unlimited).
func NewLockManager(maxConcurrentTxns int) *LockManager {
	m := &LockManager{
		maxConcurrentTxns: maxConcurrentTxns,
		active:            make(map[int64]*txnLocks),
		tableWriters:      make(map[string]int),
	}
	m.slotFree = sync.NewCond(&m.mu)
	return m
}

// MaxConcurrentTxns returns the admission limit (0 = unlimited).
func (m *LockManager) MaxConcurrentTxns() int { return m.maxConcurrentTxns }

// ActiveTxns returns the number of currently admitted transactions.
func (m *LockManager) ActiveTxns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// full reports whether the admission limit is reached; m.mu must be held.
func (m *LockManager) full() bool {
	return m.maxConcurrentTxns > 0 && len(m.active) >= m.maxConcurrentTxns
}

// admitLocked registers txnID; m.mu must be held and the manager not full.
func (m *LockManager) admitLocked(txnID int64) error {
	if _, ok := m.active[txnID]; ok {
		return fmt.Errorf("relstore: transaction %d already admitted", txnID)
	}
	m.active[txnID] = &txnLocks{tables: make(map[string]int)}
	return nil
}

// Admit registers a transaction.  It returns ErrTooManyTransactions when the
// concurrent transaction limit is reached; callers (the sqlbatch server)
// translate that into a queued wait.
func (m *LockManager) Admit(txnID int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.full() {
		m.admissionFull++
		return ErrTooManyTransactions
	}
	return m.admitLocked(txnID)
}

// AdmitWait registers a transaction, blocking the calling goroutine while the
// concurrent-transaction limit is reached.  Each blocked call counts once
// toward the admission-full counter.  It is the admission path of the
// wall-clock execution mode; DES processes must use Admit.
func (m *LockManager) AdmitWait(txnID int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.full() {
		m.admissionFull++
		for m.full() {
			m.slotFree.Wait()
		}
	}
	return m.admitLocked(txnID)
}

// LockRows records that txnID holds n row locks on table and returns the
// number of *other* active transactions currently writing the same table —
// the contention signal used by the simulation's lock-wait model.
func (m *LockManager) LockRows(txnID int64, table string, n int) (otherWriters int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl, ok := m.active[txnID]
	if !ok {
		return 0, fmt.Errorf("relstore: transaction %d not admitted", txnID)
	}
	if tl.tables[table] == 0 {
		m.tableWriters[table]++
	}
	tl.tables[table] += n
	other := m.tableWriters[table] - 1
	if other > 0 {
		m.conflicts++
	}
	return other, nil
}

// TableWriters returns how many active transactions hold locks on table.
func (m *LockManager) TableWriters(table string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tableWriters[table]
}

// ReleaseAll releases every lock held by txnID, removes it from the active
// set and wakes goroutines blocked in AdmitWait.  Releasing an unknown
// transaction is a no-op.
func (m *LockManager) ReleaseAll(txnID int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl, ok := m.active[txnID]
	if !ok {
		return
	}
	for table := range tl.tables {
		m.tableWriters[table]--
		if m.tableWriters[table] <= 0 {
			delete(m.tableWriters, table)
		}
	}
	delete(m.active, txnID)
	m.slotFree.Broadcast()
}

// LockStats is a snapshot of lock-manager counters.
type LockStats struct {
	ActiveTxns     int
	Conflicts      int64
	AdmissionFull  int64
	MaxConcurrency int
}

// Stats returns a snapshot of the lock-manager counters.
func (m *LockManager) Stats() LockStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return LockStats{
		ActiveTxns:     len(m.active),
		Conflicts:      m.conflicts,
		AdmissionFull:  m.admissionFull,
		MaxConcurrency: m.maxConcurrentTxns,
	}
}
