package relstore

import "fmt"

// LockManager tracks transaction admission and per-table insert interest.
// The engine executes under the discrete-event simulation's single-runner
// discipline, so the lock manager does not need OS-level synchronization; its
// job is to enforce the concurrent-transaction limit and to expose the
// information (how many other transactions are inserting into the same
// tables) that the sqlbatch contention model uses to reproduce the lock waits
// and stalls the paper observed at 6-8 parallel loaders (§5.4).
type LockManager struct {
	maxConcurrentTxns int
	active            map[int64]*txnLocks
	tableWriters      map[string]int

	conflicts     int64
	admissionFull int64
}

type txnLocks struct {
	tables map[string]int // table -> row locks held
}

// NewLockManager creates a lock manager that admits at most maxConcurrentTxns
// simultaneously active transactions (0 or negative means unlimited).
func NewLockManager(maxConcurrentTxns int) *LockManager {
	return &LockManager{
		maxConcurrentTxns: maxConcurrentTxns,
		active:            make(map[int64]*txnLocks),
		tableWriters:      make(map[string]int),
	}
}

// MaxConcurrentTxns returns the admission limit (0 = unlimited).
func (m *LockManager) MaxConcurrentTxns() int { return m.maxConcurrentTxns }

// ActiveTxns returns the number of currently admitted transactions.
func (m *LockManager) ActiveTxns() int { return len(m.active) }

// Admit registers a transaction.  It returns ErrTooManyTransactions when the
// concurrent transaction limit is reached; callers (the sqlbatch server)
// translate that into a queued wait.
func (m *LockManager) Admit(txnID int64) error {
	if _, ok := m.active[txnID]; ok {
		return fmt.Errorf("relstore: transaction %d already admitted", txnID)
	}
	if m.maxConcurrentTxns > 0 && len(m.active) >= m.maxConcurrentTxns {
		m.admissionFull++
		return ErrTooManyTransactions
	}
	m.active[txnID] = &txnLocks{tables: make(map[string]int)}
	return nil
}

// LockRows records that txnID holds n row locks on table and returns the
// number of *other* active transactions currently writing the same table —
// the contention signal used by the simulation's lock-wait model.
func (m *LockManager) LockRows(txnID int64, table string, n int) (otherWriters int, err error) {
	tl, ok := m.active[txnID]
	if !ok {
		return 0, fmt.Errorf("relstore: transaction %d not admitted", txnID)
	}
	if tl.tables[table] == 0 {
		m.tableWriters[table]++
	}
	tl.tables[table] += n
	other := m.tableWriters[table] - 1
	if other > 0 {
		m.conflicts++
	}
	return other, nil
}

// TableWriters returns how many active transactions hold locks on table.
func (m *LockManager) TableWriters(table string) int { return m.tableWriters[table] }

// ReleaseAll releases every lock held by txnID and removes it from the active
// set.  Releasing an unknown transaction is a no-op.
func (m *LockManager) ReleaseAll(txnID int64) {
	tl, ok := m.active[txnID]
	if !ok {
		return
	}
	for table := range tl.tables {
		m.tableWriters[table]--
		if m.tableWriters[table] <= 0 {
			delete(m.tableWriters, table)
		}
	}
	delete(m.active, txnID)
}

// LockStats is a snapshot of lock-manager counters.
type LockStats struct {
	ActiveTxns     int
	Conflicts      int64
	AdmissionFull  int64
	MaxConcurrency int
}

// Stats returns a snapshot of the lock-manager counters.
func (m *LockManager) Stats() LockStats {
	return LockStats{
		ActiveTxns:     len(m.active),
		Conflicts:      m.conflicts,
		AdmissionFull:  m.admissionFull,
		MaxConcurrency: m.maxConcurrentTxns,
	}
}
