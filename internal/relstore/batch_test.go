package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// perRowApply mirrors the sqlbatch server's per-row batch loop: rows are
// applied in order until the first failure, which is reported with its index.
// It is the semantic reference InsertBatch is tested against.
func perRowApply(txn *Txn, table string, cols []string, rows [][]Value) (inserted, failedIdx int, err error) {
	for i, r := range rows {
		if _, e := txn.Insert(table, cols, r); e != nil {
			return i, i, e
		}
	}
	return len(rows), -1, nil
}

// engineState renders the full logical state of a database as a string:
// every table's rows in heap order, every secondary index's (key, row ids)
// pairs in key order, and the per-table epoch/pending counters.  Two
// databases that loaded the same data through different physical paths must
// render identically (B-tree *shape* may differ with insertion order; logical
// content may not).
func engineState(t *testing.T, db *DB) string {
	t.Helper()
	var b strings.Builder
	for _, name := range db.Schema().TableNames() {
		tbl := db.Table(name)
		fmt.Fprintf(&b, "table %s rows=%d epoch=%d pending=%d\n",
			name, tbl.RowCount(), tbl.CommitEpoch(), tbl.UncommittedRows())
		if err := db.ScanRef(name, func(r Row) bool {
			for _, v := range r {
				b.WriteString(FormatValue(v))
				b.WriteByte('|')
			}
			b.WriteByte('\n')
			return true
		}); err != nil {
			t.Fatalf("ScanRef(%s): %v", name, err)
		}
		for _, ix := range tbl.Indexes() {
			fmt.Fprintf(&b, "index %s len=%d\n", ix.Name, ix.Tree().Len())
			ix.Tree().AscendRange(nil, nil, func(key []byte, ids []int64) bool {
				vals, err := DecodeOrderedKey(key)
				if err != nil {
					fmt.Fprintf(&b, "<bad key %x: %v>\n", key, err)
					return false
				}
				b.WriteString(EncodeKey(vals))
				fmt.Fprintf(&b, " -> %v\n", ids)
				return true
			})
		}
	}
	return b.String()
}

// statsFingerprint renders the engine counters that must match between the
// per-row and batch paths.  Physical counters that legitimately differ are
// excluded: LogBytes (group records are smaller by construction) and
// IndexSplits (B-tree shape depends on insertion order).
func statsFingerprint(db *DB) string {
	st := db.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "ins=%d rej=%d txns=%d commits=%d rollbacks=%d pages=%d\n",
		st.RowsInserted, st.RowsRejected, st.Transactions, st.Commits, st.Rollbacks, st.PagesAllocated)
	for k := KindPrimaryKey; k <= KindUnknownTable; k++ {
		if n := st.ConstraintViolations[k]; n != 0 {
			fmt.Fprintf(&b, "viol[%s]=%d\n", k, n)
		}
	}
	return b.String()
}

// batchPropertyDB builds the shared test schema with a float secondary index
// on objects.mag (duplicate-heavy) and seeds a handful of frames rows for
// foreign keys to point at.
func batchPropertyDB(t *testing.T, extra ...Option) *DB {
	t.Helper()
	opts := append([]Option{WithBTreeDegree(3), WithCache(64), WithDirtyFlushPages(8)}, extra...)
	db := MustOpen(testSchema(t), opts...)
	// ix_mag exercises the float comparator, ix_frame the raw-int64 sort
	// path (both duplicate-heavy), and the composite index the generic one.
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_frame", []string{"frame_id"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_frame_mag", []string{"frame_id", "mag"}, false); err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"frame_id", "exposure"}
	for f := int64(0); f < 8; f++ {
		if _, err := txn.Insert("frames", cols, []Value{Int(f), Float(30)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// randomObjectBatch generates a batch of objects rows seeded with the failure
// modes the loader sees in the wild: duplicate primary keys (against both
// already-committed rows and earlier rows of the same batch), dangling
// foreign keys, out-of-range check values, NULL primary keys and uncoercible
// values.
func randomObjectBatch(rng *rand.Rand, base int64, nextID *int64, size int) [][]Value {
	rows := make([][]Value, 0, size)
	for i := 0; i < size; i++ {
		id := *nextID
		*nextID++
		frame := Int(rng.Int63n(8))
		mag := Float(float64(rng.Intn(16))) // few distinct values -> duplicate index keys
		row := []Value{Int(id), frame, mag}
		switch rng.Intn(12) {
		case 0: // duplicate PK: reuse an id handed out earlier this trial
			// (it may sit in a committed row, earlier in this same batch, or
			// in a row that was never applied — all three must agree with the
			// per-row loop).
			row[0] = Int(base + rng.Int63n(id-base+1))
		case 1: // dangling FK
			row[1] = Int(999 + rng.Int63n(10))
		case 2: // check violation (mag outside [0,40])
			row[2] = Float(41 + float64(rng.Intn(5)))
		case 3: // NULL primary key
			row[0] = Null
		case 4: // uncoercible value (type failure during the build phase)
			row[2] = Str("not-a-float")
		}
		rows = append(rows, row)
	}
	return rows
}

// TestInsertBatchMatchesPerRow is the batch-apply property test: for many
// random batches containing duplicate-PK, FK-violating, check-violating,
// NULL-PK and type-error rows, InsertBatch must produce exactly the table
// state, FailedIndex, violation kind and epoch/pending counters of the
// per-row reference loop — across mid-transaction checks, commits and
// rollbacks.  The same batches also run through a chunked-lock database
// (WithBatchLockChunk), which must be indistinguishable from the monolithic
// path at every observation point.
func TestInsertBatchMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(20051112))
	cols := []string{"object_id", "frame_id", "mag"}

	for trial := 0; trial < 60; trial++ {
		ref := batchPropertyDB(t)                           // per-row reference
		got := batchPropertyDB(t)                           // batch-apply path
		chk := batchPropertyDB(t, WithBatchLockChunk(7))    // chunked-lock batch apply
		base := int64(trial * 1000)
		nextRef, nextGot, nextChk := base, base, base

		refTxn, err := ref.Begin()
		if err != nil {
			t.Fatal(err)
		}
		gotTxn, err := got.Begin()
		if err != nil {
			t.Fatal(err)
		}
		chkTxn, err := chk.Begin()
		if err != nil {
			t.Fatal(err)
		}

		batches := 1 + rng.Intn(4)
		for bi := 0; bi < batches; bi++ {
			size := 1 + rng.Intn(50)
			seed := rng.Int63()
			// Generate the identical batch for every engine.
			rows := randomObjectBatch(rand.New(rand.NewSource(seed)), base, &nextRef, size)
			rows2 := randomObjectBatch(rand.New(rand.NewSource(seed)), base, &nextGot, size)
			rows3 := randomObjectBatch(rand.New(rand.NewSource(seed)), base, &nextChk, size)

			refIns, refIdx, refErr := perRowApply(refTxn, "objects", cols, rows)
			br, gotErr := gotTxn.InsertBatch("objects", cols, rows2)
			cr, chkErr := chkTxn.InsertBatch("objects", cols, rows3)

			if refIns != br.RowsInserted || refIdx != br.FailedIndex {
				t.Fatalf("trial %d batch %d: per-row (ins=%d idx=%d) vs batch (ins=%d idx=%d)",
					trial, bi, refIns, refIdx, br.RowsInserted, br.FailedIndex)
			}
			if refIns != cr.RowsInserted || refIdx != cr.FailedIndex {
				t.Fatalf("trial %d batch %d: per-row (ins=%d idx=%d) vs chunked (ins=%d idx=%d)",
					trial, bi, refIns, refIdx, cr.RowsInserted, cr.FailedIndex)
			}
			if (refErr == nil) != (gotErr == nil) || (refErr == nil) != (chkErr == nil) {
				t.Fatalf("trial %d batch %d: errors diverge: %v vs %v vs %v", trial, bi, refErr, gotErr, chkErr)
			}
			if refErr != nil {
				rk, _ := ViolationKind(refErr)
				gk, _ := ViolationKind(gotErr)
				ck, _ := ViolationKind(chkErr)
				if rk != gk || rk != ck {
					t.Fatalf("trial %d batch %d: violation kinds diverge: %s vs %s vs %s (%v vs %v vs %v)",
						trial, bi, rk, gk, ck, refErr, gotErr, chkErr)
				}
			}
			// Mid-transaction: rows applied so far and pending counters agree.
			rs := engineState(t, ref)
			if gs := engineState(t, got); rs != gs {
				t.Fatalf("trial %d batch %d: mid-txn state diverges:\n--- per-row ---\n%s--- batch ---\n%s", trial, bi, rs, gs)
			}
			if cs := engineState(t, chk); rs != cs {
				t.Fatalf("trial %d batch %d: mid-txn state diverges:\n--- per-row ---\n%s--- chunked ---\n%s", trial, bi, rs, cs)
			}
		}

		// Finish all three the same way and compare the settled state.
		if rng.Intn(3) == 0 {
			for _, txn := range []*Txn{refTxn, gotTxn, chkTxn} {
				if err := txn.Rollback(); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, txn := range []*Txn{refTxn, gotTxn, chkTxn} {
				if _, err := txn.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
		rs := engineState(t, ref)
		if gs := engineState(t, got); rs != gs {
			t.Fatalf("trial %d: settled state diverges:\n--- per-row ---\n%s--- batch ---\n%s", trial, rs, gs)
		}
		if cs := engineState(t, chk); rs != cs {
			t.Fatalf("trial %d: settled state diverges:\n--- per-row ---\n%s--- chunked ---\n%s", trial, rs, cs)
		}
		rf := statsFingerprint(ref)
		if gf := statsFingerprint(got); rf != gf {
			t.Fatalf("trial %d: stats diverge:\n--- per-row ---\n%s--- batch ---\n%s", trial, rf, gf)
		}
		if cf := statsFingerprint(chk); rf != cf {
			t.Fatalf("trial %d: stats diverge:\n--- per-row ---\n%s--- chunked ---\n%s", trial, rf, cf)
		}
	}
}

// TestInsertBatchSelfReferentialFK checks the intra-batch foreign-key
// semantics on a self-referential table: a child may reference a parent
// stored earlier in the same batch (the per-row loop would have stored it
// already), while a reference to a parent that only appears later in the
// batch fails at exactly the referencing row.
func TestInsertBatchSelfReferentialFK(t *testing.T) {
	schema, err := NewSchema(&TableSchema{
		Name: "nodes",
		Columns: []Column{
			{Name: "node_id", Type: TypeInt},
			{Name: "parent_id", Type: TypeInt, Nullable: true},
		},
		PrimaryKey: []string{"node_id"},
		ForeignKeys: []ForeignKey{
			{Name: "fk_parent", Columns: []string{"parent_id"}, RefTable: "nodes", RefColumns: []string{"node_id"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"node_id", "parent_id"}

	// Forward references (parent earlier in the batch) succeed.
	db := MustOpen(schema)
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	br, err := txn.InsertBatch("nodes", cols, [][]Value{
		{Int(1), Null},
		{Int(2), Int(1)},
		{Int(3), Int(2)},
	})
	if err != nil || br.RowsInserted != 3 || br.FailedIndex != -1 {
		t.Fatalf("forward-reference batch: ins=%d idx=%d err=%v", br.RowsInserted, br.FailedIndex, err)
	}

	// A backward reference (parent later in the batch) fails at that row,
	// leaving the prefix applied — same as the per-row loop.
	br, err = txn.InsertBatch("nodes", cols, [][]Value{
		{Int(10), Int(1)},
		{Int(11), Int(12)}, // parent 12 arrives only at index 2
		{Int(12), Null},
	})
	if err == nil || br.FailedIndex != 1 || br.RowsInserted != 1 {
		t.Fatalf("backward-reference batch: ins=%d idx=%d err=%v", br.RowsInserted, br.FailedIndex, err)
	}
	if k, _ := ViolationKind(err); k != KindForeignKey {
		t.Fatalf("violation kind = %s, want FOREIGN KEY", k)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("nodes"); n != 4 {
		t.Fatalf("nodes rows = %d, want 4", n)
	}
}

// TestInsertBatchEdgeCases covers the degenerate inputs: empty batches,
// unknown tables, inactive transactions and arity mismatches.
func TestInsertBatchEdgeCases(t *testing.T) {
	db := batchPropertyDB(t)
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"object_id", "frame_id", "mag"}

	br, err := txn.InsertBatch("objects", cols, nil)
	if err != nil || br.FailedIndex != -1 || br.RowsInserted != 0 {
		t.Fatalf("empty batch: %+v err=%v", br, err)
	}

	br, err = txn.InsertBatch("missing", cols, [][]Value{{Int(1), Int(0), Float(1)}})
	if err == nil || br.FailedIndex != 0 {
		t.Fatalf("unknown table: %+v err=%v", br, err)
	}
	if k, _ := ViolationKind(err); k != KindUnknownTable {
		t.Fatalf("violation kind = %s, want UNKNOWN TABLE", k)
	}

	// Unknown column: nothing applied, failure at row 0 (the per-row loop
	// fails every row on its first attempt).
	br, err = txn.InsertBatch("objects", []string{"object_id", "nope"}, [][]Value{{Int(1), Int(0)}})
	if err == nil || br.FailedIndex != 0 || br.RowsInserted != 0 {
		t.Fatalf("unknown column: %+v err=%v", br, err)
	}

	// Arity mismatch on row 1: row 0 applied, failure index exact.
	br, err = txn.InsertBatch("objects", cols, [][]Value{
		{Int(500000), Int(1), Float(10)},
		{Int(500001), Int(1)},
	})
	if err == nil || br.FailedIndex != 1 || br.RowsInserted != 1 {
		t.Fatalf("arity mismatch: %+v err=%v", br, err)
	}

	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if br, err = txn.InsertBatch("objects", cols, [][]Value{{Int(9), Int(0), Float(1)}}); err != ErrTxnNotActive {
		t.Fatalf("inactive txn: %+v err=%v", br, err)
	}
}

// TestInsertBatchNullIndexKeys covers the raw-int64 index sort fallback: a
// nullable integer column index whose batch contains NULL keys must take the
// generic path and store NULLs sorting before every non-NULL key, identically
// to per-row insertion.
func TestInsertBatchNullIndexKeys(t *testing.T) {
	schema, err := NewSchema(&TableSchema{
		Name: "pts",
		Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "grade", Type: TypeInt, Nullable: true},
		},
		PrimaryKey: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := MustOpen(schema, WithBTreeDegree(2))
	got := MustOpen(schema, WithBTreeDegree(2))
	for _, db := range []*DB{ref, got} {
		if _, err := db.CreateIndex("pts", "ix_grade", []string{"grade"}, false); err != nil {
			t.Fatal(err)
		}
	}
	cols := []string{"id", "grade"}
	rows := make([][]Value, 40)
	for i := range rows {
		g := Value(Int(int64(i % 5)))
		if i%7 == 0 {
			g = Null
		}
		rows[i] = []Value{Int(int64(i)), g}
	}
	refTxn, _ := ref.Begin()
	gotTxn, _ := got.Begin()
	if ins, _, err := perRowApply(refTxn, "pts", cols, rows); err != nil || ins != len(rows) {
		t.Fatalf("per-row: ins=%d err=%v", ins, err)
	}
	if br, err := gotTxn.InsertBatch("pts", cols, rows); err != nil || br.RowsInserted != len(rows) {
		t.Fatalf("batch: %+v err=%v", br, err)
	}
	if _, err := refTxn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := gotTxn.Commit(); err != nil {
		t.Fatal(err)
	}
	if rs, gs := engineState(t, ref), engineState(t, got); rs != gs {
		t.Fatalf("state diverges with NULL index keys:\n--- per-row ---\n%s--- batch ---\n%s", rs, gs)
	}
}

// TestSortInt64Pairs pins the specialized pair sort against the library sort
// on random, sorted, reversed and duplicate-heavy inputs, including sizes
// around the insertion-sort cutoff.
func TestSortInt64Pairs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(3000)
		k := make([]int64, n)
		id := make([]int64, n)
		switch trial % 4 {
		case 0:
			for i := range k {
				k[i] = rng.Int63n(10) // heavy duplicates exercise the id tie-break
				id[i] = int64(rng.Intn(50))
			}
		case 1:
			for i := range k {
				k[i] = int64(i)
				id[i] = int64(i)
			}
		case 2:
			for i := range k {
				k[i] = int64(n - i)
				id[i] = int64(i)
			}
		default:
			for i := range k {
				k[i] = rng.Int63()
				id[i] = rng.Int63()
			}
		}
		type pair struct{ k, id int64 }
		want := make([]pair, n)
		for i := range want {
			want[i] = pair{k[i], id[i]}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].k != want[j].k {
				return want[i].k < want[j].k
			}
			return want[i].id < want[j].id
		})
		sortInt64Pairs(k, id)
		for i := range want {
			if k[i] != want[i].k || id[i] != want[i].id {
				t.Fatalf("trial %d: position %d = (%d,%d), want (%d,%d)", trial, i, k[i], id[i], want[i].k, want[i].id)
			}
		}
	}
}

// TestInsertBatchGroupWAL checks that a successful batch writes exactly one
// group redo record covering all of its rows.
func TestInsertBatchGroupWAL(t *testing.T) {
	db := batchPropertyDB(t)
	before := db.WAL().Stats()
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"object_id", "frame_id", "mag"}
	rows := make([][]Value, 25)
	for i := range rows {
		rows[i] = []Value{Int(int64(1000 + i)), Int(0), Float(float64(i % 7))}
	}
	br, err := txn.InsertBatch("objects", cols, rows)
	if err != nil || br.RowsInserted != len(rows) {
		t.Fatalf("batch failed: %+v err=%v", br, err)
	}
	after := db.WAL().Stats()
	if got := after.GroupRecords - before.GroupRecords; got != 1 {
		t.Fatalf("group records written = %d, want 1", got)
	}
	if got := after.GroupedRows - before.GroupedRows; got != int64(len(rows)) {
		t.Fatalf("grouped rows = %d, want %d", got, len(rows))
	}
	if got := after.Records - before.Records; got != 1 {
		t.Fatalf("total records written = %d, want 1 (one group record, no per-row records)", got)
	}
	if br.Report.LogBytes != int(after.Bytes-before.Bytes) {
		t.Fatalf("report LogBytes %d != WAL growth %d", br.Report.LogBytes, after.Bytes-before.Bytes)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}
