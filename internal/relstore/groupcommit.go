package relstore

import (
	"sync"
	"time"
)

// This file implements the goroutine-engine half of group commit (§4.5.2):
// committing transactions enqueue on a commit queue and ONE of them — the
// leader — performs a single WAL sync for the whole group, then wakes the
// waiters.  The paper tunes commit *frequency* to trade durability overhead
// against redo growth; group commit is the server-side dual of that lever:
// commit as often as you like, and the log device still sees one force per
// window instead of one per transaction.
//
// Ownership rules (also documented in PERFORMANCE.md):
//
//   - Whoever finds no open group opens one and becomes its leader.  The
//     leader — and only the leader — calls WAL.SyncGroup and closes the
//     group's done channel; everyone else is a waiter.
//   - A waiter joins the open group, and the waiter whose join fills the group
//     to maxWaiters closes it to further joiners and wakes the leader early
//     (the full channel).  Waiters never sync.
//   - Every member appends its commit marker (WAL.AppendCommitNoSync) BEFORE
//     joining, so the group's sync — which forces the whole unsynced tail —
//     is guaranteed to cover every member's marker.
//   - A sync failure would be recorded on the group by the leader before done
//     closes and surfaced to every waiter; the in-memory log cannot fail, so
//     today that path is vacuous, but the propagation point is the group
//     object, not the WAL.
//
// Timing uses real timers: group commit is a wall-clock-engine feature.  The
// DES engine never blocks here — its deterministic analogue lives in
// sqlbatch.Server, which charges the same coalesced SyncGroup cost in virtual
// time (see Server.finish).

// DefaultGroupCommitWaiters is the group-size cap used when WithGroupCommit
// is given maxWaiters <= 0.
const DefaultGroupCommitWaiters = 16

// commitGroup is one commit batch in flight.
type commitGroup struct {
	n      int           // members, including the leader; guarded by groupCommitter.mu
	full   chan struct{} // closed by the waiter whose join caps the group
	done   chan struct{} // closed by the leader after the group's sync
	forced int64         // log bytes the group sync forced; written before done closes
}

// groupCommitter is the commit queue of one DB.  Created by Open when
// WithGroupCommit is set; nil otherwise (every commit syncs for itself).
type groupCommitter struct {
	wal        *WAL
	window     time.Duration
	maxWaiters int

	mu  sync.Mutex
	cur *commitGroup // open group accepting joiners, or nil
}

func newGroupCommitter(wal *WAL, window time.Duration, maxWaiters int) *groupCommitter {
	if maxWaiters <= 0 {
		maxWaiters = DefaultGroupCommitWaiters
	}
	return &groupCommitter{wal: wal, window: window, maxWaiters: maxWaiters}
}

// commit joins the current commit group — opening a new one and becoming its
// leader when none is open — and returns once a WAL sync covering the
// caller's already-appended commit marker has completed.  The leader returns
// the bytes its sync forced; waiters return forced == 0 (their durability
// cost rode the leader's sync).  size is the final group size.
func (g *groupCommitter) commit() (forced int64, size int, leader bool) {
	g.mu.Lock()
	if grp := g.cur; grp != nil {
		// Waiter: join the open group.  The join that fills the group closes
		// it to newcomers and wakes the leader before its window expires.
		grp.n++
		if grp.n >= g.maxWaiters {
			g.cur = nil
			close(grp.full)
		}
		g.mu.Unlock()
		<-grp.done
		return 0, grp.n, false
	}
	grp := &commitGroup{n: 1, full: make(chan struct{}), done: make(chan struct{})}
	g.cur = grp
	g.mu.Unlock()

	// Leader: give waiters up to one window to gather, or less if the group
	// fills first.
	if g.window > 0 {
		t := time.NewTimer(g.window)
		select {
		case <-grp.full:
			t.Stop()
		case <-t.C:
		}
	}
	g.mu.Lock()
	if g.cur == grp {
		// Close the group to joiners BEFORE syncing: a commit arriving from
		// here on appended its marker after our membership froze, so it must
		// start (and wait for) its own group rather than believe this sync
		// covered it.
		g.cur = nil
	}
	n := grp.n
	g.mu.Unlock()
	grp.forced = g.wal.SyncGroup(n)
	close(grp.done)
	return grp.forced, n, true
}
