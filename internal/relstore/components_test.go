package relstore

import (
	"testing"
)

func TestBufferCacheLRU(t *testing.T) {
	c := NewBufferCache(3)
	if c.Capacity() != 3 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	miss, _ := c.Touch("t", 1, false)
	if !miss {
		t.Fatal("first touch should miss")
	}
	c.Touch("t", 2, false)
	c.Touch("t", 3, false)
	if miss, _ := c.Touch("t", 1, false); miss {
		t.Fatal("page 1 should still be resident")
	}
	// Insert a fourth page; page 2 (least recently used) should be evicted.
	_, evicted := c.Touch("t", 4, true)
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if miss, _ := c.Touch("t", 2, false); !miss {
		t.Fatal("page 2 should have been evicted")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestBufferCacheDirtyTrackingAndFlush(t *testing.T) {
	c := NewBufferCache(10)
	c.Touch("t", 1, true)
	c.Touch("t", 1, true) // same page stays one dirty unit
	c.Touch("t", 2, true)
	c.Touch("t", 3, false)
	if c.DirtySinceFlush() != 2 {
		t.Fatalf("DirtySinceFlush = %d, want 2", c.DirtySinceFlush())
	}
	written, scanned := c.FlushDirty()
	if written != 2 {
		t.Fatalf("written = %d, want 2", written)
	}
	if scanned != c.Capacity() {
		t.Fatalf("scanned = %d, want capacity %d", scanned, c.Capacity())
	}
	if c.DirtySinceFlush() != 0 {
		t.Fatal("dirty counter not reset")
	}
	written, _ = c.FlushDirty()
	if written != 0 {
		t.Fatalf("second flush wrote %d", written)
	}
	st := c.Stats()
	if st.Flushes != 2 || st.ScanWork != int64(2*c.Capacity()) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBufferCacheMinimumCapacity(t *testing.T) {
	c := NewBufferCache(0)
	if c.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", c.Capacity())
	}
}

func TestWAL(t *testing.T) {
	w := NewWAL(0)
	n := w.AppendInsert(100)
	if n != 128 {
		t.Fatalf("AppendInsert returned %d, want 128", n)
	}
	w.AppendInsert(100)
	forced := w.AppendCommit()
	if forced != 256+48 {
		t.Fatalf("forced = %d, want 304", forced)
	}
	st := w.Stats()
	if st.Commits != 1 || st.Records != 3 || st.MaxUnsyncedBytes != 256 {
		t.Fatalf("stats: %+v", st)
	}
	// After a commit the unsynced counter restarts.
	w.AppendInsert(10)
	if got := w.AppendCommit(); got != 38+48 {
		t.Fatalf("second commit forced %d", got)
	}
}

func TestLockManagerAdmission(t *testing.T) {
	m := NewLockManager(2)
	if err := m.Admit(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1); err == nil {
		t.Fatal("double admit should fail")
	}
	if err := m.Admit(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(3); err != ErrTooManyTransactions {
		t.Fatalf("expected ErrTooManyTransactions, got %v", err)
	}
	m.ReleaseAll(1)
	if err := m.Admit(3); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if m.ActiveTxns() != 2 {
		t.Fatalf("ActiveTxns = %d", m.ActiveTxns())
	}
	st := m.Stats()
	if st.AdmissionFull != 1 || st.MaxConcurrency != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLockManagerTableWriters(t *testing.T) {
	m := NewLockManager(0)
	_ = m.Admit(1)
	_ = m.Admit(2)
	other, err := m.LockRows(1, "objects", 10)
	if err != nil || other != 0 {
		t.Fatalf("first writer: other=%d err=%v", other, err)
	}
	other, err = m.LockRows(2, "objects", 5)
	if err != nil || other != 1 {
		t.Fatalf("second writer: other=%d err=%v", other, err)
	}
	if m.TableWriters("objects") != 2 {
		t.Fatalf("TableWriters = %d", m.TableWriters("objects"))
	}
	if _, err := m.LockRows(99, "objects", 1); err == nil {
		t.Fatal("lock by unadmitted txn should fail")
	}
	m.ReleaseAll(1)
	if m.TableWriters("objects") != 1 {
		t.Fatalf("after release TableWriters = %d", m.TableWriters("objects"))
	}
	m.ReleaseAll(2)
	if m.TableWriters("objects") != 0 {
		t.Fatal("writers not cleared")
	}
	if m.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d", m.Stats().Conflicts)
	}
	// Releasing an unknown transaction is a no-op.
	m.ReleaseAll(12345)
}

func TestHeapStorePaging(t *testing.T) {
	h := newHeapStore()
	// Rows of ~1 KB should produce multiple 8 KB pages.
	big := make(Row, 1)
	big[0] = Str(string(make([]byte, 1000)))
	var newPages int
	for i := 0; i < 30; i++ {
		_, fresh, _ := h.append(big.Clone())
		if fresh {
			newPages++
		}
	}
	if h.pageCount() < 3 || newPages != h.pageCount() {
		t.Fatalf("pageCount = %d newPages = %d", h.pageCount(), newPages)
	}
	if h.rowCount != 30 {
		t.Fatalf("rowCount = %d", h.rowCount)
	}
	var visited int
	h.scan(func(_ int64, r Row) bool {
		visited++
		return true
	})
	if visited != 30 {
		t.Fatalf("scan visited %d", visited)
	}
}

func TestConstraintErrorMessage(t *testing.T) {
	err := &ConstraintError{Kind: KindCheck, Table: "objects", Constraint: "ck_mag", Column: "mag", Detail: "too big"}
	msg := err.Error()
	for _, want := range []string{"CHECK", "objects", "ck_mag", "mag", "too big"} {
		if !contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	kinds := []ConstraintKind{KindPrimaryKey, KindForeignKey, KindUnique, KindCheck, KindNotNull, KindType, KindArity, KindUnknownTable}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
