package relstore

// pageSizeBytes is the nominal heap page size; it matches the 8 KB block size
// the production Oracle repository used.
const pageSizeBytes = 8192

// page is a heap page holding row data for one table.
type page struct {
	id    int
	rows  []Row
	bytes int
	dirty bool
}

func (p *page) fits(rowBytes int) bool {
	return p.bytes+rowBytes <= pageSizeBytes || len(p.rows) == 0
}

// heap is a simple append-only page heap for one table.
type heapStore struct {
	pages []*page
	// rowLoc maps rowID -> (page index, slot).
	rowCount int64
	bytes    int64
}

type rowLoc struct {
	pageIdx int
	slot    int
}

func newHeapStore() *heapStore {
	return &heapStore{}
}

// append places a row in the heap and returns its location, whether a new
// page was allocated, and the row's byte size (so callers accounting RowBytes
// do not recompute it).
func (h *heapStore) append(r Row) (rowLoc, bool, int) {
	rb := RowSize(r)
	newPage := false
	if len(h.pages) == 0 || !h.pages[len(h.pages)-1].fits(rb) {
		// Pre-size the slot directory to the page's expected fill so the
		// per-row appends inside a page never regrow it.
		slots := 4
		if rb > 0 && rb < pageSizeBytes {
			slots = pageSizeBytes/rb + 1
		}
		h.pages = append(h.pages, &page{id: len(h.pages), rows: make([]Row, 0, slots)})
		newPage = true
	}
	p := h.pages[len(h.pages)-1]
	p.rows = append(p.rows, r)
	p.bytes += rb
	p.dirty = true
	h.rowCount++
	h.bytes += int64(rb)
	return rowLoc{pageIdx: len(h.pages) - 1, slot: len(p.rows) - 1}, newPage, rb
}

// get returns the row stored at loc; deleted rows are nil.
func (h *heapStore) get(loc rowLoc) Row {
	if loc.pageIdx < 0 || loc.pageIdx >= len(h.pages) {
		return nil
	}
	p := h.pages[loc.pageIdx]
	if loc.slot < 0 || loc.slot >= len(p.rows) {
		return nil
	}
	return p.rows[loc.slot]
}

// markDeleted removes the row at loc (used only by transaction rollback).
func (h *heapStore) markDeleted(loc rowLoc) {
	if r := h.get(loc); r != nil {
		p := h.pages[loc.pageIdx]
		p.bytes -= RowSize(r)
		p.rows[loc.slot] = nil
		p.dirty = true
		h.rowCount--
		h.bytes -= int64(RowSize(r))
	}
}

// scanLoc visits every live row in heap order along with its physical
// location, for callers that need to map locations back to row ids.
func (h *heapStore) scanLoc(visit func(loc rowLoc, r Row) bool) {
	for pi, p := range h.pages {
		for si, r := range p.rows {
			if r != nil {
				if !visit(rowLoc{pageIdx: pi, slot: si}, r) {
					return
				}
			}
		}
	}
}

// scan visits every live row in heap order, numbering live rows from 0.
func (h *heapStore) scan(visit func(id int64, r Row) bool) {
	var id int64
	h.scanLoc(func(_ rowLoc, r Row) bool {
		id++
		return visit(id-1, r)
	})
}

// pageCount returns the number of allocated pages.
func (h *heapStore) pageCount() int { return len(h.pages) }
