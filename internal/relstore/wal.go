package relstore

import "sync"

// WAL models the redo log.  The engine is in-memory, so the log exists for
// cost accounting and for reasoning about the commit-frequency trade-off the
// paper describes in §4.5.2: committing rarely avoids per-commit processing
// but lets redo/undo volume grow between commits.
//
// Like the single redo stream of the production database, the log is one
// shared structure: concurrent writers serialize on its mutex for the few
// nanoseconds of counter arithmetic.
type WAL struct {
	// syncThreshold is the auto-sync high-water mark in bytes: when the
	// unsynced tail reaches it, the append that crossed it counts a sync
	// without waiting for a commit.  0 disables auto-sync (the historical
	// behaviour: the log syncs only at commit).  Immutable after creation.
	syncThreshold int64

	mu             sync.Mutex
	records        int64
	groupRecords   int64
	groupedRows    int64
	bytes          int64
	commits        int64
	autoSyncs      int64
	bytesSinceSync int64
	maxUnsynced    int64
}

// NewWAL returns an empty redo log with the given auto-sync threshold in
// bytes (0 = sync only at commit; see WithWALSync).
func NewWAL(syncThreshold int64) *WAL { return &WAL{syncThreshold: syncThreshold} }

// AppendInsert records a redo entry of the given payload size and returns the
// number of log bytes written (payload plus a fixed record header).
func (w *WAL) AppendInsert(payloadBytes int) int {
	const header = 28
	n := payloadBytes + header
	w.mu.Lock()
	w.records++
	w.bytes += int64(n)
	w.advanceUnsyncedLocked(int64(n))
	w.mu.Unlock()
	return n
}

// advanceUnsyncedLocked grows the unsynced tail by n bytes, updates the
// high-water mark, and applies the auto-sync threshold; w.mu must be held.
func (w *WAL) advanceUnsyncedLocked(n int64) {
	w.bytesSinceSync += n
	if w.bytesSinceSync > w.maxUnsynced {
		w.maxUnsynced = w.bytesSinceSync
	}
	if w.syncThreshold > 0 && w.bytesSinceSync >= w.syncThreshold {
		w.autoSyncs++
		w.bytesSinceSync = 0
	}
}

// AppendInsertGroup records one redo entry covering a group of n rows with the
// given total payload size and returns the number of log bytes written.  The
// group record carries the fixed record header once plus a small per-row slot
// entry, so a batch of n rows pays one mutex acquisition and one header where
// the row-at-a-time path pays n of each — the redo-volume analogue of the
// paper's batch-size amortization (§4.2).
func (w *WAL) AppendInsertGroup(n, payloadBytes int) int {
	if n <= 0 {
		return 0
	}
	const header = 28
	const slot = 4
	size := payloadBytes + header + n*slot
	w.mu.Lock()
	w.records++
	w.groupRecords++
	w.groupedRows += int64(n)
	w.bytes += int64(size)
	w.advanceUnsyncedLocked(int64(size))
	w.mu.Unlock()
	return size
}

// AppendCommit records a commit marker and a log sync; it returns the number
// of unsynced bytes that the sync had to force to disk.
func (w *WAL) AppendCommit() int64 {
	const marker = 48
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records++
	w.bytes += marker
	w.commits++
	forced := w.bytesSinceSync + marker
	w.bytesSinceSync = 0
	return forced
}

// WALStats is a snapshot of redo-log counters.
type WALStats struct {
	Records      int64
	GroupRecords int64
	GroupedRows  int64
	Bytes        int64
	Commits      int64
	// AutoSyncs counts syncs forced by the WithWALSync threshold rather than
	// by a commit.
	AutoSyncs        int64
	MaxUnsyncedBytes int64
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Records:          w.records,
		GroupRecords:     w.groupRecords,
		GroupedRows:      w.groupedRows,
		Bytes:            w.bytes,
		Commits:          w.commits,
		AutoSyncs:        w.autoSyncs,
		MaxUnsyncedBytes: w.maxUnsynced,
	}
}
