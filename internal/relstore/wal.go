package relstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// WAL models the redo log.  The engine is in-memory, so the log exists for
// cost accounting and for reasoning about the commit-frequency trade-off the
// paper describes in §4.5.2: committing rarely avoids per-commit processing
// but lets redo/undo volume grow between commits.
//
// Like the single redo stream of the production database, the log is one
// shared structure: concurrent writers serialize on its mutex for the few
// nanoseconds of counter arithmetic.
type WAL struct {
	// syncThreshold is the auto-sync high-water mark in bytes: when the
	// unsynced tail reaches it, the append that crossed it counts a sync
	// without waiting for a commit.  0 disables auto-sync (the historical
	// behaviour: the log syncs only at commit).  Immutable after creation.
	syncThreshold int64

	// syncDelay models the redo-device fsync latency in wall-clock mode: every
	// commit-driven sync (AppendCommit, SyncGroup) holds the device for this
	// long.  The log device is one spindle, so concurrent syncs serialize on
	// syncMu — which is exactly the serialization group commit exists to
	// amortize.  0 (the default, and the only value the §5 DES figures use)
	// makes syncs free, as before.  Immutable after creation.
	syncDelay time.Duration
	syncMu    sync.Mutex

	// dev is the durable half of the log (WithWALDir): the real byte stream
	// whose syncs are fsyncs.  nil (the default) keeps the WAL counters-only;
	// every durable call site is gated on the nil check, so the cost model and
	// its figures are untouched when durability is off.  Atomic because
	// StartRecover publishes the database (health probes, /metrics) before its
	// background replay installs the resumed device.
	dev atomic.Pointer[walDevice]

	mu             sync.Mutex
	records        int64
	groupRecords   int64
	groupedRows    int64
	bytes          int64
	commits        int64
	syncs          int64
	autoSyncs      int64
	groupSyncs     int64
	groupedCommits int64
	maxGroupSize   int64
	bytesSinceSync int64
	maxUnsynced    int64
}

// NewWAL returns an empty redo log with the given auto-sync threshold in
// bytes (0 = sync only at commit; see WithWALSync).
func NewWAL(syncThreshold int64) *WAL { return &WAL{syncThreshold: syncThreshold} }

// AppendInsert records a redo entry of the given payload size and returns the
// number of log bytes written (payload plus a fixed record header).
func (w *WAL) AppendInsert(payloadBytes int) int {
	const header = 28
	n := payloadBytes + header
	w.mu.Lock()
	w.records++
	w.bytes += int64(n)
	w.advanceUnsyncedLocked(int64(n))
	w.mu.Unlock()
	return n
}

// advanceUnsyncedLocked grows the unsynced tail by n bytes, updates the
// high-water mark, and applies the auto-sync threshold; w.mu must be held.
func (w *WAL) advanceUnsyncedLocked(n int64) {
	w.bytesSinceSync += n
	if w.bytesSinceSync > w.maxUnsynced {
		w.maxUnsynced = w.bytesSinceSync
	}
	if w.syncThreshold > 0 && w.bytesSinceSync >= w.syncThreshold {
		w.autoSyncs++
		w.syncs++
		w.bytesSinceSync = 0
	}
}

// AppendInsertGroup records one redo entry covering a group of n rows with the
// given total payload size and returns the number of log bytes written.  The
// group record carries the fixed record header once plus a small per-row slot
// entry, so a batch of n rows pays one mutex acquisition and one header where
// the row-at-a-time path pays n of each — the redo-volume analogue of the
// paper's batch-size amortization (§4.2).
func (w *WAL) AppendInsertGroup(n, payloadBytes int) int {
	if n <= 0 {
		return 0
	}
	const header = 28
	const slot = 4
	size := payloadBytes + header + n*slot
	w.mu.Lock()
	w.records++
	w.groupRecords++
	w.groupedRows += int64(n)
	w.bytes += int64(size)
	w.advanceUnsyncedLocked(int64(size))
	w.mu.Unlock()
	return size
}

// commitMarker is the size of a commit record in the redo stream.
const commitMarker = 48

// AppendCommit records a commit marker and a log sync; it returns the number
// of unsynced bytes that the sync had to force to disk.
func (w *WAL) AppendCommit() int64 {
	w.mu.Lock()
	w.records++
	w.bytes += commitMarker
	w.commits++
	w.syncs++
	forced := w.bytesSinceSync + commitMarker
	w.bytesSinceSync = 0
	w.mu.Unlock()
	w.syncDevice()
	return forced
}

// AppendCommitNoSync records a commit marker WITHOUT syncing the log, leaving
// the marker in the unsynced tail, and returns the tail's current size.  It is
// the enqueue half of group commit: the committer appends its marker here and
// then waits for a leader's SyncGroup to cover it (the goroutine-engine queue
// in groupcommit.go, or the DES engine's virtual group in sqlbatch).  Until
// that sync runs the commit is not durable.
func (w *WAL) AppendCommitNoSync() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records++
	w.bytes += commitMarker
	w.commits++
	w.advanceUnsyncedLocked(commitMarker)
	return w.bytesSinceSync
}

// SyncGroup performs one log sync on behalf of a group of `commits` commit
// markers already appended via AppendCommitNoSync, and returns the number of
// unsynced bytes it forced.  One SyncGroup call replaces `commits` per-commit
// syncs — the whole point of group commit (§4.5.2: fewer, larger forces).
func (w *WAL) SyncGroup(commits int) int64 {
	w.mu.Lock()
	forced := w.bytesSinceSync
	w.bytesSinceSync = 0
	w.syncs++
	w.groupSyncs++
	w.groupedCommits += int64(commits)
	if int64(commits) > w.maxGroupSize {
		w.maxGroupSize = int64(commits)
	}
	w.mu.Unlock()
	if dev := w.dev.Load(); dev != nil {
		// The leader's single durable fsync covers every marker the group
		// appended via AppendCommitNoSync — the durable form of group commit.
		dev.sync()
	}
	w.syncDevice()
	return forced
}

// syncDevice holds the (single) log device for the configured fsync latency.
// Counter updates happen before the hold, outside w.mu, so appends from other
// writers are not blocked while the device is busy — only other syncs are,
// which is the real serialization group commit amortizes.
func (w *WAL) syncDevice() {
	if w.syncDelay <= 0 {
		return
	}
	w.syncMu.Lock()
	time.Sleep(w.syncDelay)
	w.syncMu.Unlock()
}

// WALStats is a snapshot of redo-log counters.
type WALStats struct {
	Records      int64
	GroupRecords int64
	GroupedRows  int64
	Bytes        int64
	Commits      int64
	// Syncs is the total number of log syncs from every cause: per-commit
	// syncs (AppendCommit), threshold syncs (AutoSyncs) and group-commit
	// syncs (GroupCommits).  Syncs >= AutoSyncs + GroupCommits always holds;
	// the difference is the plain per-commit syncs.
	Syncs int64
	// AutoSyncs counts syncs forced by the WithWALSync threshold rather than
	// by a commit.
	AutoSyncs int64
	// GroupCommits counts group syncs: SyncGroup calls, each covering one
	// whole commit group.  GroupedCommits is the total number of commits those
	// groups contained and MaxGroupSize the largest single group, so
	// GroupedCommits/GroupCommits is the mean coalescing factor.
	GroupCommits     int64
	GroupedCommits   int64
	MaxGroupSize     int64
	MaxUnsyncedBytes int64

	// Durable-log counters, all zero unless the database was opened with
	// WithWALDir (Durable reports which).  DurableBytes and DurableSyncs count
	// framed bytes appended to and fsyncs issued against the segment files;
	// the Segments/Checkpoints counters track the checkpoint lifecycle; the
	// Replay counters describe the recovery that produced this database (set
	// once by Recover, including ReplayTornTail — the torn/corrupt trailing
	// records tolerated and discarded).
	Durable         bool
	DurableBytes    int64
	DurableSyncs    int64
	SegmentsCreated int64
	SegmentsDeleted int64
	Checkpoints     int64
	ReplayRecords   int64
	ReplayRows      int64
	ReplayBytes     int64
	ReplayTornTail  int64
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	ws := w.statsCounters()
	if dev := w.dev.Load(); dev != nil {
		dev.durableStats(&ws)
	}
	return ws
}

// statsCounters snapshots the counter half of the log under w.mu.
func (w *WAL) statsCounters() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Records:          w.records,
		GroupRecords:     w.groupRecords,
		GroupedRows:      w.groupedRows,
		Bytes:            w.bytes,
		Commits:          w.commits,
		Syncs:            w.syncs,
		AutoSyncs:        w.autoSyncs,
		GroupCommits:     w.groupSyncs,
		GroupedCommits:   w.groupedCommits,
		MaxGroupSize:     w.maxGroupSize,
		MaxUnsyncedBytes: w.maxUnsynced,
	}
}
