package relstore

import "sync"

// WAL models the redo log.  The engine is in-memory, so the log exists for
// cost accounting and for reasoning about the commit-frequency trade-off the
// paper describes in §4.5.2: committing rarely avoids per-commit processing
// but lets redo/undo volume grow between commits.
//
// Like the single redo stream of the production database, the log is one
// shared structure: concurrent writers serialize on its mutex for the few
// nanoseconds of counter arithmetic.
type WAL struct {
	mu             sync.Mutex
	records        int64
	groupRecords   int64
	groupedRows    int64
	bytes          int64
	commits        int64
	bytesSinceSync int64
	maxUnsynced    int64
}

// NewWAL returns an empty redo log.
func NewWAL() *WAL { return &WAL{} }

// AppendInsert records a redo entry of the given payload size and returns the
// number of log bytes written (payload plus a fixed record header).
func (w *WAL) AppendInsert(payloadBytes int) int {
	const header = 28
	n := payloadBytes + header
	w.mu.Lock()
	w.records++
	w.bytes += int64(n)
	w.bytesSinceSync += int64(n)
	if w.bytesSinceSync > w.maxUnsynced {
		w.maxUnsynced = w.bytesSinceSync
	}
	w.mu.Unlock()
	return n
}

// AppendInsertGroup records one redo entry covering a group of n rows with the
// given total payload size and returns the number of log bytes written.  The
// group record carries the fixed record header once plus a small per-row slot
// entry, so a batch of n rows pays one mutex acquisition and one header where
// the row-at-a-time path pays n of each — the redo-volume analogue of the
// paper's batch-size amortization (§4.2).
func (w *WAL) AppendInsertGroup(n, payloadBytes int) int {
	if n <= 0 {
		return 0
	}
	const header = 28
	const slot = 4
	size := payloadBytes + header + n*slot
	w.mu.Lock()
	w.records++
	w.groupRecords++
	w.groupedRows += int64(n)
	w.bytes += int64(size)
	w.bytesSinceSync += int64(size)
	if w.bytesSinceSync > w.maxUnsynced {
		w.maxUnsynced = w.bytesSinceSync
	}
	w.mu.Unlock()
	return size
}

// AppendCommit records a commit marker and a log sync; it returns the number
// of unsynced bytes that the sync had to force to disk.
func (w *WAL) AppendCommit() int64 {
	const marker = 48
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records++
	w.bytes += marker
	w.commits++
	forced := w.bytesSinceSync + marker
	w.bytesSinceSync = 0
	return forced
}

// WALStats is a snapshot of redo-log counters.
type WALStats struct {
	Records          int64
	GroupRecords     int64
	GroupedRows      int64
	Bytes            int64
	Commits          int64
	MaxUnsyncedBytes int64
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Records:          w.records,
		GroupRecords:     w.groupRecords,
		GroupedRows:      w.groupedRows,
		Bytes:            w.bytes,
		Commits:          w.commits,
		MaxUnsyncedBytes: w.maxUnsynced,
	}
}
