package relstore

// scratch holds the reusable buffers of the insert hot path: composite-key
// extraction, key encoding, per-insert unique-key strings and foreign-key
// probes.  PR 1 kept these buffers on the Table, which was safe under the
// discrete-event simulation's single-runner discipline; with real concurrent
// writers (the exec.Realtime scheduler) a shared per-table buffer would be a
// data race, so each transaction now owns a scratch for the goroutine driving
// it.  Scratches are pooled on the DB so the zero-allocation property of the
// row path survives across transactions.
//
// Ownership rule: a scratch is used only by the goroutine that owns the
// transaction holding it.  Buffers returned by its methods are valid until
// the next call of the same method; consumers must encode or copy them first
// (BTree.Insert clones stored keys, hash-map probes use m[string(buf)]).
type scratch struct {
	key  []Value
	enc  []byte
	uniq []string
	fk   []Value
}

// keyOf fills the key buffer with the key columns of row.
func (sc *scratch) keyOf(row Row, cols []int) []Value {
	if cap(sc.key) < len(cols) {
		sc.key = make([]Value, len(cols))
	}
	key := sc.key[:len(cols)]
	for i, c := range cols {
		key[i] = row[c]
	}
	return key
}

// encodeKey encodes key into the reusable byte buffer.  The result is valid
// until the next encodeKey call on this scratch; hash lookups use
// m[string(buf)] (compiled without copying) and only keys that are stored pay
// a string allocation.
func (sc *scratch) encodeKey(key []Value) []byte {
	sc.enc = AppendKey(sc.enc[:0], key)
	return sc.enc
}

// uniqueEncs returns an n-element buffer for encoded unique-constraint keys.
func (sc *scratch) uniqueEncs(n int) []string {
	if cap(sc.uniq) < n {
		sc.uniq = make([]string, n)
	}
	return sc.uniq[:n]
}

// fkKey returns an n-element buffer for a foreign-key probe.
func (sc *scratch) fkKey(n int) []Value {
	if cap(sc.fk) < n {
		sc.fk = make([]Value, n)
	}
	return sc.fk[:n]
}
