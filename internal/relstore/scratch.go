package relstore

import "bytes"

// scratch holds the reusable buffers of the insert hot path: composite-key
// extraction, key encoding, per-insert unique-key strings and foreign-key
// probes.  PR 1 kept these buffers on the Table, which was safe under the
// discrete-event simulation's single-runner discipline; with real concurrent
// writers (the exec.Realtime scheduler) a shared per-table buffer would be a
// data race, so each transaction now owns a scratch for the goroutine driving
// it.  Scratches are pooled on the DB so the zero-allocation property of the
// row path survives across transactions.
//
// Ownership rule: a scratch is used only by the goroutine that owns the
// transaction holding it.  Buffers returned by its methods are valid until
// the next call of the same method; consumers must encode or copy them first
// (BTree.Insert clones stored keys, hash-map probes use m[string(buf)]).
type scratch struct {
	key  []Value
	enc  []byte
	ord  []byte
	uniq []string
	fk   []Value

	// Batch-apply buffers (Txn.InsertBatch).  rows stages the built rows of a
	// batch and ids the row ids assigned to the applied prefix; kvs collects
	// one secondary index's (key, row id) pairs for the sorted bulk merge,
	// with karena as the flat encoded-key arena the kv key slices point into,
	// so a batch costs O(1) scratch allocations per index rather than O(rows).
	// All are reset per batch (per index for the sort buffers); nothing stored
	// in the engine aliases them — heap rows come from a dedicated per-batch
	// arena and the B-tree clones stored keys into its own arena.
	rows   []Row
	ids    []int64
	kvs    []idxKV
	karena []byte
	sortK  []int64
	sortID []int64

	// encBuf/encOffs back the per-batch interning of primary-key and
	// unique-constraint encodings (Table.encodeBatchKeys); parents is the
	// per-batch foreign-key parent lock set (Table.lockParentsForBatch).
	encBuf  []byte
	encOffs []int
	parents []*Table
}

// idxKV pairs one encoded secondary-index key with the row id it points at
// for the per-batch sort.  Keys sort ascending, tie-broken by row id: ids are
// assigned in row order, so the tie-break reproduces the row-id order the
// per-row insert path produces under duplicate keys without needing a stable
// sort.
type idxKV struct {
	key []byte
	id  int64
}

// cmpKV is the idxKV comparator.  The key is an AppendOrderedKey encoding, so
// one bytes.Compare resolves the whole composite ordering; the float- and
// int-leading comparator specializations the []Value layout needed are gone
// because a memcmp is already the fast path.
func cmpKV(a, b idxKV) int {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	}
	return 0
}

// batchRows returns an empty row-staging buffer with capacity for n rows.
func (sc *scratch) batchRows(n int) []Row {
	if cap(sc.rows) < n {
		sc.rows = make([]Row, 0, n)
	}
	return sc.rows[:0]
}

// batchIDs returns an empty row-id buffer with capacity for n ids.
func (sc *scratch) batchIDs(n int) []int64 {
	if cap(sc.ids) < n {
		sc.ids = make([]int64, 0, n)
	}
	return sc.ids[:0]
}

// keyOf fills the key buffer with the key columns of row.
func (sc *scratch) keyOf(row Row, cols []int) []Value {
	if cap(sc.key) < len(cols) {
		sc.key = make([]Value, len(cols))
	}
	key := sc.key[:len(cols)]
	for i, c := range cols {
		key[i] = row[c]
	}
	return key
}

// encodeKey encodes key into the reusable byte buffer.  The result is valid
// until the next encodeKey call on this scratch; hash lookups use
// m[string(buf)] (compiled without copying) and only keys that are stored pay
// a string allocation.
func (sc *scratch) encodeKey(key []Value) []byte {
	sc.enc = AppendKey(sc.enc[:0], key)
	return sc.enc
}

// ordKey encodes key with the order-preserving B-tree encoding into the
// reusable ordered-key buffer.  The result is valid until the next ordKey
// call on this scratch; the B-tree copies stored keys into its own arena, so
// passing the shared buffer to Insert/Delete/Search is safe.
func (sc *scratch) ordKey(key []Value) []byte {
	sc.ord = AppendOrderedKey(sc.ord[:0], key)
	return sc.ord
}

// uniqueEncs returns an n-element buffer for encoded unique-constraint keys.
func (sc *scratch) uniqueEncs(n int) []string {
	if cap(sc.uniq) < n {
		sc.uniq = make([]string, n)
	}
	return sc.uniq[:n]
}

// fkKey returns an n-element buffer for a foreign-key probe.
func (sc *scratch) fkKey(n int) []Value {
	if cap(sc.fk) < n {
		sc.fk = make([]Value, n)
	}
	return sc.fk[:n]
}
