package relstore

// scratch holds the reusable buffers of the insert hot path: composite-key
// extraction, key encoding, per-insert unique-key strings and foreign-key
// probes.  PR 1 kept these buffers on the Table, which was safe under the
// discrete-event simulation's single-runner discipline; with real concurrent
// writers (the exec.Realtime scheduler) a shared per-table buffer would be a
// data race, so each transaction now owns a scratch for the goroutine driving
// it.  Scratches are pooled on the DB so the zero-allocation property of the
// row path survives across transactions.
//
// Ownership rule: a scratch is used only by the goroutine that owns the
// transaction holding it.  Buffers returned by its methods are valid until
// the next call of the same method; consumers must encode or copy them first
// (BTree.Insert clones stored keys, hash-map probes use m[string(buf)]).
type scratch struct {
	key  []Value
	enc  []byte
	uniq []string
	fk   []Value

	// Batch-apply buffers (Txn.InsertBatch).  rows stages the built rows of a
	// batch and ids the row ids assigned to the applied prefix; kvs collects
	// one secondary index's (key, row id) pairs for the sorted bulk merge,
	// with karena as the flat Value arena the kv key slices point into, so a
	// batch costs O(1) scratch allocations per index rather than O(rows).
	// All are reset per batch (per index for the sort buffers); nothing stored
	// in the engine aliases them — heap rows come from a dedicated per-batch
	// arena and the B-tree clones stored keys.
	rows   []Row
	ids    []int64
	kvs    []idxKV
	karena []Value
	sortK  []int64
	sortID []int64

	// encBuf/encOffs back the per-batch interning of primary-key and
	// unique-constraint encodings (Table.encodeBatchKeys); parents is the
	// per-batch foreign-key parent lock set (Table.lockParentsForBatch).
	encBuf  []byte
	encOffs []int
	parents []*Table
}

// idxKV pairs one secondary-index key with the row id it points at for the
// per-batch sort.  Keys sort ascending, tie-broken by row id: ids are
// assigned in row order, so the tie-break reproduces the row-id order the
// per-row insert path produces under duplicate keys without needing a stable
// sort.
type idxKV struct {
	key []Value
	id  int64
}

// cmpKV is the general idxKV comparator.
func cmpKV(a, b idxKV) int {
	if c := CompareKeys(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	}
	return 0
}

// cmpKVFloatFirst orders keys whose leading column is a float (the composite
// (ra, dec, mag) index shape) by resolving the common case — distinct first
// floats — without entering the CompareKeys loop.  Ties (including NaN
// pairs, which CompareValues orders as equal) fall back to the general
// comparator so the order always agrees with CompareKeys.
func cmpKVFloatFirst(a, b idxKV) int {
	av, bv := a.key[0], b.key[0]
	if av.Kind == KindFloat && bv.Kind == KindFloat {
		if av.F < bv.F {
			return -1
		}
		if av.F > bv.F {
			return 1
		}
	}
	return cmpKV(a, b)
}

// batchRows returns an empty row-staging buffer with capacity for n rows.
func (sc *scratch) batchRows(n int) []Row {
	if cap(sc.rows) < n {
		sc.rows = make([]Row, 0, n)
	}
	return sc.rows[:0]
}

// batchIDs returns an empty row-id buffer with capacity for n ids.
func (sc *scratch) batchIDs(n int) []int64 {
	if cap(sc.ids) < n {
		sc.ids = make([]int64, 0, n)
	}
	return sc.ids[:0]
}

// keyOf fills the key buffer with the key columns of row.
func (sc *scratch) keyOf(row Row, cols []int) []Value {
	if cap(sc.key) < len(cols) {
		sc.key = make([]Value, len(cols))
	}
	key := sc.key[:len(cols)]
	for i, c := range cols {
		key[i] = row[c]
	}
	return key
}

// encodeKey encodes key into the reusable byte buffer.  The result is valid
// until the next encodeKey call on this scratch; hash lookups use
// m[string(buf)] (compiled without copying) and only keys that are stored pay
// a string allocation.
func (sc *scratch) encodeKey(key []Value) []byte {
	sc.enc = AppendKey(sc.enc[:0], key)
	return sc.enc
}

// uniqueEncs returns an n-element buffer for encoded unique-constraint keys.
func (sc *scratch) uniqueEncs(n int) []string {
	if cap(sc.uniq) < n {
		sc.uniq = make([]string, n)
	}
	return sc.uniq[:n]
}

// fkKey returns an n-element buffer for a foreign-key probe.
func (sc *scratch) fkKey(n int) []Value {
	if cap(sc.fk) < n {
		sc.fk = make([]Value, n)
	}
	return sc.fk[:n]
}
