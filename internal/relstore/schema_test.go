package relstore

import (
	"strings"
	"testing"
)

// testSchema builds a small parent/child/grandchild schema mirroring the
// frames -> objects -> fingers chain used throughout the paper's examples.
func testSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema(
		&TableSchema{
			Name: "frames",
			Columns: []Column{
				{Name: "frame_id", Type: TypeInt},
				{Name: "exposure", Type: TypeFloat, Nullable: true},
			},
			PrimaryKey: []string{"frame_id"},
		},
		&TableSchema{
			Name: "objects",
			Columns: []Column{
				{Name: "object_id", Type: TypeInt},
				{Name: "frame_id", Type: TypeInt},
				{Name: "mag", Type: TypeFloat},
			},
			PrimaryKey: []string{"object_id"},
			ForeignKeys: []ForeignKey{
				{Name: "fk_obj_frame", Columns: []string{"frame_id"}, RefTable: "frames", RefColumns: []string{"frame_id"}},
			},
			Checks: []CheckConstraint{
				{Name: "ck_mag", Column: "mag", Min: fp(0), Max: fp(40)},
			},
		},
		&TableSchema{
			Name: "fingers",
			Columns: []Column{
				{Name: "finger_id", Type: TypeInt},
				{Name: "object_id", Type: TypeInt},
				{Name: "flux", Type: TypeFloat, Nullable: true},
			},
			PrimaryKey: []string{"finger_id"},
			ForeignKeys: []ForeignKey{
				{Name: "fk_fng_obj", Columns: []string{"object_id"}, RefTable: "objects", RefColumns: []string{"object_id"}},
			},
			Uniques: []UniqueConstraint{{Name: "uq_fng", Columns: []string{"object_id", "flux"}}},
		},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func fp(v float64) *float64 { return &v }

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.NumTables() != 3 {
		t.Fatalf("NumTables = %d", s.NumTables())
	}
	if s.Table("objects") == nil || s.Table("missing") != nil {
		t.Fatal("Table lookup broken")
	}
	if got := s.Table("objects").ColumnIndex("mag"); got != 2 {
		t.Fatalf("ColumnIndex(mag) = %d", got)
	}
	if s.Table("objects").ColumnIndex("nope") != -1 {
		t.Fatal("missing column should return -1")
	}
	names := s.Table("frames").ColumnNames()
	if len(names) != 2 || names[0] != "frame_id" {
		t.Fatalf("ColumnNames = %v", names)
	}
}

func TestSchemaTopologicalOrder(t *testing.T) {
	s := testSchema(t)
	order, err := s.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["frames"] < pos["objects"] && pos["objects"] < pos["fingers"]) {
		t.Fatalf("order %v does not respect parent-before-child", order)
	}
	depth := s.Depth()
	if depth["frames"] != 0 || depth["objects"] != 1 || depth["fingers"] != 2 {
		t.Fatalf("Depth = %v", depth)
	}
}

func TestSchemaParentsChildren(t *testing.T) {
	s := testSchema(t)
	if p := s.Parents("objects"); len(p) != 1 || p[0] != "frames" {
		t.Fatalf("Parents(objects) = %v", p)
	}
	if c := s.Children("objects"); len(c) != 1 || c[0] != "fingers" {
		t.Fatalf("Children(objects) = %v", c)
	}
	if c := s.Children("fingers"); len(c) != 0 {
		t.Fatalf("Children(fingers) = %v", c)
	}
}

func TestSchemaValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		tables []*TableSchema
		substr string
	}{
		{
			"empty name",
			[]*TableSchema{{Name: "", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: []string{"a"}}},
			"empty name",
		},
		{
			"duplicate table",
			[]*TableSchema{
				{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: []string{"a"}},
				{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: []string{"a"}},
			},
			"duplicate table",
		},
		{
			"no columns",
			[]*TableSchema{{Name: "t", PrimaryKey: []string{"a"}}},
			"no columns",
		},
		{
			"no primary key",
			[]*TableSchema{{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}}},
			"no primary key",
		},
		{
			"pk references missing column",
			[]*TableSchema{{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: []string{"b"}}},
			"unknown column",
		},
		{
			"fk references missing table",
			[]*TableSchema{{
				Name:       "t",
				Columns:    []Column{{Name: "a", Type: TypeInt}},
				PrimaryKey: []string{"a"},
				ForeignKeys: []ForeignKey{
					{Name: "fk", Columns: []string{"a"}, RefTable: "gone", RefColumns: []string{"x"}},
				},
			}},
			"unknown table",
		},
		{
			"fk cycle",
			[]*TableSchema{
				{
					Name:       "a",
					Columns:    []Column{{Name: "id", Type: TypeInt}, {Name: "b_id", Type: TypeInt, Nullable: true}},
					PrimaryKey: []string{"id"},
					ForeignKeys: []ForeignKey{
						{Name: "fk_ab", Columns: []string{"b_id"}, RefTable: "b", RefColumns: []string{"id"}},
					},
				},
				{
					Name:       "b",
					Columns:    []Column{{Name: "id", Type: TypeInt}, {Name: "a_id", Type: TypeInt, Nullable: true}},
					PrimaryKey: []string{"id"},
					ForeignKeys: []ForeignKey{
						{Name: "fk_ba", Columns: []string{"a_id"}, RefTable: "a", RefColumns: []string{"id"}},
					},
				},
			},
			"cycle",
		},
	}
	for _, c := range cases {
		_, err := NewSchema(c.tables...)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestSelfReferencingForeignKeyAllowed(t *testing.T) {
	_, err := NewSchema(&TableSchema{
		Name: "nodes",
		Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "parent_id", Type: TypeInt, Nullable: true},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []ForeignKey{
			{Name: "fk_parent", Columns: []string{"parent_id"}, RefTable: "nodes", RefColumns: []string{"id"}},
		},
	})
	if err != nil {
		t.Fatalf("self-referencing FK should be allowed: %v", err)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema(&TableSchema{Name: "t"})
}
