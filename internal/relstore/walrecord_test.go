package relstore

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randWALValue draws one Value covering every kind the row codec must carry,
// including NaN floats (which the index key codec rejects).
func randWALValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Value{} // null
	case 1:
		return Int(rng.Int63() - rng.Int63())
	case 2:
		switch rng.Intn(5) {
		case 0:
			return Float(math.NaN())
		case 1:
			return Float(math.Inf(1))
		case 2:
			return Float(math.Inf(-1))
		case 3:
			return Float(math.Copysign(0, -1))
		default:
			return Float(rng.NormFloat64() * 1e6)
		}
	case 3:
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return Str(string(b))
	case 4:
		return Bool(rng.Intn(2) == 0)
	default:
		return Time(time.Unix(0, rng.Int63()>>10))
	}
}

// walValueEqual compares decoded values against their originals.  NaN must
// round-trip (compared by bits); negative zero is the one float the codec
// canonicalizes (to +0, as the order-preserving encoding requires -0 == +0),
// which is invisible to every comparison and key built from the row.
func walValueEqual(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindFloat:
		if math.IsNaN(a.F) || math.IsNaN(b.F) {
			return math.IsNaN(a.F) && math.IsNaN(b.F) &&
				math.Float64bits(a.F) == math.Float64bits(b.F)
		}
		return a.F == b.F
	case KindString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}

// TestWALRecordRoundTrip is the encode→decode property test: for every record
// type, a decode of the framed encoding yields back exactly what was encoded,
// and every strict prefix of the frame reads as a torn tail, never as a
// record.
func TestWALRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		lsn := rng.Int63n(1 << 40)
		txn := rng.Int63n(1 << 40)
		var payload []byte
		var wantRows []Row
		typ := byte(1 + rng.Intn(3))
		switch typ {
		case walRecInsert:
			tableID := uint32(rng.Intn(8))
			firstID := rng.Int63n(1 << 30)
			wantRows = make([]Row, 1+rng.Intn(4))
			for i := range wantRows {
				row := make(Row, 1+rng.Intn(6))
				for j := range row {
					row[j] = randWALValue(rng)
				}
				wantRows[i] = row
			}
			payload = appendWALInsert(nil, lsn, tableID, txn, firstID, wantRows)
		default:
			payload = appendWALMarker(nil, typ, lsn, txn)
		}
		frame := appendWALFrame(nil, payload)

		got, rest, ok := nextWALFrame(frame)
		if !ok || len(rest) != 0 {
			t.Fatalf("iter %d: framing round-trip failed (ok=%v rest=%d)", iter, ok, len(rest))
		}
		rec, err := decodeWALRecord(got, true, nil)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if rec.typ != typ || rec.lsn != lsn || rec.txnID != txn {
			t.Fatalf("iter %d: header mismatch: %+v", iter, rec)
		}
		if typ == walRecInsert {
			if len(rec.rows) != len(wantRows) || rec.rowCount != len(wantRows) {
				t.Fatalf("iter %d: %d rows decoded, want %d", iter, len(rec.rows), len(wantRows))
			}
			for i, want := range wantRows {
				if len(rec.rows[i]) != len(want) {
					t.Fatalf("iter %d row %d: width %d, want %d", iter, i, len(rec.rows[i]), len(want))
				}
				for j := range want {
					if !walValueEqual(rec.rows[i][j], want[j]) {
						t.Fatalf("iter %d row %d col %d: %+v != %+v", iter, i, j, rec.rows[i][j], want[j])
					}
				}
			}
		}

		// Torn-tail property: no strict prefix of the frame parses.
		for cut := 0; cut < len(frame); cut++ {
			if _, _, ok := nextWALFrame(frame[:cut]); ok {
				t.Fatalf("iter %d: %d-byte prefix of a %d-byte frame parsed as a record", iter, cut, len(frame))
			}
		}
		// Corruption property: no single flipped byte passes the CRC.
		if len(frame) > 0 {
			pos := rng.Intn(len(frame))
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 << uint(rng.Intn(8))
			if p, _, ok := nextWALFrame(mut); ok {
				// A flip inside the length prefix can still frame a shorter,
				// CRC-valid record only if the CRC happens to match — with
				// CRC32 over these payloads it must not.
				t.Fatalf("iter %d: bit flip at %d went undetected (payload %d bytes)", iter, pos, len(p))
			}
		}
	}
}

// FuzzWALRecordDecode asserts the decoder is total: arbitrary bytes never
// panic the frame parser or the record decoder, and valid frames that decode
// re-encode into a frame the parser accepts.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendWALFrame(nil, appendWALMarker(nil, walRecCommit, 1, 7)))
	f.Add(appendWALFrame(nil, appendWALMarker(nil, walRecRollback, 2, 7)))
	f.Add(appendWALFrame(nil, appendWALInsert(nil, 3, 0, 7, 100,
		[]Row{{Int(1), Float(math.NaN()), Str("x"), Value{}}})))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for {
			payload, rest, ok := nextWALFrame(buf)
			if !ok {
				break
			}
			if _, err := decodeWALRecord(payload, true, nil); err == nil {
				// Valid records must survive a re-encode of their frame.
				if _, _, ok := nextWALFrame(appendWALFrame(nil, payload)); !ok {
					t.Fatal("re-framed valid payload rejected")
				}
			}
			// Width enforcement must be just as total.
			_, _ = decodeWALRecord(payload, true, func(uint32) (int, bool) { return 3, true })
			_, _ = decodeWALRecord(payload, false, nil)
			buf = rest
		}
	})
}

// BenchmarkWALReplay measures crash-recovery throughput over a log of small
// transactions, with and without a checkpoint bounding the replayed suffix.
func BenchmarkWALReplay(b *testing.B) {
	const frames, objsPerFrame = 64, 50
	build := func(b *testing.B, checkpoint bool) (string, *Schema) {
		b.Helper()
		dir := b.TempDir()
		schema := testSchema(b)
		db, err := Open(schema, WithWALDir(dir))
		if err != nil {
			b.Fatal(err)
		}
		for f := int64(1); f <= frames; f++ {
			txn, err := db.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := txn.Insert("frames", []string{"frame_id", "exposure"},
				[]Value{Int(f), Float(1.5)}); err != nil {
				b.Fatal(err)
			}
			rows := make([][]Value, 0, objsPerFrame)
			for o := int64(0); o < objsPerFrame; o++ {
				rows = append(rows, []Value{Int(f*1000 + o), Int(f), Float(float64(o % 30))})
			}
			if _, err := txn.InsertBatch("objects", []string{"object_id", "frame_id", "mag"}, rows); err != nil {
				b.Fatal(err)
			}
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
			if checkpoint && f == frames {
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return dir, schema
	}
	for _, bc := range []struct {
		name       string
		checkpoint bool
	}{
		{"log-only", false},
		{"checkpointed", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir, schema := build(b, bc.checkpoint)
			totalRows := int64(frames * (1 + objsPerFrame))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, rep, err := Recover(schema, dir)
				if err != nil {
					b.Fatal(err)
				}
				if rep.ReplayedRows+rep.CheckpointRows != totalRows {
					b.Fatalf("recovered %d rows, want %d", rep.ReplayedRows+rep.CheckpointRows, totalRows)
				}
				if err := got.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(totalRows*int64(b.N))/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
