package relstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Durable WAL record format.  Every record on disk is framed as
//
//	[u32 payload length][u32 CRC32-IEEE of payload][payload]
//
// (little-endian), and every payload starts with a one-byte record type and
// the record's LSN:
//
//	insert   = 0x01 | lsn u64 | tableID u32 | txnID u64 | firstID u64 |
//	           rowCount u32 | rowCount x (rowLen u32 | row bytes)
//	commit   = 0x02 | lsn u64 | txnID u64
//	rollback = 0x03 | lsn u64 | txnID u64
//
// Row payloads reuse the order-preserving value encoding of ordkey.go
// (appendOrderedValue) over the full schema-ordered row, with one extension:
// NaN floats — which the key encoding rejects because no total byte order can
// place them — are stored under a WAL-only tag so the redo stream can carry
// any row the heap can.  LSNs increase by one per record across the whole
// log; segment files are named by the LSN of their first record, and replay
// verifies the continuity.
//
// The decoder is total: decodeWALRecord returns an error (never panics) for
// any byte string that is not a canonical encoding, which FuzzWALRecordDecode
// exercises.  Framing errors — short header, oversized length, truncated
// payload, CRC mismatch — are how torn tails present; they are distinguished
// from post-CRC semantic corruption by the segment reader in recover.go.

const (
	walRecInsert   = 0x01
	walRecCommit   = 0x02
	walRecRollback = 0x03

	// walTagNaN is the WAL-row-codec-only value tag for NaN floats; it does
	// not collide with the ordkey tag space (0x00-0x05) and never appears in
	// index keys.
	walTagNaN = 0x06

	// walFrameHeader is the length+CRC framing prefix of every record.
	walFrameHeader = 8

	// maxWALRecordBytes bounds a single record's payload; a length prefix
	// above it is treated as a torn/corrupt tail rather than honored as an
	// allocation request.
	maxWALRecordBytes = 64 << 20
)

// walInsertRecordLimit is the payload budget the append path chunks insert
// records under, so nothing legitimately written is later rejected by
// nextWALFrame's maxWALRecordBytes check.  A variable only so tests can
// exercise the chunking without building multi-megabyte rows.
var walInsertRecordLimit = maxWALRecordBytes

// ErrWALCorrupt reports a WAL or checkpoint byte string that is not a
// canonical record encoding.
var ErrWALCorrupt = errors.New("relstore: corrupt WAL record")

// walRecord is a decoded durable log record.
type walRecord struct {
	typ     byte
	lsn     int64
	tableID uint32
	txnID   int64
	firstID int64
	// rows holds the decoded row payloads of an insert record; nil when the
	// decode was asked to skip them (the commit-collection pass).
	rows []Row
	// rowCount is the row count of an insert record, valid even when rows
	// were skipped.
	rowCount int
}

// appendWALFrame frames a payload (length prefix + CRC) onto dst.
func appendWALFrame(dst, payload []byte) []byte {
	var h [walFrameHeader]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// appendWALInsert encodes an insert record payload covering rows stored with
// contiguous ids starting at firstID.
func appendWALInsert(dst []byte, lsn int64, tableID uint32, txnID, firstID int64, rows []Row) []byte {
	dst = append(dst, walRecInsert)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lsn))
	dst = binary.LittleEndian.AppendUint32(dst, tableID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(txnID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(firstID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	for _, row := range rows {
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = appendWALRow(dst, row)
		binary.LittleEndian.PutUint32(dst[lenAt:lenAt+4], uint32(len(dst)-lenAt-4))
	}
	return dst
}

// appendWALInsertBounded encodes an insert record payload covering as many
// leading rows as fit within walInsertRecordLimit, returning the extended
// buffer and the number of rows encoded (always >= 1 when rows is non-empty).
// The caller loops, re-invoking with the remainder under fresh LSNs, so an
// arbitrarily large batch becomes several valid records instead of one frame
// recovery would reject as corrupt.  A single row whose encoding alone
// exceeds the limit cannot be represented in the log at all and panics at
// append time rather than poisoning the log with an unreadable record.
func appendWALInsertBounded(dst []byte, lsn int64, tableID uint32, txnID, firstID int64, rows []Row) ([]byte, int) {
	base := len(dst)
	dst = append(dst, walRecInsert)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lsn))
	dst = binary.LittleEndian.AppendUint32(dst, tableID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(txnID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(firstID))
	countAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	n := 0
	for _, row := range rows {
		mark := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = appendWALRow(dst, row)
		if len(dst)-base > walInsertRecordLimit {
			if n == 0 {
				panic(fmt.Sprintf("relstore: row encodes to %d bytes, exceeding the %d-byte WAL record limit",
					len(dst)-mark-4, walInsertRecordLimit))
			}
			dst = dst[:mark]
			break
		}
		binary.LittleEndian.PutUint32(dst[mark:mark+4], uint32(len(dst)-mark-4))
		n++
	}
	binary.LittleEndian.PutUint32(dst[countAt:countAt+4], uint32(n))
	return dst, n
}

// appendWALMarker encodes a commit or rollback marker payload.
func appendWALMarker(dst []byte, typ byte, lsn, txnID int64) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lsn))
	return binary.LittleEndian.AppendUint64(dst, uint64(txnID))
}

// appendWALRow encodes one full schema-ordered row with the order-preserving
// value encoding, extended with the NaN tag.
func appendWALRow(dst []byte, row Row) []byte {
	for _, v := range row {
		if v.Kind == KindFloat && math.IsNaN(v.F) {
			dst = append(dst, walTagNaN)
			dst = appendOrderedUint64(dst, math.Float64bits(v.F))
			continue
		}
		dst = appendOrderedValue(dst, v)
	}
	return dst
}

// decodeWALRow decodes a row payload; wantCols is the owning table's column
// count (decoded rows must match it exactly).
func decodeWALRow(enc []byte, wantCols int) (Row, error) {
	row := make(Row, 0, wantCols)
	for len(enc) > 0 {
		if enc[0] == walTagNaN {
			if len(enc) < 9 {
				return nil, fmt.Errorf("%w: truncated NaN payload", ErrWALCorrupt)
			}
			f := math.Float64frombits(decodeOrderedUint64(enc[1:9]))
			if !math.IsNaN(f) {
				return nil, fmt.Errorf("%w: non-NaN bits under NaN tag", ErrWALCorrupt)
			}
			row = append(row, Value{Kind: KindFloat, F: f})
			enc = enc[9:]
			continue
		}
		v, rest, err := decodeOrderedValue(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
		}
		row = append(row, v)
		enc = rest
	}
	if len(row) != wantCols {
		return nil, fmt.Errorf("%w: row has %d values, table has %d columns", ErrWALCorrupt, len(row), wantCols)
	}
	return row, nil
}

// walRowWidth reports the column count decodeWALRecord should enforce for a
// table id; Recover passes the schema's widths, the fuzz target passes nil
// (any width accepted).
type walRowWidth func(tableID uint32) (int, bool)

// decodeWALRecord decodes one framed-and-verified payload.  With decodeRows
// false the row payloads of insert records are counted but not materialized —
// the cheap first pass that only collects txn outcomes.  widthOf, when
// non-nil, validates table ids and row widths against the schema.
func decodeWALRecord(payload []byte, decodeRows bool, widthOf walRowWidth) (walRecord, error) {
	var rec walRecord
	if len(payload) < 9 {
		return rec, fmt.Errorf("%w: %d-byte payload", ErrWALCorrupt, len(payload))
	}
	rec.typ = payload[0]
	rec.lsn = int64(binary.LittleEndian.Uint64(payload[1:9]))
	if rec.lsn < 0 {
		return rec, fmt.Errorf("%w: negative LSN", ErrWALCorrupt)
	}
	body := payload[9:]
	switch rec.typ {
	case walRecCommit, walRecRollback:
		if len(body) != 8 {
			return rec, fmt.Errorf("%w: marker body %d bytes", ErrWALCorrupt, len(body))
		}
		rec.txnID = int64(binary.LittleEndian.Uint64(body))
		return rec, nil
	case walRecInsert:
		if len(body) < 24 {
			return rec, fmt.Errorf("%w: insert body %d bytes", ErrWALCorrupt, len(body))
		}
		rec.tableID = binary.LittleEndian.Uint32(body[0:4])
		rec.txnID = int64(binary.LittleEndian.Uint64(body[4:12]))
		rec.firstID = int64(binary.LittleEndian.Uint64(body[12:20]))
		n := binary.LittleEndian.Uint32(body[20:24])
		if n > maxWALRecordBytes/4 {
			return rec, fmt.Errorf("%w: insert row count %d", ErrWALCorrupt, n)
		}
		if rec.firstID < 0 {
			return rec, fmt.Errorf("%w: negative first row id", ErrWALCorrupt)
		}
		rec.rowCount = int(n)
		wantCols := -1
		if widthOf != nil {
			w, ok := widthOf(rec.tableID)
			if !ok {
				return rec, fmt.Errorf("%w: unknown table id %d", ErrWALCorrupt, rec.tableID)
			}
			wantCols = w
		}
		body = body[24:]
		if decodeRows {
			rec.rows = make([]Row, 0, n)
		}
		for i := uint32(0); i < n; i++ {
			if len(body) < 4 {
				return rec, fmt.Errorf("%w: truncated row length", ErrWALCorrupt)
			}
			rl := binary.LittleEndian.Uint32(body[0:4])
			body = body[4:]
			if uint32(len(body)) < rl {
				return rec, fmt.Errorf("%w: row payload %d bytes, want %d", ErrWALCorrupt, len(body), rl)
			}
			if decodeRows {
				want := wantCols
				if want < 0 {
					// No schema (fuzz target): accept any width by decoding
					// first and trusting the count.
					row, err := decodeWALRowAnyWidth(body[:rl])
					if err != nil {
						return rec, err
					}
					rec.rows = append(rec.rows, row)
				} else {
					row, err := decodeWALRow(body[:rl], want)
					if err != nil {
						return rec, err
					}
					rec.rows = append(rec.rows, row)
				}
			}
			body = body[rl:]
		}
		if len(body) != 0 {
			return rec, fmt.Errorf("%w: %d trailing bytes after insert rows", ErrWALCorrupt, len(body))
		}
		return rec, nil
	default:
		return rec, fmt.Errorf("%w: unknown record type 0x%02x", ErrWALCorrupt, rec.typ)
	}
}

// decodeWALRowAnyWidth decodes a row without a schema width to enforce.
func decodeWALRowAnyWidth(enc []byte) (Row, error) {
	var row Row
	for len(enc) > 0 {
		if enc[0] == walTagNaN {
			if len(enc) < 9 {
				return nil, fmt.Errorf("%w: truncated NaN payload", ErrWALCorrupt)
			}
			f := math.Float64frombits(decodeOrderedUint64(enc[1:9]))
			if !math.IsNaN(f) {
				return nil, fmt.Errorf("%w: non-NaN bits under NaN tag", ErrWALCorrupt)
			}
			row = append(row, Value{Kind: KindFloat, F: f})
			enc = enc[9:]
			continue
		}
		v, rest, err := decodeOrderedValue(enc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
		}
		row = append(row, v)
		enc = rest
	}
	return row, nil
}

// nextWALFrame parses one framed record off the front of buf.  It returns the
// payload and the remaining bytes, or ok == false when buf ends in a torn or
// corrupt frame (short header, oversized length, truncated payload, CRC
// mismatch) — the conditions a crash mid-append produces.
func nextWALFrame(buf []byte) (payload, rest []byte, ok bool) {
	if len(buf) < walFrameHeader {
		return nil, buf, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxWALRecordBytes {
		return nil, buf, false
	}
	crc := binary.LittleEndian.Uint32(buf[4:8])
	body := buf[walFrameHeader:]
	if uint32(len(body)) < n {
		return nil, buf, false
	}
	payload = body[:n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, buf, false
	}
	return payload, body[n:], true
}
