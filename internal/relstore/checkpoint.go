package relstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoints bound replay time: DB.Checkpoint snapshots the committed table
// state into a checkpoint file and deletes the log segments the snapshot
// covers, so Recover replays only the records appended since.
//
// Ordering rules (also documented in PERFORMANCE.md):
//
//  1. All table locks are taken (children before parents, the same nesting
//     order the batch-apply path uses) and the snapshot is refused while any
//     table holds uncommitted rows — so the captured heap is exactly the
//     committed state, and every commit marker covering it is already in the
//     log.
//  2. The log rotates BEFORE the snapshot is encoded: the sealed segments are
//     flushed and fsynced, fixing the checkpoint LSN boundary; everything at
//     or below it will be superseded by the checkpoint file.
//  3. The checkpoint file is written to a temp name, fsynced, renamed into
//     place and the directory fsynced — a crash leaves either the old state
//     or a complete new checkpoint, never a partial one.
//  4. Only after the rename is durable are dead segments deleted.  A crash
//     between 3 and 4 leaves stale segments that Recover skips by LSN.
//
// Checkpoint files reuse the WAL record framing (length + CRC32 + payload)
// after an 8-byte magic, with their own payload types.

const (
	ckptMagic = "SKYCKPT1"

	ckptRecHeader = 0x10 // seq u64 | lsn u64 | maxTxn u64 | tableCount u32
	ckptRecTable  = 0x11 // tableID u32 | nextRow u64 | liveRows u64
	ckptRecRows   = 0x12 // tableID u32 | count u32 | count x (id u64 | rowLen u32 | row)
	ckptRecEnd    = 0x13 // (empty)

	// ckptRowsPerRecord chunks table rows so no single record outgrows the
	// frame limit.
	ckptRowsPerRecord = 512
)

// ErrNoWALDir reports a durability operation on a database opened without
// WithWALDir.
var ErrNoWALDir = errors.New("relstore: no WAL directory configured")

// ErrCheckpointBusy reports a checkpoint attempt while transactions hold
// uncommitted rows; the caller should retry after they settle.
var ErrCheckpointBusy = errors.New("relstore: checkpoint refused: uncommitted rows in flight")

// Checkpoint snapshots the committed state of every table into a checkpoint
// file and truncates the log segments it supersedes.  It fails with
// ErrNoWALDir when the database has no durable WAL and ErrCheckpointBusy when
// any transaction holds uncommitted rows (retry after commits settle; the
// automatic WithCheckpointEvery trigger simply skips such attempts).
func (db *DB) Checkpoint() error {
	dev := db.wal.dev.Load()
	if dev == nil {
		return ErrNoWALDir
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	// A crash between creating and renaming a previous checkpoint's temp file
	// leaves an orphan recovery never reads; reclaim it here.
	removeStaleCkptTemps(db.cfg.WALDir)

	// Lock children before parents — the same nesting order the batch-apply
	// path uses (child write lock, then parent read locks) — so a concurrent
	// batch and a checkpoint cannot deadlock.
	tables := db.tablesLockOrder()
	for _, t := range tables {
		t.mu.Lock()
	}
	unlock := func() {
		for i := len(tables) - 1; i >= 0; i-- {
			tables[i].mu.Unlock()
		}
	}
	for _, t := range tables {
		if t.pendingRows.Load() > 0 {
			unlock()
			return ErrCheckpointBusy
		}
	}

	// With no rows pending, every row in the heaps is committed and its commit
	// marker is already appended (markers precede epoch settling), so rotating
	// here puts the whole snapshot's history at or below the boundary.
	boundary, covered := dev.rotateForCheckpoint()
	seq := db.ckptSeq + 1
	buf := encodeCheckpoint(seq, boundary, db.nextTxn.Load(), db.tablesByID)
	unlock()

	if err := dev.callFault(FPCheckpointSave); err != nil {
		return fmt.Errorf("relstore: checkpoint save: %w", err)
	}
	if err := writeCheckpointFile(db.cfg.WALDir, seq, buf); err != nil {
		return err
	}
	db.ckptSeq = seq
	// Only now — the rename is durable — do the sealed bytes stop counting
	// toward the next auto-checkpoint; a failed write above leaves the
	// threshold armed so the next trigger retries promptly.
	dev.noteCheckpointDurable(covered)

	if err := dev.callFault(FPCheckpointTruncate); err != nil {
		// The checkpoint itself is durable; only segment cleanup failed, and
		// the next checkpoint (or Recover) tolerates the stale segments.
		return fmt.Errorf("relstore: checkpoint truncate: %w", err)
	}
	if _, err := dev.deleteSegmentsBelow(boundary); err != nil {
		return fmt.Errorf("relstore: checkpoint truncate: %w", err)
	}
	// Older checkpoint files are dead too: the new one supersedes them.
	seqs, err := listCheckpoints(db.cfg.WALDir)
	if err == nil {
		for _, s := range seqs {
			if s < seq {
				_ = os.Remove(filepath.Join(db.cfg.WALDir, ckptName(s)))
			}
		}
	}
	return nil
}

// maybeAutoCheckpoint runs a best-effort checkpoint when the
// WithCheckpointEvery byte threshold has been crossed.  Called after commits;
// a busy refusal (uncommitted rows elsewhere) just waits for a later commit.
func (db *DB) maybeAutoCheckpoint() {
	dev := db.wal.dev.Load()
	if dev == nil || !dev.shouldCheckpoint(db.cfg.CheckpointEveryBytes) {
		return
	}
	if err := db.Checkpoint(); err != nil && !errors.Is(err, ErrCheckpointBusy) {
		panic(fmt.Sprintf("relstore: auto checkpoint: %v", err))
	}
}

// tablesLockOrder returns every table in child-before-parent order (reverse
// topological), matching the lock nesting of the batch-apply path.
func (db *DB) tablesLockOrder() []*Table {
	names, err := db.schema.TopologicalOrder()
	if err != nil {
		// The schema was validated acyclic at construction; fall back to
		// declaration order if that ever changes.
		names = db.schema.TableNames()
	}
	out := make([]*Table, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		out = append(out, db.tables[names[i]])
	}
	return out
}

// encodeCheckpoint renders the snapshot into framed checkpoint records.  The
// caller holds every table's write lock.
func encodeCheckpoint(seq, boundary, maxTxn int64, tables []*Table) []byte {
	var buf, payload []byte
	buf = append(buf, ckptMagic...)

	payload = append(payload[:0], ckptRecHeader)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(seq))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(boundary))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(maxTxn))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(tables)))
	buf = appendWALFrame(buf, payload)

	for tid, t := range tables {
		payload = append(payload[:0], ckptRecTable)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(tid))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(t.nextRow))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(t.rows.live))
		buf = appendWALFrame(buf, payload)

		count := 0
		var rowsPayload []byte
		flush := func() {
			if count == 0 {
				return
			}
			payload = append(payload[:0], ckptRecRows)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(tid))
			payload = binary.LittleEndian.AppendUint32(payload, uint32(count))
			payload = append(payload, rowsPayload...)
			buf = appendWALFrame(buf, payload)
			count = 0
			rowsPayload = rowsPayload[:0]
		}
		for id, loc := range t.rows.locs {
			if loc.pageIdx < 0 {
				continue
			}
			row := t.heap.get(loc)
			if row == nil {
				continue
			}
			rowsPayload = binary.LittleEndian.AppendUint64(rowsPayload, uint64(id))
			lenAt := len(rowsPayload)
			rowsPayload = append(rowsPayload, 0, 0, 0, 0)
			rowsPayload = appendWALRow(rowsPayload, row)
			binary.LittleEndian.PutUint32(rowsPayload[lenAt:lenAt+4], uint32(len(rowsPayload)-lenAt-4))
			count++
			if count >= ckptRowsPerRecord {
				flush()
			}
		}
		flush()
	}
	buf = appendWALFrame(buf, []byte{ckptRecEnd})
	return buf
}

// removeStaleCkptTemps deletes checkpoint temp files left behind by a crash
// between create and rename.  Recovery never reads them (a checkpoint exists
// only once renamed into place), so without this sweep they accumulate
// forever.  Best-effort: a failure here only delays reclamation.
func removeStaleCkptTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// writeCheckpointFile persists the encoded snapshot atomically: temp file,
// fsync, rename, directory fsync.
func writeCheckpointFile(dir string, seq int64, buf []byte) error {
	tmp := filepath.Join(dir, ckptName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName(seq))); err != nil {
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	if err := syncWALDir(dir); err != nil {
		return fmt.Errorf("relstore: checkpoint: %w", err)
	}
	return nil
}

// checkpointState is a decoded checkpoint file.
type checkpointState struct {
	seq     int64
	lsn     int64
	maxTxn  int64
	nextRow []int64   // per tableID
	rows    []int64   // expected live rows per tableID
	ids     [][]int64 // row ids per tableID
	data    [][]Row   // rows per tableID
}

// readCheckpointFile parses and validates a checkpoint file.  Any framing or
// semantic error is a hard failure: rename-into-place means a present file
// must be complete.
func readCheckpointFile(path string, widthOf walRowWidth) (*checkpointState, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < len(ckptMagic) || string(buf[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: checkpoint magic", ErrWALCorrupt)
	}
	buf = buf[len(ckptMagic):]

	st := &checkpointState{}
	sawHeader, sawEnd := false, false
	for len(buf) > 0 && !sawEnd {
		payload, rest, ok := nextWALFrame(buf)
		if !ok {
			return nil, fmt.Errorf("%w: torn checkpoint record", ErrWALCorrupt)
		}
		buf = rest
		if len(payload) == 0 {
			return nil, fmt.Errorf("%w: empty checkpoint record", ErrWALCorrupt)
		}
		typ, body := payload[0], payload[1:]
		switch typ {
		case ckptRecHeader:
			if sawHeader || len(body) != 28 {
				return nil, fmt.Errorf("%w: checkpoint header", ErrWALCorrupt)
			}
			sawHeader = true
			st.seq = int64(binary.LittleEndian.Uint64(body[0:8]))
			st.lsn = int64(binary.LittleEndian.Uint64(body[8:16]))
			st.maxTxn = int64(binary.LittleEndian.Uint64(body[16:24]))
			n := binary.LittleEndian.Uint32(body[24:28])
			if n > 1<<16 {
				return nil, fmt.Errorf("%w: checkpoint table count %d", ErrWALCorrupt, n)
			}
			st.nextRow = make([]int64, n)
			st.rows = make([]int64, n)
			st.ids = make([][]int64, n)
			st.data = make([][]Row, n)
		case ckptRecTable:
			if !sawHeader || len(body) != 20 {
				return nil, fmt.Errorf("%w: checkpoint table record", ErrWALCorrupt)
			}
			tid := binary.LittleEndian.Uint32(body[0:4])
			if int(tid) >= len(st.nextRow) {
				return nil, fmt.Errorf("%w: checkpoint table id %d", ErrWALCorrupt, tid)
			}
			st.nextRow[tid] = int64(binary.LittleEndian.Uint64(body[4:12]))
			st.rows[tid] = int64(binary.LittleEndian.Uint64(body[12:20]))
		case ckptRecRows:
			if !sawHeader || len(body) < 8 {
				return nil, fmt.Errorf("%w: checkpoint rows record", ErrWALCorrupt)
			}
			tid := binary.LittleEndian.Uint32(body[0:4])
			if int(tid) >= len(st.ids) {
				return nil, fmt.Errorf("%w: checkpoint rows table id %d", ErrWALCorrupt, tid)
			}
			count := binary.LittleEndian.Uint32(body[4:8])
			body = body[8:]
			want := -1
			if widthOf != nil {
				w, ok := widthOf(tid)
				if !ok {
					return nil, fmt.Errorf("%w: checkpoint rows unknown table %d", ErrWALCorrupt, tid)
				}
				want = w
			}
			for i := uint32(0); i < count; i++ {
				if len(body) < 12 {
					return nil, fmt.Errorf("%w: truncated checkpoint row", ErrWALCorrupt)
				}
				id := int64(binary.LittleEndian.Uint64(body[0:8]))
				rl := binary.LittleEndian.Uint32(body[8:12])
				body = body[12:]
				if uint32(len(body)) < rl || id < 0 {
					return nil, fmt.Errorf("%w: truncated checkpoint row payload", ErrWALCorrupt)
				}
				var row Row
				if want >= 0 {
					row, err = decodeWALRow(body[:rl], want)
				} else {
					row, err = decodeWALRowAnyWidth(body[:rl])
				}
				if err != nil {
					return nil, err
				}
				st.ids[tid] = append(st.ids[tid], id)
				st.data[tid] = append(st.data[tid], row)
				body = body[rl:]
			}
			if len(body) != 0 {
				return nil, fmt.Errorf("%w: trailing checkpoint row bytes", ErrWALCorrupt)
			}
		case ckptRecEnd:
			sawEnd = true
		default:
			return nil, fmt.Errorf("%w: checkpoint record type 0x%02x", ErrWALCorrupt, typ)
		}
	}
	if !sawHeader || !sawEnd {
		return nil, fmt.Errorf("%w: incomplete checkpoint file", ErrWALCorrupt)
	}
	for tid := range st.ids {
		if int64(len(st.ids[tid])) != st.rows[tid] {
			return nil, fmt.Errorf("%w: checkpoint table %d holds %d rows, header says %d",
				ErrWALCorrupt, tid, len(st.ids[tid]), st.rows[tid])
		}
	}
	return st, nil
}
