package relstore

import (
	"bytes"
	"fmt"
	"runtime"
	"slices"
)

// This file implements the batch-apply insert path: one Txn.InsertBatch call
// applies a whole loader batch through the storage engine with per-batch
// instead of per-row synchronization.  The paper's core claim is that bulk
// loading wins by amortizing per-row costs across batches (§4.2); the per-row
// path (DB.insert) pays a table-lock round trip, a WAL mutex+append, lock
// manager bookkeeping, and a top-down B-tree descent for every row, and this
// path pays each of those once per batch instead:
//
//   - every row is coerced up front, before any lock is taken;
//   - the table's write lock is taken once for the whole batch (or once per
//     sub-chunk under WithBatchLockChunk's reader-friendly mode, which trades
//     a few extra lock round trips for bounded reader wait);
//   - one group WAL record (WAL.AppendInsertGroup) replaces n mutexed appends;
//   - lock-manager row locks are registered in one LockRows call;
//   - secondary indexes are maintained by a sorted bulk merge: the batch's
//     keys are collected into pooled scratch slices, sorted, and inserted via
//     the leaf-aware BTree.InsertSorted sequential pass;
//   - the commit-epoch pending counter moves once per batch.
//
// Semantics are identical to calling Txn.Insert once per row (the property
// test in batch_test.go enforces this): rows are validated in order with JDBC
// first-failure semantics — rows before the failing row are applied and stay
// applied, the failing row and everything after it are not — and the same
// constraint is reported for the same failing row, including intra-batch
// duplicate keys and foreign keys satisfied by earlier rows of the same batch.
//
// The discrete-event cost model deliberately does NOT use this path: the §5
// virtual-time figures are calibrated against per-row physical work, so the
// sqlbatch server keeps the per-row loop under the DES scheduler and routes
// only wall-clock execution through InsertBatch (see sqlbatch.Server.execBatch).

// BatchReport describes the outcome of one InsertBatch call.
type BatchReport struct {
	// Report is the engine's physical-work report for the whole call.
	Report OpReport
	// RowsInserted is the number of rows applied (all of them when the error
	// is nil).
	RowsInserted int
	// FailedIndex is the zero-based index of the first failing row, or -1
	// when every row was applied.  Rows before FailedIndex are applied; the
	// failing row and all rows after it are not.
	FailedIndex int
}

// InsertBatch validates and stores a batch of rows in the named table with
// per-batch amortized locking, logging and index maintenance.  columns
// selects which attributes the values of every row correspond to;
// unspecified columns are NULL.  On a constraint violation the rows before
// the offender remain applied and the violation is returned together with
// the offender's index (JDBC batch-update semantics, matching a loop of
// Insert calls that stops at the first error).
func (t *Txn) InsertBatch(table string, columns []string, rows [][]Value) (BatchReport, error) {
	if !t.active {
		return BatchReport{FailedIndex: 0}, ErrTxnNotActive
	}
	return t.db.insertBatch(t, table, columns, rows)
}

// insertBatch validates and stores a batch of rows on behalf of txn.
func (db *DB) insertBatch(txn *Txn, tableName string, columns []string, rows [][]Value) (BatchReport, error) {
	res := BatchReport{FailedIndex: -1}
	if len(rows) == 0 {
		return res, nil
	}
	t, ok := db.tables[tableName]
	if !ok {
		db.counters.rowsRejected.Add(1)
		db.recordViolationKind(KindUnknownTable)
		res.FailedIndex = 0
		return res, &ConstraintError{Kind: KindUnknownTable, Table: tableName}
	}
	sc := txn.sc
	rep := &res.Report

	// Phase 1: coerce every row up front.  Coercion touches only the
	// immutable schema, so the whole batch is type-checked before any lock is
	// taken; a coercion failure at row i still lets rows 0..i-1 proceed.
	built, buildErr := t.buildRowsBatch(sc, columns, rows)

	// Phase 2: apply the coerced prefix under one table-lock hold.  The
	// pending count rises for the whole batch before any row becomes visible
	// and the unapplied remainder is returned afterwards — over-approximating
	// the uncommitted-visibility window is safe (see DB.insert), while
	// under-approximating it would let snapshot readers cache dirty reads.
	t.pendingRows.Add(int64(len(rows)))
	inserted, firstPage, lastPage, applyErr := t.insertBatchLocked(db, txn, built, rep)
	t.pendingRows.Add(-int64(len(rows) - inserted))

	// applyErr, when set, failed at row `inserted`; otherwise a phase-1
	// build error failed at row len(built) == inserted, with every built row
	// applied.  Either way the failing index is the first unapplied row.
	err := applyErr
	if err == nil {
		err = buildErr
	}
	res.RowsInserted = inserted
	if err != nil {
		res.FailedIndex = inserted
		db.recordViolation(err)
	}
	if inserted == 0 {
		return res, err
	}

	// Per-batch lock, log and cache accounting — once, not once per row.
	other, lockErr := db.locks.LockRows(txn.id, tableName, inserted)
	if lockErr != nil {
		// Rows are stored; a lock accounting failure indicates misuse of the
		// transaction, which we surface loudly (as DB.insert does).
		panic(lockErr)
	}
	if other > 0 {
		db.counters.lockConflicts.Add(1)
	}
	rep.LogBytes += db.wal.AppendInsertGroup(inserted, rep.RowBytes+rep.IndexEntryBytes)
	for p := firstPage; p <= lastPage; p++ {
		miss, _ := db.cache.Touch(tableName, p, true)
		if miss {
			rep.CacheMisses++
		}
	}
	if _, scanned, flushed := db.cache.MaybeFlushDirty(db.cfg.DirtyFlushPages); flushed {
		rep.CacheScanPages += scanned
	}
	db.counters.rowsInserted.Add(int64(inserted))
	db.counters.indexSplits.Add(int64(rep.IndexSplits))
	return res, err
}

// buildRowsBatch resolves the column list once and coerces every row of the
// batch onto full schema-ordered rows.  The returned rows are carved out of
// one arena allocation, since the heap retains them for the life of the
// table; a per-row allocation here would put the n mallocs the batch path
// exists to amortize right back.  On error the returned prefix holds the
// rows built before the failure (its length is the failing index).
func (t *Table) buildRowsBatch(sc *scratch, columns []string, rows [][]Value) ([]Row, error) {
	ncols := len(t.schema.Columns)
	colIdxs := make([]int, len(columns))
	kinds := make([]ValueKind, len(columns))
	for i, col := range columns {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 {
			// The per-row path fails every row on an unknown column, so the
			// batch fails at row 0 with nothing applied.
			return nil, &ConstraintError{Kind: KindArity, Table: t.schema.Name, Column: col,
				Detail: "unknown column"}
		}
		colIdxs[i] = idx
		kinds[i] = canonicalKind(t.schema.Columns[idx].Type)
	}
	built := sc.batchRows(len(rows))
	arena := make([]Value, len(rows)*ncols)
	for _, vals := range rows {
		if len(vals) != len(columns) {
			return built, &ConstraintError{Kind: KindArity, Table: t.schema.Name,
				Detail: fmt.Sprintf("%d columns but %d values", len(columns), len(vals))}
		}
		row := Row(arena[:ncols:ncols])
		arena = arena[ncols:]
		for i, idx := range colIdxs {
			// Column kinds are resolved once per batch, so the common case —
			// the transformer emits exact types — is a tag compare instead of
			// a Coerce call per value.
			if v := vals[i]; v.Kind == kinds[i] {
				row[idx] = v
				continue
			}
			v, err := Coerce(vals[i], t.schema.Columns[idx].Type)
			if err != nil {
				return built, &ConstraintError{Kind: KindType, Table: t.schema.Name,
					Column: columns[i], Detail: err.Error()}
			}
			row[idx] = v
		}
		built = append(built, row)
	}
	return built, nil
}

// canonicalKind returns the value kind Coerce normalizes column type t to.
func canonicalKind(t ColType) ValueKind {
	switch t {
	case TypeInt:
		return KindInt
	case TypeFloat:
		return KindFloat
	case TypeString:
		return KindString
	case TypeTime:
		return KindTime
	case TypeBool:
		return KindBool
	default:
		return KindNull
	}
}

// insertBatchLocked validates and stores the built rows under write-lock
// holds, deferring secondary-index maintenance to sorted bulk passes over the
// applied prefix.  It returns the number of rows applied and the first
// constraint violation (nil when every row applied).
//
// With Config.BatchLockChunk == 0 (the default) the whole batch is applied
// under one table-lock hold.  With BatchLockChunk == n > 0 the batch is
// applied in sub-chunks of n rows, releasing the table write lock and every
// parent lock between chunks and yielding the processor, so concurrent
// readers wait for at most one chunk's critical section instead of the whole
// batch.  Either way, rows are applied in order with identical first-failure
// semantics; readers can only observe whole-chunk boundaries (the write lock
// covers each chunk), and the batch-level epoch/pending accounting in
// insertBatch is unchanged.  Chunked mode records one undo range per chunk
// rather than one per batch: ids are only guaranteed contiguous within a
// chunk, because another writer may interleave between lock holds.
func (t *Table) insertBatchLocked(db *DB, txn *Txn, built []Row, rep *OpReport) (inserted, firstPage, lastPage int, err error) {
	sc := txn.sc

	// Intern the primary-key and unique-constraint encodings of the whole
	// batch into one string before locking anything: the row loop probes and
	// stores substrings of it, so the n pk-string and n×uniques allocations
	// of the per-row path collapse into one.
	blob, offs := t.encodeBatchKeys(sc, built)
	stride := 1 + len(t.uniqueCols)

	chunk := db.cfg.BatchLockChunk
	if chunk <= 0 || chunk >= len(built) {
		return t.applyBatchChunk(db, txn, built, 0, blob, offs, stride, rep)
	}
	firstPage, lastPage = -1, -1
	for start := 0; start < len(built); start += chunk {
		end := start + chunk
		if end > len(built) {
			end = len(built)
		}
		n, fp, lp, cerr := t.applyBatchChunk(db, txn, built[start:end], start, blob, offs, stride, rep)
		inserted += n
		if fp >= 0 && firstPage < 0 {
			firstPage = fp
		}
		if lp >= 0 {
			lastPage = lp
		}
		if cerr != nil {
			return inserted, firstPage, lastPage, cerr
		}
		if end < len(built) {
			// Reader-yield point: the table lock is free here; hand the
			// processor to any reader (or writer) queued behind this batch
			// before taking the lock again for the next chunk.
			runtime.Gosched()
		}
	}
	return inserted, firstPage, lastPage, nil
}

// applyBatchChunk applies one contiguous run of built rows (a whole batch, or
// one chunk of it) under a single write-lock hold.  base is the run's offset
// within the full batch, used to address the batch-wide key encodings.
//
// Locking: the table's own write lock and a read lock on every distinct
// foreign-key parent are taken once for the whole run (a self-referential
// parent reuses the held write lock, and thereby sees parent rows stored
// earlier in this same batch, exactly as the per-row loop would).  Parent
// locks nest inside child locks along foreign-key edges only, and the FK
// graph is acyclic, so the nested acquisition cannot deadlock.  Chunked mode
// releases parent locks together with the table lock between chunks — keeping
// a parent read lock across a re-acquisition of the child lock would invert
// the nesting order against a concurrent batch and could deadlock.
func (t *Table) applyBatchChunk(db *DB, txn *Txn, built []Row, base int, blob string, offs []int, stride int, rep *OpReport) (inserted, firstPage, lastPage int, err error) {
	sc := txn.sc
	encAt := func(idx int) string {
		start := 0
		if idx > 0 {
			start = offs[idx-1]
		}
		return blob[start:offs[idx]]
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	parents := t.lockParentsForBatch(db, sc)
	defer runlockAll(parents)

	ids := sc.batchIDs(len(built))
	var firstErr error
	firstPage, lastPage = -1, -1
	for ri, row := range built {
		ri := base + ri
		if err := db.checkForeignKeys(sc, t, row, rep, nil, true); err != nil {
			firstErr = err
			break
		}
		checks, err := t.checkRow(row)
		rep.ConstraintChecks += checks
		if err != nil {
			firstErr = err
			break
		}

		rep.ConstraintChecks++
		nullPK := false
		for _, c := range t.pkCols {
			if row[c].IsNull() {
				nullPK = true
				break
			}
		}
		if nullPK {
			firstErr = &ConstraintError{Kind: KindNotNull, Table: t.schema.Name,
				Column: t.schema.PrimaryKey[0], Detail: "NULL in primary key"}
			break
		}
		pkEnc := encAt(ri * stride)
		if _, dup := t.pkIndex[pkEnc]; dup {
			firstErr = &ConstraintError{Kind: KindPrimaryKey, Table: t.schema.Name,
				Constraint: "pk_" + t.schema.Name, Detail: "duplicate key " + pkEnc}
			break
		}

		for i := range t.uniqueCols {
			rep.ConstraintChecks++
			uEnc := encAt(ri*stride + 1 + i)
			if _, dup := t.uniqueMaps[i][uEnc]; dup {
				firstErr = &ConstraintError{Kind: KindUnique, Table: t.schema.Name,
					Constraint: t.uniqueNames[i], Detail: "duplicate key " + uEnc}
				break
			}
		}
		if firstErr != nil {
			break
		}

		// All constraints satisfied: store the row.  Index maintenance is
		// deferred to the bulk pass below; the hash indexes must be updated
		// here so later rows of this batch observe earlier ones (intra-batch
		// duplicate detection and self-referential foreign keys).
		id := t.nextRow
		t.nextRow++
		loc, newPage, rb := t.heap.append(row)
		t.rows.append(loc)
		t.pkIndex[pkEnc] = id
		for i := range t.uniqueCols {
			t.uniqueMaps[i][encAt(ri*stride+1+i)] = id
		}

		rep.RowsInserted++
		rep.RowBytes += rb
		rep.PagesDirtied++
		if newPage {
			rep.CacheMisses++ // a fresh block is always a cache miss
		}
		if len(ids) == 0 {
			firstPage = loc.pageIdx
		}
		lastPage = loc.pageIdx
		ids = append(ids, id)
	}

	// One undo record covers the whole contiguous id run applied under this
	// lock hold (the full batch in monolithic mode, one chunk in chunked
	// mode; ids are allocated under the held lock, so the run is contiguous).
	if len(ids) > 0 {
		if dev := db.wal.dev.Load(); dev != nil {
			// Durable record(s) appended while the id run is still protected,
			// so records for the same table land in the log in id order; the
			// device splits a run whose encoding would exceed the record limit.
			dev.logInsert(t.tid, txn.id, ids[0], built[:len(ids)])
		}
		txn.recordInsertRange(t.schema.Name, ids[0], int64(len(ids)))
		rep.UndoRecords++
	}

	// Sorted bulk merge into every maintained secondary index, covering
	// exactly the applied prefix (rollback's deleteRow relies on index
	// entries existing for every row in the undo log, so this runs even
	// after a mid-batch failure).  Suspended (deferred, mid-load) indexes are
	// skipped entirely — that is the deferred policy's whole saving.
	for _, ix := range t.liveList {
		t.bulkIndexInsert(sc, ix, built[:len(ids)], ids, rep)
	}
	return len(ids), firstPage, lastPage, firstErr
}

// bulkIndexInsert maintains one secondary index for a batch: it encodes the
// batch's keys into the pooled scratch arena, sorts the encoded bytes
// (tie-broken by row id, reproducing per-row insertion order under
// duplicates), and feeds them to the leaf-aware sequential B-tree pass.
// Catalog batches frequently arrive already ordered on the indexed attribute
// (htmid and id columns grow with arrival order), so a linear sortedness
// check pays for itself before the n·log n sort.
func (t *Table) bulkIndexInsert(sc *scratch, ix *Index, rows []Row, ids []int64, rep *OpReport) {
	if len(rows) == 0 {
		return
	}
	if ix.int64Keyed && t.bulkIndexInsertInt64(sc, ix, rows, ids, rep) {
		return
	}
	// Keys are encoded once here and never re-inspected: the sortedness
	// check, the sort and every tree comparison below are single memcmps.
	// Growing the arena may reallocate it, leaving earlier kv keys pointing
	// into the retired backing array — which stays intact and is only read
	// until the tree copies stored keys into its own arena.
	sc.karena = sc.karena[:0]
	sc.kvs = sc.kvs[:0]
	sorted := true
	for ri := range rows {
		row := rows[ri]
		start := len(sc.karena)
		for _, c := range ix.colIdxs {
			sc.karena = appendOrderedValue(sc.karena, row[c])
			rep.IndexEntryBytes += ValueSize(row[c])
		}
		rep.IndexEntryBytes += 8 // row id pointer
		key := sc.karena[start:len(sc.karena):len(sc.karena)]
		if sorted && ri > 0 && bytes.Compare(sc.kvs[ri-1].key, key) > 0 {
			sorted = false
		}
		sc.kvs = append(sc.kvs, idxKV{key: key, id: ids[ri]})
	}
	if !sorted {
		// Equal keys need no reordering: ids ascend with row order already.
		slices.SortFunc(sc.kvs, cmpKV)
	}
	st := ix.tree.insertSortedKVs(sc.kvs)
	rep.IndexNodesVisited += st.NodesVisited
	rep.IndexSplits += st.Splits
	rep.IndexFloatColNodeVisits += st.NodesVisited * ix.floatCols
	rep.IndexIntColNodeVisits += st.NodesVisited * ix.otherCols
}

// bulkIndexInsertInt64 is bulkIndexInsert for single-column integer-kinded
// indexes with no NULL keys in the batch: the keys are extracted as raw
// int64s, sorted with the specialized pair sort (no comparator calls), and
// re-encoded into a small stack buffer as they stream into the tree.  It
// reports false — having done nothing — when a NULL key means the generic
// path must handle the batch.
func (t *Table) bulkIndexInsertInt64(sc *scratch, ix *Index, rows []Row, ids []int64, rep *OpReport) bool {
	c := ix.colIdxs[0]
	if cap(sc.sortK) < len(rows) {
		sc.sortK = make([]int64, 0, len(rows))
		sc.sortID = make([]int64, 0, len(rows))
	}
	ks := sc.sortK[:0]
	vs := sc.sortID[:0]
	sorted := true
	for ri := range rows {
		v := rows[ri][c]
		if v.Kind == KindNull {
			return false
		}
		if sorted && ri > 0 && ks[ri-1] > v.I {
			sorted = false
		}
		ks = append(ks, v.I)
		vs = append(vs, ids[ri])
	}
	sc.sortK, sc.sortID = ks, vs
	if !sorted {
		// Equal keys need no reordering: ids ascend with row order already.
		sortInt64Pairs(ks, vs)
	}
	// Entry volume is uniform for a payload-in-I kind.
	rep.IndexEntryBytes += len(rows) * (ValueSize(Value{Kind: ix.keyKind}) + 8)

	// Stream the sorted keys into the tree, re-encoding each into a reused
	// stack buffer; the inserter copies stored keys into the tree's arena.
	var kb [10]byte
	si := sortedInserter{t: ix.tree}
	for i := range ks {
		si.insert(appendOrderedValue(kb[:0], Value{Kind: ix.keyKind, I: ks[i]}), vs[i])
	}
	rep.IndexNodesVisited += si.st.NodesVisited
	rep.IndexSplits += si.st.Splits
	rep.IndexFloatColNodeVisits += si.st.NodesVisited * ix.floatCols
	rep.IndexIntColNodeVisits += si.st.NodesVisited * ix.otherCols
	return true
}

// encodeBatchKeys interns the primary-key and unique-constraint encodings of
// every built row into a single string, returning it together with the flat
// end-offset table ((1 + len(uniqueCols)) entries per row, in row order).
// It reads only the immutable schema and the built rows, so it runs before
// any lock is taken.
func (t *Table) encodeBatchKeys(sc *scratch, built []Row) (string, []int) {
	buf := sc.encBuf[:0]
	offs := sc.encOffs[:0]
	for _, row := range built {
		buf = AppendKey(buf, sc.keyOf(row, t.pkCols))
		offs = append(offs, len(buf))
		for _, cols := range t.uniqueCols {
			buf = AppendKey(buf, sc.keyOf(row, cols))
			offs = append(offs, len(buf))
		}
	}
	sc.encBuf = buf
	sc.encOffs = offs
	return string(buf), offs
}

// lockParentsForBatch read-locks every distinct foreign-key parent of the
// table except the table itself (whose write lock the caller already holds)
// and returns the locked set for runlockAll.  The slice is pooled on the
// transaction scratch.
func (t *Table) lockParentsForBatch(db *DB, sc *scratch) []*Table {
	parents := sc.parents[:0]
	for _, fk := range t.schema.ForeignKeys {
		p := db.tables[fk.RefTable]
		if p == nil || p == t {
			continue
		}
		dup := false
		for _, q := range parents {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			p.mu.RLock()
			parents = append(parents, p)
		}
	}
	sc.parents = parents[:0]
	return parents
}

// runlockAll releases the read locks taken by lockParentsForBatch.
func runlockAll(parents []*Table) {
	for _, p := range parents {
		p.mu.RUnlock()
	}
}
