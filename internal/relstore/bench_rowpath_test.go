package relstore

import (
	"testing"
)

// benchInsertDB builds a database whose "fingers" table exercises every key
// path of insertPrepared: primary key, a composite unique constraint, and one
// secondary B-tree index.
func benchInsertDB(b *testing.B) (*DB, *Table) {
	b.Helper()
	db, err := Open(testSchema(b))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex("fingers", "ix_flux", []string{"flux"}, false); err != nil {
		b.Fatal(err)
	}
	return db, db.Table("fingers")
}

// BenchmarkInsertPrepared measures the engine-internal insert path (constraint
// checks, key encoding, heap append, PK/unique hash maintenance, secondary
// index insert) without transaction, WAL or cache overhead.  This is the
// per-row cost the paper's array-set batching exists to amortize.
func BenchmarkInsertPrepared(b *testing.B) {
	_, tbl := benchInsertDB(b)
	var sc scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := Row{Int(int64(i)), Int(int64(i)), Float(float64(i % 4096))}
		if _, _, _, err := tbl.insertPrepared(&sc, row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeKey measures primary-key encoding, the string the PK and
// unique hash maps are keyed by.
func BenchmarkEncodeKey(b *testing.B) {
	key := []Value{Int(123456789), Float(53600.5)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if EncodeKey(key) == "" {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkAppendKey measures the scratch-buffer encoding path used by the
// insert hot path (no result-string materialization).
func BenchmarkAppendKey(b *testing.B) {
	key := []Value{Int(123456789), Float(53600.5)}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendKey(buf[:0], key)
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}
