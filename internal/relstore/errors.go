package relstore

import (
	"errors"
	"fmt"
)

// ConstraintKind identifies the class of integrity constraint that an insert
// violated.  The loader's error-recovery path (skip the offending row, repack
// the batch, continue) treats all kinds uniformly, but statistics and tests
// distinguish them.
type ConstraintKind int

const (
	// KindPrimaryKey is a duplicate primary-key violation.
	KindPrimaryKey ConstraintKind = iota
	// KindForeignKey is a reference to a missing parent row.
	KindForeignKey
	// KindUnique is a duplicate value in a unique (non-PK) constraint.
	KindUnique
	// KindCheck is a check-constraint (range/domain) violation.
	KindCheck
	// KindNotNull is a NULL in a NOT NULL column.
	KindNotNull
	// KindType is a type-conversion failure.
	KindType
	// KindArity is a column-count mismatch between statement and row.
	KindArity
	// KindUnknownTable is an insert into a table that does not exist.
	KindUnknownTable
)

// String names the constraint kind.
func (k ConstraintKind) String() string {
	switch k {
	case KindPrimaryKey:
		return "PRIMARY KEY"
	case KindForeignKey:
		return "FOREIGN KEY"
	case KindUnique:
		return "UNIQUE"
	case KindCheck:
		return "CHECK"
	case KindNotNull:
		return "NOT NULL"
	case KindType:
		return "TYPE"
	case KindArity:
		return "ARITY"
	case KindUnknownTable:
		return "UNKNOWN TABLE"
	default:
		return fmt.Sprintf("ConstraintKind(%d)", int(k))
	}
}

// ConstraintError reports an integrity violation detected during an insert.
type ConstraintError struct {
	Kind       ConstraintKind
	Table      string
	Constraint string
	Column     string
	Detail     string
}

// Error implements the error interface.
func (e *ConstraintError) Error() string {
	msg := fmt.Sprintf("relstore: %s violation on table %q", e.Kind, e.Table)
	if e.Constraint != "" {
		msg += fmt.Sprintf(" (constraint %q)", e.Constraint)
	}
	if e.Column != "" {
		msg += fmt.Sprintf(" column %q", e.Column)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// IsConstraintViolation reports whether err is (or wraps) a ConstraintError.
func IsConstraintViolation(err error) bool {
	var ce *ConstraintError
	return errors.As(err, &ce)
}

// ViolationKind extracts the constraint kind from err; ok is false when err is
// not a constraint violation.
func ViolationKind(err error) (kind ConstraintKind, ok bool) {
	var ce *ConstraintError
	if errors.As(err, &ce) {
		return ce.Kind, true
	}
	return 0, false
}

// ErrTxnNotActive is returned when an operation is attempted on a transaction
// that has already committed or rolled back.
var ErrTxnNotActive = errors.New("relstore: transaction is not active")

// ErrTooManyTransactions is returned by Begin when the configured concurrent
// transaction limit is exhausted; the sqlbatch server translates it into a
// queued wait, mirroring the lock waits the paper observed at high degrees of
// parallelism (§5.4).
var ErrTooManyTransactions = errors.New("relstore: concurrent transaction limit reached")

// ErrNoSuchTable is returned for operations on tables absent from the schema.
var ErrNoSuchTable = errors.New("relstore: no such table")

// ErrNoSuchIndex is returned for operations on indexes that do not exist.
var ErrNoSuchIndex = errors.New("relstore: no such index")

// ErrIndexExists is returned when creating an index whose name is taken.
var ErrIndexExists = errors.New("relstore: index already exists")

// ErrNoSuchColumn is returned when index DDL references a column absent from
// the table schema.
var ErrNoSuchColumn = errors.New("relstore: no such column")

// ErrLoadPhaseActive is returned by BeginLoad when a load phase is already
// open (Seal has not been called for the previous BeginLoad).
var ErrLoadPhaseActive = errors.New("relstore: load phase already active")

// ErrIndexNotReady is returned by indexed reads on a suspended index — a
// deferred-policy index between BeginLoad and Seal, which is missing the
// rows loaded since the phase opened.  Callers should fall back to a scan
// (check Index.Ready first, as internal/queries does).
var ErrIndexNotReady = errors.New("relstore: index not ready (deferred build pending Seal)")
