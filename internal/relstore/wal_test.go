package relstore

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestWALAppendAccounting checks the byte and record arithmetic of the three
// append paths against hand-computed values.
func TestWALAppendAccounting(t *testing.T) {
	w := NewWAL(0)

	if got := w.AppendInsert(100); got != 128 {
		t.Fatalf("AppendInsert(100) = %d, want 128 (payload+28 header)", got)
	}
	// A group of 5 rows: one 28-byte header, a 4-byte slot per row.
	if got := w.AppendInsertGroup(5, 500); got != 500+28+5*4 {
		t.Fatalf("AppendInsertGroup(5, 500) = %d, want %d", got, 500+28+5*4)
	}
	if got := w.AppendInsertGroup(0, 999); got != 0 {
		t.Fatalf("AppendInsertGroup(0, _) = %d, want 0 (empty group writes nothing)", got)
	}
	st := w.Stats()
	if st.Records != 2 {
		t.Fatalf("Records = %d, want 2 (one insert, one group)", st.Records)
	}
	if st.GroupRecords != 1 || st.GroupedRows != 5 {
		t.Fatalf("GroupRecords/GroupedRows = %d/%d, want 1/5", st.GroupRecords, st.GroupedRows)
	}
	wantBytes := int64(128 + 548)
	if st.Bytes != wantBytes {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.MaxUnsyncedBytes != wantBytes {
		t.Fatalf("MaxUnsyncedBytes = %d, want %d (no sync yet)", st.MaxUnsyncedBytes, wantBytes)
	}

	forced := w.AppendCommit()
	if forced != wantBytes+48 {
		t.Fatalf("AppendCommit forced %d bytes, want %d", forced, wantBytes+48)
	}
	st = w.Stats()
	if st.Commits != 1 || st.Records != 3 {
		t.Fatalf("Commits/Records = %d/%d, want 1/3", st.Commits, st.Records)
	}
	if st.Syncs != 1 {
		t.Fatalf("Syncs = %d, want 1 (the commit's sync)", st.Syncs)
	}
	if st.Syncs < st.AutoSyncs+st.GroupCommits {
		t.Fatalf("sync accounting broken: Syncs %d < AutoSyncs %d + GroupCommits %d",
			st.Syncs, st.AutoSyncs, st.GroupCommits)
	}
	// The high-water mark survives the sync.
	if st.MaxUnsyncedBytes != wantBytes {
		t.Fatalf("MaxUnsyncedBytes = %d after sync, want %d", st.MaxUnsyncedBytes, wantBytes)
	}
}

// TestWALGroupEquivalentVolume checks that a group record for n rows carries
// the same payload as n per-row records while writing n-1 fewer headers'
// worth of overhead difference — the amortization the batch path relies on.
func TestWALGroupEquivalentVolume(t *testing.T) {
	const n, payloadPerRow = 40, 97
	perRow := NewWAL(0)
	grouped := NewWAL(0)
	var perRowBytes, groupBytes int
	for i := 0; i < n; i++ {
		perRowBytes += perRow.AppendInsert(payloadPerRow)
	}
	groupBytes = grouped.AppendInsertGroup(n, n*payloadPerRow)
	if groupBytes >= perRowBytes {
		t.Fatalf("group record (%d bytes) not smaller than %d per-row records (%d bytes)", groupBytes, n, perRowBytes)
	}
	if perRow.Stats().Records != n || grouped.Stats().Records != 1 {
		t.Fatalf("records = %d/%d, want %d/1", perRow.Stats().Records, grouped.Stats().Records, n)
	}
	// Payload volume is identical; only header overhead differs.
	saved := perRowBytes - groupBytes
	if want := (n-1)*28 - n*4; saved != want {
		t.Fatalf("group record saved %d bytes, want %d", saved, want)
	}
}

// TestWALConcurrentWriters hammers the log from concurrent writers mixing
// per-row appends, group appends and commits, then checks that every byte is
// accounted for and that MaxUnsyncedBytes behaved as a monotonic high-water
// mark throughout.  Run under -race this also exercises the mutex discipline.
func TestWALConcurrentWriters(t *testing.T) {
	const (
		writers       = 8
		appendsPer    = 300
		commitEvery   = 50
		payloadPerRow = 64
		groupEvery    = 3
		rowsPerGroup  = 16
	)
	w := NewWAL(0)
	var wg sync.WaitGroup
	var bytesWritten, commitMarkers, recordsWritten, groupsWritten, rowsGrouped atomic.Int64

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < appendsPer; i++ {
				if i%groupEvery == 0 {
					n := w.AppendInsertGroup(rowsPerGroup, rowsPerGroup*payloadPerRow)
					bytesWritten.Add(int64(n))
					groupsWritten.Add(1)
					rowsGrouped.Add(rowsPerGroup)
					recordsWritten.Add(1)
				} else {
					n := w.AppendInsert(payloadPerRow)
					bytesWritten.Add(int64(n))
					recordsWritten.Add(1)
				}
				if (seed+i)%commitEvery == 0 {
					w.AppendCommit()
					commitMarkers.Add(1)
					recordsWritten.Add(1)
				}
			}
		}(g)
	}

	// Poll MaxUnsyncedBytes while the writers run: it is a high-water mark
	// and must never decrease between observations, no matter how appends
	// and commit syncs interleave.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var lastMax int64
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if m := w.Stats().MaxUnsyncedBytes; m < lastMax {
				t.Fatalf("MaxUnsyncedBytes decreased %d -> %d", lastMax, m)
			} else {
				lastMax = m
			}
		}
	}

	st := w.Stats()
	wantBytes := bytesWritten.Load() + 48*commitMarkers.Load()
	if st.Bytes != wantBytes {
		t.Fatalf("Bytes = %d, want %d (every append and commit marker accounted)", st.Bytes, wantBytes)
	}
	if st.Records != recordsWritten.Load() {
		t.Fatalf("Records = %d, want %d", st.Records, recordsWritten.Load())
	}
	if st.GroupRecords != groupsWritten.Load() || st.GroupedRows != rowsGrouped.Load() {
		t.Fatalf("GroupRecords/GroupedRows = %d/%d, want %d/%d",
			st.GroupRecords, st.GroupedRows, groupsWritten.Load(), rowsGrouped.Load())
	}
	if st.Commits != commitMarkers.Load() {
		t.Fatalf("Commits = %d, want %d", st.Commits, commitMarkers.Load())
	}
	// Every AppendCommit syncs on this path (no auto-sync threshold, no group
	// commit), so the sync total is exactly the commit count — and the general
	// invariant Syncs >= AutoSyncs + GroupCommits must hold.
	if st.Syncs != commitMarkers.Load() {
		t.Fatalf("Syncs = %d, want %d (one per commit)", st.Syncs, commitMarkers.Load())
	}
	if st.Syncs < st.AutoSyncs+st.GroupCommits {
		t.Fatalf("sync accounting broken: Syncs %d < AutoSyncs %d + GroupCommits %d",
			st.Syncs, st.AutoSyncs, st.GroupCommits)
	}
	if st.MaxUnsyncedBytes < lastMax {
		t.Fatalf("final MaxUnsyncedBytes %d below observed %d", st.MaxUnsyncedBytes, lastMax)
	}
	// The mark can never exceed the total volume ever written.
	if st.MaxUnsyncedBytes > st.Bytes {
		t.Fatalf("MaxUnsyncedBytes %d exceeds total bytes %d", st.MaxUnsyncedBytes, st.Bytes)
	}
}

// TestWALAutoSyncThreshold pins the WithWALSync semantics: with a threshold
// the unsynced tail never exceeds it for long (the crossing append syncs),
// AutoSyncs counts those syncs, and commit forces only the remainder.
// Threshold 0 keeps the historical sync-only-at-commit behaviour.
func TestWALAutoSyncThreshold(t *testing.T) {
	w := NewWAL(100)
	for i := 0; i < 10; i++ {
		w.AppendInsert(22) // 50 log bytes per record with the header
	}
	st := w.Stats()
	if st.AutoSyncs != 5 {
		t.Fatalf("AutoSyncs = %d, want 5 (every second 50-byte record crosses 100)", st.AutoSyncs)
	}
	if st.MaxUnsyncedBytes > 100 {
		t.Fatalf("MaxUnsyncedBytes = %d, want <= threshold 100", st.MaxUnsyncedBytes)
	}
	forced := w.AppendCommit()
	if forced != 48 {
		t.Fatalf("commit forced %d bytes, want only the marker (48) after an auto-sync", forced)
	}
	if st := w.Stats(); st.Syncs != st.AutoSyncs+1 {
		t.Fatalf("Syncs = %d, want AutoSyncs %d + the commit's sync", st.Syncs, st.AutoSyncs)
	}

	w0 := NewWAL(0)
	for i := 0; i < 10; i++ {
		w0.AppendInsert(22)
	}
	if st := w0.Stats(); st.AutoSyncs != 0 || st.MaxUnsyncedBytes != 500 {
		t.Fatalf("threshold 0: AutoSyncs=%d MaxUnsynced=%d, want 0/500", st.AutoSyncs, st.MaxUnsyncedBytes)
	}

	// The option threads through Open to the engine's WAL.
	db := MustOpen(testSchema(t), WithWALSync(64))
	if db.Config().WALSyncBytes != 64 {
		t.Fatalf("WALSyncBytes = %d, want 64", db.Config().WALSyncBytes)
	}
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	for i := int64(1); i <= 50; i++ {
		if err := insertObject(t, txn, i, 1, float64(i%30)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := db.WAL().Stats(); st.AutoSyncs == 0 || st.MaxUnsyncedBytes > 64+128 {
		t.Fatalf("engine WAL did not auto-sync: %+v", st)
	}
}
