package relstore

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// treeContent renders the logical content of a B-tree: every key in order
// with its row ids, decoded back to values so mismatches read as column
// values rather than hex.  Trees built by different insertion orders must
// agree on content even when their node shapes differ.
func treeContent(tr *BTree) string {
	var b strings.Builder
	tr.AscendRange(nil, nil, func(key []byte, ids []int64) bool {
		vals, err := DecodeOrderedKey(key)
		if err != nil {
			fmt.Fprintf(&b, "<bad key %x: %v>", key, err)
		} else {
			b.WriteString(EncodeKey(vals))
		}
		fmt.Fprintf(&b, " -> %v\n", ids)
		return true
	})
	return b.String()
}

// sortKVs orders parallel encoded-key/id slices the way the batch path does
// before calling InsertSorted: by key bytes, tie-broken by row id.
func sortKVs(keys [][]byte, ids []int64) {
	kvs := make([]idxKV, len(keys))
	for i := range keys {
		kvs[i] = idxKV{key: keys[i], id: ids[i]}
	}
	slices.SortFunc(kvs, cmpKV)
	for i := range kvs {
		keys[i], ids[i] = kvs[i].key, kvs[i].id
	}
}

// TestBTreeInsertSortedEquivalence inserts the same random pairs three ways —
// per-pair in generation order, per-pair in sorted order, and batched through
// InsertSorted — and requires identical logical content, identical Len and
// intact invariants from each.  Small degrees force frequent splits so the
// cached-leaf window is invalidated often.
func TestBTreeInsertSortedEquivalence(t *testing.T) {
	for _, degree := range []int{2, 3, 8} {
		for trial := 0; trial < 30; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*degree + trial)))
			n := 1 + rng.Intn(400)
			keys := make([][]byte, n)
			ids := make([]int64, n)
			for i := range keys {
				// Narrow domains so duplicate keys (multi-id entries) are common.
				keys[i] = EncodeOrderedKey([]Value{Int(rng.Int63n(60)), Float(float64(rng.Intn(8)))})
				ids[i] = int64(i)
			}

			perPair := NewBTree(degree)
			for i := range keys {
				perPair.Insert(keys[i], ids[i])
			}

			sortedKeys := append([][]byte(nil), keys...)
			sortedIDs := append([]int64(nil), ids...)
			sortKVs(sortedKeys, sortedIDs)

			perPairSorted := NewBTree(degree)
			for i := range sortedKeys {
				perPairSorted.Insert(sortedKeys[i], sortedIDs[i])
			}

			batched := NewBTree(degree)
			// Feed the sorted stream in several chunks to exercise re-entry
			// with a cold cache against a part-built tree.
			for start := 0; start < n; {
				end := start + 1 + rng.Intn(n-start)
				batched.InsertSorted(sortedKeys[start:end], sortedIDs[start:end])
				start = end
			}

			for name, tr := range map[string]*BTree{"perPairSorted": perPairSorted, "batched": batched} {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("degree %d trial %d: %s invariants: %v", degree, trial, name, err)
				}
				if tr.Len() != perPair.Len() {
					t.Fatalf("degree %d trial %d: %s Len = %d, want %d", degree, trial, name, tr.Len(), perPair.Len())
				}
				if got, want := treeContent(tr), treeContent(perPair); got != want {
					t.Fatalf("degree %d trial %d: %s content diverges:\n--- got ---\n%s--- want ---\n%s",
						degree, trial, name, got, want)
				}
			}
		}
	}
}

// TestBTreeInsertSortedIntoGrownTree batches sorted runs into a tree that
// already holds a large random population, so batch keys constantly cross
// existing separators and the descent fallback runs often.
func TestBTreeInsertSortedIntoGrownTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := NewBTree(3)
	tr := NewBTree(3)
	var nextID int64
	for i := 0; i < 3000; i++ {
		k := intKey(rng.Int63n(5000))
		ref.Insert(k, nextID)
		tr.Insert(k, nextID)
		nextID++
	}
	for batch := 0; batch < 40; batch++ {
		n := 1 + rng.Intn(200)
		keys := make([][]byte, n)
		ids := make([]int64, n)
		for i := range keys {
			keys[i] = intKey(rng.Int63n(5000))
			ids[i] = nextID
			nextID++
		}
		sortKVs(keys, ids)
		for i := range keys {
			ref.Insert(keys[i], ids[i])
		}
		tr.InsertSorted(keys, ids)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("batch %d: invariants: %v", batch, err)
		}
	}
	if got, want := treeContent(tr), treeContent(ref); got != want {
		t.Fatalf("content diverges after mixed batches:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBTreeInsertSortedSeparatorKeys forces the ancestor-separator edge of
// the cached-leaf window: after sequential inserts promote separators into
// internal nodes, a sorted batch containing exactly those separator keys must
// append to the internal-node entries, not duplicate them in leaves.
func TestBTreeInsertSortedSeparatorKeys(t *testing.T) {
	tr := NewBTree(2) // degree 2 promotes separators constantly
	ref := NewBTree(2)
	for i := 0; i < 64; i++ {
		k := intKey(int64(i))
		tr.Insert(k, int64(i))
		ref.Insert(k, int64(i))
	}
	// Every existing key again, in order, plus fresh keys interleaved.
	var keys [][]byte
	var ids []int64
	var nextID int64 = 1000
	for i := 0; i < 64; i++ {
		keys = append(keys, intKey(int64(i)))
		ids = append(ids, nextID)
		nextID++
		if i%4 == 0 {
			keys = append(keys, intKey(int64(i*1000+500)))
			ids = append(ids, nextID)
			nextID++
		}
	}
	sortKVs(keys, ids)
	for i := range keys {
		ref.Insert(keys[i], ids[i])
	}
	st := tr.InsertSorted(keys, ids)
	if st.NodesVisited <= 0 {
		t.Fatal("InsertSorted reported no node visits")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got, want := treeContent(tr), treeContent(ref); got != want {
		t.Fatalf("content diverges:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if tr.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", tr.Len(), ref.Len())
	}
}
