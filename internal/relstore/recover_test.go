package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// durableDB opens a fresh durable database over a temp WAL dir.
func durableDB(t *testing.T, opts ...Option) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(testSchema(t), append([]Option{WithWALDir(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return db, dir
}

// loadFramesObjects commits `frames` frame rows (ids base+1..base+frames) and
// `objs` object rows per frame, one transaction per frame.
func loadFramesObjects(t *testing.T, db *DB, base, frames, objs int64) {
	t.Helper()
	for f := base + 1; f <= base+frames; f++ {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		insertFrame(t, txn, f)
		for o := int64(0); o < objs; o++ {
			if err := insertObject(t, txn, f*1000+o, f, float64(10+o%20)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// assertSameState fails unless got matches want byte for byte: per-table row
// counts, every row's content and id (including tombstoned gaps), next row
// ids, stats row totals, and referential integrity.
func assertSameState(t *testing.T, want, got *DB) {
	t.Helper()
	wc, gc := want.RowCounts(), got.RowCounts()
	for name, n := range wc {
		if gc[name] != n {
			t.Fatalf("table %s: recovered %d rows, want %d", name, gc[name], n)
		}
	}
	if w, g := want.TotalRows(), got.TotalRows(); w != g {
		t.Fatalf("TotalRows: recovered %d, want %d", g, w)
	}
	ws, gs := want.StatsSnapshot(), got.StatsSnapshot()
	if ws.DB.RowsInserted != gs.DB.RowsInserted {
		t.Fatalf("RowsInserted: recovered %d, want %d", gs.DB.RowsInserted, ws.DB.RowsInserted)
	}
	for _, name := range want.Schema().TableNames() {
		wt, gt := want.Table(name), got.Table(name)
		wt.mu.RLock()
		gt.mu.RLock()
		wn, gn := wt.nextRow, gt.nextRow
		type idrow struct {
			id  int64
			enc string
		}
		var wrows []idrow
		for id := range wt.rows.locs {
			if r := wt.getRowLocked(int64(id)); r != nil {
				wrows = append(wrows, idrow{int64(id), EncodeKey(r)})
			}
		}
		var mismatch string
		for _, wr := range wrows {
			gr := gt.getRowLocked(wr.id)
			if gr == nil {
				mismatch = fmt.Sprintf("row %d missing after recovery", wr.id)
				break
			}
			if EncodeKey(gr) != wr.enc {
				mismatch = fmt.Sprintf("row %d differs after recovery", wr.id)
				break
			}
		}
		gt.mu.RUnlock()
		wt.mu.RUnlock()
		if wn != gn {
			t.Fatalf("table %s: nextRow recovered %d, want %d", name, gn, wn)
		}
		if mismatch != "" {
			t.Fatalf("table %s: %s", name, mismatch)
		}
	}
	if orphans, err := got.VerifyIntegrity(); err != nil || orphans != 0 {
		t.Fatalf("recovered integrity: orphans=%d err=%v", orphans, err)
	}
	if err := got.VerifyPrimaryKeys(); err != nil {
		t.Fatalf("recovered primary keys: %v", err)
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 5, 40)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, db, got)
	if rep.ReplayedRows != 5+5*40 {
		t.Fatalf("ReplayedRows = %d, want %d", rep.ReplayedRows, 5+5*40)
	}
	if rep.TornTailRecords != 0 || rep.DiscardedTxns != 0 {
		t.Fatalf("unexpected torn/discarded: %+v", rep)
	}
	ws := got.WAL().Stats()
	if !ws.Durable || ws.ReplayRows != rep.ReplayedRows || ws.ReplayRecords != rep.ReplayedRecords {
		t.Fatalf("WALStats replay counters not surfaced: %+v", ws)
	}

	// The recovered database accepts and persists new transactions.
	loadFramesObjects(t, got, 5, 1, 1)
	if got.Table("frames").RowCount() != 6 {
		t.Fatalf("post-recovery insert failed")
	}
}

func TestRecoverDiscardsUncommittedTail(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 2, 10)

	// An in-flight transaction whose rows hit the log (forced by an explicit
	// device sync) but whose commit marker never does.
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, txn, 99)
	db.wal.dev.Load().sync() // rows durable, commit not
	// Crash here: no Commit, no Close.

	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiscardedTxns != 1 {
		t.Fatalf("DiscardedTxns = %d, want 1", rep.DiscardedTxns)
	}
	if n := got.Table("frames").RowCount(); n != 2 {
		t.Fatalf("frames = %d, want 2 (uncommitted row must be discarded)", n)
	}

	// The resumed database must not let a new transaction's commit marker
	// resurrect the dead transaction's rows: new txn ids start above every id
	// seen in the log.
	loadFramesObjects(t, got, 10, 1, 0)
	got2, _, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := got2.Table("frames").RowCount(); n != 3 {
		t.Fatalf("after resume+recover frames = %d, want 3", n)
	}
}

func TestRecoverToleratesTornTail(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 3, 5)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the newest segment mid-record, as a crash during a buffered write
	// would.  The last record on disk is the third transaction's commit
	// marker, so tearing it discards that whole transaction.
	segs, err := listWALSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTailRecords != 1 || rep.TornTailBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rep)
	}
	if ws := got.WAL().Stats(); ws.ReplayTornTail != 1 {
		t.Fatalf("ReplayTornTail = %d, want 1", ws.ReplayTornTail)
	}
	if n := got.Table("frames").RowCount(); n != 2 {
		t.Fatalf("frames = %d, want 2 after torn-tail discard", n)
	}

	// A second recovery sees a clean (truncated) log and the same state.
	got2, rep2, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TornTailRecords != 0 {
		t.Fatalf("tail still torn after truncation: %+v", rep2)
	}
	if got2.TotalRows() != got.TotalRows() {
		t.Fatalf("second recovery diverged: %d vs %d", got2.TotalRows(), got.TotalRows())
	}
}

func TestRecoverCorruptMidLogFails(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 2, 50)
	// Force a rotation so at least two segments exist.
	dev := db.wal.dev.Load()
	dev.mu.Lock()
	dev.rotateLocked()
	dev.mu.Unlock()
	loadFramesObjects(t, db, 10, 1, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listWALSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected >=2 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the FIRST segment: corruption that is not
	// a tail must fail recovery loudly, not be silently skipped.
	first := filepath.Join(dir, segs[0])
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(testSchema(t), dir); err == nil {
		t.Fatal("Recover succeeded over mid-log corruption")
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	// Injected truncate failure leaves the pre-checkpoint segments on disk, so
	// the test can prove replay skips them rather than merely observing that a
	// healthy checkpoint already deleted them.
	var failTruncate atomic.Bool
	hook := func(p FaultPoint) error {
		if p == FPCheckpointTruncate && failTruncate.Load() {
			return errors.New("injected truncate failure")
		}
		return nil
	}
	db, dir := durableDB(t, WithWALSegmentBytes(8<<10), WithFaultHook(hook))
	loadFramesObjects(t, db, 0, 4, 30)
	failTruncate.Store(true)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint ignored injected truncate failure")
	}
	failTruncate.Store(false)
	loadFramesObjects(t, db, 10, 2, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, db, got)
	if rep.CheckpointSeq == 0 || rep.CheckpointRows != 4+4*30 {
		t.Fatalf("checkpoint not used: %+v", rep)
	}
	// Replay applies only post-checkpoint records...
	if rep.ReplayedRows != 2+2*10 {
		t.Fatalf("ReplayedRows = %d, want %d (post-checkpoint only)", rep.ReplayedRows, 2+2*10)
	}
	// ...and never opens the stale pre-checkpoint segments at all.
	if rep.SegmentsSkipped == 0 {
		t.Fatalf("stale pre-checkpoint segments were scanned: %+v", rep)
	}
}

func TestCheckpointDeletesDeadSegments(t *testing.T) {
	db, dir := durableDB(t, WithWALSegmentBytes(4<<10))
	loadFramesObjects(t, db, 0, 6, 40)
	before, _ := listWALSegments(dir)
	if len(before) < 3 {
		t.Fatalf("want >=3 segments before checkpoint, got %d", len(before))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := listWALSegments(dir)
	if len(after) != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1 (the fresh one)", len(after))
	}
	ws := db.WAL().Stats()
	if ws.Checkpoints != 1 || ws.SegmentsDeleted == 0 {
		t.Fatalf("checkpoint counters: %+v", ws)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	db, dir := durableDB(t, WithWALSegmentBytes(4<<10), WithCheckpointEvery(16<<10))
	loadFramesObjects(t, db, 0, 8, 60)
	if ws := db.WAL().Stats(); ws.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoint fired: %+v", ws)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, db, got)
}

func TestCheckpointBusyWithPendingRows(t *testing.T) {
	db, _ := durableDB(t)
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, txn, 1)
	if err := db.Checkpoint(); !errors.Is(err, ErrCheckpointBusy) {
		t.Fatalf("Checkpoint with pending rows: %v, want ErrCheckpointBusy", err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after settle: %v", err)
	}
}

func TestRecoverPreservesRollbackIDGaps(t *testing.T) {
	build := func(db *DB) {
		loadFramesObjects(t, db, 0, 2, 3)
		// Punch an id gap: a rolled-back transaction consumed object ids.
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for o := int64(0); o < 4; o++ {
			if err := insertObject(t, txn, 5000+o, 1, 12); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Rollback(); err != nil {
			t.Fatal(err)
		}
		loadFramesObjects(t, db, 10, 1, 2) // allocate ids after the gap
	}
	ref, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	build(ref)

	db, dir := durableDB(t)
	build(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, db, got)

	// Resumed inserts must allocate the same ids the uninterrupted engine
	// would (nextRow preserved across the gap).
	loadFramesObjects(t, ref, 20, 1, 1)
	loadFramesObjects(t, got, 20, 1, 1)
	assertSameState(t, ref, got)
}

func TestRecoverRollbackGapBeforeCheckpoint(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 1, 2)
	txn, _ := db.Begin()
	for o := int64(0); o < 3; o++ {
		if err := insertObject(t, txn, 7000+o, 1, 12); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, db, got)
}

func TestRecoverBatchPath(t *testing.T) {
	run := func(db *DB) {
		txn, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		insertFrame(t, txn, 1)
		rows := make([][]Value, 0, 500)
		for i := int64(0); i < 500; i++ {
			rows = append(rows, []Value{Int(i), Int(1), Float(float64(i % 30))})
		}
		rep, err := txn.InsertBatch("objects", []string{"object_id", "frame_id", "mag"}, rows)
		if err != nil || rep.RowsInserted != 500 {
			t.Fatalf("InsertBatch: %v %+v", err, rep)
		}
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for _, chunk := range []int{0, 64} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			db, dir := durableDB(t, WithBatchLockChunk(chunk))
			run(db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			got, rep, err := Recover(testSchema(t), dir)
			if err != nil {
				t.Fatal(err)
			}
			assertSameState(t, db, got)
			if rep.ReplayedRows != 501 {
				t.Fatalf("ReplayedRows = %d, want 501", rep.ReplayedRows)
			}
		})
	}
}

func TestRecoverGroupCommit(t *testing.T) {
	db, dir := durableDB(t, WithGroupCommit(200*time.Microsecond, 8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := int64(0); f < 10; f++ {
				txn, err := db.BeginBlocking()
				if err != nil {
					t.Error(err)
					return
				}
				insertFrame(t, txn, int64(w)*100+f+1)
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every Commit returned, so a group leader's durable sync covered every
	// marker — the data is safe even before Close.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiscardedTxns != 0 {
		t.Fatalf("acknowledged group commits discarded: %+v", rep)
	}
	if n := got.Table("frames").RowCount(); n != 40 {
		t.Fatalf("frames = %d, want 40", n)
	}
}

func TestStartRecoverGatesReadiness(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 3, 30)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Throttle replay so the recovering window is observable.
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	h, err := StartRecover(testSchema(t), dir, WithFaultHook(func(p FaultPoint) error {
		if p == FPReplay {
			once.Do(func() { close(started); <-gate })
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if h.DB().Ready() {
		t.Fatal("Ready() true during replay")
	}
	if _, err := h.DB().Begin(); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Begin during replay: %v, want ErrRecovering", err)
	}
	close(gate)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if !h.DB().Ready() {
		t.Fatal("Ready() false after replay")
	}
	if _, err := h.DB().Begin(); err != nil {
		t.Fatalf("Begin after replay: %v", err)
	}
}

func TestOpenRefusesExistingWALDir(t *testing.T) {
	db, dir := durableDB(t)
	loadFramesObjects(t, db, 0, 1, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testSchema(t), WithWALDir(dir)); err == nil {
		t.Fatal("Open over an existing WAL dir must fail (use Recover)")
	}
}

// errKilled is the sentinel the kill-simulating fault hooks panic with.
type errKilled struct{}

// TestCrashRecoverStress kills a concurrent durable load at a random append
// via a fault-point panic, recovers, and verifies every acknowledged commit
// survived.  Run with -race in CI.
func TestCrashRecoverStress(t *testing.T) {
	const workers = 4
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		killAfter := int64(20 + rng.Intn(300))
		var appends atomic.Int64
		db, err := Open(testSchema(t), WithWALDir(dir), WithWALSegmentBytes(8<<10),
			WithFaultHook(func(p FaultPoint) error {
				if p == FPWALAppend && appends.Add(1) >= killAfter {
					panic(errKilled{})
				}
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}

		// acked[w] records the frame ids whose Commit returned before the kill.
		acked := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(errKilled); !ok {
							panic(r)
						}
					}
				}()
				for f := int64(0); f < 200; f++ {
					id := int64(w)*10000 + f + 1
					txn, err := db.BeginBlocking()
					if err != nil {
						return
					}
					if _, err := txn.Insert("frames", []string{"frame_id", "exposure"},
						[]Value{Int(id), Float(1.5)}); err != nil {
						_ = txn.Rollback()
						continue
					}
					if _, err := txn.Commit(); err != nil {
						return
					}
					acked[w] = append(acked[w], id)
				}
			}()
		}
		wg.Wait()
		if appends.Load() < killAfter {
			t.Fatalf("round %d: kill never fired (%d appends)", round, appends.Load())
		}

		got, _, err := Recover(testSchema(t), dir)
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		for w := range acked {
			for _, id := range acked[w] {
				row, err := got.LookupByPK("frames", []Value{Int(id)})
				if err != nil || row == nil {
					t.Fatalf("round %d: acknowledged frame %d lost (err=%v)", round, id, err)
				}
			}
		}
		if err := got.VerifyPrimaryKeys(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if orphans, err := got.VerifyIntegrity(); err != nil || orphans != 0 {
			t.Fatalf("round %d: orphans=%d err=%v", round, orphans, err)
		}
	}
}

// TestRecoverLargeBatchSplitsRecords proves the append path enforces the
// record payload limit: with the limit shrunk to a few hundred bytes, one
// InsertBatch must split into many insert records — each under the limit the
// frame reader enforces — and recovery must still reproduce the batch exactly.
// Before chunking, an oversized batch wrote one unreadable frame and the log
// became unrecoverable.
func TestRecoverLargeBatchSplitsRecords(t *testing.T) {
	old := walInsertRecordLimit
	walInsertRecordLimit = 256
	defer func() { walInsertRecordLimit = old }()

	db, dir := durableDB(t)
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, txn, 1)
	rows := make([][]Value, 200)
	for i := range rows {
		rows[i] = []Value{Int(int64(i + 1)), Int(1), Float(float64(10 + i%20))}
	}
	if rep, err := txn.InsertBatch("objects", []string{"object_id", "frame_id", "mag"}, rows); err != nil {
		t.Fatalf("InsertBatch: %v %+v", err, rep)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	got, rep, err := Recover(testSchema(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	// One unchunked log would hold at most 3 records (frame insert, batch
	// insert, commit); the split batch must have produced far more, with the
	// full row set intact.
	if rep.ReplayedRecords <= 3 {
		t.Fatalf("ReplayedRecords = %d, want > 3 (batch must split under the record limit)", rep.ReplayedRecords)
	}
	if rep.ReplayedRows != 1+200 {
		t.Fatalf("ReplayedRows = %d, want %d", rep.ReplayedRows, 1+200)
	}
	assertSameState(t, db, got)
}
