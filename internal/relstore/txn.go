package relstore

// Txn is a database transaction.  The loading workload is insert-only, so the
// undo log records inserted row ids; rollback removes them and commit simply
// truncates the undo and forces the redo log.
type Txn struct {
	db     *DB
	id     int64
	active bool

	undo []undoRecord

	rowsInserted int
	batches      int
}

type undoRecord struct {
	table string
	rowID int64
}

// Begin starts a new transaction.  It returns ErrTooManyTransactions when the
// engine's concurrent-transaction limit is reached; the caller is expected to
// wait and retry (the sqlbatch server queues on a transaction-slot resource).
func (db *DB) Begin() (*Txn, error) {
	db.nextTxn++
	id := db.nextTxn
	if err := db.locks.Admit(id); err != nil {
		db.nextTxn--
		return nil, err
	}
	db.stats.Transactions++
	return &Txn{db: db, id: id, active: true}, nil
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// Active reports whether the transaction can still accept work.
func (t *Txn) Active() bool { return t.active }

// RowsInserted returns the number of rows inserted in this transaction so far
// (since Begin, including rows already made durable by an intermediate
// Commit-and-continue is not supported: commit ends the transaction).
func (t *Txn) RowsInserted() int { return t.rowsInserted }

func (t *Txn) recordInsert(table string, rowID int64) {
	t.undo = append(t.undo, undoRecord{table: table, rowID: rowID})
	t.rowsInserted++
}

// Insert validates and stores one row in the named table.  columns selects
// which attributes the values correspond to; unspecified columns are NULL.
// On a constraint violation nothing is stored and the violation is returned.
func (t *Txn) Insert(table string, columns []string, values []Value) (OpReport, error) {
	if !t.active {
		return OpReport{}, ErrTxnNotActive
	}
	return t.db.insert(t, table, columns, values)
}

// CommitReport describes the physical work performed by a commit.
type CommitReport struct {
	// LogBytesForced is the redo volume the commit had to sync.
	LogBytesForced int64
	// DirtyPagesWritten is the number of dirty cache pages flushed.
	DirtyPagesWritten int
	// CacheScanPages is the number of cached pages the database writer
	// scanned while flushing (proportional to cache size, §4.5.5).
	CacheScanPages int
	// UndoRecordsDiscarded is the length of the undo log released.
	UndoRecordsDiscarded int
}

// Commit makes the transaction's inserts durable and ends the transaction.
func (t *Txn) Commit() (CommitReport, error) {
	if !t.active {
		return CommitReport{}, ErrTxnNotActive
	}
	forced := t.db.wal.AppendCommit()
	written, scanned := t.db.cache.FlushDirty()
	rep := CommitReport{
		LogBytesForced:       forced,
		DirtyPagesWritten:    written,
		CacheScanPages:       scanned,
		UndoRecordsDiscarded: len(t.undo),
	}
	t.db.locks.ReleaseAll(t.id)
	t.db.stats.Commits++
	t.undo = nil
	t.active = false
	return rep, nil
}

// Rollback undoes every insert performed by the transaction and ends it.
func (t *Txn) Rollback() error {
	if !t.active {
		return ErrTxnNotActive
	}
	// Undo in reverse order so children are removed before parents and the
	// foreign-key invariant never observes an orphan.
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if tbl := t.db.tables[u.table]; tbl != nil {
			tbl.deleteRow(u.rowID)
			t.db.stats.RowsInserted--
		}
	}
	t.db.locks.ReleaseAll(t.id)
	t.db.stats.Rollbacks++
	t.undo = nil
	t.active = false
	return nil
}
