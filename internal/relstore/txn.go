package relstore

// Txn is a database transaction.  The loading workload is insert-only, so the
// undo log records inserted row ids; rollback removes them and commit simply
// truncates the undo and forces the redo log.
//
// A transaction is owned by one goroutine at a time; its methods are not safe
// for concurrent use on the same Txn.  Different transactions may run on
// different goroutines concurrently — that is the whole point of the
// wall-clock execution mode.
type Txn struct {
	db     *DB
	id     int64
	active bool

	// sc is the per-goroutine key/encoding scratch this transaction carries
	// through the insert path; it is leased from db.scratchPool at Begin and
	// returned when the transaction ends.
	sc *scratch

	undo []undoRecord

	rowsInserted int
	batches      int
}

// undoRecord covers a contiguous run of n row ids inserted into one table.
// The per-row path appends n == 1 records; the batch path appends one record
// for the whole batch (ids are allocated contiguously under the table lock),
// so the undo log grows per batch, not per row.
type undoRecord struct {
	table string
	rowID int64 // first id of the run
	n     int64
}

// Begin starts a new transaction.  It returns ErrTooManyTransactions when the
// engine's concurrent-transaction limit is reached; the caller is expected to
// wait and retry (the sqlbatch server queues on a transaction-slot resource).
//
// Transaction ids are allocated monotonically from an atomic counter and are
// never reused: an id consumed by a failed admission is simply skipped, so
// two transactions can never share an id even across admission failures or
// concurrent Begin calls.
func (db *DB) Begin() (*Txn, error) {
	if db.recovering.Load() {
		return nil, ErrRecovering
	}
	id := db.nextTxn.Add(1)
	if err := db.locks.Admit(id); err != nil {
		return nil, err
	}
	return db.newTxn(id), nil
}

// BeginBlocking is Begin for real-concurrency callers: when the engine's
// concurrent-transaction limit is reached it blocks the calling goroutine
// until a slot frees up instead of returning ErrTooManyTransactions.  It must
// not be used from discrete-event simulation processes (blocking a DES
// process goroutine outside the kernel would stall the virtual clock).
func (db *DB) BeginBlocking() (*Txn, error) {
	if db.recovering.Load() {
		return nil, ErrRecovering
	}
	id := db.nextTxn.Add(1)
	if err := db.locks.AdmitWait(id); err != nil {
		return nil, err
	}
	return db.newTxn(id), nil
}

func (db *DB) newTxn(id int64) *Txn {
	db.counters.transactions.Add(1)
	return &Txn{db: db, id: id, active: true, sc: db.scratchPool.Get().(*scratch)}
}

// end releases the transaction's scratch and marks it inactive.
func (t *Txn) end() {
	t.active = false
	t.undo = nil
	if t.sc != nil {
		t.db.scratchPool.Put(t.sc)
		t.sc = nil
	}
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// Active reports whether the transaction can still accept work.
func (t *Txn) Active() bool { return t.active }

// RowsInserted returns the number of rows inserted in this transaction so far
// (since Begin, including rows already made durable by an intermediate
// Commit-and-continue is not supported: commit ends the transaction).
func (t *Txn) RowsInserted() int { return t.rowsInserted }

func (t *Txn) recordInsert(table string, rowID int64) {
	t.undo = append(t.undo, undoRecord{table: table, rowID: rowID, n: 1})
	t.rowsInserted++
}

// recordInsertRange records n contiguous inserts starting at firstID.
func (t *Txn) recordInsertRange(table string, firstID, n int64) {
	if n <= 0 {
		return
	}
	t.undo = append(t.undo, undoRecord{table: table, rowID: firstID, n: n})
	t.rowsInserted += int(n)
}

// Insert validates and stores one row in the named table.  columns selects
// which attributes the values correspond to; unspecified columns are NULL.
// On a constraint violation nothing is stored and the violation is returned.
func (t *Txn) Insert(table string, columns []string, values []Value) (OpReport, error) {
	if !t.active {
		return OpReport{}, ErrTxnNotActive
	}
	return t.db.insert(t, table, columns, values)
}

// CommitReport describes the physical work performed by a commit.
type CommitReport struct {
	// LogBytesForced is the redo volume the commit had to sync.  Under group
	// commit only the group leader carries forced bytes; a waiter's sync cost
	// rode the leader's force, so it reports 0.
	LogBytesForced int64
	// DirtyPagesWritten is the number of dirty cache pages flushed.
	DirtyPagesWritten int
	// CacheScanPages is the number of cached pages the database writer
	// scanned while flushing (proportional to cache size, §4.5.5).
	CacheScanPages int
	// UndoRecordsDiscarded is the length of the undo log released.
	UndoRecordsDiscarded int
	// GroupSize is the number of commits that shared this commit's log sync
	// (including this one); 0 when the commit synced outside group commit.
	// GroupLeader reports whether this commit performed the group's sync.
	GroupSize   int
	GroupLeader bool
}

// Commit makes the transaction's inserts durable and ends the transaction.
//
// With group commit enabled (WithGroupCommit) the commit marker is appended
// without an immediate sync, the transaction's effects are published (epochs
// settled, locks released) and THEN the call blocks until a group leader's
// shared sync covers the marker — so other transactions and readers are never
// held up by the durability wait, only the committing caller is.  This is a
// wall-clock-engine feature: DES-mode cost accounting uses CommitUnsynced
// plus an explicit WAL.SyncGroup instead (see sqlbatch.Server).
func (t *Txn) Commit() (CommitReport, error) {
	if !t.active {
		return CommitReport{}, ErrTxnNotActive
	}
	group := t.db.group
	dev := t.db.wal.dev.Load()
	var forced int64
	// The durable commit marker is appended BEFORE finishCommit settles epochs
	// and pending counts: a checkpoint that observes no pending rows can then
	// rely on every settled transaction's marker being below its LSN boundary.
	if group != nil {
		if dev != nil {
			dev.logMarker(walRecCommit, t.id)
		}
		t.db.wal.AppendCommitNoSync()
	} else {
		if dev != nil {
			dev.logMarker(walRecCommit, t.id)
		}
		forced = t.db.wal.AppendCommit()
		if dev != nil {
			// Commit acknowledgement means the marker is on disk.
			dev.sync()
		}
	}
	rep := t.finishCommit(forced)
	if group != nil {
		// The group leader's SyncGroup fsyncs the device for the whole group.
		rep.LogBytesForced, rep.GroupSize, rep.GroupLeader = group.commit()
	}
	if dev != nil {
		t.db.maybeAutoCheckpoint()
	}
	return rep, nil
}

// CommitUnsynced is Commit without the log sync: the commit marker is
// appended to the unsynced tail and the transaction ends immediately.  The
// caller owns durability — a later WAL.SyncGroup (or any commit's sync) must
// cover the marker.  It exists for cost-model callers that coalesce syncs
// themselves: the DES engine's group-commit analogue commits transactions
// this way and charges one SyncGroup per virtual window, giving virtual-time
// figures the same §4.5.2 coalescing the goroutine engine gets from the real
// commit queue.
func (t *Txn) CommitUnsynced() (CommitReport, error) {
	if !t.active {
		return CommitReport{}, ErrTxnNotActive
	}
	if dev := t.db.wal.dev.Load(); dev != nil {
		dev.logMarker(walRecCommit, t.id)
	}
	t.db.wal.AppendCommitNoSync()
	rep := t.finishCommit(0)
	if t.db.wal.dev.Load() != nil {
		t.db.maybeAutoCheckpoint()
	}
	return rep, nil
}

// finishCommit performs the engine-side half of a commit — dirty-page flush,
// epoch settling, lock release, counters — after the caller has appended the
// commit marker.  It ends the transaction.
func (t *Txn) finishCommit(forced int64) CommitReport {
	written, scanned := t.db.cache.FlushDirty()
	rep := CommitReport{
		LogBytesForced:       forced,
		DirtyPagesWritten:    written,
		CacheScanPages:       scanned,
		UndoRecordsDiscarded: len(t.undo),
	}
	t.settleEpochs()
	t.db.locks.ReleaseAll(t.id)
	t.db.counters.commits.Add(1)
	t.end()
	return rep
}

// settleEpochs advances the commit epoch of every table this transaction
// inserted into and returns the rows to the committed population.  The epoch
// bump happens before the pending count drops so a snapshot reader can never
// observe pendingRows == 0 at both ends of a scan with an unchanged epoch
// while this transaction's rows flipped from uncommitted to committed in
// between (see DB.SnapshotRead).
func (t *Txn) settleEpochs() {
	if len(t.undo) == 0 {
		return
	}
	// Count rows per distinct table; transactions touch a handful of tables,
	// so a linear scan over a small slice beats a map allocation.
	type touched struct {
		table *Table
		rows  int64
	}
	var touchedTables []touched
	for _, u := range t.undo {
		tbl := t.db.tables[u.table]
		if tbl == nil {
			continue
		}
		found := false
		for i := range touchedTables {
			if touchedTables[i].table == tbl {
				touchedTables[i].rows += u.n
				found = true
				break
			}
		}
		if !found {
			touchedTables = append(touchedTables, touched{table: tbl, rows: u.n})
		}
	}
	for _, tc := range touchedTables {
		tc.table.epoch.Add(1)
		tc.table.pendingRows.Add(-tc.rows)
	}
}

// Rollback undoes every insert performed by the transaction and ends it.
func (t *Txn) Rollback() error {
	if !t.active {
		return ErrTxnNotActive
	}
	// The rollback marker needs no sync: a transaction with neither marker on
	// disk is discarded by replay anyway, and one with only its inserts
	// durable is discarded the same way.  The marker exists so replay can
	// account rolled-back transactions explicitly.
	if dev := t.db.wal.dev.Load(); dev != nil {
		dev.logMarker(walRecRollback, t.id)
	}
	// Undo in reverse order so children are removed before parents and the
	// foreign-key invariant never observes an orphan (within a range record,
	// ids descend for the same reason: a self-referential batch stores
	// parents before the children that point at them).
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if tbl := t.db.tables[u.table]; tbl != nil {
			for id := u.rowID + u.n - 1; id >= u.rowID; id-- {
				tbl.deleteRow(t.sc, id)
				t.db.counters.rowsInserted.Add(-1)
			}
		}
	}
	t.settleEpochs()
	t.db.locks.ReleaseAll(t.id)
	t.db.counters.rollbacks.Add(1)
	t.end()
	return nil
}
