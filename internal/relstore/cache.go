package relstore

import (
	"container/list"
	"sync"
)

// BufferCache models the database block buffer cache ("data cache").  The
// paper (§4.5.5) found that a *smaller* data cache improves bulk-load
// performance because the database writer must scan the whole cache each time
// it flushes newly written blocks to disk; the cache therefore reports both
// miss counts and the number of cached pages scanned per flush so the cost
// model can reproduce that effect.
//
// The cache is one shared structure (as in the modeled database) and is
// guarded by a single mutex; MaybeFlushDirty makes the dirty-threshold check
// and the flush one atomic step so concurrent writers cannot double-run the
// database writer for the same batch of dirty pages.
type BufferCache struct {
	mu       sync.Mutex
	capacity int // pages
	lru      *list.List
	index    map[pageKey]*list.Element

	hits     int64
	misses   int64
	evicts   int64
	flushes  int64
	scanWork int64

	dirtySinceFlush int
}

type pageKey struct {
	table string
	page  int
}

type cacheEntry struct {
	key   pageKey
	dirty bool
}

// NewBufferCache creates a cache holding capacity pages (minimum 1).
func NewBufferCache(capacity int) *BufferCache {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferCache{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[pageKey]*list.Element),
	}
}

// Capacity returns the cache capacity in pages.
func (c *BufferCache) Capacity() int { return c.capacity }

// Len returns the number of pages currently cached.
func (c *BufferCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Touch records an access to the given page, marking it dirty when dirty is
// true.  It returns whether the access missed and how many pages were evicted
// to make room.
func (c *BufferCache) Touch(table string, pageID int, dirty bool) (miss bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := pageKey{table: table, page: pageID}
	if el, ok := c.index[k]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		if dirty {
			ent := el.Value.(*cacheEntry)
			if !ent.dirty {
				c.dirtySinceFlush++
			}
			ent.dirty = true
		}
		return false, 0
	}
	c.misses++
	if dirty {
		c.dirtySinceFlush++
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		delete(c.index, ent.key)
		c.lru.Remove(back)
		c.evicts++
		evicted++
	}
	el := c.lru.PushFront(&cacheEntry{key: k, dirty: dirty})
	c.index[k] = el
	return true, evicted
}

// FlushDirty simulates the database writer: it searches the whole allocated
// cache for dirty buffers, clears their dirty flags, and returns
// (dirtyPagesWritten, pagesScanned).  The scan covers the full configured
// capacity — not just the resident pages — which is the mechanism behind the
// paper's §4.5.5 observation that a *smaller* data cache loads faster.
func (c *BufferCache) FlushDirty() (written, scanned int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushDirtyLocked()
}

// flushDirtyLocked is FlushDirty with c.mu already held.
func (c *BufferCache) flushDirtyLocked() (written, scanned int) {
	c.flushes++
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.dirty {
			ent.dirty = false
			written++
		}
	}
	scanned = c.capacity
	c.scanWork += int64(scanned)
	c.dirtySinceFlush = 0
	return written, scanned
}

// MaybeFlushDirty runs the database writer only if at least threshold pages
// were dirtied since the last flush, performing the check and the flush as
// one atomic step.  It reports whether the flush ran.
func (c *BufferCache) MaybeFlushDirty(threshold int) (written, scanned int, flushed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirtySinceFlush < threshold {
		return 0, 0, false
	}
	written, scanned = c.flushDirtyLocked()
	return written, scanned, true
}

// DirtySinceFlush returns the number of dirty-page touches since the database
// writer last ran.
func (c *BufferCache) DirtySinceFlush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirtySinceFlush
}

// CacheStats is a snapshot of buffer-cache counters.
type CacheStats struct {
	Capacity int
	Resident int
	Hits     int64
	Misses   int64
	Evicts   int64
	Flushes  int64
	ScanWork int64
}

// Stats returns a snapshot of the cache counters.
func (c *BufferCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity: c.capacity,
		Resident: c.lru.Len(),
		Hits:     c.hits,
		Misses:   c.misses,
		Evicts:   c.evicts,
		Flushes:  c.flushes,
		ScanWork: c.scanWork,
	}
}

// HitRatio returns hits / (hits+misses), or 0 when there were no accesses.
func (c *BufferCache) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
