package relstore

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCoerce(t *testing.T) {
	ts := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		in      Value
		typ     ColType
		want    Value
		wantErr bool
	}{
		{int64(7), TypeInt, int64(7), false},
		{7, TypeInt, int64(7), false},
		{int32(7), TypeInt, int64(7), false},
		{7.0, TypeInt, int64(7), false},
		{7.5, TypeInt, nil, true},
		{" 42 ", TypeInt, int64(42), false},
		{"x", TypeInt, nil, true},
		{3.25, TypeFloat, 3.25, false},
		{float32(2), TypeFloat, 2.0, false},
		{5, TypeFloat, 5.0, false},
		{"2.5", TypeFloat, 2.5, false},
		{"abc", TypeFloat, nil, true},
		{"hello", TypeString, "hello", false},
		{int64(12), TypeString, "12", false},
		{ts, TypeTime, ts, false},
		{"2005-11-12T00:00:00Z", TypeTime, ts, false},
		{"not a time", TypeTime, nil, true},
		{true, TypeBool, true, false},
		{"true", TypeBool, true, false},
		{int64(0), TypeBool, false, false},
		{nil, TypeInt, nil, false},
	}
	for i, c := range cases {
		got, err := Coerce(c.in, c.typ)
		if c.wantErr {
			if err == nil {
				t.Errorf("case %d: expected error for %v -> %v", i, c.in, c.typ)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
			continue
		}
		if CompareValues(got, c.want) != 0 && got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestCompareValues(t *testing.T) {
	if CompareValues(nil, nil) != 0 {
		t.Error("nil should equal nil")
	}
	if CompareValues(nil, int64(1)) != -1 || CompareValues(int64(1), nil) != 1 {
		t.Error("nil should sort before values")
	}
	if CompareValues(int64(1), int64(2)) != -1 || CompareValues(int64(2), int64(1)) != 1 || CompareValues(int64(2), int64(2)) != 0 {
		t.Error("integer comparison broken")
	}
	if CompareValues("a", "b") != -1 {
		t.Error("string comparison broken")
	}
	if CompareValues(false, true) != -1 || CompareValues(true, true) != 0 {
		t.Error("bool comparison broken")
	}
	a := time.Unix(1, 0)
	b := time.Unix(2, 0)
	if CompareValues(a, b) != -1 || CompareValues(b, a) != 1 {
		t.Error("time comparison broken")
	}
}

func TestCompareKeys(t *testing.T) {
	if CompareKeys([]Value{int64(1), "a"}, []Value{int64(1), "b"}) != -1 {
		t.Error("composite comparison broken")
	}
	if CompareKeys([]Value{int64(1)}, []Value{int64(1), "b"}) != -1 {
		t.Error("shorter prefix should sort first")
	}
	if CompareKeys([]Value{int64(2)}, []Value{int64(1), "b"}) != 1 {
		t.Error("first column should dominate")
	}
}

// TestCompareValuesProperty checks antisymmetry and reflexivity of the int and
// float orderings.
func TestCompareValuesProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Value(a), Value(b)
		return CompareValues(x, y) == -CompareValues(y, x) && CompareValues(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, y := Value(a), Value(b)
		return CompareValues(x, y) == -CompareValues(y, x)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeKeyInjective checks that distinct int pairs never collide.
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		ka := EncodeKey([]Value{a1, a2})
		kb := EncodeKey([]Value{b1, b2})
		if a1 == b1 && a2 == b2 {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyTypesDistinct(t *testing.T) {
	if EncodeKey([]Value{int64(1)}) == EncodeKey([]Value{"1"}) {
		t.Error("int and string encodings must differ")
	}
	if EncodeKey([]Value{nil}) == EncodeKey([]Value{""}) {
		t.Error("nil and empty string encodings must differ")
	}
}

func TestRowSizeAndValueSize(t *testing.T) {
	row := Row{int64(1), 2.5, "abc", nil, true}
	if got := RowSize(row); got != 4+8+8+(2+3)+1+1 {
		t.Errorf("RowSize = %d", got)
	}
	if ValueSize(time.Now()) != 12 {
		t.Error("time size should be 12")
	}
}

func TestRoundTo(t *testing.T) {
	if RoundTo(3.14159, 2) != 3.14 {
		t.Errorf("RoundTo(3.14159,2) = %v", RoundTo(3.14159, 2))
	}
	if RoundTo(2.5, 0) != 3 {
		t.Errorf("RoundTo(2.5,0) = %v", RoundTo(2.5, 0))
	}
	if RoundTo(1.23456, -1) != 1.23456 {
		t.Error("negative places should be a no-op")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"NULL": nil,
		"42":   int64(42),
		"2.5":  2.5,
		"abc":  "abc",
		"true": true,
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{int64(1), "x"}
	c := r.Clone()
	c[0] = int64(2)
	if r[0] != int64(1) {
		t.Error("Clone did not copy")
	}
}
