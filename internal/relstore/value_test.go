package relstore

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCoerce(t *testing.T) {
	ts := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		in      Value
		typ     ColType
		want    Value
		wantErr bool
	}{
		{Int(7), TypeInt, Int(7), false},
		{Float(7.0), TypeInt, Int(7), false},
		{Float(7.5), TypeInt, Null, true},
		{Str(" 42 "), TypeInt, Int(42), false},
		{Str("x"), TypeInt, Null, true},
		{Float(3.25), TypeFloat, Float(3.25), false},
		{Int(5), TypeFloat, Float(5.0), false},
		{Str("2.5"), TypeFloat, Float(2.5), false},
		{Str("abc"), TypeFloat, Null, true},
		{Str("hello"), TypeString, Str("hello"), false},
		{Int(12), TypeString, Str("12"), false},
		{Float(2.5), TypeString, Str("2.5"), false},
		{Time(ts), TypeTime, Time(ts), false},
		{Str("2005-11-12T00:00:00Z"), TypeTime, Time(ts), false},
		{Int(ts.Unix()), TypeTime, Time(ts), false},
		{Str("not a time"), TypeTime, Null, true},
		{Bool(true), TypeBool, Bool(true), false},
		{Str("true"), TypeBool, Bool(true), false},
		{Int(0), TypeBool, Bool(false), false},
		{Bool(true), TypeInt, Null, true},
		{Null, TypeInt, Null, false},
	}
	for i, c := range cases {
		got, err := Coerce(c.in, c.typ)
		if c.wantErr {
			if err == nil {
				t.Errorf("case %d: expected error for %v -> %v", i, c.in, c.typ)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Int(1).IsNull() {
		t.Error("IsNull broken")
	}
	if Int(7).Int() != 7 || Float(2.5).Float() != 2.5 || Str("x").Str() != "x" {
		t.Error("accessors broken")
	}
	if !Bool(true).Bool() || Bool(false).Bool() {
		t.Error("bool accessor broken")
	}
	ts := time.Date(2005, 11, 12, 3, 4, 5, 600, time.UTC)
	if !Time(ts).Time().Equal(ts) {
		t.Errorf("time round trip: got %v, want %v", Time(ts).Time(), ts)
	}
}

func TestCompareValues(t *testing.T) {
	if CompareValues(Null, Null) != 0 {
		t.Error("NULL should equal NULL")
	}
	if CompareValues(Null, Int(1)) != -1 || CompareValues(Int(1), Null) != 1 {
		t.Error("NULL should sort before values")
	}
	if CompareValues(Int(1), Int(2)) != -1 || CompareValues(Int(2), Int(1)) != 1 || CompareValues(Int(2), Int(2)) != 0 {
		t.Error("integer comparison broken")
	}
	if CompareValues(Str("a"), Str("b")) != -1 {
		t.Error("string comparison broken")
	}
	if CompareValues(Bool(false), Bool(true)) != -1 || CompareValues(Bool(true), Bool(true)) != 0 {
		t.Error("bool comparison broken")
	}
	a := Time(time.Unix(1, 0))
	b := Time(time.Unix(2, 0))
	if CompareValues(a, b) != -1 || CompareValues(b, a) != 1 {
		t.Error("time comparison broken")
	}
}

func TestCompareValuesKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing mismatched kinds should panic")
		}
	}()
	CompareValues(Int(1), Str("1"))
}

func TestCompareKeys(t *testing.T) {
	if CompareKeys([]Value{Int(1), Str("a")}, []Value{Int(1), Str("b")}) != -1 {
		t.Error("composite comparison broken")
	}
	if CompareKeys([]Value{Int(1)}, []Value{Int(1), Str("b")}) != -1 {
		t.Error("shorter prefix should sort first")
	}
	if CompareKeys([]Value{Int(2)}, []Value{Int(1), Str("b")}) != 1 {
		t.Error("first column should dominate")
	}
}

// TestCompareValuesProperty checks antisymmetry and reflexivity of the int and
// float orderings.
func TestCompareValuesProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		return CompareValues(x, y) == -CompareValues(y, x) && CompareValues(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, y := Float(a), Float(b)
		return CompareValues(x, y) == -CompareValues(y, x)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeKeyInjective checks that distinct int pairs never collide.
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		ka := EncodeKey([]Value{Int(a1), Int(a2)})
		kb := EncodeKey([]Value{Int(b1), Int(b2)})
		if a1 == b1 && a2 == b2 {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyTypesDistinct(t *testing.T) {
	if EncodeKey([]Value{Int(1)}) == EncodeKey([]Value{Str("1")}) {
		t.Error("int and string encodings must differ")
	}
	if EncodeKey([]Value{Null}) == EncodeKey([]Value{Str("")}) {
		t.Error("NULL and empty string encodings must differ")
	}
}

// TestAppendKeyMatchesEncodeKey pins that the scratch-buffer path and the
// allocating path produce identical encodings (the hash maps mix both).
func TestAppendKeyMatchesEncodeKey(t *testing.T) {
	keys := [][]Value{
		{Int(42)},
		{Int(-3), Float(2.5), Str("R")},
		{Null, Bool(true), Bool(false)},
		{Time(time.Unix(123, 456))},
	}
	buf := make([]byte, 0, 64)
	for _, key := range keys {
		buf = AppendKey(buf[:0], key)
		if string(buf) != EncodeKey(key) {
			t.Errorf("AppendKey(%v) = %q, EncodeKey = %q", key, buf, EncodeKey(key))
		}
	}
}

func TestRowSizeAndValueSize(t *testing.T) {
	row := Row{Int(1), Float(2.5), Str("abc"), Null, Bool(true)}
	if got := RowSize(row); got != 4+8+8+(2+3)+1+1 {
		t.Errorf("RowSize = %d", got)
	}
	if ValueSize(Time(time.Now())) != 12 {
		t.Error("time size should be 12")
	}
}

func TestRoundTo(t *testing.T) {
	if RoundTo(3.14159, 2) != 3.14 {
		t.Errorf("RoundTo(3.14159,2) = %v", RoundTo(3.14159, 2))
	}
	if RoundTo(2.5, 0) != 3 {
		t.Errorf("RoundTo(2.5,0) = %v", RoundTo(2.5, 0))
	}
	if RoundTo(1.23456, -1) != 1.23456 {
		t.Error("negative places should be a no-op")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null,
		"42":   Int(42),
		"2.5":  Float(2.5),
		"abc":  Str("abc"),
		"true": Bool(true),
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0] != Int(1) {
		t.Error("Clone did not copy")
	}
}
