package relstore

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func insertFrame(t *testing.T, txn *Txn, id int64) {
	t.Helper()
	if _, err := txn.Insert("frames", []string{"frame_id", "exposure"}, []Value{Int(id), Float(145.0)}); err != nil {
		t.Fatalf("insert frame %d: %v", id, err)
	}
}

func insertObject(t *testing.T, txn *Txn, id, frame int64, mag float64) error {
	t.Helper()
	_, err := txn.Insert("objects", []string{"object_id", "frame_id", "mag"}, []Value{Int(id), Int(frame), Float(mag)})
	return err
}

func TestInsertAndQuery(t *testing.T) {
	db := newTestDB(t)
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	insertFrame(t, txn, 1)
	for i := int64(1); i <= 10; i++ {
		if err := insertObject(t, txn, i, 1, 15+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("objects"); n != 10 {
		t.Fatalf("Count = %d, want 10", n)
	}
	row, err := db.LookupByPK("objects", []Value{Int(3)})
	if err != nil || row == nil {
		t.Fatalf("LookupByPK failed: %v %v", row, err)
	}
	if row[2].Float() != 18 {
		t.Fatalf("mag = %v, want 18", row[2])
	}
	rows, err := db.SelectWhere("objects", func(r Row) bool { return r[2].F > 20 }, 0)
	if err != nil || len(rows) != 5 {
		t.Fatalf("SelectWhere returned %d rows, want 5 (err=%v)", len(rows), err)
	}
	agg, err := db.Aggregate("objects", "mag")
	if err != nil || agg.Count != 10 || agg.Min != 16 || agg.Max != 25 {
		t.Fatalf("Aggregate = %+v (err=%v)", agg, err)
	}
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans = %d", orphans)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintViolations(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	if err := insertObject(t, txn, 1, 1, 20); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fn   func() error
		kind ConstraintKind
	}{
		{"duplicate pk", func() error { return insertObject(t, txn, 1, 1, 21) }, KindPrimaryKey},
		{"missing parent", func() error { return insertObject(t, txn, 2, 99, 21) }, KindForeignKey},
		{"check violation", func() error { return insertObject(t, txn, 3, 1, 99) }, KindCheck},
		{"not null", func() error {
			_, err := txn.Insert("objects", []string{"object_id", "frame_id"}, []Value{Int(4), Int(1)})
			return err
		}, KindNotNull},
		{"type mismatch", func() error {
			_, err := txn.Insert("objects", []string{"object_id", "frame_id", "mag"}, []Value{Str("zzz"), Int(1), Float(20.0)})
			return err
		}, KindType},
		{"arity mismatch", func() error {
			_, err := txn.Insert("objects", []string{"object_id"}, []Value{Int(5), Int(1)})
			return err
		}, KindArity},
		{"unknown column", func() error {
			_, err := txn.Insert("objects", []string{"object_id", "frame_id", "nope"}, []Value{Int(6), Int(1), Float(1.0)})
			return err
		}, KindArity},
		{"unknown table", func() error {
			_, err := txn.Insert("nope", []string{"x"}, []Value{Int(1)})
			return err
		}, KindUnknownTable},
	}
	for _, c := range cases {
		err := c.fn()
		if err == nil {
			t.Errorf("%s: expected violation", c.name)
			continue
		}
		kind, ok := ViolationKind(err)
		if !ok || kind != c.kind {
			t.Errorf("%s: got kind %v (%v), want %v", c.name, kind, err, c.kind)
		}
		if !IsConstraintViolation(err) {
			t.Errorf("%s: IsConstraintViolation = false", c.name)
		}
	}

	// The failed inserts must not have stored anything.
	if n, _ := db.Count("objects"); n != 1 {
		t.Fatalf("object count = %d, want 1", n)
	}
	st := db.Stats()
	if st.RowsRejected == 0 || st.ConstraintViolations[KindPrimaryKey] != 1 {
		t.Fatalf("stats did not record violations: %+v", st)
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	if err := insertObject(t, txn, 1, 1, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("fingers", []string{"finger_id", "object_id", "flux"}, []Value{Int(1), Int(1), Float(5.0)}); err != nil {
		t.Fatal(err)
	}
	_, err := txn.Insert("fingers", []string{"finger_id", "object_id", "flux"}, []Value{Int(2), Int(1), Float(5.0)})
	if kind, _ := ViolationKind(err); kind != KindUnique {
		t.Fatalf("expected unique violation, got %v", err)
	}
	// A different flux value is fine.
	if _, err := txn.Insert("fingers", []string{"finger_id", "object_id", "flux"}, []Value{Int(2), Int(1), Float(6.0)}); err != nil {
		t.Fatal(err)
	}
}

func TestNullForeignKeyAllowed(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	if err := insertObject(t, txn, 1, 1, 20); err != nil {
		t.Fatal(err)
	}
	// fingers.flux is nullable and part of a unique key; a NULL FK component
	// (object_id is NOT NULL here, so use flux NULL) exercises the nullable
	// path of unique handling instead.
	if _, err := txn.Insert("fingers", []string{"finger_id", "object_id"}, []Value{Int(1), Int(1)}); err != nil {
		t.Fatalf("nullable column insert failed: %v", err)
	}
}

func TestRollbackUndoesInserts(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	for i := int64(1); i <= 5; i++ {
		if err := insertObject(t, txn, i, 1, 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("objects"); n != 0 {
		t.Fatalf("rollback left %d objects", n)
	}
	if n, _ := db.Count("frames"); n != 0 {
		t.Fatalf("rollback left %d frames", n)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
	// The keys can be reinserted afterwards.
	txn2, _ := db.Begin()
	insertFrame(t, txn2, 1)
	if err := insertObject(t, txn2, 1, 1, 20); err != nil {
		t.Fatalf("reinsert after rollback failed: %v", err)
	}
	if _, err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Rollbacks != 1 || db.Stats().Commits != 1 {
		t.Fatalf("stats: %+v", db.Stats())
	}
}

func TestTxnLifecycleErrors(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := txn.Rollback(); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("rollback after commit: %v", err)
	}
	if _, err := txn.Insert("frames", []string{"frame_id"}, []Value{Int(1)}); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("insert after commit: %v", err)
	}
}

func TestConcurrentTxnLimit(t *testing.T) {
	db, err := Open(testSchema(t), WithMaxConcurrentTxns(2))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrTooManyTransactions) {
		t.Fatalf("third txn: %v", err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestSecondaryIndexes(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	for i := int64(1); i <= 100; i++ {
		if err := insertObject(t, txn, i, 1, float64(10+i%20)); err != nil {
			t.Fatal(err)
		}
	}
	// Create an index on a populated table (backfill).
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("duplicate index: %v", err)
	}
	rows, visited, err := db.SelectEqualIndexed("objects", "ix_mag", []Value{Float(15)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || visited == 0 {
		t.Fatalf("indexed lookup returned %d rows (visited %d)", len(rows), visited)
	}
	ranged, err := db.RangeIndexed("objects", "ix_mag", []Value{Float(10)}, []Value{Float(12)}, 0)
	if err != nil || len(ranged) != 15 {
		t.Fatalf("RangeIndexed returned %d rows (err=%v)", len(ranged), err)
	}
	// New inserts maintain the index.
	if err := insertObject(t, txn, 200, 1, 15); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = db.SelectEqualIndexed("objects", "ix_mag", []Value{Float(15)})
	if len(rows) != 6 {
		t.Fatalf("index not maintained: %d rows", len(rows))
	}
	if got := len(db.AllIndexes()); got != 1 {
		t.Fatalf("AllIndexes = %d", got)
	}
	if err := db.DropIndex("objects", "ix_mag"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("objects", "ix_mag"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if _, _, err := db.SelectEqualIndexed("objects", "ix_mag", []Value{Float(15)}); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("query on dropped index: %v", err)
	}
}

func TestIndexCostReporting(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.CreateIndex("objects", "ix_mag", []string{"mag"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("objects", "ix_pair", []string{"mag", "frame_id"}, false); err != nil {
		t.Fatal(err)
	}
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	rep, err := txn.Insert("objects", []string{"object_id", "frame_id", "mag"}, []Value{Int(1), Int(1), Float(20.0)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IndexNodesVisited == 0 {
		t.Fatal("no index nodes visited reported")
	}
	if rep.IndexFloatColNodeVisits == 0 || rep.IndexIntColNodeVisits == 0 {
		t.Fatalf("per-type visits missing: %+v", rep)
	}
	if rep.LogBytes == 0 || rep.RowsInserted != 1 || rep.ConstraintChecks == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
}

func TestPrePopulate(t *testing.T) {
	db := newTestDB(t)
	if err := db.PrePopulate("objects", 1000, 200000); err != nil {
		t.Fatal(err)
	}
	if err := db.PrePopulate("missing", 1, 1); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("PrePopulate missing table: %v", err)
	}
	tbl := db.Table("objects")
	if tbl.LogicalRowCount() != 1000 || tbl.RowCount() != 0 {
		t.Fatalf("logical=%d physical=%d", tbl.LogicalRowCount(), tbl.RowCount())
	}
	before := db.TotalBytes()
	db.PrePopulateEvenly(3_000_000)
	if db.TotalBytes() <= before {
		t.Fatal("PrePopulateEvenly did not add bytes")
	}
}

func TestQueryErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Count("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("Count missing: %v", err)
	}
	if err := db.Scan("missing", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("Scan missing: %v", err)
	}
	if _, err := db.Aggregate("frames", "nope"); err == nil {
		t.Fatal("Aggregate on missing column should fail")
	}
}

func TestWALAccounting(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	rep, _ := txn.Commit()
	if rep.LogBytesForced == 0 {
		t.Fatal("commit forced no log bytes")
	}
	st := db.WAL().Stats()
	if st.Commits != 1 || st.Records < 2 || st.Bytes == 0 {
		t.Fatalf("WAL stats: %+v", st)
	}
}

func TestCacheAccounting(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	for i := int64(1); i <= 2000; i++ {
		insertFrame(t, txn, i)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	st := db.Cache().Stats()
	if st.Misses == 0 || st.Flushes == 0 {
		t.Fatalf("cache stats: %+v", st)
	}
	if db.Cache().HitRatio() <= 0 {
		t.Fatal("expected some cache hits")
	}
}

// TestInsertRejectionNeverStoresProperty: for arbitrary object ids and mags,
// either the insert succeeds and the row is retrievable, or it fails and the
// row count is unchanged.
func TestInsertRejectionNeverStoresProperty(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	seen := map[int64]bool{}
	f := func(id int64, mag float64) bool {
		if id < 0 {
			id = -id
		}
		before, _ := db.Count("objects")
		err := insertObject(t, txn, id, 1, mag)
		after, _ := db.Count("objects")
		expectOK := !seen[id] && mag >= 0 && mag <= 40
		if expectOK {
			if err != nil {
				return false
			}
			seen[id] = true
			return after == before+1
		}
		return err != nil && after == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalsAndRowCounts(t *testing.T) {
	db := newTestDB(t)
	txn, _ := db.Begin()
	insertFrame(t, txn, 1)
	insertFrame(t, txn, 2)
	if err := insertObject(t, txn, 1, 1, 20); err != nil {
		t.Fatal(err)
	}
	counts := db.RowCounts()
	if counts["frames"] != 2 || counts["objects"] != 1 || counts["fingers"] != 0 {
		t.Fatalf("RowCounts = %v", counts)
	}
	if db.TotalRows() != 3 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
	if db.TotalBytes() == 0 {
		t.Fatal("TotalBytes = 0")
	}
}
