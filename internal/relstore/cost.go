package relstore

// OpReport describes the physical work performed by a storage-engine
// operation.  The engine itself is time-free; the sqlbatch server converts
// these counts into virtual service time on the simulated server's CPU, data
// disk, index disk and redo-log disk, which is how the paper's runtime curves
// are regenerated without the original Oracle/Altix/SAN hardware.
type OpReport struct {
	// RowsInserted is the number of rows durably added.
	RowsInserted int
	// RowBytes is the total size of the inserted rows.
	RowBytes int
	// PagesDirtied counts heap pages newly written or modified.
	PagesDirtied int
	// CacheMisses counts buffer-cache misses incurred.
	CacheMisses int
	// CacheScanPages is the number of cached pages examined by the database
	// writer while flushing (grows with the configured data-cache size; see
	// §4.5.5 of the paper).
	CacheScanPages int
	// IndexNodesVisited counts B-tree nodes touched across all maintained
	// secondary indexes.
	IndexNodesVisited int
	// IndexIntColNodeVisits counts node visits weighted by the number of
	// integer key columns in the index (one unit per integer column per
	// node visited).  Together with IndexFloatColNodeVisits it lets the
	// cost model charge differently for the single-integer htmid index and
	// the composite three-float index of Figure 8.
	IndexIntColNodeVisits int
	// IndexFloatColNodeVisits counts node visits weighted by the number of
	// float key columns in the index.
	IndexFloatColNodeVisits int
	// IndexSplits counts B-tree node splits across all maintained indexes.
	IndexSplits int
	// IndexEntryBytes is the volume of index entries written.
	IndexEntryBytes int
	// LogBytes is the redo-log volume generated.
	LogBytes int
	// ConstraintChecks counts individual constraint evaluations (PK, FK,
	// unique, check, not-null).
	ConstraintChecks int
	// FKLookups counts parent-table primary-key probes.
	FKLookups int
	// UndoRecords counts undo entries appended for the owning transaction.
	UndoRecords int
}

// Add accumulates another report into r.
func (r *OpReport) Add(o OpReport) {
	r.RowsInserted += o.RowsInserted
	r.RowBytes += o.RowBytes
	r.PagesDirtied += o.PagesDirtied
	r.CacheMisses += o.CacheMisses
	r.CacheScanPages += o.CacheScanPages
	r.IndexNodesVisited += o.IndexNodesVisited
	r.IndexIntColNodeVisits += o.IndexIntColNodeVisits
	r.IndexFloatColNodeVisits += o.IndexFloatColNodeVisits
	r.IndexSplits += o.IndexSplits
	r.IndexEntryBytes += o.IndexEntryBytes
	r.LogBytes += o.LogBytes
	r.ConstraintChecks += o.ConstraintChecks
	r.FKLookups += o.FKLookups
	r.UndoRecords += o.UndoRecords
}

// DBStats aggregates engine-wide counters since database creation.
type DBStats struct {
	RowsInserted         int64
	RowsRejected         int64
	Transactions         int64
	Commits              int64
	Rollbacks            int64
	ConstraintViolations map[ConstraintKind]int64
	PagesAllocated       int64
	LogBytes             int64
	IndexSplits          int64
	LockConflicts        int64
	// IndexesCreated/IndexesDropped count successful index DDL operations;
	// IndexDDLFailures counts failed ones (unknown table/column, duplicate or
	// missing index).  CreateIndexWith and DropIndex update them
	// symmetrically.
	IndexesCreated   int64
	IndexesDropped   int64
	IndexDDLFailures int64
	// WALSyncs is the total number of redo-log syncs (per-commit, threshold
	// and group); GroupCommits counts group syncs, GroupedCommits the commits
	// they covered, MaxGroupSize the largest single group (see WALStats).
	WALSyncs       int64
	GroupCommits   int64
	GroupedCommits int64
	MaxGroupSize   int64
	// IndexKeyBytes is the summed length of the encoded keys stored across
	// every secondary-index B-tree; IndexArenaBytes is the capacity their key
	// arenas reserve.  The difference is arena overhead (chunk headroom plus
	// duplicate-key bytes bulk builds skip over) — the node-memory footprint
	// numbers BENCH_btreekeys.json tracks across the encoded-key refactor.
	IndexKeyBytes   int64
	IndexArenaBytes int64
}

// newDBStats returns a zeroed stats structure with the violation map ready.
func newDBStats() DBStats {
	return DBStats{ConstraintViolations: make(map[ConstraintKind]int64)}
}
