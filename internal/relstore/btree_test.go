package relstore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// intKey encodes a one-integer composite key the way the table layer does.
func intKey(v int64) []byte { return EncodeOrderedKey([]Value{Int(v)}) }

func TestBTreeInsertSearch(t *testing.T) {
	bt := NewBTree(3)
	for i := int64(0); i < 200; i++ {
		bt.Insert(intKey(i*7%201), i)
	}
	if bt.Len() != 200 {
		t.Fatalf("Len = %d, want 200", bt.Len())
	}
	for i := int64(0); i < 200; i++ {
		ids, _ := bt.Search(intKey(i * 7 % 201))
		if len(ids) != 1 || ids[0] != i {
			t.Fatalf("Search(%d) = %v, want [%d]", i*7%201, ids, i)
		}
	}
	if ids, _ := bt.Search(intKey(9999)); ids != nil {
		t.Fatalf("Search(missing) = %v, want nil", ids)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestBTreeDuplicateKeysAccumulate(t *testing.T) {
	bt := NewBTree(4)
	for i := int64(0); i < 10; i++ {
		st := bt.Insert(intKey(5), i)
		if i > 0 && st.NewKey {
			t.Fatal("duplicate key reported as new")
		}
	}
	ids, _ := bt.Search(intKey(5))
	if len(ids) != 10 {
		t.Fatalf("expected 10 row ids, got %d", len(ids))
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree(3)
	for i := int64(0); i < 50; i++ {
		bt.Insert(intKey(i), i)
	}
	if !bt.Delete(intKey(10), 10) {
		t.Fatal("Delete existing failed")
	}
	if bt.Delete(intKey(10), 10) {
		t.Fatal("Delete twice should fail")
	}
	if bt.Delete(intKey(999), 1) {
		t.Fatal("Delete missing key should fail")
	}
	ids, _ := bt.Search(intKey(10))
	if len(ids) != 0 {
		t.Fatalf("deleted key still has ids: %v", ids)
	}
}

func TestBTreeHeightGrows(t *testing.T) {
	bt := NewBTree(2)
	h1 := bt.Height()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(intKey(i), i)
	}
	if bt.Height() <= h1 {
		t.Fatalf("height did not grow: %d", bt.Height())
	}
	if bt.Splits() == 0 {
		t.Fatal("expected splits")
	}
	if bt.NodeCount() < 10 {
		t.Fatalf("node count = %d, want many", bt.NodeCount())
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree(3)
	for i := int64(0); i < 100; i++ {
		bt.Insert(intKey(i), i)
	}
	var got []int64
	bt.AscendRange(intKey(10), intKey(20), func(key []byte, ids []int64) bool {
		vals, err := DecodeOrderedKey(key)
		if err != nil {
			t.Fatalf("stored key %x does not decode: %v", key, err)
		}
		got = append(got, vals[0].Int())
		return true
	})
	if len(got) != 11 {
		t.Fatalf("range [10,20] returned %d keys: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(10+i) {
			t.Fatalf("range out of order: %v", got)
		}
	}
	// Early stop.
	count := 0
	bt.AscendRange(nil, nil, func([]byte, []int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeKeysSorted(t *testing.T) {
	bt := NewBTree(5)
	rng := rand.New(rand.NewSource(3))
	seen := map[int64]bool{}
	for i := 0; i < 500; i++ {
		v := rng.Int63n(10000)
		seen[v] = true
		bt.Insert(intKey(v), int64(i))
	}
	keys := bt.Keys()
	if len(keys) != len(seen) {
		t.Fatalf("Keys returned %d, want %d", len(keys), len(seen))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatal("keys not strictly increasing")
		}
	}
}

func TestBTreeCompositeKeys(t *testing.T) {
	enc := func(vals ...Value) []byte { return EncodeOrderedKey(vals) }
	bt := NewBTree(3)
	bt.Insert(enc(Float(1.5), Float(2.5), Str("a")), 1)
	bt.Insert(enc(Float(1.5), Float(2.5), Str("b")), 2)
	bt.Insert(enc(Float(1.5), Float(1.0), Str("z")), 3)
	ids, _ := bt.Search(enc(Float(1.5), Float(2.5), Str("a")))
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("composite search = %v", ids)
	}
	keys := bt.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys returned %d keys", len(keys))
	}
	first, err := DecodeOrderedKey(keys[0])
	if err != nil {
		t.Fatalf("decode first key: %v", err)
	}
	if first[1].Float() != 1.0 {
		t.Fatalf("composite ordering wrong: %v", first)
	}
}

// TestBTreeInvariantsProperty inserts random keys and validates structural
// invariants and retrievability.
func TestBTreeInvariantsProperty(t *testing.T) {
	f := func(seed int64, degree uint8, n uint16) bool {
		d := int(degree%6) + 2
		count := int(n%800) + 1
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree(d)
		inserted := map[int64][]int64{}
		for i := 0; i < count; i++ {
			k := rng.Int63n(500)
			bt.Insert(intKey(k), int64(i))
			inserted[k] = append(inserted[k], int64(i))
		}
		if err := bt.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if bt.Len() != len(inserted) {
			return false
		}
		for k, want := range inserted {
			ids, _ := bt.Search(intKey(k))
			if len(ids) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeMinimumDegreeRaised(t *testing.T) {
	bt := NewBTree(0)
	for i := int64(0); i < 100; i++ {
		bt.Insert(intKey(i), i)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
