//go:build skydebug

package relstore

// debugChecks gates invariant assertions that are too hot (or too loud) for
// production builds; `go test -tags skydebug ./internal/relstore/` turns them
// into panics.
const debugChecks = true
