package httpserve

import (
	"fmt"
	"net/url"
	"strconv"

	"skyloader/internal/queries"
)

// Endpoint paths.  The skystorm load driver imports these (and QueryURL) so
// the driver and the server cannot drift on the wire scheme.
const (
	PathCone    = "/v1/cone"
	PathObject  = "/v1/object"
	PathFrame   = "/v1/frame"
	PathMagHist = "/v1/maghist"
	PathStats   = "/v1/stats"
	PathMetrics = "/metrics"
	PathHealthz = "/healthz"
	PathTraces  = "/debug/traces"
)

// QueryURL renders the path and query string that requests q — the inverse
// of parseQuery.
func QueryURL(q queries.Query) (string, error) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch q := q.(type) {
	case queries.Cone:
		v := url.Values{}
		v.Set("ra", f(q.RA))
		v.Set("dec", f(q.Dec))
		v.Set("radius", f(q.RadiusDeg))
		return PathCone + "?" + v.Encode(), nil
	case queries.ObjectLookup:
		return PathObject + "?id=" + strconv.FormatInt(q.ObjectID, 10), nil
	case queries.FrameObjects:
		return PathFrame + "?id=" + strconv.FormatInt(q.FrameID, 10), nil
	case queries.MagHistogram:
		return PathMagHist + "?bin=" + f(q.BinWidth), nil
	}
	return "", fmt.Errorf("httpserve: unsupported query type %T", q)
}

// parseQuery builds the queries.Query for a request path + parameters — the
// inverse of QueryURL.
func parseQuery(path string, v url.Values) (queries.Query, error) {
	switch path {
	case PathCone:
		ra, err1 := parseFloat(v, "ra")
		dec, err2 := parseFloat(v, "dec")
		radius, err3 := parseFloat(v, "radius")
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if radius <= 0 || radius > 90 {
			return nil, fmt.Errorf("radius %g out of range (0, 90]", radius)
		}
		return queries.Cone{RA: ra, Dec: dec, RadiusDeg: radius}, nil
	case PathObject:
		id, err := parseInt(v, "id")
		if err != nil {
			return nil, err
		}
		return queries.ObjectLookup{ObjectID: id}, nil
	case PathFrame:
		id, err := parseInt(v, "id")
		if err != nil {
			return nil, err
		}
		return queries.FrameObjects{FrameID: id}, nil
	case PathMagHist:
		bin, err := parseFloat(v, "bin")
		if err != nil {
			return nil, err
		}
		if bin <= 0 || bin > 10 {
			return nil, fmt.Errorf("bin %g out of range (0, 10]", bin)
		}
		return queries.MagHistogram{BinWidth: bin}, nil
	}
	return nil, fmt.Errorf("no query at %q", path)
}

func parseFloat(v url.Values, key string) (float64, error) {
	raw := v.Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", key)
	}
	x, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %s=%q", key, raw)
	}
	return x, nil
}

func parseInt(v url.Values, key string) (int64, error) {
	raw := v.Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", key)
	}
	x, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %s=%q", key, raw)
	}
	return x, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
