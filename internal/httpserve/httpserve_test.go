package httpserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/parallel"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// httpEnv is a loaded database + realtime query server + HTTP front door
// bound to a loopback port.
type httpEnv struct {
	db     *relstore.DB
	qs     *serve.Server
	front  *Server
	base   string
	client *http.Client
}

// newHTTPEnv builds the full serving stack on the realtime engine, loads a
// small night of data and starts the front door on a free loopback port.
func newHTTPEnv(t testing.TB, cfg Config) *httpEnv {
	t.Helper()
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 5})
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		t.Fatal(err)
	}
	load := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: 4, Files: 2, RowsPerMB: 100, Seed: 5, RunID: 1,
	})
	if _, err := parallel.Run(load, files, parallel.Config{
		Loaders: 2,
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	qs := serve.NewServer(sched, db, serve.Config{Workers: 4, QueueDepth: 1000})
	front, err := New(qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := front.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	return &httpEnv{
		db:     db,
		qs:     qs,
		front:  front,
		base:   "http://" + addr.String(),
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

// get fetches a path and returns status + body.
func (e *httpEnv) get(t testing.TB, path string) (int, []byte) {
	t.Helper()
	resp, err := e.client.Get(e.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestQueryEndpointsRoundTrip(t *testing.T) {
	env := newHTTPEnv(t, Config{})

	reqs := []queries.Query{
		queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2},
		queries.ObjectLookup{ObjectID: 100_000_010},
		queries.FrameObjects{FrameID: 3},
		queries.MagHistogram{BinWidth: 0.5},
	}
	for _, q := range reqs {
		u, err := QueryURL(q)
		if err != nil {
			t.Fatal(err)
		}
		status, body := env.get(t, u)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", u, status, body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: bad JSON %v in %s", u, err, body)
		}
		if resp.Outcome != "served" && resp.Outcome != "cache_hit" {
			t.Fatalf("%s: outcome %q", u, resp.Outcome)
		}
		if resp.RequestID == 0 {
			t.Fatalf("%s: no request id", u)
		}
	}

	// An identical repeat must come out of the result cache.
	u, _ := QueryURL(queries.ObjectLookup{ObjectID: 100_000_010})
	_, body := env.get(t, u)
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != "cache_hit" {
		t.Fatalf("repeat lookup outcome %q, want cache_hit", resp.Outcome)
	}

	// Lookup results must round-trip the actual object row.
	if len(resp.Objects) != 1 || resp.Objects[0].ObjectID != 100_000_010 {
		t.Fatalf("lookup objects = %+v", resp.Objects)
	}
}

func TestBadRequests(t *testing.T) {
	env := newHTTPEnv(t, Config{})
	for _, path := range []string{
		PathCone,                            // missing all params
		PathCone + "?ra=1&dec=2",            // missing radius
		PathCone + "?ra=1&dec=2&radius=200", // out of range
		PathObject + "?id=abc",
		PathMagHist + "?bin=-1",
	} {
		status, _ := env.get(t, path)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, status)
		}
	}
	status, _ := env.get(t, "/v1/nope")
	if status != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", status)
	}
}

func TestHealthzGatedOnLoadPhase(t *testing.T) {
	env := newHTTPEnv(t, Config{})
	if status, body := env.get(t, PathHealthz); status != http.StatusOK {
		t.Fatalf("healthz before load: %d %s", status, body)
	}
	if err := env.db.BeginLoad(); err != nil {
		t.Fatal(err)
	}
	if status, _ := env.get(t, PathHealthz); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz during load phase: %d, want 503", status)
	}
	if _, err := env.db.Seal(); err != nil {
		t.Fatal(err)
	}
	if status, _ := env.get(t, PathHealthz); status != http.StatusOK {
		t.Fatalf("healthz after Seal: %d, want 200", status)
	}
}

func TestMetricsScrape(t *testing.T) {
	env := newHTTPEnv(t, Config{})
	// Put some traffic through first so serving series are non-trivial.
	for i := 0; i < 20; i++ {
		u, _ := QueryURL(queries.ObjectLookup{ObjectID: int64(100_000_000 + i)})
		env.get(t, u)
	}
	status, body := env.get(t, PathMetrics)
	if status != http.StatusOK {
		t.Fatalf("scrape status %d", status)
	}
	families, err := metrics.PromValid(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		// engine
		"sky_db_rows_inserted_total", "sky_db_commits_total", "sky_db_total_rows",
		"sky_wal_records_total", "sky_wal_syncs_total", "sky_wal_auto_syncs_total",
		"sky_wal_group_commits_total",
		"sky_buffer_cache_hits_total", "sky_index_key_bytes", "sky_index_ready",
		// serving
		"sky_serve_requests_total", "sky_serve_served_total", "sky_serve_shed_total",
		"sky_result_cache_hits_total", "sky_serve_class_requests_total",
		"sky_serve_latency_seconds", "sky_serve_queue_wait_seconds",
		"sky_workers_capacity",
		// transport + traces
		"sky_http_requests_total", "sky_http_request_seconds",
		"sky_trace_published_total",
	} {
		if !families[want] {
			t.Errorf("scrape missing family %s", want)
		}
	}
	// Spot-check a value: rows inserted must be positive after the load.
	if !strings.Contains(string(body), "sky_db_rows_inserted_total ") {
		t.Error("no sky_db_rows_inserted_total sample")
	}

	// The per-class latency family must expose every class from the first
	// scrape, traffic or not.
	for _, cls := range []string{"cone", "lookup", "frame", "maghist"} {
		if !strings.Contains(string(body), fmt.Sprintf(`sky_serve_class_requests_total{class=%q}`, cls)) {
			t.Errorf("scrape missing class series for %q", cls)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	env := newHTTPEnv(t, Config{})
	u, _ := QueryURL(queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2})
	env.get(t, u)
	status, body := env.get(t, PathStats)
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if resp.Server.Requests == 0 {
		t.Error("stats report zero requests after traffic")
	}
	if resp.Engine.DB.RowsInserted == 0 {
		t.Error("stats report zero rows inserted after load")
	}
}

func TestTraceCoverageAndDump(t *testing.T) {
	env := newHTTPEnv(t, Config{TraceEvery: 1}) // trace every request
	const n = 50
	for i := 0; i < n; i++ {
		u, _ := QueryURL(queries.ObjectLookup{ObjectID: int64(100_000_000 + i%10)})
		env.get(t, u)
	}
	traces := env.front.Tracer().Snapshot()
	if len(traces) < n {
		t.Fatalf("published %d traces, want >= %d", len(traces), n)
	}
	for _, tr := range traces {
		total, attributed := tr.Total(), tr.Attributed()
		if total <= 0 {
			t.Fatalf("trace %d: non-positive total %s", tr.ID, total)
		}
		// Acceptance: spans attribute >= 99% of request wall time.  The marks
		// are contiguous on one clock, so this holds exactly.
		if float64(attributed) < 0.99*float64(total) {
			t.Fatalf("trace %d: spans cover %s of %s", tr.ID, attributed, total)
		}
		if tr.Outcome == "" || tr.Class == "" {
			t.Fatalf("trace %d missing class/outcome: %+v", tr.ID, tr)
		}
	}

	// The HTTP dump must parse and carry per-stage spans.
	status, body := env.get(t, PathTraces+"?n=5")
	if status != http.StatusOK {
		t.Fatalf("traces status %d", status)
	}
	var dump []TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("traces JSON: %v", err)
	}
	if len(dump) != 5 {
		t.Fatalf("asked for 5 slowest, got %d", len(dump))
	}
	for _, d := range dump {
		var sum int64
		for _, ns := range d.Stages {
			sum += ns
		}
		if sum < d.TotalNS*99/100 {
			t.Fatalf("dumped trace %d: stages %d ns of %d ns", d.RequestID, sum, d.TotalNS)
		}
	}
}

func TestDESSchedulerRejected(t *testing.T) {
	db := relstore.MustOpen(catalog.NewSchema())
	qs := serve.NewServer(exec.NewDES(des.NewKernel(5)), db, serve.DefaultConfig())
	if _, err := New(qs, Config{}); err == nil {
		t.Fatal("New accepted a DES scheduler; sockets need wall-clock workers")
	}
}
