package httpserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/queries"
	"skyloader/internal/shard"
	"skyloader/internal/shard/wire"
)

// shardEnv is a loaded 3-shard fleet behind a ShardFront, driven through the
// handler directly (no socket).
type shardEnv struct {
	agents []*shard.Agent
	co     *shard.Coordinator
	inline exec.InlineRunner
	front  *ShardFront
}

func newShardEnv(t testing.TB, n int, cfg Config) *shardEnv {
	t.Helper()
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 11})
	inline := exec.InlineRunner(sched)
	files := catalog.GenerateNight(catalog.NightSpec{TotalMB: 2, Files: 3, RowsPerMB: 120, Seed: 11})
	agents := make([]*shard.Agent, n)
	clients := make([]shard.Client, n)
	for i := range agents {
		a, err := shard.NewAgent(sched, shard.DefaultAgentConfig())
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		clients[i] = shard.NewMemClient(sched, a, shard.NetModel{})
	}
	pm, err := shard.PartitionFromFiles(files, n)
	if err != nil {
		t.Fatal(err)
	}
	co, err := shard.New(sched, pm, clients, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	inline.RunInline("shard-env-setup", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			t.Error(err)
			return
		}
		if _, err := co.LoadFiles(w, files); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	front, err := NewShard(co, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &shardEnv{agents: agents, co: co, inline: inline, front: front}
}

func (e *shardEnv) get(t testing.TB, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	e.front.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestShardQueryEndpoints(t *testing.T) {
	env := newShardEnv(t, 3, Config{})
	reqs := []queries.Query{
		queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2},
		queries.ObjectLookup{ObjectID: 100_000_010},
		queries.FrameObjects{FrameID: 3},
		queries.MagHistogram{BinWidth: 0.5},
	}
	rows := 0
	for _, q := range reqs {
		u, err := QueryURL(q)
		if err != nil {
			t.Fatal(err)
		}
		status, body := env.get(t, u)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", u, status, body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: bad JSON %v in %s", u, err, body)
		}
		if resp.Outcome != "served" {
			t.Fatalf("%s: outcome %q", u, resp.Outcome)
		}
		if resp.RequestID == 0 {
			t.Fatalf("%s: no request id", u)
		}
		rows += len(resp.Objects) + len(resp.Bins)
	}
	if rows == 0 {
		t.Fatal("no endpoint returned any rows — fleet is serving empty shards")
	}

	// Same bad-request discipline as the single-node front.
	for _, path := range []string{
		PathCone + "?ra=1&dec=2",
		PathObject + "?id=abc",
		PathMagHist + "?bin=-1",
	} {
		if status, _ := env.get(t, path); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, status)
		}
	}
}

// TestShardHealthzAggregation is the lagging-agent contract: /healthz must
// stay 503 until EVERY shard reports Ready — two sealed shards and one still
// inside its load window keep the whole fleet unready.
func TestShardHealthzAggregation(t *testing.T) {
	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 7})
	inline := exec.InlineRunner(sched)
	const n = 3
	cfg := shard.DefaultAgentConfig()
	cfg.Profile.DeferredIndexBuild = true
	agents := make([]*shard.Agent, n)
	clients := make([]shard.Client, n)
	for i := range agents {
		a, err := shard.NewAgent(sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		clients[i] = shard.NewMemClient(sched, a, shard.NetModel{})
	}
	pm, err := shard.NewUniformPartition(n)
	if err != nil {
		t.Fatal(err)
	}
	co, err := shard.New(sched, pm, clients, shard.Config{Deferred: true})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front, err := NewShard(co, Config{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) int {
		rec := httptest.NewRecorder()
		front.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	seal := func(i int) {
		inline.RunInline("seal", func(w exec.Worker) {
			res := agents[i].Handle(w, wire.LoadTask{TaskID: uint64(1000 + i), Seal: true})
			if lr, ok := res.(wire.LoadResult); !ok || lr.Err != "" {
				t.Errorf("seal shard %d: %+v", i, res)
			}
		})
	}

	// Hello under the deferred policy opens every shard's load window.
	inline.RunInline("hello", func(w exec.Worker) {
		if err := co.Hello(w); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	if status := get(PathHealthz); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with all shards loading: %d, want 503", status)
	}

	// Seal shards 0 and 2; shard 1 lags mid-load.
	seal(0)
	seal(2)
	if status := get(PathHealthz); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with one lagging shard: %d, want 503", status)
	}

	// The laggard seals: the whole fleet flips ready.
	seal(1)
	if status := get(PathHealthz); status != http.StatusOK {
		t.Fatalf("healthz after final seal: %d, want 200", status)
	}

	// Kill a client mid-flight: an unreachable shard must read as unready,
	// not as healthy-by-omission.
	clients[1].Close()
	if status := get(PathHealthz); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with unreachable shard: %d, want 503", status)
	}
}

func TestShardMetricsScrape(t *testing.T) {
	env := newShardEnv(t, 3, Config{})
	for i := 0; i < 10; i++ {
		u, _ := QueryURL(queries.ObjectLookup{ObjectID: int64(100_000_000 + i)})
		env.get(t, u)
	}
	u, _ := QueryURL(queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2})
	env.get(t, u)

	status, body := env.get(t, PathMetrics)
	if status != http.StatusOK {
		t.Fatalf("scrape status %d", status)
	}
	families, err := metrics.PromValid(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"sky_shard_count", "sky_shard_queries_total", "sky_shard_query_errors_total",
		"sky_shard_fanout_total", "sky_shard_requests_total", "sky_shard_load_tasks_total",
		"sky_shard_gather_seconds", "sky_shard_wire_bytes_total",
		"sky_shard_ready", "sky_shard_rows", "sky_shard_queries_served_total",
		"sky_http_requests_total", "sky_http_request_seconds",
		"sky_trace_published_total",
	} {
		if !families[want] {
			t.Errorf("scrape missing family %s", want)
		}
	}
	text := string(body)
	if !strings.Contains(text, "sky_shard_count 3") {
		t.Error("sky_shard_count != 3")
	}
	for s := 0; s < 3; s++ {
		if !strings.Contains(text, fmt.Sprintf(`sky_shard_ready{shard="%d"} 1`, s)) {
			t.Errorf("shard %d not exported ready", s)
		}
	}
	if !strings.Contains(text, `sky_shard_fanout_total{class="lookup"}`) {
		t.Error("no lookup fan-out series")
	}
	if !strings.Contains(text, `sky_shard_wire_bytes_total{direction="sent"}`) {
		t.Error("no wire byte accounting")
	}
}

func TestShardStatsEndpoint(t *testing.T) {
	env := newShardEnv(t, 3, Config{})
	u, _ := QueryURL(queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2})
	env.get(t, u)

	status, body := env.get(t, PathStats)
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	var resp ShardStatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if resp.Shards != 3 {
		t.Fatalf("stats shards = %d", resp.Shards)
	}
	if resp.Queries == 0 {
		t.Error("stats report zero queries after traffic")
	}
	if len(resp.ShardStats) != 3 {
		t.Fatalf("shard stats entries = %d", len(resp.ShardStats))
	}
	var rows int64
	for _, st := range resp.ShardStats {
		rows += st.Rows
	}
	if rows == 0 {
		t.Error("fleet reports zero resident rows after load")
	}
}

func TestShardTraceSpans(t *testing.T) {
	env := newShardEnv(t, 3, Config{TraceEvery: 1})
	const n = 20
	for i := 0; i < n; i++ {
		u, _ := QueryURL(queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2})
		env.get(t, u)
	}
	traces := env.front.Tracer().Snapshot()
	if len(traces) < n {
		t.Fatalf("published %d traces, want >= %d", len(traces), n)
	}
	sawScatter := false
	for _, tr := range traces {
		if tr.Total() <= 0 {
			t.Fatalf("trace %d: non-positive total", tr.ID)
		}
		d := dumpTrace(&tr)
		if ns, ok := d.Stages["scatter"]; ok && ns > 0 {
			sawScatter = true
		}
	}
	if !sawScatter {
		t.Fatal("no trace carried a cross-node scatter span")
	}

	status, body := env.get(t, PathTraces+"?n=5")
	if status != http.StatusOK {
		t.Fatalf("traces status %d", status)
	}
	var dump []TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("traces JSON: %v", err)
	}
	if len(dump) != 5 {
		t.Fatalf("asked for 5 slowest, got %d", len(dump))
	}
}

func TestShardDESSchedulerRejected(t *testing.T) {
	sched := exec.NewDES(des.NewKernel(5))
	a, err := shard.NewAgent(sched, shard.DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	pm, err := shard.NewUniformPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := shard.New(sched, pm, []shard.Client{shard.NewMemClient(sched, a, shard.NetModel{})}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShard(co, Config{}); err == nil {
		t.Fatal("NewShard accepted a DES scheduler; sockets need wall-clock workers")
	}
}
