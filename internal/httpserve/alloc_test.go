package httpserve

import (
	"net/http/httptest"
	"testing"

	"skyloader/internal/queries"
)

// TestQueryPathAllocGuard pins the allocation count of the hot HTTP query
// path (cache-hit object lookup, untraced).  BENCH_http.json records the
// measured allocs/op; this guard fails CI if a change pushes the path past
// the budget — the JSON-encode + mux path runs ~34 allocs/op today, and the
// budget leaves headroom for stdlib drift, not for a new per-request layer.
func TestQueryPathAllocGuard(t *testing.T) {
	const budget = 60
	env := newHTTPEnv(t, Config{TraceEvery: 1 << 30})
	h := env.front.Handler()
	u, _ := QueryURL(queries.ObjectLookup{ObjectID: 100_000_010})
	// Prime the result cache: the guard measures the steady state.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", u, nil))

	allocs := testing.AllocsPerRun(200, func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	})
	if allocs > budget {
		t.Fatalf("hot query path allocates %.1f/op, budget %d (see BENCH_http.json)", allocs, budget)
	}

	// Sampled tracing must stay ~1 extra allocation (the published Req).
	envTr := newHTTPEnv(t, Config{TraceEvery: 1})
	hTr := envTr.front.Handler()
	hTr.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", u, nil))
	traced := testing.AllocsPerRun(200, func() {
		rec := httptest.NewRecorder()
		hTr.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	})
	if traced > allocs+4 {
		t.Fatalf("tracing every request costs %.1f allocs/op over the %.1f untraced baseline; the trace layer budget is 4", traced-allocs, allocs)
	}
}
