package httpserve

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"skyloader/internal/metrics"
	"skyloader/internal/queries"
)

// TestScrapeUnderQueryLoad races /metrics scrapes against query traffic and
// validates every payload: the exporter reads live atomics, so a scrape
// mid-flight must still be structurally valid (cumulative-monotone buckets,
// _count == +Inf) even while every counter it touches is moving.  Run with
// -race this is also the exporter's data-race test.
func TestScrapeUnderQueryLoad(t *testing.T) {
	env := newHTTPEnv(t, Config{TraceEvery: 4})
	h := env.front.Handler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				var u string
				switch i % 3 {
				case 0:
					u, _ = QueryURL(queries.ObjectLookup{ObjectID: int64(100_000_000 + i%40)})
				case 1:
					u, _ = QueryURL(queries.Cone{RA: float64(i % 350), Dec: -10, RadiusDeg: 1.5})
				default:
					u, _ = QueryURL(queries.FrameObjects{FrameID: int64(1 + i%8)})
				}
				req := httptest.NewRequest("GET", u, nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
				i++
			}
		}(g)
	}

	for scrape := 0; scrape < 50; scrape++ {
		var sb strings.Builder
		if err := env.front.WriteMetrics(&sb); err != nil {
			t.Fatalf("scrape %d: %v", scrape, err)
		}
		if _, err := metrics.PromValid(sb.String()); err != nil {
			t.Fatalf("scrape %d invalid under load: %v", scrape, err)
		}
	}
	close(stop)
	wg.Wait()
}
