package httpserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/shard"
	"skyloader/internal/shard/wire"
	"skyloader/internal/trace"
)

// ShardFront is the HTTP front door over a shard.Coordinator: the same
// /v1/* query API, /healthz, /metrics and /debug/traces surface as the
// single-node Server, but every query scatters across the fleet and
// /healthz aggregates agent readiness (503 until every shard reports Ready
// — one agent replaying a WAL or mid-Seal keeps the whole fleet unready).
type ShardFront struct {
	co     *shard.Coordinator
	inline exec.InlineRunner
	tracer *trace.Tracer
	cfg    Config
	mux    *http.ServeMux

	httpSrv  *http.Server
	listener net.Listener

	reqID atomic.Uint64
	start time.Time

	paths   []string
	reqs    map[string]*atomic.Int64
	errs    map[string]*atomic.Int64
	latency *metrics.Histogram
}

// NewShard builds a front door over a coordinator.  The coordinator's
// scheduler must support inline execution (the realtime engine; a DES
// coordinator is driven by the simulator, not by sockets).
func NewShard(co *shard.Coordinator, cfg Config) (*ShardFront, error) {
	inline, ok := co.Scheduler().(exec.InlineRunner)
	if !ok {
		return nil, fmt.Errorf("httpserve: scheduler %T cannot run inline workers (use the realtime engine)", co.Scheduler())
	}
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 16
	}
	if cfg.TraceRing == 0 {
		cfg.TraceRing = 512
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &ShardFront{
		co:      co,
		inline:  inline,
		tracer:  trace.NewTracer(cfg.TraceRing, cfg.TraceEvery),
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		reqs:    make(map[string]*atomic.Int64),
		errs:    make(map[string]*atomic.Int64),
		latency: metrics.NewHistogram(),
	}
	s.route(PathCone, s.handleQuery)
	s.route(PathObject, s.handleQuery)
	s.route(PathFrame, s.handleQuery)
	s.route(PathMagHist, s.handleQuery)
	s.route(PathStats, s.handleStats)
	s.route(PathMetrics, s.handleMetrics)
	s.route(PathHealthz, s.handleHealthz)
	s.route(PathTraces, s.handleTraces)
	return s, nil
}

func (s *ShardFront) route(path string, h func(http.ResponseWriter, *http.Request, string)) {
	s.paths = append(s.paths, path)
	s.reqs[path] = new(atomic.Int64)
	s.errs[path] = new(atomic.Int64)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		h(w, r, path)
	})
}

// Handler returns the root handler (tests drive it without a socket).
func (s *ShardFront) Handler() http.Handler { return s.mux }

// Tracer exposes the trace ring.
func (s *ShardFront) Tracer() *trace.Tracer { return s.tracer }

// Start listens on addr and serves until Close.
func (s *ShardFront) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	maxConns := s.cfg.MaxConns
	if maxConns <= 0 {
		maxConns = 256
	}
	s.listener = limitListener(ln, maxConns)
	s.httpSrv = &http.Server{
		Handler:      s.mux,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	}
	go func() {
		_ = s.httpSrv.Serve(s.listener)
	}()
	return ln.Addr(), nil
}

// Close stops the listener and in-flight connections.
func (s *ShardFront) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

func (s *ShardFront) observe(path string, status int, elapsed time.Duration) {
	if c := s.reqs[path]; c != nil {
		c.Add(1)
	}
	if status >= 400 {
		if c := s.errs[path]; c != nil {
			c.Add(1)
		}
	}
	s.latency.Observe(elapsed)
}

func (s *ShardFront) fail(w http.ResponseWriter, path string, status int, elapsed time.Duration, err error) {
	msg := http.StatusText(status)
	if err != nil {
		msg = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
	s.observe(path, status, elapsed)
}

// handleQuery scatters one query across the fleet and returns the merged
// result in the same QueryResponse envelope as the single-node API, so
// clients (and skystorm) work against either unchanged.  Sampled requests
// carry StageScatter/StageGather cross-node spans in the trace ring.
func (s *ShardFront) handleQuery(w http.ResponseWriter, r *http.Request, path string) {
	q, err := parseQuery(path, r.URL.Query())
	if err != nil {
		s.fail(w, path, http.StatusBadRequest, 0, err)
		return
	}
	id := s.reqID.Add(1)
	var tr *trace.Req
	if s.tracer.Sample() {
		tr = new(trace.Req)
	}
	s.inline.RunInline("shard-http-"+q.Class(), func(wk exec.Worker) {
		began := wk.Now()
		tr.Begin(id, q.Class(), began)
		res, execErr := s.co.Execute(wk, q, tr)
		resp := QueryResponse{
			RequestID: id,
			Outcome:   "served",
			Objects:   res.Objects,
			Bins:      res.Bins,
			Stats:     res.Stats,
		}
		status := http.StatusOK
		if execErr != nil {
			resp.Outcome = "error"
			resp.Error = execErr.Error()
			status = http.StatusInternalServerError
		}
		resp.ElapsedNS = int64(wk.Now() - began)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(resp)
		tr.Finish(resp.Outcome, trace.StageEncode, wk.Now())
		s.observe(path, status, wk.Now()-began)
	})
	if tr != nil {
		s.tracer.Publish(tr)
	}
}

// ShardStatsResponse is the JSON envelope of /v1/stats on a shard
// coordinator: the coordinator's scatter/gather counters plus each shard's
// self-reported stats.
type ShardStatsResponse struct {
	Shards          int          `json:"shards"`
	Queries         int64        `json:"queries"`
	QueryErrors     int64        `json:"query_errors"`
	BytesSent       int64        `json:"bytes_sent"`
	BytesReceived   int64        `json:"bytes_received"`
	GatherP50NS     int64        `json:"gather_p50_ns"`
	GatherP99NS     int64        `json:"gather_p99_ns"`
	ShardStats      []wire.Stats `json:"shard_stats,omitempty"`
	ShardStatsError string       `json:"shard_stats_error,omitempty"`
	TracesPublished uint64       `json:"traces_published"`
	UptimeNS        int64        `json:"uptime_ns"`
}

func (s *ShardFront) handleStats(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	snap := s.co.Snapshot()
	resp := ShardStatsResponse{
		Shards:          snap.Shards,
		Queries:         snap.Queries,
		QueryErrors:     snap.QueryErrors,
		BytesSent:       snap.BytesSent,
		BytesReceived:   snap.BytesReceived,
		GatherP50NS:     int64(snap.Gather.P50),
		GatherP99NS:     int64(snap.Gather.P99),
		TracesPublished: s.tracer.Published(),
		UptimeNS:        int64(time.Since(s.start)),
	}
	s.inline.RunInline("shard-stats", func(wk exec.Worker) {
		stats, err := s.co.ShardStats(wk)
		if err != nil {
			resp.ShardStatsError = err.Error()
			return
		}
		resp.ShardStats = stats
	})
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.observe(path, http.StatusInternalServerError, time.Since(began))
		return
	}
	s.observe(path, http.StatusOK, time.Since(began))
}

// handleHealthz aggregates fleet readiness: 200 only when every shard
// reports Ready.
func (s *ShardFront) handleHealthz(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	ready := false
	s.inline.RunInline("shard-healthz", func(wk exec.Worker) {
		ready = s.co.Ready(wk)
	})
	if ready {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
		s.observe(path, http.StatusOK, time.Since(began))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte("sharding: fleet not ready\n"))
	s.observe(path, http.StatusServiceUnavailable, time.Since(began))
}

func (s *ShardFront) handleTraces(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	var reqs []trace.Req
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			s.fail(w, path, http.StatusBadRequest, time.Since(began), err)
			return
		}
		reqs = s.tracer.Slowest(n)
	} else {
		reqs = s.tracer.Snapshot()
	}
	out := make([]TraceDump, 0, len(reqs))
	for i := range reqs {
		out = append(out, dumpTrace(&reqs[i]))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
	s.observe(path, http.StatusOK, time.Since(began))
}

func (s *ShardFront) handleMetrics(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		s.observe(path, http.StatusInternalServerError, time.Since(began))
		return
	}
	s.observe(path, http.StatusOK, time.Since(began))
}

// WriteMetrics renders the coordinator scrape: the sky_shard_* families
// (fan-out, per-shard traffic, gather latency, bytes on the wire, per-shard
// readiness/rows from a live probe) plus the HTTP transport counters and
// the trace ring.  Exported so smoke paths and tests can validate a scrape
// without a socket.
func (s *ShardFront) WriteMetrics(out io.Writer) error {
	p := metrics.NewPromWriter(out)
	snap := s.co.Snapshot()

	p.Metric("sky_shard_count", "Number of shards in the fleet.", "gauge")
	p.SampleInt("sky_shard_count", nil, int64(snap.Shards))
	p.Metric("sky_shard_queries_total", "Queries scattered by the coordinator.", "counter")
	p.SampleInt("sky_shard_queries_total", nil, snap.Queries)
	p.Metric("sky_shard_query_errors_total", "Scatter-gather queries that failed.", "counter")
	p.SampleInt("sky_shard_query_errors_total", nil, snap.QueryErrors)

	p.Metric("sky_shard_fanout_total", "Per-shard calls issued, by query class.", "counter")
	for _, class := range metrics.SortedLabelNames(snap.FanoutByClass) {
		p.SampleInt("sky_shard_fanout_total", classLabels(class), snap.FanoutByClass[class])
	}
	p.Metric("sky_shard_requests_total", "Query calls dispatched to each shard.", "counter")
	for i, n := range snap.ShardRequests {
		p.SampleInt("sky_shard_requests_total", shardLabels(i), n)
	}
	p.Metric("sky_shard_load_tasks_total", "Load tasks dispatched to each shard.", "counter")
	for i, n := range snap.ShardLoads {
		p.SampleInt("sky_shard_load_tasks_total", shardLabels(i), n)
	}
	p.Metric("sky_shard_gather_seconds", "Scatter-to-merge latency of sharded queries.", "histogram")
	p.Histogram("sky_shard_gather_seconds", nil, snap.GatherHist)
	p.Metric("sky_shard_wire_bytes_total", "Framed protocol bytes, by direction.", "counter")
	p.SampleInt("sky_shard_wire_bytes_total", []metrics.Label{{Name: "direction", Value: "sent"}}, snap.BytesSent)
	p.SampleInt("sky_shard_wire_bytes_total", []metrics.Label{{Name: "direction", Value: "received"}}, snap.BytesReceived)

	// Live per-shard state; a probe failure leaves the families out of this
	// scrape rather than failing it (the fleet may be mid-restart).
	var stats []wire.Stats
	var statsErr error
	s.inline.RunInline("shard-metrics", func(wk exec.Worker) {
		stats, statsErr = s.co.ShardStats(wk)
	})
	p.Metric("sky_shard_probe_failed", "1 when the last per-shard stats probe failed.", "gauge")
	failed := int64(0)
	if statsErr != nil {
		failed = 1
	}
	p.SampleInt("sky_shard_probe_failed", nil, failed)
	if statsErr == nil {
		p.Metric("sky_shard_ready", "Per-shard readiness (1 serving, 0 loading/replaying).", "gauge")
		for _, st := range stats {
			v := int64(0)
			if st.Ready {
				v = 1
			}
			p.SampleInt("sky_shard_ready", shardLabels(int(st.ShardID)), v)
		}
		p.Metric("sky_shard_rows", "Rows resident on each shard.", "gauge")
		for _, st := range stats {
			p.SampleInt("sky_shard_rows", shardLabels(int(st.ShardID)), st.Rows)
		}
		p.Metric("sky_shard_queries_served_total", "Queries each shard has answered.", "counter")
		for _, st := range stats {
			p.SampleInt("sky_shard_queries_served_total", shardLabels(int(st.ShardID)), st.QueriesServed)
		}
	}

	// --- transport ---
	p.Metric("sky_http_requests_total", "HTTP requests by endpoint.", "counter")
	for _, path := range s.paths {
		p.SampleInt("sky_http_requests_total", pathLabels(path), s.reqs[path].Load())
	}
	p.Metric("sky_http_errors_total", "HTTP error responses by endpoint.", "counter")
	for _, path := range s.paths {
		p.SampleInt("sky_http_errors_total", pathLabels(path), s.errs[path].Load())
	}
	p.Metric("sky_http_request_seconds", "Server-side request latency.", "histogram")
	p.Histogram("sky_http_request_seconds", nil, s.latency)

	p.Metric("sky_trace_published_total", "Requests captured into the trace ring.", "counter")
	p.SampleInt("sky_trace_published_total", nil, int64(s.tracer.Published()))
	return p.Err()
}

func shardLabels(i int) []metrics.Label {
	return []metrics.Label{{Name: "shard", Value: strconv.Itoa(i)}}
}
