package httpserve

import (
	"net/http"
	"strings"
	"sync"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
)

// TestHealthzDuringRecovery proves the readiness probe keeps traffic away
// while WAL replay is rebuilding the store: /healthz answers 503 from the
// moment the front door is up until Recover finishes, then flips to 200.
func TestHealthzDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Hold replay at its first applied record so the recovering window is
	// wide enough to probe.
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	h, err := relstore.StartRecover(catalog.NewSchema(), dir,
		relstore.WithFaultHook(func(p relstore.FaultPoint) error {
			if p == relstore.FPReplay {
				once.Do(func() {
					close(started)
					<-gate
				})
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}

	sched := exec.NewRealtime(exec.RealtimeConfig{Seed: 1})
	qs := serve.NewServer(sched, h.DB(), serve.Config{Workers: 1, QueueDepth: 8})
	front, err := New(qs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := front.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	env := &httpEnv{base: "http://" + addr.String(), client: http.DefaultClient}

	<-started
	if status, body := env.get(t, PathHealthz); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz during replay: %d %s, want 503", status, body)
	}

	close(gate)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if status, body := env.get(t, PathHealthz); status != http.StatusOK {
		t.Fatalf("healthz after replay: %d %s, want 200", status, body)
	}

	// The scrape surfaces the replay counters.
	status, metricsBody := env.get(t, PathMetrics)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	for _, want := range []string{
		"sky_wal_durable 1",
		"sky_wal_replay_records_total",
		"sky_wal_replay_rows_total",
		"sky_wal_replay_torn_tail_total 0",
		"sky_wal_checkpoints_total",
	} {
		if !containsLine(string(metricsBody), want) {
			t.Fatalf("metrics scrape missing %q", want)
		}
	}
}

// containsLine reports whether any line of the exposition starts with prefix.
func containsLine(body, prefix string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
