// Package httpserve is the network front door of the serving stack: an HTTP
// API over internal/serve that turns the in-process query engine into a
// socket-reachable service with first-class observability.
//
// The paper's repository is dual-purpose — a warehouse loaded in bulk and "a
// query engine to support scientific research" (§4.5.1) — and the ROADMAP's
// million-user north star needs that query half reachable over a wire, not
// by function call.  This package adds exactly the transport layer:
//
//   - /v1/cone, /v1/object, /v1/frame, /v1/maghist: the science queries as
//     JSON endpoints.  Every request goes through the SAME serve.Server the
//     in-process scenarios use — worker pool, bounded admission with
//     shedding, queue-wait deadlines, epoch-invalidated result cache — via
//     exec.InlineRunner, so a socket client and a replayed trace contend on
//     identical machinery and are throttled by identical policies.
//   - /metrics: every engine counter (relstore.StatsSnapshot: DBStats,
//     WALStats, buffer cache, per-index memory), the serving counters and
//     latency histograms (cumulative le-buckets), HTTP transport counters
//     and trace-layer counters, in hand-rolled Prometheus text format
//     (internal/metrics PromWriter, no client-library dependency).
//   - /healthz: readiness gated on relstore.DB.Ready() — a deferred-policy
//     load phase reports 503 until Seal, so a fronting load balancer keeps
//     latency-sensitive traffic away while indexes are suspended.
//   - /debug/traces: the structured per-request trace ring (internal/trace);
//     /debug/pprof: the runtime profiler mux.
//
// Connection limiting happens at the listener (MaxConns) before HTTP parsing
// — the same backstop the paper's production system gets from its listener
// backlog — and request-level admission happens in serve.Server, so overload
// sheds cheap and early at both layers.
package httpserve

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/trace"
)

// Config controls the front door.
type Config struct {
	// MaxConns bounds concurrently accepted TCP connections; further
	// connections queue in the kernel backlog until one closes.  0 means
	// 4 × the serve worker-pool queue depth (sheds should happen at the
	// admission layer, where they are counted, not silently at the
	// listener).
	MaxConns int
	// TraceEvery samples one request in N into the trace ring (1 traces
	// everything, 0 means 16).  Sampling keeps the ring's mutex off the
	// common path.
	TraceEvery int
	// TraceRing is the trace ring capacity (0 means 512).
	TraceRing int
	// ReadTimeout/WriteTimeout bound slow clients (0: 10s / 30s).
	ReadTimeout, WriteTimeout time.Duration
}

// Server is the HTTP front door over one serve.Server.
type Server struct {
	qs     *serve.Server
	db     *relstore.DB
	inline exec.InlineRunner
	tracer *trace.Tracer
	cfg    Config
	mux    *http.ServeMux

	httpSrv  *http.Server
	listener net.Listener

	reqID atomic.Uint64
	// start anchors process "uptime" for the scrape.
	start time.Time

	// Transport-level accounting, by endpoint label.
	paths   []string
	reqs    map[string]*atomic.Int64
	errs    map[string]*atomic.Int64
	latency *metrics.Histogram
}

// New builds a front door over qs.  The server's scheduler must support
// inline execution (the realtime engine does; DES cannot serve sockets —
// virtual time has no meaning for a wall-clock client).
func New(qs *serve.Server, cfg Config) (*Server, error) {
	inline, ok := qs.Scheduler().(exec.InlineRunner)
	if !ok {
		return nil, fmt.Errorf("httpserve: scheduler %T cannot run inline workers (use the realtime engine)", qs.Scheduler())
	}
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 16
	}
	if cfg.TraceRing == 0 {
		cfg.TraceRing = 512
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &Server{
		qs:      qs,
		db:      qs.DB(),
		inline:  inline,
		tracer:  trace.NewTracer(cfg.TraceRing, cfg.TraceEvery),
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		reqs:    make(map[string]*atomic.Int64),
		errs:    make(map[string]*atomic.Int64),
		latency: metrics.NewHistogram(),
	}
	s.route(PathCone, s.handleQuery)
	s.route(PathObject, s.handleQuery)
	s.route(PathFrame, s.handleQuery)
	s.route(PathMagHist, s.handleQuery)
	s.route(PathStats, s.handleStats)
	s.route(PathMetrics, s.handleMetrics)
	s.route(PathHealthz, s.handleHealthz)
	s.route(PathTraces, s.handleTraces)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// route registers a handler and its accounting counters.
func (s *Server) route(path string, h func(http.ResponseWriter, *http.Request, string)) {
	s.paths = append(s.paths, path)
	s.reqs[path] = new(atomic.Int64)
	s.errs[path] = new(atomic.Int64)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		h(w, r, path)
	})
}

// Tracer exposes the trace ring (tests and in-process reports).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the root handler (tests drive it without a socket).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free port) and serves in
// a background goroutine until Close.  It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	maxConns := s.cfg.MaxConns
	if maxConns <= 0 {
		maxConns = 4 * s.qs.ServeConfig().QueueDepth
		if maxConns <= 0 {
			maxConns = 256
		}
	}
	s.listener = limitListener(ln, maxConns)
	s.httpSrv = &http.Server{
		Handler:      s.mux,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	}
	go func() {
		// ErrServerClosed after Close is the clean shutdown path; anything
		// else would have been surfaced by the first failing request anyway.
		_ = s.httpSrv.Serve(s.listener)
	}()
	return ln.Addr(), nil
}

// Close stops the listener and in-flight connections.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// observe records transport accounting for one request.
func (s *Server) observe(path string, status int, elapsed time.Duration) {
	if c := s.reqs[path]; c != nil {
		c.Add(1)
	}
	if status >= 400 {
		if c := s.errs[path]; c != nil {
			c.Add(1)
		}
	}
	s.latency.Observe(elapsed)
}

// limitListener bounds concurrently open accepted connections, the
// listener-level backstop under connection floods.  (Hand-rolled: the
// golang.org/x/net/netutil helper is a dependency this repo doesn't take.)
func limitListener(ln net.Listener, n int) net.Listener {
	return &limitedListener{Listener: ln, sem: make(chan struct{}, n)}
}

type limitedListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitedConn{Conn: c, release: l.release}, nil
}

func (l *limitedListener) release() { <-l.sem }

type limitedConn struct {
	net.Conn
	release func()
	closed  atomic.Bool
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	if c.closed.CompareAndSwap(false, true) {
		c.release()
	}
	return err
}
