package httpserve

import (
	"io"
	"net/http"
	"time"

	"skyloader/internal/metrics"
)

// handleMetrics renders the full metric catalog in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		s.observe(path, http.StatusInternalServerError, time.Since(began))
		return
	}
	s.observe(path, http.StatusOK, time.Since(began))
}

// WriteMetrics writes the exposition payload for one scrape.  It is exported
// so the -smoke path and tests can validate a scrape without a socket.
//
// Catalog layout: engine first (rows, WAL, buffer cache, per-index memory),
// then the serving layer (admission counters, result cache, per-class latency
// histograms, queue wait, worker pool), then the transport (per-endpoint
// counters, request latency) and the trace ring.  Every counter that exists
// in the engine's snapshot structs is exported — the scrape is the superset
// of every in-process report.
func (s *Server) WriteMetrics(out io.Writer) error {
	p := metrics.NewPromWriter(out)
	snap := s.db.StatsSnapshot()

	// --- relstore: row and transaction counters ---
	p.Metric("sky_db_rows_inserted_total", "Rows inserted into the store.", "counter")
	p.SampleInt("sky_db_rows_inserted_total", nil, snap.DB.RowsInserted)
	p.Metric("sky_db_rows_rejected_total", "Rows rejected by constraint checks.", "counter")
	p.SampleInt("sky_db_rows_rejected_total", nil, snap.DB.RowsRejected)
	p.Metric("sky_db_transactions_total", "Transactions begun.", "counter")
	p.SampleInt("sky_db_transactions_total", nil, snap.DB.Transactions)
	p.Metric("sky_db_commits_total", "Transactions committed.", "counter")
	p.SampleInt("sky_db_commits_total", nil, snap.DB.Commits)
	p.Metric("sky_db_rollbacks_total", "Transactions rolled back.", "counter")
	p.SampleInt("sky_db_rollbacks_total", nil, snap.DB.Rollbacks)
	p.Metric("sky_db_constraint_violations_total", "Constraint violations by kind.", "counter")
	byKind := make(map[string]int64, len(snap.DB.ConstraintViolations))
	for kind, n := range snap.DB.ConstraintViolations {
		byKind[kind.String()] = n
	}
	for _, kind := range metrics.SortedLabelNames(byKind) {
		p.SampleInt("sky_db_constraint_violations_total", []metrics.Label{{Name: "kind", Value: kind}}, byKind[kind])
	}
	p.Metric("sky_db_pages_allocated_total", "Heap pages allocated.", "counter")
	p.SampleInt("sky_db_pages_allocated_total", nil, snap.DB.PagesAllocated)
	p.Metric("sky_db_log_bytes_total", "Redo-log bytes written (cost model).", "counter")
	p.SampleInt("sky_db_log_bytes_total", nil, snap.DB.LogBytes)
	p.Metric("sky_db_index_splits_total", "B-tree node splits.", "counter")
	p.SampleInt("sky_db_index_splits_total", nil, snap.DB.IndexSplits)
	p.Metric("sky_db_lock_conflicts_total", "Row-lock conflicts.", "counter")
	p.SampleInt("sky_db_lock_conflicts_total", nil, snap.DB.LockConflicts)
	p.Metric("sky_db_indexes_created_total", "Successful CREATE INDEX operations.", "counter")
	p.SampleInt("sky_db_indexes_created_total", nil, snap.DB.IndexesCreated)
	p.Metric("sky_db_indexes_dropped_total", "Successful DROP INDEX operations.", "counter")
	p.SampleInt("sky_db_indexes_dropped_total", nil, snap.DB.IndexesDropped)
	p.Metric("sky_db_index_ddl_failures_total", "Failed index DDL operations.", "counter")
	p.SampleInt("sky_db_index_ddl_failures_total", nil, snap.DB.IndexDDLFailures)
	p.Metric("sky_db_total_rows", "Rows currently resident across all tables.", "gauge")
	p.SampleInt("sky_db_total_rows", nil, snap.TotalRows)
	p.Metric("sky_db_loading", "1 while a BeginLoad/Seal window is open.", "gauge")
	loading := int64(0)
	if snap.Loading {
		loading = 1
	}
	p.SampleInt("sky_db_loading", nil, loading)

	// --- relstore: WAL ---
	p.Metric("sky_wal_records_total", "WAL records appended.", "counter")
	p.SampleInt("sky_wal_records_total", nil, snap.WAL.Records)
	p.Metric("sky_wal_group_records_total", "Batched multi-row WAL records.", "counter")
	p.SampleInt("sky_wal_group_records_total", nil, snap.WAL.GroupRecords)
	p.Metric("sky_wal_grouped_rows_total", "Rows covered by batched WAL records.", "counter")
	p.SampleInt("sky_wal_grouped_rows_total", nil, snap.WAL.GroupedRows)
	p.Metric("sky_wal_bytes_total", "WAL bytes appended.", "counter")
	p.SampleInt("sky_wal_bytes_total", nil, snap.WAL.Bytes)
	p.Metric("sky_wal_commits_total", "Commit records appended.", "counter")
	p.SampleInt("sky_wal_commits_total", nil, snap.WAL.Commits)
	// The sync family: syncs >= auto_syncs + group_commits always holds; the
	// difference is plain per-commit syncs.
	p.Metric("sky_wal_syncs_total", "Log syncs from every cause (per-commit, threshold, group).", "counter")
	p.SampleInt("sky_wal_syncs_total", nil, snap.WAL.Syncs)
	p.Metric("sky_wal_auto_syncs_total", "Syncs forced by the unsynced-bytes threshold.", "counter")
	p.SampleInt("sky_wal_auto_syncs_total", nil, snap.WAL.AutoSyncs)
	p.Metric("sky_wal_group_commits_total", "Group syncs, each covering one commit group.", "counter")
	p.SampleInt("sky_wal_group_commits_total", nil, snap.WAL.GroupCommits)
	p.Metric("sky_wal_grouped_commits_total", "Commits covered by group syncs.", "counter")
	p.SampleInt("sky_wal_grouped_commits_total", nil, snap.WAL.GroupedCommits)
	p.Metric("sky_wal_max_group_size", "Largest single commit group.", "gauge")
	p.SampleInt("sky_wal_max_group_size", nil, snap.WAL.MaxGroupSize)
	p.Metric("sky_wal_max_unsynced_bytes", "High-water mark of unsynced WAL bytes.", "gauge")
	p.SampleInt("sky_wal_max_unsynced_bytes", nil, snap.WAL.MaxUnsyncedBytes)

	// --- relstore: durable WAL, checkpoints, crash recovery ---
	p.Metric("sky_wal_durable", "1 when records are persisted to a WAL directory.", "gauge")
	durable := int64(0)
	if snap.WAL.Durable {
		durable = 1
	}
	p.SampleInt("sky_wal_durable", nil, durable)
	p.Metric("sky_wal_durable_bytes_total", "Bytes appended to on-disk WAL segments.", "counter")
	p.SampleInt("sky_wal_durable_bytes_total", nil, snap.WAL.DurableBytes)
	p.Metric("sky_wal_durable_syncs_total", "fsync batches issued against the WAL.", "counter")
	p.SampleInt("sky_wal_durable_syncs_total", nil, snap.WAL.DurableSyncs)
	p.Metric("sky_wal_segments_created_total", "WAL segment files created.", "counter")
	p.SampleInt("sky_wal_segments_created_total", nil, snap.WAL.SegmentsCreated)
	p.Metric("sky_wal_segments_deleted_total", "WAL segment files deleted by checkpoint truncation.", "counter")
	p.SampleInt("sky_wal_segments_deleted_total", nil, snap.WAL.SegmentsDeleted)
	p.Metric("sky_wal_checkpoints_total", "Checkpoints taken (manual and automatic).", "counter")
	p.SampleInt("sky_wal_checkpoints_total", nil, snap.WAL.Checkpoints)
	p.Metric("sky_wal_replay_records_total", "WAL records applied by crash recovery.", "counter")
	p.SampleInt("sky_wal_replay_records_total", nil, snap.WAL.ReplayRecords)
	p.Metric("sky_wal_replay_rows_total", "Rows restored from the log by crash recovery.", "counter")
	p.SampleInt("sky_wal_replay_rows_total", nil, snap.WAL.ReplayRows)
	p.Metric("sky_wal_replay_bytes_total", "Log bytes scanned by crash recovery.", "counter")
	p.SampleInt("sky_wal_replay_bytes_total", nil, snap.WAL.ReplayBytes)
	p.Metric("sky_wal_replay_torn_tail_total", "Torn trailing records discarded by crash recovery.", "counter")
	p.SampleInt("sky_wal_replay_torn_tail_total", nil, snap.WAL.ReplayTornTail)

	// --- relstore: buffer cache ---
	p.Metric("sky_buffer_cache_capacity_pages", "Buffer cache capacity.", "gauge")
	p.SampleInt("sky_buffer_cache_capacity_pages", nil, int64(snap.Cache.Capacity))
	p.Metric("sky_buffer_cache_resident_pages", "Pages currently resident.", "gauge")
	p.SampleInt("sky_buffer_cache_resident_pages", nil, int64(snap.Cache.Resident))
	p.Metric("sky_buffer_cache_hits_total", "Buffer cache hits.", "counter")
	p.SampleInt("sky_buffer_cache_hits_total", nil, snap.Cache.Hits)
	p.Metric("sky_buffer_cache_misses_total", "Buffer cache misses.", "counter")
	p.SampleInt("sky_buffer_cache_misses_total", nil, snap.Cache.Misses)
	p.Metric("sky_buffer_cache_evicts_total", "Buffer cache evictions.", "counter")
	p.SampleInt("sky_buffer_cache_evicts_total", nil, snap.Cache.Evicts)
	p.Metric("sky_buffer_cache_flushes_total", "Dirty-page flushes.", "counter")
	p.SampleInt("sky_buffer_cache_flushes_total", nil, snap.Cache.Flushes)
	p.Metric("sky_buffer_cache_scan_work_total", "LRU scan steps.", "counter")
	p.SampleInt("sky_buffer_cache_scan_work_total", nil, snap.Cache.ScanWork)

	// --- relstore: per-index memory footprint ---
	p.Metric("sky_index_key_bytes", "Encoded key bytes stored, by index.", "gauge")
	for _, ix := range snap.Indexes {
		p.SampleInt("sky_index_key_bytes", indexLabels(ix.Table, ix.Name), ix.KeyBytes)
	}
	p.Metric("sky_index_arena_bytes", "Key arena capacity reserved, by index.", "gauge")
	for _, ix := range snap.Indexes {
		p.SampleInt("sky_index_arena_bytes", indexLabels(ix.Table, ix.Name), ix.ArenaBytes)
	}
	p.Metric("sky_index_ready", "1 when the index is maintained and queryable.", "gauge")
	for _, ix := range snap.Indexes {
		ready := int64(0)
		if ix.Ready {
			ready = 1
		}
		p.SampleInt("sky_index_ready", indexLabels(ix.Table, ix.Name), ready)
	}

	// --- serve: admission counters ---
	c := s.qs.Counters()
	p.Metric("sky_serve_requests_total", "Query requests admitted or shed.", "counter")
	p.SampleInt("sky_serve_requests_total", nil, c.Requests)
	p.Metric("sky_serve_served_total", "Requests answered (cache hits included).", "counter")
	p.SampleInt("sky_serve_served_total", nil, c.Served)
	p.Metric("sky_serve_shed_total", "Requests shed at the full admission queue.", "counter")
	p.SampleInt("sky_serve_shed_total", nil, c.Shed)
	p.Metric("sky_serve_expired_total", "Requests abandoned past their queue-wait deadline.", "counter")
	p.SampleInt("sky_serve_expired_total", nil, c.Expired)
	p.Metric("sky_serve_errors_total", "Requests that failed in the engine.", "counter")
	p.SampleInt("sky_serve_errors_total", nil, c.Errors)
	p.Metric("sky_serve_unstable_total", "Answers computed over in-flight loader writes (served, never cached).", "counter")
	p.SampleInt("sky_serve_unstable_total", nil, c.Unstable)
	p.Metric("sky_serve_during_ingest_served_total", "Requests served while loaders were active.", "counter")
	p.SampleInt("sky_serve_during_ingest_served_total", nil, c.DuringIngestServed)
	p.Metric("sky_serve_during_ingest_shed_total", "Requests shed while loaders were active.", "counter")
	p.SampleInt("sky_serve_during_ingest_shed_total", nil, c.DuringIngestShed)
	p.Metric("sky_serve_during_ingest_expired_total", "Requests expired while loaders were active.", "counter")
	p.SampleInt("sky_serve_during_ingest_expired_total", nil, c.DuringIngestExpired)

	// --- serve: result cache ---
	if cache := s.qs.Cache(); cache != nil {
		cs := cache.Stats()
		p.Metric("sky_result_cache_hits_total", "Result cache hits.", "counter")
		p.SampleInt("sky_result_cache_hits_total", nil, cs.Hits)
		p.Metric("sky_result_cache_misses_total", "Result cache misses.", "counter")
		p.SampleInt("sky_result_cache_misses_total", nil, cs.Misses)
		p.Metric("sky_result_cache_stale_hits_total", "Lookups that found an epoch-invalidated entry.", "counter")
		p.SampleInt("sky_result_cache_stale_hits_total", nil, cs.StaleHits)
		p.Metric("sky_result_cache_evictions_total", "Capacity evictions.", "counter")
		p.SampleInt("sky_result_cache_evictions_total", nil, cs.Evictions)
		p.Metric("sky_result_cache_stores_total", "Results stored.", "counter")
		p.SampleInt("sky_result_cache_stores_total", nil, cs.Stores)
		p.Metric("sky_result_cache_entries", "Entries currently cached.", "gauge")
		p.SampleInt("sky_result_cache_entries", nil, int64(cs.Entries))
	}

	// --- serve: per-class counters and latency histograms ---
	p.Metric("sky_serve_class_requests_total", "Requests by query class.", "counter")
	classes := s.qs.Classes()
	for _, cl := range classes {
		p.SampleInt("sky_serve_class_requests_total", classLabels(cl.Class), cl.Requests)
	}
	p.Metric("sky_serve_class_served_total", "Served requests by query class.", "counter")
	for _, cl := range classes {
		p.SampleInt("sky_serve_class_served_total", classLabels(cl.Class), cl.Served)
	}
	p.Metric("sky_serve_class_cache_hits_total", "Result-cache hits by query class.", "counter")
	for _, cl := range classes {
		p.SampleInt("sky_serve_class_cache_hits_total", classLabels(cl.Class), cl.CacheHits)
	}
	p.Metric("sky_serve_latency_seconds", "Served-request latency by query class.", "histogram")
	for _, cl := range classes {
		p.Histogram("sky_serve_latency_seconds", classLabels(cl.Class), cl.Latency)
	}
	p.Metric("sky_serve_queue_wait_seconds", "Admission queue wait of executed requests.", "histogram")
	p.Histogram("sky_serve_queue_wait_seconds", nil, s.qs.QueueWait())
	p.Metric("sky_serve_during_ingest_latency_seconds", "Served-request latency while loaders were active.", "histogram")
	p.Histogram("sky_serve_during_ingest_latency_seconds", nil, s.qs.DuringIngestLatency())

	// --- serve: worker pool saturation ---
	workers := s.qs.Workers()
	ws := workers.Stats()
	p.Metric("sky_workers_capacity", "Query worker pool size.", "gauge")
	p.SampleInt("sky_workers_capacity", nil, int64(ws.Capacity))
	p.Metric("sky_workers_in_use", "Workers currently executing.", "gauge")
	p.SampleInt("sky_workers_in_use", nil, int64(workers.InUse()))
	p.Metric("sky_workers_queue_len", "Requests waiting for a worker.", "gauge")
	p.SampleInt("sky_workers_queue_len", nil, int64(workers.QueueLen()))
	p.Metric("sky_workers_grants_total", "Worker-slot grants.", "counter")
	p.SampleInt("sky_workers_grants_total", nil, int64(ws.Grants))
	p.Metric("sky_workers_waits_total", "Worker-slot acquisitions that had to queue.", "counter")
	p.SampleInt("sky_workers_waits_total", nil, int64(ws.Waits))
	p.Metric("sky_workers_wait_seconds_total", "Cumulative time spent waiting for a worker slot.", "counter")
	p.Sample("sky_workers_wait_seconds_total", nil, ws.TotalWait.Seconds())
	p.Metric("sky_workers_max_queue_depth", "High-water mark of the worker queue.", "gauge")
	p.SampleInt("sky_workers_max_queue_depth", nil, int64(ws.MaxQueueDepth))

	// --- transport ---
	p.Metric("sky_http_requests_total", "HTTP requests by endpoint.", "counter")
	for _, path := range s.paths {
		p.SampleInt("sky_http_requests_total", pathLabels(path), s.reqs[path].Load())
	}
	p.Metric("sky_http_errors_total", "HTTP 4xx/5xx responses by endpoint.", "counter")
	for _, path := range s.paths {
		p.SampleInt("sky_http_errors_total", pathLabels(path), s.errs[path].Load())
	}
	p.Metric("sky_http_request_seconds", "HTTP request handling latency, all endpoints.", "histogram")
	p.Histogram("sky_http_request_seconds", nil, s.latency)
	p.Metric("sky_http_open_conns_limit", "Listener connection cap (0 before Start).", "gauge")
	p.SampleInt("sky_http_open_conns_limit", nil, int64(s.maxConns()))
	p.Metric("sky_http_uptime_seconds", "Seconds since the front door was built.", "gauge")
	p.Sample("sky_http_uptime_seconds", nil, time.Since(s.start).Seconds())

	// --- trace ring ---
	p.Metric("sky_trace_published_total", "Requests sampled into the trace ring.", "counter")
	p.SampleInt("sky_trace_published_total", nil, int64(s.tracer.Published()))
	p.Metric("sky_trace_sample_interval", "One request in N is traced.", "gauge")
	p.SampleInt("sky_trace_sample_interval", nil, int64(s.cfg.TraceEvery))

	return p.Err()
}

func indexLabels(table, index string) []metrics.Label {
	return []metrics.Label{{Name: "table", Value: table}, {Name: "index", Value: index}}
}

func classLabels(class string) []metrics.Label {
	return []metrics.Label{{Name: "class", Value: class}}
}

func pathLabels(path string) []metrics.Label {
	return []metrics.Label{{Name: "path", Value: path}}
}

// maxConns reports the effective listener cap, for the scrape.
func (s *Server) maxConns() int {
	if s.listener == nil {
		return 0
	}
	if ll, ok := s.listener.(*limitedListener); ok {
		return cap(ll.sem)
	}
	return 0
}
