package httpserve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"skyloader/internal/exec"
	"skyloader/internal/queries"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/trace"
)

// QueryResponse is the JSON envelope of every query endpoint.
type QueryResponse struct {
	RequestID uint64 `json:"request_id"`
	Outcome   string `json:"outcome"`
	// ElapsedNS is the server-side wall time of the request (admission wait
	// included), so a client can split its measured latency into server time
	// and network/queueing time.
	ElapsedNS int64 `json:"elapsed_ns"`

	Objects []queries.Object       `json:"objects,omitempty"`
	Bins    []queries.MagnitudeBin `json:"bins,omitempty"`
	Stats   queries.Stats          `json:"stats"`

	Error string `json:"error,omitempty"`
}

// handleQuery serves the four science-query endpoints: parse, execute
// through the serve layer's admission/cache/engine path on this goroutine
// (inline worker), encode.  Tracing: one request in cfg.TraceEvery carries a
// stack-allocated trace.Req through the stages; the encode span closes after
// the response bytes are handed to the socket.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, path string) {
	q, err := parseQuery(path, r.URL.Query())
	if err != nil {
		s.fail(w, path, http.StatusBadRequest, 0, err)
		return
	}
	id := s.reqID.Add(1)
	var tr *trace.Req
	if s.tracer.Sample() {
		tr = new(trace.Req) // escapes into the publish below; one alloc per SAMPLED request
	}

	var (
		res     queries.Result
		outcome serve.Outcome
		execErr error
		status  int
	)
	s.inline.RunInline("http-"+q.Class(), func(wk exec.Worker) {
		began := wk.Now()
		tr.Begin(id, q.Class(), began)
		res, outcome, execErr = s.qs.Execute(wk, q, tr)

		resp := QueryResponse{
			RequestID: id,
			Outcome:   outcome.String(),
			Objects:   res.Objects,
			Bins:      res.Bins,
			Stats:     res.Stats,
		}
		switch outcome {
		case serve.OutcomeServed, serve.OutcomeCacheHit:
			status = http.StatusOK
		case serve.OutcomeShed:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case serve.OutcomeExpired:
			status = http.StatusGatewayTimeout
		default:
			status = http.StatusInternalServerError
		}
		if execErr != nil {
			resp.Error = execErr.Error()
		}
		resp.ElapsedNS = int64(wk.Now() - began)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		_ = enc.Encode(resp)
		tr.Finish(outcome.String(), trace.StageEncode, wk.Now())
		s.observe(path, status, wk.Now()-began)
	})
	if tr != nil {
		s.tracer.Publish(tr)
	}
}

// StatsResponse is the JSON envelope of /v1/stats: the serving report and
// the unified engine snapshot, the same structs the in-process reports use.
type StatsResponse struct {
	Server serve.Report           `json:"server"`
	Engine relstore.StatsSnapshot `json:"engine"`
	// TracesPublished counts traces captured into the ring since start.
	TracesPublished uint64 `json:"traces_published"`
	UptimeNS        int64  `json:"uptime_ns"`
}

// handleStats serves the machine-readable stats snapshot skystorm prints
// next to its client-side histograms.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	resp := StatsResponse{
		Server:          s.qs.Report(s.qs.Scheduler().Now()),
		Engine:          s.db.StatsSnapshot(),
		TracesPublished: s.tracer.Published(),
		UptimeNS:        int64(time.Since(s.start)),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.observe(path, http.StatusInternalServerError, time.Since(began))
		return
	}
	s.observe(path, http.StatusOK, time.Since(began))
}

// handleHealthz is the readiness probe: 200 once every index is ready (no
// open BeginLoad/Seal window) and no crash recovery is replaying, 503 while
// a deferred-policy load or a StartRecover WAL replay is in flight.  Load
// balancers use it to keep latency-expecting traffic away until indexed
// reads are possible.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	if s.db.Ready() {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
		s.observe(path, http.StatusOK, time.Since(began))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte("loading: indexes not ready\n"))
	s.observe(path, http.StatusServiceUnavailable, time.Since(began))
}

// TraceDump is the JSON shape of one dumped trace.
type TraceDump struct {
	RequestID uint64           `json:"request_id"`
	Class     string           `json:"class"`
	Outcome   string           `json:"outcome"`
	StartNS   int64            `json:"start_ns"`
	TotalNS   int64            `json:"total_ns"`
	Stages    map[string]int64 `json:"stages_ns"`
}

// handleTraces dumps the trace ring: ?n=K returns the K slowest traces,
// otherwise the whole ring oldest-first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request, path string) {
	began := time.Now()
	var reqs []trace.Req
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			s.fail(w, path, http.StatusBadRequest, time.Since(began), err)
			return
		}
		reqs = s.tracer.Slowest(n)
	} else {
		reqs = s.tracer.Snapshot()
	}
	out := make([]TraceDump, 0, len(reqs))
	for i := range reqs {
		out = append(out, dumpTrace(&reqs[i]))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
	s.observe(path, http.StatusOK, time.Since(began))
}

func dumpTrace(r *trace.Req) TraceDump {
	d := TraceDump{
		RequestID: r.ID,
		Class:     r.Class,
		Outcome:   r.Outcome,
		StartNS:   int64(r.Start),
		TotalNS:   int64(r.Total()),
		Stages:    make(map[string]int64, trace.NumStages),
	}
	for st, dur := range r.Stages {
		if dur > 0 {
			d.Stages[trace.Stage(st).String()] = int64(dur)
		}
	}
	return d
}

// fail writes a JSON error body and accounts the failure.
func (s *Server) fail(w http.ResponseWriter, path string, status int, elapsed time.Duration, err error) {
	msg := http.StatusText(status)
	if err != nil {
		msg = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
	s.observe(path, status, elapsed)
}
