package httpserve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"skyloader/internal/queries"
)

// BenchmarkServeHTTPQuery measures one query request through the whole HTTP
// path — mux, parse, inline worker admission, cache, execute, JSON encode —
// without socket noise (in-process handler dispatch).  The ReportAllocs
// output is the tracked number: BENCH_http.json records allocs/op, and the
// sampled-tracing variant bounds the trace layer's overhead.
func BenchmarkServeHTTPQuery(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		env := newHTTPEnv(b, cfg)
		h := env.front.Handler()
		u, _ := QueryURL(queries.ObjectLookup{ObjectID: 100_000_010})
		// Prime the result cache so the loop measures the hot path.
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", u, nil))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
			if rec.Code != 200 {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}
	// TraceEvery 1<<30: effectively untraced.  TraceEvery 1: every request
	// carries a trace.Req through all four stages and publishes to the ring.
	b.Run("untraced", func(b *testing.B) { bench(b, Config{TraceEvery: 1 << 30}) })
	b.Run("traced", func(b *testing.B) { bench(b, Config{TraceEvery: 1}) })
	b.Run("sampled16", func(b *testing.B) { bench(b, Config{TraceEvery: 16}) })
}

// BenchmarkMetricsScrape measures one full /metrics render: every engine,
// serving, transport and trace series, including four 140-bucket histograms.
func BenchmarkMetricsScrape(b *testing.B) {
	env := newHTTPEnv(b, Config{})
	h := env.front.Handler()
	u, _ := QueryURL(queries.Cone{RA: 30, Dec: -10, RadiusDeg: 2})
	for i := 0; i < 100; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", u, nil))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := env.front.WriteMetrics(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
